// E12 — google-benchmark micro-suite: per-operation costs of the building
// blocks (key generation per curve, greedy decomposition, streaming run
// coalescing, skip-list operations, warm-plan dominance queries, end-to-end
// covering checks).
//
// Output: the usual console table, plus machine-readable JSON written to
// BENCH_micro.json (override with --benchmark_out=...) so per-op ns and the
// probes/cubes/runs counters feed the perf-trajectory tracking.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "broker/network.h"
#include "covering/sfc_covering_index.h"
#include "dominance/query_plan.h"
#include "util/timer.h"
#include "workload/churn_gen.h"
#include "sfc/decomposition.h"
#include "sfc/extremal_decomposition.h"
#include "sfc/gray_curve.h"
#include "sfc/hilbert_curve.h"
#include "sfc/runs.h"
#include "sfc/z_curve.h"
#include "sfcarray/skiplist_array.h"
#include "util/random.h"
#include "util/simd_kernels.h"
#include "workload/subscription_gen.h"

namespace subcover {
namespace {

point random_point(rng& gen, const universe& u) {
  point p(u.dims());
  for (int i = 0; i < u.dims(); ++i)
    p[i] = static_cast<std::uint32_t>(gen.uniform(0, u.coord_max()));
  return p;
}

void BM_ZCurveKey(benchmark::State& state) {
  const universe u(static_cast<int>(state.range(0)), 16);
  const z_curve c(u);
  rng gen(1);
  const point p = random_point(gen, u);
  for (auto _ : state) benchmark::DoNotOptimize(c.cell_key(p));
}
BENCHMARK(BM_ZCurveKey)->Arg(4)->Arg(8)->Arg(16);

void BM_HilbertCurveKey(benchmark::State& state) {
  const universe u(static_cast<int>(state.range(0)), 16);
  const hilbert_curve c(u);
  rng gen(1);
  const point p = random_point(gen, u);
  for (auto _ : state) benchmark::DoNotOptimize(c.cell_key(p));
}
BENCHMARK(BM_HilbertCurveKey)->Arg(4)->Arg(8)->Arg(16);

void BM_GrayCurveKey(benchmark::State& state) {
  const universe u(static_cast<int>(state.range(0)), 16);
  const gray_curve c(u);
  rng gen(1);
  const point p = random_point(gen, u);
  for (auto _ : state) benchmark::DoNotOptimize(c.cell_key(p));
}
BENCHMARK(BM_GrayCurveKey)->Arg(4)->Arg(8)->Arg(16);

// Narrow-key (u64) curve key generation, the production width for
// d*k <= 64 universes — the kernel the BMI2 pdep/pext interleave targets.
// Arg: dims at 16 bits per dim (2 -> 32-bit keys, 4 -> 64-bit keys).
template <class Curve>
void curve_key_narrow_bench(benchmark::State& state) {
  const universe u(static_cast<int>(state.range(0)), 16);
  const Curve c(u);
  rng gen(1);
  const point p = random_point(gen, u);
  for (auto _ : state) benchmark::DoNotOptimize(c.cell_key(p));
}

void BM_ZCurveKeyNarrow(benchmark::State& state) {
  curve_key_narrow_bench<basic_z_curve<std::uint64_t>>(state);
}
BENCHMARK(BM_ZCurveKeyNarrow)->Arg(2)->Arg(4);

void BM_HilbertCurveKeyNarrow(benchmark::State& state) {
  curve_key_narrow_bench<basic_hilbert_curve<std::uint64_t>>(state);
}
BENCHMARK(BM_HilbertCurveKeyNarrow)->Arg(2)->Arg(4);

void BM_GrayCurveKeyNarrow(benchmark::State& state) {
  curve_key_narrow_bench<basic_gray_curve<std::uint64_t>>(state);
}
BENCHMARK(BM_GrayCurveKeyNarrow)->Arg(2)->Arg(4);

void BM_Decompose257Square(benchmark::State& state) {
  const universe u(2, 9);
  const rect r(point{255, 255}, point{511, 511});
  for (auto _ : state) {
    std::uint64_t n = 0;
    decompose_rect(u, r, [&](const standard_cube&) { ++n; });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_Decompose257Square);

void BM_RunsOfRandomRect(benchmark::State& state) {
  const universe u(2, 10);
  const z_curve z(u);
  rng gen(7);
  for (auto _ : state) {
    state.PauseTiming();
    const auto side = gen.uniform(1, 512);
    const auto x = gen.uniform(0, u.side() - side);
    const auto y = gen.uniform(0, u.side() - side);
    const rect r(point{static_cast<std::uint32_t>(x), static_cast<std::uint32_t>(y)},
                 point{static_cast<std::uint32_t>(x + side - 1),
                       static_cast<std::uint32_t>(y + side - 1)});
    state.ResumeTiming();
    benchmark::DoNotOptimize(count_runs(z, r));
  }
}
BENCHMARK(BM_RunsOfRandomRect);

void BM_RunStreamReused(benchmark::State& state) {
  // The allocation-free path: one warm run_stream over random rectangles.
  const universe u(2, 10);
  const z_curve z(u);
  run_stream stream(z);
  rng gen(7);
  std::uint64_t total_runs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const auto side = gen.uniform(1, 512);
    const auto x = gen.uniform(0, u.side() - side);
    const auto y = gen.uniform(0, u.side() - side);
    const rect r(point{static_cast<std::uint32_t>(x), static_cast<std::uint32_t>(y)},
                 point{static_cast<std::uint32_t>(x + side - 1),
                       static_cast<std::uint32_t>(y + side - 1)});
    state.ResumeTiming();
    stream.reset(r);
    key_range run;
    while (stream.next(&run)) ++total_runs;
    benchmark::DoNotOptimize(total_runs);
  }
  state.counters["runs"] =
      benchmark::Counter(static_cast<double>(total_runs), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_RunStreamReused);

// The query planner's enumeration path in isolation: stream every level of
// an extremal query region as Equation-1 key ranges (largest cubes first),
// exactly what query_plan consumes. Arg: curve kind (0 = Z, 1 = Hilbert,
// 2 = Gray), at the production (u64) key width.
void BM_PlanLevelRanges(benchmark::State& state) {
  const universe u(2, 9);
  const curve_kind kind = static_cast<curve_kind>(state.range(0));
  const auto curve = make_basic_curve<std::uint64_t>(kind, u);
  rng gen(19);
  std::vector<extremal_rect> regions;
  for (int i = 0; i < 64; ++i) regions.push_back(extremal_rect::query_region(u, random_point(gen, u)));
  std::size_t next = 0;
  std::uint64_t total_ranges = 0;
  for (auto _ : state) {
    const extremal_rect& r = regions[next];
    next = (next + 1) % regions.size();
    for (int i = u.bits(); i >= 0; --i) {
      enumerate_level_ranges(*curve, r, i, [&](const basic_key_range<std::uint64_t>& run) {
        benchmark::DoNotOptimize(run.lo);
        ++total_ranges;
      });
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["ranges"] =
      benchmark::Counter(static_cast<double>(total_ranges), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_PlanLevelRanges)->Arg(0)->Arg(1)->Arg(2);

void BM_DominanceQueryWarmPlan(benchmark::State& state) {
  // Warm-plan query throughput, the acceptance metric of the plan->probe
  // refactor. Arg: epsilon in percent (0 = exhaustive).
  const universe u(2, 9);
  dominance_index idx(u);
  rng gen(11);
  for (std::uint64_t i = 0; i < 50'000; ++i) idx.insert(random_point(gen, u), i);
  const double eps = static_cast<double>(state.range(0)) / 100.0;
  query_plan plan(idx);
  query_stats st;
  std::uint64_t probes = 0;
  std::uint64_t cubes = 0;
  std::uint64_t runs = 0;
  std::uint64_t restarts = 0;
  std::uint64_t resumed = 0;
  for (auto _ : state) {
    const point x = random_point(gen, u);
    benchmark::DoNotOptimize(plan.run(x, eps, &st));
    probes += st.runs_probed;
    cubes += st.cubes_enumerated;
    runs += st.runs_in_plan;
    restarts += st.probes_restarted;
    resumed += st.probes_resumed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["probes"] =
      benchmark::Counter(static_cast<double>(probes), benchmark::Counter::kAvgIterations);
  state.counters["cubes"] =
      benchmark::Counter(static_cast<double>(cubes), benchmark::Counter::kAvgIterations);
  state.counters["runs"] =
      benchmark::Counter(static_cast<double>(runs), benchmark::Counter::kAvgIterations);
  state.counters["restarts"] =
      benchmark::Counter(static_cast<double>(restarts), benchmark::Counter::kAvgIterations);
  state.counters["resumed"] =
      benchmark::Counter(static_cast<double>(resumed), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_DominanceQueryWarmPlan)->Arg(0)->Arg(1)->Arg(10);

// --- per-key-width variants ------------------------------------------------
//
// The same workloads at d*k = 48, 96 and 256 bits, so the narrow-key fast
// path (u64 / u128 instantiations) and the u512 wide path are tracked side
// by side in BENCH_micro.json. The regions extend only in the first two
// dimensions (unit thickness elsewhere — the shape wildcard constraints
// produce after the EO82 transform), so the geometric work (cubes, runs,
// probes) is constant across widths and the per-op delta isolates the cost
// of key arithmetic.

universe width_universe(std::int64_t key_bits) {
  switch (key_bits) {
    case 48:
      return universe(3, 16);
    case 96:
      return universe(6, 16);
    default:
      return universe(16, 16);  // 256
  }
}

// A random box in dims 0 and 1, a random unit slice elsewhere.
rect width_rect(rng& gen, const universe& u) {
  point lo(u.dims());
  point hi(u.dims());
  for (int j = 0; j < u.dims(); ++j) {
    const auto a = gen.uniform(0, u.coord_max());
    lo[j] = static_cast<std::uint32_t>(a);
    hi[j] = static_cast<std::uint32_t>(a);
  }
  for (int j = 0; j < 2; ++j) {
    const auto side = gen.uniform(1, 64);
    const auto a = gen.uniform(0, u.side() - side);
    lo[j] = static_cast<std::uint32_t>(a);
    hi[j] = static_cast<std::uint32_t>(a + side - 1);
  }
  return {lo, hi};
}

template <class K>
void run_stream_width_bench(benchmark::State& state, const universe& u) {
  // The production path: the narrowest key type that fits the universe
  // (mirrors dominance_index's construction-time width selection).
  const basic_z_curve<K> c(u);
  basic_run_stream<K> stream(c);
  rng gen(7);
  std::vector<rect> rects;
  for (int i = 0; i < 64; ++i) rects.push_back(width_rect(gen, u));
  std::size_t next = 0;
  std::uint64_t total_runs = 0;
  for (auto _ : state) {
    stream.reset(rects[next]);
    next = (next + 1) % rects.size();
    basic_key_range<K> run;
    while (stream.next(&run)) ++total_runs;
    benchmark::DoNotOptimize(total_runs);
  }
  state.counters["runs"] =
      benchmark::Counter(static_cast<double>(total_runs), benchmark::Counter::kAvgIterations);
}

void BM_RunStreamWidth(benchmark::State& state) {
  const universe u = width_universe(state.range(0));
  switch (select_key_width(u.key_bits())) {
    case key_width::w64:
      run_stream_width_bench<std::uint64_t>(state, u);
      break;
    case key_width::w128:
      run_stream_width_bench<u128>(state, u);
      break;
    default:
      run_stream_width_bench<u512>(state, u);
      break;
  }
}
BENCHMARK(BM_RunStreamWidth)->Arg(48)->Arg(96)->Arg(256);

void BM_DominanceQueryWidth(benchmark::State& state) {
  const universe u = width_universe(state.range(0));
  dominance_options opts;
  opts.array = sfc_array_kind::sorted_vector;
  opts.settle_on_budget = true;
  opts.max_cubes = std::uint64_t{1} << 12;
  dominance_index idx(u, opts);
  rng gen(11);
  std::vector<std::pair<point, std::uint64_t>> pts;
  for (std::uint64_t i = 0; i < 20'000; ++i) pts.emplace_back(random_point(gen, u), i);
  idx.insert_batch(pts);
  std::vector<point> queries;
  for (int i = 0; i < 64; ++i) queries.push_back(random_point(gen, u));
  std::size_t next = 0;
  query_plan plan(idx);
  query_stats st;
  std::uint64_t probes = 0;
  std::uint64_t cubes = 0;
  std::uint64_t restarts = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.run(queries[next], 0.05, &st));
    next = (next + 1) % queries.size();
    probes += st.runs_probed;
    cubes += st.cubes_enumerated;
    restarts += st.probes_restarted;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["probes"] =
      benchmark::Counter(static_cast<double>(probes), benchmark::Counter::kAvgIterations);
  state.counters["cubes"] =
      benchmark::Counter(static_cast<double>(cubes), benchmark::Counter::kAvgIterations);
  state.counters["restarts"] =
      benchmark::Counter(static_cast<double>(restarts), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_DominanceQueryWidth)->Arg(48)->Arg(96)->Arg(256);

// Bytes per subscription held by the dominance array, the storage headline
// of the compressed cold tier. ArgPair: (key bits 48/96/256, mode: 0 =
// materialized resident array — the default skiplist backend — 1 = tiered
// with the compressed cold store). 20k clustered points (fig9's
// covering-rich regime: key locality is what gap coding monetizes), loaded
// through the bulk path so the tiered side lands cold. The timed loop only
// measures the footprint audit itself; the counters are the metric:
// bytes_per_sub feeds the compression-floor gate in bench_compare.py
// (resident / tiered must stay >= 3x).
void BM_MemoryFootprint(benchmark::State& state) {
  const universe u = width_universe(state.range(0));
  const bool tiered = state.range(1) != 0;
  dominance_options opts;  // default array = skiplist, the production backend
  if (tiered) {
    opts.tier_hot_capacity = 1024;
    opts.tier_block_entries = 64;
  }
  dominance_index idx(u, opts);
  rng gen(23);
  constexpr std::size_t kSubs = 20'000;
  std::vector<std::pair<point, std::uint64_t>> pts;
  pts.reserve(kSubs);
  point center(u.dims());
  for (std::size_t i = 0; i < kSubs; ++i) {
    if (i % 100 == 0)
      for (int d = 0; d < u.dims(); ++d)
        center[d] = static_cast<std::uint32_t>(gen.uniform(0, u.coord_max()));
    point p(u.dims());
    for (int d = 0; d < u.dims(); ++d) {
      const std::uint64_t c = center[d] + gen.uniform(0, 15);
      p[d] = static_cast<std::uint32_t>(std::min<std::uint64_t>(c, u.coord_max()));
    }
    pts.emplace_back(p, i);
  }
  idx.insert_batch(pts);
  for (auto _ : state) benchmark::DoNotOptimize(idx.memory_footprint());
  state.counters["bytes_per_sub"] =
      static_cast<double>(idx.memory_footprint()) / static_cast<double>(kSubs);
  state.counters["bytes_total"] = static_cast<double>(idx.memory_footprint());
}
BENCHMARK(BM_MemoryFootprint)
    ->ArgPair(48, 0)
    ->ArgPair(48, 1)
    ->ArgPair(96, 0)
    ->ArgPair(96, 1)
    ->ArgPair(256, 0)
    ->ArgPair(256, 1);

// The batched probe primitive in isolation: one probe_frontier sweep over a
// 64-range sorted frontier vs 64 independent first_in probes, on both
// backends (arg0: 0 = skiplist, 1 = sorted_vector; arg1: 0 = single-range
// reference, 1 = batched sweep). 100k u64 entries; the frontier spans a
// random window of the key space, so most ranges resume a short distance
// from the previous one — the regime the query plan produces.
void BM_ProbeFrontier(benchmark::State& state) {
  const auto kind =
      state.range(0) == 0 ? sfc_array_kind::skiplist : sfc_array_kind::sorted_vector;
  const bool batched = state.range(1) != 0;
  const auto array = make_basic_sfc_array<std::uint64_t>(kind);
  rng gen(41);
  for (std::uint64_t i = 0; i < 100'000; ++i) array->insert(gen.next(), i);

  struct counting_sink final : basic_sfc_array<std::uint64_t>::frontier_sink {
    using entry = basic_sfc_array<std::uint64_t>::entry;
    std::uint64_t hits = 0;
    bool on_probe(std::size_t, const entry* hit) override {
      hits += hit != nullptr ? 1 : 0;
      return true;
    }
  };

  constexpr std::size_t kRanges = 64;
  std::vector<basic_key_range<std::uint64_t>> frontier;
  frontier.reserve(kRanges);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    state.PauseTiming();
    frontier.clear();
    // A sorted frontier inside a random ~2^57-key window: 64 disjoint
    // ranges whose gaps mirror a merged query-plan level.
    std::uint64_t lo = gen.next() >> 7;
    for (std::size_t i = 0; i < kRanges; ++i) {
      const std::uint64_t extent = gen.next() >> 14;
      const std::uint64_t gap = gen.next() >> 14;
      frontier.push_back({lo, lo + extent});
      lo += extent + gap + 1;
    }
    state.ResumeTiming();
    if (batched) {
      counting_sink sink;
      array->probe_frontier(std::span<const basic_key_range<std::uint64_t>>(frontier), sink);
      hits += sink.hits;
    } else {
      for (const auto& r : frontier) hits += array->first_in(r).has_value() ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kRanges));
  state.counters["hits"] =
      benchmark::Counter(static_cast<double>(hits), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ProbeFrontier)
    ->ArgPair(0, 0)
    ->ArgPair(0, 1)
    ->ArgPair(1, 0)
    ->ArgPair(1, 1);

// Broker-network covering-check throughput under the sharded parallel
// engine: the fig10 workload (15-broker balanced tree, clustered uniform
// subscriptions, SFC covering indexes) driven through network::subscribe,
// at a sweep of worker counts. Arg: workers (0 = the deterministic
// sequential FIFO engine — the baseline the parallel sweep is judged
// against). The per-iteration time covers one whole subscription workload;
// items processed = covering checks performed, so the rate column is the
// headline checks/sec number. Network construction and workload generation
// are excluded via pause/resume.
void BM_NetworkThroughput(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const schema s = workload::make_uniform_schema(2, 8);
  constexpr int kSubs = 300;
  std::uint64_t checks = 0;
  for (auto _ : state) {
    state.PauseTiming();
    network_options o;
    o.use_covering = true;
    o.epsilon = 0.05;
    o.workers = workers;
    o.factory = [](const schema& sc) {
      sfc_covering_options so;
      so.max_cubes = 8192;
      return std::make_unique<sfc_covering_index>(sc, so);
    };
    // std::optional so teardown (joining the pool, destroying every
    // per-link covering index) happens under PauseTiming too — otherwise
    // higher worker counts would be charged for joining more threads.
    std::optional<network> net;
    net.emplace(topology::balanced_tree(2, 3), s, o);
    workload::subscription_gen_options wo;
    wo.kind = workload::workload_kind::uniform;
    wo.mean_width = 0.45;
    wo.wildcard_prob = 0.02;
    workload::subscription_gen sgen(s, wo, 909);
    rng pick(911);
    std::vector<std::pair<int, subscription>> subs;
    subs.reserve(kSubs);
    for (int i = 0; i < kSubs; ++i)
      subs.emplace_back(static_cast<int>(pick.index(15)), sgen.next());
    state.ResumeTiming();
    for (const auto& [at, body] : subs) (void)net->subscribe(at, body);
    state.PauseTiming();
    checks += net->metrics().covering_checks;
    net.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(checks));
  state.counters["checks"] =
      benchmark::Counter(static_cast<double>(checks), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_NetworkThroughput)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SkiplistInsert(benchmark::State& state) {
  skiplist_array sl;
  rng gen(3);
  std::uint64_t id = 0;
  for (auto _ : state) sl.insert(u512(gen.next()) << 64, id++);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SkiplistInsert);

void BM_SkiplistProbe(benchmark::State& state) {
  skiplist_array sl;
  rng gen(3);
  for (int i = 0; i < 100'000; ++i)
    sl.insert(u512(gen.next()), static_cast<std::uint64_t>(i));
  for (auto _ : state) {
    const u512 lo = gen.next();
    benchmark::DoNotOptimize(sl.first_in({lo, lo + (u512(1) << 50)}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SkiplistProbe);

sfc_covering_index& shared_index() {
  static sfc_covering_index* idx = [] {
    const schema s = workload::make_uniform_schema(2, 10);
    auto* index = new sfc_covering_index(s);
    workload::subscription_gen_options wo;
    wo.kind = workload::workload_kind::clustered;
    wo.wildcard_prob = 0.0;
    workload::subscription_gen gen(s, wo, 55);
    for (sub_id id = 0; id < 20'000; ++id) index->insert(id, gen.next());
    return index;
  }();
  return *idx;
}

void BM_CoveringCheckApprox(benchmark::State& state) {
  auto& idx = shared_index();
  const schema s = workload::make_uniform_schema(2, 10);
  workload::subscription_gen_options wo;
  wo.kind = workload::workload_kind::clustered;
  wo.wildcard_prob = 0.0;
  workload::subscription_gen gen(s, wo, 77);
  const double eps = static_cast<double>(state.range(0)) / 100.0;
  covering_check_stats st;
  std::uint64_t probes = 0;
  std::uint64_t cubes = 0;
  std::uint64_t runs = 0;
  std::uint64_t restarts = 0;
  std::uint64_t resumed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.find_covering(gen.next(), eps, &st));
    probes += st.dominance.runs_probed;
    cubes += st.dominance.cubes_enumerated;
    runs += st.dominance.runs_in_plan;
    restarts += st.dominance.probes_restarted;
    resumed += st.dominance.probes_resumed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["probes"] =
      benchmark::Counter(static_cast<double>(probes), benchmark::Counter::kAvgIterations);
  state.counters["cubes"] =
      benchmark::Counter(static_cast<double>(cubes), benchmark::Counter::kAvgIterations);
  state.counters["runs"] =
      benchmark::Counter(static_cast<double>(runs), benchmark::Counter::kAvgIterations);
  state.counters["restarts"] =
      benchmark::Counter(static_cast<double>(restarts), benchmark::Counter::kAvgIterations);
  state.counters["resumed"] =
      benchmark::Counter(static_cast<double>(resumed), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CoveringCheckApprox)->Arg(5)->Arg(20)->Arg(50);

void BM_CoveringInsertErase(benchmark::State& state) {
  const schema s = workload::make_uniform_schema(2, 10);
  sfc_covering_index idx(s);
  workload::subscription_gen gen(s, {}, 88);
  sub_id id = 1'000'000;
  for (auto _ : state) {
    const auto sub = gen.next();
    idx.insert(++id, sub);
    idx.erase(id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoveringInsertErase);

// ---- BM_Churn: sustained mixed-op churn against the covering stack's
// deferred maintenance machinery.
//
// ArgPair: (live subscriptions, mode). Mode 0 = the naive-erase baseline
// (compact_live_fraction 1.0: every erase compacts its region eagerly —
// O(region) memmove / block rewrite per op); mode 1 = deferred tombstones
// (0.5: erases mark, compaction amortizes). Detection state is identical in
// both modes; only erase cost moves — the /1-vs-/0 items_per_second ratio
// at 1M is the PR's >= 10x acceptance bar, which CI pins with
// --require BM_Churn.
//
// The index is the production tiered configuration (skiplist hot tier so
// both modes share identical in-place hot costs and the ratio isolates the
// cold store's erase path, compressed cold store) populated through the
// bulk path, then driven by a seeded churn_gen stream (clustered interests,
// uniform victims — at 1M live subscriptions virtually every withdrawal
// lands in the cold tier, the worst case for eager block rewrites — and
// flash crowds) with a maintenance epoch every 512 ops. Per-op latency is
// sampled with a monotonic clock; p50_ns / p99_ns are reported as counters
// so the ops/sec headline can be gated "at equal p99".
void BM_Churn(benchmark::State& state) {
  const auto n_subs = static_cast<std::size_t>(state.range(0));
  const bool tombstone = state.range(1) != 0;
  const schema s = workload::make_uniform_schema(2, 10);
  sfc_covering_options so;
  so.array = sfc_array_kind::skiplist;
  so.tier_hot_capacity = 4096;
  so.tier_block_entries = 64;
  so.compact_live_fraction = tombstone ? 0.5 : 1.0;
  so.max_cubes = 4096;
  so.settle_on_budget = true;
  sfc_covering_index idx(s, so);

  workload::churn_gen_options co;
  co.subscriptions.kind = workload::workload_kind::clustered;
  co.subscriptions.wildcard_prob = 0.0;
  co.publish_weight = 0.0;  // index-level harness: subscribe/unsubscribe only
  co.victim_skew = 0.0;
  co.flash_prob = 0.002;
  co.flash_len = 64;
  co.warmup_subscriptions = n_subs;
  workload::churn_gen gen(s, co, 4242);

  std::vector<std::pair<sub_id, subscription>> seed;
  seed.reserve(n_subs);
  for (std::size_t i = 0; i < n_subs; ++i) {
    const auto op = gen.next();
    seed.emplace_back(op.id, op.sub);
  }
  idx.insert_batch(seed);
  seed.clear();
  seed.shrink_to_fit();

  constexpr std::size_t kOpsPerIter = 2048;
  constexpr std::size_t kEpoch = 512;
  std::vector<std::uint64_t> latencies;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kOpsPerIter; ++i) {
      const auto op = gen.next();
      const stopwatch timer;
      if (op.kind == workload::churn_op::op_kind::subscribe) {
        idx.insert(op.id, op.sub);
      } else {
        idx.erase(op.id);
      }
      latencies.push_back(timer.elapsed_ns());
      if (++ops % kEpoch == 0) idx.maintain();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  const auto percentile = [&](double p) {
    const auto k = static_cast<std::ptrdiff_t>(p * static_cast<double>(latencies.size() - 1));
    std::nth_element(latencies.begin(), latencies.begin() + k, latencies.end());
    return static_cast<double>(latencies[static_cast<std::size_t>(k)]);
  };
  if (!latencies.empty()) {
    state.counters["p50_ns"] = percentile(0.50);
    state.counters["p99_ns"] = percentile(0.99);
  }
  const maintenance_counters maint = idx.index().maintenance();
  state.counters["tombstones"] = static_cast<double>(maint.tombstones_added);
  state.counters["purged"] = static_cast<double>(maint.tombstones_purged);
  state.counters["compactions"] = static_cast<double>(maint.compactions);
  state.counters["live"] = static_cast<double>(idx.size());
}
BENCHMARK(BM_Churn)
    ->ArgPair(100'000, 0)
    ->ArgPair(100'000, 1)
    ->ArgPair(1'000'000, 0)
    ->ArgPair(1'000'000, 1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The erase path in isolation: one bulk withdrawal (erase_batch — the
// broker's handle_unsubscribe_batch backend) of a random uniform cohort,
// re-inserted untimed so every iteration withdraws from a full index. Same
// ArgPair as BM_Churn. items/sec = erases/sec; the /1-vs-/0 ratio at 1M is
// the headline amortized-O(1)-vs-naive-O(region) number (>= 10x), free of
// the mixed stream's shared subscribe/flush costs.
void BM_ChurnErase(benchmark::State& state) {
  const auto n_subs = static_cast<std::size_t>(state.range(0));
  const bool tombstone = state.range(1) != 0;
  const schema s = workload::make_uniform_schema(2, 10);
  sfc_covering_options so;
  so.array = sfc_array_kind::skiplist;
  so.tier_hot_capacity = 4096;
  so.tier_block_entries = 64;
  so.compact_live_fraction = tombstone ? 0.5 : 1.0;
  so.max_cubes = 4096;
  so.settle_on_budget = true;
  sfc_covering_index idx(s, so);

  workload::subscription_gen_options wo;
  wo.kind = workload::workload_kind::clustered;
  wo.wildcard_prob = 0.0;
  workload::subscription_gen sgen(s, wo, 7171);
  std::vector<std::pair<sub_id, subscription>> subs;
  subs.reserve(n_subs);
  for (sub_id id = 0; id < n_subs; ++id) subs.emplace_back(id, sgen.next());
  idx.insert_batch(subs);

  constexpr std::size_t kCohort = 2048;
  rng pick(7272);
  std::vector<sub_id> cohort;
  std::vector<std::pair<sub_id, subscription>> bodies;
  std::uint64_t erased = 0;
  for (auto _ : state) {
    state.PauseTiming();
    cohort.clear();
    bodies.clear();
    std::set<sub_id> chosen;
    while (chosen.size() < kCohort) chosen.insert(pick.index(n_subs));
    for (const sub_id id : chosen) {
      cohort.push_back(id);
      bodies.emplace_back(id, subs[id].second);
    }
    state.ResumeTiming();
    erased += idx.erase_batch(cohort);
    state.PauseTiming();
    idx.insert_batch(bodies);  // restore, so iterations are comparable
    idx.maintain();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(erased));
  const maintenance_counters maint = idx.index().maintenance();
  state.counters["tombstones"] = static_cast<double>(maint.tombstones_added);
  state.counters["purged"] = static_cast<double>(maint.tombstones_purged);
  state.counters["compactions"] = static_cast<double>(maint.compactions);
}
BENCHMARK(BM_ChurnErase)
    ->ArgPair(100'000, 0)
    ->ArgPair(100'000, 1)
    ->ArgPair(1'000'000, 0)
    ->ArgPair(1'000'000, 1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- BM_ChurnQuery: covering checks interleaved with sustained churn —
// the workload the adaptive head-probe estimate (head_probe == 0) actually
// faces, which neither BM_Churn (publish_weight 0, no queries) nor
// BM_CoveringCheckApprox (static index, no churn) reproduces.
//
// ArgPair: (live subscriptions, head_probe). head_probe 1 = the pinned
// PR-4 scan-only head; 0 = adaptive depth from the plan's running
// hit-at-rank histograms. Detection results and logical stats are
// identical for both (the head only moves the physical restart/resume
// split); items/sec counts covering checks, and query_p50_ns / query_p99_ns
// time find_covering alone, so the /0-vs-/1 comparison is the
// adaptive-default verdict on a churning index. Index config matches
// BM_Churn's production tombstone mode (skiplist hot tier, compressed cold
// store, deferred compaction), so tombstone-laden frontiers — the state
// PR-9 maintenance leaves behind between epochs — are what the queries
// probe.
void BM_ChurnQuery(benchmark::State& state) {
  const auto n_subs = static_cast<std::size_t>(state.range(0));
  const schema s = workload::make_uniform_schema(2, 10);
  sfc_covering_options so;
  so.array = sfc_array_kind::skiplist;
  so.tier_hot_capacity = 4096;
  so.tier_block_entries = 64;
  so.compact_live_fraction = 0.5;
  so.max_cubes = 4096;
  so.settle_on_budget = true;
  so.head_probe = static_cast<int>(state.range(1));
  sfc_covering_index idx(s, so);

  workload::churn_gen_options co;
  co.subscriptions.kind = workload::workload_kind::clustered;
  co.subscriptions.wildcard_prob = 0.0;
  co.publish_weight = 0.0;
  co.victim_skew = 0.0;
  co.flash_prob = 0.002;
  co.flash_len = 64;
  co.warmup_subscriptions = n_subs;
  workload::churn_gen gen(s, co, 4242);

  std::vector<std::pair<sub_id, subscription>> seed;
  seed.reserve(n_subs);
  for (std::size_t i = 0; i < n_subs; ++i) {
    const auto op = gen.next();
    seed.emplace_back(op.id, op.sub);
  }
  idx.insert_batch(seed);
  seed.clear();
  seed.shrink_to_fit();

  workload::subscription_gen_options qo;
  qo.kind = workload::workload_kind::clustered;
  qo.wildcard_prob = 0.0;
  workload::subscription_gen qgen(s, qo, 9191);

  constexpr std::size_t kOpsPerIter = 512;
  constexpr std::size_t kEpoch = 512;      // BM_Churn's maintenance cadence
  constexpr std::size_t kQueryEvery = 4;   // churn ops per covering check
  constexpr double kEps = 0.05;
  std::vector<std::uint64_t> latencies;
  covering_check_stats st;
  std::uint64_t ops = 0;
  std::uint64_t queries = 0;
  std::uint64_t hits = 0;
  std::uint64_t probes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t resumed = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kOpsPerIter; ++i) {
      const auto op = gen.next();
      if (op.kind == workload::churn_op::op_kind::subscribe) {
        idx.insert(op.id, op.sub);
      } else {
        idx.erase(op.id);
      }
      if (++ops % kEpoch == 0) idx.maintain();
      if (ops % kQueryEvery == 0) {
        const auto probe_sub = qgen.next();
        const stopwatch timer;
        const auto hit = idx.find_covering(probe_sub, kEps, &st);
        latencies.push_back(timer.elapsed_ns());
        ++queries;
        if (hit) ++hits;
        probes += st.dominance.runs_probed;
        restarts += st.dominance.probes_restarted;
        resumed += st.dominance.probes_resumed;
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(queries));
  const auto percentile = [&](double p) {
    const auto k = static_cast<std::ptrdiff_t>(p * static_cast<double>(latencies.size() - 1));
    std::nth_element(latencies.begin(), latencies.begin() + k, latencies.end());
    return static_cast<double>(latencies[static_cast<std::size_t>(k)]);
  };
  if (!latencies.empty()) {
    state.counters["query_p50_ns"] = percentile(0.50);
    state.counters["query_p99_ns"] = percentile(0.99);
  }
  const auto per_query = [&](std::uint64_t v) {
    return queries == 0 ? 0.0 : static_cast<double>(v) / static_cast<double>(queries);
  };
  state.counters["hit_rate"] = per_query(hits);
  state.counters["probes"] = per_query(probes);
  state.counters["restarts"] = per_query(restarts);
  state.counters["resumed"] = per_query(resumed);
}
BENCHMARK(BM_ChurnQuery)
    ->ArgPair(100'000, 1)
    ->ArgPair(100'000, 0)
    ->ArgPair(1'000'000, 1)
    ->ArgPair(1'000'000, 0)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// WAL replay throughput: rebuild a broker from a recorded churn history
// (decode every framed record + apply_replay each disposition — no covering
// checks re-run, the records carry the decisions). Arg: log length in
// records. items/sec = records replayed per second, the recovery-time
// headline the checkpoint policy (fault_options::checkpoint_every) bounds.
void BM_RecoveryReplay(benchmark::State& state) {
  const auto n_records = static_cast<int>(state.range(0));
  const schema s = workload::make_uniform_schema(2, 8);
  const std::vector<int> links = {1, 2, 3};
  const covering_index_factory factory = [](const schema& sc) {
    sfc_covering_options so;
    so.max_cubes = 2048;
    return std::make_unique<sfc_covering_index>(sc, so);
  };
  broker_options bo;
  bo.use_covering = true;
  bo.epsilon = 0.1;
  // Record the history once: a subscribe-heavy churn from mixed links,
  // logged the way the fault engine logs it.
  broker writer(0, s, links, factory, bo);
  broker_wal wal;
  network_metrics m;
  workload::subscription_gen_options wo;
  wo.kind = workload::workload_kind::clustered;
  workload::subscription_gen sgen(s, wo, 1234);
  rng gen(1235);
  std::vector<std::pair<sub_id, int>> active;
  for (int i = 0; i < n_records; ++i) {
    const auto from_pick = gen.index(links.size() + 1);
    const int from = from_pick == links.size() ? kLocalLink : links[from_pick];
    wal_record r;
    r.op = static_cast<std::uint64_t>(i) + 1;
    r.from = from;
    r.seq = r.op;
    if (gen.uniform(0, 9) < 7 || active.size() < 4) {
      const sub_id id = static_cast<sub_id>(i) + 1;
      const auto body = sgen.next();
      const auto action = writer.handle_subscribe(from, id, body, m);
      r.k = wal_record::kind::subscribe;
      r.id = id;
      r.body = body;
      r.forwarded_links = action.forward_links;
      active.emplace_back(id, from);
    } else {
      const auto pick = gen.index(active.size());
      const auto [id, link] = active[pick];
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(pick));
      const auto action = writer.handle_unsubscribe(link, id, m);
      r.k = wal_record::kind::unsubscribe;
      r.from = link;
      r.id = id;
      r.withdrawn_links = action.forward_links;
      r.reforwards = action.reforwards;
    }
    wal.append(r);
  }
  for (auto _ : state) {
    const auto rec = wal.recover();
    benchmark::DoNotOptimize(rec.records.size());
    const broker rebuilt = broker::recover(0, s, links, factory, bo, rec);
    benchmark::DoNotOptimize(rebuilt.routing_entries());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n_records);
  state.counters["wal_bytes"] = benchmark::Counter(static_cast<double>(wal.bytes_appended()));
}
BENCHMARK(BM_RecoveryReplay)->Arg(1024)->Arg(8192)->UseRealTime();

// ---- BM_SimdKernels: the level-range kernel library, dispatched vs scalar.
//
// Arg = backend: 0 = the scalar reference backend (simd::scalar::), 1 = the
// runtime-dispatched entry points (simd:: — AVX2/SSE4.2 where the CPU has
// them). The /1 vs /0 ratio of each pair is the vectorization headline the
// PR-8 acceptance bar reads (>= 1.3x on the coalesce and volume kernels);
// CI's bench gate pins the family's presence with --require BM_SimdKernels.
// Inputs model a query-plan level frontier: sorted cube-aligned lows with
// clustered gaps (so coalescing both chains and breaks), 4 Ki lanes — the
// scale of a large level at the paper's universes.

// Sorted, distinct, cube-aligned lows: clusters of `run_len` adjacent cubes
// separated by a skipped cube, so runs form and break continuously.
std::vector<std::uint64_t> frontier_lows(std::size_t n, std::uint64_t cube_cells,
                                         std::size_t run_len) {
  std::vector<std::uint64_t> lows;
  lows.reserve(n);
  std::uint64_t lo = 0;
  while (lows.size() < n) {
    for (std::size_t i = 0; i < run_len && lows.size() < n; ++i) {
      lows.push_back(lo);
      lo += cube_cells;
    }
    lo += cube_cells;  // break the chain
  }
  return lows;
}

void BM_SimdKernelsCoalesce(benchmark::State& state) {
  constexpr std::size_t kLanes = 4096;
  constexpr std::uint64_t kCubeCells = 1u << 12;
  const bool dispatched = state.range(0) != 0;
  const auto lows = frontier_lows(kLanes, kCubeCells, 5);
  std::vector<std::uint64_t> run_lo(kLanes), run_hi(kLanes);
  for (auto _ : state) {
    const std::size_t runs =
        dispatched
            ? simd::coalesce_cubes_u64(lows.data(), kLanes, kCubeCells, run_lo.data(),
                                       run_hi.data())
            : simd::scalar::coalesce_cubes_u64(lows.data(), kLanes, kCubeCells, run_lo.data(),
                                               run_hi.data());
    benchmark::DoNotOptimize(runs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kLanes);
}
BENCHMARK(BM_SimdKernelsCoalesce)->Arg(0)->Arg(1);

void BM_SimdKernelsVolume(benchmark::State& state) {
  // Volume accumulation over a run frontier: extents from the endpoint
  // columns (sub), then the running searched-volume ledger (prefix sum) and
  // the level total (sum) — the plan's per-level accounting kernels.
  constexpr std::size_t kLanes = 4096;
  constexpr std::uint64_t kCubeCells = 1u << 12;
  const bool dispatched = state.range(0) != 0;
  const auto lows = frontier_lows(kLanes, kCubeCells, 5);
  std::vector<std::uint64_t> his(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) his[i] = lows[i] + (kCubeCells - 1);
  std::vector<std::uint64_t> ext(kLanes), cum(kLanes);
  for (auto _ : state) {
    if (dispatched) {
      simd::sub_u64(his.data(), lows.data(), ext.data(), kLanes);
      simd::prefix_sum_u64(ext.data(), cum.data(), kLanes);
      benchmark::DoNotOptimize(simd::sum_u64(ext.data(), kLanes));
    } else {
      simd::scalar::sub_u64(his.data(), lows.data(), ext.data(), kLanes);
      simd::scalar::prefix_sum_u64(ext.data(), cum.data(), kLanes);
      benchmark::DoNotOptimize(simd::scalar::sum_u64(ext.data(), kLanes));
    }
    benchmark::DoNotOptimize(cum.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kLanes);
}
BENCHMARK(BM_SimdKernelsVolume)->Arg(0)->Arg(1);

void BM_SimdKernelsSuffixMin(benchmark::State& state) {
  // The sweep-order suffix-min-rank table: right-to-left masked running
  // minimum, the kernel that lets a frontier sweep stop early.
  constexpr std::size_t kLanes = 4096;
  const bool dispatched = state.range(0) != 0;
  rng gen(17);
  std::vector<std::uint32_t> rank(kLanes), out(kLanes);
  for (auto& r : rank) r = static_cast<std::uint32_t>(gen.uniform(0, kLanes));
  for (auto _ : state) {
    if (dispatched) {
      simd::suffix_min_masked_u32(rank.data(), kLanes, 1, out.data());
    } else {
      simd::scalar::suffix_min_masked_u32(rank.data(), kLanes, 1, out.data());
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kLanes);
}
BENCHMARK(BM_SimdKernelsSuffixMin)->Arg(0)->Arg(1);

void BM_SimdKernelsLowerBound(benchmark::State& state) {
  // The sorted-vector probe bound: key-only partition point over 16-byte
  // {key, id} entries, the per-probe descent of every first_in.
  constexpr std::size_t kPairs = std::size_t{1} << 16;
  const bool dispatched = state.range(0) != 0;
  rng gen(23);
  std::vector<std::uint64_t> words(2 * kPairs);
  for (std::size_t i = 0; i < kPairs; ++i) {
    words[2 * i] = static_cast<std::uint64_t>(i) << 8;  // sorted keys
    words[2 * i + 1] = i;                               // payload
  }
  std::uint64_t probe = 0;
  for (auto _ : state) {
    probe = (probe * 2862933555777941757ULL + 3037000493ULL);
    const std::uint64_t key = (probe % kPairs) << 8;
    const std::size_t it = dispatched
                               ? simd::lower_bound_kv_u64(words.data(), 0, kPairs, key)
                               : simd::scalar::lower_bound_kv_u64(words.data(), 0, kPairs, key);
    benchmark::DoNotOptimize(it);
  }
}
BENCHMARK(BM_SimdKernelsLowerBound)->Arg(0)->Arg(1);

}  // namespace
}  // namespace subcover

// Custom main: unless the caller passes --benchmark_out, also write the
// results as JSON to BENCH_micro.json so perf tracking has a
// machine-readable record of every run (per-op ns plus the probes / cubes /
// runs counters).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--benchmark_out") == 0 ||
        std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
      has_out = true;
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int ac = static_cast<int>(args.size());
  benchmark::Initialize(&ac, args.data());
  if (benchmark::ReportUnrecognizedArguments(ac, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
