// E6 — Problem 2 / Lemma 3.2: an eps-approximate query must search at least
// a (1 - eps) volume fraction of the dominance region; smaller eps costs
// more probes. Over random query regions we measure the achieved coverage
// (min and mean) and the probe counts as eps sweeps, on an empty index (so
// every query pays its full plan — the worst case).
#include <iostream>

#include "bench_common.h"
#include "dominance/dominance_index.h"
#include "util/cli.h"
#include "util/stats.h"
#include "workload/rect_gen.h"

using namespace subcover;

int main(int argc, char** argv) {
  cli_flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  const int queries = static_cast<int>(flags.get_int("queries", 150));
  flags.finish();

  bench::banner("E6", "Coverage/cost tradeoff as epsilon varies", "Problem 2, Lemma 3.2");
  bench::expectation_tracker track;

  for (const int d : {2, 4, 6}) {
    const int k = d <= 4 ? 12 : 8;
    const universe u(d, k);
    dominance_options opts;
    // High-dimensional regions can exceed any enumeration budget (Thm 4.1);
    // settle and report the capped cost like the production index does.
    opts.settle_on_budget = true;
    opts.max_cubes = std::uint64_t{1} << 16;
    dominance_index idx(u, opts);
    bench::section(std::to_string(d) + "-D universe 2^" + std::to_string(k) + ", " +
                   std::to_string(queries) + " random query regions");
    ascii_table table({"eps", "m", "min coverage", "mean coverage", "guarantee 1-eps",
                       "mean cubes", "mean runs probed", "p99 runs probed", "budget hits"});
    for (const double eps : {0.5, 0.3, 0.1, 0.05, 0.02}) {
      rng gen(1234);  // same regions for every eps
      accumulator coverage, cubes, probes;
      std::vector<double> probe_samples;
      bool coverage_ok = true;
      std::uint64_t budget_hits = 0;
      for (int q = 0; q < queries; ++q) {
        const int alpha = static_cast<int>(gen.uniform(0, 2));
        const int gamma = static_cast<int>(gen.uniform(2, static_cast<std::uint64_t>(k - alpha)));
        const auto region = workload::random_extremal(gen, u, gamma, alpha);
        point x(d);
        for (int i = 0; i < d; ++i)
          x[i] = static_cast<std::uint32_t>(u.side() - region.length(i));
        query_stats st;
        (void)idx.query(x, eps, &st);
        coverage.add(static_cast<double>(st.volume_fraction_searched));
        cubes.add(static_cast<double>(st.cubes_enumerated));
        probes.add(static_cast<double>(st.runs_probed));
        probe_samples.push_back(static_cast<double>(st.runs_probed));
        budget_hits += st.budget_exhausted ? 1 : 0;
        // The 1-eps guarantee applies whenever the budget allowed the plan.
        if (!st.budget_exhausted)
          coverage_ok = coverage_ok &&
                        static_cast<double>(st.volume_fraction_searched) >= 1 - eps - 1e-9;
      }
      track.check(coverage_ok, "d=" + std::to_string(d) + " eps=" + fmt_double(eps, 2) +
                                   ": every unbudgeted query searched >= 1-eps of its region");
      table.add_row({fmt_double(eps, 2), std::to_string(idx.truncation_m(eps)),
                     fmt_percent(coverage.min()), fmt_percent(coverage.mean()),
                     fmt_percent(1 - eps), fmt_double(cubes.mean(), 1),
                     fmt_double(probes.mean(), 1), fmt_double(quantile(probe_samples, 0.99), 0),
                     fmt_u64(budget_hits)});
    }
    std::cout << (csv ? table.to_csv() : table.to_string());
  }
  bench::note("Coverage always meets the 1-eps guarantee; probe cost rises as eps shrinks —");
  bench::note("the knob the paper proposes between 'ignore covering' and 'exact covering'.");
  return track.exit_code();
}
