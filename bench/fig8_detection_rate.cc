// E8 — the abstract's claim: approximate covering provides "much of the
// benefits of subscription covering at a fraction of the cost".
//
// Over realistic subscription workloads (uniform / clustered / zipf) we
// index n subscriptions and, for a stream of query subscriptions, compare
// the SFC approximate detector against the exact ground truth:
//   detection rate = covered queries detected / truly covered queries,
//   cost           = runs probed and wall-clock time per check,
// as epsilon sweeps from exact (0) to coarse (0.3).
#include <iostream>

#include "bench_common.h"
#include "covering/linear_covering_index.h"
#include "covering/sfc_covering_index.h"
#include "util/cli.h"
#include "util/stats.h"
#include "workload/subscription_gen.h"

using namespace subcover;

int main(int argc, char** argv) {
  cli_flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  const auto n = static_cast<sub_id>(flags.get_int("subs", 6'000));
  const int queries = static_cast<int>(flags.get_int("queries", 300));
  flags.finish();

  bench::banner("E8", "Covering detection rate vs cost across epsilon",
                "Abstract & Section 1 ('most of the benefits at a fraction of the cost')");
  bench::expectation_tracker track;

  struct config {
    const char* name;
    workload::workload_kind kind;
    int attrs;
    double mean_width;
    int bench_queries;
  };
  for (const config& cfg :
       {config{"uniform-wide", workload::workload_kind::uniform, 2, 0.45, queries},
        config{"uniform", workload::workload_kind::uniform, 2, 0.25, queries},
        config{"clustered", workload::workload_kind::clustered, 2, 0.25, queries},
        config{"zipf", workload::workload_kind::zipf, 2, 0.25, queries},
        // The dimensionality wall: d = 6 pushes the (d/eps)^(d-1) bound past
        // any practical budget, so detection collapses — exactly what the
        // paper's bounds predict for growing d.
        config{"uniform-wide d=6", workload::workload_kind::uniform, 3, 0.45, 120}}) {
    const schema s = workload::make_uniform_schema(cfg.attrs, 8);
    workload::subscription_gen_options wo;
    wo.kind = cfg.kind;
    wo.clusters = 8;
    wo.mean_width = cfg.mean_width;
    // Pure range conjunctions (the paper's subscription model); wildcards
    // produce the degenerate unit-thickness regions measured in E7.
    wo.wildcard_prob = 0.0;
    workload::subscription_gen gen(s, wo, 4242);

    linear_covering_index oracle(s);
    sfc_covering_options so;
    so.max_cubes = 1 << 14;
    sfc_covering_index sfc(s, so);
    for (sub_id id = 0; id < n; ++id) {
      const auto sub = gen.next();
      oracle.insert(id, sub);
      sfc.insert(id, sub);
    }
    std::vector<subscription> query_subs;
    for (int q = 0; q < cfg.bench_queries; ++q) query_subs.push_back(gen.next());
    int truly_covered = 0;
    for (const auto& q : query_subs)
      truly_covered += oracle.find_covering(q, 0.0).has_value() ? 1 : 0;

    bench::section(std::string(cfg.name) + " workload, " + std::to_string(cfg.attrs) +
                   " attributes (d = " + std::to_string(2 * cfg.attrs) + "), n = " +
                   fmt_u64(n) + ", " + std::to_string(cfg.bench_queries) + " queries, " +
                   std::to_string(truly_covered) + " truly covered (linear-scan oracle)");
    ascii_table table({"eps", "detected", "detection rate", "mean runs probed", "mean cubes",
                       "mean check us", "budget hits"});
    bool one_sided = true;
    double best_rate = 0;
    for (const double eps : {0.01, 0.05, 0.1, 0.3}) {
      accumulator probes, cubes, micros;
      int detected = 0;
      std::uint64_t budget_hits = 0;
      for (const auto& q : query_subs) {
        covering_check_stats st;
        const auto hit = sfc.find_covering(q, eps, &st);
        if (hit.has_value()) {
          ++detected;
          // One-sided error: every hit must be a true covering.
          one_sided = one_sided && oracle.find_covering(q, 0.0).has_value();
        }
        budget_hits += st.dominance.budget_exhausted ? 1 : 0;
        probes.add(static_cast<double>(st.dominance.runs_probed));
        cubes.add(static_cast<double>(st.dominance.cubes_enumerated));
        micros.add(static_cast<double>(st.elapsed_ns) / 1000.0);
      }
      const double rate = truly_covered == 0
                              ? 1.0
                              : static_cast<double>(detected) / truly_covered;
      best_rate = std::max(best_rate, rate);
      table.add_row({fmt_double(eps, 2), std::to_string(detected), fmt_percent(rate),
                     fmt_double(probes.mean(), 1), fmt_double(cubes.mean(), 1),
                     fmt_double(micros.mean(), 1), fmt_u64(budget_hits)});
    }
    std::cout << (csv ? table.to_csv() : table.to_string());
    track.check(one_sided, std::string(cfg.name) + ": every detection is a true covering");
    if (truly_covered > 50 && cfg.attrs == 2)
      track.check(best_rate > 0.6,
                  std::string(cfg.name) + ": approximate search finds most coverings");
  }
  bench::note("Detection stays near the exact rate while probe counts collapse — the paper's");
  bench::note("'middle ground' between flooding and exact covering.");
  return track.exit_code();
}
