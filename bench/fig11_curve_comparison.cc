// E11 — [MJFS01] (cited in Section 1.1): "the performance of the Z and
// Hilbert curves for many indexing applications are within a constant
// fraction of each other." We measure runs required by Z, Hilbert, and
// Gray-code curves on identical random query rectangles and on the covering
// workload, reporting the pairwise ratios.
#include <iostream>

#include "bench_common.h"
#include "covering/sfc_covering_index.h"
#include "sfc/runs.h"
#include "util/cli.h"
#include "util/stats.h"
#include "workload/rect_gen.h"
#include "workload/subscription_gen.h"

using namespace subcover;

int main(int argc, char** argv) {
  cli_flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  const int rects = static_cast<int>(flags.get_int("rects", 400));
  flags.finish();

  bench::banner("E11", "Z vs Hilbert vs Gray-code run counts", "[MJFS01] constant-factor claim");
  bench::expectation_tracker track;

  ascii_table table({"universe", "avg runs Z", "avg runs Hilbert", "avg runs Gray",
                     "Hilbert/Z", "Gray/Z"});
  for (const auto& [d, k, max_side] : std::vector<std::tuple<int, int, std::uint64_t>>{
           {2, 8, 128}, {2, 10, 256}, {3, 6, 32}}) {
    const universe u(d, k);
    const auto z = make_curve(curve_kind::z_order, u);
    const auto h = make_curve(curve_kind::hilbert, u);
    const auto g = make_curve(curve_kind::gray_code, u);
    rng gen(13);
    accumulator rz, rh, rg;
    for (int t = 0; t < rects; ++t) {
      const rect r = workload::random_rect(gen, u, max_side);
      rz.add(static_cast<double>(count_runs(*z, r)));
      rh.add(static_cast<double>(count_runs(*h, r)));
      rg.add(static_cast<double>(count_runs(*g, r)));
    }
    const double h_ratio = rh.mean() / rz.mean();
    const double g_ratio = rg.mean() / rz.mean();
    table.add_row({std::to_string(d) + "D k=" + std::to_string(k), fmt_double(rz.mean(), 1),
                   fmt_double(rh.mean(), 1), fmt_double(rg.mean(), 1), fmt_ratio(h_ratio),
                   fmt_ratio(g_ratio)});
    track.check(h_ratio > 0.4 && h_ratio < 1.1,
                "Hilbert within a constant factor of Z (d=" + std::to_string(d) + ")");
    track.check(g_ratio > 0.4 && g_ratio < 1.5,
                "Gray within a constant factor of Z (d=" + std::to_string(d) + ")");
  }
  std::cout << (csv ? table.to_csv() : table.to_string());

  bench::section("covering detection rate/cost per curve (same workload)");
  const schema s = workload::make_uniform_schema(2, 10);
  workload::subscription_gen_options wo;
  wo.kind = workload::workload_kind::clustered;
  wo.wildcard_prob = 0.0;
  ascii_table ct({"curve", "detected", "mean probes", "mean check us"});
  for (const auto kind : {curve_kind::z_order, curve_kind::hilbert, curve_kind::gray_code}) {
    sfc_covering_options co;
    co.curve = kind;
    sfc_covering_index idx(s, co);
    workload::subscription_gen gen(s, wo, 515);
    for (sub_id id = 0; id < 5000; ++id) idx.insert(id, gen.next());
    accumulator probes, micros;
    int detected = 0;
    for (int q = 0; q < 300; ++q) {
      covering_check_stats st;
      detected += idx.find_covering(gen.next(), 0.05, &st).has_value() ? 1 : 0;
      probes.add(static_cast<double>(st.dominance.runs_probed));
      micros.add(static_cast<double>(st.elapsed_ns) / 1000.0);
    }
    ct.add_row({std::string(curve_kind_name(kind)), std::to_string(detected),
                fmt_double(probes.mean(), 1), fmt_double(micros.mean(), 1)});
  }
  std::cout << (csv ? ct.to_csv() : ct.to_string());
  return track.exit_code();
}
