// E5 — the Section 1.2 headline: "the complexity of an eps-approximate query
// is independent of the side lengths of the query region, while the
// complexity of an exhaustive query increases as the (d-1)th power of the
// smallest side length".
//
// Sweep corner-anchored query squares of side 2^g - 1 (worst case for the
// decomposition, aspect ratio 0) and measure, on an empty index,
//   * exhaustive cost: exact cube count (Lemma 3.5) and probed runs;
//   * approximate cost: cubes enumerated / runs probed by the actual query.
// Log-log slopes should be ~(d-1) for exhaustive and ~0 for approximate.
#include <iostream>

#include "bench_common.h"
#include "dominance/dominance_index.h"
#include "sfc/extremal_decomposition.h"
#include "util/cli.h"
#include "util/stats.h"

using namespace subcover;

namespace {

void sweep(int d, int k, double eps, int g_min, int g_max, bool csv,
           bench::expectation_tracker& track) {
  const universe u(d, k);
  dominance_index idx(u);
  bench::section(std::to_string(d) + "-D universe 2^" + std::to_string(k) +
                 ", eps = " + fmt_double(eps, 2));
  ascii_table table({"side 2^g-1", "exhaustive cubes (exact)", "exhaustive runs probed",
                     "approx cubes", "approx runs probed", "approx volume searched"});
  std::vector<double> sides, ex_cubes, ap_runs;
  for (int g = g_min; g <= g_max; ++g) {
    const std::uint64_t side = (std::uint64_t{1} << g) - 1;
    point x(d);
    for (int i = 0; i < d; ++i) x[i] = static_cast<std::uint32_t>(u.side() - side);
    // Exact exhaustive cube count without enumeration.
    const auto region = extremal_rect::query_region(u, x);
    const auto cubes = extremal_cube_count(u, region);
    // Exhaustive probe count, enumerated only when affordable.
    std::string ex_runs = "-";
    if (cubes.bit_width() < 22) {
      query_stats st;
      (void)idx.query(x, 0.0, &st);
      ex_runs = fmt_u64(st.runs_probed);
    }
    query_stats ap;
    (void)idx.query(x, eps, &ap);
    table.add_row({fmt_u64(side), cubes.to_string(), ex_runs, fmt_u64(ap.cubes_enumerated),
                   fmt_u64(ap.runs_probed),
                   fmt_percent(static_cast<double>(ap.volume_fraction_searched))});
    sides.push_back(static_cast<double>(side));
    ex_cubes.push_back(cubes.to_double());
    ap_runs.push_back(static_cast<double>(std::max<std::uint64_t>(ap.runs_probed, 1)));
  }
  std::cout << (csv ? table.to_csv() : table.to_string());
  const auto fe = loglog_fit(sides, ex_cubes);
  const auto fa = loglog_fit(sides, ap_runs);
  bench::note("exhaustive log-log slope = " + fmt_double(fe.slope, 3) +
              "  (theory: d-1 = " + std::to_string(d - 1) + ")");
  bench::note("approximate log-log slope = " + fmt_double(fa.slope, 3) + "  (theory: ~0)");
  track.check(fe.slope > 0.75 * (d - 1) && fe.slope < 1.25 * (d - 1),
              std::to_string(d) + "-D exhaustive cost grows as ~(d-1)th power");
  // The approximate cost converges to a constant once the side exceeds 2^m
  // (small sides have not yet saturated the truncated plan, so a global fit
  // overstates the slope): check tail flatness — doubling the side leaves
  // the cost within 25% while the exhaustive cost roughly 2^(d-1)-folds.
  const auto last = ap_runs.size() - 1;
  const double tail_growth = ap_runs[last] / ap_runs[last - 1];
  bench::note("approximate cost growth over the last side doubling = " +
              fmt_ratio(tail_growth) + " (exhaustive: " +
              fmt_ratio(ex_cubes[last] / ex_cubes[last - 1]) + ")");
  track.check(tail_growth < 1.25,
              std::to_string(d) + "-D approximate cost is ~flat in side length (tail)");
}

}  // namespace

int main(int argc, char** argv) {
  cli_flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  flags.finish();

  bench::banner("E5", "Query cost vs region side length", "Section 1.2 headline claim");
  bench::expectation_tracker track;
  sweep(2, 16, 0.05, 4, 14, csv, track);
  sweep(3, 10, 0.20, 4, 9, csv, track);
  sweep(4, 12, 0.40, 4, 11, csv, track);
  return track.exit_code();
}
