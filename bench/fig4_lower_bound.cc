// E4 — Theorem 4.1: there are query rectangles of aspect ratio alpha whose
// EXHAUSTIVE search on the Z curve costs Omega((2^(alpha-1) * l_d)^(d-1))
// runs, where l_d is the shortest side.
//
// We build the Section 4 adversarial rectangle (shortest side 2^gamma - 1 on
// the least-significant dimension, the others 2^(gamma+alpha) - 1), count
// its exact runs on the Z curve, and verify the lower bound. The growth with
// gamma at fixed alpha shows the (d-1)-th-power dependence on the side
// length that approximate queries avoid (E3/E5).
#include <iostream>

#include "bench_common.h"
#include "dominance/theory.h"
#include "sfc/runs.h"
#include "util/cli.h"
#include "util/stats.h"
#include "workload/rect_gen.h"

using namespace subcover;

int main(int argc, char** argv) {
  cli_flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  flags.finish();

  bench::banner("E4", "Lower bound for exhaustive point dominance",
                "Theorem 4.1, Lemma 4.1, Section 4 construction");
  bench::expectation_tracker track;

  ascii_table table(
      {"d", "alpha", "gamma", "shortest side", "runs (Z, exact)", "lower bound", "runs/bound"});
  bool all_above = true;

  // 2-D sweep: gamma up to 10 keeps enumeration comfortable.
  {
    const universe u(2, 12);
    const auto z = make_curve(curve_kind::z_order, u);
    std::vector<double> sides, runs_series;
    for (const int alpha : {0, 1, 2, 3}) {
      for (int gamma = 3; gamma + alpha <= 10; ++gamma) {
        const auto adv = workload::adversarial_extremal(u, gamma, alpha);
        const auto runs = count_runs(*z, adv);
        const long double bound =
            theory::thm41_lower_bound(alpha, adv.length(u.dims() - 1), u.dims());
        all_above = all_above && static_cast<long double>(runs) >= bound;
        table.add_row({"2", std::to_string(alpha), std::to_string(gamma),
                       fmt_u64(adv.length(1)), fmt_u64(runs),
                       fmt_double(static_cast<double>(bound), 1),
                       fmt_double(static_cast<double>(runs / bound), 3)});
        if (alpha == 0) {
          sides.push_back(static_cast<double>(adv.length(1)));
          runs_series.push_back(static_cast<double>(runs));
        }
      }
    }
    const auto fit = loglog_fit(sides, runs_series);
    bench::note("2-D, alpha=0: log-log slope of runs vs shortest side = " +
                fmt_double(fit.slope, 3) + " (theory: d-1 = 1)");
    track.check(fit.slope > 0.8 && fit.slope < 1.2, "2-D exhaustive cost grows ~linearly (d-1=1)");
  }

  // 3-D sweep.
  {
    const universe u(3, 8);
    const auto z = make_curve(curve_kind::z_order, u);
    std::vector<double> sides, runs_series;
    for (const int alpha : {0, 1, 2}) {
      for (int gamma = 2; gamma + alpha <= 6; ++gamma) {
        const auto adv = workload::adversarial_extremal(u, gamma, alpha);
        const auto runs = count_runs(*z, adv);
        const long double bound =
            theory::thm41_lower_bound(alpha, adv.length(u.dims() - 1), u.dims());
        all_above = all_above && static_cast<long double>(runs) >= bound;
        table.add_row({"3", std::to_string(alpha), std::to_string(gamma),
                       fmt_u64(adv.length(2)), fmt_u64(runs),
                       fmt_double(static_cast<double>(bound), 1),
                       fmt_double(static_cast<double>(runs / bound), 3)});
        if (alpha == 0) {
          sides.push_back(static_cast<double>(adv.length(2)));
          runs_series.push_back(static_cast<double>(runs));
        }
      }
    }
    const auto fit = loglog_fit(sides, runs_series);
    bench::note("3-D, alpha=0: log-log slope of runs vs shortest side = " +
                fmt_double(fit.slope, 3) + " (theory: d-1 = 2)");
    track.check(fit.slope > 1.6 && fit.slope < 2.4,
                "3-D exhaustive cost grows ~quadratically (d-1=2)");
  }

  std::cout << (csv ? table.to_csv() : table.to_string());
  track.check(all_above, "every measured run count is above the Theorem 4.1 lower bound");
  return track.exit_code();
}
