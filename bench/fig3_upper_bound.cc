// E3 — Theorem 3.1 / Lemma 3.7: the cost of an eps-approximate point
// dominance query is at most m * [2^alpha * (2^m - 1)]^(d-1) standard cubes
// with m = ceil(log2(2d/eps)).
//
// For the worst-case side-length profile of Lemma 3.6 we compute the EXACT
// number of cubes in the truncated decomposition (Lemma 3.5 closed form, no
// enumeration) and compare it against the bound across dimensions, aspect
// ratios and epsilons. Where the decomposition is small enough we also
// enumerate runs to show runs <= cubes (Lemma 3.1).
#include <iostream>

#include "bench_common.h"
#include "dominance/theory.h"
#include "sfc/extremal_decomposition.h"
#include "sfc/runs.h"
#include "util/cli.h"
#include "workload/rect_gen.h"

using namespace subcover;

int main(int argc, char** argv) {
  cli_flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  const auto run_budget = static_cast<std::uint64_t>(flags.get_int("run-budget", 200'000));
  flags.finish();

  bench::banner("E3", "Upper bound for approximate point dominance",
                "Theorem 3.1, Lemmas 3.2/3.6/3.7");
  bench::expectation_tracker track;

  ascii_table table({"d", "alpha", "eps", "m", "cubes (exact)", "runs (Z)",
                     "paper bound", "general bound", "cubes/general"});
  bool all_within = true;
  int paper_violations = 0;
  for (const int d : {2, 3, 4}) {
    const int k = std::min(24, 512 / d);
    const universe u(d, k);
    for (const int alpha : {0, 1, 2, 3}) {
      for (const double eps : {0.5, 0.2, 0.1, 0.05, 0.01}) {
        const int m = theory::lemma32_min_m(eps, d);
        const int gamma = k - alpha;
        const auto wc = workload::worst_case_extremal(u, gamma, alpha, m);
        const auto truncated = wc.truncated(u, m);
        const auto cubes = extremal_cube_count(u, truncated);
        const long double paper_bound = theory::lemma37_cube_bound(m, alpha, d);
        const long double general_bound = theory::lemma37_cube_bound_general(m, alpha, d);
        const long double ratio = cubes.to_long_double() / general_bound;
        all_within = all_within && ratio <= 1.0L;
        if (cubes.to_long_double() > paper_bound) ++paper_violations;

        std::string runs = "-";
        if (cubes.bit_width() <= 40 && cubes.low64() <= run_budget) {
          const auto z = make_curve(curve_kind::z_order, u);
          runs = fmt_u64(count_runs(*z, truncated.to_rect(u)));
        }
        table.add_row({std::to_string(d), std::to_string(alpha), fmt_double(eps, 2),
                       std::to_string(m), cubes.to_string(), runs,
                       fmt_sci(static_cast<double>(paper_bound)),
                       fmt_sci(static_cast<double>(general_bound)),
                       fmt_double(static_cast<double>(ratio), 4)});
      }
    }
  }
  std::cout << (csv ? table.to_csv() : table.to_string());

  track.check(all_within,
              "every exact cube count is within the assumption-free Lemma 3.7 bound");
  bench::note("Finding: the paper's literal bound (whose Case 2.1 assumes 2^alpha > d-1) is");
  bench::note("exceeded in " + std::to_string(paper_violations) +
              " small-alpha configurations; the general form of the same derivation, with the");
  bench::note("extra factor (1 + (d-1)/2^alpha), always holds. The O(.) of Theorem 3.1 is");
  bench::note("unaffected. The bound is independent of absolute side lengths (only m, alpha, d");
  bench::note("enter) — the Section 1.2 headline: approximate cost does not grow with region size.");
  return track.exit_code();
}
