// E1 — Figure 1: "For the same Sx x Sy rectangle, there are (a) two runs for
// the Hilbert SFC and (b) three runs for the Z SFC."
//
// We census every axis-aligned rectangle of small 2-D universes, count runs
// under both curves, report the head-to-head distribution, and exhibit a
// concrete rectangle with runs(Hilbert) = 2 and runs(Z) = 3.
#include <iostream>
#include <optional>

#include "bench_common.h"
#include "sfc/runs.h"
#include "util/cli.h"

using namespace subcover;

int main(int argc, char** argv) {
  cli_flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  flags.finish();

  bench::banner("E1", "Runs needed by Hilbert vs Z on identical rectangles",
                "Figure 1 (Section 2)");
  bench::expectation_tracker track;

  ascii_table table({"universe", "rectangles", "H<Z", "H=Z", "H>Z", "avg runs Z",
                     "avg runs Hilbert", "max Z/H ratio"});
  std::optional<rect> example;
  for (const int k : {3, 4, 5}) {
    const universe u(2, k);
    const auto z = make_curve(curve_kind::z_order, u);
    const auto h = make_curve(curve_kind::hilbert, u);
    const std::uint32_t side = u.coord_max();
    std::uint64_t total = 0, h_wins = 0, ties = 0, z_wins = 0;
    std::uint64_t sum_z = 0, sum_h = 0;
    double max_ratio = 0;
    for (std::uint32_t x0 = 0; x0 <= side; ++x0)
      for (std::uint32_t y0 = 0; y0 <= side; ++y0)
        for (std::uint32_t x1 = x0; x1 <= side; ++x1)
          for (std::uint32_t y1 = y0; y1 <= side; ++y1) {
            const rect r(point{x0, y0}, point{x1, y1});
            const auto rz = count_runs(*z, r);
            const auto rh = count_runs(*h, r);
            ++total;
            sum_z += rz;
            sum_h += rh;
            if (rh < rz) ++h_wins;
            else if (rh == rz) ++ties;
            else ++z_wins;
            max_ratio = std::max(max_ratio, static_cast<double>(rz) / static_cast<double>(rh));
            if (!example.has_value() && rh == 2 && rz == 3) example = r;
          }
    table.add_row({std::to_string(1 << k) + "x" + std::to_string(1 << k), fmt_u64(total),
                   fmt_u64(h_wins), fmt_u64(ties), fmt_u64(z_wins),
                   fmt_double(static_cast<double>(sum_z) / static_cast<double>(total), 3),
                   fmt_double(static_cast<double>(sum_h) / static_cast<double>(total), 3),
                   fmt_ratio(max_ratio)});
  }
  std::cout << (csv ? table.to_csv() : table.to_string());

  track.check(example.has_value(),
              "a rectangle with runs(Hilbert)=2 and runs(Z)=3 exists (the Figure 1 shape)");
  if (example.has_value()) {
    bench::note("example rectangle (8x8 universe coordinates): " + example->to_string());
    const universe u(2, 3);
    const auto z = make_curve(curve_kind::z_order, u);
    const auto h = make_curve(curve_kind::hilbert, u);
    bench::note("  Z runs:");
    for (const auto& run : region_runs(*z, *example)) bench::note("    " + run.to_string());
    bench::note("  Hilbert runs:");
    for (const auto& run : region_runs(*h, *example)) bench::note("    " + run.to_string());
  }
  return track.exit_code();
}
