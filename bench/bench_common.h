// Shared helpers for the experiment harness. Every bench binary:
//   * runs with no arguments (defaults reproduce the paper's setting),
//   * prints a banner naming the figure/claim it reproduces,
//   * prints ASCII tables with measured values next to the paper's
//     expectation where one exists,
//   * exits nonzero if a sanity expectation is violated, so the bench suite
//     doubles as a coarse regression harness.
#pragma once

#include <iostream>
#include <string>

#include "util/table.h"

namespace subcover::bench {

inline void banner(const std::string& id, const std::string& title,
                   const std::string& paper_anchor) {
  std::cout << "\n================================================================\n"
            << id << ": " << title << "\n"
            << "Reproduces: " << paper_anchor << "\n"
            << "================================================================\n";
}

inline void section(const std::string& text) { std::cout << "\n--- " << text << " ---\n"; }

inline void note(const std::string& text) { std::cout << text << "\n"; }

// Tracks pass/fail of the bench's own sanity expectations.
class expectation_tracker {
 public:
  void check(bool ok, const std::string& what) {
    if (ok) {
      std::cout << "[ok] " << what << "\n";
    } else {
      std::cout << "[MISMATCH] " << what << "\n";
      failed_ = true;
    }
  }
  [[nodiscard]] int exit_code() const { return failed_ ? 1 : 0; }

 private:
  bool failed_ = false;
};

}  // namespace subcover::bench
