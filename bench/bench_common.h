// Shared helpers for the experiment harness. Every bench binary:
//   * runs with no arguments (defaults reproduce the paper's setting),
//   * prints a banner naming the figure/claim it reproduces,
//   * prints ASCII tables with measured values next to the paper's
//     expectation where one exists,
//   * exits nonzero if a sanity expectation is violated, so the bench suite
//     doubles as a coarse regression harness.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>

#include "util/table.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace subcover::bench {

// Peak resident set size of this process in bytes; 0 where the platform
// offers no getrusage. Monotone over the process lifetime, so a reading
// after building an index upper-bounds everything built so far.
inline std::uint64_t peak_rss_bytes() {
#if defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // already bytes
#elif defined(__unix__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#else
  return 0;
#endif
}

inline void banner(const std::string& id, const std::string& title,
                   const std::string& paper_anchor) {
  std::cout << "\n================================================================\n"
            << id << ": " << title << "\n"
            << "Reproduces: " << paper_anchor << "\n"
            << "================================================================\n";
}

inline void section(const std::string& text) { std::cout << "\n--- " << text << " ---\n"; }

inline void note(const std::string& text) { std::cout << text << "\n"; }

// Tracks pass/fail of the bench's own sanity expectations.
class expectation_tracker {
 public:
  void check(bool ok, const std::string& what) {
    if (ok) {
      std::cout << "[ok] " << what << "\n";
    } else {
      std::cout << "[MISMATCH] " << what << "\n";
      failed_ = true;
    }
  }
  [[nodiscard]] int exit_code() const { return failed_ ? 1 : 0; }

 private:
  bool failed_ = false;
};

}  // namespace subcover::bench
