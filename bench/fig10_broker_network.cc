// E10 — the motivation of Section 1: covering reduces the number of
// subscriptions propagated and the routing-table sizes in a broker network,
// and approximate covering retains most of that benefit at a fraction of the
// detection cost — without losing a single delivery (one-sided error).
//
// A 15-broker tree receives a clustered subscription workload and a stream
// of events, under: flooding (no covering), exact covering (linear-scan
// detector), SFC exhaustive-within-budget, SFC approximate (two epsilons),
// and the unsafe Monte-Carlo detector (which loses deliveries).
#include <chrono>
#include <iostream>

#include "bench_common.h"
#include "broker/network.h"
#include "covering/linear_covering_index.h"
#include "covering/sampled_covering_index.h"
#include "covering/sfc_covering_index.h"
#include "util/cli.h"
#include "workload/event_gen.h"
#include "workload/subscription_gen.h"

using namespace subcover;

namespace {

struct mode {
  std::string name;
  bool use_covering;
  double epsilon;
  covering_index_factory factory;
  bool safe;  // completeness expected
};

}  // namespace

int main(int argc, char** argv) {
  cli_flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  const int subs = static_cast<int>(flags.get_int("subs", 1200));
  const int events = static_cast<int>(flags.get_int("events", 250));
  // 0 = deterministic sequential engine; >= 1 = sharded parallel engine on
  // that many workers (identical results and metric totals either way —
  // only the wall clock moves).
  const int workers = static_cast<int>(flags.get_int("workers", 0));
  flags.finish();

  bench::banner("E10", "Broker network: covering modes end to end",
                "Section 1 motivation (routing tables, subscription traffic)");
  bench::expectation_tracker track;

  const schema s = workload::make_uniform_schema(2, 8);
  const auto linear_factory = [](const schema& sc) {
    return std::make_unique<linear_covering_index>(sc);
  };
  const auto sfc_factory = [](const schema& sc) {
    sfc_covering_options so;
    so.max_cubes = 8192;  // bounded search: degenerate checks settle fast
    return std::make_unique<sfc_covering_index>(sc, so);
  };
  const auto mc_factory = [](const schema& sc) {
    return std::make_unique<sampled_covering_index>(sc, 8);
  };

  const std::vector<mode> modes = {
      {"flooding", false, 0.0, linear_factory, true},
      {"exact (linear)", true, 0.0, linear_factory, true},
      {"sfc exhaustive*", true, 0.0, sfc_factory, true},
      {"sfc eps=0.05", true, 0.05, sfc_factory, true},
      {"sfc eps=0.20", true, 0.20, sfc_factory, true},
      {"mc-sampled (unsafe)", true, 0.0, mc_factory, false},
  };

  ascii_table table({"mode", "sub msgs", "table entries", "event msgs", "lost deliveries",
                     "cov checks", "cov hit rate", "cov time ms", "sub wall ms"});
  std::uint64_t flood_msgs = 0, flood_entries = 0;
  std::uint64_t exact_msgs = 0;
  std::uint64_t approx05_msgs = 0;
  for (const auto& m : modes) {
    network_options o;
    o.use_covering = m.use_covering;
    o.epsilon = m.epsilon;
    o.factory = m.factory;
    o.workers = workers;
    network net(topology::balanced_tree(2, 3), s, o);

    workload::subscription_gen_options wo;
    wo.kind = workload::workload_kind::uniform;
    wo.mean_width = 0.45;
    wo.wildcard_prob = 0.02;
    workload::subscription_gen sgen(s, wo, 909);
    workload::event_gen egen(s, 910);
    rng pick(911);
    const auto sub_start = std::chrono::steady_clock::now();
    for (int i = 0; i < subs; ++i)
      (void)net.subscribe(static_cast<int>(pick.index(15)), sgen.next());
    const double sub_wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - sub_start)
            .count();

    std::uint64_t lost = 0;
    for (int e = 0; e < events; ++e) {
      const auto ev = egen.next();
      const auto delivered = net.publish(static_cast<int>(pick.index(15)), ev);
      const auto expected = net.expected_recipients(ev);
      lost += expected.size() - delivered.size();
    }
    const auto& metrics = net.metrics();
    const double hit_rate = metrics.covering_checks == 0
                                ? 0.0
                                : static_cast<double>(metrics.covering_hits) /
                                      static_cast<double>(metrics.covering_checks);
    table.add_row({m.name, fmt_u64(metrics.subscription_messages),
                   fmt_u64(net.total_routing_entries()), fmt_u64(metrics.event_messages),
                   fmt_u64(lost), fmt_u64(metrics.covering_checks), fmt_percent(hit_rate),
                   fmt_double(static_cast<double>(metrics.covering_check_ns) / 1e6, 1),
                   fmt_double(sub_wall_ms, 1)});

    if (m.name == "flooding") {
      flood_msgs = metrics.subscription_messages;
      flood_entries = net.total_routing_entries();
    }
    if (m.name == "exact (linear)") exact_msgs = metrics.subscription_messages;
    if (m.name == "sfc eps=0.05") approx05_msgs = metrics.subscription_messages;
    if (m.safe) {
      track.check(lost == 0, m.name + ": no deliveries lost");
    } else {
      track.check(lost > 0, m.name + ": two-sided error loses deliveries (expected)");
    }
  }
  std::cout << (csv ? table.to_csv() : table.to_string());
  bench::note("* sfc exhaustive = epsilon 0 within the cube budget (degenerate regions settle).");
  bench::note("engine: " + (workers == 0 ? std::string("deterministic sequential FIFO")
                                         : "parallel, " + std::to_string(workers) + " workers") +
              " (results and metric totals are engine-independent)");

  track.check(exact_msgs < flood_msgs, "exact covering reduces subscription traffic");
  track.check(approx05_msgs < flood_msgs, "approximate covering reduces subscription traffic");
  const double retained =
      flood_msgs == exact_msgs
          ? 1.0
          : static_cast<double>(flood_msgs - approx05_msgs) /
                static_cast<double>(flood_msgs - exact_msgs);
  bench::note("eps=0.05 retains " + fmt_percent(retained) +
              " of exact covering's traffic reduction (flooding " + fmt_u64(flood_msgs) +
              " -> exact " + fmt_u64(exact_msgs) + " msgs; tables " + fmt_u64(flood_entries) +
              " entries under flooding)");
  track.check(retained > 0.5, "approximate covering retains most of the benefit");
  return track.exit_code();
}
