// E2 — Figure 2 and the Section 3.1 intuition: in a 512x512 universe indexed
// by the Z curve,
//   * the corner-anchored 256x256 query region is a single run;
//   * the 257x257 region needs 385 runs exhaustively, yet one run covers
//     more than 99% of its volume and most of the rest are single cells;
//   * a 0.01-approximate point dominance query therefore probes a handful
//     of runs instead of 385.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "dominance/dominance_index.h"
#include "sfc/extremal_decomposition.h"
#include "sfc/runs.h"
#include "util/cli.h"

using namespace subcover;

namespace {

std::array<std::uint64_t, kMaxDims> square(std::uint64_t side) {
  std::array<std::uint64_t, kMaxDims> a{};
  a[0] = a[1] = side;
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  cli_flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  flags.finish();

  bench::banner("E2", "The 256 vs 257 query regions on the Z curve", "Figure 2, Section 3.1");
  bench::expectation_tracker track;

  const universe u(2, 9);
  const auto z = make_curve(curve_kind::z_order, u);

  ascii_table table({"query region", "cubes (Lemma 3.5)", "runs", "largest-run volume",
                     "paper expectation"});
  std::uint64_t runs257 = 0;
  for (const std::uint64_t side : {256ULL, 257ULL, 384ULL, 512ULL}) {
    const extremal_rect r(u, square(side));
    const auto cubes = extremal_cube_count(u, r);
    const auto runs = region_runs(*z, r);
    u512 largest = 0;
    for (const auto& run : runs)
      if (largest < run.cell_count()) largest = run.cell_count();
    const double frac = largest.to_double() / static_cast<double>(r.volume_ld());
    std::string expect = "-";
    if (side == 256) expect = "1 run";
    if (side == 257) {
      expect = "385 runs, largest > 99%";
      runs257 = runs.size();
    }
    table.add_row({std::to_string(side) + "x" + std::to_string(side), cubes.to_string(),
                   fmt_u64(runs.size()), fmt_percent(frac), expect});
  }
  std::cout << (csv ? table.to_csv() : table.to_string());

  {
    const extremal_rect r(u, square(256));
    track.check(count_runs(*z, r) == 1, "256x256 region is a single run");
  }
  {
    const extremal_rect r(u, square(257));
    const auto runs = region_runs(*z, r);
    track.check(runs.size() == 385, "257x257 region needs 385 runs (paper: 385)");
    u512 largest = 0;
    for (const auto& run : runs)
      if (largest < run.cell_count()) largest = run.cell_count();
    track.check(largest.to_double() / static_cast<double>(r.volume_ld()) > 0.99,
                "largest run covers > 99% of the 257x257 region");
    // Distribution of the small runs.
    std::vector<double> small_fracs;
    for (const auto& run : runs)
      if (run.cell_count() != largest)
        small_fracs.push_back(run.cell_count().to_double() /
                              static_cast<double>(r.volume_ld()));
    std::sort(small_fracs.begin(), small_fracs.end());
    bench::note("small runs: " + std::to_string(small_fracs.size()) + ", median volume share " +
                fmt_percent(small_fracs[small_fracs.size() / 2], 4) +
                " (paper: ~0.015% each)");
  }

  bench::section("approximate vs exhaustive on the 257x257 region (empty index)");
  dominance_index idx(u);
  ascii_table qt({"epsilon", "m", "cubes enumerated", "runs probed", "volume searched"});
  for (const double eps : {0.0, 0.05, 0.01, 0.001}) {
    query_stats st;
    (void)idx.query(point{255, 255}, eps, &st);
    qt.add_row({fmt_double(eps, 3), std::to_string(st.truncation_m),
                fmt_u64(st.cubes_enumerated), fmt_u64(st.runs_probed),
                fmt_percent(static_cast<double>(st.volume_fraction_searched))});
  }
  std::cout << (csv ? qt.to_csv() : qt.to_string());

  query_stats st;
  (void)idx.query(point{255, 255}, 0.01, &st);
  track.check(st.runs_probed <= 4, "0.01-approximate query probes <= 4 runs (vs 385)");
  query_stats ex;
  (void)idx.query(point{255, 255}, 0.0, &ex);
  track.check(ex.runs_probed >= runs257 && ex.runs_probed <= 514,
              "exhaustive query probes all ~385 runs (between 385 merged runs and 514 cubes)");
  return track.exit_code();
}
