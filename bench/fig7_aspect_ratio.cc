// E7 — aspect-ratio dependence (Section 1.2 discussion): both bounds carry a
// 2^alpha factor, so cost grows with the aspect ratio of the query region;
// the degenerate M x 1 stripe is the worst case the paper calls out as badly
// handled by SFCs.
#include <iostream>

#include "bench_common.h"
#include "dominance/dominance_index.h"
#include "dominance/theory.h"
#include "sfc/extremal_decomposition.h"
#include "sfc/runs.h"
#include "util/cli.h"
#include "workload/rect_gen.h"

using namespace subcover;

int main(int argc, char** argv) {
  cli_flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  flags.finish();

  bench::banner("E7", "Cost vs aspect ratio alpha", "Section 1.2 discussion, Lemma 3.7");
  bench::expectation_tracker track;

  const double eps = 0.05;
  {
    const universe u(2, 20);
    dominance_index idx(u);
    const int m = idx.truncation_m(eps);
    bench::section("2-D, b(shortest side) = 8 fixed, alpha sweeps (eps = 0.05)");
    ascii_table table({"alpha", "sides", "approx cubes", "approx runs probed",
                       "Lemma 3.7 bound", "exhaustive cubes (exact)"});
    std::uint64_t prev_cubes = 0;
    bool monotone = true;
    for (int alpha = 0; alpha <= 8; ++alpha) {
      const auto wc = workload::worst_case_extremal(u, 8, alpha, m);
      point x(2);
      for (int i = 0; i < 2; ++i) x[i] = static_cast<std::uint32_t>(u.side() - wc.length(i));
      query_stats st;
      (void)idx.query(x, eps, &st);
      const auto exhaustive = extremal_cube_count(u, extremal_rect::query_region(u, x));
      table.add_row({std::to_string(alpha),
                     fmt_u64(wc.length(0)) + " x " + fmt_u64(wc.length(1)),
                     fmt_u64(st.cubes_enumerated), fmt_u64(st.runs_probed),
                     fmt_sci(static_cast<double>(theory::lemma37_cube_bound_general(m, alpha, 2))),
                     exhaustive.to_string()});
      if (alpha > 0 && st.cubes_enumerated < prev_cubes) monotone = false;
      prev_cubes = st.cubes_enumerated;
      track.check(static_cast<long double>(st.cubes_enumerated) <=
                      theory::lemma37_cube_bound_general(m, alpha, 2),
                  "alpha=" + std::to_string(alpha) + " within the (general) Lemma 3.7 bound");
    }
    std::cout << (csv ? table.to_csv() : table.to_string());
    track.check(monotone, "approximate cost is non-decreasing in alpha");
  }

  {
    bench::section("the degenerate M x 1 stripe (paper: 'not efficiently handled')");
    const universe u(2, 12);
    const auto z = make_curve(curve_kind::z_order, u);
    ascii_table table({"stripe", "exhaustive runs", "runs / M"});
    for (int g = 4; g <= 10; ++g) {
      const std::uint64_t m_side = (std::uint64_t{1} << g) - 1;
      std::array<std::uint64_t, kMaxDims> len{};
      len[0] = m_side;
      len[1] = 1;
      const extremal_rect stripe(u, len);
      const auto runs = count_runs(*z, stripe);
      table.add_row({fmt_u64(m_side) + " x 1", fmt_u64(runs),
                     fmt_double(static_cast<double>(runs) / static_cast<double>(m_side), 3)});
      // Every cell of an M x 1 stripe anchored at the odd corner is its own
      // run: cost ~ M, the worst case.
      track.check(runs >= m_side / 2, "stripe " + fmt_u64(m_side) + "x1 costs ~M runs");
    }
    std::cout << (csv ? table.to_csv() : table.to_string());
  }
  return track.exit_code();
}
