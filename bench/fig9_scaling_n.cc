// E9 — Section 1.3: "ours is the first algorithm for exact or approximate
// covering with a time complexity that is sublinear in the number of
// subscriptions being indexed."
//
// Index n subscriptions and measure per-check covering-detection latency as
// n grows, for the SFC approximate detector vs the linear-scan exact
// baseline and the Monte-Carlo baseline (both Theta(n) per check). The SFC
// curve should stay nearly flat; the scan baselines grow linearly.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "covering/linear_covering_index.h"
#include "covering/sampled_covering_index.h"
#include "covering/sfc_covering_index.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/timer.h"
#include "workload/subscription_gen.h"

using namespace subcover;

int main(int argc, char** argv) {
  cli_flags flags(argc, argv);
  const bool csv = flags.get_bool("csv", false);
  const int queries = static_cast<int>(flags.get_int("queries", 250));
  const auto max_n = static_cast<sub_id>(flags.get_int("max-subs", 100'000));
  // --subs extends the sweep past the default ceiling (300k, 1M, ... up to
  // N); 0 keeps the classic --max-subs behavior. The default output is
  // unchanged.
  const auto subs = static_cast<sub_id>(flags.get_int("subs", 0));
  flags.finish();
  const sub_id ceiling = subs > 0 ? subs : max_n;

  bench::banner("E9", "Covering-check latency vs number of indexed subscriptions",
                "Section 1.3 (sublinearity in n)");
  bench::expectation_tracker track;

  const schema s = workload::make_uniform_schema(2, 8);
  workload::subscription_gen_options wo;
  wo.kind = workload::workload_kind::uniform;
  wo.mean_width = 0.45;
  wo.wildcard_prob = 0.0;
  workload::subscription_gen gen(s, wo, 1717);

  // Bounded-search configuration: degenerate queries settle after 4096
  // cubes instead of chasing the Theorem 4.1 tail.
  sfc_covering_options so;
  so.max_cubes = 4096;
  sfc_covering_index sfc(s, so);
  linear_covering_index linear(s);
  sampled_covering_index sampled(s, 16);

  std::vector<subscription> query_subs;
  {
    workload::subscription_gen qgen(s, wo, 2718);
    for (int q = 0; q < queries; ++q) query_subs.push_back(qgen.next());
  }

  ascii_table table({"n", "sfc median us", "sfc probes", "linear us (covered)",
                     "linear us (uncovered)", "mc-sampled us", "sfc detection rate",
                     "peak rss MB"});
  std::vector<double> ns, sfc_probe_series;
  std::vector<double> ns_uncov, linear_uncov_series;  // only rows with misses
  std::vector<sub_id> sweep = {1'000, 3'000, 10'000, 30'000, 100'000, 300'000, 1'000'000};
  if (std::find(sweep.begin(), sweep.end(), ceiling) == sweep.end())
    sweep.push_back(ceiling);
  std::sort(sweep.begin(), sweep.end());
  sub_id next_id = 0;
  for (const sub_id n : sweep) {
    if (n > ceiling) break;
    while (next_id < n) {
      const auto sub = gen.next();
      sfc.insert(next_id, sub);
      linear.insert(next_id, sub);
      sampled.insert(next_id, sub);
      ++next_id;
    }
    std::vector<double> sfc_us;
    accumulator lin_cov_us, lin_uncov_us, mc_us, probes;
    int sfc_found = 0, lin_found = 0;
    for (const auto& q : query_subs) {
      covering_check_stats st;
      sfc_found += sfc.find_covering(q, 0.05, &st).has_value() ? 1 : 0;
      sfc_us.push_back(static_cast<double>(st.elapsed_ns) / 1000.0);
      probes.add(static_cast<double>(st.dominance.runs_probed));
      // Covered queries let the scan exit early; the uncovered case is the
      // Theta(n) worst case the sublinearity claim is about.
      const bool covered = linear.find_covering(q, 0.0, &st).has_value();
      lin_found += covered ? 1 : 0;
      (covered ? lin_cov_us : lin_uncov_us).add(static_cast<double>(st.elapsed_ns) / 1000.0);
      (void)sampled.find_covering(q, 0.0, &st);
      mc_us.add(static_cast<double>(st.elapsed_ns) / 1000.0);
    }
    const double rate = lin_found == 0 ? 1.0 : static_cast<double>(sfc_found) / lin_found;
    const double sfc_median = quantile(sfc_us, 0.5);
    table.add_row({fmt_u64(n), fmt_double(sfc_median, 1), fmt_double(probes.mean(), 1),
                   lin_cov_us.count() > 0 ? fmt_double(lin_cov_us.mean(), 1) : "-",
                   lin_uncov_us.count() > 0 ? fmt_double(lin_uncov_us.mean(), 1) : "-",
                   fmt_double(mc_us.mean(), 1), fmt_percent(rate),
                   fmt_double(static_cast<double>(bench::peak_rss_bytes()) / (1024.0 * 1024.0),
                              1)});
    ns.push_back(static_cast<double>(n));
    sfc_probe_series.push_back(std::max(probes.mean(), 0.01));
    if (lin_uncov_us.count() > 0) {
      ns_uncov.push_back(static_cast<double>(n));
      linear_uncov_series.push_back(std::max(lin_uncov_us.mean(), 0.01));
    }
  }
  std::cout << (csv ? table.to_csv() : table.to_string());

  const auto sfc_fit = loglog_fit(ns, sfc_probe_series);
  const auto lin_fit = loglog_fit(ns_uncov, linear_uncov_series);
  bench::note("log-log slope vs n: sfc probes (paper cost model) = " +
              fmt_double(sfc_fit.slope, 2) + ", uncovered linear-scan latency = " +
              fmt_double(lin_fit.slope, 2) + " (1.0 = linear growth)");
  bench::note("SFC probe counts are independent of n (they fall as hits arrive earlier); the");
  bench::note("scan's uncovered case grows linearly. Wall-clock per probe (~us skip-list");
  bench::note("descents + cube enumeration) means the crossover vs a cache-friendly memory");
  bench::note("scan sits beyond n ~ 10^5 on this hardware — the claim is about the cost");
  bench::note("model and asymptotics, and the shape reproduces.");
  track.check(sfc_fit.slope < 0.1, "SFC probe count does not grow with n (paper cost model)");
  track.check(lin_fit.slope > 0.6, "uncovered linear-scan latency grows ~linearly in n");
  return track.exit_code();
}
