#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on per-op regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold 0.10]
                     [--bytes-threshold 0.10] [--compression-floor 3.0]
                     [--counters-only] [--require PREFIX ...]

For every benchmark present in both files, the per-op real_time of CURRENT
is compared against BASELINE; the script exits non-zero if any benchmark is
more than THRESHOLD slower (default +10%). Throughput benchmarks — those
reporting items_per_second, e.g. the BM_NetworkThroughput family, whose
per-iteration real_time tracks a whole workload rather than one op — are
gated on items/sec instead: a drop of more than THRESHOLD fails. Benchmarks
present in only one file are reported but never fail the run, so adding or
retiring benchmarks does not break CI. Improvements are reported for the
perf trajectory.

Bytes gating: benchmarks reporting a `bytes_per_sub` counter (the
BM_MemoryFootprint family) are additionally gated on that counter — growth
beyond BYTES_THRESHOLD vs the baseline fails. Bytes are deterministic
(structure audits, not timings), so this gate is meaningful even on
unoptimized builds: `--counters-only` skips every timing gate and checks
only the bytes counters, which is what the CI memory-footprint smoke job
runs against a Debug binary.

Required families: `--require PREFIX` (repeatable) fails the run unless
CURRENT contains at least one benchmark whose name starts with PREFIX.
"Missing benchmarks never fail" is the right default for retiring families,
but it also means a family that silently stops being built (a glob miss, an
#ifdef, a renamed registration) would drop out of the gate unnoticed —
--require pins the families CI depends on, e.g. --require BM_RecoveryReplay.

Compression floor: within CURRENT alone, each BM_MemoryFootprint width pair
(`.../<bits>/0` = materialized resident array, `.../<bits>/1` = compressed
tier) must satisfy resident / tiered >= COMPRESSION_FLOOR (default 3.0) —
the cold tier's storage headline. Set --compression-floor 0 to disable.

Churn floor: within CURRENT alone, at the largest BM_ChurnErase size present
(the million-subscription scale), deferred-tombstone erase (`.../1`) must
sustain at least CHURN_FLOOR x the naive eager-compaction erase (`.../0`)
items/sec (default 10.0) — the amortized-O(1) erase headline. Timing-based,
so skipped under --counters-only; set --churn-floor 0 to disable.

This is the regression gate of the repo's perf tracking: CI runs
micro_benchmark, then compares the fresh output against the committed
BENCH_micro.json (the per-PR archived run; see ROADMAP.md).
"""

import argparse
import json
import re
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if b.get("run_type") == "aggregate":
            continue
        ips = b.get("items_per_second")
        bps = b.get("bytes_per_sub")
        out[b["name"]] = {
            "real_time": float(b["real_time"]),
            "time_unit": b.get("time_unit", "ns"),
            "items_per_second": float(ips) if ips is not None else None,
            "bytes_per_sub": float(bps) if bps is not None else None,
        }
    return out


def slowdown_ratio(base, cur):
    """Slowdown of `cur` vs `base` (> 1 means worse), on the benchmark's
    declared metric: items/sec when both runs report it, per-op time
    otherwise."""
    if base["items_per_second"] and cur["items_per_second"]:
        return base["items_per_second"] / cur["items_per_second"], "items/s"
    if base["real_time"] <= 0:
        return float("inf"), "time"
    return cur["real_time"] / base["real_time"], "time"


def gate_times(base, cur, threshold):
    """The classic per-op timing gate. Returns the failure list."""
    regressions = []
    rows = []
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            rows.append((name, None, cur[name]["real_time"], None, "new"))
            continue
        if name not in cur:
            rows.append((name, base[name]["real_time"], None, None, "retired"))
            continue
        ratio, metric = slowdown_ratio(base[name], cur[name])
        b, c = base[name]["real_time"], cur[name]["real_time"]
        status = "ok"
        if ratio > 1.0 + threshold:
            status = f"REGRESSION ({metric})"
            regressions.append((name, b, c, ratio))
        elif ratio < 1.0 - threshold:
            status = "improved"
        rows.append((name, b, c, ratio, status))

    width = max((len(r[0]) for r in rows), default=20)
    print(f"{'benchmark':{width}s} {'baseline':>14s} {'current':>14s} {'ratio':>8s}  status")
    for name, b, c, ratio, status in rows:
        bs = f"{b:14.1f}" if b is not None else f"{'-':>14s}"
        cs = f"{c:14.1f}" if c is not None else f"{'-':>14s}"
        rs = f"{ratio:8.3f}" if ratio is not None else f"{'-':>8s}"
        print(f"{name:{width}s} {bs} {cs} {rs}  {status}")
    return regressions


def gate_bytes(base, cur, threshold):
    """Gate bytes_per_sub counters: cur may not grow past baseline by more
    than `threshold` (lower is better; shrinkage never fails)."""
    regressions = []
    names = sorted(
        n
        for n in set(base) & set(cur)
        if base[n]["bytes_per_sub"] is not None and cur[n]["bytes_per_sub"] is not None
    )
    if not names:
        return regressions
    width = max(len(n) for n in names)
    print(f"\n{'bytes counter':{width}s} {'baseline':>14s} {'current':>14s} {'ratio':>8s}  status")
    for name in names:
        b, c = base[name]["bytes_per_sub"], cur[name]["bytes_per_sub"]
        ratio = float("inf") if b <= 0 else c / b
        status = "ok"
        if ratio > 1.0 + threshold:
            status = "REGRESSION (bytes)"
            regressions.append((name, b, c, ratio))
        elif ratio < 1.0 - threshold:
            status = "improved"
        print(f"{name:{width}s} {b:14.1f} {c:14.1f} {ratio:8.3f}  {status}")
    return regressions


def gate_compression_floor(cur, floor):
    """Within CURRENT alone: for each BM_MemoryFootprint width, the
    materialized (/0) bytes_per_sub over the tiered (/1) bytes_per_sub must
    be at least `floor`."""
    failures = []
    pat = re.compile(r"^(BM_MemoryFootprint/\d+)/([01])$")
    pairs = {}
    for name, vals in cur.items():
        m = pat.match(name)
        if m and vals["bytes_per_sub"] is not None:
            pairs.setdefault(m.group(1), {})[m.group(2)] = vals["bytes_per_sub"]
    for stem in sorted(pairs):
        p = pairs[stem]
        if "0" not in p or "1" not in p:
            continue
        ratio = float("inf") if p["1"] <= 0 else p["0"] / p["1"]
        ok = ratio >= floor
        print(
            f"compression {stem}: resident {p['0']:.1f} B/sub, tiered {p['1']:.1f} B/sub "
            f"-> {ratio:.2f}x ({'ok' if ok else f'BELOW FLOOR {floor:.1f}x'})"
        )
        if not ok:
            failures.append((stem, ratio))
    return failures


def gate_churn_floor(cur, floor):
    """Within CURRENT alone: at the largest BM_ChurnErase size present, the
    deferred-tombstone mode (/1) must sustain at least `floor` x the naive
    eager-compaction mode (/0) in items/sec."""
    pat = re.compile(r"^BM_ChurnErase/(\d+)/([01])(?:/real_time)?$")
    pairs = {}
    for name, vals in cur.items():
        m = pat.match(name)
        if m and vals["items_per_second"]:
            pairs.setdefault(int(m.group(1)), {})[m.group(2)] = vals["items_per_second"]
    sizes = [n for n, p in pairs.items() if "0" in p and "1" in p]
    if not sizes:
        return []
    n = max(sizes)
    p = pairs[n]
    ratio = float("inf") if p["0"] <= 0 else p["1"] / p["0"]
    ok = ratio >= floor
    print(
        f"churn erase BM_ChurnErase/{n}: naive {p['0']:.0f}/s, "
        f"tombstone {p['1']:.0f}/s -> {ratio:.2f}x "
        f"({'ok' if ok else f'BELOW FLOOR {floor:.1f}x'})"
    )
    return [] if ok else [(f"BM_ChurnErase/{n}", ratio)]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="allowed per-op slowdown fraction before failing (default 0.10)",
    )
    parser.add_argument(
        "--bytes-threshold",
        type=float,
        default=0.10,
        help="allowed bytes_per_sub growth fraction before failing (default 0.10)",
    )
    parser.add_argument(
        "--compression-floor",
        type=float,
        default=3.0,
        help="required resident/tiered bytes_per_sub ratio within CURRENT "
        "(BM_MemoryFootprint pairs; 0 disables; default 3.0)",
    )
    parser.add_argument(
        "--churn-floor",
        type=float,
        default=10.0,
        help="required tombstone/naive items-per-second ratio within CURRENT "
        "(largest BM_ChurnErase pair; 0 disables; default 10.0)",
    )
    parser.add_argument(
        "--counters-only",
        action="store_true",
        help="skip all timing gates; check only bytes counters and the "
        "compression floor (for unoptimized smoke builds)",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="PREFIX",
        help="fail unless CURRENT contains a benchmark starting with PREFIX "
        "(repeatable; pins families the gate depends on)",
    )
    args = parser.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    missing_required = [
        prefix for prefix in args.require if not any(n.startswith(prefix) for n in cur)
    ]

    time_regressions = [] if args.counters_only else gate_times(base, cur, args.threshold)
    bytes_regressions = gate_bytes(base, cur, args.bytes_threshold)
    floor_failures = (
        gate_compression_floor(cur, args.compression_floor)
        if args.compression_floor > 0
        else []
    )
    churn_failures = (
        gate_churn_floor(cur, args.churn_floor)
        if args.churn_floor > 0 and not args.counters_only
        else []
    )

    failed = False
    if time_regressions:
        failed = True
        print(
            f"\nFAIL: {len(time_regressions)} benchmark(s) regressed more than "
            f"{args.threshold:.0%} vs {args.baseline}:",
            file=sys.stderr,
        )
        for name, b, c, ratio in time_regressions:
            print(f"  {name}: {b:.1f} -> {c:.1f} ns ({ratio:.2f}x)", file=sys.stderr)
    if bytes_regressions:
        failed = True
        print(
            f"\nFAIL: {len(bytes_regressions)} bytes counter(s) grew more than "
            f"{args.bytes_threshold:.0%} vs {args.baseline}:",
            file=sys.stderr,
        )
        for name, b, c, ratio in bytes_regressions:
            print(f"  {name}: {b:.1f} -> {c:.1f} B/sub ({ratio:.2f}x)", file=sys.stderr)
    if floor_failures:
        failed = True
        print(
            f"\nFAIL: {len(floor_failures)} BM_MemoryFootprint pair(s) below the "
            f"{args.compression_floor:.1f}x compression floor:",
            file=sys.stderr,
        )
        for stem, ratio in floor_failures:
            print(f"  {stem}: {ratio:.2f}x", file=sys.stderr)
    if churn_failures:
        failed = True
        print(
            f"\nFAIL: BM_ChurnErase tombstone/naive ratio below the "
            f"{args.churn_floor:.1f}x churn floor:",
            file=sys.stderr,
        )
        for stem, ratio in churn_failures:
            print(f"  {stem}: {ratio:.2f}x", file=sys.stderr)
    if missing_required:
        failed = True
        print(
            f"\nFAIL: {len(missing_required)} required famil(ies) absent from "
            f"{args.current}:",
            file=sys.stderr,
        )
        for prefix in missing_required:
            print(f"  {prefix}", file=sys.stderr)
    if failed:
        return 1
    print(f"\nOK: no regression (times, bytes) and compression floor holds.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
