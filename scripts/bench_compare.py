#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on per-op regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold 0.10]

For every benchmark present in both files, the per-op real_time of CURRENT
is compared against BASELINE; the script exits non-zero if any benchmark is
more than THRESHOLD slower (default +10%). Throughput benchmarks — those
reporting items_per_second, e.g. the BM_NetworkThroughput family, whose
per-iteration real_time tracks a whole workload rather than one op — are
gated on items/sec instead: a drop of more than THRESHOLD fails. Benchmarks
present in only one file are reported but never fail the run, so adding or
retiring benchmarks does not break CI. Improvements are reported for the
perf trajectory.

This is the regression gate of the repo's perf tracking: CI runs
micro_benchmark, then compares the fresh output against the committed
BENCH_micro.json (the per-PR archived run; see ROADMAP.md).
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if b.get("run_type") == "aggregate":
            continue
        ips = b.get("items_per_second")
        out[b["name"]] = {
            "real_time": float(b["real_time"]),
            "time_unit": b.get("time_unit", "ns"),
            "items_per_second": float(ips) if ips is not None else None,
        }
    return out


def slowdown_ratio(base, cur):
    """Slowdown of `cur` vs `base` (> 1 means worse), on the benchmark's
    declared metric: items/sec when both runs report it, per-op time
    otherwise."""
    if base["items_per_second"] and cur["items_per_second"]:
        return base["items_per_second"] / cur["items_per_second"], "items/s"
    if base["real_time"] <= 0:
        return float("inf"), "time"
    return cur["real_time"] / base["real_time"], "time"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="allowed per-op slowdown fraction before failing (default 0.10)",
    )
    args = parser.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    regressions = []
    rows = []
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            rows.append((name, None, cur[name]["real_time"], None, "new"))
            continue
        if name not in cur:
            rows.append((name, base[name]["real_time"], None, None, "retired"))
            continue
        ratio, metric = slowdown_ratio(base[name], cur[name])
        b, c = base[name]["real_time"], cur[name]["real_time"]
        status = "ok"
        if ratio > 1.0 + args.threshold:
            status = f"REGRESSION ({metric})"
            regressions.append((name, b, c, ratio))
        elif ratio < 1.0 - args.threshold:
            status = "improved"
        rows.append((name, b, c, ratio, status))

    width = max((len(r[0]) for r in rows), default=20)
    print(f"{'benchmark':{width}s} {'baseline':>14s} {'current':>14s} {'ratio':>8s}  status")
    for name, b, c, ratio, status in rows:
        bs = f"{b:14.1f}" if b is not None else f"{'-':>14s}"
        cs = f"{c:14.1f}" if c is not None else f"{'-':>14s}"
        rs = f"{ratio:8.3f}" if ratio is not None else f"{'-':>8s}"
        print(f"{name:{width}s} {bs} {cs} {rs}  {status}")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
            f"{args.threshold:.0%} vs {args.baseline}:",
            file=sys.stderr,
        )
        for name, b, c, ratio in regressions:
            print(f"  {name}: {b:.1f} -> {c:.1f} ns ({ratio:.2f}x)", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0%}.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
