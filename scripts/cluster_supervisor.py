#!/usr/bin/env python3
"""Boot, drive, kill, and recover a loopback broker_daemon cluster.

The CI smoke harness for the TCP transport (src/broker/transport.h): starts
an N-broker line-topology cluster of real OS processes on 127.0.0.1, drives
a deterministic fig10-style workload through it with `broker_daemon --drive`
(which verifies every delivered set and final snapshot byte-for-byte
against the in-process deterministic engine), then — unless --no-kill —
SIGKILLs one broker mid-stream, restarts it from its WAL directory, and
resumes the workload with the driver's --skip-* flags.

Exit status 0 iff every phase PASSed and every daemon exited cleanly.

    $ python3 scripts/cluster_supervisor.py --binary build/broker_daemon
    $ python3 scripts/cluster_supervisor.py --binary build/broker_daemon \
          --brokers 5 --kill 2 --subs 300 --events 60
"""

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time


def daemon_cmd(args, broker_id, port_of):
    peers = ",".join(
        f"{p}@127.0.0.1:{port_of(p)}"
        for p in (broker_id - 1, broker_id + 1)
        if 0 <= p < args.brokers
    )
    return [
        args.binary,
        f"--id={broker_id}",
        f"--listen=127.0.0.1:{port_of(broker_id)}",
        f"--peers={peers}",
        f"--wal-dir={os.path.join(args.wal_root, f'w{broker_id}')}",
        f"--seed={args.seed}",
        f"--heartbeat-ms={args.heartbeat_ms}",
        f"--peer-timeout-ms={args.peer_timeout_ms}",
    ]


def spawn_daemon(args, broker_id, port_of, log_dir):
    log = open(os.path.join(log_dir, f"broker{broker_id}.log"), "ab")
    return subprocess.Popen(
        daemon_cmd(args, broker_id, port_of), stdout=log, stderr=log
    )


def run_drive(args, port_of, skip_subs=0, skip_unsubs=0, skip_events=0,
              subs=None, unsubs=None, events=None, verify_counters=True):
    brokers = ",".join(f"127.0.0.1:{port_of(b)}" for b in range(args.brokers))
    cmd = [
        args.binary, "--drive", f"--brokers={brokers}",
        f"--subs={subs if subs is not None else args.subs}",
        f"--unsubs={unsubs if unsubs is not None else args.unsubs}",
        f"--events={events if events is not None else args.events}",
        f"--skip-subs={skip_subs}", f"--skip-unsubs={skip_unsubs}",
        f"--skip-events={skip_events}",
        f"--verify-counters={1 if verify_counters else 0}",
        f"--timeout-ms={args.timeout_ms}",
    ]
    print("+", " ".join(cmd), flush=True)
    return subprocess.run(cmd).returncode


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--binary", required=True, help="path to broker_daemon")
    ap.add_argument("--brokers", type=int, default=3)
    ap.add_argument("--base-port", type=int, default=7400)
    ap.add_argument("--wal-root", default=None,
                    help="WAL parent dir (default: fresh temp dir)")
    ap.add_argument("--subs", type=int, default=200)
    ap.add_argument("--unsubs", type=int, default=40)
    ap.add_argument("--events", type=int, default=40)
    ap.add_argument("--kill", type=int, default=1,
                    help="broker id to SIGKILL and recover")
    ap.add_argument("--no-kill", action="store_true",
                    help="skip the kill-and-recover phase")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--heartbeat-ms", type=int, default=100)
    ap.add_argument("--peer-timeout-ms", type=int, default=600)
    ap.add_argument("--timeout-ms", type=int, default=30000)
    args = ap.parse_args()

    if args.wal_root is None:
        args.wal_root = tempfile.mkdtemp(prefix="subcover-cluster-")
    os.makedirs(args.wal_root, exist_ok=True)
    print(f"cluster state in {args.wal_root}", flush=True)

    def port_of(b):
        return args.base_port + b

    procs = {}
    try:
        for b in range(args.brokers):
            procs[b] = spawn_daemon(args, b, port_of, args.wal_root)
        time.sleep(0.5)
        for b, p in procs.items():
            if p.poll() is not None:
                print(f"FAIL: broker {b} died at startup "
                      f"(see {args.wal_root}/broker{b}.log)")
                return 1

        if args.no_kill:
            rc = run_drive(args, port_of)
            if rc != 0:
                print(f"FAIL: drive rc={rc}")
                return 1
        else:
            # Phase A: absorb a prefix of the workload, fully verified.
            half_subs, half_events = args.subs // 2, args.events // 2
            rc = run_drive(args, port_of, subs=half_subs, unsubs=0,
                           events=half_events)
            if rc != 0:
                print(f"FAIL: phase A drive rc={rc}")
                return 1

            victim = args.kill
            print(f"SIGKILL broker {victim} (pid {procs[victim].pid})",
                  flush=True)
            procs[victim].kill()
            procs[victim].wait()
            time.sleep(0.2)
            procs[victim] = spawn_daemon(args, victim, port_of, args.wal_root)
            time.sleep(0.5)

            # Phase B: resume the stream against the recovered cluster.
            # Counters are not comparable across a restart (the restarted
            # daemon's logical counters reset), so only snapshots and
            # delivered sets are verified.
            rc = run_drive(args, port_of, skip_subs=half_subs,
                           skip_events=half_events, verify_counters=False)
            if rc != 0:
                print(f"FAIL: phase B drive rc={rc}")
                return 1

        brokers = ",".join(f"127.0.0.1:{port_of(b)}"
                           for b in range(args.brokers))
        subprocess.run([args.binary, "--shutdown", f"--brokers={brokers}"],
                       check=True)
        bad = 0
        for b, p in sorted(procs.items()):
            rc = p.wait(timeout=30)
            if rc != 0:
                print(f"FAIL: broker {b} exited {rc}")
                bad += 1
        procs.clear()
        if bad:
            return 1
        print("PASS: cluster supervisor")
        return 0
    finally:
        for p in procs.values():
            if p.poll() is None:
                p.send_signal(signal.SIGKILL)
                p.wait()


if __name__ == "__main__":
    sys.exit(main())
