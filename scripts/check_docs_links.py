#!/usr/bin/env python3
"""Fail if README/docs reference repo files or CMake targets that don't exist.

Usage:
    check_docs_links.py [--root REPO_ROOT]

Checked documents: README.md and docs/*.md. Three kinds of references are
validated against the working tree:

  1. Relative markdown links [text](path) — the path must exist (anchors,
     absolute URLs and mailto: are skipped).
  2. Inline-code path tokens `like/this.h` — anything in single backticks
     that looks like a repo path (contains '/', plain path charset, no
     globs) must exist. Fenced code blocks are NOT scanned: they hold
     command transcripts and ASCII diagrams, not normative references.
     Paths under build output directories (build*/...) are skipped.
  3. Runnable-target tokens `./name ...` — the leading word names a CMake
     target; it must be producible by the build: the `subcover` library, a
     bench/<name>.cc harness, an examples/<name>.cpp program, or a
     tests/**/<suffix>_test.cc test target (path components joined by '_').

This is the documentation half of the CI gate (the perf half is
scripts/bench_compare.py): docs that drift from the tree fail the build.
"""

import argparse
import pathlib
import re
import sys

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
INLINE_CODE = re.compile(r"`([^`\n]+)`")
PATH_TOKEN = re.compile(r"^[A-Za-z0-9_.][A-Za-z0-9_./-]*$")
FENCE = re.compile(r"^(```|~~~)")


def strip_fences(text):
    out = []
    in_fence = False
    for line in text.splitlines():
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def target_exists(root, name):
    if name == "subcover":
        return True
    if (root / "bench" / f"{name}.cc").is_file():
        return True
    if (root / "examples" / f"{name}.cpp").is_file():
        return True
    # tests/sfc/runs_test.cc -> target sfc_runs_test (see CMakeLists.txt).
    for test_src in (root / "tests").rglob("*_test.cc"):
        rel = test_src.relative_to(root / "tests")
        if str(rel.with_suffix("")).replace("/", "_") == name:
            return True
    return False


def check_document(root, doc):
    problems = []
    text = doc.read_text(encoding="utf-8")
    body = strip_fences(text)

    for match in MD_LINK.finditer(body):
        href = match.group(1)
        if href.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = (doc.parent / href.split("#")[0]).resolve()
        if not target.exists():
            problems.append(f"{doc}: broken link -> {href}")

    for match in INLINE_CODE.finditer(body):
        token = match.group(1).strip()
        if token.startswith("./"):
            name = token[2:].split()[0]
            if not target_exists(root, name):
                problems.append(f"{doc}: unknown CMake target -> ./{name}")
            continue
        if "/" not in token or not PATH_TOKEN.match(token):
            continue
        first = token.split("/", 1)[0]
        if first == "build" or first.startswith("build-"):
            continue  # build-tree outputs (build/, build-asan/) exist only after a build
        if not (root / token).exists():
            problems.append(f"{doc}: missing path -> {token}")

    return problems


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None, help="repo root (default: script's parent dir)")
    args = parser.parse_args()
    root = (
        pathlib.Path(args.root).resolve()
        if args.root
        else pathlib.Path(__file__).resolve().parent.parent
    )

    docs = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    problems = []
    checked = 0
    for doc in docs:
        if not doc.is_file():
            problems.append(f"missing document: {doc}")
            continue
        checked += 1
        problems.extend(check_document(root, doc))

    if problems:
        print(f"FAIL: {len(problems)} stale docs reference(s):", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"OK: {checked} document(s), all referenced paths and targets exist.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
