#include "geometry/universe.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace subcover {
namespace {

TEST(Universe, BasicProperties) {
  const universe u(4, 8);
  EXPECT_EQ(u.dims(), 4);
  EXPECT_EQ(u.bits(), 8);
  EXPECT_EQ(u.side(), 256U);
  EXPECT_EQ(u.coord_max(), 255U);
  EXPECT_EQ(u.key_bits(), 32);
  EXPECT_EQ(u.cell_count(), u512::pow2(32));
}

TEST(Universe, SingleDimension) {
  const universe u(1, 1);
  EXPECT_EQ(u.side(), 2U);
  EXPECT_EQ(u.cell_count(), u512(2));
}

TEST(Universe, MaximumKeyWidth) {
  // 32 dims * 16 bits = 512 key bits: exactly at the limit.
  const universe u(32, 16);
  EXPECT_EQ(u.key_bits(), 512);
}

TEST(Universe, RejectsBadDims) {
  EXPECT_THROW(universe(0, 8), std::invalid_argument);
  EXPECT_THROW(universe(-1, 8), std::invalid_argument);
  EXPECT_THROW(universe(33, 8), std::invalid_argument);
}

TEST(Universe, RejectsBadBits) {
  EXPECT_THROW(universe(2, 0), std::invalid_argument);
  EXPECT_THROW(universe(2, 31), std::invalid_argument);
}

TEST(Universe, RejectsKeyOverflow) {
  // 32 dims * 17 bits = 544 > 512.
  EXPECT_THROW(universe(32, 17), std::invalid_argument);
  EXPECT_THROW(universe(18, 30), std::invalid_argument);
}

TEST(Universe, Equality) {
  EXPECT_EQ(universe(2, 8), universe(2, 8));
  EXPECT_FALSE(universe(2, 8) == universe(2, 9));
}

}  // namespace
}  // namespace subcover
