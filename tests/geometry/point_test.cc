#include "geometry/point.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace subcover {
namespace {

TEST(Point, InitializerList) {
  const point p{1, 2, 3};
  EXPECT_EQ(p.dims(), 3);
  EXPECT_EQ(p[0], 1U);
  EXPECT_EQ(p[1], 2U);
  EXPECT_EQ(p[2], 3U);
}

TEST(Point, ZeroConstructed) {
  const point p(4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(p[i], 0U);
}

TEST(Point, Mutation) {
  point p(2);
  p[1] = 77;
  EXPECT_EQ(p[1], 77U);
}

TEST(Point, DominatesReflexive) {
  const point p{5, 5};
  EXPECT_TRUE(p.dominates(p));
}

TEST(Point, DominatesCoordinateWise) {
  EXPECT_TRUE((point{5, 7}).dominates(point{5, 6}));
  EXPECT_TRUE((point{5, 7}).dominates(point{0, 0}));
  EXPECT_FALSE((point{5, 7}).dominates(point{6, 7}));
  EXPECT_FALSE((point{5, 7}).dominates(point{4, 8}));
}

TEST(Point, DominanceIsPartialOrder) {
  // Antisymmetry on a pair of incomparable points.
  const point a{1, 2};
  const point b{2, 1};
  EXPECT_FALSE(a.dominates(b));
  EXPECT_FALSE(b.dominates(a));
}

TEST(Point, DominatesDimsMismatchThrows) {
  EXPECT_THROW((point{1, 2}).dominates(point{1}), std::invalid_argument);
}

TEST(Point, Inside) {
  const universe u(2, 4);  // coords in [0, 15]
  EXPECT_TRUE((point{0, 15}).inside(u));
  EXPECT_FALSE((point{0, 16}).inside(u));
  EXPECT_THROW((point{1}).inside(u), std::invalid_argument);
}

TEST(Point, Equality) {
  EXPECT_EQ((point{1, 2}), (point{1, 2}));
  EXPECT_FALSE((point{1, 2}) == (point{2, 1}));
  EXPECT_FALSE((point{1, 2}) == (point{1}));
}

TEST(Point, ToString) { EXPECT_EQ((point{3, 5}).to_string(), "(3, 5)"); }

TEST(Point, RejectsTooManyDims) {
  EXPECT_THROW(point(kMaxDims + 1), std::invalid_argument);
}

}  // namespace
}  // namespace subcover
