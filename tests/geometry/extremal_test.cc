#include "geometry/extremal.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace subcover {
namespace {

std::array<std::uint64_t, kMaxDims> lengths(std::initializer_list<std::uint64_t> ls) {
  std::array<std::uint64_t, kMaxDims> a{};
  std::size_t i = 0;
  for (const auto l : ls) a[i++] = l;
  return a;
}

TEST(ExtremalRect, ToRectAnchorsAtMaxCorner) {
  const universe u(2, 9);  // 512 x 512
  const extremal_rect r(u, lengths({256, 257}));
  const rect box = r.to_rect(u);
  EXPECT_EQ(box.lo()[0], 256U);
  EXPECT_EQ(box.hi()[0], 511U);
  EXPECT_EQ(box.lo()[1], 255U);
  EXPECT_EQ(box.hi()[1], 511U);
}

TEST(ExtremalRect, FullUniverseSide) {
  const universe u(2, 4);
  const extremal_rect r(u, lengths({16, 1}));
  const rect box = r.to_rect(u);
  EXPECT_EQ(box.lo()[0], 0U);
  EXPECT_EQ(box.hi()[0], 15U);
  EXPECT_EQ(box.lo()[1], 15U);
}

TEST(ExtremalRect, RejectsBadLengths) {
  const universe u(2, 4);
  EXPECT_THROW(extremal_rect(u, lengths({0, 4})), std::invalid_argument);
  EXPECT_THROW(extremal_rect(u, lengths({17, 4})), std::invalid_argument);
}

TEST(ExtremalRect, QueryRegionOfPoint) {
  const universe u(2, 4);
  // Dominance region of x is [x, max] per dimension: l_i = 16 - x_i.
  const auto r = extremal_rect::query_region(u, point{10, 0});
  EXPECT_EQ(r.length(0), 6U);
  EXPECT_EQ(r.length(1), 16U);
  const rect box = r.to_rect(u);
  EXPECT_TRUE(box.contains(point{10, 0}));
  EXPECT_TRUE(box.contains(point{15, 15}));
  EXPECT_FALSE(box.contains(point{9, 15}));
}

TEST(ExtremalRect, QueryRegionOfMaxCornerIsSingleCell) {
  const universe u(3, 4);
  const auto r = extremal_rect::query_region(u, point{15, 15, 15});
  EXPECT_EQ(r.volume(), u512::one());
}

TEST(ExtremalRect, Truncated) {
  const universe u(2, 9);
  const extremal_rect r(u, lengths({257, 300}));
  const auto t1 = r.truncated(u, 1);
  EXPECT_EQ(t1.length(0), 256U);
  EXPECT_EQ(t1.length(1), 256U);
  const auto t2 = r.truncated(u, 2);
  EXPECT_EQ(t2.length(0), 256U);
  EXPECT_EQ(t2.length(1), 256U);  // 300 = 100101100b; bits 8,7 are "10"
  const auto t4 = r.truncated(u, 4);
  EXPECT_EQ(t4.length(0), 256U);        // 257 = 100000001b; bits 8..5 are "1000"
  EXPECT_EQ(t4.length(1), 256U + 32U);  // 300 = 100101100b; bits 8..5 are "1001"
  // Truncation is contained in the original.
  EXPECT_TRUE(r.to_rect(u).contains(t2.to_rect(u)));
}

TEST(ExtremalRect, TruncatedIdentityWhenMLarge) {
  const universe u(2, 9);
  const extremal_rect r(u, lengths({257, 300}));
  EXPECT_EQ(r.truncated(u, 10), r);
}

TEST(ExtremalRect, MaskedFromBit) {
  const universe u(2, 4);
  const extremal_rect r(u, lengths({0b1011, 0b0110}));
  const auto s1 = r.masked_from_bit(u, 1);
  EXPECT_EQ(s1.length(0), 0b1010U);
  EXPECT_EQ(s1.length(1), 0b0110U);
  const auto s3 = r.masked_from_bit(u, 3);
  EXPECT_EQ(s3.length(0), 0b1000U);
  EXPECT_EQ(s3.length(1), 0U);
  EXPECT_TRUE(s3.is_empty());
}

TEST(ExtremalRect, Volume) {
  const universe u(2, 9);
  const extremal_rect r(u, lengths({256, 256}));
  EXPECT_EQ(r.volume(), u512(65536));
  EXPECT_DOUBLE_EQ(static_cast<double>(r.volume_ld()), 65536.0);
}

TEST(ExtremalRect, AspectRatio) {
  const universe u(3, 10);
  // b(7)=3, b(16)=5, b(1023)=10: alpha = 10 - 3 = 7.
  const extremal_rect r(u, lengths({7, 16, 1023}));
  EXPECT_EQ(r.min_side_bits(), 3);
  EXPECT_EQ(r.max_side_bits(), 10);
  EXPECT_EQ(r.aspect_ratio(), 7);
}

TEST(ExtremalRect, AspectRatioZeroForEqualSides) {
  const universe u(2, 9);
  EXPECT_EQ(extremal_rect(u, lengths({256, 257})).aspect_ratio(), 0);
}

TEST(ExtremalRect, VolumeMatchesRectVolume) {
  const universe u(3, 6);
  const extremal_rect r(u, lengths({5, 9, 33}));
  EXPECT_EQ(r.volume(), r.to_rect(u).volume());
}

}  // namespace
}  // namespace subcover
