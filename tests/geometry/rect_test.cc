#include "geometry/rect.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace subcover {
namespace {

TEST(Rect, ConstructionAndSides) {
  const rect r(point{1, 2}, point{4, 2});
  EXPECT_EQ(r.dims(), 2);
  EXPECT_EQ(r.side(0), 4U);
  EXPECT_EQ(r.side(1), 1U);
}

TEST(Rect, RejectsInvertedBounds) {
  EXPECT_THROW(rect(point{5, 0}, point{4, 9}), std::invalid_argument);
}

TEST(Rect, RejectsDimsMismatch) {
  EXPECT_THROW(rect(point{1}, point{2, 3}), std::invalid_argument);
}

TEST(Rect, Whole) {
  const universe u(3, 4);
  const rect w = rect::whole(u);
  EXPECT_EQ(w.volume(), u512::pow2(12));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(w.lo()[i], 0U);
    EXPECT_EQ(w.hi()[i], 15U);
  }
}

TEST(Rect, ContainsPoint) {
  const rect r(point{1, 1}, point{3, 3});
  EXPECT_TRUE(r.contains(point{1, 1}));
  EXPECT_TRUE(r.contains(point{3, 3}));
  EXPECT_TRUE(r.contains(point{2, 2}));
  EXPECT_FALSE(r.contains(point{0, 2}));
  EXPECT_FALSE(r.contains(point{2, 4}));
}

TEST(Rect, ContainsRect) {
  const rect outer(point{0, 0}, point{9, 9});
  const rect inner(point{2, 3}, point{4, 5});
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(outer));
}

TEST(Rect, Intersects) {
  const rect a(point{0, 0}, point{4, 4});
  const rect b(point{4, 4}, point{8, 8});  // touch at a corner cell
  const rect c(point{5, 5}, point{8, 8});
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
}

TEST(Rect, Intersection) {
  const rect a(point{0, 0}, point{4, 6});
  const rect b(point{2, 3}, point{8, 8});
  const auto i = a.intersection(b);
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(*i, rect(point{2, 3}, point{4, 6}));
  EXPECT_FALSE(a.intersection(rect(point{5, 0}, point{6, 6})).has_value());
}

TEST(Rect, VolumeExact) {
  const rect r(point{0, 0, 0}, point{1, 2, 3});
  EXPECT_EQ(r.volume(), u512(2 * 3 * 4));
  EXPECT_DOUBLE_EQ(static_cast<double>(r.volume_ld()), 24.0);
}

TEST(Rect, VolumeSingleCell) {
  const rect r(point{7, 7}, point{7, 7});
  EXPECT_EQ(r.volume(), u512::one());
}

TEST(Rect, ToString) {
  EXPECT_EQ(rect(point{1, 2}, point{3, 4}).to_string(), "[1,3] x [2,4]");
}

}  // namespace
}  // namespace subcover
