#include "geometry/cube.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace subcover {
namespace {

TEST(StandardCube, ConstructionAligned) {
  const standard_cube c(point{4, 8}, 2);
  EXPECT_EQ(c.side(), 4U);
  EXPECT_EQ(c.side_bits(), 2);
  EXPECT_EQ(c.cell_count(), u512(16));
}

TEST(StandardCube, RejectsMisalignedCorner) {
  EXPECT_THROW(standard_cube(point{3, 0}, 2), std::invalid_argument);
  EXPECT_THROW(standard_cube(point{0, 2}, 2), std::invalid_argument);
}

TEST(StandardCube, UnitCubeAnywhere) {
  const standard_cube c(point{3, 5}, 0);
  EXPECT_EQ(c.side(), 1U);
  EXPECT_EQ(c.as_rect(), rect(point{3, 5}, point{3, 5}));
}

TEST(StandardCube, Containing) {
  const standard_cube c = standard_cube::containing(point{5, 9}, 2);
  EXPECT_EQ(c.corner(), (point{4, 8}));
  EXPECT_TRUE(c.contains(point{5, 9}));
}

TEST(StandardCube, AsRect) {
  const standard_cube c(point{4, 0}, 2);
  EXPECT_EQ(c.as_rect(), rect(point{4, 0}, point{7, 3}));
}

TEST(StandardCube, LevelInUniverse) {
  const universe u(2, 5);
  // Side 2^3 cube: 2 bisections from the 2^5 universe.
  EXPECT_EQ(standard_cube(point{0, 8}, 3).level(u), 2);
  // A cell is at level k.
  EXPECT_EQ(standard_cube(point{1, 1}, 0).level(u), 5);
}

TEST(StandardCube, NestedOrDisjoint) {
  // Lemma 2.1: two standard cubes are nested or disjoint. Exhaustive check
  // over all cubes of a small 2-D universe.
  const int k = 3;
  std::vector<standard_cube> cubes;
  for (int s = 0; s <= k; ++s) {
    const std::uint32_t step = 1U << s;
    for (std::uint32_t x = 0; x < (1U << k); x += step)
      for (std::uint32_t y = 0; y < (1U << k); y += step)
        cubes.emplace_back(point{x, y}, s);
  }
  for (const auto& a : cubes) {
    for (const auto& b : cubes) {
      if (a == b) continue;
      const bool nested = a.contains(b) || b.contains(a);
      const bool disjoint = !a.as_rect().intersects(b.as_rect());
      EXPECT_TRUE(nested != disjoint) << a.to_string() << " vs " << b.to_string();
    }
  }
}

TEST(StandardCube, ContainsCube) {
  const standard_cube big(point{0, 0}, 3);
  const standard_cube small(point{4, 4}, 2);
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.contains(big));
}

TEST(StandardCube, RejectsBadSideBits) {
  EXPECT_THROW(standard_cube(point{0, 0}, -1), std::invalid_argument);
  EXPECT_THROW(standard_cube(point{0, 0}, kMaxBitsPerDim + 1), std::invalid_argument);
}

}  // namespace
}  // namespace subcover
