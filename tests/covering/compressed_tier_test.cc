// Tiering is invisible: an sfc_covering_index with the compressed cold tier
// enabled must return byte-identical results and byte-identical *logical*
// query stats to the classic resident index over the same workload — only
// the physical tier_* counters may differ (and must be nonzero, proving the
// cold tier actually served probes).
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "covering/sfc_covering_index.h"
#include "workload/subscription_gen.h"

namespace subcover {
namespace {

// The logical half of query_stats: everything the paper's cost model and
// the eps guarantee talk about. Physical probe-work counters (frontier_*,
// probes_*, tier_*) are execution details and excluded.
void expect_logical_stats_equal(const covering_check_stats& tiered,
                                const covering_check_stats& resident) {
  EXPECT_EQ(tiered.found, resident.found);
  EXPECT_EQ(tiered.candidates_checked, resident.candidates_checked);
  const query_stats& t = tiered.dominance;
  const query_stats& r = resident.dominance;
  EXPECT_EQ(t.cubes_enumerated, r.cubes_enumerated);
  EXPECT_EQ(t.runs_in_plan, r.runs_in_plan);
  EXPECT_EQ(t.runs_probed, r.runs_probed);
  EXPECT_EQ(t.truncation_m, r.truncation_m);
  EXPECT_EQ(t.volume_fraction_planned, r.volume_fraction_planned);
  EXPECT_EQ(t.volume_fraction_searched, r.volume_fraction_searched);
  EXPECT_EQ(t.found, r.found);
  EXPECT_EQ(t.budget_exhausted, r.budget_exhausted);
}

struct tier_totals {
  std::uint64_t cold_probes = 0;
  std::uint64_t summary_answers = 0;
  std::uint64_t decoded = 0;
  void add(const query_stats& s) {
    cold_probes += s.tier_cold_probes;
    summary_answers += s.tier_summary_answers;
    decoded += s.tier_blocks_decoded;
  }
};

void run_equivalence(const schema& s, int n_subs, int n_queries,
                     std::uint64_t seed) {
  sfc_covering_options tiered_opts;
  tiered_opts.tier_hot_capacity = 24;  // small: most entries live cold
  tiered_opts.tier_block_entries = 8;
  sfc_covering_index tiered(s, tiered_opts);
  sfc_covering_index resident(s);

  workload::subscription_gen_options wo;
  wo.kind = workload::workload_kind::clustered;  // covering-rich
  workload::subscription_gen gen(s, wo, seed);

  std::vector<std::pair<sub_id, subscription>> batch;
  for (sub_id id = 0; id < static_cast<sub_id>(n_subs); ++id)
    batch.emplace_back(id, gen.next());
  // Half through the bulk path (lands cold immediately on the tiered side),
  // half through single inserts (lands hot, demoted on overflow).
  const auto half = batch.begin() + n_subs / 2;
  tiered.insert_batch({batch.begin(), half});
  resident.insert_batch({batch.begin(), half});
  for (auto it = half; it != batch.end(); ++it) {
    tiered.insert(it->first, it->second);
    resident.insert(it->first, it->second);
  }

  tier_totals totals;
  sub_id next_erase = 0;
  for (int q = 0; q < n_queries; ++q) {
    const subscription probe = gen.next();
    for (const double eps : {0.0, 0.05, 0.2}) {
      covering_check_stats ts;
      covering_check_stats rs;
      const std::optional<sub_id> th = tiered.find_covering(probe, eps, &ts);
      const std::optional<sub_id> rh = resident.find_covering(probe, eps, &rs);
      ASSERT_EQ(th.has_value(), rh.has_value()) << "query " << q << " eps " << eps;
      if (th.has_value()) EXPECT_EQ(*th, *rh);
      expect_logical_stats_equal(ts, rs);
      EXPECT_EQ(rs.dominance.tier_cold_probes, 0U);  // resident side never tiers
      totals.add(ts.dominance);
    }
    // Interleave erases so both sides mutate mid-stream (cold-tier block
    // splices on the tiered side).
    if (q % 4 == 3 && next_erase < static_cast<sub_id>(n_subs)) {
      EXPECT_EQ(tiered.erase(next_erase), resident.erase(next_erase));
      ++next_erase;
    }
  }
  EXPECT_EQ(tiered.size(), resident.size());
  // The cold tier must have carried real probe traffic for the comparison
  // to mean anything.
  EXPECT_GT(totals.cold_probes, 0U);
  EXPECT_GT(totals.summary_answers + totals.decoded, 0U);
}

TEST(CoveringIndex, CompressedTierIsByteIdenticalToResident) {
  // u64-width pipeline: 2 attributes x 8 bits -> 4-dim, 32-bit keys.
  run_equivalence(workload::make_uniform_schema(2, 8), /*n_subs=*/300,
                  /*n_queries=*/120, /*seed=*/1234);
}

TEST(CoveringIndex, CompressedTierIsByteIdenticalToResidentU128) {
  // 3 attributes x 16 bits -> 6-dim, 96-bit keys.
  run_equivalence(workload::make_uniform_schema(3, 16), /*n_subs=*/150,
                  /*n_queries=*/60, /*seed=*/77);
}

TEST(CoveringIndex, CompressedTierIsByteIdenticalToResidentU512) {
  // 8 attributes x 16 bits -> 16-dim, 256-bit keys.
  run_equivalence(workload::make_uniform_schema(8, 16), /*n_subs=*/80,
                  /*n_queries=*/25, /*seed=*/9);
}

TEST(CoveringIndex, TierCountersSurfaceInCheckStats) {
  const schema s = workload::make_uniform_schema(2, 8);
  sfc_covering_options o;
  o.tier_hot_capacity = 4;
  o.tier_block_entries = 4;
  sfc_covering_index idx(s, o);
  workload::subscription_gen gen(s, {}, 3);
  std::vector<std::pair<sub_id, subscription>> batch;
  for (sub_id id = 0; id < 64; ++id) batch.emplace_back(id, gen.next());
  idx.insert_batch(batch);

  std::uint64_t cold = 0;
  for (int q = 0; q < 20; ++q) {
    covering_check_stats stats;
    (void)idx.find_covering(gen.next(), 0.0, &stats);
    cold += stats.dominance.tier_cold_probes;
  }
  EXPECT_GT(cold, 0U);
}

}  // namespace
}  // namespace subcover
