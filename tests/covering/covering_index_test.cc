// Cross-validation of covering_index implementations against the linear-scan
// ground truth, over several workloads.
#include "covering/covering_index.h"

#include <gtest/gtest.h>

#include "covering/linear_covering_index.h"
#include "covering/sfc_covering_index.h"
#include "pubsub/parser.h"
#include "workload/subscription_gen.h"

namespace subcover {
namespace {

TEST(CoveringIndex, FactoryProducesAllKinds) {
  const schema s = workload::make_uniform_schema(2, 8);
  EXPECT_EQ(make_covering_index(covering_index_kind::sfc, s)->name(), "sfc-z");
  EXPECT_EQ(make_covering_index(covering_index_kind::linear, s)->name(), "linear-scan");
  EXPECT_EQ(make_covering_index(covering_index_kind::sampled, s)->name(), "mc-sampled");
}

TEST(CoveringIndex, StockScenario) {
  // The introduction's example on a coarse quote schema (4-bit symbol,
  // 6-bit volume/price buckets) where exhaustive detection is tractable.
  const schema s({
      {"stock", attribute_type::categorical, 4, {"IBM", "AAPL", "MSFT", "GOOG"}},
      {"volume", attribute_type::numeric, 6, {}},
      {"price", attribute_type::numeric, 6, {}},
  });
  sfc_covering_options so;
  so.max_cubes = std::uint64_t{1} << 23;
  so.settle_on_budget = false;
  sfc_covering_index idx(s, so);
  idx.insert(1, parse_subscription(s, "stock = IBM, volume >= 10"));
  idx.insert(2, parse_subscription(s, "stock = AAPL"));
  // Narrower IBM subscription is covered by id 1.
  const auto hit = idx.find_covering(parse_subscription(s, "stock = IBM, volume >= 50"), 0.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 1U);
  // A subscription matching all stocks is not covered by either.
  EXPECT_FALSE(idx.find_covering(parse_subscription(s, "volume >= 50"), 0.0).has_value());
}

TEST(CoveringIndex, DuplicateIdThrows) {
  const schema s = workload::make_uniform_schema(2, 8);
  for (const auto kind :
       {covering_index_kind::sfc, covering_index_kind::linear, covering_index_kind::sampled}) {
    auto idx = make_covering_index(kind, s);
    idx->insert(1, subscription::match_all(s));
    EXPECT_THROW(idx->insert(1, subscription::match_all(s)), std::invalid_argument)
        << idx->name();
  }
}

TEST(CoveringIndex, EraseUnknownReturnsFalse) {
  const schema s = workload::make_uniform_schema(2, 8);
  for (const auto kind :
       {covering_index_kind::sfc, covering_index_kind::linear, covering_index_kind::sampled}) {
    auto idx = make_covering_index(kind, s);
    EXPECT_FALSE(idx->erase(99)) << idx->name();
  }
}

TEST(CoveringIndex, InvalidEpsilonThrows) {
  const schema s = workload::make_uniform_schema(2, 8);
  for (const auto kind :
       {covering_index_kind::sfc, covering_index_kind::linear, covering_index_kind::sampled}) {
    auto idx = make_covering_index(kind, s);
    EXPECT_THROW((void)idx->find_covering(subscription::match_all(s), -0.5),
                 std::invalid_argument);
    EXPECT_THROW((void)idx->find_covering(subscription::match_all(s), 1.0),
                 std::invalid_argument);
  }
}

using cross_case = std::tuple<workload::workload_kind, int>;

std::string cross_case_name(const ::testing::TestParamInfo<cross_case>& info) {
  const char* names[] = {"uniform", "clustered", "zipf"};
  return std::string(names[static_cast<int>(std::get<0>(info.param))]) + "_" +
         std::to_string(std::get<1>(info.param)) + "attrs";
}

class CoveringCrossValidation : public ::testing::TestWithParam<cross_case> {};

// Exhaustive (eps = 0) cross-validation needs universes small enough that
// the full decomposition fits the cube budget — Theorem 4.1 makes larger
// ones combinatorially explosive, which E5/E9 measure instead.
int bits_for(int attrs) { return attrs == 2 ? 6 : attrs == 3 ? 4 : 3; }

TEST_P(CoveringCrossValidation, SfcExhaustiveAgreesWithLinearScan) {
  const auto [kind, attrs] = GetParam();
  const schema s = workload::make_uniform_schema(attrs, bits_for(attrs));
  workload::subscription_gen_options opts;
  opts.kind = kind;
  workload::subscription_gen gen(s, opts, 101);

  linear_covering_index oracle(s);
  // Exhaustive agreement requires the full decomposition to fit the budget;
  // disable settling so any overrun fails loudly instead of silently missing.
  sfc_covering_options so;
  so.max_cubes = std::uint64_t{1} << 23;
  so.settle_on_budget = false;
  sfc_covering_index sfc(s, so);
  for (sub_id id = 0; id < 250; ++id) {
    const auto sub = gen.next();
    oracle.insert(id, sub);
    sfc.insert(id, sub);
  }
  int found = 0;
  for (int q = 0; q < 150; ++q) {
    const auto query = gen.next();
    const bool expected = oracle.find_covering(query, 0.0).has_value();
    covering_check_stats st;
    const auto hit = sfc.find_covering(query, 0.0, &st);
    ASSERT_FALSE(st.dominance.budget_exhausted) << query.to_string(s);
    ASSERT_EQ(hit.has_value(), expected) << query.to_string(s);
    if (hit.has_value()) ++found;
  }
  // Clustered/zipf workloads must produce actual covering hits for the test
  // to be meaningful; uniform may produce few.
  if (kind != workload::workload_kind::uniform) EXPECT_GT(found, 0);
}

TEST_P(CoveringCrossValidation, ApproximateIsSoundAndMostlyComplete) {
  const auto [kind, attrs] = GetParam();
  const schema s = workload::make_uniform_schema(attrs, bits_for(attrs));
  workload::subscription_gen_options opts;
  opts.kind = kind;
  workload::subscription_gen gen(s, opts, 202);

  linear_covering_index oracle(s);
  sfc_covering_index sfc(s);
  for (sub_id id = 0; id < 250; ++id) {
    const auto sub = gen.next();
    oracle.insert(id, sub);
    sfc.insert(id, sub);
  }
  int true_covered = 0;
  int detected = 0;
  for (int q = 0; q < 200; ++q) {
    const auto query = gen.next();
    const bool expected = oracle.find_covering(query, 0.0).has_value();
    const auto hit = sfc.find_covering(query, 0.05);
    // One-sided error: a hit implies true covering.
    if (hit.has_value()) EXPECT_TRUE(expected);
    true_covered += expected ? 1 : 0;
    detected += hit.has_value() ? 1 : 0;
  }
  if (true_covered >= 20) {
    // Detection rate should be high (the paper's "most of the benefits").
    EXPECT_GE(static_cast<double>(detected), 0.7 * static_cast<double>(true_covered));
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, CoveringCrossValidation,
                         ::testing::Values(cross_case{workload::workload_kind::uniform, 2},
                                           cross_case{workload::workload_kind::uniform, 3},
                                           cross_case{workload::workload_kind::clustered, 2},
                                           cross_case{workload::workload_kind::clustered, 4},
                                           cross_case{workload::workload_kind::zipf, 2},
                                           cross_case{workload::workload_kind::zipf, 3}),
                         cross_case_name);

}  // namespace
}  // namespace subcover
