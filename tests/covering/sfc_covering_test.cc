#include "covering/sfc_covering_index.h"

#include <gtest/gtest.h>

#include "covering/linear_covering_index.h"
#include "covering/sampled_covering_index.h"
#include "pubsub/parser.h"
#include "workload/subscription_gen.h"

namespace subcover {
namespace {

TEST(SfcCoveringIndex, AllCurvesAgreeExhaustively) {
  const schema s = workload::make_uniform_schema(2, 6);
  workload::subscription_gen_options wopts;
  wopts.kind = workload::workload_kind::clustered;
  workload::subscription_gen gen(s, wopts, 33);

  sfc_covering_options zo;
  zo.max_cubes = std::uint64_t{1} << 23;
  zo.settle_on_budget = false;
  sfc_covering_options hi = zo;
  sfc_covering_options gr = zo;
  zo.curve = curve_kind::z_order;
  hi.curve = curve_kind::hilbert;
  gr.curve = curve_kind::gray_code;
  sfc_covering_index iz(s, zo);
  sfc_covering_index ih(s, hi);
  sfc_covering_index ig(s, gr);
  linear_covering_index oracle(s);
  for (sub_id id = 0; id < 150; ++id) {
    const auto sub = gen.next();
    iz.insert(id, sub);
    ih.insert(id, sub);
    ig.insert(id, sub);
    oracle.insert(id, sub);
  }
  for (int q = 0; q < 100; ++q) {
    const auto query = gen.next();
    const bool expected = oracle.find_covering(query, 0.0).has_value();
    EXPECT_EQ(iz.find_covering(query, 0.0).has_value(), expected);
    EXPECT_EQ(ih.find_covering(query, 0.0).has_value(), expected);
    EXPECT_EQ(ig.find_covering(query, 0.0).has_value(), expected);
  }
}

TEST(SfcCoveringIndex, InsertBatchEquivalentToInserts) {
  const schema s = workload::make_uniform_schema(2, 6);
  workload::subscription_gen gen(s, {}, 44);
  sfc_covering_options o;
  o.array = sfc_array_kind::sorted_vector;
  sfc_covering_index via_loop(s, o);
  sfc_covering_index via_batch(s, o);
  std::vector<std::pair<sub_id, subscription>> batch;
  for (sub_id id = 0; id < 200; ++id) batch.emplace_back(id, gen.next());
  for (const auto& [id, sub] : batch) via_loop.insert(id, sub);
  via_batch.insert_batch(batch);
  ASSERT_EQ(via_batch.size(), via_loop.size());
  for (int q = 0; q < 120; ++q) {
    const auto query = gen.next();
    for (const double eps : {0.0, 0.1}) {
      EXPECT_EQ(via_batch.find_covering(query, eps), via_loop.find_covering(query, eps));
    }
  }
  // Duplicate ids are rejected, batch or not, and a failed batch inserts
  // nothing (all-or-nothing: no half-inserted ids).
  EXPECT_THROW(via_batch.insert_batch({{0, gen.next()}}), std::invalid_argument);
  const auto dup = gen.next();
  EXPECT_THROW(via_batch.insert_batch({{999, dup}, {999, dup}}), std::invalid_argument);
  EXPECT_FALSE(via_batch.erase(999));
  EXPECT_NO_THROW(via_batch.insert(999, dup));
  // Batched entries can be erased individually.
  EXPECT_TRUE(via_batch.erase(0));
  EXPECT_FALSE(via_batch.erase(0));
}

TEST(SfcCoveringIndex, NamesReflectCurve) {
  const schema s = workload::make_uniform_schema(2, 8);
  sfc_covering_options o;
  o.curve = curve_kind::hilbert;
  EXPECT_EQ(sfc_covering_index(s, o).name(), "sfc-hilbert");
  o.curve = curve_kind::gray_code;
  EXPECT_EQ(sfc_covering_index(s, o).name(), "sfc-gray");
}

TEST(SfcCoveringIndex, EraseThenNoLongerCovers) {
  const schema s = workload::make_uniform_schema(2, 8);
  sfc_covering_index idx(s);
  idx.insert(5, subscription::match_all(s));
  const subscription narrow(s, {{1, 2}, {3, 4}});
  EXPECT_TRUE(idx.find_covering(narrow, 0.0).has_value());
  EXPECT_TRUE(idx.erase(5));
  EXPECT_FALSE(idx.find_covering(narrow, 0.0).has_value());
  EXPECT_EQ(idx.size(), 0U);
}

TEST(SfcCoveringIndex, SelfCoverageAfterInsert) {
  // Any inserted subscription covers itself; an exhaustive (unbudgeted)
  // query must hit. The self point sits at the query region's anchor corner
  // — the very last cell in descending-volume probe order — so this also
  // exercises full-plan traversal.
  const schema s = workload::make_uniform_schema(2, 5);
  workload::subscription_gen gen(s, {}, 44);
  sfc_covering_options so;
  so.max_cubes = std::uint64_t{1} << 23;
  so.settle_on_budget = false;
  sfc_covering_index idx(s, so);
  for (sub_id id = 0; id < 100; ++id) {
    const auto sub = gen.next();
    idx.insert(id, sub);
    EXPECT_TRUE(idx.find_covering(sub, 0.0).has_value());
  }
}

TEST(SfcCoveringIndex, StatsPopulated) {
  const schema s = workload::make_uniform_schema(2, 8);
  sfc_covering_index idx(s);
  idx.insert(1, subscription::match_all(s));
  covering_check_stats st;
  const auto hit = idx.find_covering(subscription(s, {{5, 6}, {7, 8}}), 0.05, &st);
  EXPECT_TRUE(hit.has_value());
  EXPECT_TRUE(st.found);
  EXPECT_GT(st.dominance.runs_probed, 0U);
  EXPECT_GT(st.dominance.cubes_enumerated, 0U);
}

TEST(SampledCoveringIndex, CanReportFalseCoverings) {
  // The MC baseline's two-sided error: a nearly-covering subscription gets
  // reported as covering once no sample lands in the uncovered sliver.
  const schema s = workload::make_uniform_schema(1, 16);
  sampled_covering_index idx(s, /*samples=*/16);
  // Stored covers [0, 65000]; query [0, 65535]: 99.2% inside.
  idx.insert(1, subscription(s, {{0, 65000}}));
  const subscription query(s, {{0, 65535}});
  int false_hits = 0;
  for (int t = 0; t < 50; ++t)
    if (idx.find_covering(query, 0.0).has_value()) ++false_hits;
  EXPECT_GT(false_hits, 0);  // p(miss sliver per check) = 0.992^16 ~ 0.88
}

TEST(SampledCoveringIndex, DetectsTrueCoveringReliably) {
  const schema s = workload::make_uniform_schema(2, 8);
  sampled_covering_index idx(s, 32);
  idx.insert(1, subscription::match_all(s));
  for (int t = 0; t < 20; ++t)
    EXPECT_TRUE(idx.find_covering(subscription(s, {{1, 2}, {3, 4}}), 0.0).has_value());
}

TEST(SfcCoveringIndex, MixedWidthScalingPreservesCoveringSemantics) {
  // Narrow attributes are scaled onto the universe grid; exhaustive SFC
  // detection must agree with the linear oracle on a mixed-width schema.
  const schema s({{"wide", attribute_type::numeric, 6, {}},
                  {"narrow", attribute_type::numeric, 3, {}}});
  workload::subscription_gen gen(s, {}, 66);
  sfc_covering_options so;
  so.max_cubes = std::uint64_t{1} << 23;
  so.settle_on_budget = false;
  sfc_covering_index sfc(s, so);
  linear_covering_index oracle(s);
  for (sub_id id = 0; id < 150; ++id) {
    const auto sub = gen.next();
    sfc.insert(id, sub);
    oracle.insert(id, sub);
  }
  for (int q = 0; q < 100; ++q) {
    const auto query = gen.next();
    EXPECT_EQ(sfc.find_covering(query, 0.0).has_value(),
              oracle.find_covering(query, 0.0).has_value())
        << query.to_string(s);
  }
}

TEST(SfcCoveringIndex, DegenerateOpenEndedQuerySettlesWithinBudget) {
  // Open-ended constraints ("volume >= 200") transform into unit-thickness
  // dominance regions (the paper's M x 1 case): the search must respect its
  // cube budget, report settling, and stay one-sided — it must not hang or
  // fabricate a covering.
  const schema s = workload::make_stock_schema();
  sfc_covering_options so;
  so.max_cubes = 1024;
  sfc_covering_index idx(s, so);
  idx.insert(1, parse_subscription(s, "stock = AAPL"));  // does not cover the query
  covering_check_stats st;
  const auto hit = idx.find_covering(
      parse_subscription(s, "stock = IBM, volume >= 200, price <= 400"), 0.05, &st);
  EXPECT_FALSE(hit.has_value());
  EXPECT_TRUE(st.dominance.budget_exhausted);
  EXPECT_LE(st.dominance.cubes_enumerated, 1024U);
}

}  // namespace
}  // namespace subcover
