#include "pubsub/parser.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "workload/subscription_gen.h"

namespace subcover {
namespace {

TEST(ParseSubscription, PaperIntroExample) {
  // "[stock = IBM, volume > 500, current < 95]" from Section 1 (current ->
  // price in our stock schema).
  const schema s = workload::make_stock_schema();
  const auto sub = parse_subscription(s, "stock = IBM, volume > 500, price < 95");
  EXPECT_EQ(sub.range(0).lo, s.label_value(0, "IBM"));
  EXPECT_EQ(sub.range(0).hi, s.label_value(0, "IBM"));
  EXPECT_EQ(sub.range(1).lo, 501U);
  EXPECT_EQ(sub.range(1).hi, s.max_value(1));
  EXPECT_EQ(sub.range(2).lo, 0U);
  EXPECT_EQ(sub.range(2).hi, 94U);
}

TEST(ParseSubscription, Operators) {
  const schema s = workload::make_uniform_schema(1, 8);
  EXPECT_EQ(parse_subscription(s, "attr0 >= 5").range(0), (attr_range{5, 255}));
  EXPECT_EQ(parse_subscription(s, "attr0 > 5").range(0), (attr_range{6, 255}));
  EXPECT_EQ(parse_subscription(s, "attr0 <= 5").range(0), (attr_range{0, 5}));
  EXPECT_EQ(parse_subscription(s, "attr0 < 5").range(0), (attr_range{0, 4}));
  EXPECT_EQ(parse_subscription(s, "attr0 = 5").range(0), (attr_range{5, 5}));
  EXPECT_EQ(parse_subscription(s, "attr0 in [3, 9]").range(0), (attr_range{3, 9}));
}

TEST(ParseSubscription, EmptyTextIsMatchAll) {
  const schema s = workload::make_uniform_schema(2, 8);
  EXPECT_EQ(parse_subscription(s, ""), subscription::match_all(s));
  EXPECT_EQ(parse_subscription(s, "attr0 = *"), subscription::match_all(s));
}

TEST(ParseSubscription, BracketedForm) {
  const schema s = workload::make_uniform_schema(2, 8);
  const auto sub = parse_subscription(s, "[attr0 = 7, attr1 >= 9]");
  EXPECT_EQ(sub.range(0), (attr_range{7, 7}));
  EXPECT_EQ(sub.range(1), (attr_range{9, 255}));
}

TEST(ParseSubscription, ConstraintsIntersect) {
  const schema s = workload::make_uniform_schema(1, 8);
  const auto sub = parse_subscription(s, "attr0 >= 5, attr0 <= 10");
  EXPECT_EQ(sub.range(0), (attr_range{5, 10}));
}

TEST(ParseSubscription, EmptyIntersectionThrows) {
  const schema s = workload::make_uniform_schema(1, 8);
  EXPECT_THROW(parse_subscription(s, "attr0 > 10, attr0 < 5"), std::invalid_argument);
}

TEST(ParseSubscription, Errors) {
  const schema s = workload::make_uniform_schema(1, 8);
  EXPECT_THROW(parse_subscription(s, "bogus = 1"), std::invalid_argument);
  EXPECT_THROW(parse_subscription(s, "attr0 ~ 1"), std::invalid_argument);
  EXPECT_THROW(parse_subscription(s, "attr0 = 300"), std::invalid_argument);
  EXPECT_THROW(parse_subscription(s, "attr0 in [5, 3]"), std::invalid_argument);
  EXPECT_THROW(parse_subscription(s, "attr0 in [1, 2"), std::invalid_argument);
  EXPECT_THROW(parse_subscription(s, "attr0 = 1 trailing"), std::invalid_argument);
  EXPECT_THROW(parse_subscription(s, "attr0 < 0"), std::invalid_argument);
  EXPECT_THROW(parse_subscription(s, "attr0 > 255"), std::invalid_argument);
}

TEST(ParseSubscription, CategoricalLabels) {
  const schema s = workload::make_stock_schema();
  const auto sub = parse_subscription(s, "stock = AAPL");
  EXPECT_EQ(sub.range(0).lo, s.label_value(0, "AAPL"));
  EXPECT_THROW(parse_subscription(s, "stock = KODAK"), std::invalid_argument);
}

TEST(ParseEvent, PaperIntroExample) {
  // "[stock = IBM, volume = 1000, current = 88]".
  const schema s = workload::make_stock_schema();
  const auto e = parse_event(s, "stock = IBM, volume = 1000, price = 88");
  EXPECT_EQ(e.value(0), s.label_value(0, "IBM"));
  EXPECT_EQ(e.value(1), 1000U);
  EXPECT_EQ(e.value(2), 88U);
}

TEST(ParseEvent, RequiresAllAttributes) {
  const schema s = workload::make_stock_schema();
  EXPECT_THROW(parse_event(s, "stock = IBM, volume = 10"), std::invalid_argument);
}

TEST(ParseEvent, RejectsRangesAndDuplicates) {
  const schema s = workload::make_stock_schema();
  EXPECT_THROW(parse_event(s, "stock = IBM, volume >= 10, price = 1"), std::invalid_argument);
  EXPECT_THROW(parse_event(s, "stock = IBM, stock = AAPL, volume = 1, price = 1"),
               std::invalid_argument);
  EXPECT_THROW(parse_event(s, "stock = *, volume = 1, price = 1"), std::invalid_argument);
}

TEST(ParseRoundTrip, SubscriptionToStringReparses) {
  const schema s = workload::make_stock_schema();
  workload::subscription_gen gen(s, {}, 7);
  for (int i = 0; i < 50; ++i) {
    const auto sub = gen.next();
    EXPECT_EQ(parse_subscription(s, sub.to_string(s)), sub) << sub.to_string(s);
  }
}

}  // namespace
}  // namespace subcover
