#include "pubsub/subscription.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "workload/subscription_gen.h"

namespace subcover {
namespace {

schema two_attr() {
  return schema({{"a", attribute_type::numeric, 8, {}}, {"b", attribute_type::numeric, 8, {}}});
}

TEST(Subscription, Construction) {
  const schema s = two_attr();
  const subscription sub(s, {{10, 20}, {0, 255}});
  EXPECT_EQ(sub.attribute_count(), 2);
  EXPECT_EQ(sub.range(0).lo, 10U);
  EXPECT_EQ(sub.range(0).hi, 20U);
}

TEST(Subscription, RejectsBadRanges) {
  const schema s = two_attr();
  EXPECT_THROW(subscription(s, {{20, 10}, {0, 255}}), std::invalid_argument);
  EXPECT_THROW(subscription(s, {{0, 256}, {0, 255}}), std::invalid_argument);
  EXPECT_THROW(subscription(s, {{0, 1}}), std::invalid_argument);
}

TEST(Subscription, MatchAll) {
  const schema s = two_attr();
  const auto all = subscription::match_all(s);
  EXPECT_EQ(all.range(0).lo, 0U);
  EXPECT_EQ(all.range(0).hi, 255U);
  // match_all covers everything.
  EXPECT_TRUE(all.covers(subscription(s, {{5, 5}, {7, 9}})));
}

TEST(Subscription, CoversReflexive) {
  const schema s = two_attr();
  const subscription sub(s, {{10, 20}, {30, 40}});
  EXPECT_TRUE(sub.covers(sub));
}

TEST(Subscription, CoversContainment) {
  const schema s = two_attr();
  const subscription broad(s, {{10, 20}, {30, 40}});
  const subscription narrow(s, {{12, 18}, {30, 40}});
  EXPECT_TRUE(broad.covers(narrow));
  EXPECT_FALSE(narrow.covers(broad));
}

TEST(Subscription, CoversRequiresAllAttributes) {
  const schema s = two_attr();
  const subscription a(s, {{10, 20}, {30, 40}});
  const subscription b(s, {{12, 18}, {29, 40}});  // second range pokes out
  EXPECT_FALSE(a.covers(b));
}

TEST(Subscription, CoversIsPartialOrderAntisymmetry) {
  const schema s = two_attr();
  const subscription a(s, {{0, 10}, {0, 5}});
  const subscription b(s, {{0, 5}, {0, 10}});
  EXPECT_FALSE(a.covers(b));
  EXPECT_FALSE(b.covers(a));
}

TEST(Subscription, CoversTransitiveRandomized) {
  const schema s = two_attr();
  workload::subscription_gen gen(s, {}, 99);
  int checked = 0;
  std::vector<subscription> subs;
  for (int i = 0; i < 60; ++i) subs.push_back(gen.next());
  for (const auto& a : subs)
    for (const auto& b : subs)
      for (const auto& c : subs)
        if (a.covers(b) && b.covers(c)) {
          EXPECT_TRUE(a.covers(c));
          ++checked;
        }
  EXPECT_GT(checked, 0);
}

TEST(Subscription, VolumeLd) {
  const schema s = two_attr();
  const subscription sub(s, {{0, 9}, {5, 5}});
  EXPECT_DOUBLE_EQ(static_cast<double>(sub.volume_ld()), 10.0);
}

TEST(Subscription, ToString) {
  const schema s = two_attr();
  EXPECT_EQ(subscription(s, {{3, 3}, {0, 255}}).to_string(s), "[a = 3, b = *]");
  EXPECT_EQ(subscription(s, {{1, 2}, {4, 5}}).to_string(s), "[a in [1, 2], b in [4, 5]]");
}

TEST(Subscription, EqualityAndDefault) {
  const schema s = two_attr();
  EXPECT_EQ(subscription(s, {{1, 2}, {3, 4}}), subscription(s, {{1, 2}, {3, 4}}));
  EXPECT_FALSE(subscription(s, {{1, 2}, {3, 4}}) == subscription(s, {{1, 2}, {3, 5}}));
}

}  // namespace
}  // namespace subcover
