#include "pubsub/schema.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace subcover {
namespace {

schema stockish() {
  return schema({
      {"stock", attribute_type::categorical, 8, {"IBM", "AAPL"}},
      {"volume", attribute_type::numeric, 16, {}},
      {"price", attribute_type::numeric, 12, {}},
  });
}

TEST(Schema, BasicAccessors) {
  const schema s = stockish();
  EXPECT_EQ(s.attribute_count(), 3);
  EXPECT_EQ(s.attribute(0).name, "stock");
  EXPECT_EQ(s.max_value(1), 65535U);
  EXPECT_EQ(s.max_value(2), 4095U);
}

TEST(Schema, IndexOf) {
  const schema s = stockish();
  EXPECT_EQ(s.index_of("volume"), 1);
  EXPECT_EQ(s.index_of("price"), 2);
  EXPECT_FALSE(s.index_of("nope").has_value());
}

TEST(Schema, LabelValues) {
  const schema s = stockish();
  EXPECT_EQ(s.label_value(0, "IBM"), 0U);
  EXPECT_EQ(s.label_value(0, "AAPL"), 1U);
  EXPECT_THROW(s.label_value(0, "MSFT"), std::invalid_argument);
  EXPECT_THROW(s.label_value(1, "IBM"), std::invalid_argument);
}

TEST(Schema, FormatValue) {
  const schema s = stockish();
  EXPECT_EQ(s.format_value(0, 1), "AAPL");
  EXPECT_EQ(s.format_value(1, 500), "500");
  // Out-of-dictionary categorical values fall back to numerals.
  EXPECT_EQ(s.format_value(0, 99), "99");
}

TEST(Schema, DominanceUniverse) {
  const schema s = stockish();
  const universe u = s.dominance_universe();
  EXPECT_EQ(u.dims(), 6);   // 2 * 3 attributes
  EXPECT_EQ(u.bits(), 16);  // max attribute width
}

TEST(Schema, RejectsEmpty) { EXPECT_THROW(schema({}), std::invalid_argument); }

TEST(Schema, RejectsDuplicateNames) {
  EXPECT_THROW(schema({{"a", attribute_type::numeric, 8, {}},
                       {"a", attribute_type::numeric, 8, {}}}),
               std::invalid_argument);
}

TEST(Schema, RejectsBadBits) {
  EXPECT_THROW(schema({{"a", attribute_type::numeric, 0, {}}}), std::invalid_argument);
  EXPECT_THROW(schema({{"a", attribute_type::numeric, 31, {}}}), std::invalid_argument);
}

TEST(Schema, RejectsCategoricalWithoutLabels) {
  EXPECT_THROW(schema({{"a", attribute_type::categorical, 8, {}}}), std::invalid_argument);
}

TEST(Schema, RejectsLabelOverflow) {
  EXPECT_THROW(schema({{"a", attribute_type::categorical, 1, {"x", "y", "z"}}}),
               std::invalid_argument);
}

TEST(Schema, RejectsDuplicateLabels) {
  EXPECT_THROW(schema({{"a", attribute_type::categorical, 4, {"x", "x"}}}),
               std::invalid_argument);
}

TEST(Schema, RejectsTooManyAttributes) {
  std::vector<attribute_def> attrs;
  for (int i = 0; i <= kMaxDims / 2; ++i)
    attrs.push_back({"a" + std::to_string(i), attribute_type::numeric, 4, {}});
  EXPECT_THROW(schema(std::move(attrs)), std::invalid_argument);
}

TEST(Schema, Equality) {
  EXPECT_TRUE(stockish() == stockish());
  const schema other({{"x", attribute_type::numeric, 4, {}}});
  EXPECT_FALSE(stockish() == other);
}

}  // namespace
}  // namespace subcover
