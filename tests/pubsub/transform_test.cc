#include "pubsub/transform.h"

#include <gtest/gtest.h>

#include "workload/subscription_gen.h"

namespace subcover {
namespace {

TEST(Transform, PointLayout) {
  const schema s = workload::make_uniform_schema(2, 8);  // k = 8, max 255
  const subscription sub(s, {{10, 20}, {30, 40}});
  const point p = to_dominance_point(s, sub);
  ASSERT_EQ(p.dims(), 4);
  EXPECT_EQ(p[0], 255U - 10U);  // shifted -lo
  EXPECT_EQ(p[1], 20U);         // hi
  EXPECT_EQ(p[2], 255U - 30U);
  EXPECT_EQ(p[3], 40U);
}

TEST(Transform, NarrowAttributesScaleOntoUniverseGrid) {
  // Mixed widths: a 4-bit attribute inside an 8-bit universe. Lower bounds
  // map to cell starts, upper bounds to cell ends, so wildcards land exactly
  // on the universe boundary.
  const schema s({{"wide", attribute_type::numeric, 8, {}},
                  {"narrow", attribute_type::numeric, 4, {}}});
  const universe u = s.dominance_universe();
  ASSERT_EQ(u.bits(), 8);
  const auto all = subscription::match_all(s);
  const point p = to_dominance_point(s, all);
  EXPECT_EQ(p[0], 255U);  // wide lo = 0
  EXPECT_EQ(p[1], 255U);  // wide hi = 255
  EXPECT_EQ(p[2], 255U);  // narrow lo = 0 scaled
  EXPECT_EQ(p[3], 255U);  // narrow hi = 15 -> (15+1)*16 - 1 = 255
  const subscription mid(s, {{1, 2}, {3, 5}});
  const point q = to_dominance_point(s, mid);
  EXPECT_EQ(q[2], 255U - 3U * 16U);
  EXPECT_EQ(q[3], 6U * 16U - 1U);
  EXPECT_EQ(from_dominance_point(s, q), mid);
}

TEST(Transform, RoundTrip) {
  const schema s = workload::make_uniform_schema(3, 10);
  workload::subscription_gen gen(s, {}, 17);
  for (int i = 0; i < 100; ++i) {
    const auto sub = gen.next();
    EXPECT_EQ(from_dominance_point(s, to_dominance_point(s, sub)), sub);
  }
}

TEST(Transform, CoveringEquivalence) {
  // The EO82 equivalence (Section 1.1): s1 covers s2 iff p(s1) dominates
  // p(s2), for every pair in a random workload.
  const schema s = workload::make_uniform_schema(2, 8);
  workload::subscription_gen gen(s, {}, 19);
  std::vector<subscription> subs;
  for (int i = 0; i < 80; ++i) subs.push_back(gen.next());
  int covering = 0;
  for (const auto& s1 : subs) {
    const point p1 = to_dominance_point(s, s1);
    for (const auto& s2 : subs) {
      const point p2 = to_dominance_point(s, s2);
      EXPECT_EQ(s1.covers(s2), p1.dominates(p2));
      if (s1.covers(s2)) ++covering;
    }
  }
  EXPECT_GT(covering, 0);
}

TEST(Transform, MixedBitWidthsStayInUniverse) {
  // Attributes narrower than the universe width map into the universe.
  const schema s = workload::make_stock_schema();  // widths 8/16/14, k = 16
  const universe u = s.dominance_universe();
  workload::subscription_gen gen(s, {}, 23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(to_dominance_point(s, gen.next()).inside(u));
  }
}

TEST(Transform, MatchAllDominatesEverything) {
  const schema s = workload::make_uniform_schema(2, 8);
  const point top = to_dominance_point(s, subscription::match_all(s));
  workload::subscription_gen gen(s, {}, 29);
  for (int i = 0; i < 50; ++i)
    EXPECT_TRUE(top.dominates(to_dominance_point(s, gen.next())));
}

}  // namespace
}  // namespace subcover
