#include "pubsub/matching.h"

#include <gtest/gtest.h>

#include "pubsub/parser.h"
#include "workload/event_gen.h"
#include "workload/subscription_gen.h"

namespace subcover {
namespace {

TEST(Matching, PaperIntroExample) {
  // The event [stock = IBM, volume = 1000, current = 88] must match the
  // subscription [stock = IBM, volume > 500, current < 95] (Section 1).
  const schema s = workload::make_stock_schema();
  const auto sub = parse_subscription(s, "stock = IBM, volume > 500, price < 95");
  const auto hit = parse_event(s, "stock = IBM, volume = 1000, price = 88");
  EXPECT_TRUE(matches(sub, hit));
  EXPECT_FALSE(matches(sub, parse_event(s, "stock = AAPL, volume = 1000, price = 88")));
  EXPECT_FALSE(matches(sub, parse_event(s, "stock = IBM, volume = 500, price = 88")));
  EXPECT_FALSE(matches(sub, parse_event(s, "stock = IBM, volume = 1000, price = 95")));
}

TEST(Matching, BoundariesInclusive) {
  const schema s = workload::make_uniform_schema(1, 8);
  const auto sub = parse_subscription(s, "attr0 in [10, 20]");
  EXPECT_TRUE(matches(sub, event(s, {10})));
  EXPECT_TRUE(matches(sub, event(s, {20})));
  EXPECT_FALSE(matches(sub, event(s, {9})));
  EXPECT_FALSE(matches(sub, event(s, {21})));
}

TEST(Matching, MatchAllMatchesEverything) {
  const schema s = workload::make_uniform_schema(3, 6);
  const auto all = subscription::match_all(s);
  workload::event_gen gen(s, 3);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(matches(all, gen.next()));
}

TEST(Matching, SchemaMismatchThrows) {
  const schema a = workload::make_uniform_schema(2, 8);
  const schema b = workload::make_uniform_schema(3, 8);
  EXPECT_THROW(matches(subscription::match_all(a), event(b, {1, 2, 3})),
               std::invalid_argument);
}

TEST(Matching, CoveringImpliesMatchSuperset) {
  // If s1 covers s2, every event matching s2 matches s1 — the semantic
  // definition N(s1) superset of N(s2), validated by sampling.
  const schema s = workload::make_uniform_schema(3, 8);
  workload::subscription_gen subs(s, {}, 11);
  workload::event_gen events(s, 13);
  int covering_pairs = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const auto s1 = subs.next();
    const auto s2 = subs.next();
    if (!s1.covers(s2)) continue;
    ++covering_pairs;
    for (int e = 0; e < 30; ++e) {
      const auto ev = events.next_matching(s2);
      EXPECT_TRUE(matches(s2, ev));
      EXPECT_TRUE(matches(s1, ev));
    }
  }
  EXPECT_GT(covering_pairs, 0);
}

TEST(Matching, MatchAllIndices) {
  const schema s = workload::make_uniform_schema(1, 8);
  const std::vector<subscription> subs{
      parse_subscription(s, "attr0 <= 10"),
      parse_subscription(s, "attr0 >= 5"),
      parse_subscription(s, "attr0 = 7"),
  };
  const auto hits = match_all(subs, event(s, {7}));
  EXPECT_EQ(hits, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(match_all(subs, event(s, {11})), (std::vector<std::size_t>{1}));
}

}  // namespace
}  // namespace subcover
