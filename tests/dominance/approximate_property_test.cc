// Property-style sweeps of the eps-approximate dominance query (Problem 2):
// over a grid of (dims, epsilon) configurations, for random point sets and
// random queries,
//   * soundness: every returned id truly dominates the query point;
//   * coverage: the searched volume fraction reaches 1 - eps on misses;
//   * detection: a query whose region is fully inside the truncated search
//     space never misses;
//   * cost: probes never exceed the exhaustive plan and respect Lemma 3.7.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "dominance/dominance_index.h"
#include "dominance/theory.h"
#include "util/random.h"
#include "workload/rect_gen.h"

namespace subcover {
namespace {

using approx_case = std::tuple<int, int, double>;  // dims, bits, epsilon

class ApproximateProperty : public ::testing::TestWithParam<approx_case> {
 protected:
  [[nodiscard]] universe space() const {
    return {std::get<0>(GetParam()), std::get<1>(GetParam())};
  }
  [[nodiscard]] double eps() const { return std::get<2>(GetParam()); }

  static point random_point(rng& gen, const universe& u) {
    point p(u.dims());
    for (int i = 0; i < u.dims(); ++i)
      p[i] = static_cast<std::uint32_t>(gen.uniform(0, u.coord_max()));
    return p;
  }
};

TEST_P(ApproximateProperty, SoundnessAndCoverage) {
  const universe u = space();
  dominance_index idx(u);
  rng gen(2024);
  std::vector<point> points;
  for (std::uint64_t i = 0; i < 150; ++i) {
    points.push_back(random_point(gen, u));
    idx.insert(points.back(), i);
  }
  int found = 0;
  for (int q = 0; q < 150; ++q) {
    const point x = random_point(gen, u);
    query_stats st;
    const auto hit = idx.query(x, eps(), &st);
    if (hit.has_value()) {
      ++found;
      EXPECT_TRUE(points[*hit].dominates(x));
    } else {
      EXPECT_GE(static_cast<double>(st.volume_fraction_searched), 1.0 - eps() - 1e-9);
    }
  }
  (void)found;
}

TEST_P(ApproximateProperty, NeverMoreExpensiveThanExhaustive) {
  const universe u = space();
  dominance_index idx(u);  // empty: both modes probe their full plan
  rng gen(9);
  for (int q = 0; q < 40; ++q) {
    const point x = random_point(gen, u);
    query_stats approx;
    query_stats exhaustive;
    (void)idx.query(x, eps(), &approx);
    (void)idx.query(x, 0.0, &exhaustive);
    // The cube count is the paper's cost measure and is monotone in the
    // searched region. (Probe counts can differ by a few runs either way:
    // a partial level merges into more runs than the full level would.)
    EXPECT_LE(approx.cubes_enumerated, exhaustive.cubes_enumerated);
    EXPECT_LE(approx.runs_probed, approx.cubes_enumerated);
  }
}

TEST_P(ApproximateProperty, CubeCountRespectsLemma37Bound) {
  // For worst-case-shaped query regions of every aspect ratio that fits, the
  // enumerated cube count stays below m * (2^alpha * (2^m - 1))^(d-1).
  const universe u = space();
  dominance_index idx(u);
  const int m = idx.truncation_m(eps());
  for (int alpha = 0; alpha + 2 <= u.bits(); ++alpha) {
    const int gamma = u.bits() - alpha;
    const auto wc = workload::worst_case_extremal(u, gamma, alpha, m);
    // Query point whose dominance region is exactly wc.
    point x(u.dims());
    for (int i = 0; i < u.dims(); ++i)
      x[i] = static_cast<std::uint32_t>(u.side() - wc.length(i));
    query_stats st;
    (void)idx.query(x, eps(), &st);
    const long double bound = theory::lemma37_cube_bound_general(m, alpha, u.dims());
    EXPECT_LE(static_cast<long double>(st.cubes_enumerated), bound)
        << "alpha=" << alpha << " m=" << m;
  }
}

TEST_P(ApproximateProperty, PlantedPointAlwaysFoundExhaustively) {
  // Problem 1: an exhaustive query must find any planted dominating point,
  // wherever it sits in the region. (The epsilon-approximate query is only
  // obliged to search a 1 - eps fraction — its guarantee is the coverage
  // property tested above, not per-point detection.)
  const universe u = space();
  rng gen(404);
  for (int trial = 0; trial < 25; ++trial) {
    dominance_index idx(u);
    const point x = random_point(gen, u);
    const auto target = extremal_rect::query_region(u, x).to_rect(u);
    point planted(u.dims());
    for (int i = 0; i < u.dims(); ++i)
      planted[i] = static_cast<std::uint32_t>(gen.uniform(target.lo()[i], target.hi()[i]));
    idx.insert(planted, 1);
    EXPECT_TRUE(idx.query(x, 0.0).has_value())
        << "x=" << x.to_string() << " planted=" << planted.to_string();
  }
}

TEST_P(ApproximateProperty, MissImpliesUnsearchedSliver) {
  // When the approximate query misses a planted dominating point, the
  // search must nevertheless have covered >= 1 - eps of the region — the
  // point escaped only through the permitted sliver.
  const universe u = space();
  rng gen(808);
  int misses = 0;
  for (int trial = 0; trial < 40; ++trial) {
    dominance_index idx(u);
    const point x = random_point(gen, u);
    const auto target = extremal_rect::query_region(u, x).to_rect(u);
    point planted(u.dims());
    for (int i = 0; i < u.dims(); ++i)
      planted[i] = static_cast<std::uint32_t>(gen.uniform(target.lo()[i], target.hi()[i]));
    idx.insert(planted, 1);
    query_stats st;
    const auto hit = idx.query(x, eps(), &st);
    if (!hit.has_value()) {
      ++misses;
      EXPECT_GE(static_cast<double>(st.volume_fraction_searched), 1.0 - eps() - 1e-9);
    }
  }
  // Misses are permitted but should be the exception for small epsilon.
  if (eps() <= 0.05) EXPECT_LT(misses, 20);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApproximateProperty,
    ::testing::Values(approx_case{2, 9, 0.01}, approx_case{2, 9, 0.1}, approx_case{2, 9, 0.5},
                      approx_case{4, 6, 0.01}, approx_case{4, 6, 0.1}, approx_case{4, 6, 0.5},
                      approx_case{6, 4, 0.05}, approx_case{6, 4, 0.3},
                      approx_case{8, 3, 0.1}),
    [](const ::testing::TestParamInfo<approx_case>& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_eps" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
    });

}  // namespace
}  // namespace subcover
