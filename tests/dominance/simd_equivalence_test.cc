// SIMD-mode equivalence: the vectorized query pipeline must be
// byte-identical to its scalar references.
//
// Three layers of pinning, per ISSUE 8's acceptance bar:
//   * dominance_options::simd — `automatic` (runtime-dispatched kernels)
//     and `force_scalar` (the kernel library's scalar backend through the
//     same call sites) against `off` (the plan's plain-loop oracles), for
//     every curve and every key width. Results and every logical
//     query_stats field must match exactly; only the physical probe-work
//     split (frontier_batches / probes_restarted / probes_resumed /
//     tier_*) may differ between *configurations*, never between simd
//     modes of the same configuration — the simd policy only changes how
//     the same numbers are computed.
//   * The cube-count batched path (merge_runs = false, batched_probe on)
//     against its single-range reference (batched_probe off): same results
//     and logical stats, strictly less probe-restart work once frontiers
//     have more than one cube.
//   * Adaptive head probing (head_probe = 0) on a long-lived plan against
//     fixed depths: the histogram may move the restart/resume split but
//     never the answer.
//
// The process-wide SUBCOVER_FORCE_SCALAR override is exercised by running
// the whole suite under it (CI's forced-scalar job); these tests pin the
// per-index policy.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "dominance/dominance_index.h"
#include "dominance/query_plan.h"
#include "util/random.h"

namespace subcover {
namespace {

point random_point(rng& gen, const universe& u) {
  point p(u.dims());
  for (int i = 0; i < u.dims(); ++i)
    p[i] = static_cast<std::uint32_t>(gen.uniform(0, u.coord_max()));
  return p;
}

// Every deterministic field, physical counters included: two runs that
// differ only in simd mode must agree on all of them.
void expect_identical_stats(const query_stats& a, const query_stats& b, const std::string& what) {
  EXPECT_EQ(a.cubes_enumerated, b.cubes_enumerated) << what;
  EXPECT_EQ(a.runs_in_plan, b.runs_in_plan) << what;
  EXPECT_EQ(a.runs_probed, b.runs_probed) << what;
  EXPECT_EQ(a.frontier_batches, b.frontier_batches) << what;
  EXPECT_EQ(a.probes_restarted, b.probes_restarted) << what;
  EXPECT_EQ(a.probes_resumed, b.probes_resumed) << what;
  EXPECT_EQ(a.tier_cold_probes, b.tier_cold_probes) << what;
  EXPECT_EQ(a.tier_summary_answers, b.tier_summary_answers) << what;
  EXPECT_EQ(a.tier_blocks_decoded, b.tier_blocks_decoded) << what;
  EXPECT_EQ(a.tier_cold_hits, b.tier_cold_hits) << what;
  EXPECT_EQ(a.truncation_m, b.truncation_m) << what;
  EXPECT_EQ(a.volume_fraction_planned, b.volume_fraction_planned) << what;
  EXPECT_EQ(a.volume_fraction_searched, b.volume_fraction_searched) << what;
  EXPECT_EQ(a.found, b.found) << what;
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted) << what;
}

// Logical fields only — what must survive a change of probe *strategy*
// (batched vs reference, head depth), where the physical split moves.
void expect_same_logical_stats(const query_stats& a, const query_stats& b,
                               const std::string& what) {
  EXPECT_EQ(a.cubes_enumerated, b.cubes_enumerated) << what;
  EXPECT_EQ(a.runs_in_plan, b.runs_in_plan) << what;
  EXPECT_EQ(a.runs_probed, b.runs_probed) << what;
  EXPECT_EQ(a.truncation_m, b.truncation_m) << what;
  EXPECT_EQ(a.volume_fraction_planned, b.volume_fraction_planned) << what;
  EXPECT_EQ(a.volume_fraction_searched, b.volume_fraction_searched) << what;
  EXPECT_EQ(a.found, b.found) << what;
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted) << what;
}

TEST(SimdEquivalence, ModesAreByteIdenticalAcrossCurvesWidthsAndConfigs) {
  // 24 key bits: representable at all three widths, so the same universe
  // cross-checks the u64 kernel paths against the u128/u512 scalar-compare
  // paths on identical data.
  const universe u(3, 8);
  rng gen(2024);
  std::vector<point> stored;
  for (int i = 0; i < 140; ++i) stored.push_back(random_point(gen, u));
  std::vector<point> queries;
  for (int q = 0; q < 24; ++q) queries.push_back(random_point(gen, u));

  for (const auto curve : {curve_kind::z_order, curve_kind::hilbert, curve_kind::gray_code}) {
    for (const key_width w : {key_width::w64, key_width::w128, key_width::w512}) {
      for (const bool merge : {true, false}) {
        dominance_options base;
        base.curve = curve;
        base.width = w;
        base.merge_runs = merge;
        base.array = sfc_array_kind::sorted_vector;

        auto make_index = [&](simd_mode m) {
          dominance_options o = base;
          o.simd = m;
          auto idx = std::make_unique<dominance_index>(u, o);
          for (std::size_t i = 0; i < stored.size(); ++i) idx->insert(stored[i], i);
          return idx;
        };
        const auto oracle = make_index(simd_mode::off);
        const auto dispatched = make_index(simd_mode::automatic);
        const auto scalar = make_index(simd_mode::force_scalar);

        for (const double eps : {0.0, 0.05, 0.35}) {
          for (const auto& x : queries) {
            const std::string what = std::string(curve_kind_name(curve)) +
                                     " w=" + std::to_string(static_cast<int>(w)) +
                                     " merge=" + std::to_string(merge) +
                                     " eps=" + std::to_string(eps) + " x=" + x.to_string();
            query_stats so, sd, ss;
            const auto ro = oracle->query(x, eps, &so);
            const auto rd = dispatched->query(x, eps, &sd);
            const auto rs = scalar->query(x, eps, &ss);
            EXPECT_EQ(ro, rd) << what;
            EXPECT_EQ(ro, rs) << what;
            expect_identical_stats(so, sd, what + " [auto]");
            expect_identical_stats(so, ss, what + " [force_scalar]");
          }
        }
      }
    }
  }
}

TEST(SimdEquivalence, CubeCountBatchedPathMatchesReferenceAndRestartsLess) {
  const universe u(3, 8);
  rng gen(99);
  dominance_options ref;
  ref.merge_runs = false;
  ref.batched_probe = false;
  ref.array = sfc_array_kind::sorted_vector;
  dominance_options bat = ref;
  bat.batched_probe = true;

  dominance_index ri(u, ref);
  dominance_index bi(u, bat);
  for (int i = 0; i < 160; ++i) {
    const point p = random_point(gen, u);
    ri.insert(p, static_cast<std::uint64_t>(i));
    bi.insert(p, static_cast<std::uint64_t>(i));
  }

  std::uint64_t ref_restarts = 0, bat_restarts = 0, bat_batches = 0;
  for (const double eps : {0.0, 0.1}) {
    for (int q = 0; q < 30; ++q) {
      const point x = random_point(gen, u);
      const std::string what = "eps=" + std::to_string(eps) + " x=" + x.to_string();
      query_stats sr, sb;
      const auto rr = ri.query(x, eps, &sr);
      const auto rb = bi.query(x, eps, &sb);
      EXPECT_EQ(rr, rb) << what;
      expect_same_logical_stats(sr, sb, what);
      // The reference path restarts a fresh descent for every probed cube.
      EXPECT_EQ(sr.probes_restarted, sr.runs_probed) << what;
      EXPECT_EQ(sr.frontier_batches, 0u) << what;
      EXPECT_EQ(sr.probes_resumed, 0u) << what;
      ref_restarts += sr.probes_restarted;
      bat_restarts += sb.probes_restarted;
      bat_batches += sb.frontier_batches;
    }
  }
  // Across the workload the batched cube-count path must have engaged the
  // frontier sweep and saved restarts.
  EXPECT_GT(bat_batches, 0u);
  EXPECT_LT(bat_restarts, ref_restarts);
}

TEST(SimdEquivalence, AdaptiveHeadDepthPreservesResultsOnAWarmPlan) {
  const universe u(3, 8);
  rng gen(7);
  for (const bool merge : {true, false}) {
    dominance_options fixed;
    fixed.merge_runs = merge;
    fixed.array = sfc_array_kind::sorted_vector;
    dominance_options adaptive = fixed;
    adaptive.head_probe = 0;

    dominance_index fi(u, fixed);
    dominance_index ai(u, adaptive);
    for (int i = 0; i < 150; ++i) {
      const point p = random_point(gen, u);
      fi.insert(p, static_cast<std::uint64_t>(i));
      ai.insert(p, static_cast<std::uint64_t>(i));
    }

    // A long-lived plan so the rank histograms accumulate and decay; every
    // single query must still match the fixed-depth index exactly on the
    // logical ledger.
    query_plan warm(ai);
    for (const double eps : {0.0, 0.02, 0.2}) {
      for (int q = 0; q < 120; ++q) {
        const point x = random_point(gen, u);
        const std::string what = std::string("merge=") + std::to_string(merge) +
                                 " eps=" + std::to_string(eps) + " x=" + x.to_string();
        query_stats sf, sa;
        const auto rf = fi.query(x, eps, &sf);
        const auto ra = warm.run(x, eps, &sa);
        EXPECT_EQ(rf, ra) << what;
        expect_same_logical_stats(sf, sa, what);
      }
    }
  }
}

TEST(SimdEquivalence, SimdModeComposesWithTieringAndSkiplist) {
  const universe u(4, 5);
  rng gen(55);
  for (const auto array : {sfc_array_kind::skiplist, sfc_array_kind::sorted_vector}) {
    dominance_options base;
    base.array = array;
    base.tier_hot_capacity = 32;  // force cold-tier traffic through the
    base.tier_block_entries = 8;  // vectorized envelope scans
    auto make_index = [&](simd_mode m) {
      dominance_options o = base;
      o.simd = m;
      auto idx = std::make_unique<dominance_index>(u, o);
      return idx;
    };
    auto oracle = make_index(simd_mode::off);
    auto dispatched = make_index(simd_mode::automatic);
    std::vector<point> stored;
    for (int i = 0; i < 200; ++i) {
      stored.push_back(random_point(gen, u));
      oracle->insert(stored.back(), static_cast<std::uint64_t>(i));
      dispatched->insert(stored.back(), static_cast<std::uint64_t>(i));
    }
    for (const double eps : {0.0, 0.1}) {
      for (int q = 0; q < 25; ++q) {
        const point x = random_point(gen, u);
        const std::string what = "array=" + std::to_string(static_cast<int>(array)) +
                                 " eps=" + std::to_string(eps) + " x=" + x.to_string();
        query_stats so, sd;
        const auto ro = oracle->query(x, eps, &so);
        const auto rd = dispatched->query(x, eps, &sd);
        EXPECT_EQ(ro, rd) << what;
        expect_identical_stats(so, sd, what);
      }
    }
  }
}

}  // namespace
}  // namespace subcover
