#include "dominance/theory.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "geometry/extremal.h"
#include "sfc/extremal_decomposition.h"
#include "sfc/runs.h"
#include "util/random.h"
#include "workload/rect_gen.h"

namespace subcover {
namespace {

TEST(Lemma32, MinM) {
  // m = ceil(log2(2d/eps)).
  EXPECT_EQ(theory::lemma32_min_m(0.05, 2), 7);   // log2(80) = 6.32
  EXPECT_EQ(theory::lemma32_min_m(0.5, 2), 3);    // log2(8) = 3
  EXPECT_EQ(theory::lemma32_min_m(0.01, 10), 11); // log2(2000) = 10.97
}

TEST(Lemma32, InvalidArgs) {
  EXPECT_THROW(theory::lemma32_min_m(0.0, 2), std::invalid_argument);
  EXPECT_THROW(theory::lemma32_min_m(1.0, 2), std::invalid_argument);
  EXPECT_THROW(theory::lemma32_min_m(0.5, 0), std::invalid_argument);
}

TEST(Lemma32, VolumeGuaranteeFormula) {
  EXPECT_NEAR(static_cast<double>(theory::lemma32_volume_guarantee(3, 2)), 1.0 - 4.0 / 8, 1e-12);
  EXPECT_NEAR(static_cast<double>(theory::lemma32_volume_guarantee(10, 4)), 1.0 - 8.0 / 1024,
              1e-12);
}

TEST(Lemma32, TruncationSatisfiesGuaranteeEmpirically) {
  // For random extremal rectangles and every m, the truncated volume ratio
  // respects 1 - 2d/2^m.
  for (const int d : {2, 4, 8}) {
    const universe u(d, 9);
    rng gen(static_cast<std::uint64_t>(d));
    for (int trial = 0; trial < 40; ++trial) {
      std::array<std::uint64_t, kMaxDims> len{};
      for (int i = 0; i < d; ++i) len[static_cast<std::size_t>(i)] = gen.uniform(1, u.side());
      const extremal_rect r(u, len);
      for (int m = 1; m <= 10; ++m) {
        const auto t = r.truncated(u, m);
        const long double ratio = t.volume_ld() / r.volume_ld();
        EXPECT_GE(static_cast<double>(ratio),
                  static_cast<double>(theory::lemma32_volume_guarantee(m, d)) - 1e-12)
            << "d=" << d << " m=" << m << " " << r.to_string();
      }
    }
  }
}

TEST(Lemma37, BoundFormula) {
  // m * (2^alpha * (2^m - 1))^(d-1).
  EXPECT_NEAR(static_cast<double>(theory::lemma37_cube_bound(3, 0, 2)), 3 * 7.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(theory::lemma37_cube_bound(3, 2, 3)), 3 * std::pow(28.0, 2),
              1e-9);
  EXPECT_THROW(theory::lemma37_cube_bound(0, 0, 2), std::invalid_argument);
}

TEST(Lemma37, BoundsWorstCaseTruncatedDecomposition) {
  // cubes(R(t(l,m))) for the Lemma 3.6 worst-case shape stays below the
  // assumption-free bound, across dimensions, aspect ratios and m. The
  // paper's literal bound additionally holds whenever its Case 2.1
  // assumption 2^alpha > d - 1 does.
  for (const int d : {2, 3, 4}) {
    const universe u(d, 10);
    for (int alpha = 0; alpha <= 3; ++alpha) {
      for (int m = 1; m <= 4; ++m) {
        const int gamma = u.bits() - alpha;
        const auto wc = workload::worst_case_extremal(u, gamma, alpha, m);
        const auto truncated = wc.truncated(u, m);
        const auto cubes = extremal_cube_count(u, truncated);
        EXPECT_LE(cubes.to_long_double(), theory::lemma37_cube_bound_general(m, alpha, d))
            << "d=" << d << " alpha=" << alpha << " m=" << m;
        if ((1 << alpha) > d - 1) {
          EXPECT_LE(cubes.to_long_double(), theory::lemma37_cube_bound(m, alpha, d))
              << "paper bound, d=" << d << " alpha=" << alpha << " m=" << m;
        }
      }
    }
  }
}

TEST(Lemma37, PaperBoundViolatedWithoutItsAssumption) {
  // Characterization of the discrepancy we found: at d = 3, alpha = 0,
  // m = 2 (so 2^alpha = 1 <= d - 1 = 2, violating the paper's Case 2.1
  // assumption), the worst-case shape produces 20 cubes while the literal
  // Lemma 3.7 bound is m * (2^m - 1)^(d-1) = 18.
  const universe u(3, 10);
  const auto wc = workload::worst_case_extremal(u, 10, 0, 2);
  const auto cubes = extremal_cube_count(u, wc.truncated(u, 2));
  EXPECT_EQ(cubes, u512(20));
  EXPECT_GT(cubes.to_long_double(), theory::lemma37_cube_bound(2, 0, 3));
  EXPECT_LE(cubes.to_long_double(), theory::lemma37_cube_bound_general(2, 0, 3));
}

TEST(Thm31, BoundComposition) {
  // Theorem 3.1 bound equals Lemma 3.7 evaluated at m = lemma32_min_m.
  EXPECT_EQ(theory::thm31_query_bound(0.05, 1, 3),
            theory::lemma37_cube_bound(theory::lemma32_min_m(0.05, 3), 1, 3));
}

TEST(Thm41, LowerBoundFormula) {
  // (2^(alpha-1) * l_d)^(d-1).
  EXPECT_NEAR(static_cast<double>(theory::thm41_lower_bound(3, 7, 2)), 28.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(theory::thm41_lower_bound(0, 8, 3)), 16.0, 1e-9);
  EXPECT_THROW(theory::thm41_lower_bound(0, 8, 0), std::invalid_argument);
}

TEST(Thm41, AdversarialRectangleMeetsLowerBound) {
  // The Section 4 construction: exhaustive runs on the Z curve are at least
  // (2^(alpha-1) * l_d)^(d-1).
  const universe u(2, 10);
  const auto z = make_curve(curve_kind::z_order, u);
  for (int alpha = 0; alpha <= 3; ++alpha) {
    for (int gamma = 2; gamma + alpha <= 8; ++gamma) {
      const auto adv = workload::adversarial_extremal(u, gamma, alpha);
      const auto runs = count_runs(*z, adv);
      const long double bound =
          theory::thm41_lower_bound(alpha, adv.length(u.dims() - 1), u.dims());
      EXPECT_GE(static_cast<long double>(runs), bound) << "alpha=" << alpha << " g=" << gamma;
    }
  }
}

TEST(Thm41, ThreeDimensionalLowerBound) {
  const universe u(3, 6);
  const auto z = make_curve(curve_kind::z_order, u);
  for (int alpha = 0; alpha <= 2; ++alpha) {
    const int gamma = 3;
    const auto adv = workload::adversarial_extremal(u, gamma, alpha);
    const auto runs = count_runs(*z, adv);
    const long double bound =
        theory::thm41_lower_bound(alpha, adv.length(u.dims() - 1), u.dims());
    EXPECT_GE(static_cast<long double>(runs), bound) << "alpha=" << alpha;
  }
}

}  // namespace
}  // namespace subcover
