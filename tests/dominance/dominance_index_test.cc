#include "dominance/dominance_index.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/random.h"

namespace subcover {
namespace {

point random_point(rng& gen, const universe& u) {
  point p(u.dims());
  for (int i = 0; i < u.dims(); ++i)
    p[i] = static_cast<std::uint32_t>(gen.uniform(0, u.coord_max()));
  return p;
}

// Brute-force oracle: any stored point dominating x?
bool oracle_dominates(const std::vector<point>& points, const point& x) {
  for (const auto& p : points)
    if (p.dominates(x)) return true;
  return false;
}

TEST(DominanceIndex, EmptyIndexFindsNothing) {
  dominance_index idx(universe(4, 8));
  EXPECT_FALSE(idx.query(point{0, 0, 0, 0}, 0.0).has_value());
  EXPECT_FALSE(idx.query(point{0, 0, 0, 0}, 0.1).has_value());
}

TEST(DominanceIndex, FindsDominatingPoint) {
  dominance_index idx(universe(2, 8));
  idx.insert(point{200, 150}, 42);
  // (100, 100) is dominated by (200, 150).
  const auto hit = idx.query(point{100, 100}, 0.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 42U);
  // (201, 0) is not dominated.
  EXPECT_FALSE(idx.query(point{201, 0}, 0.0).has_value());
}

TEST(DominanceIndex, PointDominatesItself) {
  dominance_index idx(universe(3, 6));
  idx.insert(point{10, 20, 30}, 1);
  EXPECT_TRUE(idx.query(point{10, 20, 30}, 0.0).has_value());
}

TEST(DominanceIndex, EraseRemovesPoint) {
  dominance_index idx(universe(2, 8));
  idx.insert(point{200, 200}, 1);
  EXPECT_TRUE(idx.query(point{100, 100}, 0.0).has_value());
  EXPECT_TRUE(idx.erase(point{200, 200}, 1));
  EXPECT_FALSE(idx.query(point{100, 100}, 0.0).has_value());
  EXPECT_FALSE(idx.erase(point{200, 200}, 1));
}

TEST(DominanceIndex, ExhaustiveMatchesBruteForce) {
  for (const auto kind :
       {curve_kind::z_order, curve_kind::hilbert, curve_kind::gray_code}) {
    const universe u(4, 5);
    dominance_options opts;
    opts.curve = kind;
    dominance_index idx(u, opts);
    rng gen(55);
    std::vector<point> points;
    for (std::uint64_t i = 0; i < 300; ++i) {
      points.push_back(random_point(gen, u));
      idx.insert(points.back(), i);
    }
    for (int q = 0; q < 150; ++q) {
      const point x = random_point(gen, u);
      const bool expected = oracle_dominates(points, x);
      const auto hit = idx.query(x, 0.0);
      ASSERT_EQ(hit.has_value(), expected)
          << "curve=" << curve_kind_name(kind) << " x=" << x.to_string();
      if (hit.has_value()) {
        EXPECT_TRUE(points[*hit].dominates(x));
      }
    }
  }
}

TEST(DominanceIndex, ApproximateNeverFalsePositive) {
  const universe u(4, 6);
  dominance_index idx(u);
  rng gen(66);
  std::vector<point> points;
  for (std::uint64_t i = 0; i < 200; ++i) {
    points.push_back(random_point(gen, u));
    idx.insert(points.back(), i);
  }
  for (const double eps : {0.01, 0.05, 0.2, 0.5, 0.9}) {
    for (int q = 0; q < 100; ++q) {
      const point x = random_point(gen, u);
      const auto hit = idx.query(x, eps);
      if (hit.has_value()) {
        EXPECT_TRUE(points[*hit].dominates(x)) << "eps=" << eps;
      }
    }
  }
}

TEST(DominanceIndex, QueryStatsVolumeGuarantee) {
  // Lemma 3.2: the planned (truncated) region covers >= 1 - eps of the query
  // region, and when no point is found the searched fraction also reaches
  // the 1 - eps target.
  const universe u(4, 5);
  dominance_index idx(u);
  rng gen(77);
  for (std::uint64_t i = 0; i < 50; ++i) idx.insert(random_point(gen, u), i);
  for (const double eps : {0.05, 0.1, 0.3}) {
    for (int q = 0; q < 50; ++q) {
      const point x = random_point(gen, u);
      query_stats st;
      const auto hit = idx.query(x, eps, &st);
      EXPECT_GE(static_cast<double>(st.volume_fraction_planned), 1.0 - eps - 1e-12);
      EXPECT_EQ(st.truncation_m, idx.truncation_m(eps));
      if (!hit.has_value()) {
        EXPECT_GE(static_cast<double>(st.volume_fraction_searched), 1.0 - eps - 1e-9);
        EXPECT_FALSE(st.found);
      } else {
        EXPECT_TRUE(st.found);
      }
      EXPECT_LE(st.runs_probed, st.runs_in_plan);
      EXPECT_LE(st.runs_in_plan, st.cubes_enumerated);
    }
  }
}

TEST(DominanceIndex, ApproximateFindsPointsInTruncatedRegion) {
  // If a stored point lies inside R(t(l,m)), the approximate query must find
  // it (it searches that entire region in the worst case).
  const universe u(2, 9);
  dominance_index idx(u);
  // Query at x = (255, 255): region R(257, 257), truncated at any m >= 1 ->
  // R(256, 256) anchored at max corner = [256..511]^2.
  idx.insert(point{256, 256}, 9);
  for (const double eps : {0.5, 0.1, 0.01}) {
    const auto hit = idx.query(point{255, 255}, eps);
    ASSERT_TRUE(hit.has_value()) << "eps=" << eps;
    EXPECT_EQ(*hit, 9U);
  }
}

TEST(DominanceIndex, ApproximateMayMissCornerPoint) {
  // A point only in the thin shell R(l) \ R(t(l,m)) can legitimately be
  // missed by the approximate query but must be found exhaustively.
  const universe u(2, 9);
  dominance_index idx(u);
  // Query x = (255, 255) -> region [255..511]^2; shell cell (255, 255).
  idx.insert(point{255, 255}, 1);
  EXPECT_TRUE(idx.query(point{255, 255}, 0.0).has_value());
  // With eps = 0.5, m = ceil(log2(2*2/0.5)) = 3; t(257,3) = 256 — the shell
  // (rows/cols at 255) is excluded, so the approximate query misses.
  EXPECT_FALSE(idx.query(point{255, 255}, 0.5).has_value());
}

TEST(DominanceIndex, TruncationM) {
  const universe u(4, 10);
  dominance_index idx(u);
  EXPECT_EQ(idx.truncation_m(0.0), 0);
  // m = ceil(log2(2*4/0.05)) = ceil(log2(160)) = 8.
  EXPECT_EQ(idx.truncation_m(0.05), 8);
  // m = ceil(log2(8/0.5)) = 4.
  EXPECT_EQ(idx.truncation_m(0.5), 4);
  // Clamped to k+1.
  EXPECT_EQ(idx.truncation_m(1e-9), 11);
}

TEST(DominanceIndex, InvalidArguments) {
  dominance_index idx(universe(2, 4));
  EXPECT_THROW((void)idx.query(point{0, 0}, -0.1), std::invalid_argument);
  EXPECT_THROW((void)idx.query(point{0, 0}, 1.0), std::invalid_argument);
  EXPECT_THROW((void)idx.query(point{0, 0, 0}, 0.0), std::invalid_argument);
  EXPECT_THROW(idx.insert(point{16, 0}, 1), std::invalid_argument);
}

TEST(DominanceIndex, MaxCubesGuard) {
  dominance_options opts;
  opts.max_cubes = 16;
  dominance_index idx(universe(2, 9), opts);
  // Exhaustive query on a 257x257 region needs 514 cubes > 16.
  EXPECT_THROW((void)idx.query(point{255, 255}, 0.0), std::length_error);
  // The approximate query's truncated region is tiny and stays within budget.
  EXPECT_NO_THROW((void)idx.query(point{255, 255}, 0.5));
}

TEST(DominanceIndex, ApproximateCheaperThanExhaustive) {
  // The Figure 2 scenario: a 257x257 query region. Exhaustive needs 385 run
  // probes when empty; 0.01-approximate needs a handful.
  const universe u(2, 9);
  dominance_index idx(u);
  query_stats exhaustive_stats;
  query_stats approx_stats;
  (void)idx.query(point{255, 255}, 0.0, &exhaustive_stats);
  (void)idx.query(point{255, 255}, 0.01, &approx_stats);
  // Runs are coalesced per level, so the probe count sits between the
  // globally-merged 385 runs of Figure 2 and the 514 raw cubes.
  EXPECT_GE(exhaustive_stats.runs_probed, 385U);
  EXPECT_LE(exhaustive_stats.runs_probed, 514U);
  EXPECT_LT(approx_stats.runs_probed, 10U);
  EXPECT_GE(static_cast<double>(approx_stats.volume_fraction_searched), 0.99);
}

TEST(DominanceIndex, SortedVectorBackendAgrees) {
  const universe u(3, 5);
  dominance_options a;
  a.array = sfc_array_kind::skiplist;
  dominance_options b;
  b.array = sfc_array_kind::sorted_vector;
  dominance_index ia(u, a);
  dominance_index ib(u, b);
  rng gen(88);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const point p = random_point(gen, u);
    ia.insert(p, i);
    ib.insert(p, i);
  }
  for (int q = 0; q < 100; ++q) {
    const point x = random_point(gen, u);
    EXPECT_EQ(ia.query(x, 0.0).has_value(), ib.query(x, 0.0).has_value());
    EXPECT_EQ(ia.query(x, 0.1).has_value(), ib.query(x, 0.1).has_value());
  }
}

}  // namespace
}  // namespace subcover
