// Equivalence and allocation-freedom of the plan -> probe query pipeline.
//
// query() routes through an index-internal query_plan; these tests pin down
// the contract the refactor must keep: (a) a reused plan, a fresh plan,
// query() and query_batch() all return the same hit and the same
// query_stats for the same input (scratch reuse leaks nothing between
// queries), (b) exhaustive results match a brute-force oracle, (c) the
// degenerate "M x 1" regions and the budget/settle path behave identically
// across entry points, and (d) a warm plan performs zero heap allocations
// per query — the acceptance criterion of the streaming refactor.
#include "dominance/query_plan.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <deque>
#include <new>
#include <vector>

#include "dominance/dominance_index.h"
#include "util/random.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, std::align_val_t) { return ::operator new(n); }
void* operator new[](std::size_t n, std::align_val_t) { return ::operator new[](n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace subcover {
namespace {

point random_point(rng& gen, const universe& u) {
  point p(u.dims());
  for (int i = 0; i < u.dims(); ++i)
    p[i] = static_cast<std::uint32_t>(gen.uniform(0, u.coord_max()));
  return p;
}

// All deterministic stats fields (everything except elapsed_ns).
void expect_same_stats(const query_stats& a, const query_stats& b, const std::string& what) {
  EXPECT_EQ(a.cubes_enumerated, b.cubes_enumerated) << what;
  EXPECT_EQ(a.runs_in_plan, b.runs_in_plan) << what;
  EXPECT_EQ(a.runs_probed, b.runs_probed) << what;
  EXPECT_EQ(a.truncation_m, b.truncation_m) << what;
  EXPECT_EQ(a.volume_fraction_planned, b.volume_fraction_planned) << what;
  EXPECT_EQ(a.volume_fraction_searched, b.volume_fraction_searched) << what;
  EXPECT_EQ(a.found, b.found) << what;
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted) << what;
}

TEST(QueryPlan, AllEntryPointsAgreeAcrossRandomUniverses) {
  rng gen(314);
  for (const int dims : {1, 2, 3, 4}) {
    for (const auto array : {sfc_array_kind::skiplist, sfc_array_kind::sorted_vector}) {
      const universe u(dims, 5);
      dominance_options opts;
      opts.array = array;
      dominance_index idx(u, opts);
      std::vector<point> stored;
      for (std::uint64_t i = 0; i < 120; ++i) {
        stored.push_back(random_point(gen, u));
        idx.insert(stored.back(), i);
      }

      query_plan reused(idx);
      for (const double eps : {0.0, 0.01, 0.1, 0.5}) {
        std::vector<point> xs;
        for (int q = 0; q < 40; ++q) xs.push_back(random_point(gen, u));
        std::vector<query_stats> batch_stats;
        const auto batch = idx.query_batch(xs, eps, &batch_stats);
        ASSERT_EQ(batch.size(), xs.size());
        ASSERT_EQ(batch_stats.size(), xs.size());
        for (std::size_t q = 0; q < xs.size(); ++q) {
          const std::string what = "d=" + std::to_string(dims) + " eps=" + std::to_string(eps) +
                                   " x=" + xs[q].to_string();
          query_stats st_query;
          const auto via_query = idx.query(xs[q], eps, &st_query);
          query_stats st_reused;
          const auto via_reused = reused.run(xs[q], eps, &st_reused);
          query_plan fresh(idx);
          query_stats st_fresh;
          const auto via_fresh = fresh.run(xs[q], eps, &st_fresh);

          EXPECT_EQ(via_query, via_reused) << what;
          EXPECT_EQ(via_query, via_fresh) << what;
          EXPECT_EQ(via_query, batch[q]) << what;
          expect_same_stats(st_query, st_reused, what);
          expect_same_stats(st_query, st_fresh, what);
          expect_same_stats(st_query, batch_stats[q], what);

          // One-sided error: any hit is a true dominating point.
          if (via_query.has_value()) {
            EXPECT_TRUE(stored[*via_query].dominates(xs[q])) << what;
          }
          // Exhaustive queries match the brute-force oracle.
          if (eps == 0.0) {
            bool oracle = false;
            for (const auto& p : stored) oracle = oracle || p.dominates(xs[q]);
            EXPECT_EQ(via_query.has_value(), oracle) << what;
          }
        }
      }
    }
  }
}

TEST(QueryPlan, BatchedProbeIsByteIdenticalToSingleRangePath) {
  // The batched frontier sweep (probe_frontier + volume-order replay) must
  // reproduce the single-range reference path exactly: same hits, same
  // pre-existing stats (runs probed, searched fraction, ...) for every
  // curve, backend and epsilon. Only the physical probe-work counters may
  // differ — batching must strictly reduce fresh descents on multi-probe
  // queries.
  rng gen(4242);
  for (const auto curve : {curve_kind::z_order, curve_kind::hilbert, curve_kind::gray_code}) {
    for (const auto array : {sfc_array_kind::skiplist, sfc_array_kind::sorted_vector}) {
      const universe u(2, 6);
      dominance_options batched_opts;
      batched_opts.curve = curve;
      batched_opts.array = array;
      batched_opts.batched_probe = true;
      dominance_options single_opts = batched_opts;
      single_opts.batched_probe = false;
      dominance_index batched_idx(u, batched_opts);
      dominance_index single_idx(u, single_opts);
      for (std::uint64_t i = 0; i < 200; ++i) {
        const point p = random_point(gen, u);
        batched_idx.insert(p, i);
        single_idx.insert(p, i);
      }

      std::uint64_t batched_restarts = 0;
      std::uint64_t single_restarts = 0;
      for (const double eps : {0.0, 0.02, 0.2, 0.6}) {
        for (int q = 0; q < 60; ++q) {
          const point x = random_point(gen, u);
          const std::string what = "curve=" + std::to_string(static_cast<int>(curve)) +
                                   " array=" + std::to_string(static_cast<int>(array)) +
                                   " eps=" + std::to_string(eps) + " x=" + x.to_string();
          query_stats st_batched;
          query_stats st_single;
          const auto via_batched = batched_idx.query(x, eps, &st_batched);
          const auto via_single = single_idx.query(x, eps, &st_single);
          EXPECT_EQ(via_batched, via_single) << what;
          expect_same_stats(st_batched, st_single, what);
          // The reference path never batches; the batched path restarts at
          // most once per probed level (the head probe) plus once per
          // frontier sweep.
          EXPECT_EQ(st_single.frontier_batches, 0u) << what;
          EXPECT_EQ(st_single.probes_resumed, 0u) << what;
          EXPECT_EQ(st_single.probes_restarted, st_single.runs_probed) << what;
          EXPECT_LE(st_batched.probes_restarted,
                    st_batched.runs_probed + st_batched.frontier_batches)
              << what;
          batched_restarts += st_batched.probes_restarted;
          single_restarts += st_single.probes_restarted;
        }
      }
      EXPECT_LT(batched_restarts, single_restarts)
          << "batching should strictly reduce fresh descents";
    }
  }
}

TEST(QueryPlan, HeadProbeDepthPreservesResults) {
  // dominance_options::head_probe moves probes between the individual-head
  // and frontier-sweep execution strategies but never changes the probe
  // order, so every depth — the pinned default 1, fixed deeper heads, and
  // the adaptive estimate (0) — must return the same hit and the same
  // logical stats as the single-range reference path on the same data.
  rng gen(7117);
  const universe u(2, 6);
  dominance_options ref_opts;
  ref_opts.batched_probe = false;
  dominance_index ref_idx(u, ref_opts);
  std::deque<dominance_index> idxs;
  const int depths[] = {1, 2, 4, 7, 0};
  for (const int h : depths) {
    dominance_options o;
    o.head_probe = h;
    idxs.emplace_back(u, o);
  }
  for (std::uint64_t i = 0; i < 150; ++i) {
    const point p = random_point(gen, u);
    ref_idx.insert(p, i);
    for (auto& idx : idxs) idx.insert(p, i);
  }
  // Negative depths are rejected up front, not silently mapped to adaptive.
  dominance_options bad;
  bad.head_probe = -1;
  EXPECT_THROW(dominance_index(u, bad), std::invalid_argument);
  // Enough queries that the adaptive plan passes its minimum-sample gate
  // and starts choosing depths from its own histogram.
  for (const double eps : {0.0, 0.1, 0.5}) {
    for (int q = 0; q < 120; ++q) {
      const point x = random_point(gen, u);
      query_stats ref_st;
      const auto ref = ref_idx.query(x, eps, &ref_st);
      for (std::size_t k = 0; k < idxs.size(); ++k) {
        const std::string what = "head_probe=" + std::to_string(depths[k]) +
                                 " eps=" + std::to_string(eps) + " x=" + x.to_string();
        query_stats st;
        const auto got = idxs[k].query(x, eps, &st);
        EXPECT_EQ(got, ref) << what;
        expect_same_stats(st, ref_st, what);
      }
    }
  }
}

TEST(QueryPlan, DegenerateMx1RegionsAgree) {
  // Query points with one coordinate at the maximum produce extremal regions
  // with a unit side — the paper's M x 1 worst case (per-cell runs). Use a
  // small settle budget so the budget path is exercised too.
  const universe u(2, 8);
  dominance_options opts;
  opts.max_cubes = 64;
  opts.settle_on_budget = true;
  dominance_index idx(u, opts);
  rng gen(27);
  for (std::uint64_t i = 0; i < 100; ++i) idx.insert(random_point(gen, u), i);

  query_plan reused(idx);
  for (const double eps : {0.0, 0.05, 0.3}) {
    for (std::uint32_t a = 0; a < 256; a += 37) {
      const point x{a, u.coord_max()};
      query_stats st_query;
      const auto via_query = idx.query(x, eps, &st_query);
      query_stats st_reused;
      const auto via_reused = reused.run(x, eps, &st_reused);
      const std::string what = "eps=" + std::to_string(eps) + " x=" + x.to_string();
      EXPECT_EQ(via_query, via_reused) << what;
      expect_same_stats(st_query, st_reused, what);
    }
  }
}

TEST(QueryPlan, BudgetThrowMatchesQuery) {
  dominance_options opts;
  opts.max_cubes = 16;
  dominance_index idx(universe(2, 9), opts);
  query_plan plan(idx);
  EXPECT_THROW((void)plan.run(point{255, 255}, 0.0), std::length_error);
  EXPECT_NO_THROW((void)plan.run(point{255, 255}, 0.5));
  // A failed run must not poison the plan's scratch for the next run.
  query_stats st_after;
  query_stats st_ref;
  const auto after = plan.run(point{255, 255}, 0.5, &st_after);
  const auto ref = query_plan(idx).run(point{255, 255}, 0.5, &st_ref);
  EXPECT_EQ(after, ref);
  expect_same_stats(st_after, st_ref, "post-throw reuse");
}

TEST(QueryPlan, InvalidArguments) {
  dominance_index idx(universe(2, 4));
  query_plan plan(idx);
  EXPECT_THROW((void)plan.run(point{0, 0}, -0.1), std::invalid_argument);
  EXPECT_THROW((void)plan.run(point{0, 0}, 1.0), std::invalid_argument);
  EXPECT_THROW((void)plan.run(point{0, 0, 0}, 0.0), std::invalid_argument);
}

TEST(QueryPlan, InsertBatchEquivalentToInserts) {
  const universe u(3, 5);
  dominance_options opts;
  opts.array = sfc_array_kind::sorted_vector;
  dominance_index via_loop(u, opts);
  dominance_index via_batch(u, opts);
  rng gen(55);
  std::vector<std::pair<point, std::uint64_t>> items;
  for (std::uint64_t i = 0; i < 200; ++i) items.emplace_back(random_point(gen, u), i);
  for (const auto& [p, id] : items) via_loop.insert(p, id);
  via_batch.insert_batch(items);
  ASSERT_EQ(via_batch.size(), via_loop.size());
  for (int q = 0; q < 100; ++q) {
    const point x = random_point(gen, u);
    for (const double eps : {0.0, 0.1}) {
      query_stats sa;
      query_stats sb;
      EXPECT_EQ(via_loop.query(x, eps, &sa), via_batch.query(x, eps, &sb));
      expect_same_stats(sa, sb, "insert_batch x=" + x.to_string());
    }
  }
  EXPECT_THROW(via_batch.insert_batch({{point{99, 0, 0}, 1}}), std::invalid_argument);
}

TEST(QueryPlan, WarmPlanPerformsZeroHeapAllocations) {
  // The acceptance criterion of the streaming refactor: after warm-up, a
  // query allocates nothing — no std::function, no materialized
  // decomposition, no per-query vectors.
  const universe u(2, 9);
  for (const auto array : {sfc_array_kind::skiplist, sfc_array_kind::sorted_vector}) {
    dominance_options opts;
    opts.array = array;
    dominance_index idx(u, opts);
    rng gen(77);
    for (std::uint64_t i = 0; i < 500; ++i) idx.insert(random_point(gen, u), i);

    query_plan plan(idx);
    const point miss{255, 255};  // 257x257 region, 385+ runs when exhaustive
    const point probe{10, 10};   // large region, likely early hit
    for (const double eps : {0.0, 0.01, 0.5}) {
      (void)plan.run(miss, eps);
      (void)plan.run(probe, eps);
    }
    for (const double eps : {0.0, 0.01, 0.5}) {
      const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
      (void)plan.run(miss, eps);
      (void)plan.run(probe, eps);
      const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
      EXPECT_EQ(after, before) << "eps=" << eps << " array="
                               << (array == sfc_array_kind::skiplist ? "skiplist" : "vector");
    }
  }
}

}  // namespace
}  // namespace subcover
