#include "sfc/z_curve.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace subcover {
namespace {

TEST(ZCurve, PaperInterleavingExample) {
  // Section 5: cell (3, 5) = (011, 101) has key (011011)_2 = 27.
  const universe u(2, 3);
  const z_curve z(u);
  EXPECT_EQ(z.cell_key(point{3, 5}), u512(27));
}

TEST(ZCurve, PaperSquareAExample) {
  // Section 5 / Figure 5(c): square "a" at coordinates (010, 011) has key
  // (001101)_2 = 13.
  const universe u(2, 3);
  const z_curve z(u);
  EXPECT_EQ(z.cell_key(point{2, 3}), u512(13));
}

TEST(ZCurve, OriginAndMaxCorner) {
  const universe u(3, 4);
  const z_curve z(u);
  EXPECT_EQ(z.cell_key(point{0, 0, 0}), u512::zero());
  EXPECT_EQ(z.cell_key(point{15, 15, 15}), u512::pow2(12) - 1);
}

TEST(ZCurve, FirstDimensionIsMostSignificant) {
  const universe u(2, 1);
  const z_curve z(u);
  // Order: (0,0) (0,1) (1,0) (1,1) -> keys 0,1,2,3.
  EXPECT_EQ(z.cell_key(point{0, 0}), u512(0));
  EXPECT_EQ(z.cell_key(point{0, 1}), u512(1));
  EXPECT_EQ(z.cell_key(point{1, 0}), u512(2));
  EXPECT_EQ(z.cell_key(point{1, 1}), u512(3));
}

TEST(ZCurve, RoundTrip2D) {
  const universe u(2, 4);
  const z_curve z(u);
  for (std::uint32_t x = 0; x < 16; ++x)
    for (std::uint32_t y = 0; y < 16; ++y) {
      const point p{x, y};
      EXPECT_EQ(z.cell_from_key(z.cell_key(p)), p);
    }
}

TEST(ZCurve, CubeRangeOfWholeUniverse) {
  const universe u(2, 4);
  const z_curve z(u);
  const auto r = z.cube_range(standard_cube(point{0, 0}, 4));
  EXPECT_EQ(r.lo, u512::zero());
  EXPECT_EQ(r.hi, u512::pow2(8) - 1);
}

TEST(ZCurve, CubeRangeQuadrants) {
  // In 2-D the four quadrants of the universe are the four quarters of the
  // key space, ordered (lo,lo), (lo,hi), (hi,lo), (hi,hi).
  const universe u(2, 4);
  const z_curve z(u);
  const int q = 6;  // 2 * 3 bits per quadrant... quadrant size = 2^(2*3)
  EXPECT_EQ(z.cube_range(standard_cube(point{0, 0}, 3)),
            key_range(u512(0), u512::pow2(q) - 1));
  EXPECT_EQ(z.cube_range(standard_cube(point{0, 8}, 3)),
            key_range(u512::pow2(q), u512::pow2(q).mul_u64(2) - 1));
  EXPECT_EQ(z.cube_range(standard_cube(point{8, 0}, 3)),
            key_range(u512::pow2(q).mul_u64(2), u512::pow2(q).mul_u64(3) - 1));
  EXPECT_EQ(z.cube_range(standard_cube(point{8, 8}, 3)),
            key_range(u512::pow2(q).mul_u64(3), u512::pow2(q).mul_u64(4) - 1));
}

TEST(ZCurve, FigureTwoBigCubeIsOneRun) {
  // Figure 2: in a 512x512 universe, the 256x256 corner-anchored square is a
  // standard cube and hence a single run.
  const universe u(2, 9);
  const z_curve z(u);
  const auto r = z.cube_range(standard_cube(point{256, 256}, 8));
  EXPECT_EQ(r.cell_count(), u512(65536));
}

TEST(ZCurve, RejectsCubeOutsideUniverse) {
  const universe u(2, 4);
  const z_curve z(u);
  EXPECT_THROW(z.cell_key(point{16, 0}), std::invalid_argument);
  EXPECT_THROW(z.cube_range(standard_cube(point{0, 0}, 5)), std::invalid_argument);
}

TEST(ZCurve, RejectsDimensionMismatch) {
  const universe u(2, 4);
  const z_curve z(u);
  EXPECT_THROW(z.cell_key(point{1, 2, 3}), std::invalid_argument);
}

TEST(ZCurve, RejectsOutOfRangeKey) {
  const universe u(2, 2);
  const z_curve z(u);
  EXPECT_THROW(z.cell_from_key(u512(16)), std::invalid_argument);
  EXPECT_EQ(z.cell_from_key(u512(15)), (point{3, 3}));
}

TEST(ZCurve, HighDimensionalKeyWidth) {
  const universe u(16, 8);  // 128-bit keys
  const z_curve z(u);
  point max_corner(16);
  for (int i = 0; i < 16; ++i) max_corner[i] = 255;
  EXPECT_EQ(z.cell_key(max_corner), u512::pow2(128) - 1);
  EXPECT_EQ(z.cell_from_key(u512::pow2(128) - 1), max_corner);
}

}  // namespace
}  // namespace subcover
