#include "sfc/decomposition.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "util/random.h"

namespace subcover {
namespace {

std::vector<standard_cube> decompose(const universe& u, const rect& r) {
  std::vector<standard_cube> cubes;
  decompose_rect(u, r, [&](const standard_cube& c) { cubes.push_back(c); });
  return cubes;
}

// Independent oracle for the minimal partition: the set of maximal standard
// cubes contained in r (a cube is in the minimal partition iff it fits in r
// and its parent does not — a consequence of Lemma 2.1 + Lemma 3.3).
std::vector<standard_cube> oracle_partition(const universe& u, const rect& r) {
  std::vector<standard_cube> out;
  for (int s = 0; s <= u.bits(); ++s) {
    const std::uint32_t step = 1U << s;
    for (std::uint32_t x = 0; x <= u.coord_max(); x += step) {
      for (std::uint32_t y = 0; y <= u.coord_max(); y += step) {
        point corner(2);
        corner[0] = x;
        corner[1] = y;
        const standard_cube c(corner, s);
        if (!r.contains(c.as_rect())) continue;
        const bool parent_fits =
            s < u.bits() && r.contains(standard_cube::containing(corner, s + 1).as_rect());
        if (!parent_fits) out.push_back(c);
      }
    }
  }
  return out;
}

std::set<std::string> cube_set(const std::vector<standard_cube>& cubes) {
  std::set<std::string> s;
  for (const auto& c : cubes) s.insert(c.to_string());
  return s;
}

TEST(Decomposition, SingleCell) {
  const universe u(2, 4);
  const auto cubes = decompose(u, rect(point{5, 9}, point{5, 9}));
  ASSERT_EQ(cubes.size(), 1U);
  EXPECT_EQ(cubes[0], standard_cube(point{5, 9}, 0));
}

TEST(Decomposition, WholeUniverseIsOneCube) {
  const universe u(3, 4);
  const auto cubes = decompose(u, rect::whole(u));
  ASSERT_EQ(cubes.size(), 1U);
  EXPECT_EQ(cubes[0].side_bits(), 4);
}

TEST(Decomposition, AlignedSquareIsOneCube) {
  const universe u(2, 9);
  const auto cubes = decompose(u, rect(point{256, 256}, point{511, 511}));
  ASSERT_EQ(cubes.size(), 1U);
  EXPECT_EQ(cubes[0], standard_cube(point{256, 256}, 8));
}

TEST(Decomposition, MisalignedSquareOfSameSizeNeedsManyCubes) {
  // The 3.1 intuition: shifting a 2^s-aligned square by one cell explodes
  // the cube count (here 4 -> many).
  const universe u(2, 4);
  const auto aligned = decompose(u, rect(point{0, 0}, point{7, 7}));
  const auto shifted = decompose(u, rect(point{1, 1}, point{8, 8}));
  EXPECT_EQ(aligned.size(), 1U);
  EXPECT_GT(shifted.size(), 10U);
}

TEST(Decomposition, TilesExactly) {
  const universe u(2, 5);
  rng gen(11);
  for (int trial = 0; trial < 50; ++trial) {
    point lo(2);
    point hi(2);
    for (int i = 0; i < 2; ++i) {
      const auto a = gen.uniform(0, 31);
      const auto b = gen.uniform(0, 31);
      lo[i] = static_cast<std::uint32_t>(std::min(a, b));
      hi[i] = static_cast<std::uint32_t>(std::max(a, b));
    }
    const rect r(lo, hi);
    const auto cubes = decompose(u, r);
    // Disjoint, contained, and volumes sum to the rect volume.
    u512 vol = 0;
    for (std::size_t i = 0; i < cubes.size(); ++i) {
      EXPECT_TRUE(r.contains(cubes[i].as_rect()));
      vol += cubes[i].cell_count();
      for (std::size_t j = i + 1; j < cubes.size(); ++j)
        EXPECT_FALSE(cubes[i].as_rect().intersects(cubes[j].as_rect()));
    }
    EXPECT_EQ(vol, r.volume());
  }
}

TEST(Decomposition, MatchesMaximalCubeOracle) {
  const universe u(2, 4);
  rng gen(13);
  for (int trial = 0; trial < 100; ++trial) {
    point lo(2);
    point hi(2);
    for (int i = 0; i < 2; ++i) {
      const auto a = gen.uniform(0, 15);
      const auto b = gen.uniform(0, 15);
      lo[i] = static_cast<std::uint32_t>(std::min(a, b));
      hi[i] = static_cast<std::uint32_t>(std::max(a, b));
    }
    const rect r(lo, hi);
    EXPECT_EQ(cube_set(decompose(u, r)), cube_set(oracle_partition(u, r))) << r.to_string();
  }
}

TEST(Decomposition, GreedyIsMinimal) {
  // Lemma 3.3: no partition into standard cubes can be smaller. Verify
  // against the oracle (maximal cubes) which is provably minimal, plus a
  // sanity check that replacing any cube by its children grows the count.
  const universe u(2, 3);
  const rect r(point{1, 0}, point{6, 5});
  const auto cubes = decompose(u, r);
  EXPECT_EQ(cubes.size(), oracle_partition(u, r).size());
}

TEST(Decomposition, LevelCounts) {
  const universe u(2, 9);
  // Figure 2's 257x257 extremal square: one 256-cube + 513 unit cells.
  const rect r(point{255, 255}, point{511, 511});
  const auto counts = decompose_rect_level_counts(u, r);
  EXPECT_EQ(counts[8], 1U);
  EXPECT_EQ(counts[0], 513U);
  for (int s = 1; s < 8; ++s) EXPECT_EQ(counts[static_cast<std::size_t>(s)], 0U) << s;
  EXPECT_EQ(count_cubes(u, r), 514U);
}

TEST(Decomposition, CountCubesMatchesEnumeration) {
  const universe u(3, 3);
  rng gen(17);
  for (int trial = 0; trial < 30; ++trial) {
    point lo(3);
    point hi(3);
    for (int i = 0; i < 3; ++i) {
      const auto a = gen.uniform(0, 7);
      const auto b = gen.uniform(0, 7);
      lo[i] = static_cast<std::uint32_t>(std::min(a, b));
      hi[i] = static_cast<std::uint32_t>(std::max(a, b));
    }
    const rect r(lo, hi);
    EXPECT_EQ(count_cubes(u, r), decompose(u, r).size());
  }
}

TEST(Decomposition, SurfaceProportionalGrowth) {
  // cubes() of a (2^g+1)-sided square grows linearly with the side (the
  // perimeter effect of Section 3.1), not with the volume.
  const universe u(2, 12);
  std::uint64_t prev = 0;
  for (int g = 4; g <= 10; ++g) {
    const std::uint32_t side = (1U << g) + 1;
    const rect r(point{static_cast<std::uint32_t>(4096 - side), 4096 - side},
                 point{4095, 4095});
    const auto cubes = count_cubes(u, r);
    if (prev != 0) {
      EXPECT_GT(cubes, 2 * prev - cubes / 4);  // roughly doubles
      EXPECT_LT(cubes, 3 * prev);
    }
    prev = cubes;
  }
}

TEST(Decomposition, RejectsRegionOutsideUniverse) {
  const universe u(2, 4);
  EXPECT_THROW(decompose(u, rect(point{0, 0}, point{16, 3})), std::invalid_argument);
  EXPECT_THROW(decompose(universe(3, 4), rect(point{0, 0}, point{1, 1})),
               std::invalid_argument);
}

TEST(Decomposition, OneDimensional) {
  const universe u(1, 5);
  // [3, 17]: cubes {3}, [4,7], [8,15], [16,17] -> 1+1+1+1 = 4 maximal cubes.
  const auto cubes = decompose(u, rect(point{3}, point{17}));
  EXPECT_EQ(cubes.size(), 4U);
  u512 vol = 0;
  for (const auto& c : cubes) vol += c.cell_count();
  EXPECT_EQ(vol, u512(15));
}

}  // namespace
}  // namespace subcover
