// Properties every recursive-partitioning SFC must satisfy (paper Section 2),
// verified for all three curves over a sweep of universes:
//   1. Bijectivity: cell keys are a permutation of [0, 2^(d*k)).
//   2. Prefix property / Fact 2.1: a standard cube's range is exactly the
//      min/max of its cells' keys and has the cube's cell count — i.e. every
//      standard cube is one run.
//   3. Nested cubes have nested ranges.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "sfc/curve.h"
#include "util/random.h"

namespace subcover {
namespace {

using curve_case = std::tuple<curve_kind, int, int>;  // kind, dims, bits

class CurveProperty : public ::testing::TestWithParam<curve_case> {
 protected:
  [[nodiscard]] universe space() const {
    return {std::get<1>(GetParam()), std::get<2>(GetParam())};
  }
  [[nodiscard]] std::unique_ptr<curve> make() const {
    return make_curve(std::get<0>(GetParam()), space());
  }
};

// Enumerate all cells of the universe via odometer increments.
template <typename Fn>
void for_each_cell(const universe& u, Fn&& fn) {
  point p(u.dims());
  while (true) {
    fn(p);
    int i = 0;
    while (i < u.dims()) {
      if (p[i] < u.coord_max()) {
        ++p[i];
        break;
      }
      p[i] = 0;
      ++i;
    }
    if (i == u.dims()) break;
  }
}

TEST_P(CurveProperty, BijectionOverUniverse) {
  const universe u = space();
  const auto c = make();
  const auto total = u.cell_count().low64();
  std::vector<bool> seen(total, false);
  for_each_cell(u, [&](const point& p) {
    const auto key = c->cell_key(p);
    ASSERT_LT(key.low64(), total);
    ASSERT_EQ(key.bit_width() <= u.key_bits(), true);
    ASSERT_FALSE(seen[key.low64()]) << "duplicate key for " << p.to_string();
    seen[key.low64()] = true;
  });
}

TEST_P(CurveProperty, RoundTrip) {
  const universe u = space();
  const auto c = make();
  for_each_cell(u, [&](const point& p) { ASSERT_EQ(c->cell_from_key(c->cell_key(p)), p); });
}

TEST_P(CurveProperty, StandardCubesAreSingleRuns) {
  const universe u = space();
  const auto c = make();
  // For every standard cube: range == [min key, max key] over its cells and
  // the range size equals the cube volume (Fact 2.1).
  for (int s = 0; s <= u.bits(); ++s) {
    const std::uint32_t step = 1U << s;
    point corner(u.dims());
    // Iterate cube corners via odometer with stride `step`.
    while (true) {
      const standard_cube cube(corner, s);
      const key_range range = c->cube_range(cube);
      ASSERT_EQ(range.cell_count(), cube.cell_count());
      // min/max check on the cube's cells (sampled corners + center for
      // speed; full check for small cubes).
      u512 min_key = u512::max();
      u512 max_key = 0;
      const rect box = cube.as_rect();
      for_each_cell(universe(u.dims(), std::max(1, s)), [&](const point& offset) {
        if (s == 0) return;
        point cell(u.dims());
        for (int i = 0; i < u.dims(); ++i) cell[i] = corner[i] + (offset[i] & (step - 1));
        const auto key = c->cell_key(cell);
        min_key = key < min_key ? key : min_key;
        max_key = max_key < key ? key : max_key;
        ASSERT_TRUE(range.contains(key)) << cube.to_string();
        ASSERT_TRUE(box.contains(cell));
      });
      if (s > 0) {
        ASSERT_EQ(min_key, range.lo) << cube.to_string();
        ASSERT_EQ(max_key, range.hi) << cube.to_string();
      } else {
        ASSERT_EQ(c->cell_key(corner), range.lo);
        ASSERT_EQ(range.lo, range.hi);
      }
      // Next corner.
      int i = 0;
      while (i < u.dims()) {
        if (corner[i] + step <= u.coord_max()) {
          corner[i] += step;
          break;
        }
        corner[i] = 0;
        ++i;
      }
      if (i == u.dims()) break;
    }
  }
}

TEST_P(CurveProperty, NestedCubesHaveNestedRanges) {
  const universe u = space();
  const auto c = make();
  rng gen(5);
  for (int trial = 0; trial < 200; ++trial) {
    point p(u.dims());
    for (int i = 0; i < u.dims(); ++i)
      p[i] = static_cast<std::uint32_t>(gen.uniform(0, u.coord_max()));
    for (int s = 1; s <= u.bits(); ++s) {
      const auto inner = c->cube_range(standard_cube::containing(p, s - 1));
      const auto outer = c->cube_range(standard_cube::containing(p, s));
      ASSERT_LE(outer.lo, inner.lo);
      ASSERT_LE(inner.hi, outer.hi);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCurves, CurveProperty,
    ::testing::Values(curve_case{curve_kind::z_order, 1, 4}, curve_case{curve_kind::z_order, 2, 3},
                      curve_case{curve_kind::z_order, 2, 4}, curve_case{curve_kind::z_order, 3, 2},
                      curve_case{curve_kind::z_order, 4, 2}, curve_case{curve_kind::z_order, 6, 1},
                      curve_case{curve_kind::hilbert, 1, 4}, curve_case{curve_kind::hilbert, 2, 3},
                      curve_case{curve_kind::hilbert, 2, 4}, curve_case{curve_kind::hilbert, 3, 2},
                      curve_case{curve_kind::hilbert, 4, 2}, curve_case{curve_kind::hilbert, 6, 1},
                      curve_case{curve_kind::gray_code, 1, 4},
                      curve_case{curve_kind::gray_code, 2, 3},
                      curve_case{curve_kind::gray_code, 2, 4},
                      curve_case{curve_kind::gray_code, 3, 2},
                      curve_case{curve_kind::gray_code, 4, 2},
                      curve_case{curve_kind::gray_code, 6, 1}),
    [](const ::testing::TestParamInfo<curve_case>& info) {
      std::string name(curve_kind_name(std::get<0>(info.param)));
      for (auto& ch : name)
        if (ch == '-') ch = '_';
      return name + "_d" + std::to_string(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace subcover
