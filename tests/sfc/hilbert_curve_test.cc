#include "sfc/hilbert_curve.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace subcover {
namespace {

// The classic 2-D Hilbert curve on a 2x2 grid visits (0,0), (0,1), (1,1),
// (1,0) (up to the reflection convention fixed by Skilling's algorithm:
// dimension 0 is the first walked axis).
TEST(HilbertCurve, Order1Shape) {
  const universe u(2, 1);
  const hilbert_curve h(u);
  std::vector<point> order(4, point(2));
  for (std::uint32_t x = 0; x < 2; ++x)
    for (std::uint32_t y = 0; y < 2; ++y)
      order[h.cell_key(point{x, y}).low64()] = point{x, y};
  // Consecutive cells differ by exactly one step in one dimension.
  for (int i = 0; i + 1 < 4; ++i) {
    const int dx = std::abs(static_cast<int>(order[i][0]) - static_cast<int>(order[i + 1][0]));
    const int dy = std::abs(static_cast<int>(order[i][1]) - static_cast<int>(order[i + 1][1]));
    EXPECT_EQ(dx + dy, 1) << "step " << i;
  }
  EXPECT_EQ(order[0], (point{0, 0}));
}

// Adjacency is the defining property of the Hilbert curve: consecutive keys
// are orthogonally adjacent cells. (Z and Gray curves do not have this.)
TEST(HilbertCurve, AdjacencyExhaustive2D) {
  const universe u(2, 4);
  const hilbert_curve h(u);
  point prev = h.cell_from_key(0);
  for (std::uint64_t key = 1; key < 256; ++key) {
    const point cur = h.cell_from_key(key);
    int dist = 0;
    for (int i = 0; i < 2; ++i)
      dist += std::abs(static_cast<int>(cur[i]) - static_cast<int>(prev[i]));
    EXPECT_EQ(dist, 1) << "key " << key;
    prev = cur;
  }
}

TEST(HilbertCurve, AdjacencyExhaustive3D) {
  const universe u(3, 3);
  const hilbert_curve h(u);
  point prev = h.cell_from_key(0);
  for (std::uint64_t key = 1; key < 512; ++key) {
    const point cur = h.cell_from_key(key);
    int dist = 0;
    for (int i = 0; i < 3; ++i)
      dist += std::abs(static_cast<int>(cur[i]) - static_cast<int>(prev[i]));
    EXPECT_EQ(dist, 1) << "key " << key;
    prev = cur;
  }
}

TEST(HilbertCurve, AdjacencyExhaustive4D) {
  const universe u(4, 2);
  const hilbert_curve h(u);
  point prev = h.cell_from_key(0);
  for (std::uint64_t key = 1; key < 256; ++key) {
    const point cur = h.cell_from_key(key);
    int dist = 0;
    for (int i = 0; i < 4; ++i)
      dist += std::abs(static_cast<int>(cur[i]) - static_cast<int>(prev[i]));
    EXPECT_EQ(dist, 1) << "key " << key;
    prev = cur;
  }
}

TEST(HilbertCurve, StartsAtOrigin) {
  for (int d = 1; d <= 4; ++d) {
    const universe u(d, 3);
    const hilbert_curve h(u);
    EXPECT_EQ(h.cell_key(point(d)), u512::zero()) << "d=" << d;
  }
}

TEST(HilbertCurve, RoundTrip2D) {
  const universe u(2, 5);
  const hilbert_curve h(u);
  for (std::uint32_t x = 0; x < 32; ++x)
    for (std::uint32_t y = 0; y < 32; ++y) {
      const point p{x, y};
      EXPECT_EQ(h.cell_from_key(h.cell_key(p)), p);
    }
}

TEST(HilbertCurve, RoundTripHighDims) {
  const universe u(8, 10);
  const hilbert_curve h(u);
  // Spot-check a grid of points (exhaustive is infeasible at 2^80 cells).
  for (std::uint32_t x = 0; x < 1024; x += 73) {
    point p(8);
    for (int i = 0; i < 8; ++i) p[i] = (x * (static_cast<std::uint32_t>(i) + 3)) % 1024;
    EXPECT_EQ(h.cell_from_key(h.cell_key(p)), p);
  }
}

// The closed-form child_rank / descend_state pair must reproduce the ground
// truth (the low d bits of the child's cube_prefix) at every node of the
// partition tree. Walk the whole tree of every small universe, threading
// the orientation state exactly the way cube_stream does.
TEST(HilbertCurve, ChildRankClosedFormMatchesCubePrefix) {
  for (int d = 1; d <= 5; ++d) {
    for (int k = 1; k <= (d >= 4 ? 2 : 3); ++k) {
      const universe u(d, k);
      const hilbert_curve h(u);
      const std::uint64_t rank_mask = (std::uint64_t{1} << d) - 1;
      struct node {
        standard_cube cube;
        curve_state state;
        u512 prefix;
      };
      std::vector<node> stack;
      curve_state root_state;
      h.init_state(root_state);
      stack.push_back({standard_cube(point(d), k), root_state, u512::zero()});
      while (!stack.empty()) {
        const node n = stack.back();
        stack.pop_back();
        if (n.cube.side_bits() == 0) continue;
        const int child_bits = n.cube.side_bits() - 1;
        const auto half = std::uint32_t{1} << child_bits;
        for (std::uint32_t mask = 0; mask < (std::uint32_t{1} << d); ++mask) {
          point corner = n.cube.corner();
          for (int j = 0; j < d; ++j)
            if ((mask >> j) & 1U) corner[j] += half;
          const standard_cube child(corner, child_bits);
          const u512 child_prefix = h.cube_prefix(child);
          const std::uint64_t truth = child_prefix.low64() & rank_mask;
          ASSERT_EQ(h.child_rank(n.prefix, n.state, mask), truth)
              << "d=" << d << " k=" << k << " side=" << n.cube.side_bits()
              << " mask=" << mask;
          // And the child's prefix is derivable from the parent's, which is
          // what cube_stream relies on.
          ASSERT_EQ((n.prefix << d) | u512(truth), child_prefix);
          curve_state child_state;
          h.descend_state(n.state, mask, child_state);
          stack.push_back({child, child_state, child_prefix});
        }
      }
    }
  }
}

}  // namespace
}  // namespace subcover
