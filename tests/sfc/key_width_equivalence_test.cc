// Width-equivalence property tests (the key-type selection contract of
// subcover.h): the u64 and u128 instantiations of the SFC pipeline compute
// bit-identical keys, prefixes, runs and query results to the u512
// reference instantiation, for all three curves. This is what makes the
// narrow-key fast path a pure constant-factor optimization.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "dominance/dominance_index.h"
#include "sfc/curve.h"
#include "sfc/runs.h"
#include "util/key_traits.h"
#include "util/random.h"

namespace subcover {
namespace {

const curve_kind kKinds[] = {curve_kind::z_order, curve_kind::hilbert, curve_kind::gray_code};

// Every standard cube of a small universe, visited via side-aligned corners.
template <class Fn>
void for_each_cube(const universe& u, Fn&& fn) {
  for (int s = 0; s <= u.bits(); ++s) {
    const std::uint32_t side = std::uint32_t{1} << s;
    const std::uint32_t n = std::uint32_t{1} << (u.bits() - s);
    std::vector<std::uint32_t> idx(static_cast<std::size_t>(u.dims()), 0);
    while (true) {
      point corner(u.dims());
      for (int j = 0; j < u.dims(); ++j) corner[j] = idx[static_cast<std::size_t>(j)] * side;
      fn(standard_cube(corner, s));
      int j = 0;
      for (; j < u.dims(); ++j) {
        if (++idx[static_cast<std::size_t>(j)] < n) break;
        idx[static_cast<std::size_t>(j)] = 0;
      }
      if (j == u.dims()) break;
    }
  }
}

template <class K>
void expect_curve_equivalence(curve_kind kind, const universe& u) {
  SCOPED_TRACE(testing::Message() << curve_kind_name(kind) << " d=" << u.dims()
                                  << " k=" << u.bits() << " bits=" << key_traits<K>::kBits);
  const auto narrow = make_basic_curve<K>(kind, u);
  const auto wide = make_basic_curve<u512>(kind, u);
  // Prefixes and cube ranges agree for every standard cube.
  for_each_cube(u, [&](const standard_cube& c) {
    ASSERT_EQ(key_traits<K>::widen(narrow->cube_prefix(c)), wide->cube_prefix(c));
    const auto nr = narrow->cube_range(c);
    const auto wr = wide->cube_range(c);
    ASSERT_EQ(key_traits<K>::widen(nr.lo), wr.lo);
    ASSERT_EQ(key_traits<K>::widen(nr.hi), wr.hi);
  });
  // Key -> cell agrees for every key (and closes the bijection round trip).
  const std::uint64_t cells = std::uint64_t{1} << u.key_bits();
  for (std::uint64_t key = 0; key < cells; ++key) {
    const point np = narrow->cell_from_key(static_cast<K>(key));
    const point wp = wide->cell_from_key(u512(key));
    ASSERT_EQ(np, wp) << "key=" << key;
    ASSERT_EQ(key_traits<K>::widen(narrow->cell_key(np)), wide->cell_key(wp));
  }
}

TEST(KeyWidthEquivalence, CurvesAgreeOnSmallUniverses) {
  for (const curve_kind kind : kKinds) {
    for (const auto& [d, k] : {std::pair{1, 6}, {2, 4}, {3, 3}, {4, 2}}) {
      const universe u(d, k);
      expect_curve_equivalence<std::uint64_t>(kind, u);
      expect_curve_equivalence<u128>(kind, u);
    }
  }
}

template <class K>
void expect_runs_equivalence(curve_kind kind, const universe& u, std::uint64_t seed) {
  const auto narrow = make_basic_curve<K>(kind, u);
  const auto wide = make_basic_curve<u512>(kind, u);
  rng gen(seed);
  for (int trial = 0; trial < 40; ++trial) {
    point lo(u.dims());
    point hi(u.dims());
    for (int j = 0; j < u.dims(); ++j) {
      // Bounded sides keep the decomposition small on big-coordinate
      // universes; the equivalence claim is per cube, so small regions
      // exercise it just as well.
      const auto side = gen.uniform(1, 16);
      const auto a = gen.uniform(0, u.side() - side);
      lo[j] = static_cast<std::uint32_t>(a);
      hi[j] = static_cast<std::uint32_t>(a + side - 1);
    }
    const rect r(lo, hi);
    const auto nruns = region_runs(*narrow, r);
    const auto wruns = region_runs(*wide, r);
    ASSERT_EQ(nruns.size(), wruns.size()) << curve_kind_name(kind) << " trial " << trial;
    for (std::size_t i = 0; i < nruns.size(); ++i) {
      ASSERT_EQ(key_traits<K>::widen(nruns[i].lo), wruns[i].lo);
      ASSERT_EQ(key_traits<K>::widen(nruns[i].hi), wruns[i].hi);
    }
  }
}

TEST(KeyWidthEquivalence, RunsAgreeOnRandomRects) {
  for (const curve_kind kind : kKinds) {
    expect_runs_equivalence<std::uint64_t>(kind, universe(2, 8), 11);   // 16 bits
    expect_runs_equivalence<std::uint64_t>(kind, universe(3, 7), 13);   // 21 bits
    expect_runs_equivalence<u128>(kind, universe(3, 7), 17);
    expect_runs_equivalence<u128>(kind, universe(5, 20), 19);           // 100 bits, u128 only
  }
}

// Dominance queries give identical results *and* identical work counters at
// every width: same cubes enumerated, same runs probed, same hits.
TEST(KeyWidthEquivalence, DominanceQueriesAgreeAcrossWidths) {
  const universe u(3, 8);  // 24 bits: all three widths representable
  for (const curve_kind kind : kKinds) {
    SCOPED_TRACE(curve_kind_name(kind));
    std::vector<std::unique_ptr<dominance_index>> indexes;
    for (const key_width w : {key_width::w64, key_width::w128, key_width::w512}) {
      dominance_options o;
      o.curve = kind;
      o.array = sfc_array_kind::sorted_vector;
      o.width = w;
      indexes.push_back(std::make_unique<dominance_index>(u, o));
    }
    EXPECT_EQ(indexes[0]->width(), key_width::w64);
    EXPECT_EQ(indexes[2]->width(), key_width::w512);
    rng gen(23);
    std::vector<std::pair<point, std::uint64_t>> pts;
    for (std::uint64_t i = 0; i < 500; ++i) {
      point p(u.dims());
      for (int j = 0; j < u.dims(); ++j)
        p[j] = static_cast<std::uint32_t>(gen.uniform(0, u.coord_max()));
      pts.emplace_back(p, i);
    }
    for (auto& idx : indexes) idx->insert_batch(pts);
    for (const double eps : {0.0, 0.1}) {
      rng qgen(29);
      for (int trial = 0; trial < 50; ++trial) {
        point x(u.dims());
        for (int j = 0; j < u.dims(); ++j)
          x[j] = static_cast<std::uint32_t>(qgen.uniform(0, u.coord_max()));
        query_stats st64;
        query_stats st128;
        query_stats st512;
        const auto r64 = indexes[0]->query(x, eps, &st64);
        const auto r128 = indexes[1]->query(x, eps, &st128);
        const auto r512 = indexes[2]->query(x, eps, &st512);
        ASSERT_EQ(r64, r512) << "eps=" << eps << " trial=" << trial;
        ASSERT_EQ(r128, r512) << "eps=" << eps << " trial=" << trial;
        ASSERT_EQ(st64.cubes_enumerated, st512.cubes_enumerated);
        ASSERT_EQ(st128.cubes_enumerated, st512.cubes_enumerated);
        ASSERT_EQ(st64.runs_in_plan, st512.runs_in_plan);
        ASSERT_EQ(st128.runs_in_plan, st512.runs_in_plan);
        ASSERT_EQ(st64.runs_probed, st512.runs_probed);
        ASSERT_EQ(st128.runs_probed, st512.runs_probed);
        ASSERT_EQ(st64.volume_fraction_planned, st512.volume_fraction_planned);
        ASSERT_EQ(st128.volume_fraction_planned, st512.volume_fraction_planned);
        ASSERT_EQ(st64.volume_fraction_searched, st512.volume_fraction_searched);
        ASSERT_EQ(st128.volume_fraction_searched, st512.volume_fraction_searched);
        ASSERT_EQ(st64.truncation_m, st512.truncation_m);
        ASSERT_EQ(st64.budget_exhausted, st512.budget_exhausted);
        ASSERT_EQ(st64.found, st512.found);
      }
    }
  }
}

// Forcing a width too narrow for the universe must fail loudly.
TEST(KeyWidthEquivalence, ForcedNarrowWidthThrows) {
  dominance_options o;
  o.width = key_width::w64;
  EXPECT_THROW(dominance_index(universe(5, 20), o), std::invalid_argument);  // 100 bits
  o.width = key_width::w128;
  EXPECT_THROW(dominance_index(universe(8, 30), o), std::invalid_argument);  // 240 bits
}

// The selection ladder itself.
TEST(KeyWidthEquivalence, SelectKeyWidth) {
  EXPECT_EQ(select_key_width(1), key_width::w64);
  EXPECT_EQ(select_key_width(64), key_width::w64);
  EXPECT_EQ(select_key_width(65), key_width::w128);
  EXPECT_EQ(select_key_width(128), key_width::w128);
  EXPECT_EQ(select_key_width(129), key_width::w512);
  EXPECT_EQ(select_key_width(512), key_width::w512);
  EXPECT_EQ(dominance_index(universe(2, 9)).width(), key_width::w64);
  EXPECT_EQ(dominance_index(universe(6, 16)).width(), key_width::w128);
  EXPECT_EQ(dominance_index(universe(16, 16)).width(), key_width::w512);
}

// The u512 facade views (sfc()/array()) stay coherent over a narrow engine.
TEST(KeyWidthEquivalence, FacadeViewsWidenNarrowEngines) {
  const universe u(2, 8);
  dominance_index idx(u);
  ASSERT_EQ(idx.width(), key_width::w64);
  point p(2);
  p[0] = 3;
  p[1] = 5;
  idx.insert(p, 42);
  EXPECT_EQ(idx.array().size(), 1U);
  const u512 key = idx.sfc().cell_key(p);
  const auto hit = idx.array().first_in({key, key});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->id, 42U);
  EXPECT_EQ(hit->key, key);
  // Probing past the narrow domain clamps instead of overflowing.
  EXPECT_EQ(idx.array().count_in({u512::zero(), u512::max()}), 1U);
  EXPECT_FALSE(idx.array().first_in({u512::pow2(300), u512::max()}).has_value());
}

}  // namespace
}  // namespace subcover
