#include "sfc/gray_curve.h"

#include <gtest/gtest.h>

namespace subcover {
namespace {

TEST(GrayCode, EncodeDecodeSmall) {
  // Reflected Gray code of 0..7: 0,1,3,2,6,7,5,4.
  const std::uint64_t expected[] = {0, 1, 3, 2, 6, 7, 5, 4};
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(gray_encode(u512(i)).low64(), expected[i]);
    EXPECT_EQ(gray_decode(u512(expected[i])).low64(), i);
  }
}

TEST(GrayCode, RoundTripWide) {
  for (int b = 0; b < 512; b += 37) {
    const u512 v = u512::pow2(b) + u512(12345);
    EXPECT_EQ(gray_decode(gray_encode(v)), v);
    EXPECT_EQ(gray_encode(gray_decode(v)), v);
  }
}

TEST(GrayCode, ConsecutiveCodesDifferInOneBit) {
  u512 prev = gray_encode(u512::zero());
  for (std::uint64_t i = 1; i < 1000; ++i) {
    const u512 cur = gray_encode(u512(i));
    EXPECT_EQ((cur ^ prev).popcount(), 1) << i;
    prev = cur;
  }
}

TEST(GrayCurve, BijectionExhaustive2D) {
  const universe u(2, 3);
  const gray_curve g(u);
  std::vector<bool> seen(64, false);
  for (std::uint32_t x = 0; x < 8; ++x)
    for (std::uint32_t y = 0; y < 8; ++y) {
      const auto key = g.cell_key(point{x, y}).low64();
      ASSERT_LT(key, 64U);
      EXPECT_FALSE(seen[key]);
      seen[key] = true;
    }
}

// On the Gray-code curve consecutive cells differ in exactly one interleaved
// bit, i.e. one coordinate changes and by a power of two.
TEST(GrayCurve, ConsecutiveCellsDifferInOneCoordinate) {
  const universe u(2, 4);
  const gray_curve g(u);
  point prev = g.cell_from_key(0);
  for (std::uint64_t key = 1; key < 256; ++key) {
    const point cur = g.cell_from_key(key);
    int changed = 0;
    for (int i = 0; i < 2; ++i)
      if (cur[i] != prev[i]) ++changed;
    EXPECT_EQ(changed, 1) << "key " << key;
    prev = cur;
  }
}

TEST(GrayCurve, RoundTrip) {
  const universe u(3, 4);
  const gray_curve g(u);
  for (std::uint32_t x = 0; x < 16; ++x)
    for (std::uint32_t y = 0; y < 16; ++y)
      for (std::uint32_t z = 0; z < 16; z += 3) {
        const point p{x, y, z};
        EXPECT_EQ(g.cell_from_key(g.cell_key(p)), p);
      }
}

TEST(GrayCurve, StartsAtOrigin) {
  const universe u(2, 4);
  const gray_curve g(u);
  EXPECT_EQ(g.cell_key(point{0, 0}), u512::zero());
}

}  // namespace
}  // namespace subcover
