// Property tests for the corner-free level-range enumerator (the query
// planner's hot path): enumerate_level_ranges must emit exactly the key
// intervals of the standard_cube path — same intervals, same order — for
// all three curves at all three key widths, and both paths must match an
// independent reference implementation of Equation 1 (the pre-rewrite
// corner-materializing enumerator, kept here verbatim as ground truth) as
// well as the Lemma 3.5 closed-form level counts.
#include "sfc/extremal_decomposition.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sfc/curve.h"
#include "util/bitops.h"
#include "util/key_traits.h"
#include "util/random.h"
#include "util/wideint.h"

namespace subcover {
namespace {

std::array<std::uint64_t, kMaxDims> lengths(std::initializer_list<std::uint64_t> ls) {
  std::array<std::uint64_t, kMaxDims> a{};
  std::size_t i = 0;
  for (const auto l : ls) a[i++] = l;
  return a;
}

extremal_rect random_extremal(rng& gen, const universe& u) {
  std::array<std::uint64_t, kMaxDims> len{};
  for (int i = 0; i < u.dims(); ++i)
    len[static_cast<std::size_t>(i)] = gen.uniform(1, u.side());
  return {u, len};
}

// Ground truth: the corner-materializing Algorithms 1-3 implementation that
// the bit-plane walk replaced. Enumeration order is part of the contract
// (pin ascending, P lexicographic with bits descending, free-bit masks in
// counting order), so the reference reproduces it exactly.
class reference_enumerator {
 public:
  reference_enumerator(const universe& u, const extremal_rect& r, int i,
                       std::vector<standard_cube>& out)
      : u_(u), r_(r), i_(i), out_(out) {}

  void run() {
    if (!level_occupied(r_, i_)) return;
    for (int s = 0; s < u_.dims(); ++s) {
      if (bit_at(r_.length(s), i_)) {
        pin_ = s;
        enum_rectangles(0);
      }
    }
  }

 private:
  void enum_rectangles(int t) {
    if (t == u_.dims()) {
      comp_keys();
      return;
    }
    if (t == pin_) {
      p_[static_cast<std::size_t>(t)] = i_;
      enum_rectangles(t + 1);
      return;
    }
    const std::uint64_t len = r_.length(t);
    const int lowest = t < pin_ ? i_ + 1 : i_;
    for (int j = bit_length(len) - 1; j >= lowest; --j) {
      if (bit_at(len, j)) {
        p_[static_cast<std::size_t>(t)] = j;
        enum_rectangles(t + 1);
      }
    }
  }

  void comp_keys() {
    const int d = u_.dims();
    const std::uint64_t coord_mask = u_.side() - 1;
    std::array<std::uint64_t, kMaxDims> base{};
    std::vector<std::pair<int, int>> free_bits;
    for (int x = 0; x < d; ++x) {
      const std::uint64_t len = r_.length(x);
      const int px = p_[static_cast<std::size_t>(x)];
      std::uint64_t c = keep_bits_from(~len, px + 1);
      c |= std::uint64_t{1} << px;
      base[static_cast<std::size_t>(x)] = c & coord_mask;
      for (int y = i_; y < px; ++y) free_bits.emplace_back(x, y);
    }
    const std::uint64_t combos = std::uint64_t{1} << free_bits.size();
    for (std::uint64_t mask = 0; mask < combos; ++mask) {
      std::array<std::uint64_t, kMaxDims> c = base;
      for (std::size_t b = 0; b < free_bits.size(); ++b) {
        if ((mask >> b) & 1U) {
          const auto [dim, pos] = free_bits[b];
          c[static_cast<std::size_t>(dim)] |= std::uint64_t{1} << pos;
        }
      }
      point corner(d);
      for (int x = 0; x < d; ++x)
        corner[x] = static_cast<std::uint32_t>(c[static_cast<std::size_t>(x)]);
      out_.emplace_back(corner, i_);
    }
  }

  const universe& u_;
  const extremal_rect& r_;
  const int i_;
  std::vector<standard_cube>& out_;
  int pin_ = 0;
  std::array<int, kMaxDims> p_{};
};

std::vector<standard_cube> reference_level_cubes(const universe& u, const extremal_rect& r,
                                                 int i) {
  std::vector<standard_cube> out;
  reference_enumerator(u, r, i, out).run();
  return out;
}

// The cube path matches the reference in content *and* order.
TEST(LevelRangeEnumerator, CubePathMatchesReferenceOrder) {
  for (const auto& [d, k] : std::vector<std::pair<int, int>>{{1, 6}, {2, 5}, {3, 4}, {4, 3}}) {
    const universe u(d, k);
    rng gen(static_cast<std::uint64_t>(d * 1000 + k));
    for (int trial = 0; trial < 15; ++trial) {
      const auto r = random_extremal(gen, u);
      for (int i = 0; i <= u.bits(); ++i) {
        const auto expected = reference_level_cubes(u, r, i);
        std::vector<standard_cube> got;
        enumerate_level_cubes(u, r, i, [&](const standard_cube& c) { got.push_back(c); });
        ASSERT_EQ(got.size(), expected.size()) << r.to_string() << " level " << i;
        for (std::size_t n = 0; n < got.size(); ++n)
          ASSERT_EQ(got[n], expected[n])
              << r.to_string() << " level " << i << " position " << n;
      }
    }
  }
}

template <class K>
void expect_ranges_match_cubes(curve_kind kind, const universe& u, std::uint64_t seed) {
  SCOPED_TRACE(testing::Message() << curve_kind_name(kind) << " d=" << u.dims()
                                  << " k=" << u.bits() << " bits=" << key_traits<K>::kBits);
  const auto curve = make_basic_curve<K>(kind, u);
  rng gen(seed);
  for (int trial = 0; trial < 15; ++trial) {
    const auto r = random_extremal(gen, u);
    const auto counts = extremal_level_counts(u, r);
    for (int i = 0; i <= u.bits(); ++i) {
      std::vector<basic_key_range<K>> via_cubes;
      enumerate_level_cubes(u, r, i, [&](const standard_cube& c) {
        via_cubes.push_back(curve->cube_range(c));
      });
      std::vector<basic_key_range<K>> via_ranges;
      enumerate_level_ranges(*curve, r, i,
                             [&](const basic_key_range<K>& kr) { via_ranges.push_back(kr); });
      // Same per-level count as the Lemma 3.5 closed form.
      ASSERT_EQ(u512(via_ranges.size()), counts[static_cast<std::size_t>(i)])
          << r.to_string() << " level " << i;
      // Same intervals in the same order as the standard_cube path.
      ASSERT_EQ(via_ranges.size(), via_cubes.size()) << r.to_string() << " level " << i;
      for (std::size_t n = 0; n < via_ranges.size(); ++n)
        ASSERT_EQ(via_ranges[n], via_cubes[n])
            << r.to_string() << " level " << i << " position " << n << ": "
            << via_ranges[n].to_string() << " vs " << via_cubes[n].to_string();
    }
  }
}

TEST(LevelRangeEnumerator, RangesMatchCubePathAllCurvesAllWidths) {
  const curve_kind kinds[] = {curve_kind::z_order, curve_kind::hilbert, curve_kind::gray_code};
  for (const curve_kind kind : kinds) {
    for (const auto& [d, k] : std::vector<std::pair<int, int>>{{1, 6}, {2, 5}, {3, 4}, {4, 3}}) {
      const universe u(d, k);
      expect_ranges_match_cubes<std::uint64_t>(kind, u, 91);
      expect_ranges_match_cubes<u128>(kind, u, 92);
      expect_ranges_match_cubes<u512>(kind, u, 93);
    }
  }
}

// Wide universe (d*k > 64): the u128 range path on big coordinates.
TEST(LevelRangeEnumerator, RangesMatchCubePathWideUniverse) {
  const universe u(5, 20);  // 100-bit keys
  const curve_kind kinds[] = {curve_kind::z_order, curve_kind::hilbert, curve_kind::gray_code};
  for (const curve_kind kind : kinds) {
    const auto curve = make_basic_curve<u128>(kind, u);
    rng gen(44);
    std::array<std::uint64_t, kMaxDims> len{};
    for (int j = 0; j < u.dims(); ++j) len[static_cast<std::size_t>(j)] = gen.uniform(1, 2000);
    const extremal_rect r(u, len);
    for (int i = 0; i <= 11; ++i) {
      std::vector<basic_key_range<u128>> via_cubes;
      std::vector<basic_key_range<u128>> via_ranges;
      // Bound the work: these levels stay small for bounded side lengths.
      enumerate_level_cubes(
          u, r, i,
          [&](const standard_cube& c) {
            via_cubes.push_back(curve->cube_range(c));
            return via_cubes.size() < 2000;
          },
          1U << 20);
      enumerate_level_ranges(
          *curve, r, i,
          [&](const basic_key_range<u128>& kr) {
            via_ranges.push_back(kr);
            return via_ranges.size() < 2000;
          },
          1U << 20);
      ASSERT_EQ(via_ranges.size(), via_cubes.size()) << curve_kind_name(kind) << " i=" << i;
      for (std::size_t n = 0; n < via_ranges.size(); ++n)
        ASSERT_EQ(via_ranges[n], via_cubes[n]) << curve_kind_name(kind) << " i=" << i;
    }
  }
}

// Early stop (the query planner's "take exactly `needed`" contract): a
// bool visitor stopping after n cubes sees exactly the first n of the full
// enumeration.
TEST(LevelRangeEnumerator, EarlyStopYieldsPrefix) {
  const universe u(2, 9);
  const extremal_rect r(u, lengths({257, 300}));
  const auto curve = make_basic_curve<std::uint64_t>(curve_kind::hilbert, u);
  std::vector<basic_key_range<std::uint64_t>> all;
  enumerate_level_ranges(*curve, r, 0,
                         [&](const basic_key_range<std::uint64_t>& kr) { all.push_back(kr); });
  ASSERT_GT(all.size(), 10U);
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, all.size() - 1}) {
    std::vector<basic_key_range<std::uint64_t>> prefix;
    enumerate_level_ranges(*curve, r, 0, [&](const basic_key_range<std::uint64_t>& kr) {
      prefix.push_back(kr);
      return prefix.size() < n;
    });
    ASSERT_EQ(prefix.size(), n);
    for (std::size_t m = 0; m < n; ++m) ASSERT_EQ(prefix[m], all[m]) << "n=" << n;
  }
}

TEST(LevelRangeEnumerator, BudgetExceededThrows) {
  const universe u(2, 9);
  const extremal_rect r(u, lengths({257, 257}));  // 513 unit cells at level 0
  const auto curve = make_basic_curve<std::uint64_t>(curve_kind::z_order, u);
  EXPECT_THROW(enumerate_level_ranges(
                   *curve, r, 0, [](const basic_key_range<std::uint64_t>&) {},
                   /*max_cubes=*/100),
               std::length_error);
}

// l = 2^k exercises the P_x == k chosen bit outside the coordinate window,
// including the whole-universe cube at level k (empty prefix, full range).
TEST(LevelRangeEnumerator, FullUniverseSideLength) {
  const universe u(2, 4);
  const auto curve = make_basic_curve<std::uint64_t>(curve_kind::gray_code, u);
  const extremal_rect full(u, lengths({16, 16}));
  std::vector<basic_key_range<std::uint64_t>> got;
  enumerate_level_ranges(*curve, full, 4,
                         [&](const basic_key_range<std::uint64_t>& kr) { got.push_back(kr); });
  ASSERT_EQ(got.size(), 1U);
  EXPECT_EQ(got[0].lo, 0U);
  EXPECT_EQ(got[0].hi, key_traits<std::uint64_t>::mask(u.key_bits()));
  // Mixed: one full side, one partial — every level against the cube path.
  const extremal_rect mixed(u, lengths({16, 5}));
  for (int i = 0; i <= 4; ++i) {
    std::vector<basic_key_range<std::uint64_t>> via_cubes;
    enumerate_level_cubes(u, mixed, i, [&](const standard_cube& c) {
      via_cubes.push_back(curve->cube_range(c));
    });
    std::vector<basic_key_range<std::uint64_t>> via_ranges;
    enumerate_level_ranges(*curve, mixed, i, [&](const basic_key_range<std::uint64_t>& kr) {
      via_ranges.push_back(kr);
    });
    ASSERT_EQ(via_ranges, via_cubes) << "level " << i;
  }
}

// An empty level visits nothing through the range path too.
TEST(LevelRangeEnumerator, EmptyLevelVisitsNothing) {
  const universe u(2, 4);
  const extremal_rect r(u, lengths({0b1010, 0b0100}));
  const auto curve = make_basic_curve<std::uint64_t>(curve_kind::z_order, u);
  enumerate_level_ranges(*curve, r, 0, [](const basic_key_range<std::uint64_t>&) {
    FAIL() << "level 0 must be empty";
  });
}

}  // namespace
}  // namespace subcover
