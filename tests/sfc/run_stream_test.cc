// Property tests for the streaming decomposition pipeline: cube_stream must
// emit the exact minimal partition in curve key order, and run_stream must
// emit exactly the maximal runs that the materializing region_runs() /
// merge_ranges() construction defines.
#include "sfc/runs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sfc/decomposition.h"
#include "util/random.h"

namespace subcover {
namespace {

rect random_rect(rng& gen, const universe& u) {
  point lo(u.dims());
  point hi(u.dims());
  for (int i = 0; i < u.dims(); ++i) {
    const auto a = gen.uniform(0, u.coord_max());
    const auto b = gen.uniform(0, u.coord_max());
    lo[i] = static_cast<std::uint32_t>(std::min(a, b));
    hi[i] = static_cast<std::uint32_t>(std::max(a, b));
  }
  return {lo, hi};
}

// The reference construction: materialize every cube range, then sort+merge.
std::vector<key_range> reference_runs(const curve& c, const rect& r) {
  std::vector<key_range> ranges;
  decompose_rect(c.space(), r, [&](const standard_cube& cube) {
    ranges.push_back(c.cube_range(cube));
  });
  return merge_ranges(ranges);
}

std::vector<key_range> streamed_runs(const curve& c, const rect& r) {
  run_stream stream(c, r);
  std::vector<key_range> runs;
  key_range run;
  while (stream.next(&run)) runs.push_back(run);
  return runs;
}

TEST(CubeStream, EmitsExactlyTheMinimalPartitionInKeyOrder) {
  rng gen(2024);
  for (const auto kind : {curve_kind::z_order, curve_kind::hilbert, curve_kind::gray_code}) {
    for (const int dims : {1, 2, 3}) {
      const universe u(dims, 5);
      const auto c = make_curve(kind, u);
      for (int trial = 0; trial < 25; ++trial) {
        const rect r = random_rect(gen, u);
        std::vector<standard_cube> expected;
        decompose_rect(u, r, [&](const standard_cube& cube) { expected.push_back(cube); });

        cube_stream stream(*c, r);
        std::vector<standard_cube> got;
        standard_cube cube;
        u512 prev_hi = 0;
        bool first = true;
        while (stream.next(&cube)) {
          const key_range kr = c->cube_range(cube);
          if (!first) EXPECT_LT(prev_hi, kr.lo) << "cube ranges out of key order";
          prev_hi = kr.hi;
          first = false;
          got.push_back(cube);
        }
        ASSERT_EQ(got.size(), expected.size())
            << curve_kind_name(kind) << " d=" << dims << " " << r.to_string();
        // Same multiset of cubes: compare as sorted key ranges.
        auto key_of = [&](const standard_cube& sc) { return c->cube_range(sc).lo; };
        std::sort(expected.begin(), expected.end(),
                  [&](const standard_cube& a, const standard_cube& b) {
                    return key_of(a) < key_of(b);
                  });
        EXPECT_EQ(got, expected);
      }
    }
  }
}

TEST(CubeStream, WholeUniverseIsTheRootCube) {
  const universe u(2, 4);
  const auto c = make_curve(curve_kind::z_order, u);
  cube_stream stream(*c, rect::whole(u));
  standard_cube cube;
  ASSERT_TRUE(stream.next(&cube));
  EXPECT_EQ(cube.side_bits(), u.bits());
  EXPECT_FALSE(stream.next(&cube));
}

TEST(CubeStream, ResetReusesTheStream) {
  const universe u(2, 6);
  const auto c = make_curve(curve_kind::hilbert, u);
  cube_stream stream(*c);
  rng gen(7);
  for (int trial = 0; trial < 10; ++trial) {
    const rect r = random_rect(gen, u);
    stream.reset(r);
    std::uint64_t n = 0;
    standard_cube cube;
    while (stream.next(&cube)) ++n;
    EXPECT_EQ(n, count_cubes(u, r)) << r.to_string();
  }
}

TEST(CubeStream, RejectsRegionOutsideUniverse) {
  const universe u(2, 4);
  const auto c = make_curve(curve_kind::z_order, u);
  cube_stream stream(*c);
  EXPECT_THROW(stream.reset(rect(point{0, 0}, point{16, 3})), std::invalid_argument);
}

TEST(RunStream, MatchesReferenceRunsOnRandomRects) {
  rng gen(99);
  for (const auto kind : {curve_kind::z_order, curve_kind::hilbert, curve_kind::gray_code}) {
    for (const int dims : {1, 2, 3, 4}) {
      const universe u(dims, dims <= 2 ? 6 : 4);
      const auto c = make_curve(kind, u);
      for (int trial = 0; trial < 25; ++trial) {
        const rect r = random_rect(gen, u);
        EXPECT_EQ(streamed_runs(*c, r), reference_runs(*c, r))
            << curve_kind_name(kind) << " d=" << dims << " " << r.to_string();
      }
    }
  }
}

TEST(RunStream, MatchesReferenceOnDegenerateThinRects) {
  // The "M x 1" worst case: unit thickness in one dimension, full extent in
  // the other — per-cell runs on most curves.
  const universe u(2, 6);
  for (const auto kind : {curve_kind::z_order, curve_kind::hilbert, curve_kind::gray_code}) {
    const auto c = make_curve(kind, u);
    for (std::uint32_t row = 0; row < 64; row += 13) {
      const rect r(point{0, row}, point{63, row});
      EXPECT_EQ(streamed_runs(*c, r), reference_runs(*c, r)) << curve_kind_name(kind);
    }
  }
}

TEST(RunStream, SingleCell) {
  const universe u(3, 3);
  const auto c = make_curve(curve_kind::gray_code, u);
  const rect r(point{1, 2, 3}, point{1, 2, 3});
  const auto runs = streamed_runs(*c, r);
  ASSERT_EQ(runs.size(), 1U);
  EXPECT_EQ(runs[0].lo, runs[0].hi);
  EXPECT_EQ(runs[0].lo, c->cell_key(point{1, 2, 3}));
}

TEST(RunStream, RegionRunsAndCountRunsAgree) {
  const universe u(2, 7);
  const auto c = make_curve(curve_kind::z_order, u);
  rng gen(41);
  for (int trial = 0; trial < 20; ++trial) {
    const rect r = random_rect(gen, u);
    const auto runs = region_runs(*c, r);
    EXPECT_EQ(count_runs(*c, r), runs.size());
    EXPECT_EQ(total_cells(runs), r.volume());
  }
}

TEST(DecomposeRect, BoolVisitorStopsEarly) {
  const universe u(2, 9);
  const rect r(point{255, 255}, point{511, 511});  // 514 cubes total
  std::uint64_t seen = 0;
  decompose_rect(u, r, [&](const standard_cube&) { return ++seen < 10; });
  EXPECT_EQ(seen, 10U);
}

}  // namespace
}  // namespace subcover
