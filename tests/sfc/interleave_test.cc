// Fallback-vs-intrinsic equivalence for the bit-interleave kernels: the
// BMI2 (pdep/pext) specialization for std::uint64_t keys must agree with
// the portable per-bit loop on every (dims, bits) shape that fits 64 bits —
// exhaustively over all coordinates on small shapes, randomized on large
// ones — and the dispatching entry points must agree with the loop at every
// key width (on non-BMI2 hosts they *are* the loop, so the test still pins
// the dispatch contract).
#include "sfc/interleave.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "geometry/universe.h"
#include "util/random.h"
#include "util/wideint.h"

namespace subcover {
namespace {

using detail::deinterleave_bits;
using detail::deinterleave_bits_loop;
using detail::interleave_bits;
using detail::interleave_bits_loop;

// Every (dims, bits) shape with dims*bits <= 16: exhaustive over all keys.
TEST(Interleave, DispatchMatchesLoopExhaustive) {
  for (int dims = 1; dims <= 8; ++dims) {
    for (int bits = 1; dims * bits <= 16; ++bits) {
      const std::uint64_t keys = std::uint64_t{1} << (dims * bits);
      for (std::uint64_t key = 0; key < keys; ++key) {
        std::array<std::uint32_t, kMaxDims> coords{};
        deinterleave_bits_loop(key, coords.data(), dims, bits);
        // Loop round trip is the ground truth...
        ASSERT_EQ(interleave_bits_loop<std::uint64_t>(coords.data(), dims, bits), key);
        // ...and the dispatched kernels reproduce it bit for bit.
        ASSERT_EQ(interleave_bits<std::uint64_t>(coords.data(), dims, bits), key)
            << "dims=" << dims << " bits=" << bits;
        std::array<std::uint32_t, kMaxDims> via_dispatch{};
        deinterleave_bits(key, via_dispatch.data(), dims, bits);
        for (int d = 0; d < dims; ++d)
          ASSERT_EQ(via_dispatch[static_cast<std::size_t>(d)],
                    coords[static_cast<std::size_t>(d)])
              << "dims=" << dims << " bits=" << bits << " key=" << key;
      }
    }
  }
}

// Large shapes up to the full 64-bit key: randomized coordinates, all
// widths cross-checked against the u512 loop reference.
TEST(Interleave, DispatchMatchesLoopRandomizedAllWidths) {
  rng gen(1234);
  for (int dims = 1; dims <= kMaxDims; ++dims) {
    const int max_bits = std::min(64 / dims, static_cast<int>(kMaxBitsPerDim));
    for (int bits = 1; bits <= max_bits; ++bits) {
      for (int trial = 0; trial < 50; ++trial) {
        std::array<std::uint32_t, kMaxDims> coords{};
        for (int d = 0; d < dims; ++d)
          coords[static_cast<std::size_t>(d)] =
              static_cast<std::uint32_t>(gen.next()) & ((std::uint32_t{1} << bits) - 1);
        const u512 wide = interleave_bits_loop<u512>(coords.data(), dims, bits);
        const std::uint64_t k64 = interleave_bits<std::uint64_t>(coords.data(), dims, bits);
        const u128 k128 = interleave_bits<u128>(coords.data(), dims, bits);
        ASSERT_EQ(u512(k64), wide) << "dims=" << dims << " bits=" << bits;
        ASSERT_EQ((u512(static_cast<std::uint64_t>(k128 >> 64)) << 64) |
                      u512(static_cast<std::uint64_t>(k128)),
                  wide);
        std::array<std::uint32_t, kMaxDims> back{};
        deinterleave_bits(k64, back.data(), dims, bits);
        for (int d = 0; d < dims; ++d)
          ASSERT_EQ(back[static_cast<std::size_t>(d)], coords[static_cast<std::size_t>(d)]);
      }
    }
  }
}

// Coordinates with garbage above the low `bits` bits interleave identically:
// both kernels must consume only the low bits (pdep does so by
// construction; the loop by its level bound).
TEST(Interleave, HighCoordinateBitsIgnored) {
  rng gen(99);
  for (int dims = 2; dims <= 6; ++dims) {
    const int bits = 64 / dims >= 10 ? 10 : 64 / dims;
    for (int trial = 0; trial < 30; ++trial) {
      std::array<std::uint32_t, kMaxDims> clean{};
      std::array<std::uint32_t, kMaxDims> dirty{};
      for (int d = 0; d < dims; ++d) {
        const auto c = static_cast<std::uint32_t>(gen.next());
        clean[static_cast<std::size_t>(d)] = c & ((std::uint32_t{1} << bits) - 1);
        dirty[static_cast<std::size_t>(d)] =
            clean[static_cast<std::size_t>(d)] | (c & ~((std::uint32_t{1} << bits) - 1));
      }
      ASSERT_EQ(interleave_bits<std::uint64_t>(dirty.data(), dims, bits),
                interleave_bits<std::uint64_t>(clean.data(), dims, bits));
      ASSERT_EQ(interleave_bits_loop<std::uint64_t>(dirty.data(), dims, bits),
                interleave_bits_loop<std::uint64_t>(clean.data(), dims, bits));
    }
  }
}

// Wide-key dispatch (u128 / u512 word-sliced BMI2 ladder, or the loop on
// non-BMI2 hosts) agrees with the u512 per-bit loop reference on every
// (dims, bits) shape — exhaustively over all keys on small shapes.
TEST(Interleave, WideDispatchMatchesLoopExhaustive) {
  for (int dims = 1; dims <= 8; ++dims) {
    for (int bits = 1; dims * bits <= 14; ++bits) {
      const std::uint64_t keys = std::uint64_t{1} << (dims * bits);
      for (std::uint64_t key = 0; key < keys; ++key) {
        std::array<std::uint32_t, kMaxDims> coords{};
        deinterleave_bits_loop(key, coords.data(), dims, bits);
        ASSERT_EQ(interleave_bits<u128>(coords.data(), dims, bits), u128(key))
            << "dims=" << dims << " bits=" << bits;
        ASSERT_EQ(interleave_bits<u512>(coords.data(), dims, bits), u512(key))
            << "dims=" << dims << " bits=" << bits;
        std::array<std::uint32_t, kMaxDims> via128{};
        std::array<std::uint32_t, kMaxDims> via512{};
        deinterleave_bits(u128(key), via128.data(), dims, bits);
        deinterleave_bits(u512(key), via512.data(), dims, bits);
        for (int d = 0; d < dims; ++d) {
          ASSERT_EQ(via128[static_cast<std::size_t>(d)], coords[static_cast<std::size_t>(d)])
              << "dims=" << dims << " bits=" << bits << " key=" << key;
          ASSERT_EQ(via512[static_cast<std::size_t>(d)], coords[static_cast<std::size_t>(d)])
              << "dims=" << dims << " bits=" << bits << " key=" << key;
        }
      }
    }
  }
}

// Wide shapes up to the full 512-bit key (the word-sliced ladder crosses
// every word boundary here): randomized coordinates against the u512 loop.
TEST(Interleave, WideDispatchMatchesLoopRandomizedAllShapes) {
  rng gen(3456);
  for (int dims = 1; dims <= kMaxDims; ++dims) {
    const int max_bits = std::min(512 / dims, static_cast<int>(kMaxBitsPerDim));
    for (int bits = 1; bits <= max_bits; ++bits) {
      const int trials = dims * bits > 64 ? 20 : 5;
      for (int trial = 0; trial < trials; ++trial) {
        std::array<std::uint32_t, kMaxDims> coords{};
        for (int d = 0; d < dims; ++d)
          coords[static_cast<std::size_t>(d)] =
              static_cast<std::uint32_t>(gen.next()) &
              ((bits < 32 ? std::uint32_t{1} << bits : 0U) - 1);
        const u512 wide = interleave_bits_loop<u512>(coords.data(), dims, bits);
        ASSERT_EQ(interleave_bits<u512>(coords.data(), dims, bits), wide)
            << "dims=" << dims << " bits=" << bits;
        if (dims * bits <= 128) {
          const u128 k128 = interleave_bits<u128>(coords.data(), dims, bits);
          ASSERT_EQ((u512(static_cast<std::uint64_t>(k128 >> 64)) << 64) |
                        u512(static_cast<std::uint64_t>(k128)),
                    wide)
              << "dims=" << dims << " bits=" << bits;
          std::array<std::uint32_t, kMaxDims> back128{};
          deinterleave_bits(k128, back128.data(), dims, bits);
          for (int d = 0; d < dims; ++d)
            ASSERT_EQ(back128[static_cast<std::size_t>(d)],
                      coords[static_cast<std::size_t>(d)]);
        }
        std::array<std::uint32_t, kMaxDims> back{};
        deinterleave_bits(wide, back.data(), dims, bits);
        for (int d = 0; d < dims; ++d)
          ASSERT_EQ(back[static_cast<std::size_t>(d)], coords[static_cast<std::size_t>(d)])
              << "dims=" << dims << " bits=" << bits;
      }
    }
  }
}

#if SUBCOVER_BMI2_DISPATCH
// When the host has BMI2, pin the wide intrinsic kernels against the loop
// directly on every shape (the dispatch tests above would silently test
// loop-vs-loop on a pre-BMI2 machine).
TEST(Interleave, Bmi2WideKernelsMatchLoopWhenAvailable) {
  if (!detail::cpu_has_bmi2()) GTEST_SKIP() << "host CPU lacks BMI2";
  rng gen(6543);
  for (int dims = 1; dims <= kMaxDims; ++dims) {
    const int max_bits = std::min(512 / dims, static_cast<int>(kMaxBitsPerDim));
    for (int bits = 0; bits <= max_bits; ++bits) {
      const std::uint32_t coord_mask =
          bits == 0 ? 0U : bits >= 32 ? ~0U : (std::uint32_t{1} << bits) - 1;
      for (int trial = 0; trial < 12; ++trial) {
        std::array<std::uint32_t, kMaxDims> coords{};
        for (int d = 0; d < dims; ++d)
          coords[static_cast<std::size_t>(d)] =
              static_cast<std::uint32_t>(gen.next()) & coord_mask;
        const u512 wide = interleave_bits_loop<u512>(coords.data(), dims, bits);
        ASSERT_EQ(detail::interleave_bits_bmi2_u512(coords.data(), dims, bits), wide)
            << "dims=" << dims << " bits=" << bits;
        std::array<std::uint32_t, kMaxDims> back{};
        detail::deinterleave_bits_bmi2_u512(wide, back.data(), dims, bits);
        for (int d = 0; d < dims; ++d)
          ASSERT_EQ(back[static_cast<std::size_t>(d)], coords[static_cast<std::size_t>(d)])
              << "dims=" << dims << " bits=" << bits;
        if (dims * bits <= 128) {
          const u128 loop128 = interleave_bits_loop<u128>(coords.data(), dims, bits);
          ASSERT_EQ(detail::interleave_bits_bmi2_u128(coords.data(), dims, bits), loop128)
              << "dims=" << dims << " bits=" << bits;
          std::array<std::uint32_t, kMaxDims> back128{};
          detail::deinterleave_bits_bmi2_u128(loop128, back128.data(), dims, bits);
          for (int d = 0; d < dims; ++d)
            ASSERT_EQ(back128[static_cast<std::size_t>(d)],
                      coords[static_cast<std::size_t>(d)]);
        }
      }
    }
  }
}
#endif

#if SUBCOVER_BMI2_DISPATCH
// When the host has BMI2, pin the intrinsic kernels against the loop
// directly (the dispatch tests above would silently test loop-vs-loop on a
// pre-BMI2 machine).
TEST(Interleave, Bmi2KernelMatchesLoopWhenAvailable) {
  if (!detail::cpu_has_bmi2()) GTEST_SKIP() << "host CPU lacks BMI2";
  rng gen(77);
  for (int dims = 1; dims <= kMaxDims; ++dims) {
    const int max_bits = std::min(64 / dims, static_cast<int>(kMaxBitsPerDim));
    for (int bits = 0; bits <= max_bits; ++bits) {
      for (int trial = 0; trial < 40; ++trial) {
        std::array<std::uint32_t, kMaxDims> coords{};
        for (int d = 0; d < dims; ++d)
          coords[static_cast<std::size_t>(d)] = static_cast<std::uint32_t>(gen.next()) &
                                                ((bits > 0 ? std::uint32_t{1} << bits : 1U) - 1);
        const std::uint64_t expect = interleave_bits_loop<std::uint64_t>(coords.data(), dims, bits);
        ASSERT_EQ(detail::interleave_bits_bmi2(coords.data(), dims, bits), expect)
            << "dims=" << dims << " bits=" << bits;
        std::array<std::uint32_t, kMaxDims> a{};
        std::array<std::uint32_t, kMaxDims> b{};
        deinterleave_bits_loop(expect, a.data(), dims, bits);
        detail::deinterleave_bits_bmi2(expect, b.data(), dims, bits);
        for (int d = 0; d < dims; ++d)
          ASSERT_EQ(a[static_cast<std::size_t>(d)], b[static_cast<std::size_t>(d)]);
      }
    }
  }
}
#endif

}  // namespace
}  // namespace subcover
