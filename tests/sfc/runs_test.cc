#include "sfc/runs.h"

#include <gtest/gtest.h>

#include "sfc/decomposition.h"
#include "util/random.h"

namespace subcover {
namespace {

std::array<std::uint64_t, kMaxDims> lengths(std::initializer_list<std::uint64_t> ls) {
  std::array<std::uint64_t, kMaxDims> a{};
  std::size_t i = 0;
  for (const auto l : ls) a[i++] = l;
  return a;
}

TEST(MergeRanges, Empty) { EXPECT_TRUE(merge_ranges({}).empty()); }

TEST(MergeRanges, DisjointStaySeparate) {
  const auto merged = merge_ranges({{u512(10), u512(20)}, {u512(30), u512(40)}});
  ASSERT_EQ(merged.size(), 2U);
  EXPECT_EQ(merged[0], key_range(u512(10), u512(20)));
  EXPECT_EQ(merged[1], key_range(u512(30), u512(40)));
}

TEST(MergeRanges, AdjacentCoalesce) {
  const auto merged = merge_ranges({{u512(21), u512(30)}, {u512(10), u512(20)}});
  ASSERT_EQ(merged.size(), 1U);
  EXPECT_EQ(merged[0], key_range(u512(10), u512(30)));
}

TEST(MergeRanges, OverlappingCoalesce) {
  const auto merged = merge_ranges({{u512(10), u512(25)}, {u512(20), u512(30)}});
  ASSERT_EQ(merged.size(), 1U);
  EXPECT_EQ(merged[0], key_range(u512(10), u512(30)));
}

TEST(MergeRanges, NestedAbsorbed) {
  const auto merged = merge_ranges({{u512(10), u512(100)}, {u512(20), u512(30)}});
  ASSERT_EQ(merged.size(), 1U);
  EXPECT_EQ(merged[0], key_range(u512(10), u512(100)));
}

TEST(MergeRanges, GapOfOneDoesNotCoalesce) {
  const auto merged = merge_ranges({{u512(10), u512(20)}, {u512(22), u512(30)}});
  EXPECT_EQ(merged.size(), 2U);
}

TEST(MergeRanges, AtMaximumKeyNoOverflow) {
  const auto merged = merge_ranges({{u512::max() - 5, u512::max()}, {u512(0), u512(1)}});
  EXPECT_EQ(merged.size(), 2U);
}

TEST(MergeRanges, TotalCellsPreserved) {
  rng gen(3);
  std::vector<key_range> ranges;
  u512 expected = 0;
  std::uint64_t cursor = 0;
  for (int i = 0; i < 100; ++i) {
    cursor += gen.uniform(2, 50);  // leave gaps
    const std::uint64_t len = gen.uniform(1, 20);
    ranges.push_back({u512(cursor), u512(cursor + len - 1)});
    expected += len;
    cursor += len;
  }
  gen.shuffle(ranges);
  EXPECT_EQ(total_cells(merge_ranges(ranges)), expected);
}

TEST(KeyRange, RejectsInverted) {
  EXPECT_THROW(key_range(u512(2), u512(1)), std::invalid_argument);
}

TEST(Runs, FigureOneHilbertBeatsZ) {
  // Figure 1: there exist rectangles where Hilbert needs 2 runs and Z needs
  // 3. Find one in an 8x8 universe.
  const universe u(2, 3);
  const auto z = make_curve(curve_kind::z_order, u);
  const auto h = make_curve(curve_kind::hilbert, u);
  bool found = false;
  for (std::uint32_t x0 = 0; x0 < 8 && !found; ++x0)
    for (std::uint32_t y0 = 0; y0 < 8 && !found; ++y0)
      for (std::uint32_t x1 = x0; x1 < 8 && !found; ++x1)
        for (std::uint32_t y1 = y0; y1 < 8 && !found; ++y1) {
          const rect r(point{x0, y0}, point{x1, y1});
          if (count_runs(*h, r) == 2 && count_runs(*z, r) == 3) found = true;
        }
  EXPECT_TRUE(found);
}

TEST(Runs, FigureTwoAlignedSquareIsOneRun) {
  const universe u(2, 9);
  const auto z = make_curve(curve_kind::z_order, u);
  const extremal_rect r(u, lengths({256, 256}));
  EXPECT_EQ(count_runs(*z, r), 1U);
}

TEST(Runs, FigureTwoShiftedSquare) {
  // Figure 2 / Section 3.1: the 257x257 corner square needs 385 runs on the
  // Z curve, and its largest run covers more than 99% of the region.
  const universe u(2, 9);
  const auto z = make_curve(curve_kind::z_order, u);
  const extremal_rect r(u, lengths({257, 257}));
  const auto runs = region_runs(*z, r);
  EXPECT_EQ(runs.size(), 385U);
  u512 largest = 0;
  for (const auto& run : runs)
    if (largest < run.cell_count()) largest = run.cell_count();
  const double frac = largest.to_double() / r.volume_ld();
  EXPECT_GT(frac, 0.99);
}

TEST(Runs, RunsNeverExceedCubes) {
  // Lemma 3.1 for every curve over random rectangles.
  const universe u(2, 6);
  rng gen(31);
  for (const auto kind : {curve_kind::z_order, curve_kind::hilbert, curve_kind::gray_code}) {
    const auto c = make_curve(kind, u);
    for (int trial = 0; trial < 40; ++trial) {
      point lo(2);
      point hi(2);
      for (int i = 0; i < 2; ++i) {
        const auto a = gen.uniform(0, 63);
        const auto b = gen.uniform(0, 63);
        lo[i] = static_cast<std::uint32_t>(std::min(a, b));
        hi[i] = static_cast<std::uint32_t>(std::max(a, b));
      }
      const rect r(lo, hi);
      EXPECT_LE(count_runs(*c, r), count_cubes(u, r)) << r.to_string();
    }
  }
}

TEST(Runs, RunsTileTheRegionExactly) {
  const universe u(2, 5);
  const auto h = make_curve(curve_kind::hilbert, u);
  rng gen(37);
  for (int trial = 0; trial < 30; ++trial) {
    point lo(2);
    point hi(2);
    for (int i = 0; i < 2; ++i) {
      const auto a = gen.uniform(0, 31);
      const auto b = gen.uniform(0, 31);
      lo[i] = static_cast<std::uint32_t>(std::min(a, b));
      hi[i] = static_cast<std::uint32_t>(std::max(a, b));
    }
    const rect r(lo, hi);
    const auto runs = region_runs(*h, r);
    EXPECT_EQ(total_cells(runs), r.volume());
    // Every key in every run maps back into the rectangle.
    for (const auto& run : runs) {
      EXPECT_TRUE(r.contains(h->cell_from_key(run.lo)));
      EXPECT_TRUE(r.contains(h->cell_from_key(run.hi)));
    }
    // Runs are maximal: the cells just outside each run are outside r.
    for (const auto& run : runs) {
      if (!run.lo.is_zero())
        EXPECT_FALSE(r.contains(h->cell_from_key(run.lo - 1)));
      if (run.hi != u.cell_count() - 1)
        EXPECT_FALSE(r.contains(h->cell_from_key(run.hi + 1)));
    }
  }
}

TEST(Runs, WholeUniverseIsOneRunOnEveryCurve) {
  const universe u(3, 3);
  for (const auto kind : {curve_kind::z_order, curve_kind::hilbert, curve_kind::gray_code}) {
    const auto c = make_curve(kind, u);
    EXPECT_EQ(count_runs(*c, rect::whole(u)), 1U) << curve_kind_name(kind);
  }
}

TEST(Runs, HilbertNeverWorseThanTwiceZOnAverage) {
  // [MJFS01]: Z and Hilbert run counts are within a constant factor. Sanity
  // check the aggregate over random rectangles.
  const universe u(2, 6);
  const auto z = make_curve(curve_kind::z_order, u);
  const auto h = make_curve(curve_kind::hilbert, u);
  rng gen(41);
  std::uint64_t total_z = 0;
  std::uint64_t total_h = 0;
  for (int trial = 0; trial < 100; ++trial) {
    point lo(2);
    point hi(2);
    for (int i = 0; i < 2; ++i) {
      const auto a = gen.uniform(0, 63);
      const auto b = gen.uniform(0, 63);
      lo[i] = static_cast<std::uint32_t>(std::min(a, b));
      hi[i] = static_cast<std::uint32_t>(std::max(a, b));
    }
    const rect r(lo, hi);
    total_z += count_runs(*z, r);
    total_h += count_runs(*h, r);
  }
  EXPECT_LT(total_h, 2 * total_z);
  EXPECT_LT(total_z, 2 * total_h);
}

}  // namespace
}  // namespace subcover
