#include "sfc/extremal_decomposition.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "sfc/decomposition.h"
#include "util/bitops.h"
#include "util/random.h"

namespace subcover {
namespace {

std::array<std::uint64_t, kMaxDims> lengths(std::initializer_list<std::uint64_t> ls) {
  std::array<std::uint64_t, kMaxDims> a{};
  std::size_t i = 0;
  for (const auto l : ls) a[i++] = l;
  return a;
}

extremal_rect random_extremal(rng& gen, const universe& u) {
  std::array<std::uint64_t, kMaxDims> len{};
  for (int i = 0; i < u.dims(); ++i)
    len[static_cast<std::size_t>(i)] = gen.uniform(1, u.side());
  return {u, len};
}

TEST(LevelOccupied, MatchesBits) {
  const universe u(2, 4);
  const extremal_rect r(u, lengths({0b1010, 0b0100}));
  EXPECT_FALSE(level_occupied(r, 0));
  EXPECT_TRUE(level_occupied(r, 1));
  EXPECT_TRUE(level_occupied(r, 2));
  EXPECT_TRUE(level_occupied(r, 3));
  EXPECT_FALSE(level_occupied(r, 4));
}

TEST(ExtremalLevelCounts, FigureTwoExample256) {
  const universe u(2, 9);
  const extremal_rect r(u, lengths({256, 256}));
  const auto counts = extremal_level_counts(u, r);
  EXPECT_EQ(counts[8], u512(1));
  EXPECT_EQ(extremal_cube_count(u, r), u512(1));
}

TEST(ExtremalLevelCounts, FigureTwoExample257) {
  const universe u(2, 9);
  const extremal_rect r(u, lengths({257, 257}));
  const auto counts = extremal_level_counts(u, r);
  EXPECT_EQ(counts[8], u512(1));    // one 256x256 cube
  EXPECT_EQ(counts[0], u512(513));  // 257^2 - 256^2 unit cells
  EXPECT_EQ(extremal_cube_count(u, r), u512(514));
}

TEST(ExtremalLevelCounts, HandSized2x3) {
  // R(2,3): one 2x2 cube + two unit cells.
  const universe u(2, 4);
  const extremal_rect r(u, lengths({2, 3}));
  const auto counts = extremal_level_counts(u, r);
  EXPECT_EQ(counts[1], u512(1));
  EXPECT_EQ(counts[0], u512(2));
  EXPECT_EQ(extremal_cube_count(u, r), u512(3));
}

TEST(ExtremalLevelCounts, FullUniverse) {
  const universe u(3, 4);
  const extremal_rect r(u, lengths({16, 16, 16}));
  const auto counts = extremal_level_counts(u, r);
  EXPECT_EQ(counts[4], u512(1));
  EXPECT_EQ(extremal_cube_count(u, r), u512(1));
}

TEST(ExtremalLevelCounts, MatchesGenericDecomposition) {
  // Lemma 3.5's closed form == the greedy decomposition, across random
  // extremal rectangles in several universes.
  for (const auto& [d, k] : std::vector<std::pair<int, int>>{{1, 6}, {2, 5}, {3, 4}, {4, 3}}) {
    const universe u(d, k);
    rng gen(static_cast<std::uint64_t>(d * 100 + k));
    for (int trial = 0; trial < 30; ++trial) {
      const auto r = random_extremal(gen, u);
      const auto analytic = extremal_level_counts(u, r);
      const auto enumerated = decompose_rect_level_counts(u, r.to_rect(u));
      for (int s = 0; s <= u.bits(); ++s) {
        EXPECT_EQ(analytic[static_cast<std::size_t>(s)].low64(),
                  enumerated[static_cast<std::size_t>(s)])
            << r.to_string() << " level " << s << " d=" << d << " k=" << k;
      }
    }
  }
}

std::set<std::string> level_cubes_via_paper(const universe& u, const extremal_rect& r, int i) {
  std::set<std::string> out;
  enumerate_level_cubes(u, r, i, [&](const standard_cube& c) {
    EXPECT_EQ(c.side_bits(), i);
    EXPECT_TRUE(out.insert(c.to_string()).second) << "duplicate " << c.to_string();
  });
  return out;
}

std::set<std::string> level_cubes_via_generic(const universe& u, const extremal_rect& r, int i) {
  std::set<std::string> out;
  decompose_rect(u, r.to_rect(u), [&](const standard_cube& c) {
    if (c.side_bits() == i) out.insert(c.to_string());
  });
  return out;
}

TEST(EnumerateLevelCubes, MatchesGenericOnFigureTwo) {
  const universe u(2, 9);
  const extremal_rect r(u, lengths({257, 257}));
  for (int i = 0; i <= 9; ++i)
    EXPECT_EQ(level_cubes_via_paper(u, r, i), level_cubes_via_generic(u, r, i)) << i;
}

TEST(EnumerateLevelCubes, MatchesGenericRandomized) {
  // The paper's Algorithms 1-3 produce exactly the greedy partition
  // (Lemma 3.4); cross-check per level on random extremal rects.
  for (const auto& [d, k] : std::vector<std::pair<int, int>>{{1, 6}, {2, 5}, {3, 3}, {4, 3}}) {
    const universe u(d, k);
    rng gen(static_cast<std::uint64_t>(d * 10 + k));
    for (int trial = 0; trial < 20; ++trial) {
      const auto r = random_extremal(gen, u);
      for (int i = 0; i <= u.bits(); ++i) {
        EXPECT_EQ(level_cubes_via_paper(u, r, i), level_cubes_via_generic(u, r, i))
            << r.to_string() << " level " << i;
      }
    }
  }
}

TEST(EnumerateLevelCubes, FullUniverseSideLength) {
  // l = 2^k exercises the P_x == k case of Equation 1.
  const universe u(2, 4);
  const extremal_rect r(u, lengths({16, 16}));
  for (int i = 0; i <= 4; ++i)
    EXPECT_EQ(level_cubes_via_paper(u, r, i), level_cubes_via_generic(u, r, i)) << i;
  const extremal_rect mixed(u, lengths({16, 5}));
  for (int i = 0; i <= 4; ++i)
    EXPECT_EQ(level_cubes_via_paper(u, mixed, i), level_cubes_via_generic(u, mixed, i)) << i;
}

TEST(EnumerateCubesDescending, DescendingOrderAndComplete) {
  const universe u(2, 9);
  const extremal_rect r(u, lengths({257, 300}));
  int last_side = 10;
  std::uint64_t total = 0;
  u512 vol = 0;
  enumerate_cubes_descending(u, r, [&](const standard_cube& c) {
    EXPECT_LE(c.side_bits(), last_side);
    last_side = c.side_bits();
    ++total;
    vol += c.cell_count();
  });
  EXPECT_EQ(u512(total), extremal_cube_count(u, r));
  EXPECT_EQ(vol, r.volume());
}

TEST(EnumerateCubesDescending, BudgetExceededThrows) {
  const universe u(2, 9);
  const extremal_rect r(u, lengths({257, 257}));  // 514 cubes
  EXPECT_THROW(
      enumerate_cubes_descending(u, r, [](const standard_cube&) {}, /*max_cubes=*/100),
      std::length_error);
}

TEST(EnumerateLevelCubes, EmptyLevelVisitsNothing) {
  const universe u(2, 4);
  const extremal_rect r(u, lengths({0b1010, 0b0100}));
  enumerate_level_cubes(u, r, 0,
                        [](const standard_cube&) { FAIL() << "level 0 must be empty"; });
}

TEST(ExtremalLevelCounts, Lemma34Structure) {
  // D_i empty for i in [b(l_min), b(l_max)), and cubes of side >= 2^i tile
  // R(S_i(l)) exactly (volume check).
  const universe u(3, 6);
  rng gen(23);
  for (int trial = 0; trial < 25; ++trial) {
    const auto r = random_extremal(gen, u);
    int b_min = 64;
    int b_max = 0;
    for (int j = 0; j < u.dims(); ++j) {
      b_min = std::min(b_min, bit_length(r.length(j)));
      b_max = std::max(b_max, bit_length(r.length(j)));
    }
    const auto counts = extremal_level_counts(u, r);
    for (int i = b_min; i < b_max && i <= u.bits(); ++i)
      EXPECT_TRUE(counts[static_cast<std::size_t>(i)].is_zero())
          << r.to_string() << " i=" << i;
    // Volume of cubes with side >= 2^i equals vol(R(S_i(l))).
    for (int i = 0; i <= u.bits(); ++i) {
      u512 vol_ge = 0;
      for (int s = i; s <= u.bits(); ++s)
        vol_ge += counts[static_cast<std::size_t>(s)] << (s * u.dims());
      EXPECT_EQ(vol_ge, r.masked_from_bit(u, i).volume()) << r.to_string() << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace subcover
