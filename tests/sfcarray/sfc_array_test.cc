// Behavioural equivalence of all sfc_array implementations.
#include "sfcarray/sfc_array.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/random.h"

namespace subcover {
namespace {

class SfcArrayBehaviour : public ::testing::TestWithParam<sfc_array_kind> {
 protected:
  [[nodiscard]] std::unique_ptr<sfc_array> make() const { return make_sfc_array(GetParam()); }
};

TEST_P(SfcArrayBehaviour, InsertEraseLookup) {
  auto a = make();
  a->insert(u512(10), 1);
  a->insert(u512(20), 2);
  a->insert(u512(30), 3);
  EXPECT_EQ(a->size(), 3U);
  auto hit = a->first_in({u512(15), u512(25)});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->id, 2U);
  EXPECT_TRUE(a->erase(u512(20), 2));
  EXPECT_FALSE(a->first_in({u512(15), u512(25)}).has_value());
}

TEST_P(SfcArrayBehaviour, CountIn) {
  auto a = make();
  for (std::uint64_t i = 0; i < 100; ++i) a->insert(u512(i), i);
  EXPECT_EQ(a->count_in({u512(10), u512(19)}), 10U);
  EXPECT_EQ(a->count_in({u512(200), u512(300)}), 0U);
}

TEST_P(SfcArrayBehaviour, ImplementationsAgreeUnderRandomOps) {
  auto a = make();
  auto reference = make_sfc_array(sfc_array_kind::sorted_vector);
  rng gen(123);
  for (int op = 0; op < 2000; ++op) {
    const std::uint64_t key = gen.uniform(0, 300);
    const std::uint64_t id = gen.uniform(0, 10);
    switch (gen.uniform(0, 2)) {
      case 0:
        a->insert(u512(key), id);
        reference->insert(u512(key), id);
        break;
      case 1:
        EXPECT_EQ(a->erase(u512(key), id), reference->erase(u512(key), id));
        break;
      default: {
        const std::uint64_t lo = gen.uniform(0, 300);
        const std::uint64_t hi = gen.uniform(lo, 300);
        const key_range r{u512(lo), u512(hi)};
        const auto x = a->first_in(r);
        const auto y = reference->first_in(r);
        ASSERT_EQ(x.has_value(), y.has_value());
        if (x.has_value()) {
          EXPECT_EQ(x->key, y->key);
          EXPECT_EQ(x->id, y->id);
        }
        EXPECT_EQ(a->count_in(r), reference->count_in(r));
        break;
      }
    }
  }
  EXPECT_EQ(a->size(), reference->size());
}

TEST_P(SfcArrayBehaviour, ForEachVisitsAllInOrder) {
  auto a = make();
  rng gen(9);
  for (int i = 0; i < 300; ++i) a->insert(u512(gen.uniform(0, 1000)), static_cast<std::uint64_t>(i));
  std::size_t n = 0;
  u512 prev = 0;
  a->for_each([&](const sfc_array::entry& e) {
    EXPECT_LE(prev, e.key);
    prev = e.key;
    ++n;
  });
  EXPECT_EQ(n, a->size());
}

TEST_P(SfcArrayBehaviour, BulkLoadEquivalentToInserts) {
  auto bulk = make();
  auto loop = make();
  rng gen(17);
  std::vector<sfc_array::entry> entries;
  for (std::uint64_t i = 0; i < 500; ++i)
    entries.push_back({u512(gen.uniform(0, 400)), gen.uniform(0, 8)});
  for (const auto& e : entries) loop->insert(e.key, e.id);
  bulk->reserve(entries.size());
  bulk->bulk_load(entries);
  ASSERT_EQ(bulk->size(), loop->size());
  std::vector<sfc_array::entry> a;
  std::vector<sfc_array::entry> b;
  bulk->for_each([&](const sfc_array::entry& e) { a.push_back(e); });
  loop->for_each([&](const sfc_array::entry& e) { b.push_back(e); });
  EXPECT_EQ(a, b);
}

TEST_P(SfcArrayBehaviour, BulkLoadMergesIntoExistingEntries) {
  auto a = make();
  auto reference = make();
  rng gen(23);
  for (int round = 0; round < 4; ++round) {
    std::vector<sfc_array::entry> batch;
    for (std::uint64_t i = 0; i < 100; ++i)
      batch.push_back({u512(gen.uniform(0, 300)), gen.uniform(0, 5)});
    a->bulk_load(batch);
    for (const auto& e : batch) reference->insert(e.key, e.id);
  }
  ASSERT_EQ(a->size(), reference->size());
  for (std::uint64_t lo = 0; lo < 300; lo += 7) {
    const key_range r{u512(lo), u512(lo + 11)};
    const auto x = a->first_in(r);
    const auto y = reference->first_in(r);
    ASSERT_EQ(x.has_value(), y.has_value());
    if (x.has_value()) EXPECT_EQ(*x, *y);
  }
}

TEST_P(SfcArrayBehaviour, HintedProbeAgreesWithPlainProbe) {
  auto a = make();
  rng gen(31);
  for (std::uint64_t i = 0; i < 400; ++i) a->insert(u512(gen.uniform(0, 1000)), i);
  sfc_array::probe_hint hint;
  for (int q = 0; q < 500; ++q) {
    // Mix nearby probes (exercising short gallops in both directions) with
    // occasional far jumps (stale cursor).
    const std::uint64_t lo = q % 10 == 0 ? gen.uniform(0, 1000)
                                         : std::min<std::uint64_t>(gen.uniform(0, 40) + q, 1000);
    const std::uint64_t hi = std::min<std::uint64_t>(lo + gen.uniform(0, 50), 1000);
    const key_range r{u512(lo), u512(hi)};
    const auto plain = a->first_in(r);
    const auto hinted = a->first_in(r, &hint);
    ASSERT_EQ(plain.has_value(), hinted.has_value()) << "lo=" << lo << " hi=" << hi;
    if (plain.has_value()) EXPECT_EQ(*plain, *hinted);
  }
}

TEST_P(SfcArrayBehaviour, HintSurvivesMutation) {
  // A stale cursor must stay correct (only slower) after inserts and erases.
  auto a = make();
  rng gen(37);
  sfc_array::probe_hint hint;
  for (int op = 0; op < 1000; ++op) {
    const std::uint64_t key = gen.uniform(0, 200);
    if (gen.uniform(0, 3) == 0) {
      (void)a->erase(u512(key), 0);
    } else {
      a->insert(u512(key), 0);
    }
    const std::uint64_t lo = gen.uniform(0, 200);
    const std::uint64_t hi = gen.uniform(lo, 200);
    const key_range r{u512(lo), u512(hi)};
    const auto plain = a->first_in(r);
    const auto hinted = a->first_in(r, &hint);
    ASSERT_EQ(plain.has_value(), hinted.has_value());
    if (plain.has_value()) EXPECT_EQ(*plain, *hinted);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SfcArrayBehaviour,
                         ::testing::Values(sfc_array_kind::skiplist,
                                           sfc_array_kind::sorted_vector),
                         [](const ::testing::TestParamInfo<sfc_array_kind>& info) {
                           return info.param == sfc_array_kind::skiplist ? "skiplist"
                                                                         : "sorted_vector";
                         });

}  // namespace
}  // namespace subcover
