// Behavioural equivalence of all sfc_array implementations.
#include "sfcarray/sfc_array.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/random.h"

namespace subcover {
namespace {

class SfcArrayBehaviour : public ::testing::TestWithParam<sfc_array_kind> {
 protected:
  [[nodiscard]] std::unique_ptr<sfc_array> make() const { return make_sfc_array(GetParam()); }
};

TEST_P(SfcArrayBehaviour, InsertEraseLookup) {
  auto a = make();
  a->insert(u512(10), 1);
  a->insert(u512(20), 2);
  a->insert(u512(30), 3);
  EXPECT_EQ(a->size(), 3U);
  auto hit = a->first_in({u512(15), u512(25)});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->id, 2U);
  EXPECT_TRUE(a->erase(u512(20), 2));
  EXPECT_FALSE(a->first_in({u512(15), u512(25)}).has_value());
}

TEST_P(SfcArrayBehaviour, CountIn) {
  auto a = make();
  for (std::uint64_t i = 0; i < 100; ++i) a->insert(u512(i), i);
  EXPECT_EQ(a->count_in({u512(10), u512(19)}), 10U);
  EXPECT_EQ(a->count_in({u512(200), u512(300)}), 0U);
}

TEST_P(SfcArrayBehaviour, ImplementationsAgreeUnderRandomOps) {
  auto a = make();
  auto reference = make_sfc_array(sfc_array_kind::sorted_vector);
  rng gen(123);
  for (int op = 0; op < 2000; ++op) {
    const std::uint64_t key = gen.uniform(0, 300);
    const std::uint64_t id = gen.uniform(0, 10);
    switch (gen.uniform(0, 2)) {
      case 0:
        a->insert(u512(key), id);
        reference->insert(u512(key), id);
        break;
      case 1:
        EXPECT_EQ(a->erase(u512(key), id), reference->erase(u512(key), id));
        break;
      default: {
        const std::uint64_t lo = gen.uniform(0, 300);
        const std::uint64_t hi = gen.uniform(lo, 300);
        const key_range r{u512(lo), u512(hi)};
        const auto x = a->first_in(r);
        const auto y = reference->first_in(r);
        ASSERT_EQ(x.has_value(), y.has_value());
        if (x.has_value()) {
          EXPECT_EQ(x->key, y->key);
          EXPECT_EQ(x->id, y->id);
        }
        EXPECT_EQ(a->count_in(r), reference->count_in(r));
        break;
      }
    }
  }
  EXPECT_EQ(a->size(), reference->size());
}

TEST_P(SfcArrayBehaviour, ForEachVisitsAllInOrder) {
  auto a = make();
  rng gen(9);
  for (int i = 0; i < 300; ++i) a->insert(u512(gen.uniform(0, 1000)), static_cast<std::uint64_t>(i));
  std::size_t n = 0;
  u512 prev = 0;
  a->for_each([&](const sfc_array::entry& e) {
    EXPECT_LE(prev, e.key);
    prev = e.key;
    ++n;
  });
  EXPECT_EQ(n, a->size());
}

TEST_P(SfcArrayBehaviour, BulkLoadEquivalentToInserts) {
  auto bulk = make();
  auto loop = make();
  rng gen(17);
  std::vector<sfc_array::entry> entries;
  for (std::uint64_t i = 0; i < 500; ++i)
    entries.push_back({u512(gen.uniform(0, 400)), gen.uniform(0, 8)});
  for (const auto& e : entries) loop->insert(e.key, e.id);
  bulk->reserve(entries.size());
  bulk->bulk_load(entries);
  ASSERT_EQ(bulk->size(), loop->size());
  std::vector<sfc_array::entry> a;
  std::vector<sfc_array::entry> b;
  bulk->for_each([&](const sfc_array::entry& e) { a.push_back(e); });
  loop->for_each([&](const sfc_array::entry& e) { b.push_back(e); });
  EXPECT_EQ(a, b);
}

TEST_P(SfcArrayBehaviour, BulkLoadMergesIntoExistingEntries) {
  auto a = make();
  auto reference = make();
  rng gen(23);
  for (int round = 0; round < 4; ++round) {
    std::vector<sfc_array::entry> batch;
    for (std::uint64_t i = 0; i < 100; ++i)
      batch.push_back({u512(gen.uniform(0, 300)), gen.uniform(0, 5)});
    a->bulk_load(batch);
    for (const auto& e : batch) reference->insert(e.key, e.id);
  }
  ASSERT_EQ(a->size(), reference->size());
  for (std::uint64_t lo = 0; lo < 300; lo += 7) {
    const key_range r{u512(lo), u512(lo + 11)};
    const auto x = a->first_in(r);
    const auto y = reference->first_in(r);
    ASSERT_EQ(x.has_value(), y.has_value());
    if (x.has_value()) EXPECT_EQ(*x, *y);
  }
}

TEST_P(SfcArrayBehaviour, HintedProbeAgreesWithPlainProbe) {
  auto a = make();
  rng gen(31);
  for (std::uint64_t i = 0; i < 400; ++i) a->insert(u512(gen.uniform(0, 1000)), i);
  sfc_array::probe_hint hint;
  for (int q = 0; q < 500; ++q) {
    // Mix nearby probes (exercising short gallops in both directions) with
    // occasional far jumps (stale cursor).
    const std::uint64_t lo = q % 10 == 0 ? gen.uniform(0, 1000)
                                         : std::min<std::uint64_t>(gen.uniform(0, 40) + q, 1000);
    const std::uint64_t hi = std::min<std::uint64_t>(lo + gen.uniform(0, 50), 1000);
    const key_range r{u512(lo), u512(hi)};
    const auto plain = a->first_in(r);
    const auto hinted = a->first_in(r, &hint);
    ASSERT_EQ(plain.has_value(), hinted.has_value()) << "lo=" << lo << " hi=" << hi;
    if (plain.has_value()) EXPECT_EQ(*plain, *hinted);
  }
}

TEST_P(SfcArrayBehaviour, HintSurvivesMutation) {
  // A stale cursor must stay correct (only slower) after inserts and erases.
  auto a = make();
  rng gen(37);
  sfc_array::probe_hint hint;
  for (int op = 0; op < 1000; ++op) {
    const std::uint64_t key = gen.uniform(0, 200);
    if (gen.uniform(0, 3) == 0) {
      (void)a->erase(u512(key), 0);
    } else {
      a->insert(u512(key), 0);
    }
    const std::uint64_t lo = gen.uniform(0, 200);
    const std::uint64_t hi = gen.uniform(lo, 200);
    const key_range r{u512(lo), u512(hi)};
    const auto plain = a->first_in(r);
    const auto hinted = a->first_in(r, &hint);
    ASSERT_EQ(plain.has_value(), hinted.has_value());
    if (plain.has_value()) EXPECT_EQ(*plain, *hinted);
  }
}

TEST_P(SfcArrayBehaviour, EraseThenReinsertSameKeyCycles) {
  // Deferred-erase backends must resurrect (or re-add) an entry that is
  // reinserted while its tombstone is still pending — the size/probe
  // answers may never show a phantom or a duplicate.
  auto a = make();
  a->set_compaction_policy(0.0);  // never compact: tombstones stay pending
  for (std::uint64_t i = 0; i < 50; ++i) a->insert(u512(i * 2), i);
  const key_range at{u512(40), u512(40)};
  for (int cycle = 0; cycle < 5; ++cycle) {
    EXPECT_TRUE(a->erase(u512(40), 20));
    EXPECT_FALSE(a->erase(u512(40), 20));
    EXPECT_FALSE(a->first_in(at).has_value());
    EXPECT_EQ(a->count_in(at), 0U);
    EXPECT_EQ(a->size(), 49U);
    a->insert(u512(40), 20);
    const auto back = a->first_in(at);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->id, 20U);
    EXPECT_EQ(a->count_in(at), 1U);
    EXPECT_EQ(a->size(), 50U);
  }
  // for_each sees exactly one occurrence, in order, dead entries skipped.
  std::size_t hits = 0;
  a->for_each([&](const sfc_array::entry& e) {
    if (e.key == u512(40)) ++hits;
  });
  EXPECT_EQ(hits, 1U);
  // The ledger never purges more than it added.
  const auto m = a->maintenance();
  EXPECT_LE(m.tombstones_purged, m.tombstones_added);
}

TEST_P(SfcArrayBehaviour, EraseBatchMatchesLoopErase) {
  auto batch = make();
  auto loop = make();
  rng gen(41);
  std::vector<sfc_array::entry> entries;
  for (std::uint64_t i = 0; i < 400; ++i)
    entries.push_back({u512(gen.uniform(0, 200)), gen.uniform(0, 6)});
  batch->bulk_load(entries);
  loop->bulk_load(entries);
  // Victims: mostly present entries (some listed twice — only one occurrence
  // per listing may go), some absent.
  std::vector<sfc_array::entry> victims;
  for (int i = 0; i < 150; ++i) victims.push_back(entries[gen.index(entries.size())]);
  for (int i = 0; i < 30; ++i) victims.push_back({u512(gen.uniform(300, 400)), 99});
  std::size_t want = 0;
  for (const auto& v : victims) want += loop->erase(v.key, v.id) ? 1 : 0;
  EXPECT_EQ(batch->erase_batch(victims), want);
  ASSERT_EQ(batch->size(), loop->size());
  std::vector<sfc_array::entry> a;
  std::vector<sfc_array::entry> b;
  batch->for_each([&](const sfc_array::entry& e) { a.push_back(e); });
  loop->for_each([&](const sfc_array::entry& e) { b.push_back(e); });
  EXPECT_EQ(a, b);
}

TEST_P(SfcArrayBehaviour, CompactionPolicyNeverChangesAnswers) {
  // Eager (1.0), default (0.5) and never (0.0) compaction give identical
  // probe answers under churn; only the maintenance ledger differs.
  auto eager = make();
  auto deferred = make();
  eager->set_compaction_policy(1.0);
  deferred->set_compaction_policy(0.0);
  rng gen(43);
  std::vector<sfc_array::entry> live;
  for (int op = 0; op < 3000; ++op) {
    if (gen.uniform(0, 3) != 0 || live.empty()) {
      const sfc_array::entry e{u512(gen.uniform(0, 500)), gen.uniform(0, 8)};
      eager->insert(e.key, e.id);
      deferred->insert(e.key, e.id);
      live.push_back(e);
    } else {
      const std::size_t victim = gen.index(live.size());
      const auto e = live[victim];
      EXPECT_TRUE(eager->erase(e.key, e.id));
      EXPECT_TRUE(deferred->erase(e.key, e.id));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    const std::uint64_t lo = gen.uniform(0, 500);
    const std::uint64_t hi = gen.uniform(lo, 500);
    const key_range r{u512(lo), u512(hi)};
    const auto x = eager->first_in(r);
    const auto y = deferred->first_in(r);
    ASSERT_EQ(x.has_value(), y.has_value());
    if (x.has_value()) EXPECT_EQ(*x, *y);
    EXPECT_EQ(eager->count_in(r), deferred->count_in(r));
    EXPECT_EQ(eager->size(), deferred->size());
    if (op % 500 == 0) deferred->maintain();  // no-op at threshold 0.0
  }
  if (GetParam() == sfc_array_kind::sorted_vector) {
    // The vector backend defers: same erase count, opposite ledgers.
    EXPECT_GT(deferred->maintenance().tombstones_added, 0U);
    EXPECT_EQ(deferred->maintenance().compactions, 0U);
    EXPECT_EQ(eager->maintenance().tombstones_added,
              deferred->maintenance().tombstones_added);
    EXPECT_GT(eager->maintenance().compactions, 0U);
    // Eager mode compacts inside every erase, so nothing is ever pending at
    // insert time and the ledger balances exactly.
    EXPECT_EQ(eager->maintenance().tombstones_purged,
              eager->maintenance().tombstones_added);
    // Deferred tombstones can also leave via insert-resurrection (which is
    // not a purge), so after a forced compaction the ledger only bounds.
    deferred->set_compaction_policy(1.0);
    deferred->maintain();
    EXPECT_GT(deferred->maintenance().compactions, 0U);
    EXPECT_LE(deferred->maintenance().tombstones_purged,
              deferred->maintenance().tombstones_added);
    EXPECT_EQ(deferred->size(), eager->size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SfcArrayBehaviour,
                         ::testing::Values(sfc_array_kind::skiplist,
                                           sfc_array_kind::sorted_vector),
                         [](const ::testing::TestParamInfo<sfc_array_kind>& info) {
                           return info.param == sfc_array_kind::skiplist ? "skiplist"
                                                                         : "sorted_vector";
                         });

}  // namespace
}  // namespace subcover
