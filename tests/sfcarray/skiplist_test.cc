#include "sfcarray/skiplist_array.h"

#include <gtest/gtest.h>

#include <map>

#include "util/random.h"

namespace subcover {
namespace {

TEST(Skiplist, EmptyBehaviour) {
  skiplist_array sl;
  EXPECT_EQ(sl.size(), 0U);
  EXPECT_FALSE(sl.first_in({u512(0), u512::max()}).has_value());
  EXPECT_EQ(sl.count_in({u512(0), u512::max()}), 0U);
  EXPECT_FALSE(sl.erase(u512(1), 1));
  sl.check_invariants();
}

TEST(Skiplist, SingleInsertLookup) {
  skiplist_array sl;
  sl.insert(u512(100), 7);
  EXPECT_EQ(sl.size(), 1U);
  const auto e = sl.first_in({u512(50), u512(150)});
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->key, u512(100));
  EXPECT_EQ(e->id, 7U);
  EXPECT_FALSE(sl.first_in({u512(0), u512(99)}).has_value());
  EXPECT_FALSE(sl.first_in({u512(101), u512(200)}).has_value());
}

TEST(Skiplist, BoundaryInclusive) {
  skiplist_array sl;
  sl.insert(u512(10), 1);
  EXPECT_TRUE(sl.first_in({u512(10), u512(10)}).has_value());
}

TEST(Skiplist, FirstInReturnsSmallestKey) {
  skiplist_array sl;
  sl.insert(u512(30), 3);
  sl.insert(u512(20), 2);
  sl.insert(u512(10), 1);
  const auto e = sl.first_in({u512(15), u512(100)});
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->id, 2U);
}

TEST(Skiplist, DuplicateKeysAllowed) {
  skiplist_array sl;
  sl.insert(u512(5), 1);
  sl.insert(u512(5), 2);
  sl.insert(u512(5), 3);
  EXPECT_EQ(sl.size(), 3U);
  EXPECT_EQ(sl.count_in({u512(5), u512(5)}), 3U);
  EXPECT_TRUE(sl.erase(u512(5), 2));
  EXPECT_FALSE(sl.erase(u512(5), 2));
  EXPECT_EQ(sl.count_in({u512(5), u512(5)}), 2U);
  sl.check_invariants();
}

TEST(Skiplist, EraseMaintainsOrder) {
  skiplist_array sl;
  for (std::uint64_t i = 0; i < 100; ++i) sl.insert(u512(i * 3), i);
  for (std::uint64_t i = 0; i < 100; i += 2) EXPECT_TRUE(sl.erase(u512(i * 3), i));
  EXPECT_EQ(sl.size(), 50U);
  sl.check_invariants();
  // Remaining entries are the odd ones.
  std::uint64_t seen = 0;
  sl.for_each([&](const sfc_array::entry& e) {
    EXPECT_EQ(e.id % 2, 1U);
    ++seen;
  });
  EXPECT_EQ(seen, 50U);
}

TEST(Skiplist, ForEachInOrder) {
  skiplist_array sl;
  rng gen(5);
  for (int i = 0; i < 500; ++i) sl.insert(u512(gen.next()) << 64, static_cast<std::uint64_t>(i));
  u512 prev = 0;
  sl.for_each([&](const sfc_array::entry& e) {
    EXPECT_LE(prev, e.key);
    prev = e.key;
  });
}

TEST(Skiplist, WideKeys) {
  skiplist_array sl;
  const u512 big = u512::pow2(500);
  sl.insert(big, 1);
  sl.insert(big + 1, 2);
  const auto e = sl.first_in({big + 1, u512::max()});
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->id, 2U);
}

TEST(Skiplist, RandomizedAgainstMultimapOracle) {
  skiplist_array sl;
  std::multimap<std::pair<std::uint64_t, std::uint64_t>, bool> oracle;  // (key.low, id)
  rng gen(77);
  for (int op = 0; op < 5000; ++op) {
    const std::uint64_t key = gen.uniform(0, 500);
    const std::uint64_t id = gen.uniform(0, 20);
    const int action = static_cast<int>(gen.uniform(0, 2));
    if (action == 0) {
      sl.insert(u512(key), id);
      oracle.insert({{key, id}, true});
    } else if (action == 1) {
      const bool erased = sl.erase(u512(key), id);
      const auto it = oracle.find({key, id});
      EXPECT_EQ(erased, it != oracle.end());
      if (it != oracle.end()) oracle.erase(it);
    } else {
      const std::uint64_t lo = gen.uniform(0, 500);
      const std::uint64_t hi = gen.uniform(lo, 500);
      const auto hit = sl.first_in({u512(lo), u512(hi)});
      // Oracle: smallest (key, id) with key in [lo, hi].
      auto oit = oracle.lower_bound({lo, 0});
      const bool expect_hit = oit != oracle.end() && oit->first.first <= hi;
      EXPECT_EQ(hit.has_value(), expect_hit);
      if (expect_hit && hit.has_value()) {
        EXPECT_EQ(hit->key.low64(), oit->first.first);
        EXPECT_EQ(hit->id, oit->first.second);
      }
    }
  }
  EXPECT_EQ(sl.size(), oracle.size());
  sl.check_invariants();
}

TEST(Skiplist, LargeScaleInsertCount) {
  skiplist_array sl;
  const int n = 20'000;
  rng gen(9);
  for (int i = 0; i < n; ++i)
    sl.insert(u512(gen.next()), static_cast<std::uint64_t>(i));
  EXPECT_EQ(sl.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(sl.count_in({u512(0), u512::max()}), static_cast<std::uint64_t>(n));
  sl.check_invariants();
}

}  // namespace
}  // namespace subcover
