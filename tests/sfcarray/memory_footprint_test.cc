// memory_footprint() audits: the reported bytes must track actual growth
// and shrinkage at every layer — SFC array backends, the dominance index,
// the covering indexes, and the broker/routing-table aggregate.
#include <gtest/gtest.h>

#include <vector>

#include "broker/broker.h"
#include "covering/linear_covering_index.h"
#include "covering/sfc_covering_index.h"
#include "dominance/dominance_index.h"
#include "pubsub/parser.h"
#include "sfcarray/skiplist_array.h"
#include "sfcarray/sorted_vector_array.h"
#include "util/random.h"
#include "workload/subscription_gen.h"

namespace subcover {
namespace {

TEST(MemoryFootprint, BackendsGrowWithInsertAndShrinkWithErase) {
  for (const sfc_array_kind kind :
       {sfc_array_kind::skiplist, sfc_array_kind::sorted_vector}) {
    const auto a = make_basic_sfc_array<std::uint64_t>(kind);
    const std::size_t empty = a->memory_footprint();
    EXPECT_GE(empty, sizeof(void*));  // at least the object itself

    for (std::uint64_t i = 0; i < 1000; ++i) a->insert(i * 3, i);
    const std::size_t full = a->memory_footprint();
    // Growth must be at least the raw payload of the new entries.
    EXPECT_GE(full, empty + 1000 * sizeof(basic_sfc_array<std::uint64_t>::entry));

    for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_TRUE(a->erase(i * 3, i));
    // The skiplist frees nodes eagerly; the sorted vector keeps capacity.
    // Either way the report must never grow past the high-water mark.
    EXPECT_LE(a->memory_footprint(), full);
    if (kind == sfc_array_kind::skiplist) EXPECT_LT(a->memory_footprint(), full);
  }
}

TEST(MemoryFootprint, SortedVectorReportsAtLeastPayload) {
  basic_sorted_vector_array<std::uint64_t> a;
  for (std::uint64_t i = 0; i < 500; ++i) a.insert(i, i);
  EXPECT_GE(a.memory_footprint(),
            a.size() * sizeof(basic_sfc_array<std::uint64_t>::entry));
}

TEST(MemoryFootprint, SkiplistReleasesNodeBytesOnErase) {
  basic_skiplist_array<std::uint64_t> a;
  const std::size_t empty = a.memory_footprint();
  a.insert(10, 1);
  a.insert(20, 2);
  const std::size_t two = a.memory_footprint();
  EXPECT_GT(two, empty);
  EXPECT_TRUE(a.erase(10, 1));
  const std::size_t one = a.memory_footprint();
  EXPECT_LT(one, two);
  EXPECT_GT(one, empty);
  EXPECT_TRUE(a.erase(20, 2));
  EXPECT_EQ(a.memory_footprint(), empty);
}

TEST(MemoryFootprint, DominanceIndexTracksGrowthAtEveryWidth) {
  // u64, u128 and u512 pipelines all report through the same virtual.
  for (const universe u : {universe(4, 8), universe(6, 16), universe(16, 16)}) {
    dominance_index idx(u);
    const std::size_t empty = idx.memory_footprint();
    rng gen(99);
    for (std::uint64_t i = 0; i < 200; ++i) {
      point p(u.dims());
      for (int d = 0; d < u.dims(); ++d)
        p[d] = static_cast<std::uint32_t>(gen.uniform(0, u.coord_max()));
      idx.insert(p, i);
    }
    EXPECT_GT(idx.memory_footprint(), empty);
  }
}

TEST(MemoryFootprint, TieredDominanceIndexReportsBothTiers) {
  const universe u(4, 8);
  dominance_options tiered_opts;
  tiered_opts.tier_hot_capacity = 16;
  dominance_index tiered(u, tiered_opts);
  dominance_index resident(u);
  rng gen(5);
  std::vector<std::pair<point, std::uint64_t>> batch;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    point p(u.dims());
    for (int d = 0; d < u.dims(); ++d)
      p[d] = static_cast<std::uint32_t>(gen.uniform(0, u.coord_max()));
    batch.emplace_back(p, i);
  }
  tiered.insert_batch(batch);
  resident.insert_batch(batch);
  EXPECT_EQ(tiered.size(), resident.size());
  // The bulk load lands cold (compressed); the report must reflect that.
  EXPECT_LT(tiered.memory_footprint(), resident.memory_footprint());
}

TEST(MemoryFootprint, CoveringIndexesTrackSubscriptions) {
  const schema s = workload::make_uniform_schema(2, 8);
  linear_covering_index linear(s);
  sfc_covering_index sfc(s);
  const std::size_t linear_empty = linear.memory_footprint();
  const std::size_t sfc_empty = sfc.memory_footprint();

  workload::subscription_gen gen(s, {}, 77);
  for (sub_id id = 0; id < 100; ++id) {
    const subscription sub = gen.next();
    linear.insert(id, sub);
    sfc.insert(id, sub);
  }
  // Both must grow at least by the stored subscription payloads.
  const std::size_t payload = 100 * 2 * sizeof(attr_range);
  EXPECT_GE(linear.memory_footprint(), linear_empty + payload);
  EXPECT_GE(sfc.memory_footprint(), sfc_empty + payload);
  // The SFC index additionally owns the dominance array.
  EXPECT_GT(sfc.memory_footprint() - sfc_empty,
            linear.memory_footprint() - linear_empty);
}

TEST(MemoryFootprint, RoutingTableTracksAddAndRemove) {
  const schema s = workload::make_uniform_schema(1, 8);
  routing_table t;
  const std::size_t empty = t.memory_footprint();
  const subscription sub = parse_subscription(s, "attr0 <= 10");
  for (sub_id id = 0; id < 50; ++id) t.add(/*link=*/1, id, sub);
  const std::size_t full = t.memory_footprint();
  EXPECT_GE(full, empty + 50 * sizeof(attr_range));
  for (sub_id id = 0; id < 50; ++id) EXPECT_TRUE(t.remove(1, id));
  EXPECT_EQ(t.memory_footprint(), empty);
}

TEST(MemoryFootprint, BrokerAggregatesTableAndShards) {
  const schema s = workload::make_uniform_schema(1, 8);
  broker_options o;
  broker b(0, s, {1, 2},
           [](const schema& sc) { return std::make_unique<sfc_covering_index>(sc); }, o);
  const std::size_t empty = b.memory_footprint();
  network_metrics m;
  workload::subscription_gen gen(s, {}, 11);
  for (sub_id id = 0; id < 50; ++id)
    (void)b.handle_subscribe(kLocalLink, id, gen.next(), m);
  const std::size_t full = b.memory_footprint();
  // The broker stores each forwarded subscription once per link plus the
  // routing-table entry: growth must dominate the raw payloads.
  EXPECT_GT(full, empty);
  EXPECT_GE(full - empty, b.routing_entries() * sizeof(attr_range));
  // The aggregate includes its parts.
  EXPECT_GT(full, b.table().memory_footprint());
}

}  // namespace
}  // namespace subcover
