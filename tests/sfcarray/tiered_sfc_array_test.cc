// Tiered array ≡ resident array: identical answers from every probe
// primitive under random mixed workloads that force flushes, demotions and
// promotions, plus the tiering policy's observable behavior.
#include "sfcarray/tiered_sfc_array.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sfcarray/sorted_vector_array.h"
#include "util/random.h"

namespace subcover {
namespace {

using entry64 = basic_sfc_array<std::uint64_t>::entry;
using range64 = basic_key_range<std::uint64_t>;

// Collects probe_frontier answers for comparison.
struct recording_sink final : basic_sfc_array<std::uint64_t>::frontier_sink {
  std::vector<std::pair<std::size_t, std::optional<entry64>>> answers;
  bool on_probe(std::size_t index, const entry64* hit) override {
    answers.emplace_back(index, hit != nullptr ? std::optional<entry64>(*hit) : std::nullopt);
    return true;
  }
};

TEST(TieredSfcArray, MatchesResidentArrayUnderRandomOps) {
  for (const sfc_array_kind hot_kind :
       {sfc_array_kind::skiplist, sfc_array_kind::sorted_vector}) {
    rng gen(42);
    tiered_array_options opts;
    opts.hot_backend = hot_kind;
    opts.hot_capacity = 16;  // small: force frequent flushes
    opts.block_entries = 8;
    basic_tiered_sfc_array<std::uint64_t> tiered(opts);
    basic_sorted_vector_array<std::uint64_t> oracle;

    std::vector<entry64> live;
    for (int step = 0; step < 3000; ++step) {
      const int op = static_cast<int>(gen.uniform(0, 9));
      if (op < 4) {  // insert
        const entry64 e{gen.uniform(0, 100'000), gen.next() % 10'000};
        tiered.insert(e.key, e.id);
        oracle.insert(e.key, e.id);
        live.push_back(e);
      } else if (op < 5 && !live.empty()) {  // erase (hot or cold)
        const std::size_t victim = gen.index(live.size());
        const entry64 e = live[victim];
        EXPECT_TRUE(tiered.erase(e.key, e.id));
        EXPECT_TRUE(oracle.erase(e.key, e.id));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      } else if (op < 8) {  // first_in
        std::uint64_t a = gen.uniform(0, 100'000);
        std::uint64_t b = gen.uniform(0, 100'000);
        if (b < a) std::swap(a, b);
        const auto want = oracle.first_in(range64{a, b});
        const auto got = tiered.first_in(range64{a, b});
        ASSERT_EQ(got.has_value(), want.has_value());
        if (want.has_value()) {
          EXPECT_EQ(got->key, want->key);
          EXPECT_EQ(got->id, want->id);
        }
        EXPECT_EQ(tiered.count_in(range64{a, b}), oracle.count_in(range64{a, b}));
      } else {  // probe_frontier over an ascending disjoint frontier
        std::vector<range64> frontier;
        std::uint64_t lo = gen.uniform(0, 1000);
        while (lo < 100'000 && frontier.size() < 20) {
          const std::uint64_t hi = lo + gen.uniform(0, 3000);
          frontier.push_back(range64{lo, hi});
          lo = hi + 1 + gen.uniform(0, 5000);
        }
        recording_sink want;
        recording_sink got;
        oracle.probe_frontier(frontier, want);
        tiered.probe_frontier(frontier, got);
        ASSERT_EQ(got.answers.size(), want.answers.size());
        for (std::size_t i = 0; i < want.answers.size(); ++i) {
          EXPECT_EQ(got.answers[i].first, want.answers[i].first);
          ASSERT_EQ(got.answers[i].second.has_value(), want.answers[i].second.has_value());
          if (want.answers[i].second.has_value()) {
            EXPECT_EQ(got.answers[i].second->key, want.answers[i].second->key);
            EXPECT_EQ(got.answers[i].second->id, want.answers[i].second->id);
          }
        }
      }
      if (step % 100 == 0) tiered.maintain();
      ASSERT_EQ(tiered.size(), oracle.size());
    }
    // The workload must actually have exercised both tiers.
    EXPECT_GT(tiered.counters().demotions, 0U);
    EXPECT_GT(tiered.counters().cold_probes, 0U);
  }
}

TEST(TieredSfcArray, BulkLoadLandsColdAndInsertLandsHot) {
  tiered_array_options opts;
  opts.hot_capacity = 100;
  basic_tiered_sfc_array<std::uint64_t> a(opts);
  std::vector<entry64> batch;
  for (std::uint64_t i = 0; i < 50; ++i) batch.push_back({i * 10, i});
  a.bulk_load(batch);
  EXPECT_EQ(a.cold_size(), 50U);
  EXPECT_EQ(a.hot_size(), 0U);
  a.insert(7, 99);
  EXPECT_EQ(a.hot_size(), 1U);
  EXPECT_EQ(a.size(), 51U);
}

TEST(TieredSfcArray, InsertOverflowFlushesToCold) {
  tiered_array_options opts;
  opts.hot_capacity = 8;
  basic_tiered_sfc_array<std::uint64_t> a(opts);
  for (std::uint64_t i = 0; i < 100; ++i) a.insert(i, i);
  EXPECT_LE(a.hot_size(), 8U);
  EXPECT_GE(a.cold_size(), 92U);
  EXPECT_EQ(a.size(), 100U);
  EXPECT_GT(a.counters().demotions, 0U);
}

TEST(TieredSfcArray, ColdHitsPromoteOnMaintain) {
  tiered_array_options opts;
  opts.hot_capacity = 100;
  basic_tiered_sfc_array<std::uint64_t> a(opts);
  std::vector<entry64> batch;
  for (std::uint64_t i = 0; i < 50; ++i) batch.push_back({i * 10, i});
  a.bulk_load(batch);

  // Probe a cold entry: the answer comes from the cold tier...
  const auto hit = a.first_in(range64{200, 205});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->key, 200U);
  EXPECT_EQ(a.counters().cold_hits, 1U);
  EXPECT_EQ(a.hot_size(), 0U);
  // ...and maintain() moves it to the hot tier.
  a.maintain();
  EXPECT_EQ(a.counters().promotions, 1U);
  EXPECT_EQ(a.hot_size(), 1U);
  EXPECT_EQ(a.cold_size(), 49U);
  // Re-probing now answers from the hot tier (no new cold hit) with the
  // same result.
  const auto again = a.first_in(range64{200, 205});
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->key, 200U);
  EXPECT_EQ(again->id, hit->id);
  EXPECT_EQ(a.counters().cold_hits, 1U);
}

TEST(TieredSfcArray, EraseOfPendingPromotionEntryCancelsIt) {
  // A cold probe hit queues a promotion mark; if the entry is erased before
  // maintain() applies the marks, the stale mark must not resurrect it.
  tiered_array_options opts;
  opts.hot_capacity = 100;
  basic_tiered_sfc_array<std::uint64_t> a(opts);
  std::vector<entry64> batch;
  for (std::uint64_t i = 0; i < 50; ++i) batch.push_back({i * 10, i});
  a.bulk_load(batch);
  const auto hit = a.first_in(range64{200, 205});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(a.counters().cold_hits, 1U);
  EXPECT_TRUE(a.erase(200, 20));
  a.maintain();
  EXPECT_EQ(a.counters().promotions, 0U);
  EXPECT_EQ(a.hot_size(), 0U);
  EXPECT_EQ(a.size(), 49U);
  EXPECT_FALSE(a.first_in(range64{200, 205}).has_value());
}

TEST(TieredSfcArray, EraseThenReinsertAcrossTiers) {
  // Withdrawing a cold entry and re-registering it lands the fresh copy in
  // the hot tier while the cold tombstone is still pending: exactly one
  // occurrence may ever be visible, and one erase must consume it.
  tiered_array_options opts;
  opts.hot_capacity = 100;
  opts.min_live_fraction = 0.0;  // keep the cold tombstone pending
  basic_tiered_sfc_array<std::uint64_t> a(opts);
  std::vector<entry64> batch;
  for (std::uint64_t i = 0; i < 50; ++i) batch.push_back({i * 10, i});
  a.bulk_load(batch);
  EXPECT_TRUE(a.erase(200, 20));
  a.insert(200, 20);
  EXPECT_EQ(a.hot_size(), 1U);
  EXPECT_EQ(a.size(), 50U);
  const auto hit = a.first_in(range64{200, 200});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->id, 20U);
  EXPECT_EQ(a.count_in(range64{200, 200}), 1U);
  EXPECT_TRUE(a.erase(200, 20));   // consumes the hot copy
  EXPECT_FALSE(a.erase(200, 20));  // the cold occurrence is already dead
  EXPECT_EQ(a.count_in(range64{200, 200}), 0U);
}

TEST(TieredSfcArray, EraseBatchSpansTiers) {
  tiered_array_options opts;
  opts.hot_capacity = 1000;
  basic_tiered_sfc_array<std::uint64_t> a(opts);
  std::vector<entry64> cold;
  for (std::uint64_t i = 0; i < 40; ++i) cold.push_back({i * 10, i});
  a.bulk_load(cold);
  for (std::uint64_t i = 40; i < 80; ++i) a.insert(i * 10, i);
  ASSERT_EQ(a.hot_size(), 40U);
  ASSERT_EQ(a.cold_size(), 40U);
  // Every other entry from both tiers, plus one absentee.
  std::vector<entry64> victims;
  for (std::uint64_t i = 0; i < 80; i += 2) victims.push_back({i * 10, i});
  victims.push_back({9999, 77});
  EXPECT_EQ(a.erase_batch(victims), 40U);
  EXPECT_EQ(a.size(), 40U);
  for (std::uint64_t i = 0; i < 80; ++i) {
    EXPECT_EQ(a.first_in(range64{i * 10, i * 10}).has_value(), i % 2 == 1) << i;
  }
}

TEST(TieredSfcArray, MaintenanceLedgerSurvivesHotFlush) {
  // Pending hot tombstones are purged implicitly by a capacity flush
  // (for_each skips them), and the retiring backend's ledger must be folded
  // into the accumulator rather than dropped with the rebuild.
  tiered_array_options opts;
  opts.hot_backend = sfc_array_kind::sorted_vector;
  opts.hot_capacity = 8;
  opts.min_live_fraction = 0.0;  // defer all compaction
  basic_tiered_sfc_array<std::uint64_t> a(opts);
  for (std::uint64_t i = 0; i < 8; ++i) a.insert(i, i);
  EXPECT_TRUE(a.erase(3, 3));
  EXPECT_TRUE(a.erase(5, 5));
  EXPECT_EQ(a.maintenance().tombstones_added, 2U);
  EXPECT_EQ(a.maintenance().tombstones_purged, 0U);
  for (std::uint64_t i = 8; i < 12; ++i) a.insert(100 + i, i);  // overflow -> flush
  const auto m = a.maintenance();
  EXPECT_EQ(m.tombstones_added, 2U);
  EXPECT_EQ(m.tombstones_purged, 2U);
  EXPECT_GE(m.compactions, 1U);  // the flush itself
  EXPECT_EQ(a.size(), 10U);
  EXPECT_FALSE(a.first_in(range64{3, 3}).has_value());
  EXPECT_TRUE(a.first_in(range64{4, 4}).has_value());
}

TEST(TieredSfcArray, MemoryFootprintBeatsResidentBackends) {
  // At rest (everything demoted), the tiered footprint must undercut both
  // resident backends holding the same clustered entries.
  rng gen(7);
  std::vector<entry64> batch;
  std::uint64_t base = 0;
  for (std::uint64_t i = 0; i < 20'000; ++i) {
    if (i % 100 == 0) base = gen.uniform(0, std::uint64_t{1} << 32);
    batch.push_back({base + gen.uniform(0, 4096), i});
  }
  basic_tiered_sfc_array<std::uint64_t> tiered;
  tiered.bulk_load(batch);
  for (const sfc_array_kind kind :
       {sfc_array_kind::skiplist, sfc_array_kind::sorted_vector}) {
    const auto resident = make_basic_sfc_array<std::uint64_t>(kind);
    resident->bulk_load(batch);
    EXPECT_LT(tiered.memory_footprint() * 2, resident->memory_footprint());
  }
}

}  // namespace
}  // namespace subcover
