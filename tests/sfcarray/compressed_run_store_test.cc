// Cold-tier codec and store: varint/delta roundtrips (all widths, edge
// values), store/reference equivalence under random and adversarial run
// sets (keys from all three curves at all three widths), and the block
// invariants across merges and erases.
#include "sfcarray/compressed_run_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sfc/curve.h"
#include "sfcarray/sorted_vector_array.h"
#include "util/random.h"

namespace subcover {
namespace {

template <class K>
K random_key(rng& gen);

template <>
std::uint64_t random_key<std::uint64_t>(rng& gen) {
  return gen.next();
}
template <>
u128 random_key<u128>(rng& gen) {
  return (u128{gen.next()} << 64) | u128{gen.next()};
}
template <>
u512 random_key<u512>(rng& gen) {
  u512 k;
  for (int w = 0; w < 8; ++w) k = (k << 64) | u512(gen.next());
  return k;
}

template <class K>
std::vector<std::uint8_t> encode_one(const K& v) {
  std::vector<std::uint8_t> bytes;
  detail::put_varint(bytes, v);
  return bytes;
}

template <class K>
void roundtrip_one(const K& v) {
  const auto bytes = encode_one(v);
  const std::uint8_t* p = bytes.data();
  EXPECT_EQ(detail::get_varint<K>(p), v);
  EXPECT_EQ(p, bytes.data() + bytes.size());
}

template <class K>
void roundtrip_width_edges() {
  using T = key_traits<K>;
  roundtrip_one(T::zero());
  roundtrip_one(T::one());
  roundtrip_one(T::max());
  roundtrip_one(static_cast<K>(T::max() - T::one()));
  for (int b = 0; b < T::kBits; b += 7) {
    roundtrip_one(T::pow2(b));
    roundtrip_one(static_cast<K>(T::pow2(b) - T::one()));
    roundtrip_one(T::mask(b));
  }
}

TEST(Varint, RoundtripsEdgeValuesAtEveryWidth) {
  roundtrip_width_edges<std::uint64_t>();
  roundtrip_width_edges<u128>();
  roundtrip_width_edges<u512>();
  // u512-specific extremes: top bit, alternating words, dense high words.
  roundtrip_one(u512::pow2(511));
  roundtrip_one(static_cast<u512>(u512::max() >> 1));
  u512 alternating;
  for (int b = 0; b < 512; b += 2) alternating.set_bit(b);
  roundtrip_one(alternating);
}

TEST(Varint, RandomRoundtripsAtEveryWidth) {
  rng gen(7);
  for (int i = 0; i < 2000; ++i) {
    // Vary magnitude: mask to a random bit width so small values are common.
    roundtrip_one(random_key<std::uint64_t>(gen) & key_traits<std::uint64_t>::mask(
                                                      static_cast<int>(gen.uniform(0, 64))));
    roundtrip_one(random_key<u128>(gen) &
                  key_traits<u128>::mask(static_cast<int>(gen.uniform(0, 128))));
    roundtrip_one(random_key<u512>(gen) &
                  key_traits<u512>::mask(static_cast<int>(gen.uniform(0, 512))));
  }
}

TEST(Varint, SmallValuesEncodeToOneByte) {
  EXPECT_EQ(encode_one(std::uint64_t{0}).size(), 1U);
  EXPECT_EQ(encode_one(std::uint64_t{127}).size(), 1U);
  EXPECT_EQ(encode_one(std::uint64_t{128}).size(), 2U);
  EXPECT_EQ(encode_one(u512(127)).size(), 1U);
  // A full-width value costs ceil(512 / 7) = 74 bytes.
  EXPECT_EQ(encode_one(u512::max()).size(), 74U);
}

// --- store vs reference equivalence ------------------------------------

template <class K>
using store_entry = typename compressed_run_store<K>::entry;

// Checks that the store holds exactly `expected` (order included) and
// answers first_in / count_in like a resident sorted-vector array.
template <class K>
void expect_equivalent(const compressed_run_store<K>& store,
                       std::vector<store_entry<K>> expected, rng& gen) {
  std::sort(expected.begin(), expected.end(), [](const auto& a, const auto& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  });
  store.check_invariants();
  ASSERT_EQ(store.size(), expected.size());
  std::vector<store_entry<K>> decoded;
  store.decode_all(&decoded);
  ASSERT_EQ(decoded.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(decoded[i].key, expected[i].key);
    EXPECT_EQ(decoded[i].id, expected[i].id);
  }

  basic_sorted_vector_array<K> reference;
  reference.bulk_load(expected);
  for (int probe = 0; probe < 200; ++probe) {
    K a = random_key<K>(gen);
    K b = random_key<K>(gen);
    if (b < a) std::swap(a, b);
    if (!expected.empty() && probe % 3 == 0) {
      // Anchor at stored keys so hits are common.
      a = expected[gen.index(expected.size())].key;
      b = probe % 2 == 0 ? a : b;
      if (b < a) std::swap(a, b);
    }
    const basic_key_range<K> r{a, b};
    const auto want = reference.first_in(r);
    const auto got = store.first_in(r, nullptr, nullptr);
    ASSERT_EQ(got.has_value(), want.has_value());
    if (want.has_value()) {
      EXPECT_EQ(got->key, want->key);
      EXPECT_EQ(got->id, want->id);
    }
    EXPECT_EQ(store.count_in(r), reference.count_in(r));
  }
}

template <class K>
void run_random_property(std::uint64_t seed, std::size_t block_entries) {
  rng gen(seed);
  compressed_run_store<K> store(block_entries);
  std::vector<store_entry<K>> live;
  // Several merge batches with clustered and duplicate keys.
  for (int batch = 0; batch < 4; ++batch) {
    std::vector<store_entry<K>> items;
    const std::size_t n = gen.uniform(1, 300);
    K base = random_key<K>(gen);
    for (std::size_t i = 0; i < n; ++i) {
      if (gen.bernoulli(0.2)) base = random_key<K>(gen);
      // Mostly near-base keys (small gaps), some duplicates.
      const K key = gen.bernoulli(0.15) && !items.empty()
                        ? items[gen.index(items.size())].key
                        : static_cast<K>(base + K{gen.uniform(0, 1000)});
      items.push_back({key, gen.next() % 1000});
    }
    live.insert(live.end(), items.begin(), items.end());
    store.merge_in(items);
    expect_equivalent(store, live, gen);
  }
  // Random erases, half present, half absent.
  for (int i = 0; i < 100 && !live.empty(); ++i) {
    if (gen.bernoulli(0.5)) {
      const std::size_t victim = gen.index(live.size());
      EXPECT_TRUE(store.erase(live[victim].key, live[victim].id));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      const K key = random_key<K>(gen);
      const std::uint64_t id = 1000 + gen.next() % 1000;  // ids above the live range
      EXPECT_FALSE(store.erase(key, id));
    }
  }
  expect_equivalent(store, live, gen);
}

TEST(CompressedRunStore, RandomPropertyU64) {
  run_random_property<std::uint64_t>(1, 64);
  run_random_property<std::uint64_t>(2, 1);  // one entry per block
  run_random_property<std::uint64_t>(3, 7);
}

TEST(CompressedRunStore, RandomPropertyU128) { run_random_property<u128>(4, 16); }

TEST(CompressedRunStore, RandomPropertyU512) { run_random_property<u512>(5, 16); }

TEST(CompressedRunStore, AdversarialRunSets) {
  rng gen(11);
  // Dense consecutive keys, long duplicate runs crossing block boundaries,
  // and extreme endpoints (0, max) in one store.
  compressed_run_store<std::uint64_t> store(8);
  std::vector<store_entry<std::uint64_t>> live;
  auto add = [&](std::uint64_t key, std::uint64_t id) { live.push_back({key, id}); };
  for (std::uint64_t i = 0; i < 64; ++i) add(1000 + i, i);          // consecutive
  for (std::uint64_t i = 0; i < 40; ++i) add(5000, i);              // one key, > block
  add(0, 1);
  add(0, 2);
  add(~std::uint64_t{0}, 3);                                        // max key
  add(~std::uint64_t{0} - 1, 4);
  store.merge_in(live);
  expect_equivalent(store, live, gen);
  // Every duplicate of key 5000 is erasable.
  for (std::uint64_t i = 0; i < 40; ++i) EXPECT_TRUE(store.erase(5000, i));
  EXPECT_FALSE(store.erase(5000, 0));
  live.erase(std::remove_if(live.begin(), live.end(),
                            [](const auto& e) { return e.key == 5000; }),
             live.end());
  expect_equivalent(store, live, gen);
}

TEST(CompressedRunStore, EraseThenReinsertSameEntry) {
  // A tombstone must cancel exactly one occurrence: re-merging the same
  // (key, id) after an erase makes the entry visible again, across repeated
  // cycles, in both eager and deferred compaction modes.
  for (const double live_fraction : {1.0, 0.5, 0.0}) {
    rng gen(17);
    compressed_run_store<std::uint64_t> store(4);
    store.set_min_live_fraction(live_fraction);
    std::vector<store_entry<std::uint64_t>> live;
    for (std::uint64_t i = 0; i < 32; ++i) live.push_back({i * 10, i});
    store.merge_in(live);
    for (int cycle = 0; cycle < 3; ++cycle) {
      EXPECT_TRUE(store.erase(150, 15));
      EXPECT_FALSE(store.erase(150, 15));  // one occurrence, one cancel
      EXPECT_FALSE(store.first_in({150, 150}, nullptr, nullptr).has_value());
      store.merge_in({{150, 15}});
      const auto back = store.first_in({150, 150}, nullptr, nullptr);
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(back->id, 15U);
      expect_equivalent(store, live, gen);
    }
    // The merge rewrite purges the tombstone even in never-compact mode.
    EXPECT_EQ(store.tombstones(), 0U);
  }
}

TEST(CompressedRunStore, EraseEmptyingABlockDropsIt) {
  // Default (0.5) threshold: draining a block compacts it away entirely,
  // and probes spanning its old envelope spill to the successor block.
  compressed_run_store<std::uint64_t> store(4);
  std::vector<store_entry<std::uint64_t>> items;
  for (std::uint64_t i = 0; i < 16; ++i) items.push_back({i * 100, i});
  store.merge_in(items);
  const std::size_t blocks_before = store.block_count();
  ASSERT_GE(blocks_before, 4U);
  // Drain the second block (keys 400..700).
  for (std::uint64_t i = 4; i < 8; ++i) EXPECT_TRUE(store.erase(i * 100, i));
  store.check_invariants();
  EXPECT_LT(store.block_count(), blocks_before);
  EXPECT_EQ(store.tombstones(), 0U);
  // A probe over the drained envelope finds the successor block's head.
  const auto spill = store.first_in({400, 900}, nullptr, nullptr);
  ASSERT_TRUE(spill.has_value());
  EXPECT_EQ(spill->key, 800U);
  EXPECT_EQ(store.count_in({0, 1600}), 12U);
  EXPECT_GT(store.maint().compactions, 0U);
}

TEST(CompressedRunStore, FullyTombstonedBlockStillProbesCorrectly) {
  // Never-compact mode: a block whose every entry is dead stays encoded,
  // and first_in must walk past it to the next live block — the multi-block
  // graveyard walk.
  compressed_run_store<std::uint64_t> store(4);
  store.set_min_live_fraction(0.0);
  std::vector<store_entry<std::uint64_t>> items;
  for (std::uint64_t i = 0; i < 16; ++i) items.push_back({i * 100, i});
  store.merge_in(items);
  const std::size_t blocks_before = store.block_count();
  for (std::uint64_t i = 4; i < 8; ++i) EXPECT_TRUE(store.erase(i * 100, i));
  store.check_invariants();
  EXPECT_EQ(store.block_count(), blocks_before);  // nothing rewritten
  EXPECT_EQ(store.tombstones(), 4U);
  EXPECT_EQ(store.size(), 12U);
  const auto spill = store.first_in({400, 900}, nullptr, nullptr);
  ASSERT_TRUE(spill.has_value());
  EXPECT_EQ(spill->key, 800U);
  EXPECT_FALSE(store.first_in({400, 700}, nullptr, nullptr).has_value());
  // count_in subtracts the graveyard span-by-span.
  EXPECT_EQ(store.count_in({0, 1600}), 12U);
  EXPECT_EQ(store.count_in({400, 700}), 0U);
  EXPECT_EQ(store.count_in({300, 800}), 2U);
  const auto m = store.maint();
  EXPECT_EQ(m.tombstones_added, 4U);
  EXPECT_EQ(m.tombstones_purged, 0U);
  EXPECT_EQ(m.compactions, 0U);
}

TEST(CompressedRunStore, DuplicateKeyRunPartialEraseIsMultisetExact) {
  // A duplicate-key run longer than a block, partially erased in deferred
  // mode: each tombstone cancels exactly one occurrence and the survivors'
  // ids stay exact.
  rng gen(19);
  compressed_run_store<std::uint64_t> store(8);
  store.set_min_live_fraction(0.0);
  std::vector<store_entry<std::uint64_t>> live;
  for (std::uint64_t i = 0; i < 40; ++i) live.push_back({5000, i});
  live.push_back({4999, 100});
  live.push_back({5001, 101});
  store.merge_in(live);
  // Erase the even ids of the run.
  for (std::uint64_t i = 0; i < 40; i += 2) EXPECT_TRUE(store.erase(5000, i));
  live.erase(std::remove_if(live.begin(), live.end(),
                            [](const auto& e) { return e.key == 5000 && e.id % 2 == 0; }),
             live.end());
  expect_equivalent(store, live, gen);
  EXPECT_EQ(store.count_in({5000, 5000}), 20U);
  const auto first = store.first_in({5000, 5000}, nullptr, nullptr);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, 1U);  // smallest surviving id
  // Erasing an already-dead occurrence fails; a live odd one succeeds.
  EXPECT_FALSE(store.erase(5000, 0));
  EXPECT_TRUE(store.erase(5000, 1));
}

TEST(CompressedRunStore, IncrementalMergesMatchOneBulkMerge) {
  rng gen(13);
  compressed_run_store<std::uint64_t> incremental(16);
  compressed_run_store<std::uint64_t> bulk(16);
  std::vector<store_entry<std::uint64_t>> all;
  for (int batch = 0; batch < 8; ++batch) {
    std::vector<store_entry<std::uint64_t>> items;
    for (int i = 0; i < 50; ++i)
      items.push_back({gen.uniform(0, 5000), gen.next() % 100});
    all.insert(all.end(), items.begin(), items.end());
    incremental.merge_in(items);
  }
  bulk.merge_in(all);
  std::vector<store_entry<std::uint64_t>> a;
  std::vector<store_entry<std::uint64_t>> b;
  incremental.decode_all(&a);
  bulk.decode_all(&b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].id, b[i].id);
  }
}

// Keys produced by every curve at every width roundtrip through the store
// and probe identically to the reference array.
template <class K>
void run_curve_property(curve_kind kind, const universe& u, std::uint64_t seed) {
  rng gen(seed);
  const auto curve = make_basic_curve<K>(kind, u);
  std::vector<store_entry<K>> live;
  for (std::uint64_t i = 0; i < 400; ++i) {
    point p(u.dims());
    for (int d = 0; d < u.dims(); ++d)
      p[d] = static_cast<std::uint32_t>(gen.uniform(0, u.coord_max()));
    live.push_back({curve->cell_key(p), i});
  }
  compressed_run_store<K> store(32);
  store.merge_in(live);
  expect_equivalent(store, live, gen);
}

TEST(CompressedRunStore, CurveKeysAllCurvesAllWidths) {
  const universe narrow(4, 8);    // 32 key bits  -> u64
  const universe medium(6, 16);   // 96 key bits  -> u128
  const universe wide(16, 16);    // 256 key bits -> u512
  std::uint64_t seed = 21;
  for (const curve_kind kind :
       {curve_kind::z_order, curve_kind::hilbert, curve_kind::gray_code}) {
    run_curve_property<std::uint64_t>(kind, narrow, seed++);
    run_curve_property<u128>(kind, medium, seed++);
    run_curve_property<u512>(kind, wide, seed++);
  }
}

TEST(CompressedRunStore, SummariesAnswerWithoutDecoding) {
  compressed_run_store<std::uint64_t> store(4);
  std::vector<store_entry<std::uint64_t>> items;
  for (std::uint64_t i = 0; i < 64; ++i) items.push_back({i * 100, i});
  store.merge_in(items);

  tier_counters c;
  // Range in the gap between two block envelopes: summary reject, no decode.
  const auto miss = store.first_in({1'000'000, 2'000'000}, nullptr, &c);
  EXPECT_FALSE(miss.has_value());
  EXPECT_EQ(c.summary_answers, 1U);
  EXPECT_EQ(c.blocks_decoded, 0U);
  // Range covering a block's lower endpoint: answered from the summary.
  const auto head = store.first_in({0, 50}, nullptr, &c);
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->key, 0U);
  EXPECT_EQ(c.summary_answers, 2U);
  EXPECT_EQ(c.blocks_decoded, 0U);
  // Range starting strictly inside a block: needs one decode.
  const auto inner = store.first_in({150, 450}, nullptr, &c);
  ASSERT_TRUE(inner.has_value());
  EXPECT_EQ(inner->key, 200U);
  EXPECT_EQ(c.blocks_decoded, 1U);
}

TEST(CompressedRunStore, CompressesKeysSeveralFold) {
  // 32-bit keys (the fig9-style dominance universe) at covering-index
  // scale: even against the raw entry payload — with no structural
  // overhead charged to the resident side — uniform keys must gap-code to
  // less than half, and clustered keys (the realistic case: subscription
  // interests cluster, so nearby curve keys repeat high bits) to less than
  // a third.
  rng gen(31);
  compressed_run_store<std::uint64_t> uniform(64);
  std::vector<store_entry<std::uint64_t>> items;
  for (std::uint64_t i = 0; i < 20'000; ++i)
    items.push_back({gen.uniform(0, std::uint64_t{1} << 32), i});
  uniform.merge_in(items);
  const std::size_t materialized = items.size() * sizeof(store_entry<std::uint64_t>);
  EXPECT_LT(uniform.memory_footprint() * 2, materialized);

  compressed_run_store<std::uint64_t> clustered(64);
  items.clear();
  std::uint64_t base = 0;
  for (std::uint64_t i = 0; i < 20'000; ++i) {
    if (i % 100 == 0) base = gen.uniform(0, std::uint64_t{1} << 32);
    items.push_back({base + gen.uniform(0, 4096), i});
  }
  clustered.merge_in(items);
  EXPECT_LT(clustered.memory_footprint() * 3, materialized);
}

}  // namespace
}  // namespace subcover
