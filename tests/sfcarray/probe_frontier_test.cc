// probe_frontier equivalence: the batched frontier sweep must visit exactly
// the runs the single-range first_in path visits, in the same (frontier)
// order, with byte-identical per-range answers — for realistic frontiers
// produced by the query planner's level enumerator (3 curves x 3 key
// widths) and for adversarial hand-built frontiers (empty, single-range,
// fully-overlapping with the stored runs, all-miss, duplicate lows). The
// early-stop contract (sink returns false) is pinned down too.
#include <gtest/gtest.h>

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dominance/dominance_index.h"
#include "geometry/extremal.h"
#include "sfc/extremal_decomposition.h"
#include "sfc/key_range.h"
#include "sfcarray/sfc_array.h"
#include "util/key_traits.h"
#include "util/random.h"

namespace subcover {
namespace {

point random_point(rng& gen, const universe& u) {
  point p(u.dims());
  for (int i = 0; i < u.dims(); ++i)
    p[i] = static_cast<std::uint32_t>(gen.uniform(0, u.coord_max()));
  return p;
}

// Records every on_probe call; optionally stops after `stop_after` probes.
template <class K>
struct recording_sink final : basic_sfc_array<K>::frontier_sink {
  using entry = typename basic_sfc_array<K>::entry;

  std::vector<std::size_t> indices;
  std::vector<std::optional<entry>> answers;
  std::size_t stop_after = ~std::size_t{0};

  bool on_probe(std::size_t index, const entry* hit) override {
    indices.push_back(index);
    answers.push_back(hit != nullptr ? std::optional<entry>(*hit) : std::nullopt);
    return indices.size() < stop_after;
  }
};

// The reference semantics: one independent first_in per range.
template <class K>
std::vector<std::optional<typename basic_sfc_array<K>::entry>> reference_answers(
    const basic_sfc_array<K>& array, const std::vector<basic_key_range<K>>& frontier) {
  std::vector<std::optional<typename basic_sfc_array<K>::entry>> out;
  out.reserve(frontier.size());
  for (const auto& r : frontier) out.push_back(array.first_in(r));
  return out;
}

// Pins probe_frontier against the reference on one (array, frontier) pair.
template <class K>
void expect_frontier_matches(const basic_sfc_array<K>& array,
                             const std::vector<basic_key_range<K>>& frontier,
                             const std::string& what) {
  const auto expected = reference_answers(array, frontier);
  recording_sink<K> sink;
  array.probe_frontier(std::span<const basic_key_range<K>>(frontier), sink);
  ASSERT_EQ(sink.indices.size(), frontier.size()) << what;
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    EXPECT_EQ(sink.indices[i], i) << what << " probe " << i;
    EXPECT_EQ(sink.answers[i], expected[i]) << what << " probe " << i << " range "
                                            << frontier[i].to_string();
  }
}

constexpr sfc_array_kind kKinds[] = {sfc_array_kind::skiplist, sfc_array_kind::sorted_vector};
constexpr curve_kind kCurves[] = {curve_kind::z_order, curve_kind::hilbert,
                                  curve_kind::gray_code};

const char* kind_name(sfc_array_kind k) {
  return k == sfc_array_kind::skiplist ? "skiplist" : "sorted_vector";
}

// Realistic frontiers: exactly what query_plan feeds probe_frontier — the
// merged Equation-1 level ranges of extremal query regions — for every
// curve, key width and backend.
template <class K>
void planner_frontier_case(curve_kind ck, sfc_array_kind ak) {
  const universe u(2, 5);
  const auto curve = make_basic_curve<K>(ck, u);
  const auto array = make_basic_sfc_array<K>(ak);
  rng gen(0xf407 + static_cast<std::uint64_t>(ck) * 7 + static_cast<std::uint64_t>(ak));
  for (std::uint64_t id = 0; id < 150; ++id)
    array->insert(curve->cell_key(random_point(gen, u)), id);

  std::vector<basic_key_range<K>> frontier;
  for (int q = 0; q < 25; ++q) {
    const extremal_rect region = extremal_rect::query_region(u, random_point(gen, u));
    for (int i = u.bits(); i >= 0; --i) {
      frontier.clear();
      enumerate_level_ranges(*curve, region, i,
                             [&](const basic_key_range<K>& r) { frontier.push_back(r); });
      if (frontier.empty()) continue;
      merge_ranges_inplace(frontier);
      expect_frontier_matches(*array, frontier,
                              std::string(kind_name(ak)) + " level " + std::to_string(i));
    }
  }
}

TEST(ProbeFrontier, MatchesSingleRangePathOnPlannerFrontiers) {
  for (const curve_kind ck : kCurves) {
    for (const sfc_array_kind ak : kKinds) {
      planner_frontier_case<std::uint64_t>(ck, ak);
      planner_frontier_case<u128>(ck, ak);
      planner_frontier_case<u512>(ck, ak);
    }
  }
}

// Adversarial frontiers over a hand-built array: keys 10, 20, ..., 100 plus
// duplicates of 50 (ids 4, 105, 106) so the smallest-(key, id) rule is
// observable.
template <class K>
void adversarial_case(sfc_array_kind ak) {
  const auto array = make_basic_sfc_array<K>(ak);
  for (std::uint64_t i = 1; i <= 10; ++i) array->insert(K(i * 10), i - 1);
  array->insert(K(50), 105);
  array->insert(K(50), 106);
  const auto k = [](std::uint64_t v) { return K(v); };
  using range = basic_key_range<K>;
  const std::string what = kind_name(ak);

  // Empty frontier: the sink is never invoked.
  {
    recording_sink<K> sink;
    array->probe_frontier(std::span<const range>{}, sink);
    EXPECT_TRUE(sink.indices.empty()) << what;
  }
  // Single range, hit and miss.
  expect_frontier_matches<K>(*array, {range(k(15), k(35))}, what + " single-hit");
  expect_frontier_matches<K>(*array, {range(k(101), k(999))}, what + " single-miss");
  // Fully overlapping with the stored runs: every range hits, including
  // back-to-back ranges splitting one stored key's neighborhood and the
  // duplicate-key run (smallest id must win).
  expect_frontier_matches<K>(
      *array, {range(k(0), k(14)), range(k(15), k(49)), range(k(50), k(50)),
               range(k(51), k(120))},
      what + " overlapping");
  // All-miss: every range falls in a gap between stored keys.
  expect_frontier_matches<K>(
      *array, {range(k(1), k(9)), range(k(11), k(19)), range(k(41), k(49)),
               range(k(91), k(99)), range(k(101), k(102))},
      what + " all-miss");
  // Non-decreasing lows with duplicates (the contract's weakest legal
  // input): repeated and nested-from-equal-lo ranges.
  expect_frontier_matches<K>(
      *array, {range(k(30), k(30)), range(k(30), k(55)), range(k(30), k(95)),
               range(k(60), k(61)), range(k(60), k(80))},
      what + " duplicate-lows");
  // Early stop: returning false from the sink ends the sweep immediately.
  {
    const std::vector<range> frontier = {range(k(1), k(9)), range(k(15), k(35)),
                                         range(k(41), k(49)), range(k(55), k(65))};
    recording_sink<K> sink;
    sink.stop_after = 2;
    array->probe_frontier(std::span<const range>(frontier), sink);
    ASSERT_EQ(sink.indices.size(), 2u) << what;
    EXPECT_EQ(sink.indices[0], 0u) << what;
    EXPECT_EQ(sink.indices[1], 1u) << what;
  }
}

TEST(ProbeFrontier, AdversarialFrontiers) {
  for (const sfc_array_kind ak : kKinds) {
    adversarial_case<std::uint64_t>(ak);
    adversarial_case<u128>(ak);
    adversarial_case<u512>(ak);
  }
}

// The u512 facade over a narrow engine (dominance_index::array()) must
// satisfy the same contract, including frontiers that run past the narrow
// key domain (reported as in-order misses).
TEST(ProbeFrontier, WideningFacadeMatchesSingleRangePath) {
  const universe u(2, 5);  // d*k = 10 -> u64 engine behind a u512 facade
  for (const sfc_array_kind ak : kKinds) {
    dominance_options opts;
    opts.array = ak;
    dominance_index idx(u, opts);
    ASSERT_EQ(idx.width(), key_width::w64);
    rng gen(0xfacade ^ static_cast<std::uint64_t>(ak));
    for (std::uint64_t id = 0; id < 80; ++id) idx.insert(random_point(gen, u), id);

    const sfc_array& facade = idx.array();
    std::vector<key_range> frontier;
    for (std::uint64_t lo = 0; lo < (1u << 10); lo += 19)
      frontier.push_back({u512(lo), u512(lo + 11)});
    // Ranges straddling and entirely above the u64 domain (lows keep
    // ascending, per the contract): answered like first_in (clamped, then
    // all-miss), still in frontier order.
    frontier.push_back({u512(1010), u512::max()});
    frontier.push_back({u512::pow2(80), u512::pow2(90)});
    frontier.push_back({u512::pow2(200), u512::max()});
    expect_frontier_matches<u512>(facade, frontier, kind_name(ak) + std::string(" facade"));
  }
}

// The base-class default (independent first_in per range) is itself the
// reference implementation; a minimal backend inheriting it must satisfy
// the same contract, so derived backends can be pinned against it.
TEST(ProbeFrontier, DefaultImplementationIsReference) {
  // The sorted vector's single-range first_in is trusted (exhaustively
  // tested elsewhere); drive the default probe_frontier through a thin
  // wrapper that hides the override.
  struct wrapper final : basic_sfc_array<std::uint64_t> {
    std::unique_ptr<basic_sfc_array<std::uint64_t>> inner =
        make_basic_sfc_array<std::uint64_t>(sfc_array_kind::sorted_vector);

    void insert(const std::uint64_t& key, std::uint64_t id) override { inner->insert(key, id); }
    bool erase(const std::uint64_t& key, std::uint64_t id) override {
      return inner->erase(key, id);
    }
    [[nodiscard]] std::optional<entry> first_in(const range_type& r) const override {
      return inner->first_in(r);
    }
    [[nodiscard]] std::uint64_t count_in(const range_type& r) const override {
      return inner->count_in(r);
    }
    [[nodiscard]] std::size_t size() const override { return inner->size(); }
    [[nodiscard]] std::size_t memory_footprint() const override {
      return inner->memory_footprint();
    }
    void for_each(const std::function<void(const entry&)>& fn) const override {
      inner->for_each(fn);
    }
  };

  wrapper w;
  rng gen(99);
  for (std::uint64_t id = 0; id < 64; ++id) w.insert(gen.next() % 1000, id);
  std::vector<basic_key_range<std::uint64_t>> frontier;
  for (std::uint64_t lo = 0; lo < 1000; lo += 37) frontier.push_back({lo, lo + 20});
  expect_frontier_matches<std::uint64_t>(w, frontier, "default impl");
}

}  // namespace
}  // namespace subcover
