// Differential churn soak: one seeded churn stream (mixed subscribe /
// unsubscribe / probe traffic with flash crowds) drives four covering
// backends — resident sorted vector, resident skip list, the hot/cold
// tiered configuration, and a never-compact deferred-tombstone
// configuration — plus a naive std::map oracle. After every operation the
// backends must agree byte-for-byte on covering answers and logical query
// stats, and after every maintenance epoch (maintain() on all backends,
// then a probe sweep) the agreement must still hold: maintenance is
// physical, never observable. Runs across all three curves at all three
// key widths.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "covering/sfc_covering_index.h"
#include "workload/churn_gen.h"

namespace subcover {
namespace {

// The logical half of query_stats — the paper's cost model and the eps
// guarantee. Physical counters (frontier_*, probes_*, tier_*, maint_*) are
// execution details of the individual backend and excluded.
void expect_logical_stats_equal(const covering_check_stats& got,
                                const covering_check_stats& want) {
  EXPECT_EQ(got.found, want.found);
  EXPECT_EQ(got.candidates_checked, want.candidates_checked);
  const query_stats& g = got.dominance;
  const query_stats& w = want.dominance;
  EXPECT_EQ(g.cubes_enumerated, w.cubes_enumerated);
  EXPECT_EQ(g.runs_in_plan, w.runs_in_plan);
  EXPECT_EQ(g.runs_probed, w.runs_probed);
  EXPECT_EQ(g.truncation_m, w.truncation_m);
  EXPECT_EQ(g.volume_fraction_planned, w.volume_fraction_planned);
  EXPECT_EQ(g.volume_fraction_searched, w.volume_fraction_searched);
  EXPECT_EQ(g.found, w.found);
  EXPECT_EQ(g.budget_exhausted, w.budget_exhausted);
}

void run_soak(curve_kind curve, const schema& s, int n_ops, std::uint64_t seed) {
  // Four covering configurations over identical logical content. [0] is the
  // comparison baseline.
  auto base = [&] {
    sfc_covering_options o;
    o.curve = curve;
    return o;
  };
  std::vector<std::unique_ptr<sfc_covering_index>> idxs;
  {
    sfc_covering_options o = base();
    o.array = sfc_array_kind::sorted_vector;
    idxs.push_back(std::make_unique<sfc_covering_index>(s, o));
    o = base();
    o.array = sfc_array_kind::skiplist;
    idxs.push_back(std::make_unique<sfc_covering_index>(s, o));
    o = base();
    o.tier_hot_capacity = 32;  // small: churn constantly crosses tiers
    o.tier_block_entries = 8;
    idxs.push_back(std::make_unique<sfc_covering_index>(s, o));
    o = base();
    o.array = sfc_array_kind::sorted_vector;
    o.compact_live_fraction = 0.0;  // tombstones only reclaimed by maintain()
    idxs.push_back(std::make_unique<sfc_covering_index>(s, o));
  }
  std::map<sub_id, subscription> oracle;

  workload::churn_gen_options co;
  co.subscriptions.kind = workload::workload_kind::clustered;  // covering-rich
  co.subscriptions.wildcard_prob = 0.0;
  co.flash_prob = 0.01;
  co.flash_len = 16;
  co.warmup_subscriptions = 64;
  co.publish_weight = 0.1;  // publish ops double as mid-epoch probe checks
  workload::churn_gen stream(s, co, seed);

  workload::subscription_gen_options po;
  po.kind = workload::workload_kind::clustered;
  po.wildcard_prob = 0.0;
  workload::subscription_gen probe_gen(s, po, seed ^ 0x5bd1e995U);
  // A test-owned side population for the batch-withdrawal path: its ids use
  // the high bit, which the stream (ids counted up from 0) never reaches,
  // so batch erases never race the stream's own live-set bookkeeping.
  workload::subscription_gen side_gen(s, co.subscriptions, seed ^ 0x27d4eb2fU);
  std::vector<sub_id> side_cohort;
  sub_id next_side_id = sub_id{1} << 63;

  const auto check_round = [&](int probes) {
    for (int p = 0; p < probes; ++p) {
      const subscription probe = probe_gen.next();
      for (const double eps : {0.0, 0.1}) {
        covering_check_stats want;
        const std::optional<sub_id> baseline = idxs[0]->find_covering(probe, eps, &want);
        for (std::size_t i = 1; i < idxs.size(); ++i) {
          covering_check_stats got;
          const std::optional<sub_id> hit = idxs[i]->find_covering(probe, eps, &got);
          ASSERT_EQ(hit.has_value(), baseline.has_value()) << "backend " << i;
          if (hit.has_value()) {
            EXPECT_EQ(*hit, *baseline) << "backend " << i;
          }
          expect_logical_stats_equal(got, want);
        }
        // One-sided safety: a returned id really covers the probe.
        if (baseline.has_value()) {
          EXPECT_TRUE(oracle.at(*baseline).covers(probe));
        } else if (eps == 0.0 && !want.dominance.budget_exhausted) {
          // Exact search with an unexhausted budget never misses.
          const bool truth = std::any_of(oracle.begin(), oracle.end(), [&](const auto& kv) {
            return kv.second.covers(probe);
          });
          EXPECT_FALSE(truth) << "exact search missed a covering subscription";
        }
      }
    }
  };

  int epoch_ops = 0;
  for (int op = 0; op < n_ops; ++op) {
    const workload::churn_op c = stream.next();
    switch (c.kind) {
      case workload::churn_op::op_kind::subscribe:
        for (auto& idx : idxs) idx->insert(c.id, c.sub);
        oracle.emplace(c.id, c.sub);
        break;
      case workload::churn_op::op_kind::unsubscribe:
        for (auto& idx : idxs) EXPECT_TRUE(idx->erase(c.id));
        ASSERT_EQ(oracle.erase(c.id), 1U);
        break;
      case workload::churn_op::op_kind::publish:
        check_round(1);
        break;
    }
    if (++epoch_ops == 128) {
      epoch_ops = 0;
      // Bulk withdrawal through the batch path: retire the previous side
      // cohort (with a duplicate and an unknown id in the batch — both
      // skipped, identically, everywhere), then register a fresh cohort.
      if (!side_cohort.empty()) {
        std::vector<sub_id> batch = side_cohort;
        batch.push_back(side_cohort.front());     // duplicate listing
        batch.push_back(~std::uint64_t{0} - op);  // unknown id
        for (auto& idx : idxs) EXPECT_EQ(idx->erase_batch(batch), side_cohort.size());
        for (const sub_id id : side_cohort) oracle.erase(id);
        side_cohort.clear();
      }
      for (int k = 0; k < 8; ++k) {
        const sub_id id = next_side_id++;
        const subscription sub = side_gen.next();
        for (auto& idx : idxs) idx->insert(id, sub);
        oracle.emplace(id, sub);
        side_cohort.push_back(id);
      }
      // The maintenance epoch: physical-only, then prove it with a sweep.
      for (auto& idx : idxs) idx->maintain();
      check_round(4);
      for (const auto& idx : idxs) ASSERT_EQ(idx->size(), oracle.size());
    }
  }
  for (auto& idx : idxs) idx->maintain();
  check_round(8);
  for (const auto& idx : idxs) ASSERT_EQ(idx->size(), oracle.size());

  // The stream must actually have exercised the deferred machinery: the
  // never-compact backend carries a tombstone ledger with no compactions
  // (only its array's maintain() path could purge, and its threshold is 0).
  const maintenance_counters deferred = idxs[3]->index().maintenance();
  EXPECT_GT(deferred.tombstones_added, 0U);
  EXPECT_EQ(deferred.compactions, 0U);
  // And on the longer streams, enough tombstones accumulate that the
  // default-threshold sorted vector must have compacted under the same
  // churn (short streams may legitimately stay above the live threshold).
  if (n_ops >= 300) {
    EXPECT_GT(idxs[0]->index().maintenance().compactions, 0U);
  }
}

TEST(ChurnSoak, AllCurvesU64) {
  for (const curve_kind kind :
       {curve_kind::z_order, curve_kind::gray_code, curve_kind::hilbert}) {
    run_soak(kind, workload::make_uniform_schema(2, 12), /*n_ops=*/700,
             /*seed=*/60 + static_cast<std::uint64_t>(kind));
  }
}

TEST(ChurnSoak, AllCurvesU128) {
  for (const curve_kind kind :
       {curve_kind::z_order, curve_kind::gray_code, curve_kind::hilbert}) {
    run_soak(kind, workload::make_uniform_schema(3, 16), /*n_ops=*/350,
             /*seed=*/70 + static_cast<std::uint64_t>(kind));
  }
}

TEST(ChurnSoak, AllCurvesU512) {
  for (const curve_kind kind :
       {curve_kind::z_order, curve_kind::gray_code, curve_kind::hilbert}) {
    run_soak(kind, workload::make_uniform_schema(8, 16), /*n_ops=*/160,
             /*seed=*/80 + static_cast<std::uint64_t>(kind));
  }
}

}  // namespace
}  // namespace subcover
