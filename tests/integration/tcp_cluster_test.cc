// Multi-process TCP cluster test: three broker_daemon processes on real
// loopback sockets, driven through the client protocol and verified
// byte-for-byte against the in-process deterministic engine — including a
// SIGKILL of the middle broker with a client operation in flight, restart
// from its WAL directory, and convergence to one of the two legal outcomes
// (operation durably applied cluster-wide, or lost before its first WAL
// append — never anything in between).
//
// Process plumbing: the parent pre-binds every listening socket (port 0,
// resolved with getsockname) and each forked child adopts its own fd via
// transport_options::listen_fd while closing its siblings'. The parent
// keeps all listen fds open, so a SIGKILLed broker's port survives the
// crash and the re-forked child resumes accepting on the very same socket.
// Children _exit() so they never touch gtest's reporting or LSan's atexit
// hooks; all assertions run in the parent.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "subcover.h"
#include "workload/event_gen.h"

namespace subcover {
namespace {

constexpr int kBrokers = 3;

int bind_loopback_listener(int* port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  EXPECT_EQ(::listen(fd, 32), 0);
  socklen_t len = sizeof addr;
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  *port_out = ntohs(addr.sin_port);
  return fd;
}

[[noreturn]] void broker_child(int id, const std::array<int, kBrokers>& fds,
                               const std::array<int, kBrokers>& ports,
                               const std::string& wal_root) {
  for (int b = 0; b < kBrokers; ++b)
    if (b != id) ::close(fds[b]);
  try {
    transport_options o;
    o.broker_id = id;
    o.listen_fd = fds[id];
    if (id > 0) o.peers.push_back({id - 1, "127.0.0.1", ports[id - 1]});
    if (id + 1 < kBrokers) o.peers.push_back({id + 1, "127.0.0.1", ports[id + 1]});
    o.wal_dir = wal_root + "/w" + std::to_string(id);
    o.seed = 1;
    o.heartbeat_ms = 100;
    o.peer_timeout_ms = 600;
    o.reconnect_base_ms = 10;
    o.reconnect_cap_ms = 200;
    o.checkpoint_every = 16;
    const schema s = workload::make_sensor_schema();
    broker_daemon d(
        s, [](const schema& sc) { return std::make_unique<sfc_covering_index>(sc); }, o);
    d.run();
  } catch (...) {
    ::_exit(3);
  }
  ::_exit(0);
}

// Kills any child still alive when the test unwinds (assertion failures
// must not leave daemon processes behind).
struct child_reaper {
  std::array<pid_t, kBrokers>& pids;
  ~child_reaper() {
    for (auto& pid : pids)
      if (pid > 0) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        pid = -1;
      }
  }
};

std::vector<std::uint64_t> event_values(const event& e) {
  std::vector<std::uint64_t> v;
  v.reserve(static_cast<std::size_t>(e.attribute_count()));
  for (int i = 0; i < e.attribute_count(); ++i) v.push_back(e.value(i));
  return v;
}

// True iff every daemon's routing snapshot is byte-identical to the
// reference network's corresponding broker.
bool cluster_matches(std::array<cluster_client, kBrokers>& clients, const network& ref,
                     int timeout_ms) {
  wire_msg dump;
  dump.type = msg_type::client_dump;
  for (int b = 0; b < kBrokers; ++b) {
    const auto reply = clients[static_cast<std::size_t>(b)].request(dump, timeout_ms);
    if (reply.snapshot != encode_snapshot(ref.broker_at(b).snapshot())) return false;
  }
  return true;
}

TEST(TcpClusterTest, KillAndRecoverConvergesByteIdentical) {
  constexpr int kTimeoutMs = 20000;

  char wal_template[] = "/tmp/subcover-tcp-XXXXXX";
  ASSERT_NE(::mkdtemp(wal_template), nullptr);
  const std::string wal_root = wal_template;

  std::array<int, kBrokers> fds{};
  std::array<int, kBrokers> ports{};
  for (int b = 0; b < kBrokers; ++b) fds[b] = bind_loopback_listener(&ports[b]);

  std::array<pid_t, kBrokers> pids{-1, -1, -1};
  child_reaper reaper{pids};
  const auto spawn = [&](int id) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) broker_child(id, fds, ports, wal_root);
    pids[static_cast<std::size_t>(id)] = pid;
  };
  for (int b = 0; b < kBrokers; ++b) spawn(b);

  std::array<cluster_client, kBrokers> clients;
  const auto connect_all = [&] {
    wire_msg probe;
    probe.type = msg_type::client_dump;
    for (int b = 0; b < kBrokers; ++b) {
      auto& c = clients[static_cast<std::size_t>(b)];
      c.close();
      c.connect("127.0.0.1", ports[static_cast<std::size_t>(b)], kTimeoutMs);
      (void)c.request(probe, kTimeoutMs);  // identify as a client immediately
    }
  };
  connect_all();

  // Two reference trajectories in lockstep: refA never sees the disputed
  // operation, refB does. Pre-dispute they are fed identically (same
  // deterministic engine, so they stay byte-identical and assign the same
  // subscription ids).
  const schema s = workload::make_sensor_schema();
  network_options no;
  no.use_covering = true;
  const auto make_ref = [&] {
    return std::make_unique<network>(topology::line(kBrokers), s, no);
  };
  auto refA = make_ref();
  auto refB = make_ref();

  workload::subscription_gen_options wo;
  wo.kind = workload::workload_kind::clustered;
  wo.clusters = 5;
  workload::subscription_gen sgen(s, wo, 7);
  workload::event_gen egen(s, 8);
  rng pick(9);

  // --- phase 1: no faults — subscribe / unsubscribe / publish ---------------
  for (int i = 0; i < 60; ++i) {
    const int b = static_cast<int>(pick.index(kBrokers));
    const subscription sub = sgen.next();
    const sub_id id = refA->subscribe(b, sub);
    ASSERT_EQ(refB->subscribe(b, sub), id);
    wire_msg m;
    m.type = msg_type::client_subscribe;
    m.id = id;
    m.body = sub;
    const auto done = clients[static_cast<std::size_t>(b)].request(m, kTimeoutMs);
    ASSERT_EQ(done.type, msg_type::client_done);
    ASSERT_EQ(done.status, 0);
  }
  for (int i = 0; i < 10; ++i) {
    const auto id = pick.uniform(1, 60);
    const auto owner = refA->owner_broker(id);
    if (!owner) continue;
    refA->unsubscribe(id);
    refB->unsubscribe(id);
    wire_msg m;
    m.type = msg_type::client_unsubscribe;
    m.id = id;
    const auto done = clients[static_cast<std::size_t>(*owner)].request(m, kTimeoutMs);
    ASSERT_EQ(done.status, 0);
  }
  for (int i = 0; i < 12; ++i) {
    const int b = static_cast<int>(pick.index(kBrokers));
    const event ev = egen.next();
    const auto expect = refA->publish(b, ev);
    ASSERT_EQ(refB->publish(b, ev), expect);
    wire_msg m;
    m.type = msg_type::client_publish;
    m.values = event_values(ev);
    const auto done = clients[static_cast<std::size_t>(b)].request(m, kTimeoutMs);
    ASSERT_EQ(done.status, 0);
    EXPECT_EQ(done.delivered, expect) << "publish " << i;
  }

  // Phase-1 convergence: snapshots byte-identical, summed logical counters
  // equal (the physical TCP counters are excluded by same_counters).
  EXPECT_TRUE(cluster_matches(clients, *refA, kTimeoutMs));
  {
    network_metrics summed;
    wire_msg dump;
    dump.type = msg_type::client_dump;
    for (auto& c : clients) summed += c.request(dump, kTimeoutMs).metrics;
    EXPECT_TRUE(same_counters(summed, refA->metrics()));
  }

  // --- phase 2: SIGKILL broker 1 with a client operation in flight ----------
  const subscription disputed = sgen.next();
  const sub_id disputed_id = refB->subscribe(1, disputed);
  {
    wire_msg m;
    m.type = msg_type::client_subscribe;
    m.id = disputed_id;
    m.body = disputed;
    clients[1].send(m);  // no reply awaited — the kill races the processing
  }
  ASSERT_EQ(::kill(pids[1], SIGKILL), 0);
  ASSERT_EQ(::waitpid(pids[1], nullptr, 0), pids[1]);
  pids[1] = -1;

  // Restart broker 1 from its WAL directory on the same listening socket.
  // (waitpid above also guarantees the WAL lockfile's flock is released.)
  spawn(1);
  connect_all();

  // Converge to exactly one of the two legal outcomes. A transient
  // mid-resume state can match neither; a full match is stable because the
  // disputed operation is the only one outstanding.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  network* ref = nullptr;
  bool applied = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cluster_matches(clients, *refB, kTimeoutMs)) {
      ref = refB.get();
      applied = true;
      break;
    }
    if (cluster_matches(clients, *refA, kTimeoutMs)) {
      ref = refA.get();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ASSERT_NE(ref, nullptr) << "cluster matched neither with- nor without-op reference";
  if (applied) {
    // Keep the surviving reference's id allocator aligned with refB's.
    ASSERT_EQ(refA->subscribe(1, disputed), disputed_id);
  }

  // The restarted broker must have actually recovered from its WAL.
  {
    wire_msg dump;
    dump.type = msg_type::client_dump;
    EXPECT_GE(clients[1].request(dump, kTimeoutMs).metrics.recoveries, 1u);
  }

  // --- phase 3: keep driving through the recovered cluster ------------------
  for (int i = 0; i < 30; ++i) {
    const int b = static_cast<int>(pick.index(kBrokers));
    const subscription sub = sgen.next();
    const sub_id id = ref->subscribe(b, sub);
    wire_msg m;
    m.type = msg_type::client_subscribe;
    m.id = id;
    m.body = sub;
    const auto done = clients[static_cast<std::size_t>(b)].request(m, kTimeoutMs);
    ASSERT_EQ(done.status, 0);
  }
  for (int i = 0; i < 12; ++i) {
    const int b = static_cast<int>(pick.index(kBrokers));
    const event ev = egen.next();
    const auto expect = ref->publish(b, ev);
    wire_msg m;
    m.type = msg_type::client_publish;
    m.values = event_values(ev);
    const auto done = clients[static_cast<std::size_t>(b)].request(m, kTimeoutMs);
    ASSERT_EQ(done.status, 0);
    EXPECT_EQ(done.delivered, expect) << "post-recovery publish " << i;
  }
  EXPECT_TRUE(cluster_matches(clients, *ref, kTimeoutMs));

  // Orderly shutdown: every daemon checkpoints and exits 0.
  for (auto& c : clients) {
    wire_msg m;
    m.type = msg_type::client_shutdown;
    c.send(m);
  }
  for (int b = 0; b < kBrokers; ++b) {
    int status = 0;
    ASSERT_EQ(::waitpid(pids[b], &status, 0), pids[b]);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0) << "broker " << b;
    pids[b] = -1;
  }
  for (const int fd : fds) ::close(fd);
  std::filesystem::remove_all(wal_root);
}

}  // namespace
}  // namespace subcover
