// End-to-end scenarios exercising the full public API: parse -> index ->
// propagate -> publish -> deliver, across index types and curves.
#include <gtest/gtest.h>

#include "subcover.h"

namespace subcover {
namespace {

TEST(EndToEnd, StockTickerScenario) {
  // The introduction's scenario on a 7-broker tree with the SFC index.
  const schema s = workload::make_stock_schema();
  network_options o;
  o.use_covering = true;
  o.epsilon = 0.05;
  network net(topology::balanced_tree(2, 2), s, o);

  const auto broad = net.subscribe(3, parse_subscription(s, "stock = IBM"));
  const auto narrow = net.subscribe(3, parse_subscription(s, "stock = IBM, volume > 500"));
  const auto other = net.subscribe(6, parse_subscription(s, "stock = AAPL, price < 100"));

  const auto ev = parse_event(s, "stock = IBM, volume = 1000, price = 88");
  const auto delivered = net.publish(4, ev);
  EXPECT_EQ(delivered, (std::vector<sub_id>{broad, narrow}));

  const auto ev2 = parse_event(s, "stock = AAPL, volume = 10, price = 99");
  EXPECT_EQ(net.publish(0, ev2), (std::vector<sub_id>{other}));
}

TEST(EndToEnd, ApproximateCoveringSavesTrafficWithoutLosingEvents) {
  const schema s = workload::make_uniform_schema(2, 8);
  workload::subscription_gen_options wo;
  wo.kind = workload::workload_kind::uniform;
  wo.mean_width = 0.45;

  auto run = [&](bool covering, double eps) {
    network_options o;
    o.use_covering = covering;
    o.epsilon = eps;
    o.factory = [](const schema& sc) {
      sfc_covering_options so;
      so.max_cubes = 2048;
      return std::make_unique<sfc_covering_index>(sc, so);
    };
    network net(topology::balanced_tree(2, 3), s, o);
    workload::subscription_gen subs(s, wo, 42);
    workload::event_gen events(s, 43);
    rng pick(44);
    for (int i = 0; i < 150; ++i)
      (void)net.subscribe(static_cast<int>(pick.index(15)), subs.next());
    std::uint64_t correct = 0;
    for (int e = 0; e < 40; ++e) {
      const auto ev = events.next();
      if (net.publish(static_cast<int>(pick.index(15)), ev) == net.expected_recipients(ev))
        ++correct;
    }
    return std::tuple{net.metrics().subscription_messages, net.total_routing_entries(),
                      correct};
  };

  const auto [flood_msgs, flood_entries, flood_ok] = run(false, 0.0);
  const auto [exact_msgs, exact_entries, exact_ok] = run(true, 0.0);
  const auto [approx_msgs, approx_entries, approx_ok] = run(true, 0.1);

  // Everyone delivers correctly.
  EXPECT_EQ(flood_ok, 40U);
  EXPECT_EQ(exact_ok, 40U);
  EXPECT_EQ(approx_ok, 40U);
  // Covering reduces traffic and table size. (Exact vs approximate message
  // counts are not strictly ordered: a missed covering forwards a
  // subscription that may itself suppress others downstream.)
  EXPECT_LT(exact_msgs, flood_msgs);
  EXPECT_LT(approx_msgs, flood_msgs);
  EXPECT_LT(static_cast<double>(approx_msgs), 1.5 * static_cast<double>(exact_msgs));
  EXPECT_LT(exact_entries, flood_entries);
  EXPECT_LE(approx_entries, flood_entries);
}

TEST(EndToEnd, UmbrellaHeaderQuickstartWorks) {
  // The README quickstart, verbatim.
  schema s({{"temperature", attribute_type::numeric, 10, {}},
            {"pressure", attribute_type::numeric, 10, {}}});
  sfc_covering_index index(s);
  index.insert(1, parse_subscription(s, "temperature in [100, 900], pressure in [200, 800]"));
  auto hit = index.find_covering(
      parse_subscription(s, "temperature in [300, 700], pressure in [350, 650]"), 0.05);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 1U);
}

TEST(EndToEnd, AllCurvesDeliverIdentically) {
  const schema s = workload::make_sensor_schema();
  for (const auto kind :
       {curve_kind::z_order, curve_kind::hilbert, curve_kind::gray_code}) {
    network_options o;
    o.use_covering = true;
    o.epsilon = 0.05;
    o.factory = [kind](const schema& sc) {
      sfc_covering_options co;
      co.curve = kind;
      co.max_cubes = 2048;
      return std::make_unique<sfc_covering_index>(sc, co);
    };
    network net(topology::line(4), s, o);
    workload::subscription_gen subs(s, {}, 99);
    workload::event_gen events(s, 98);
    rng pick(97);
    for (int i = 0; i < 80; ++i)
      (void)net.subscribe(static_cast<int>(pick.index(4)), subs.next());
    for (int e = 0; e < 30; ++e) {
      const auto ev = events.next();
      EXPECT_EQ(net.publish(static_cast<int>(pick.index(4)), ev),
                net.expected_recipients(ev))
          << curve_kind_name(kind);
    }
  }
}

TEST(EndToEnd, UnsafeMonteCarloIndexLosesDeliveries) {
  // Demonstrates why one-sided error matters: the MC baseline's false
  // covering claims suppress subscriptions that were not actually covered,
  // and events silently vanish. (This is a characterization test: with this
  // seed and workload the loss is reliably nonzero.)
  const schema s = workload::make_uniform_schema(2, 12);
  network_options o;
  o.use_covering = true;
  o.factory = [](const schema& sc) {
    return std::make_unique<sampled_covering_index>(sc, /*samples=*/4);
  };
  network net(topology::line(6), s, o);
  workload::subscription_gen_options wo;
  wo.kind = workload::workload_kind::clustered;
  wo.clusters = 3;
  workload::subscription_gen subs(s, wo, 7);
  rng pick(8);
  std::vector<std::pair<sub_id, subscription>> all;
  for (int i = 0; i < 100; ++i) {
    const auto sub = subs.next();
    all.emplace_back(net.subscribe(static_cast<int>(pick.index(6)), sub), sub);
  }
  workload::event_gen events(s, 9);
  std::uint64_t lost = 0;
  for (int e = 0; e < 100; ++e) {
    // Publish events that target random subscriptions to stress the misses.
    const auto& [id, sub] = all[pick.index(all.size())];
    const auto ev = events.next_matching(sub);
    const auto delivered = net.publish(static_cast<int>(pick.index(6)), ev);
    const auto expected = net.expected_recipients(ev);
    if (delivered != expected) ++lost;
  }
  EXPECT_GT(lost, 0U);
}

}  // namespace
}  // namespace subcover
