// key_traits: the one bit-manipulation vocabulary shared by the builtin key
// types and u512 (util/key_traits.h). Each operation must agree with the
// u512 reference semantics on the representable range — that is what lets
// the templated pipeline treat the three widths interchangeably.
#include "util/key_traits.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "util/random.h"

namespace subcover {
namespace {

template <class K>
class KeyTraitsTest : public testing::Test {};

using KeyTypes = testing::Types<std::uint64_t, u128, u512>;
TYPED_TEST_SUITE(KeyTraitsTest, KeyTypes);

TYPED_TEST(KeyTraitsTest, ZeroOneMax) {
  using T = key_traits<TypeParam>;
  EXPECT_TRUE(T::is_zero(T::zero()));
  EXPECT_FALSE(T::is_zero(T::one()));
  EXPECT_EQ(T::bit_width(T::zero()), 0);
  EXPECT_EQ(T::bit_width(T::one()), 1);
  EXPECT_EQ(T::bit_width(T::max()), T::kBits);
  EXPECT_EQ(T::countr_zero(T::zero()), T::kBits);
  EXPECT_EQ(T::countl_zero(T::zero()), T::kBits);
}

TYPED_TEST(KeyTraitsTest, Pow2MaskScan) {
  using T = key_traits<TypeParam>;
  for (int i = 0; i < T::kBits; ++i) {
    const TypeParam p = T::pow2(i);
    EXPECT_EQ(T::bit_width(p), i + 1) << i;
    EXPECT_EQ(T::countr_zero(p), i) << i;
    EXPECT_EQ(T::countl_zero(p), T::kBits - 1 - i) << i;
    EXPECT_EQ(T::bit_floor(p), p) << i;
    EXPECT_TRUE(T::test_bit(p, i)) << i;
    if (i > 0) EXPECT_FALSE(T::test_bit(p, i - 1)) << i;
    // mask(i) == pow2(i) - 1.
    EXPECT_EQ(T::mask(i), static_cast<TypeParam>(p - T::one())) << i;
  }
  EXPECT_EQ(T::mask(0), T::zero());
  EXPECT_EQ(T::mask(T::kBits), T::max());
}

TYPED_TEST(KeyTraitsTest, SetBitBuildsPow2) {
  using T = key_traits<TypeParam>;
  for (int i = 0; i < T::kBits; i += 7) {
    TypeParam v = T::zero();
    T::set_bit(v, i);
    EXPECT_EQ(v, T::pow2(i)) << i;
  }
}

TYPED_TEST(KeyTraitsTest, WidenTruncateRoundTrip) {
  using T = key_traits<TypeParam>;
  rng gen(7);
  for (int trial = 0; trial < 200; ++trial) {
    // A random value of the traits' width: random word spread to a random
    // bit position.
    const int shift = static_cast<int>(gen.uniform(0, T::kBits - 1));
    TypeParam v = static_cast<TypeParam>(gen.next());
    v = static_cast<TypeParam>(v << shift) | T::mask(shift % 13);
    const u512 wide = T::widen(v);
    EXPECT_EQ(T::truncate(wide), v);
    // Agreement with the u512 reference on every queried property.
    EXPECT_EQ(T::bit_width(v), wide.bit_width());
    EXPECT_EQ(T::is_zero(v), wide.is_zero());
    EXPECT_EQ(T::low64(v), wide.low64());
    if (!T::is_zero(v)) EXPECT_EQ(T::countr_zero(v), wide.countr_zero());
    EXPECT_EQ(T::widen(T::bit_floor(v)), wide.bit_floor());
    EXPECT_EQ(T::to_string(v), wide.to_string());
    EXPECT_DOUBLE_EQ(static_cast<double>(T::to_long_double(v)),
                     static_cast<double>(wide.to_long_double()));
  }
}

TEST(KeyWidth, Names) {
  EXPECT_STREQ(key_width_name(key_width::w64), "u64");
  EXPECT_STREQ(key_width_name(key_width::w128), "u128");
  EXPECT_STREQ(key_width_name(key_width::w512), "u512");
  EXPECT_STREQ(key_width_name(key_width::automatic), "auto");
}

}  // namespace
}  // namespace subcover
