#include "util/cli.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace subcover {
namespace {

cli_flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return {static_cast<int>(argv.size()), argv.data()};
}

TEST(CliFlags, DefaultsWhenAbsent) {
  auto f = make({});
  EXPECT_EQ(f.get_int("n", 7), 7);
  EXPECT_EQ(f.get_double("eps", 0.5), 0.5);
  EXPECT_TRUE(f.get_bool("verbose", true));
  EXPECT_EQ(f.get_string("mode", "fast"), "fast");
  f.finish();
}

TEST(CliFlags, ParsesValues) {
  auto f = make({"--n=42", "--eps=0.25", "--verbose", "--mode=slow"});
  EXPECT_EQ(f.get_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(f.get_double("eps", 0), 0.25);
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_EQ(f.get_string("mode", ""), "slow");
  f.finish();
}

TEST(CliFlags, BoolExplicit) {
  auto f = make({"--a=true", "--b=false", "--c=1", "--d=0"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_FALSE(f.get_bool("b", true));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
}

TEST(CliFlags, RejectsBadInt) {
  auto f = make({"--n=12x"});
  EXPECT_THROW(f.get_int("n", 0), std::invalid_argument);
}

TEST(CliFlags, RejectsBadDouble) {
  auto f = make({"--eps=abc"});
  EXPECT_THROW(f.get_double("eps", 0), std::invalid_argument);
}

TEST(CliFlags, RejectsBadBool) {
  auto f = make({"--v=yes"});
  EXPECT_THROW(f.get_bool("v", false), std::invalid_argument);
}

TEST(CliFlags, RejectsNonFlagArgument) {
  EXPECT_THROW(make({"positional"}), std::invalid_argument);
}

TEST(CliFlags, FinishRejectsUnknownFlags) {
  auto f = make({"--unknown=1"});
  EXPECT_THROW(f.finish(), std::invalid_argument);
}

TEST(CliFlags, NegativeNumbers) {
  auto f = make({"--n=-5", "--x=-0.5"});
  EXPECT_EQ(f.get_int("n", 0), -5);
  EXPECT_DOUBLE_EQ(f.get_double("x", 0), -0.5);
}

}  // namespace
}  // namespace subcover
