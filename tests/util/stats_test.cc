#include "util/stats.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace subcover {
namespace {

TEST(Summarize, EmptyIsZero) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0U);
  EXPECT_EQ(s.mean, 0);
}

TEST(Summarize, SingleValue) {
  const auto s = summarize({5.0});
  EXPECT_EQ(s.count, 1U);
  EXPECT_EQ(s.mean, 5.0);
  EXPECT_EQ(s.min, 5.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.p50, 5.0);
  EXPECT_EQ(s.stdev, 0.0);
}

TEST(Summarize, KnownSample) {
  const auto s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5U);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stdev, 1.5811, 1e-3);
}

TEST(Quantile, Interpolates) {
  EXPECT_DOUBLE_EQ(quantile({0, 10}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile({0, 10}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile({0, 10}, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile({3, 1, 2}, 0.5), 2.0);
}

TEST(Quantile, Invalid) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(LinearFit, ExactLine) {
  const auto f = linear_fit({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 2x + 1
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.intercept, 1.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(LinearFit, Errors) {
  EXPECT_THROW(linear_fit({1}, {1}), std::invalid_argument);
  EXPECT_THROW(linear_fit({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW(linear_fit({2, 2}, {1, 3}), std::invalid_argument);  // degenerate x
}

TEST(LogLogFit, RecoversPowerLawExponent) {
  // y = 4 * x^3.
  std::vector<double> xs, ys;
  for (double x : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    xs.push_back(x);
    ys.push_back(4 * x * x * x);
  }
  const auto f = loglog_fit(xs, ys);
  EXPECT_NEAR(f.slope, 3.0, 1e-9);
  EXPECT_NEAR(f.intercept, 2.0, 1e-9);  // log2(4)
}

TEST(LogLogFit, RejectsNonPositive) {
  EXPECT_THROW(loglog_fit({1, 0}, {1, 1}), std::invalid_argument);
  EXPECT_THROW(loglog_fit({1, 2}, {1, -1}), std::invalid_argument);
}

TEST(Accumulator, MatchesSummarize) {
  accumulator acc;
  std::vector<double> values{2, 4, 4, 4, 5, 5, 7, 9};
  for (const double v : values) acc.add(v);
  const auto s = summarize(values);
  EXPECT_EQ(acc.count(), s.count);
  EXPECT_NEAR(acc.mean(), s.mean, 1e-12);
  EXPECT_NEAR(acc.stdev(), s.stdev, 1e-12);
  EXPECT_EQ(acc.min(), s.min);
  EXPECT_EQ(acc.max(), s.max);
  EXPECT_DOUBLE_EQ(acc.total(), 40.0);
}

TEST(Accumulator, EmptyVariance) {
  accumulator acc;
  EXPECT_EQ(acc.variance(), 0.0);
  acc.add(5);
  EXPECT_EQ(acc.variance(), 0.0);
}

}  // namespace
}  // namespace subcover
