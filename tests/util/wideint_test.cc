#include "util/wideint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "util/random.h"

namespace subcover {
namespace {

TEST(U512, DefaultIsZero) {
  u512 v;
  EXPECT_TRUE(v.is_zero());
  EXPECT_EQ(v.bit_width(), 0);
  EXPECT_EQ(v.to_string(), "0");
}

TEST(U512, FromU64) {
  u512 v = 42;
  EXPECT_FALSE(v.is_zero());
  EXPECT_EQ(v.low64(), 42U);
  EXPECT_EQ(v.to_string(), "42");
  EXPECT_EQ(v.to_hex(), "2a");
}

TEST(U512, AdditionWithCarryAcrossWords) {
  u512 v = ~std::uint64_t{0};  // 2^64 - 1
  v += 1;
  EXPECT_EQ(v.word(0), 0U);
  EXPECT_EQ(v.word(1), 1U);
  EXPECT_EQ(v.bit_width(), 65);
}

TEST(U512, SubtractionWithBorrowAcrossWords) {
  u512 v = u512::pow2(128);
  v -= 1;
  EXPECT_EQ(v.word(0), ~std::uint64_t{0});
  EXPECT_EQ(v.word(1), ~std::uint64_t{0});
  EXPECT_EQ(v.word(2), 0U);
  EXPECT_EQ(v.bit_width(), 128);
}

TEST(U512, WrapAroundSubtraction) {
  u512 v = 0;
  v -= 1;
  EXPECT_EQ(v, u512::max());
}

TEST(U512, WrapAroundAddition) {
  u512 v = u512::max();
  ++v;
  EXPECT_TRUE(v.is_zero());
}

TEST(U512, IncrementDecrement) {
  u512 v = 7;
  EXPECT_EQ((v++).low64(), 7U);
  EXPECT_EQ(v.low64(), 8U);
  EXPECT_EQ((++v).low64(), 9U);
  EXPECT_EQ((v--).low64(), 9U);
  EXPECT_EQ((--v).low64(), 7U);
}

TEST(U512, ShiftLeftAcrossWordBoundaries) {
  u512 v = 1;
  v <<= 200;
  EXPECT_TRUE(v.bit(200));
  EXPECT_EQ(v.popcount(), 1);
  EXPECT_EQ(v.bit_width(), 201);
}

TEST(U512, ShiftRoundTrip) {
  rng gen(99);
  for (int trial = 0; trial < 50; ++trial) {
    u512 v = gen.next();
    const int shift = static_cast<int>(gen.uniform(0, 447));
    EXPECT_EQ((v << shift) >> shift, v) << "shift=" << shift;
  }
}

TEST(U512, ShiftByWidthClearsValue) {
  u512 v = u512::max();
  EXPECT_TRUE((v << 512).is_zero());
  EXPECT_TRUE((v >> 512).is_zero());
}

TEST(U512, ShiftByZeroIsIdentity) {
  u512 v = u512::pow2(100) | u512(12345);
  EXPECT_EQ(v << 0, v);
  EXPECT_EQ(v >> 0, v);
}

TEST(U512, CompareAcrossWords) {
  EXPECT_LT(u512(5), u512(6));
  EXPECT_LT(u512::pow2(64) - 1, u512::pow2(64));
  EXPECT_LT(u512::pow2(100), u512::pow2(101));
  EXPECT_GT(u512::pow2(300), u512::max() >> 300);
  EXPECT_EQ(u512(7), u512(7));
}

TEST(U512, Pow2AndMask) {
  EXPECT_EQ(u512::pow2(0), u512::one());
  EXPECT_EQ(u512::pow2(10).to_string(), "1024");
  EXPECT_EQ(u512::mask(0), u512::zero());
  EXPECT_EQ(u512::mask(10), u512(1023));
  EXPECT_EQ(u512::mask(512), u512::max());
  EXPECT_THROW(u512::pow2(512), std::invalid_argument);
  EXPECT_THROW(u512::pow2(-1), std::invalid_argument);
  EXPECT_THROW(u512::mask(513), std::invalid_argument);
}

TEST(U512, BitManipulation) {
  u512 v;
  v.set_bit(300);
  EXPECT_TRUE(v.bit(300));
  EXPECT_FALSE(v.bit(299));
  v.set_bit(300, false);
  EXPECT_TRUE(v.is_zero());
  EXPECT_THROW(v.bit(512), std::invalid_argument);
  EXPECT_THROW(v.set_bit(-1), std::invalid_argument);
}

TEST(U512, BitwiseOps) {
  const u512 a = u512(0b1100) | u512::pow2(100);
  const u512 b = u512(0b1010) | u512::pow2(100);
  EXPECT_EQ((a & b).low64(), 0b1000U);
  EXPECT_TRUE((a & b).bit(100));
  EXPECT_EQ((a ^ b).low64(), 0b0110U);
  EXPECT_FALSE((a ^ b).bit(100));
  EXPECT_EQ((~u512::zero()), u512::max());
}

TEST(U512, MulU64) {
  EXPECT_EQ(u512(7).mul_u64(6).to_string(), "42");
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1.
  const u512 prod = u512(~std::uint64_t{0}).mul_u64(~std::uint64_t{0});
  EXPECT_EQ(prod, u512::pow2(128) - u512::pow2(65) + u512::one());
}

TEST(U512, DivU64) {
  std::uint64_t rem = 0;
  EXPECT_EQ(u512(100).div_u64(7, &rem).low64(), 14U);
  EXPECT_EQ(rem, 2U);
  EXPECT_THROW(u512(1).div_u64(0), std::invalid_argument);
}

TEST(U512, MulDivRoundTrip) {
  rng gen(7);
  for (int trial = 0; trial < 50; ++trial) {
    u512 v = gen.next();
    v <<= static_cast<int>(gen.uniform(0, 300));
    const std::uint64_t m = gen.uniform(1, 1'000'000'000);
    std::uint64_t rem = 1;
    EXPECT_EQ(v.mul_u64(m).div_u64(m, &rem), v);
    EXPECT_EQ(rem, 0U);
  }
}

TEST(U512, DecimalStringLarge) {
  // 2^128 = 340282366920938463463374607431768211456.
  EXPECT_EQ(u512::pow2(128).to_string(), "340282366920938463463374607431768211456");
}

TEST(U512, HexString) {
  EXPECT_EQ(u512::zero().to_hex(), "0");
  EXPECT_EQ(u512(255).to_hex(), "ff");
  EXPECT_EQ(u512::pow2(64).to_hex(), "10000000000000000");
}

TEST(U512, ToDouble) {
  EXPECT_DOUBLE_EQ(u512(1000).to_double(), 1000.0);
  EXPECT_DOUBLE_EQ(u512::pow2(100).to_double(), std::pow(2.0, 100));
}

TEST(U512, PopcountBitWidth) {
  u512 v = u512::mask(300);
  EXPECT_EQ(v.popcount(), 300);
  EXPECT_EQ(v.bit_width(), 300);
}

TEST(U512, HashDistinguishes) {
  std::unordered_set<u512> set;
  for (int i = 0; i < 1000; ++i) set.insert(u512::pow2(i % 512) + u512(static_cast<std::uint64_t>(i)));
  EXPECT_GT(set.size(), 990U);  // essentially all distinct
}

TEST(U512, CountrZero) {
  EXPECT_EQ(u512::zero().countr_zero(), 512);
  EXPECT_EQ(u512::one().countr_zero(), 0);
  EXPECT_EQ(u512(8).countr_zero(), 3);
  for (int i = 0; i < 512; i += 17) EXPECT_EQ(u512::pow2(i).countr_zero(), i) << i;
  // Low zeros are counted even when higher bits are set.
  EXPECT_EQ((u512::pow2(300) | u512::pow2(65)).countr_zero(), 65);
  EXPECT_EQ(u512::max().countr_zero(), 0);
}

TEST(U512, CountlZero) {
  EXPECT_EQ(u512::zero().countl_zero(), 512);
  EXPECT_EQ(u512::one().countl_zero(), 511);
  for (int i = 0; i < 512; i += 31) EXPECT_EQ(u512::pow2(i).countl_zero(), 511 - i) << i;
  EXPECT_EQ(u512::max().countl_zero(), 0);
}

TEST(U512, BitFloor) {
  EXPECT_TRUE(u512::zero().bit_floor().is_zero());
  EXPECT_EQ(u512::one().bit_floor(), u512::one());
  EXPECT_EQ(u512(5).bit_floor(), u512(4));
  EXPECT_EQ(u512::max().bit_floor(), u512::pow2(511));
  EXPECT_EQ((u512::pow2(200) + u512(12345)).bit_floor(), u512::pow2(200));
  for (int i = 0; i < 512; i += 13) EXPECT_EQ(u512::pow2(i).bit_floor(), u512::pow2(i)) << i;
}

TEST(U512, OrderingIsTotalOnRandomValues) {
  rng gen(123);
  for (int trial = 0; trial < 100; ++trial) {
    u512 a = gen.next();
    a <<= static_cast<int>(gen.uniform(0, 400));
    u512 b = gen.next();
    b <<= static_cast<int>(gen.uniform(0, 400));
    const bool lt = a < b;
    const bool gt = b < a;
    const bool eq = a == b;
    EXPECT_EQ(static_cast<int>(lt) + static_cast<int>(gt) + static_cast<int>(eq), 1);
    // Consistency with subtraction: a < b iff b - a != 0 and doesn't wrap.
    if (lt) EXPECT_FALSE((b - a).is_zero());
  }
}

}  // namespace
}  // namespace subcover
