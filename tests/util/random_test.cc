#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>
#include <stdexcept>

namespace subcover {
namespace {

TEST(Rng, Deterministic) {
  rng a(42);
  rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  rng a(1);
  rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRespectsBounds) {
  rng gen(7);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = gen.uniform(10, 20);
    EXPECT_GE(v, 10U);
    EXPECT_LE(v, 20U);
  }
}

TEST(Rng, UniformSingleton) {
  rng gen(7);
  EXPECT_EQ(gen.uniform(5, 5), 5U);
}

TEST(Rng, UniformFullRangeDoesNotHang) {
  rng gen(7);
  (void)gen.uniform(0, ~std::uint64_t{0});
}

TEST(Rng, UniformEmptyRangeThrows) {
  rng gen(7);
  EXPECT_THROW(gen.uniform(6, 5), std::invalid_argument);
}

TEST(Rng, UniformCoversRange) {
  rng gen(7);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 10'000; ++i) ++counts[gen.uniform(0, 9)];
  EXPECT_EQ(counts.size(), 10U);
  for (const auto& [v, c] : counts) {
    (void)v;
    EXPECT_GT(c, 700);  // ~1000 expected per bucket
    EXPECT_LT(c, 1300);
  }
}

TEST(Rng, Uniform01InRange) {
  rng gen(7);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = gen.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  rng gen(7);
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) hits += gen.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10'000.0, 0.3, 0.03);
}

TEST(Rng, BernoulliDegenerate) {
  rng gen(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(gen.bernoulli(0.0));
    EXPECT_TRUE(gen.bernoulli(1.0));
  }
}

TEST(Rng, IndexThrowsOnEmpty) {
  rng gen(7);
  EXPECT_THROW(gen.index(0), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  rng gen(7);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  gen.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(Zipf, UniformWhenExponentZero) {
  zipf_sampler z(10, 0.0);
  rng gen(7);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 20'000; ++i) ++counts[z.sample(gen)];
  for (const auto& [v, c] : counts) {
    (void)v;
    EXPECT_NEAR(c, 2000, 400);
  }
}

TEST(Zipf, SkewPrefersLowRanks) {
  zipf_sampler z(100, 1.2);
  rng gen(7);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20'000; ++i) ++counts[z.sample(gen)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20'000 / 10);  // rank 0 dominates
}

TEST(Zipf, InvalidArguments) {
  EXPECT_THROW(zipf_sampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(zipf_sampler(10, -0.1), std::invalid_argument);
}

TEST(Zipf, SamplesInRange) {
  zipf_sampler z(5, 2.0);
  rng gen(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(z.sample(gen), 5U);
}

}  // namespace
}  // namespace subcover
