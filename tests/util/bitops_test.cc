#include "util/bitops.h"

#include <gtest/gtest.h>

namespace subcover {
namespace {

TEST(BitLength, MatchesPaperExample) {
  // Paper Section 3.1: b(9) = 4.
  EXPECT_EQ(bit_length(9), 4);
}

TEST(BitLength, Zero) { EXPECT_EQ(bit_length(0), 0); }

TEST(BitLength, PowersOfTwo) {
  for (int i = 0; i < 64; ++i) EXPECT_EQ(bit_length(std::uint64_t{1} << i), i + 1) << i;
}

TEST(BitLength, AllOnes) {
  EXPECT_EQ(bit_length(1), 1);
  EXPECT_EQ(bit_length(3), 2);
  EXPECT_EQ(bit_length(7), 3);
  EXPECT_EQ(bit_length(~std::uint64_t{0}), 64);
}

TEST(BitAt, Basic) {
  EXPECT_TRUE(bit_at(0b1010, 1));
  EXPECT_FALSE(bit_at(0b1010, 0));
  EXPECT_TRUE(bit_at(0b1010, 3));
  EXPECT_FALSE(bit_at(0b1010, 4));
}

TEST(KeepBitsFrom, Basic) {
  // S_1(0b1011) = 0b1010.
  EXPECT_EQ(keep_bits_from(0b1011, 1), 0b1010U);
  EXPECT_EQ(keep_bits_from(0b1011, 0), 0b1011U);
  EXPECT_EQ(keep_bits_from(0b1011, 2), 0b1000U);
  EXPECT_EQ(keep_bits_from(0b1011, 4), 0U);
}

TEST(KeepBitsFrom, LargeShiftIsZero) {
  EXPECT_EQ(keep_bits_from(~std::uint64_t{0}, 64), 0U);
  EXPECT_EQ(keep_bits_from(~std::uint64_t{0}, 100), 0U);
}

TEST(TruncateToMsb, KeepsTopBits) {
  // t(x, m) keeps the m most significant bit POSITIONS (paper Section 3.1):
  // t(1011b, 2) keeps bits 3..2 -> 1000b; t(1011b, 3) keeps bits 3..1 -> 1010b.
  EXPECT_EQ(truncate_to_msb(0b1011, 2), 0b1000U);
  EXPECT_EQ(truncate_to_msb(0b1011, 3), 0b1010U);
  EXPECT_EQ(truncate_to_msb(0b1011, 1), 0b1000U);
}

TEST(TruncateToMsb, MoreBitsThanValueIsIdentity) {
  EXPECT_EQ(truncate_to_msb(0b1011, 4), 0b1011U);
  EXPECT_EQ(truncate_to_msb(0b1011, 10), 0b1011U);
}

TEST(TruncateToMsb, PaperChoiceOfM) {
  // The 257 example of Figure 2: t(257, 1) = 256.
  EXPECT_EQ(truncate_to_msb(257, 1), 256U);
  EXPECT_EQ(truncate_to_msb(257, 8), 256U);
  EXPECT_EQ(truncate_to_msb(257, 9), 257U);
}

TEST(FloorPow2, Basic) {
  EXPECT_EQ(floor_pow2(1), 1U);
  EXPECT_EQ(floor_pow2(2), 2U);
  EXPECT_EQ(floor_pow2(3), 2U);
  EXPECT_EQ(floor_pow2(255), 128U);
  EXPECT_EQ(floor_pow2(256), 256U);
}

TEST(IsPow2, Basic) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(1023));
}

TEST(CeilLog2, Basic) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1 << 20), 20);
  EXPECT_EQ(ceil_log2((1 << 20) + 1), 21);
}

TEST(TrailingZeros, Basic) {
  EXPECT_EQ(trailing_zeros(1), 0);
  EXPECT_EQ(trailing_zeros(8), 3);
  EXPECT_EQ(trailing_zeros(0), 64);
  EXPECT_EQ(trailing_zeros(0b1011000), 3);
}

// Property: t(x, m) <= x < t(x, m) + 2^(b(x)-m) for m < b(x) — the error
// bound Lemma 3.2's proof relies on.
TEST(TruncateToMsb, ErrorBoundProperty) {
  for (std::uint64_t x : {3ULL, 9ULL, 100ULL, 257ULL, 1023ULL, 65535ULL, 123456789ULL}) {
    for (int m = 1; m < bit_length(x); ++m) {
      const auto t = truncate_to_msb(x, m);
      EXPECT_LE(t, x);
      EXPECT_LT(x, t + (std::uint64_t{1} << (bit_length(x) - m)));
    }
  }
}

}  // namespace
}  // namespace subcover
