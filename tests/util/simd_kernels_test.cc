// Property tests pinning every SIMD kernel backend byte-identical to the
// scalar reference (util/simd_kernels.h's exactness contract).
//
// Each kernel is driven over an adversarial input family — empty columns,
// a single lane, odd lengths hitting every tail remainder of both vector
// widths (n mod 4 for the 2-lane SSE tier, n mod 8 for the u32 lanes),
// duplicate keys, all-equal columns, and random columns with planted
// structure — and all three backends must return the same bytes. On a
// non-AVX2 (or non-x86) host the vector backends forward to scalar, so the
// assertions stay meaningful everywhere and the dispatch entry points are
// covered by construction.

#include "util/simd_kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/cpu_features.h"
#include "util/random.h"

namespace subcover {
namespace {

using simd_u64 = std::vector<std::uint64_t>;

// Lengths covering every vector-width modulus: 0..17 hits n mod 4 and n mod 8
// at every phase plus multi-block bodies; the larger sizes exercise long
// vector runs with tails.
const std::size_t kLengths[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                                14, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 257};

simd_u64 random_column(rng& r, std::size_t n, std::uint64_t span) {
  simd_u64 v(n);
  for (auto& x : v) x = span == 0 ? r.next() : r.uniform(0, span);
  return v;
}

TEST(SimdKernels, ReductionsMatchScalarOnAdversarialColumns) {
  rng r(1);
  for (const std::size_t n : kLengths) {
    for (const std::uint64_t span : {std::uint64_t{0}, std::uint64_t{3}}) {
      simd_u64 v = random_column(r, n, span);
      // Plant extremes mid-column so the winner is not in a tail lane.
      if (n > 2) {
        v[n / 2] = ~std::uint64_t{0};
        v[n / 3] = 0;
      }
      EXPECT_EQ(simd::scalar::min_u64(v.data(), n), simd::sse42::min_u64(v.data(), n));
      EXPECT_EQ(simd::scalar::min_u64(v.data(), n), simd::avx2::min_u64(v.data(), n));
      EXPECT_EQ(simd::scalar::max_u64(v.data(), n), simd::sse42::max_u64(v.data(), n));
      EXPECT_EQ(simd::scalar::max_u64(v.data(), n), simd::avx2::max_u64(v.data(), n));
      EXPECT_EQ(simd::scalar::sum_u64(v.data(), n), simd::sse42::sum_u64(v.data(), n));
      EXPECT_EQ(simd::scalar::sum_u64(v.data(), n), simd::avx2::sum_u64(v.data(), n));
      EXPECT_EQ(simd::scalar::min_u64(v.data(), n), simd::min_u64(v.data(), n));
    }
  }
  // Empty-column identities.
  EXPECT_EQ(simd::min_u64(nullptr, 0), ~std::uint64_t{0});
  EXPECT_EQ(simd::max_u64(nullptr, 0), std::uint64_t{0});
  EXPECT_EQ(simd::sum_u64(nullptr, 0), std::uint64_t{0});
}

TEST(SimdKernels, PrefixSumMatchesScalarIncludingWraparound) {
  rng r(2);
  for (const std::size_t n : kLengths) {
    simd_u64 v = random_column(r, n, 0);  // full-width values force mod-2^64 wraps
    simd_u64 a(n), b(n), c(n);
    simd::scalar::prefix_sum_u64(v.data(), a.data(), n);
    simd::sse42::prefix_sum_u64(v.data(), b.data(), n);
    simd::avx2::prefix_sum_u64(v.data(), c.data(), n);
    EXPECT_EQ(a, b) << "n=" << n;
    EXPECT_EQ(a, c) << "n=" << n;
    // In-place form.
    simd_u64 d = v;
    simd::prefix_sum_u64(d.data(), d.data(), n);
    EXPECT_EQ(a, d) << "n=" << n;
  }
}

TEST(SimdKernels, SubMatchesScalar) {
  rng r(3);
  for (const std::size_t n : kLengths) {
    simd_u64 a = random_column(r, n, 0);
    simd_u64 b = random_column(r, n, 0);
    simd_u64 x(n), y(n), z(n);
    simd::scalar::sub_u64(a.data(), b.data(), x.data(), n);
    simd::sse42::sub_u64(a.data(), b.data(), y.data(), n);
    simd::avx2::sub_u64(a.data(), b.data(), z.data(), n);
    EXPECT_EQ(x, y);
    EXPECT_EQ(x, z);
  }
}

TEST(SimdKernels, SuffixMinMaskedMatchesScalarAtEveryFloor) {
  rng r(4);
  for (const std::size_t n : kLengths) {
    std::vector<std::uint32_t> rank(n);
    for (auto& x : rank) x = static_cast<std::uint32_t>(r.uniform(0, n + 4));
    // All-equal ranks are a worst case for the masking blend.
    std::vector<std::uint32_t> equal(n, 7);
    for (const auto* col : {&rank, &equal}) {
      for (const std::uint32_t floor :
           {std::uint32_t{0}, std::uint32_t{1}, std::uint32_t{3},
            static_cast<std::uint32_t>(n), ~std::uint32_t{0}}) {
        std::vector<std::uint32_t> a(n), b(n), c(n);
        simd::scalar::suffix_min_masked_u32(col->data(), n, floor, a.data());
        simd::sse42::suffix_min_masked_u32(col->data(), n, floor, b.data());
        simd::avx2::suffix_min_masked_u32(col->data(), n, floor, c.data());
        EXPECT_EQ(a, b) << "n=" << n << " floor=" << floor;
        EXPECT_EQ(a, c) << "n=" << n << " floor=" << floor;
      }
    }
  }
}

TEST(SimdKernels, LowerBoundMatchesStdOnDuplicateHeavyColumns) {
  rng r(5);
  for (const std::size_t n : kLengths) {
    // span 7 forces long duplicate runs; span 0 gives distinct keys.
    for (const std::uint64_t span : {std::uint64_t{7}, std::uint64_t{0}}) {
      simd_u64 keys = random_column(r, n, span);
      std::sort(keys.begin(), keys.end());
      simd_u64 probes = {0, 1, ~std::uint64_t{0}};
      if (n > 0) {
        probes.push_back(keys.front());
        probes.push_back(keys.back());
        probes.push_back(keys[n / 2]);
        probes.push_back(keys[n / 2] + 1);
      }
      for (const std::uint64_t key : probes) {
        const auto expect = static_cast<std::size_t>(
            std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
        EXPECT_EQ(simd::scalar::lower_bound_u64(keys.data(), n, key), expect);
        EXPECT_EQ(simd::sse42::lower_bound_u64(keys.data(), n, key), expect);
        EXPECT_EQ(simd::avx2::lower_bound_u64(keys.data(), n, key), expect);
      }
    }
  }
}

TEST(SimdKernels, LowerBoundKvMatchesPairwiseReference) {
  rng r(6);
  for (const std::size_t n : kLengths) {
    // Interleaved {key, payload} pairs sorted by key, duplicate-heavy.
    simd_u64 keys = random_column(r, n, 5);
    std::sort(keys.begin(), keys.end());
    simd_u64 words(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      words[2 * i] = keys[i];
      words[2 * i + 1] = r.next();  // payloads must never affect the bound
    }
    for (std::uint64_t key = 0; key <= 6; ++key) {
      const auto expect = static_cast<std::size_t>(
          std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
      EXPECT_EQ(simd::scalar::lower_bound_kv_u64(words.data(), 0, n, key), expect);
      EXPECT_EQ(simd::sse42::lower_bound_kv_u64(words.data(), 0, n, key), expect);
      EXPECT_EQ(simd::avx2::lower_bound_kv_u64(words.data(), 0, n, key), expect);
      // Windowed form: the answer clamps to the window like std::lower_bound
      // over [first, last).
      if (n >= 4) {
        const auto win = static_cast<std::size_t>(
            std::lower_bound(keys.begin() + 1, keys.end() - 1, key) - keys.begin());
        EXPECT_EQ(simd::lower_bound_kv_u64(words.data(), 1, n - 1, key), win);
      }
    }
  }
}

TEST(SimdKernels, FirstGeqU64MatchesScalarOnUnsortedColumns) {
  rng r(7);
  for (const std::size_t n : kLengths) {
    simd_u64 v = random_column(r, n, 15);  // duplicates + no ordering
    for (const std::uint64_t key : {std::uint64_t{0}, std::uint64_t{8}, std::uint64_t{15},
                                    std::uint64_t{16}, ~std::uint64_t{0}}) {
      for (std::size_t begin = 0; begin <= n; begin += n > 6 ? 3 : 1) {
        const std::size_t expect = simd::scalar::first_geq_u64(v.data(), begin, n, key);
        EXPECT_EQ(simd::sse42::first_geq_u64(v.data(), begin, n, key), expect);
        EXPECT_EQ(simd::avx2::first_geq_u64(v.data(), begin, n, key), expect);
      }
    }
  }
}

TEST(SimdKernels, FirstGeqU128ComparesBothWords) {
  rng r(8);
  for (const std::size_t n : kLengths) {
    std::vector<u128> v(n);
    for (auto& x : v) {
      // Low span on both words so high-word ties force the low-word compare.
      x = (u128(r.uniform(0, 3)) << 64) | r.uniform(0, 3);
    }
    std::vector<u128> probes = {0, 1, (u128(1) << 64) | 2, (u128(2) << 64),
                                (u128(3) << 64) | 3, ~u128(0)};
    for (const u128 key : probes) {
      for (std::size_t begin = 0; begin <= n; begin += n > 6 ? 3 : 1) {
        const std::size_t expect = simd::scalar::first_geq_u128(v.data(), begin, n, key);
        EXPECT_EQ(simd::sse42::first_geq_u128(v.data(), begin, n, key), expect);
        EXPECT_EQ(simd::avx2::first_geq_u128(v.data(), begin, n, key), expect);
      }
    }
  }
}

TEST(SimdKernels, ContainedMaskMatchesScalar) {
  rng r(9);
  for (const std::size_t n : kLengths) {
    simd_u64 lo(n), hi(n);
    for (std::size_t i = 0; i < n; ++i) {
      lo[i] = r.uniform(0, 100);
      hi[i] = lo[i] + r.uniform(0, 20);
    }
    for (const auto& [qlo, qhi] :
         {std::pair<std::uint64_t, std::uint64_t>{0, ~std::uint64_t{0}},
          {10, 90},
          {50, 50},
          {90, 10}}) {  // inverted query: nothing contained
      std::vector<std::uint8_t> a(n), b(n), c(n);
      simd::scalar::contained_mask_u64(lo.data(), hi.data(), n, qlo, qhi, a.data());
      simd::sse42::contained_mask_u64(lo.data(), hi.data(), n, qlo, qhi, b.data());
      simd::avx2::contained_mask_u64(lo.data(), hi.data(), n, qlo, qhi, c.data());
      EXPECT_EQ(a, b);
      EXPECT_EQ(a, c);
    }
  }
}

TEST(SimdKernels, HeadRankScanAgreesWithProbeOrderArgbest) {
  rng r(10);
  for (const std::size_t n : kLengths) {
    if (n == 0) continue;  // the kernel requires n > 0
    // Few distinct extents force extent ties decided by lo; distinct lows
    // mirror the merged frontier's invariant, but duplicate lows are also
    // exercised (keep-first tie-break must still agree).
    for (const bool dup_lo : {false, true}) {
      simd_u64 ext(n), lo(n);
      for (std::size_t i = 0; i < n; ++i) {
        ext[i] = r.uniform(0, 2);
        lo[i] = dup_lo ? r.uniform(0, 2) : i * 1000 + r.uniform(0, 999);
      }
      const std::size_t expect = simd::scalar::head_rank_scan_u64(ext.data(), lo.data(), n);
      EXPECT_EQ(simd::sse42::head_rank_scan_u64(ext.data(), lo.data(), n), expect);
      EXPECT_EQ(simd::avx2::head_rank_scan_u64(ext.data(), lo.data(), n), expect);
      // Cross-check the reference against the literal probes_before loop.
      std::size_t best = 0;
      for (std::size_t i = 1; i < n; ++i) {
        if (ext[i] > ext[best] || (ext[i] == ext[best] && lo[i] < lo[best])) best = i;
      }
      EXPECT_EQ(expect, best);
    }
  }
}

TEST(SimdKernels, CoalesceCubesMatchesScalarOnClusteredAndScatteredLows) {
  rng r(11);
  const std::uint64_t cube = 16;
  for (const std::size_t n : kLengths) {
    if (n == 0) continue;  // the kernel requires n > 0
    for (const double adjacency : {0.0, 0.5, 1.0}) {
      simd_u64 lo(n);
      std::uint64_t next = 0;
      for (std::size_t i = 0; i < n; ++i) {
        lo[i] = next;
        // Either chain (gap == cube) or jump — aligned either way.
        next += r.bernoulli(adjacency) ? cube : cube * (2 + r.uniform(0, 3));
      }
      simd_u64 alo(n), ahi(n), blo(n), bhi(n), clo(n), chi(n);
      const std::size_t am = simd::scalar::coalesce_cubes_u64(lo.data(), n, cube, alo.data(), ahi.data());
      const std::size_t bm = simd::sse42::coalesce_cubes_u64(lo.data(), n, cube, blo.data(), bhi.data());
      const std::size_t cm = simd::avx2::coalesce_cubes_u64(lo.data(), n, cube, clo.data(), chi.data());
      ASSERT_EQ(am, bm);
      ASSERT_EQ(am, cm);
      for (std::size_t i = 0; i < am; ++i) {
        EXPECT_EQ(alo[i], blo[i]);
        EXPECT_EQ(ahi[i], bhi[i]);
        EXPECT_EQ(alo[i], clo[i]);
        EXPECT_EQ(ahi[i], chi[i]);
      }
      // Reference semantics: runs partition the cubes, ends are cube ends.
      std::uint64_t covered = 0;
      for (std::size_t i = 0; i < am; ++i) {
        ASSERT_LE(alo[i], ahi[i]);
        covered += (ahi[i] - alo[i] + 1) / cube;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(SimdKernels, DispatchReportsAConsistentLevel) {
  const cpu_features_t& f = cpu_features();
  // force_scalar (the env hatch) must pin everything scalar.
  if (f.force_scalar) {
    EXPECT_EQ(f.simd, simd_level::scalar);
    EXPECT_FALSE(f.bmi2);
  }
  EXPECT_STREQ(simd_level_name(simd_level::scalar), "scalar");
  EXPECT_STREQ(simd_level_name(simd_level::sse42), "sse4.2");
  EXPECT_STREQ(simd_level_name(simd_level::avx2), "avx2");
}

}  // namespace
}  // namespace subcover
