#include "util/table.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace subcover {
namespace {

TEST(AsciiTable, RendersHeadersAndRows) {
  ascii_table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("| alpha"), std::string::npos);
  EXPECT_NE(s.find("| 22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2U);
}

TEST(AsciiTable, ColumnWidthsAdapt) {
  ascii_table t({"h"});
  t.add_row({"longvalue"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("| longvalue |"), std::string::npos);
}

TEST(AsciiTable, RejectsMismatchedRow) {
  ascii_table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(AsciiTable, RejectsEmptyHeaders) {
  EXPECT_THROW(ascii_table({}), std::invalid_argument);
}

TEST(AsciiTable, Csv) {
  ascii_table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Formatters, Double) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.0, 0), "3");
}

TEST(Formatters, Sci) { EXPECT_EQ(fmt_sci(12345.0, 2), "1.23e+04"); }

TEST(Formatters, U64ThousandsSeparators) {
  EXPECT_EQ(fmt_u64(0), "0");
  EXPECT_EQ(fmt_u64(999), "999");
  EXPECT_EQ(fmt_u64(1000), "1,000");
  EXPECT_EQ(fmt_u64(1234567), "1,234,567");
  EXPECT_EQ(fmt_u64(1000000000), "1,000,000,000");
}

TEST(Formatters, Percent) { EXPECT_EQ(fmt_percent(0.123456, 2), "12.35%"); }

TEST(Formatters, Ratio) { EXPECT_EQ(fmt_ratio(12.3456), "12.35x"); }

}  // namespace
}  // namespace subcover
