#include <gtest/gtest.h>

#include "pubsub/matching.h"
#include "util/bitops.h"
#include "workload/event_gen.h"
#include "workload/rect_gen.h"
#include "workload/subscription_gen.h"

namespace subcover {
namespace {

TEST(RectGen, RandomExtremalRespectsProfile) {
  const universe u(4, 10);
  rng gen(1);
  for (int trial = 0; trial < 100; ++trial) {
    const auto r = workload::random_extremal(gen, u, 4, 3);
    EXPECT_EQ(bit_length(r.length(0)), 4);
    EXPECT_EQ(bit_length(r.length(3)), 7);
    EXPECT_EQ(r.min_side_bits(), 4);
    EXPECT_EQ(r.max_side_bits(), 7);
    EXPECT_EQ(r.aspect_ratio(), 3);
  }
}

TEST(RectGen, AlphaZeroAllSidesSameBitLength) {
  const universe u(3, 8);
  rng gen(2);
  for (int trial = 0; trial < 50; ++trial) {
    const auto r = workload::random_extremal(gen, u, 5, 0);
    EXPECT_EQ(r.aspect_ratio(), 0);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(bit_length(r.length(i)), 5);
  }
}

TEST(RectGen, RejectsBadProfile) {
  const universe u(2, 8);
  rng gen(3);
  EXPECT_THROW(workload::random_extremal(gen, u, 0, 0), std::invalid_argument);
  EXPECT_THROW(workload::random_extremal(gen, u, 6, 3), std::invalid_argument);
  EXPECT_THROW(workload::worst_case_extremal(u, 4, 2, 0), std::invalid_argument);
}

TEST(RectGen, WorstCaseTopBitsAllOnes) {
  const universe u(3, 10);
  const auto r = workload::worst_case_extremal(u, 5, 2, 3);
  // dim 0: b=5, top 3 bits ones: 11100b = 28.
  EXPECT_EQ(r.length(0), 0b11100U);
  // dims 1, 2: b=7, top 3 bits ones: 1110000b = 112.
  EXPECT_EQ(r.length(1), 0b1110000U);
  EXPECT_EQ(r.length(2), 0b1110000U);
}

TEST(RectGen, WorstCaseMLargerThanGamma) {
  const universe u(2, 10);
  const auto r = workload::worst_case_extremal(u, 3, 0, 8);
  EXPECT_EQ(r.length(0), 7U);  // all 3 bits set
}

TEST(RectGen, AdversarialShape) {
  const universe u(3, 10);
  const auto r = workload::adversarial_extremal(u, 4, 2);
  EXPECT_EQ(r.length(0), 63U);  // 2^(4+2) - 1
  EXPECT_EQ(r.length(1), 63U);
  EXPECT_EQ(r.length(2), 15U);  // shortest side on the last dimension
  EXPECT_EQ(r.aspect_ratio(), 2);
}

TEST(RectGen, RandomRectInsideUniverse) {
  const universe u(3, 6);
  rng gen(4);
  for (int trial = 0; trial < 100; ++trial) {
    const auto r = workload::random_rect(gen, u, 16);
    EXPECT_TRUE(rect::whole(u).contains(r));
    for (int i = 0; i < 3; ++i) EXPECT_LE(r.side(i), 16U);
  }
}

TEST(SubscriptionGen, ProducesValidSubscriptions) {
  for (const auto kind : {workload::workload_kind::uniform, workload::workload_kind::clustered,
                          workload::workload_kind::zipf}) {
    const schema s = workload::make_uniform_schema(3, 10);
    workload::subscription_gen_options o;
    o.kind = kind;
    workload::subscription_gen gen(s, o, 5);
    for (int i = 0; i < 200; ++i) {
      const auto sub = gen.next();  // constructor validates ranges
      EXPECT_EQ(sub.attribute_count(), 3);
    }
  }
}

TEST(SubscriptionGen, WildcardProbability) {
  const schema s = workload::make_uniform_schema(1, 10);
  workload::subscription_gen_options o;
  o.wildcard_prob = 1.0;
  workload::subscription_gen gen(s, o, 6);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(gen.next(), subscription::match_all(s));
}

TEST(SubscriptionGen, ClusteredProducesMoreCoveringThanUniform) {
  // The clustered workload exists to create covering-rich sets; verify the
  // covering-pair density exceeds the uniform workload's.
  const schema s = workload::make_uniform_schema(2, 10);
  auto count_covering = [&](workload::workload_kind kind, std::uint64_t seed) {
    workload::subscription_gen_options o;
    o.kind = kind;
    o.clusters = 4;
    workload::subscription_gen gen(s, o, seed);
    std::vector<subscription> subs;
    for (int i = 0; i < 150; ++i) subs.push_back(gen.next());
    int pairs = 0;
    for (const auto& a : subs)
      for (const auto& b : subs)
        if (&a != &b && a.covers(b)) ++pairs;
    return pairs;
  };
  EXPECT_GT(count_covering(workload::workload_kind::clustered, 7),
            count_covering(workload::workload_kind::uniform, 7));
}

TEST(SubscriptionGen, CategoricalConstraintsAreEqualities) {
  const schema s = workload::make_stock_schema();
  workload::subscription_gen_options o;
  o.wildcard_prob = 0.0;
  workload::subscription_gen gen(s, o, 8);
  for (int i = 0; i < 100; ++i) {
    const auto sub = gen.next();
    EXPECT_EQ(sub.range(0).lo, sub.range(0).hi);
    EXPECT_LT(sub.range(0).hi, s.attribute(0).labels.size());
  }
}

TEST(SubscriptionGen, InvalidOptionsThrow) {
  const schema s = workload::make_uniform_schema(1, 8);
  workload::subscription_gen_options o;
  o.mean_width = 0.0;
  EXPECT_THROW(workload::subscription_gen(s, o, 1), std::invalid_argument);
  o = {};
  o.wildcard_prob = 1.5;
  EXPECT_THROW(workload::subscription_gen(s, o, 1), std::invalid_argument);
  o = {};
  o.kind = workload::workload_kind::clustered;
  o.clusters = 0;
  EXPECT_THROW(workload::subscription_gen(s, o, 1), std::invalid_argument);
}

TEST(EventGen, UniformEventsAreValid) {
  const schema s = workload::make_stock_schema();
  workload::event_gen gen(s, 9);
  for (int i = 0; i < 200; ++i) {
    const auto e = gen.next();
    EXPECT_EQ(e.attribute_count(), 3);
    // Categorical values stay within the label dictionary.
    EXPECT_LT(e.value(0), s.attribute(0).labels.size());
  }
}

TEST(EventGen, MatchingEventsMatch) {
  const schema s = workload::make_uniform_schema(3, 10);
  workload::subscription_gen subs(s, {}, 10);
  workload::event_gen events(s, 11);
  for (int i = 0; i < 100; ++i) {
    const auto sub = subs.next();
    EXPECT_TRUE(matches(sub, events.next_matching(sub)));
  }
}

TEST(Schemas, PrefabSchemasAreValid) {
  EXPECT_EQ(workload::make_stock_schema().attribute_count(), 3);
  EXPECT_EQ(workload::make_sensor_schema().attribute_count(), 4);
  EXPECT_EQ(workload::make_uniform_schema(5, 12).attribute_count(), 5);
  // Dominance universes are well-formed.
  EXPECT_EQ(workload::make_sensor_schema().dominance_universe().dims(), 8);
}

}  // namespace
}  // namespace subcover
