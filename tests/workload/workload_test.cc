#include <gtest/gtest.h>

#include <set>

#include "pubsub/matching.h"
#include "util/bitops.h"
#include "workload/churn_gen.h"
#include "workload/event_gen.h"
#include "workload/rect_gen.h"
#include "workload/subscription_gen.h"

namespace subcover {
namespace {

TEST(RectGen, RandomExtremalRespectsProfile) {
  const universe u(4, 10);
  rng gen(1);
  for (int trial = 0; trial < 100; ++trial) {
    const auto r = workload::random_extremal(gen, u, 4, 3);
    EXPECT_EQ(bit_length(r.length(0)), 4);
    EXPECT_EQ(bit_length(r.length(3)), 7);
    EXPECT_EQ(r.min_side_bits(), 4);
    EXPECT_EQ(r.max_side_bits(), 7);
    EXPECT_EQ(r.aspect_ratio(), 3);
  }
}

TEST(RectGen, AlphaZeroAllSidesSameBitLength) {
  const universe u(3, 8);
  rng gen(2);
  for (int trial = 0; trial < 50; ++trial) {
    const auto r = workload::random_extremal(gen, u, 5, 0);
    EXPECT_EQ(r.aspect_ratio(), 0);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(bit_length(r.length(i)), 5);
  }
}

TEST(RectGen, RejectsBadProfile) {
  const universe u(2, 8);
  rng gen(3);
  EXPECT_THROW(workload::random_extremal(gen, u, 0, 0), std::invalid_argument);
  EXPECT_THROW(workload::random_extremal(gen, u, 6, 3), std::invalid_argument);
  EXPECT_THROW(workload::worst_case_extremal(u, 4, 2, 0), std::invalid_argument);
}

TEST(RectGen, WorstCaseTopBitsAllOnes) {
  const universe u(3, 10);
  const auto r = workload::worst_case_extremal(u, 5, 2, 3);
  // dim 0: b=5, top 3 bits ones: 11100b = 28.
  EXPECT_EQ(r.length(0), 0b11100U);
  // dims 1, 2: b=7, top 3 bits ones: 1110000b = 112.
  EXPECT_EQ(r.length(1), 0b1110000U);
  EXPECT_EQ(r.length(2), 0b1110000U);
}

TEST(RectGen, WorstCaseMLargerThanGamma) {
  const universe u(2, 10);
  const auto r = workload::worst_case_extremal(u, 3, 0, 8);
  EXPECT_EQ(r.length(0), 7U);  // all 3 bits set
}

TEST(RectGen, AdversarialShape) {
  const universe u(3, 10);
  const auto r = workload::adversarial_extremal(u, 4, 2);
  EXPECT_EQ(r.length(0), 63U);  // 2^(4+2) - 1
  EXPECT_EQ(r.length(1), 63U);
  EXPECT_EQ(r.length(2), 15U);  // shortest side on the last dimension
  EXPECT_EQ(r.aspect_ratio(), 2);
}

TEST(RectGen, RandomRectInsideUniverse) {
  const universe u(3, 6);
  rng gen(4);
  for (int trial = 0; trial < 100; ++trial) {
    const auto r = workload::random_rect(gen, u, 16);
    EXPECT_TRUE(rect::whole(u).contains(r));
    for (int i = 0; i < 3; ++i) EXPECT_LE(r.side(i), 16U);
  }
}

TEST(SubscriptionGen, ProducesValidSubscriptions) {
  for (const auto kind : {workload::workload_kind::uniform, workload::workload_kind::clustered,
                          workload::workload_kind::zipf}) {
    const schema s = workload::make_uniform_schema(3, 10);
    workload::subscription_gen_options o;
    o.kind = kind;
    workload::subscription_gen gen(s, o, 5);
    for (int i = 0; i < 200; ++i) {
      const auto sub = gen.next();  // constructor validates ranges
      EXPECT_EQ(sub.attribute_count(), 3);
    }
  }
}

TEST(SubscriptionGen, WildcardProbability) {
  const schema s = workload::make_uniform_schema(1, 10);
  workload::subscription_gen_options o;
  o.wildcard_prob = 1.0;
  workload::subscription_gen gen(s, o, 6);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(gen.next(), subscription::match_all(s));
}

TEST(SubscriptionGen, ClusteredProducesMoreCoveringThanUniform) {
  // The clustered workload exists to create covering-rich sets; verify the
  // covering-pair density exceeds the uniform workload's.
  const schema s = workload::make_uniform_schema(2, 10);
  auto count_covering = [&](workload::workload_kind kind, std::uint64_t seed) {
    workload::subscription_gen_options o;
    o.kind = kind;
    o.clusters = 4;
    workload::subscription_gen gen(s, o, seed);
    std::vector<subscription> subs;
    for (int i = 0; i < 150; ++i) subs.push_back(gen.next());
    int pairs = 0;
    for (const auto& a : subs)
      for (const auto& b : subs)
        if (&a != &b && a.covers(b)) ++pairs;
    return pairs;
  };
  EXPECT_GT(count_covering(workload::workload_kind::clustered, 7),
            count_covering(workload::workload_kind::uniform, 7));
}

TEST(SubscriptionGen, CategoricalConstraintsAreEqualities) {
  const schema s = workload::make_stock_schema();
  workload::subscription_gen_options o;
  o.wildcard_prob = 0.0;
  workload::subscription_gen gen(s, o, 8);
  for (int i = 0; i < 100; ++i) {
    const auto sub = gen.next();
    EXPECT_EQ(sub.range(0).lo, sub.range(0).hi);
    EXPECT_LT(sub.range(0).hi, s.attribute(0).labels.size());
  }
}

TEST(SubscriptionGen, InvalidOptionsThrow) {
  const schema s = workload::make_uniform_schema(1, 8);
  workload::subscription_gen_options o;
  o.mean_width = 0.0;
  EXPECT_THROW(workload::subscription_gen(s, o, 1), std::invalid_argument);
  o = {};
  o.wildcard_prob = 1.5;
  EXPECT_THROW(workload::subscription_gen(s, o, 1), std::invalid_argument);
  o = {};
  o.kind = workload::workload_kind::clustered;
  o.clusters = 0;
  EXPECT_THROW(workload::subscription_gen(s, o, 1), std::invalid_argument);
}

TEST(EventGen, UniformEventsAreValid) {
  const schema s = workload::make_stock_schema();
  workload::event_gen gen(s, 9);
  for (int i = 0; i < 200; ++i) {
    const auto e = gen.next();
    EXPECT_EQ(e.attribute_count(), 3);
    // Categorical values stay within the label dictionary.
    EXPECT_LT(e.value(0), s.attribute(0).labels.size());
  }
}

TEST(EventGen, MatchingEventsMatch) {
  const schema s = workload::make_uniform_schema(3, 10);
  workload::subscription_gen subs(s, {}, 10);
  workload::event_gen events(s, 11);
  for (int i = 0; i < 100; ++i) {
    const auto sub = subs.next();
    EXPECT_TRUE(matches(sub, events.next_matching(sub)));
  }
}

TEST(ChurnGen, GoldenStreamIsDeterministic) {
  // A stream is reproducible from (schema, options, seed) alone: two
  // generators built alike emit byte-identical op sequences — the contract
  // the soak test and the churn benchmarks rest on.
  const schema s = workload::make_uniform_schema(3, 10);
  workload::churn_gen_options o;
  o.flash_prob = 0.05;
  o.flash_len = 8;
  o.warmup_subscriptions = 20;
  o.publish_weight = 0.2;
  workload::churn_gen a(s, o, 99);
  workload::churn_gen b(s, o, 99);
  for (int i = 0; i < 2000; ++i) {
    const auto x = a.next();
    const auto y = b.next();
    ASSERT_EQ(x.kind, y.kind) << "op " << i;
    EXPECT_EQ(x.id, y.id);
    if (x.kind == workload::churn_op::op_kind::subscribe) {
      EXPECT_EQ(x.sub, y.sub);
    }
    if (x.kind == workload::churn_op::op_kind::publish) {
      for (int d = 0; d < x.ev.attribute_count(); ++d)
        EXPECT_EQ(x.ev.value(d), y.ev.value(d));
    }
  }
  EXPECT_EQ(a.live(), b.live());
  EXPECT_EQ(a.ops_emitted(), b.ops_emitted());
  // A different seed must diverge within the first post-warmup ops.
  workload::churn_gen c(s, o, 100);
  bool diverged = false;
  workload::churn_gen a2(s, o, 99);
  for (int i = 0; i < 100 && !diverged; ++i) {
    const auto x = a2.next();
    const auto y = c.next();
    diverged = x.kind != y.kind || x.id != y.id ||
               (x.kind == workload::churn_op::op_kind::subscribe && !(x.sub == y.sub));
  }
  EXPECT_TRUE(diverged);
}

TEST(ChurnGen, StreamIsSelfConsistent) {
  // Ids are never reused, unsubscribes always target a live id, and the
  // generator's live() count tracks the implied set exactly.
  const schema s = workload::make_uniform_schema(2, 8);
  workload::churn_gen_options o;
  o.flash_prob = 0.02;
  o.flash_len = 16;
  o.warmup_subscriptions = 50;
  o.victim_skew = 2.0;
  workload::churn_gen gen(s, o, 7);
  std::set<std::uint64_t> live;
  std::set<std::uint64_t> ever;
  int unsubs = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto op = gen.next();
    switch (op.kind) {
      case workload::churn_op::op_kind::subscribe:
        EXPECT_TRUE(ever.insert(op.id).second) << "id reused";
        live.insert(op.id);
        break;
      case workload::churn_op::op_kind::unsubscribe:
        EXPECT_EQ(live.erase(op.id), 1U) << "unsubscribe of a dead id";
        ++unsubs;
        break;
      case workload::churn_op::op_kind::publish:
        break;
    }
    ASSERT_EQ(gen.live(), live.size());
  }
  EXPECT_GT(unsubs, 0);
  EXPECT_EQ(gen.ops_emitted(), 5000U);
}

TEST(ChurnGen, WarmupIsAllSubscribes) {
  const schema s = workload::make_uniform_schema(2, 8);
  workload::churn_gen_options o;
  o.warmup_subscriptions = 100;
  o.flash_prob = 0.5;  // must not fire during warmup
  workload::churn_gen gen(s, o, 3);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(gen.next().kind, workload::churn_op::op_kind::subscribe);
  EXPECT_EQ(gen.live(), 100U);
}

TEST(ChurnGen, FlashBurstsAreAtomic) {
  // With flash_prob 1 every draw opens a burst: flash_len clustered
  // subscribes followed by their own unsubscribes, in order, leaving the
  // live set empty after each burst.
  const schema s = workload::make_uniform_schema(2, 8);
  workload::churn_gen_options o;
  o.flash_prob = 1.0;
  o.flash_len = 4;
  workload::churn_gen gen(s, o, 5);
  for (int burst = 0; burst < 20; ++burst) {
    std::vector<std::uint64_t> ids;
    for (std::size_t i = 0; i < o.flash_len; ++i) {
      const auto op = gen.next();
      ASSERT_EQ(op.kind, workload::churn_op::op_kind::subscribe);
      ids.push_back(op.id);
    }
    for (std::size_t i = 0; i < o.flash_len; ++i) {
      const auto op = gen.next();
      ASSERT_EQ(op.kind, workload::churn_op::op_kind::unsubscribe);
      EXPECT_EQ(op.id, ids[i]);
    }
    EXPECT_EQ(gen.live(), 0U);
  }
}

TEST(ChurnGen, InvalidOptionsThrow) {
  const schema s = workload::make_uniform_schema(1, 8);
  workload::churn_gen_options o;
  o.subscribe_weight = -0.1;
  EXPECT_THROW(workload::churn_gen(s, o, 1), std::invalid_argument);
  o = {};
  o.subscribe_weight = o.unsubscribe_weight = o.publish_weight = 0.0;
  EXPECT_THROW(workload::churn_gen(s, o, 1), std::invalid_argument);
  o = {};
  o.victim_skew = -1.0;
  EXPECT_THROW(workload::churn_gen(s, o, 1), std::invalid_argument);
}

TEST(ChurnGen, StockTickerPresetRuns) {
  const auto o = workload::churn_gen::stock_ticker_at_scale();
  EXPECT_GT(o.flash_prob, 0.0);
  EXPECT_GT(o.victim_skew, 0.0);
  workload::churn_gen gen(workload::make_stock_schema(), o, 11);
  int subs = 0;
  int unsubs = 0;
  int pubs = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto op = gen.next();
    switch (op.kind) {
      case workload::churn_op::op_kind::subscribe:
        EXPECT_EQ(op.sub.attribute_count(), 3);
        ++subs;
        break;
      case workload::churn_op::op_kind::unsubscribe:
        ++unsubs;
        break;
      case workload::churn_op::op_kind::publish:
        ++pubs;
        break;
    }
  }
  // All three op kinds actually occur under the preset.
  EXPECT_GT(subs, 0);
  EXPECT_GT(unsubs, 0);
  EXPECT_GT(pubs, 0);
}

TEST(Schemas, PrefabSchemasAreValid) {
  EXPECT_EQ(workload::make_stock_schema().attribute_count(), 3);
  EXPECT_EQ(workload::make_sensor_schema().attribute_count(), 4);
  EXPECT_EQ(workload::make_uniform_schema(5, 12).attribute_count(), 5);
  // Dominance universes are well-formed.
  EXPECT_EQ(workload::make_sensor_schema().dominance_universe().dims(), 8);
}

}  // namespace
}  // namespace subcover
