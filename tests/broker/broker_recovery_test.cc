// Checkpoint → crash → broker::recover round trips: the rebuilt broker must
// be state-identical (routing table, per-link forwarded sets — compared
// wholesale via broker_snapshot equality) to the broker that wrote the WAL,
// across key widths and curves, and must behave identically afterwards.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "broker/broker.h"
#include "broker/wal.h"
#include "covering/sfc_covering_index.h"
#include "util/random.h"
#include "workload/subscription_gen.h"

namespace subcover {
namespace {

constexpr int kBrokerId = 0;
const std::vector<int> kLinks = {1, 2, 3};

covering_index_factory sfc_factory(curve_kind curve) {
  return [curve](const schema& sc) {
    sfc_covering_options so;
    so.curve = curve;
    so.max_cubes = 2048;
    return std::make_unique<sfc_covering_index>(sc, so);
  };
}

broker_options covering_opts() {
  broker_options o;
  o.use_covering = true;
  o.epsilon = 0.1;
  return o;
}

// Drives one broker through a seeded churn of subscribes/unsubscribes from
// mixed links, logging every disposition the way the fault engine does
// (src/broker/fault_engine.cc, process): the WAL records state deltas, so
// this is the full durable trace of the broker's history.
struct churn_driver {
  broker& br;
  broker_wal& wal;
  network_metrics metrics;
  workload::subscription_gen subs;
  rng gen;
  std::vector<std::pair<sub_id, int>> active;  // (id, link it arrived over)
  sub_id next_id = 1;
  std::uint64_t op = 0;

  churn_driver(broker& b, broker_wal& w, const schema& s, std::uint64_t seed)
      : br(b), wal(w), subs(s, clustered(), seed), gen(seed + 1) {}

  static workload::subscription_gen_options clustered() {
    workload::subscription_gen_options o;
    o.kind = workload::workload_kind::clustered;
    return o;
  }

  int pick_link() {
    const auto i = gen.index(kLinks.size() + 1);
    return i == kLinks.size() ? kLocalLink : kLinks[i];
  }

  void subscribe() {
    const int from = pick_link();
    const sub_id id = next_id++;
    const auto body = subs.next();
    const auto action = br.handle_subscribe(from, id, body, metrics);
    wal_record r;
    r.k = wal_record::kind::subscribe;
    r.op = ++op;
    r.from = from;
    r.seq = op;
    r.id = id;
    r.body = body;
    r.forwarded_links = action.forward_links;
    wal.append(r);
    active.emplace_back(id, from);
  }

  void unsubscribe() {
    const auto pick = gen.index(active.size());
    const auto [id, from] = active[pick];
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(pick));
    const auto action = br.handle_unsubscribe(from, id, metrics);
    wal_record r;
    r.k = wal_record::kind::unsubscribe;
    r.op = ++op;
    r.from = from;
    r.seq = op;
    r.id = id;
    r.withdrawn_links = action.forward_links;
    r.reforwards = action.reforwards;
    wal.append(r);
  }

  void step() {
    if (gen.uniform(0, 9) < 7 || active.size() < 4)
      subscribe();
    else
      unsubscribe();
  }
};

void expect_state_identical(const broker& a, const broker& b) {
  EXPECT_EQ(a.table(), b.table());
  EXPECT_EQ(a.routing_entries(), b.routing_entries());
  for (const int link : kLinks) EXPECT_EQ(a.forwarded_ids(link), b.forwarded_ids(link)) << link;
  // The wholesale comparison: every routing entry and every forwarded body.
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

struct combo {
  curve_kind curve;
  int attrs;
  int bits;
  const char* name;
};

// One combo per key width of the dominance pipeline (key_width::automatic):
// 2x8-bit attrs fit u64, 3x16-bit fit u128, 8x16-bit need u512 — so the
// replay path is pinned on every wide-integer backend and every curve.
const combo kCombos[] = {
    {curve_kind::z_order, 2, 8, "z_order/u64"},
    {curve_kind::gray_code, 3, 16, "gray/u128"},
    {curve_kind::hilbert, 8, 16, "hilbert/u512"},
};

TEST(BrokerRecovery, CheckpointKillRecoverIsStateIdentical) {
  for (const auto& c : kCombos) {
    SCOPED_TRACE(c.name);
    const schema s = workload::make_uniform_schema(c.attrs, c.bits);
    const auto factory = sfc_factory(c.curve);
    broker br(kBrokerId, s, kLinks, factory, covering_opts());
    broker_wal wal;
    churn_driver drive(br, wal, s, 4711);
    for (int i = 0; i < 80; ++i) {
      drive.step();
      if (i == 40) br.checkpoint(wal);  // mid-history: snapshot + log tail
    }
    const auto rec = wal.recover();
    ASSERT_FALSE(rec.snapshot.routing.empty());  // the checkpoint is in play
    ASSERT_FALSE(rec.records.empty());           // and so is replay
    EXPECT_EQ(rec.torn_bytes, 0U);
    const broker recovered =
        broker::recover(kBrokerId, s, kLinks, factory, covering_opts(), rec);
    expect_state_identical(br, recovered);
  }
}

TEST(BrokerRecovery, RecoveredBrokerBehavesIdentically) {
  // State-identical must mean behavior-identical: the same post-recovery
  // operations produce the same covering decisions (forward links,
  // reforwards) on the original and the rebuilt broker.
  const schema s = workload::make_uniform_schema(2, 8);
  const auto factory = sfc_factory(curve_kind::z_order);
  broker br(kBrokerId, s, kLinks, factory, covering_opts());
  broker_wal wal;
  churn_driver drive(br, wal, s, 815);
  for (int i = 0; i < 60; ++i) drive.step();
  broker recovered =
      broker::recover(kBrokerId, s, kLinks, factory, covering_opts(), wal.recover());
  // Continue the workload on both, comparing every action.
  workload::subscription_gen more(s, churn_driver::clustered(), 816);
  network_metrics ma, mb;
  sub_id id = drive.next_id;
  for (int i = 0; i < 25; ++i, ++id) {
    const auto body = more.next();
    const int from = i % 2 == 0 ? kLocalLink : kLinks[static_cast<std::size_t>(i) % kLinks.size()];
    const auto aa = br.handle_subscribe(from, id, body, ma);
    const auto ab = recovered.handle_subscribe(from, id, body, mb);
    EXPECT_EQ(aa.forward_links, ab.forward_links) << "op " << i;
  }
  const auto ua = br.handle_unsubscribe(drive.active[0].second, drive.active[0].first, ma);
  const auto ub = recovered.handle_unsubscribe(drive.active[0].second, drive.active[0].first, mb);
  EXPECT_EQ(ua.forward_links, ub.forward_links);
  EXPECT_EQ(ua.reforwards, ub.reforwards);
  expect_state_identical(br, recovered);
}

TEST(BrokerRecovery, TornFinalRecordRecoversToPreviousOperation) {
  // A crash mid-append loses exactly the half-written operation: recovery
  // from the torn log must land on the state just before it.
  const schema s = workload::make_uniform_schema(2, 8);
  const auto factory = sfc_factory(curve_kind::z_order);
  broker br(kBrokerId, s, kLinks, factory, covering_opts());
  broker_wal wal;
  churn_driver drive(br, wal, s, 2222);
  for (int i = 0; i < 30; ++i) drive.step();
  const auto before = br.snapshot();
  drive.subscribe();  // the operation whose record the crash tears
  auto bytes = wal.log_store().read_all();
  bytes.resize(bytes.size() - 3);  // cut into the final record's checksum/payload
  wal.log_store().replace(bytes);
  const auto rec = wal.recover();
  EXPECT_GT(rec.torn_bytes, 0U);
  const broker recovered =
      broker::recover(kBrokerId, s, kLinks, factory, covering_opts(), rec);
  EXPECT_EQ(recovered.snapshot(), before);
}

TEST(BrokerRecovery, RecoverRejectsUnknownLinks) {
  // A snapshot naming a link the topology no longer has is a configuration
  // error the bootstrap constructor refuses (std::invalid_argument).
  const schema s = workload::make_uniform_schema(2, 8);
  const auto factory = sfc_factory(curve_kind::z_order);
  broker br(kBrokerId, s, kLinks, factory, covering_opts());
  broker_wal wal;
  churn_driver drive(br, wal, s, 99);
  for (int i = 0; i < 20; ++i) drive.step();
  br.checkpoint(wal);
  const auto rec = wal.recover();
  EXPECT_THROW((void)broker::recover(kBrokerId, s, {1, 2}, factory, covering_opts(), rec),
               std::invalid_argument);
}

}  // namespace
}  // namespace subcover
