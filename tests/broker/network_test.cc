#include "broker/network.h"

#include <gtest/gtest.h>

#include "broker/broker.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <utility>

#include "covering/linear_covering_index.h"
#include "covering/sfc_covering_index.h"
#include "pubsub/parser.h"
#include "workload/event_gen.h"
#include "workload/subscription_gen.h"

namespace subcover {
namespace {

network_options with_linear(bool covering, double eps = 0.0) {
  network_options o;
  o.use_covering = covering;
  o.epsilon = eps;
  o.factory = [](const schema& s) { return std::make_unique<linear_covering_index>(s); };
  return o;
}

TEST(Network, SingleBrokerDelivery) {
  const schema s = workload::make_uniform_schema(1, 8);
  network net(topology::line(1), s, with_linear(true));
  const auto id = net.subscribe(0, parse_subscription(s, "attr0 <= 10"));
  const auto delivered = net.publish(0, event(s, {5}));
  EXPECT_EQ(delivered, (std::vector<sub_id>{id}));
  EXPECT_TRUE(net.publish(0, event(s, {50})).empty());
}

TEST(Network, DeliveryAcrossLine) {
  const schema s = workload::make_uniform_schema(1, 8);
  network net(topology::line(3), s, with_linear(true));
  const auto id = net.subscribe(2, parse_subscription(s, "attr0 >= 100"));
  const auto delivered = net.publish(0, event(s, {200}));
  EXPECT_EQ(delivered, (std::vector<sub_id>{id}));
  // Two broker-to-broker hops for the subscription and for the event.
  EXPECT_EQ(net.metrics().subscription_messages, 2U);
  EXPECT_EQ(net.metrics().event_messages, 2U);
}

TEST(Network, EventsOnlyTravelWhereSubscriptionsLead) {
  const schema s = workload::make_uniform_schema(1, 8);
  network net(topology::star(4), s, with_linear(true));
  (void)net.subscribe(1, parse_subscription(s, "attr0 <= 10"));
  net.mutable_metrics().reset_traffic();
  (void)net.publish(2, event(s, {200}));  // matches nothing
  // Event goes 2 -> 0 (star center)? No: center has no matching table entry
  // for any link, so it stops at the publisher.
  EXPECT_EQ(net.metrics().event_messages, 0U);
  (void)net.publish(2, event(s, {5}));
  // 2 -> 0 -> 1: two hops.
  EXPECT_EQ(net.metrics().event_messages, 2U);
}

TEST(Network, CoveringReducesSubscriptionTraffic) {
  const schema s = workload::make_uniform_schema(1, 8);
  network with_cov(topology::line(5), s, with_linear(true));
  network without(topology::line(5), s, with_linear(false));
  // A broad subscription then many narrow ones from the same broker.
  (void)with_cov.subscribe(0, parse_subscription(s, "attr0 <= 200"));
  (void)without.subscribe(0, parse_subscription(s, "attr0 <= 200"));
  for (int i = 0; i < 10; ++i) {
    const auto narrow = parse_subscription(s, "attr0 <= " + std::to_string(100 - i));
    (void)with_cov.subscribe(0, narrow);
    (void)without.subscribe(0, narrow);
  }
  EXPECT_EQ(with_cov.metrics().subscription_messages, 4U);  // only the broad one travels
  EXPECT_EQ(without.metrics().subscription_messages, 44U);  // 11 subs * 4 hops
  EXPECT_LT(with_cov.total_routing_entries(), without.total_routing_entries());
}

TEST(Network, DeliveryCompletenessWithCovering) {
  // The safety property: covering (exact or approximate) must not lose
  // deliveries. Randomized workload on a tree, validated against ground
  // truth.
  const schema s = workload::make_uniform_schema(2, 8);
  workload::subscription_gen_options wopts;
  wopts.kind = workload::workload_kind::clustered;
  for (const double eps : {0.0, 0.1, 0.5}) {
    network_options nopts;
    nopts.use_covering = true;
    nopts.epsilon = eps;
    nopts.factory = [](const schema& sc) {
      // Small budget: completeness must hold even when many checks settle.
      sfc_covering_options so;
      so.max_cubes = 2048;
      return std::make_unique<sfc_covering_index>(sc, so);
    };
    network net(topology::balanced_tree(2, 3), s, nopts);
    workload::subscription_gen subs(s, wopts, 515);
    workload::event_gen events(s, 616);
    rng broker_pick(717);
    for (int i = 0; i < 120; ++i)
      (void)net.subscribe(static_cast<int>(broker_pick.index(15)), subs.next());
    for (int e = 0; e < 60; ++e) {
      const auto ev = events.next();
      const auto publisher = static_cast<int>(broker_pick.index(15));
      const auto delivered = net.publish(publisher, ev);
      EXPECT_EQ(delivered, net.expected_recipients(ev)) << "eps=" << eps;
    }
  }
}

TEST(Network, UnsubscribeRestoresForwardingState) {
  const schema s = workload::make_uniform_schema(1, 8);
  network net(topology::line(3), s, with_linear(true));
  const auto broad = net.subscribe(0, parse_subscription(s, "attr0 <= 200"));
  const auto narrow = net.subscribe(0, parse_subscription(s, "attr0 <= 100"));
  // While the broad subscription lives, narrow events still reach broker 0.
  EXPECT_EQ(net.publish(2, event(s, {50})).size(), 2U);
  // Withdraw the coverer: the narrow subscription must be re-forwarded so
  // deliveries continue.
  EXPECT_TRUE(net.unsubscribe(broad));
  EXPECT_GT(net.metrics().reforwards, 0U);
  const auto delivered = net.publish(2, event(s, {50}));
  EXPECT_EQ(delivered, (std::vector<sub_id>{narrow}));
  // And the broad subscription no longer exists anywhere.
  EXPECT_TRUE(net.publish(2, event(s, {150})).empty());
}

TEST(Network, UnsubscribeUnknownReturnsFalse) {
  const schema s = workload::make_uniform_schema(1, 8);
  network net(topology::line(2), s, with_linear(true));
  EXPECT_FALSE(net.unsubscribe(12345));
}

TEST(Network, RandomizedChurnKeepsCompleteness) {
  // Interleave subscribes, unsubscribes, and publishes; deliveries must
  // always match ground truth.
  const schema s = workload::make_uniform_schema(2, 6);
  network net(topology::balanced_tree(3, 2), s, with_linear(true));
  workload::subscription_gen subs(s, {}, 818);
  workload::event_gen events(s, 919);
  rng gen(1020);
  std::vector<sub_id> active;
  for (int step = 0; step < 300; ++step) {
    const auto roll = gen.uniform(0, 9);
    if (roll < 4 || active.empty()) {
      active.push_back(net.subscribe(static_cast<int>(gen.index(13)), subs.next()));
    } else if (roll < 6) {
      const auto pick = gen.index(active.size());
      EXPECT_TRUE(net.unsubscribe(active[pick]));
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const auto ev = events.next();
      EXPECT_EQ(net.publish(static_cast<int>(gen.index(13)), ev),
                net.expected_recipients(ev))
          << "step " << step;
    }
  }
}

TEST(Network, OwnerBrokerTracked) {
  const schema s = workload::make_uniform_schema(1, 8);
  network net(topology::line(3), s, with_linear(true));
  const auto id = net.subscribe(2, subscription::match_all(s));
  EXPECT_EQ(net.owner_broker(id), 2);
  EXPECT_FALSE(net.owner_broker(id + 1).has_value());
  EXPECT_EQ(net.active_subscriptions(), 1U);
}

TEST(Network, BadBrokerIdsThrow) {
  const schema s = workload::make_uniform_schema(1, 8);
  network net(topology::line(2), s, with_linear(true));
  EXPECT_THROW((void)net.subscribe(2, subscription::match_all(s)), std::invalid_argument);
  EXPECT_THROW((void)net.publish(-1, event(s, {0})), std::invalid_argument);
  EXPECT_THROW((void)net.broker_at(5), std::invalid_argument);
}

// --- deterministic-vs-parallel equivalence ---------------------------------
//
// The parallel engine's contract (network.h): for every worker count, a
// parallel network fed the same operation sequence as a deterministic one
// must end with identical routing tables, identical forwarded sets,
// identical per-publish delivery sets, and identical metric totals (all
// counters; covering_check_ns is a timer and excluded by same_counters).

namespace {

network_options sfc_opts(double eps, int workers) {
  network_options o;
  o.use_covering = true;
  o.epsilon = eps;
  o.workers = workers;
  o.factory = [](const schema& sc) {
    sfc_covering_options so;
    so.max_cubes = 2048;
    return std::make_unique<sfc_covering_index>(sc, so);
  };
  return o;
}

// Runs the same seeded churn workload (subscribes, unsubscribes, publishes)
// on both networks, asserting per-publish delivery equality along the way.
void run_identical_churn(network& a, network& b, const schema& s, std::uint64_t seed,
                         int steps) {
  workload::subscription_gen subs(s, {}, seed);
  workload::event_gen events(s, seed + 1);
  rng gen(seed + 2);
  const auto n = static_cast<std::size_t>(a.broker_count());
  std::vector<sub_id> active;
  for (int step = 0; step < steps; ++step) {
    const auto roll = gen.uniform(0, 9);
    if (roll < 5 || active.empty()) {
      const auto at = static_cast<int>(gen.index(n));
      const auto body = subs.next();
      const auto ida = a.subscribe(at, body);
      const auto idb = b.subscribe(at, body);
      ASSERT_EQ(ida, idb);
      active.push_back(ida);
    } else if (roll < 7) {
      const auto pick = gen.index(active.size());
      ASSERT_TRUE(a.unsubscribe(active[pick]));
      ASSERT_TRUE(b.unsubscribe(active[pick]));
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const auto ev = events.next();
      const auto at = static_cast<int>(gen.index(n));
      EXPECT_EQ(a.publish(at, ev), b.publish(at, ev)) << "step " << step;
    }
  }
}

void expect_same_final_state(const network& a, const network& b) {
  ASSERT_EQ(a.broker_count(), b.broker_count());
  for (int i = 0; i < a.broker_count(); ++i) {
    EXPECT_EQ(a.broker_at(i).table(), b.broker_at(i).table()) << "broker " << i;
    for (int j = 0; j < a.broker_count(); ++j)
      EXPECT_EQ(a.broker_at(i).forwarded_ids(j), b.broker_at(i).forwarded_ids(j))
          << "broker " << i << " link " << j;
  }
  EXPECT_EQ(a.total_routing_entries(), b.total_routing_entries());
  EXPECT_TRUE(same_counters(a.metrics(), b.metrics()))
      << "deterministic: " << a.metrics().to_string()
      << "\nparallel:      " << b.metrics().to_string();
}

}  // namespace

TEST(Network, ParallelMatchesDeterministicAcrossWorkerCounts) {
  const schema s = workload::make_uniform_schema(2, 8);
  for (const std::uint64_t seed : {131U, 232U}) {
    for (const int workers : {1, 2, 4, 8}) {
      network det(topology::balanced_tree(2, 3), s, sfc_opts(0.1, 0));
      network par(topology::balanced_tree(2, 3), s, sfc_opts(0.1, workers));
      run_identical_churn(det, par, s, seed, 120);
      expect_same_final_state(det, par);
    }
  }
}

TEST(Network, ParallelMatchesDeterministicOnStarTopology) {
  // A star maximizes per-broker link fan-out: the hub's covering checks
  // spread over every shard on every message, the hardest case for the
  // shard merge to keep deterministic.
  const schema s = workload::make_uniform_schema(2, 8);
  network det(topology::star(13), s, sfc_opts(0.0, 0));
  network par(topology::star(13), s, sfc_opts(0.0, 4));
  run_identical_churn(det, par, s, 555, 150);
  expect_same_final_state(det, par);
}

TEST(Network, ParallelDeliveryCompletenessWithCovering) {
  // The safety property must survive the async engine: no deliveries lost
  // at any worker count, validated against ground truth.
  const schema s = workload::make_uniform_schema(2, 8);
  for (const int workers : {1, 4}) {
    network net(topology::balanced_tree(2, 3), s, sfc_opts(0.1, workers));
    workload::subscription_gen subs(s, {}, 717);
    workload::event_gen events(s, 818);
    rng pick(919);
    for (int i = 0; i < 100; ++i)
      (void)net.subscribe(static_cast<int>(pick.index(15)), subs.next());
    for (int e = 0; e < 40; ++e) {
      const auto ev = events.next();
      EXPECT_EQ(net.publish(static_cast<int>(pick.index(15)), ev),
                net.expected_recipients(ev))
          << "workers=" << workers;
    }
  }
}

TEST(Network, ShardLocalScratchSurvivesConcurrentChecks) {
  // Race test for the shard-local covering scratch: a high-fanout hub broker
  // whose every subscribe fans one covering check out per link shard, at a
  // worker count that forces genuine overlap. Any sharing of check scratch
  // or query-plan state across shards is a data race here (caught by the
  // TSan CI job) and a wrong-suppression bug (caught by the equivalence
  // check below).
  const schema s = workload::make_uniform_schema(2, 8);
  network det(topology::star(9), s, sfc_opts(0.05, 0));
  network par(topology::star(9), s, sfc_opts(0.05, 8));
  workload::subscription_gen_options wo;
  wo.kind = workload::workload_kind::clustered;
  workload::subscription_gen subs(s, wo, 4242);
  for (int i = 0; i < 150; ++i) {
    // Subscribe at the hub: every check batch spans all 8 outgoing shards.
    const auto body = subs.next();
    (void)det.subscribe(0, body);
    (void)par.subscribe(0, body);
  }
  expect_same_final_state(det, par);
}

// --- throwing covering handlers ---------------------------------------------
//
// The exception contract (network.h): a handler that throws fails only its
// own message's forwards; every other shard and in-flight message completes,
// and the post-throw state is deterministic and identical across engines.

namespace {

// Exact linear index that throws from find_covering while a sentinel "bomb"
// subscription is stored in this shard. Arming happens via the broker's own
// propagation (insert runs after the shard's covering check, so the bomb's
// own subscribe completes cleanly); every later check on an armed shard
// fails. Used to pin which forwards a throwing subscribe still performs.
class bomb_index final : public covering_index {
 public:
  bomb_index(const schema& s, subscription bomb)
      : covering_index(s), inner_(s), bomb_(std::move(bomb)) {}

  void insert(sub_id id, const subscription& s) override {
    inner_.insert(id, s);
    if (s == bomb_) armed_.insert(id);
  }
  bool erase(sub_id id) override {
    armed_.erase(id);
    return inner_.erase(id);
  }
  [[nodiscard]] std::optional<sub_id> find_covering(
      const subscription& s, double epsilon,
      covering_check_stats* stats = nullptr) const override {
    if (!armed_.empty()) throw std::runtime_error("armed covering shard");
    return inner_.find_covering(s, epsilon, stats);
  }
  [[nodiscard]] std::size_t size() const override { return inner_.size(); }
  [[nodiscard]] std::string_view name() const override { return "bomb"; }
  [[nodiscard]] std::size_t memory_footprint() const override {
    return inner_.memory_footprint();
  }

 private:
  linear_covering_index inner_;
  subscription bomb_;
  std::set<sub_id> armed_;
};

// Exact linear index whose k-th find_covering call (per shard instance)
// throws; all other calls delegate. Per-shard call sequences are schedule-
// independent (each broker consumes an identical message sequence, and a
// shard is only ever touched by its own link's job), so the failure lands on
// the same operation in every engine.
class kth_call_index final : public covering_index {
 public:
  kth_call_index(const schema& s, std::uint64_t k)
      : covering_index(s), inner_(s), k_(k) {}

  void insert(sub_id id, const subscription& s) override { inner_.insert(id, s); }
  bool erase(sub_id id) override { return inner_.erase(id); }
  [[nodiscard]] std::optional<sub_id> find_covering(
      const subscription& s, double epsilon,
      covering_check_stats* stats = nullptr) const override {
    if (++calls_ == k_) throw std::runtime_error("scheduled shard failure");
    return inner_.find_covering(s, epsilon, stats);
  }
  [[nodiscard]] std::size_t size() const override { return inner_.size(); }
  [[nodiscard]] std::string_view name() const override { return "kth-call"; }
  [[nodiscard]] std::size_t memory_footprint() const override {
    return inner_.memory_footprint();
  }

 private:
  linear_covering_index inner_;
  const std::uint64_t k_;
  mutable std::uint64_t calls_ = 0;
};

// run_identical_churn, but each operation runs under a catch: both networks
// must throw on exactly the same operations and agree on every result.
// Returns the number of operations that threw.
int run_churn_with_throw_parity(network& a, network& b, const schema& s,
                                std::uint64_t seed, int steps) {
  workload::subscription_gen subs(s, {}, seed);
  workload::event_gen events(s, seed + 1);
  rng gen(seed + 2);
  const auto n = static_cast<std::size_t>(a.broker_count());
  std::vector<sub_id> active;
  int threw = 0;
  for (int step = 0; step < steps; ++step) {
    const auto roll = gen.uniform(0, 9);
    if (roll < 5 || active.empty()) {
      const auto at = static_cast<int>(gen.index(n));
      const auto body = subs.next();
      std::optional<sub_id> ida, idb;
      bool ta = false, tb = false;
      try {
        ida = a.subscribe(at, body);
      } catch (const std::runtime_error&) {
        ta = true;
      }
      try {
        idb = b.subscribe(at, body);
      } catch (const std::runtime_error&) {
        tb = true;
      }
      EXPECT_EQ(ta, tb) << "step " << step;
      EXPECT_EQ(ida, idb) << "step " << step;
      if (ida && idb) active.push_back(*ida);
      threw += ta ? 1 : 0;
    } else if (roll < 7) {
      const auto pick = gen.index(active.size());
      std::optional<bool> ra, rb;
      try {
        ra = a.unsubscribe(active[pick]);
      } catch (const std::runtime_error&) {
      }
      try {
        rb = b.unsubscribe(active[pick]);
      } catch (const std::runtime_error&) {
      }
      EXPECT_EQ(ra, rb) << "step " << step;
      threw += ra.has_value() ? 0 : 1;
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      // Publishes never run covering checks, so they must not throw — and
      // they double as a liveness probe that both networks still route.
      const auto ev = events.next();
      const auto at = static_cast<int>(gen.index(n));
      EXPECT_EQ(a.publish(at, ev), b.publish(at, ev)) << "step " << step;
    }
  }
  return threw;
}

}  // namespace

TEST(Network, ThrowingHandlerStatePinnedAcrossEngines) {
  // line(3): a bomb subscribed at broker 2 arms broker 2's shard toward 1 and
  // broker 1's shard toward 0. A later subscribe at broker 1 then fails its
  // covering check toward broker 0 but not toward broker 2 — the contract
  // says the clean shard's forward still happens, in every engine.
  const schema s = workload::make_uniform_schema(1, 8);
  const auto bomb = parse_subscription(s, "attr0 >= 100");
  auto opts = [&](int workers) {
    network_options o;
    o.use_covering = true;
    o.workers = workers;
    o.factory = [bomb](const schema& sc) { return std::make_unique<bomb_index>(sc, bomb); };
    return o;
  };
  for (const int workers : {0, 1, 4}) {
    network net(topology::line(3), s, opts(workers));
    const auto bomb_id = net.subscribe(2, bomb);  // arms; must not throw
    const auto before0 = net.broker_at(1).forwarded_ids(0);
    const auto before2 = net.broker_at(1).forwarded_ids(2);
    EXPECT_THROW((void)net.subscribe(1, parse_subscription(s, "attr0 <= 50")),
                 std::runtime_error)
        << "workers=" << workers;
    // The armed shard's forward (toward broker 0) was skipped...
    EXPECT_EQ(net.broker_at(1).forwarded_ids(0), before0) << "workers=" << workers;
    // ...but the clean shard's forward (toward broker 2) completed.
    EXPECT_EQ(net.broker_at(1).forwarded_ids(2).size(), before2.size() + 1)
        << "workers=" << workers;
    // The network stays live: events still route through the bomb's path.
    EXPECT_EQ(net.publish(0, event(s, {150})), (std::vector<sub_id>{bomb_id}))
        << "workers=" << workers;
  }
  // And the post-throw state is identical between the engines.
  network det(topology::line(3), s, opts(0));
  network par(topology::line(3), s, opts(4));
  (void)det.subscribe(2, bomb);
  (void)par.subscribe(2, bomb);
  const auto narrow = parse_subscription(s, "attr0 <= 50");
  EXPECT_THROW((void)det.subscribe(1, narrow), std::runtime_error);
  EXPECT_THROW((void)par.subscribe(1, narrow), std::runtime_error);
  expect_same_final_state(det, par);
}

TEST(Network, ThrowingHandlerChaosMatchesAcrossWorkerCounts) {
  // Seeded churn where every covering shard fails exactly once (on its 7th
  // check): the deterministic and parallel engines must throw on the same
  // operations and converge to the same final state at every worker count.
  const schema s = workload::make_uniform_schema(2, 8);
  auto opts = [](int workers) {
    network_options o;
    o.use_covering = true;
    o.workers = workers;
    o.factory = [](const schema& sc) { return std::make_unique<kth_call_index>(sc, 7); };
    return o;
  };
  for (const int workers : {1, 4}) {
    network det(topology::balanced_tree(2, 3), s, opts(0));
    network par(topology::balanced_tree(2, 3), s, opts(workers));
    const int threw = run_churn_with_throw_parity(det, par, s, 2718, 120);
    EXPECT_GT(threw, 0) << "workers=" << workers;  // the bombs must actually fire
    expect_same_final_state(det, par);
  }
}

// --- batch unsubscribe -------------------------------------------------------
//
// handle_unsubscribe_batch's contract (broker.h): one covering-index
// erase_batch plus one re-forward sweep per shard, completeness-preserving,
// and a batch of one id is exactly handle_unsubscribe.

namespace {

covering_index_factory sfc_sorted_vector_factory() {
  return [](const schema& sc) {
    sfc_covering_options so;
    so.array = sfc_array_kind::sorted_vector;  // deferred-tombstone erase path
    return std::make_unique<sfc_covering_index>(sc, so);
  };
}

// Feeds the same clustered subscriptions (local clients plus one upstream
// link) to a broker; records every body in `bodies`.
void feed_broker(broker& b, const schema& s, std::uint64_t seed,
                 std::map<sub_id, std::pair<int, subscription>>* bodies,
                 network_metrics& metrics) {
  workload::subscription_gen_options wo;
  wo.kind = workload::workload_kind::clustered;
  workload::subscription_gen gen(s, wo, seed);
  for (sub_id id = 0; id < 40; ++id) {
    const subscription sub = gen.next();
    (void)b.handle_subscribe(kLocalLink, id, sub, metrics);
    bodies->emplace(id, std::pair<int, subscription>{kLocalLink, sub});
  }
  for (sub_id id = 100; id < 120; ++id) {
    const subscription sub = gen.next();
    (void)b.handle_subscribe(1, id, sub, metrics);
    bodies->emplace(id, std::pair<int, subscription>{1, sub});
  }
}

// The broker completeness invariant: every live subscription is, on every
// link other than its origin, either forwarded or covered by a forwarded
// subscription.
void expect_forwarding_complete(const broker& b,
                                const std::map<sub_id, std::pair<int, subscription>>& bodies,
                                const std::vector<int>& links) {
  for (const int link : links) {
    const std::vector<sub_id> fwd = b.forwarded_ids(link);
    const std::set<sub_id> fwd_set(fwd.begin(), fwd.end());
    for (const auto& [id, origin_body] : bodies) {
      if (origin_body.first == link) continue;
      if (fwd_set.count(id) > 0) continue;
      const bool covered =
          std::any_of(fwd_set.begin(), fwd_set.end(), [&](const sub_id fid) {
            return bodies.at(fid).second.covers(origin_body.second);
          });
      EXPECT_TRUE(covered) << "sub " << id << " neither forwarded nor covered on link "
                           << link;
    }
  }
}

}  // namespace

TEST(Broker, UnsubscribeBatchOfOneEqualsSingle) {
  const schema s = workload::make_uniform_schema(2, 8);
  const std::vector<int> links{1, 2};
  broker single(0, s, links, sfc_sorted_vector_factory(), {});
  broker batch(0, s, links, sfc_sorted_vector_factory(), {});
  network_metrics ms;
  network_metrics mb;
  std::map<sub_id, std::pair<int, subscription>> bodies_s;
  std::map<sub_id, std::pair<int, subscription>> bodies_b;
  feed_broker(single, s, 333, &bodies_s, ms);
  feed_broker(batch, s, 333, &bodies_b, mb);
  for (const sub_id victim : {sub_id{3}, sub_id{17}, sub_id{29}}) {
    const auto sa = single.handle_unsubscribe(kLocalLink, victim, ms);
    const auto ba = batch.handle_unsubscribe_batch(kLocalLink, {victim}, mb);
    // Identical forwards (batch shape: one (link, {victim}) pair per link)...
    std::vector<std::pair<int, std::vector<sub_id>>> want;
    for (const int link : sa.forward_links) want.push_back({link, {victim}});
    EXPECT_EQ(ba.forward_links, want);
    // ...identical reforwards...
    ASSERT_EQ(ba.reforwards.size(), sa.reforwards.size());
    for (std::size_t i = 0; i < sa.reforwards.size(); ++i) {
      EXPECT_EQ(ba.reforwards[i].first, sa.reforwards[i].first);
      EXPECT_EQ(ba.reforwards[i].second.first, sa.reforwards[i].second.first);
      EXPECT_EQ(ba.reforwards[i].second.second, sa.reforwards[i].second.second);
    }
    // ...identical state.
    EXPECT_EQ(single.table(), batch.table());
    for (const int link : links)
      EXPECT_EQ(single.forwarded_ids(link), batch.forwarded_ids(link));
  }
}

TEST(Broker, UnsubscribeBatchPreservesCompleteness) {
  const schema s = workload::make_uniform_schema(2, 8);
  const std::vector<int> links{1, 2, 3};
  broker b(0, s, links, sfc_sorted_vector_factory(), {});
  network_metrics m;
  std::map<sub_id, std::pair<int, subscription>> bodies;
  feed_broker(b, s, 444, &bodies, m);
  expect_forwarding_complete(b, bodies, links);

  // Withdraw a third of the local subscriptions in one batch.
  std::vector<sub_id> cohort;
  for (sub_id id = 0; id < 40; id += 3) cohort.push_back(id);
  const std::size_t before_entries = b.routing_entries();
  const auto action = b.handle_unsubscribe_batch(kLocalLink, cohort, m);
  EXPECT_EQ(b.routing_entries(), before_entries - cohort.size());

  // Every batch id is gone from every shard, and the per-link forward lists
  // carry exactly the ids that were forwarded there (a subset of the batch).
  std::set<sub_id> cohort_set(cohort.begin(), cohort.end());
  for (const int link : links) {
    const std::vector<sub_id> fwd = b.forwarded_ids(link);
    for (const sub_id id : fwd) EXPECT_EQ(cohort_set.count(id), 0U);
  }
  for (const auto& [link, withdrawn] : action.forward_links) {
    EXPECT_FALSE(withdrawn.empty());
    for (const sub_id id : withdrawn) EXPECT_EQ(cohort_set.count(id), 1U);
  }
  for (const sub_id id : cohort) bodies.erase(id);
  // The re-forward sweep restored completeness against the post-batch state.
  expect_forwarding_complete(b, bodies, links);
  // Reforwarded subscriptions are now really forwarded.
  for (const auto& [link, rf] : action.reforwards) {
    const std::vector<sub_id> fwd = b.forwarded_ids(link);
    EXPECT_NE(std::find(fwd.begin(), fwd.end(), rf.first), fwd.end());
  }
}

TEST(Broker, UnsubscribeBatchUnknownIdFailsLoudly) {
  const schema s = workload::make_uniform_schema(1, 8);
  broker b(0, s, {1}, sfc_sorted_vector_factory(), {});
  network_metrics m;
  (void)b.handle_subscribe(kLocalLink, 7, subscription::match_all(s), m);
  EXPECT_THROW((void)b.handle_unsubscribe_batch(kLocalLink, {7, 8}, m), std::logic_error);
}

TEST(Network, BadWorkerCountThrows) {
  const schema s = workload::make_uniform_schema(1, 8);
  network_options o = with_linear(true);
  o.workers = -1;
  EXPECT_THROW(network(topology::line(2), s, o), std::invalid_argument);
}

TEST(Network, DefaultFactoryIsSfc) {
  const schema s = workload::make_uniform_schema(1, 8);
  network net(topology::line(2), s, {});
  const auto id = net.subscribe(1, parse_subscription(s, "attr0 >= 7"));
  EXPECT_EQ(net.publish(0, event(s, {9})), (std::vector<sub_id>{id}));
}

}  // namespace
}  // namespace subcover
