// Chaos tests for the fault-injection engine (network_options::faults):
// under seeded drop/duplicate/delay/crash schedules, every operation must
// converge to the exact deterministic-mode outcome — per-publish delivery
// sets, final routing tables, forwarded sets, and every logical metric
// counter (same_counters) — with the injected faults visible only in the
// fault-transport counters (retries, duplicates_suppressed, recoveries,
// wal_bytes).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "broker/network.h"
#include "covering/sfc_covering_index.h"
#include "pubsub/parser.h"
#include "workload/event_gen.h"
#include "workload/subscription_gen.h"

namespace subcover {
namespace {

network_options base_opts() {
  network_options o;
  o.use_covering = true;
  o.epsilon = 0.1;
  o.factory = [](const schema& sc) {
    sfc_covering_options so;
    so.max_cubes = 2048;
    return std::make_unique<sfc_covering_index>(sc, so);
  };
  return o;
}

network_options faulty_opts(const fault_options& f) {
  network_options o = base_opts();
  o.faults = f;
  return o;
}

// Runs the same seeded churn on both networks, asserting per-publish
// delivery equality and ground-truth completeness along the way.
void run_identical_churn(network& det, network& faulty, const schema& s, std::uint64_t seed,
                         int steps) {
  workload::subscription_gen subs(s, {}, seed);
  workload::event_gen events(s, seed + 1);
  rng gen(seed + 2);
  const auto n = static_cast<std::size_t>(det.broker_count());
  std::vector<sub_id> active;
  for (int step = 0; step < steps; ++step) {
    const auto roll = gen.uniform(0, 9);
    if (roll < 5 || active.empty()) {
      const auto at = static_cast<int>(gen.index(n));
      const auto body = subs.next();
      const auto ida = det.subscribe(at, body);
      const auto idb = faulty.subscribe(at, body);
      ASSERT_EQ(ida, idb);
      active.push_back(ida);
    } else if (roll < 7) {
      const auto pick = gen.index(active.size());
      ASSERT_TRUE(det.unsubscribe(active[pick]));
      ASSERT_TRUE(faulty.unsubscribe(active[pick]));
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const auto ev = events.next();
      const auto at = static_cast<int>(gen.index(n));
      const auto got = faulty.publish(at, ev);
      EXPECT_EQ(got, det.publish(at, ev)) << "step " << step;
      EXPECT_EQ(got, faulty.expected_recipients(ev)) << "step " << step;
    }
  }
}

void expect_same_final_state(const network& det, const network& faulty) {
  ASSERT_EQ(det.broker_count(), faulty.broker_count());
  for (int i = 0; i < det.broker_count(); ++i) {
    EXPECT_EQ(det.broker_at(i).table(), faulty.broker_at(i).table()) << "broker " << i;
    for (int j = 0; j < det.broker_count(); ++j)
      EXPECT_EQ(det.broker_at(i).forwarded_ids(j), faulty.broker_at(i).forwarded_ids(j))
          << "broker " << i << " link " << j;
  }
  EXPECT_EQ(det.total_routing_entries(), faulty.total_routing_entries());
  EXPECT_TRUE(same_counters(det.metrics(), faulty.metrics()))
      << "deterministic: " << det.metrics().to_string()
      << "\nfaults:        " << faulty.metrics().to_string();
}

TEST(FaultInjection, FaultFreePathMatchesDeterministicExactly) {
  // faults set but every probability zero: the reliability machinery (acks,
  // sequencing, WAL appends) runs, yet nothing fires — the outcome and the
  // logical counters must be byte-identical to deterministic mode, and
  // every fault-transport counter except wal_bytes must stay zero.
  const schema s = workload::make_uniform_schema(2, 8);
  network det(topology::balanced_tree(2, 3), s, base_opts());
  network faulty(topology::balanced_tree(2, 3), s, faulty_opts(fault_options{}));
  run_identical_churn(det, faulty, s, 101, 120);
  expect_same_final_state(det, faulty);
  EXPECT_EQ(faulty.metrics().retries, 0U);
  EXPECT_EQ(faulty.metrics().duplicates_suppressed, 0U);
  EXPECT_EQ(faulty.metrics().recoveries, 0U);
  EXPECT_GT(faulty.metrics().wal_bytes, 0U);
}

TEST(FaultInjection, ChaosConvergesToDeterministicAcrossSeeds) {
  // The acceptance gate: drop + duplicate + delay + crash all enabled, five
  // seeds. Completed operations must land on the exact deterministic-mode
  // state every time.
  const schema s = workload::make_uniform_schema(2, 8);
  for (const std::uint64_t seed : {1U, 2U, 3U, 4U, 5U}) {
    fault_options f;
    f.seed = seed;
    f.drop_prob = 0.05;
    f.duplicate_prob = 0.05;
    f.delay_prob = 0.3;
    f.crash_prob = 0.01;
    f.checkpoint_every = 32;
    network det(topology::balanced_tree(2, 3), s, base_opts());
    network faulty(topology::balanced_tree(2, 3), s, faulty_opts(f));
    run_identical_churn(det, faulty, s, 1000 + seed, 150);
    expect_same_final_state(det, faulty);
    // The schedule must actually have exercised the machinery: five seeds
    // of 5% drop / 5% duplicate over thousands of transmissions cannot all
    // be clean runs.
    EXPECT_GT(faulty.metrics().retries, 0U) << "seed " << seed;
    EXPECT_GT(faulty.metrics().duplicates_suppressed, 0U) << "seed " << seed;
  }
}

TEST(FaultInjection, CrashRecoveryConvergesMidOperation) {
  // Crash-heavy schedule, no message-level faults: brokers go down mid-
  // operation and restart from their WALs; the operation's retransmissions
  // must carry it to the exact deterministic outcome.
  const schema s = workload::make_uniform_schema(2, 8);
  fault_options f;
  f.seed = 99;
  f.crash_prob = 0.03;
  f.checkpoint_every = 16;
  network det(topology::balanced_tree(2, 3), s, base_opts());
  network faulty(topology::balanced_tree(2, 3), s, faulty_opts(f));
  run_identical_churn(det, faulty, s, 2020, 150);
  expect_same_final_state(det, faulty);
  EXPECT_GT(faulty.metrics().recoveries, 0U);
  EXPECT_GT(faulty.metrics().duplicates_suppressed, 0U);  // the ack-lost crash variant
}

TEST(FaultInjection, RecoverBrokerBetweenOperationsIsByteIdentical) {
  // The crash-between-operations path: capture a broker's state, discard it,
  // rebuild from the WAL, and require byte-identical routing + forwarded
  // state, then continued correct operation.
  const schema s = workload::make_uniform_schema(2, 8);
  fault_options f;
  f.checkpoint_every = 8;
  network faulty(topology::balanced_tree(2, 3), s, faulty_opts(f));
  workload::subscription_gen subs(s, {}, 303);
  workload::event_gen events(s, 304);
  rng gen(305);
  const auto n = static_cast<std::size_t>(faulty.broker_count());
  for (int i = 0; i < 80; ++i)
    (void)faulty.subscribe(static_cast<int>(gen.index(n)), subs.next());
  for (int b = 0; b < faulty.broker_count(); ++b) {
    const routing_table before = faulty.broker_at(b).table();
    std::vector<std::vector<sub_id>> forwarded_before;
    for (int j = 0; j < faulty.broker_count(); ++j)
      forwarded_before.push_back(faulty.broker_at(b).forwarded_ids(j));
    (void)faulty.recover_broker(b);
    EXPECT_EQ(faulty.broker_at(b).table(), before) << "broker " << b;
    for (int j = 0; j < faulty.broker_count(); ++j)
      EXPECT_EQ(faulty.broker_at(b).forwarded_ids(j), forwarded_before[static_cast<std::size_t>(j)])
          << "broker " << b << " link " << j;
  }
  EXPECT_EQ(faulty.metrics().recoveries, static_cast<std::uint64_t>(faulty.broker_count()));
  for (int e = 0; e < 20; ++e) {
    const auto ev = events.next();
    EXPECT_EQ(faulty.publish(static_cast<int>(gen.index(n)), ev),
              faulty.expected_recipients(ev));
  }
}

TEST(FaultInjection, CheckpointBoundsReplayLength) {
  const schema s = workload::make_uniform_schema(1, 8);
  fault_options f;
  f.checkpoint_every = 4;
  network faulty(topology::line(3), s, faulty_opts(f));
  for (int i = 0; i < 40; ++i)
    (void)faulty.subscribe(i % 3, parse_subscription(s, "attr0 <= " + std::to_string(i)));
  // Compaction keeps every broker's pending replay under the threshold.
  for (int b = 0; b < 3; ++b) {
    EXPECT_LT(faulty.wal_of(b).records_since_snapshot(), 4U) << "broker " << b;
    EXPECT_GT(faulty.wal_of(b).snapshot_store().size(), 0U) << "broker " << b;
  }
  // And recovery after compaction replays only the short tail.
  EXPECT_LT(faulty.recover_broker(1), 4U);
}

TEST(FaultInjection, RetryExhaustionThrows) {
  const schema s = workload::make_uniform_schema(1, 8);
  fault_options f;
  f.drop_prob = 1.0;  // the fabric eats every inter-broker transmission
  f.max_retries = 2;
  network faulty(topology::line(2), s, faulty_opts(f));
  EXPECT_THROW((void)faulty.subscribe(0, subscription::match_all(s)), std::runtime_error);
}

TEST(FaultInjection, FaultsPlusWorkersThrows) {
  const schema s = workload::make_uniform_schema(1, 8);
  network_options o = faulty_opts(fault_options{});
  o.workers = 2;
  EXPECT_THROW(network(topology::line(2), s, o), std::invalid_argument);
}

TEST(FaultInjection, WalAccessorsRequireFaultsMode) {
  const schema s = workload::make_uniform_schema(1, 8);
  network det(topology::line(2), s, base_opts());
  EXPECT_THROW((void)det.wal_of(0), std::logic_error);
  EXPECT_THROW((void)det.recover_broker(0), std::logic_error);
  network faulty(topology::line(2), s, faulty_opts(fault_options{}));
  EXPECT_THROW((void)faulty.wal_of(7), std::invalid_argument);
  EXPECT_THROW((void)faulty.recover_broker(-1), std::invalid_argument);
}

TEST(FaultInjection, BadFaultOptionsThrow) {
  const schema s = workload::make_uniform_schema(1, 8);
  for (auto mutate : std::vector<void (*)(fault_options&)>{
           [](fault_options& f) { f.drop_prob = 1.5; },
           [](fault_options& f) { f.duplicate_prob = -0.1; },
           [](fault_options& f) { f.crash_prob = 2.0; },
           [](fault_options& f) { f.max_retries = -1; },
           [](fault_options& f) { f.ack_timeout = 0; },
           [](fault_options& f) { f.max_delay = 0; },
       }) {
    fault_options f;
    mutate(f);
    EXPECT_THROW(network(topology::line(2), s, faulty_opts(f)), std::invalid_argument);
  }
}

}  // namespace
}  // namespace subcover
