#include "broker/wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pubsub/parser.h"
#include "workload/subscription_gen.h"

namespace subcover {
namespace {

schema two_attr_schema() { return workload::make_uniform_schema(2, 8); }

// One record of each kind, exercising every field: negative link ids
// (kLocalLink is zigzag-coded), empty and multi-element link lists, and
// reforwards carrying full subscription bodies.
std::vector<wal_record> sample_records(const schema& s) {
  wal_record sub;
  sub.k = wal_record::kind::subscribe;
  sub.op = 7;
  sub.from = kLocalLink;
  sub.seq = 0;
  sub.id = 42;
  sub.body = parse_subscription(s, "attr0 <= 100, attr1 >= 3");
  sub.forwarded_links = {0, 2, 5};

  wal_record unsub;
  unsub.k = wal_record::kind::unsubscribe;
  unsub.op = 8;
  unsub.from = 3;
  unsub.seq = 11;
  unsub.id = 42;
  unsub.withdrawn_links = {2};
  unsub.reforwards = {
      {2, {17, parse_subscription(s, "attr0 <= 50")}},
      {5, {19, parse_subscription(s, "attr1 >= 9")}},
  };

  wal_record receipt;
  receipt.k = wal_record::kind::event_receipt;
  receipt.op = 9;
  receipt.from = 1;
  receipt.seq = 123456789012345ULL;  // forces multi-byte varints

  return {sub, unsub, receipt};
}

broker_snapshot sample_snapshot(const schema& s) {
  broker_snapshot snap;
  snap.routing[kLocalLink] = {{1, parse_subscription(s, "attr0 >= 200")}};
  snap.routing[2] = {{3, parse_subscription(s, "attr0 <= 10")},
                     {9, parse_subscription(s, "attr1 >= 100, attr0 <= 80")}};
  snap.forwarded[0] = {{3, parse_subscription(s, "attr0 <= 10")}};
  snap.forwarded[4] = {};  // a link with an (empty) entry must survive too
  return snap;
}

TEST(Wal, RecordRoundTripAllKinds) {
  const schema s = two_attr_schema();
  broker_wal wal;
  const auto records = sample_records(s);
  for (const auto& r : records) wal.append(r);
  const auto rec = wal.recover();
  EXPECT_EQ(rec.records, records);
  EXPECT_EQ(rec.torn_bytes, 0U);
  EXPECT_EQ(rec.snapshot, broker_snapshot{});
  EXPECT_EQ(wal.records_since_snapshot(), records.size());
  EXPECT_EQ(wal.bytes_appended(), wal.log_store().size());
}

TEST(Wal, SnapshotRoundTrip) {
  const schema s = two_attr_schema();
  broker_wal wal;
  wal.append(sample_records(s)[0]);
  const auto snap = sample_snapshot(s);
  wal.write_snapshot(snap);
  // Compaction: the snapshot subsumes the log.
  EXPECT_EQ(wal.log_store().size(), 0U);
  EXPECT_EQ(wal.records_since_snapshot(), 0U);
  const auto rec = wal.recover();
  EXPECT_EQ(rec.snapshot, snap);
  EXPECT_TRUE(rec.records.empty());
  EXPECT_EQ(rec.torn_bytes, 0U);
}

TEST(Wal, SnapshotPlusLogTailRoundTrip) {
  const schema s = two_attr_schema();
  broker_wal wal;
  const auto records = sample_records(s);
  wal.write_snapshot(sample_snapshot(s));
  for (const auto& r : records) wal.append(r);
  const auto rec = wal.recover();
  EXPECT_EQ(rec.snapshot, sample_snapshot(s));
  EXPECT_EQ(rec.records, records);
}

TEST(Wal, EmptyStoresRecoverEmpty) {
  broker_wal wal;
  const auto rec = wal.recover();
  EXPECT_EQ(rec.snapshot, broker_snapshot{});
  EXPECT_TRUE(rec.records.empty());
  EXPECT_EQ(rec.torn_bytes, 0U);
}

TEST(Wal, TornTailToleratedAtEveryByteBoundary) {
  // A crash mid-append can cut the final record at any byte. Every cut
  // point must recover the intact prefix and report exactly the dropped
  // bytes — never throw, never lose an earlier record.
  const schema s = two_attr_schema();
  const auto records = sample_records(s);
  broker_wal full;
  for (const auto& r : records) full.append(r);
  const auto bytes = full.log_store().read_all();
  const auto last_len = encode_record(records.back()).size() + 12;  // frame header
  const auto keep = bytes.size() - last_len;  // offset where the final record starts
  for (std::size_t cut = keep; cut < bytes.size(); ++cut) {
    broker_wal torn;
    torn.log_store().replace(
        std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut)));
    const auto rec = torn.recover();
    ASSERT_EQ(rec.records.size(), records.size() - 1) << "cut at " << cut;
    EXPECT_EQ(rec.records[0], records[0]) << "cut at " << cut;
    EXPECT_EQ(rec.records[1], records[1]) << "cut at " << cut;
    EXPECT_EQ(rec.torn_bytes, cut - keep) << "cut at " << cut;
  }
}

TEST(Wal, ChecksumFailureKeepsIntactPrefixOnly) {
  // A corrupt record (here: a payload byte of the middle record flipped)
  // cannot be told apart from a torn append at that offset, so recovery
  // conservatively keeps only the records before it.
  const schema s = two_attr_schema();
  const auto records = sample_records(s);
  broker_wal full;
  for (const auto& r : records) full.append(r);
  auto bytes = full.log_store().read_all();
  const auto first_len = encode_record(records[0]).size() + 12;
  bytes[first_len + 12] ^= 0xFF;  // first payload byte of record 2
  broker_wal corrupt;
  corrupt.log_store().replace(bytes);
  const auto rec = corrupt.recover();
  ASSERT_EQ(rec.records.size(), 1U);
  EXPECT_EQ(rec.records[0], records[0]);
  EXPECT_EQ(rec.torn_bytes, bytes.size() - first_len);
}

TEST(Wal, CorruptSnapshotThrows) {
  // Snapshots are replaced atomically (temp file + rename), so a damaged
  // snapshot is store corruption, not a tolerable torn append.
  const schema s = two_attr_schema();
  for (const bool truncate : {false, true}) {
    broker_wal wal;
    wal.write_snapshot(sample_snapshot(s));
    auto bytes = wal.snapshot_store().read_all();
    if (truncate)
      bytes.pop_back();
    else
      bytes[bytes.size() / 2] ^= 0x01;
    wal.snapshot_store().replace(bytes);
    EXPECT_THROW((void)wal.recover(), wal_error) << "truncate=" << truncate;
  }
}

TEST(Wal, FileStoreRoundTripAndCompaction) {
  const schema s = two_attr_schema();
  const std::string dir = ::testing::TempDir() + "subcover_wal_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const auto records = sample_records(s);
  {
    auto wal = broker_wal::in_directory(dir, 3);
    wal.append(records[0]);
    wal.write_snapshot(sample_snapshot(s));
    wal.append(records[1]);
    wal.append(records[2]);
  }
  // A fresh object over the same files (the restarted process) sees
  // everything the first one made durable.
  auto reopened = broker_wal::in_directory(dir, 3);
  const auto rec = reopened.recover();
  EXPECT_EQ(rec.snapshot, sample_snapshot(s));
  EXPECT_EQ(rec.records, (std::vector<wal_record>{records[1], records[2]}));
  EXPECT_EQ(rec.torn_bytes, 0U);
  // Brokers are isolated by id: a different broker's WAL in the same
  // directory is empty.
  auto other = broker_wal::in_directory(dir, 4);
  EXPECT_TRUE(other.recover().records.empty());
  std::filesystem::remove_all(dir);
}

TEST(Wal, FileStoreTornTailTolerated) {
  const schema s = two_attr_schema();
  const std::string dir = ::testing::TempDir() + "subcover_wal_torn";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const auto records = sample_records(s);
  {
    auto wal = broker_wal::in_directory(dir, 0);
    wal.append(records[0]);
    wal.append(records[1]);
  }
  {
    // Simulate the crash: chop the last 5 bytes off the on-disk log.
    auto wal = broker_wal::in_directory(dir, 0);
    auto bytes = wal.log_store().read_all();
    bytes.resize(bytes.size() - 5);
    wal.log_store().replace(bytes);
  }
  auto reopened = broker_wal::in_directory(dir, 0);
  const auto rec = reopened.recover();
  ASSERT_EQ(rec.records.size(), 1U);
  EXPECT_EQ(rec.records[0], records[0]);
  EXPECT_EQ(rec.torn_bytes, encode_record(records[1]).size() + 12 - 5);
  std::filesystem::remove_all(dir);
}

TEST(Wal, ConstructorRequiresBothStores) {
  EXPECT_THROW(broker_wal(nullptr, std::make_unique<memory_wal_store>()), std::logic_error);
  EXPECT_THROW(broker_wal(std::make_unique<memory_wal_store>(), nullptr), std::logic_error);
}

TEST(Wal, FsyncOptionChangesNoRecoveredBytes) {
  const schema s = two_attr_schema();
  const std::string base = ::testing::TempDir() + "subcover_wal_fsync";
  std::filesystem::remove_all(base);
  const auto records = sample_records(s);
  const std::vector<std::uint8_t> aux = {0xDE, 0xAD, 0xBE, 0xEF};

  // Write the same sequence through both durability policies; the on-disk
  // bytes (and hence everything recover() yields) must be identical —
  // fsync changes *when* bytes are durable, never *which* bytes.
  std::vector<std::uint8_t> log_bytes[2], snap_bytes[2];
  for (int i = 0; i < 2; ++i) {
    wal_options opts;
    opts.fsync_on_append = (i == 1);
    const std::string dir = base + "/" + std::to_string(i);
    auto wal = broker_wal::in_directory(dir, 7, opts);
    wal.write_snapshot(sample_snapshot(s), aux);
    for (const auto& r : records) wal.append(r);
    log_bytes[i] = wal.log_store().read_all();
    snap_bytes[i] = wal.snapshot_store().read_all();
    const auto rec = wal.recover();
    EXPECT_EQ(rec.snapshot, sample_snapshot(s));
    EXPECT_EQ(rec.aux, aux);
    EXPECT_EQ(rec.records, records);
  }
  EXPECT_EQ(log_bytes[0], log_bytes[1]);
  EXPECT_EQ(snap_bytes[0], snap_bytes[1]);
  std::filesystem::remove_all(base);
}

TEST(Wal, SnapshotAuxRoundTripAndAbsence) {
  const schema s = two_attr_schema();
  broker_wal wal;
  // No aux: the snapshot store holds exactly one frame (pre-aux format).
  wal.write_snapshot(sample_snapshot(s));
  const auto no_aux_bytes = wal.snapshot_store().read_all();
  EXPECT_TRUE(wal.recover().aux.empty());

  std::vector<std::uint8_t> aux(300);
  for (std::size_t i = 0; i < aux.size(); ++i) aux[i] = static_cast<std::uint8_t>(i * 7);
  wal.write_snapshot(sample_snapshot(s), aux);
  EXPECT_GT(wal.snapshot_store().read_all().size(), no_aux_bytes.size());
  const auto rec = wal.recover();
  EXPECT_EQ(rec.snapshot, sample_snapshot(s));
  EXPECT_EQ(rec.aux, aux);

  // A corrupt aux frame is store corruption (atomic replace => not a tear).
  auto bytes = wal.snapshot_store().read_all();
  bytes.back() ^= 0x01;
  wal.snapshot_store().replace(bytes);
  EXPECT_THROW((void)wal.recover(), wal_error);
  bytes.back() ^= 0x01;
  bytes.push_back(0x00);  // trailing garbage after the aux frame
  wal.snapshot_store().replace(bytes);
  EXPECT_THROW((void)wal.recover(), wal_error);
}

TEST(Wal, InDirectoryCreatesMissingDirectories) {
  const std::string base = ::testing::TempDir() + "subcover_wal_mkdir";
  std::filesystem::remove_all(base);
  const std::string dir = base + "/deeply/nested/wal";
  ASSERT_FALSE(std::filesystem::exists(dir));
  auto wal = broker_wal::in_directory(dir, 1);
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  wal.append(sample_records(two_attr_schema())[0]);
  EXPECT_TRUE(std::filesystem::exists(dir + "/broker-1.log"));
  std::filesystem::remove_all(base);
}

TEST(Wal, InDirectoryRejectsLiveLockHolder) {
  const std::string dir = ::testing::TempDir() + "subcover_wal_lock";
  std::filesystem::remove_all(dir);
  auto first = broker_wal::in_directory(dir, 5);
  // Same broker id, same dir, while `first` lives: rejected, path named.
  try {
    auto second = broker_wal::in_directory(dir, 5);
    FAIL() << "expected wal_error for locked WAL dir";
  } catch (const wal_error& e) {
    EXPECT_NE(std::string(e.what()).find(dir + "/broker-5.lock"), std::string::npos)
        << e.what();
  }
  // A different broker id in the same dir is a different lock: fine.
  auto other = broker_wal::in_directory(dir, 6);
  std::filesystem::remove_all(dir);
}

TEST(Wal, InDirectoryLockReleasedWithOwner) {
  const std::string dir = ::testing::TempDir() + "subcover_wal_relock";
  std::filesystem::remove_all(dir);
  { auto wal = broker_wal::in_directory(dir, 2); }
  // flock dies with its descriptor, so the restarted "process" gets in.
  auto reopened = broker_wal::in_directory(dir, 2);
  std::filesystem::remove_all(dir);
}

TEST(Wal, InDirectoryNamesUncreatableDirectory) {
  // A path under a regular *file* cannot be created.
  const std::string file = ::testing::TempDir() + "subcover_wal_notadir";
  std::filesystem::remove_all(file);
  { std::ofstream(file) << "x"; }
  const std::string dir = file + "/sub";
  try {
    auto wal = broker_wal::in_directory(dir, 0);
    FAIL() << "expected wal_error for uncreatable directory";
  } catch (const wal_error& e) {
    EXPECT_NE(std::string(e.what()).find(dir), std::string::npos) << e.what();
  }
  std::filesystem::remove_all(file);
}

}  // namespace
}  // namespace subcover
