#include "broker/broker.h"

#include <gtest/gtest.h>

#include "covering/linear_covering_index.h"
#include "covering/sfc_covering_index.h"
#include "pubsub/parser.h"
#include "workload/subscription_gen.h"

namespace subcover {
namespace {

covering_index_factory linear_factory() {
  return [](const schema& s) { return std::make_unique<linear_covering_index>(s); };
}

class BrokerTest : public ::testing::Test {
 protected:
  schema s_ = workload::make_uniform_schema(1, 8);
  network_metrics m_;

  [[nodiscard]] broker make_broker(std::vector<int> links, bool covering = true) const {
    broker_options o;
    o.use_covering = covering;
    return {0, s_, links, linear_factory(), o};
  }
  [[nodiscard]] subscription sub(const std::string& text) const {
    return parse_subscription(s_, text);
  }
};

TEST_F(BrokerTest, LocalSubscriptionForwardsToAllLinks) {
  broker b = make_broker({1, 2, 3});
  const auto action = b.handle_subscribe(kLocalLink, 1, sub("attr0 <= 10"), m_);
  EXPECT_EQ(action.forward_links, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(b.routing_entries(), 1U);
}

TEST_F(BrokerTest, NeighborSubscriptionNotForwardedBack) {
  broker b = make_broker({1, 2});
  const auto action = b.handle_subscribe(1, 1, sub("attr0 <= 10"), m_);
  EXPECT_EQ(action.forward_links, (std::vector<int>{2}));
}

TEST_F(BrokerTest, CoveredSubscriptionSuppressed) {
  broker b = make_broker({1});
  (void)b.handle_subscribe(kLocalLink, 1, sub("attr0 <= 100"), m_);
  const auto action = b.handle_subscribe(kLocalLink, 2, sub("attr0 <= 50"), m_);
  EXPECT_TRUE(action.forward_links.empty());
  EXPECT_EQ(m_.covering_hits, 1U);
  // Routing table still records the covered subscription locally.
  EXPECT_EQ(b.routing_entries(), 2U);
  EXPECT_EQ(b.forwarded_to(1), 1U);
}

TEST_F(BrokerTest, FloodingModeForwardsEverything) {
  broker b = make_broker({1}, /*covering=*/false);
  (void)b.handle_subscribe(kLocalLink, 1, sub("attr0 <= 100"), m_);
  const auto action = b.handle_subscribe(kLocalLink, 2, sub("attr0 <= 50"), m_);
  EXPECT_EQ(action.forward_links, (std::vector<int>{1}));
  EXPECT_EQ(m_.covering_checks, 0U);
}

TEST_F(BrokerTest, EventRoutedToMatchingLinksOnly) {
  broker b = make_broker({1, 2});
  (void)b.handle_subscribe(1, 1, sub("attr0 <= 10"), m_);
  (void)b.handle_subscribe(2, 2, sub("attr0 >= 200"), m_);
  (void)b.handle_subscribe(kLocalLink, 3, sub("attr0 = 5"), m_);
  const auto action = b.handle_event(kLocalLink, event(s_, {5}));
  EXPECT_EQ(action.forward_links, (std::vector<int>{1}));
  EXPECT_EQ(action.local_deliveries, (std::vector<sub_id>{3}));
}

TEST_F(BrokerTest, EventNotSentBackToSource) {
  broker b = make_broker({1, 2});
  (void)b.handle_subscribe(1, 1, sub("attr0 <= 10"), m_);
  (void)b.handle_subscribe(2, 2, sub("attr0 <= 10"), m_);
  const auto action = b.handle_event(1, event(s_, {5}));
  EXPECT_EQ(action.forward_links, (std::vector<int>{2}));
}

TEST_F(BrokerTest, UnsubscribeWithdrawsAndReforwards) {
  broker b = make_broker({1});
  (void)b.handle_subscribe(kLocalLink, 1, sub("attr0 <= 100"), m_);
  (void)b.handle_subscribe(kLocalLink, 2, sub("attr0 <= 50"), m_);  // covered by 1
  EXPECT_EQ(b.forwarded_to(1), 1U);
  const auto action = b.handle_unsubscribe(kLocalLink, 1, m_);
  EXPECT_EQ(action.forward_links, (std::vector<int>{1}));
  ASSERT_EQ(action.reforwards.size(), 1U);
  EXPECT_EQ(action.reforwards[0].first, 1);
  EXPECT_EQ(action.reforwards[0].second.first, 2U);
  EXPECT_EQ(b.forwarded_to(1), 1U);
  EXPECT_EQ(b.routing_entries(), 1U);
}

TEST_F(BrokerTest, UnsubscribeOfSuppressedSubscriptionSendsNothing) {
  broker b = make_broker({1});
  (void)b.handle_subscribe(kLocalLink, 1, sub("attr0 <= 100"), m_);
  (void)b.handle_subscribe(kLocalLink, 2, sub("attr0 <= 50"), m_);
  const auto action = b.handle_unsubscribe(kLocalLink, 2, m_);
  EXPECT_TRUE(action.forward_links.empty());
  EXPECT_TRUE(action.reforwards.empty());
  EXPECT_EQ(b.forwarded_to(1), 1U);
}

TEST_F(BrokerTest, UnsubscribeUnknownThrows) {
  broker b = make_broker({1});
  EXPECT_THROW((void)b.handle_unsubscribe(kLocalLink, 99, m_), std::logic_error);
}

TEST_F(BrokerTest, BootstrapForwardedSuppressesCoveredArrivals) {
  // A broker restored from persisted routing state must behave as if the
  // forwarded subscriptions had arrived through handle_subscribe.
  const std::map<int, std::vector<std::pair<sub_id, subscription>>> state{
      {1, {{1, sub("attr0 <= 100")}}}};
  broker_options o;
  broker restored(0, s_, {1, 2}, linear_factory(), o, state);
  EXPECT_EQ(restored.forwarded_to(1), 1U);
  EXPECT_EQ(restored.forwarded_to(2), 0U);
  // Covered by the bootstrapped subscription on link 1; link 2 is empty so
  // the forward still goes there.
  const auto action = restored.handle_subscribe(kLocalLink, 2, sub("attr0 <= 50"), m_);
  EXPECT_EQ(action.forward_links, (std::vector<int>{2}));
  EXPECT_EQ(m_.covering_hits, 1U);
}

TEST_F(BrokerTest, BootstrapMatchesSequentialForwarding) {
  // Bootstrapping with the SFC index (bulk insert_batch path) and feeding
  // the same subscriptions sequentially must leave identical forwarding
  // behavior.
  const covering_index_factory sfc_factory = [](const schema& s) {
    sfc_covering_options o;
    o.array = sfc_array_kind::sorted_vector;
    return std::make_unique<sfc_covering_index>(s, o);
  };
  std::vector<std::pair<sub_id, subscription>> subs;
  for (sub_id id = 1; id <= 20; ++id)
    subs.emplace_back(id, sub("attr0 <= " + std::to_string(id * 10)));

  broker_options o;
  broker sequential(0, s_, {1}, sfc_factory, o);
  std::vector<std::pair<sub_id, subscription>> forwarded;
  for (const auto& [id, body] : subs) {
    const auto action = sequential.handle_subscribe(kLocalLink, id, body, m_);
    if (!action.forward_links.empty()) forwarded.emplace_back(id, body);
  }
  broker restored(0, s_, {1}, sfc_factory, o, {{1, forwarded}});
  ASSERT_EQ(restored.forwarded_to(1), sequential.forwarded_to(1));
  // Both brokers must now suppress/forward identically.
  network_metrics ma;
  network_metrics mb;
  for (sub_id id = 100; id < 120; ++id) {
    const auto body = sub("attr0 <= " + std::to_string((id - 100) * 11 + 3));
    const auto a = sequential.handle_subscribe(kLocalLink, id, body, ma);
    const auto b = restored.handle_subscribe(kLocalLink, id, body, mb);
    EXPECT_EQ(a.forward_links, b.forward_links) << "id=" << id;
  }
}

TEST_F(BrokerTest, BootstrapUnknownLinkThrows) {
  broker b = make_broker({1});
  EXPECT_THROW(b.bootstrap_forwarded(9, {{1, sub("attr0 <= 10")}}), std::invalid_argument);
}

TEST_F(BrokerTest, BootstrapDuplicateIdIsAllOrNothing) {
  broker b = make_broker({1});
  (void)b.handle_subscribe(kLocalLink, 1, sub("attr0 <= 10"), m_);
  ASSERT_EQ(b.forwarded_to(1), 1U);
  // Id 1 is already forwarded on link 1: the whole batch must be rejected
  // without touching the covering index (id 2 must not be half-forwarded).
  EXPECT_THROW(b.bootstrap_forwarded(1, {{2, sub("attr0 <= 200")}, {1, sub("attr0 <= 10")}}),
               std::invalid_argument);
  EXPECT_EQ(b.forwarded_to(1), 1U);
  // A subscription covered by the rejected batch's id 2 must still forward.
  const auto action = b.handle_subscribe(kLocalLink, 3, sub("attr0 <= 150"), m_);
  EXPECT_EQ(action.forward_links, (std::vector<int>{1}));
}

TEST_F(BrokerTest, CoveringChecksCountedInMetrics) {
  broker b = make_broker({1, 2});
  (void)b.handle_subscribe(kLocalLink, 1, sub("attr0 <= 100"), m_);
  EXPECT_EQ(m_.covering_checks, 2U);  // one per outgoing link
  (void)b.handle_subscribe(kLocalLink, 2, sub("attr0 <= 50"), m_);
  EXPECT_EQ(m_.covering_checks, 4U);
  EXPECT_EQ(m_.covering_hits, 2U);
}

}  // namespace
}  // namespace subcover
