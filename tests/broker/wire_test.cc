#include "broker/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "broker/codec.h"
#include "pubsub/parser.h"
#include "util/random.h"
#include "workload/subscription_gen.h"

namespace subcover {
namespace {

schema two_attr_schema() { return workload::make_uniform_schema(2, 8); }

// One message of every type, each exercising its full field set:
// multi-byte varints, negative sender ids, empty and non-empty id lists,
// subscription bodies, snapshot blobs, and a metrics struct with the
// physical TCP counters populated.
std::vector<wire_msg> sample_messages(const schema& s) {
  std::vector<wire_msg> msgs;

  wire_msg hello;
  hello.type = msg_type::hello;
  hello.sender = 7;
  msgs.push_back(hello);

  wire_msg hb;
  hb.type = msg_type::heartbeat;
  msgs.push_back(hb);

  wire_msg sub;
  sub.type = msg_type::subscribe;
  sub.op = (std::uint64_t{3} << 40) | 17;  // high-bits op ids are the norm
  sub.seq = 2;
  sub.id = 300;
  sub.body = parse_subscription(s, "attr0 <= 100, attr1 >= 3");
  msgs.push_back(sub);

  wire_msg unsub;
  unsub.type = msg_type::unsubscribe;
  unsub.op = (std::uint64_t{1} << 40) | 5;
  unsub.seq = 0;
  unsub.id = 42;
  msgs.push_back(unsub);

  wire_msg pub;
  pub.type = msg_type::publish;
  pub.op = (std::uint64_t{2} << 40) | 9;
  pub.seq = 1;
  pub.values = {0, 255, 123456789012345ULL};
  msgs.push_back(pub);

  wire_msg ack;
  ack.type = msg_type::ack;
  ack.op = pub.op;
  ack.seq = 1;
  ack.delivered = {3, 17, 17, 400};  // ascending with a duplicate id
  msgs.push_back(ack);

  wire_msg csub;
  csub.type = msg_type::client_subscribe;
  csub.id = 88;
  csub.body = parse_subscription(s, "attr1 >= 9");
  msgs.push_back(csub);

  wire_msg cunsub;
  cunsub.type = msg_type::client_unsubscribe;
  cunsub.id = 88;
  msgs.push_back(cunsub);

  wire_msg cpub;
  cpub.type = msg_type::client_publish;
  cpub.values = {9, 9};
  msgs.push_back(cpub);

  wire_msg done;
  done.type = msg_type::client_done;
  done.op = (std::uint64_t{1} << 40) | 6;
  done.status = 1;
  done.delivered = {};
  msgs.push_back(done);

  wire_msg dump;
  dump.type = msg_type::client_dump;
  msgs.push_back(dump);

  wire_msg reply;
  reply.type = msg_type::dump_reply;
  reply.snapshot = {0xde, 0xad, 0xbe, 0xef, 0x00};
  reply.metrics.subscription_messages = 12;
  reply.metrics.deliveries = 3;
  reply.metrics.covering_check_ns = 123456789ULL;
  reply.metrics.reconnects = 2;
  reply.metrics.heartbeats_missed = 1;
  reply.metrics.bytes_on_wire = 987654321ULL;
  reply.metrics.partial_writes = 4;
  msgs.push_back(reply);

  wire_msg shutdown;
  shutdown.type = msg_type::client_shutdown;
  msgs.push_back(shutdown);

  return msgs;
}

TEST(WireTest, RoundTripEveryMessageType) {
  const schema s = two_attr_schema();
  for (const auto& m : sample_messages(s)) {
    const auto framed = frame_msg(m);
    frame_decoder dec;
    dec.feed(framed.data(), framed.size());
    const auto payload = dec.next();
    ASSERT_TRUE(payload.has_value()) << "type " << static_cast<int>(m.type);
    const wire_msg back = decode_msg(payload->data(), payload->size());
    EXPECT_EQ(back.type, m.type);
    // Canonical-encoding equality covers every field at once.
    EXPECT_EQ(encode_msg(back), encode_msg(m)) << "type " << static_cast<int>(m.type);
    EXPECT_FALSE(dec.next().has_value());
    EXPECT_EQ(dec.buffered(), 0u);
  }
}

TEST(WireTest, TruncatedFrameYieldsNulloptUntilComplete) {
  const schema s = two_attr_schema();
  wire_msg m;
  m.type = msg_type::client_subscribe;
  m.id = 5;
  m.body = parse_subscription(s, "attr0 <= 10");
  const auto framed = frame_msg(m);

  frame_decoder dec;
  for (std::size_t i = 0; i + 1 < framed.size(); ++i) {
    dec.feed(&framed[i], 1);
    EXPECT_FALSE(dec.next().has_value()) << "after " << (i + 1) << " bytes";
  }
  dec.feed(&framed[framed.size() - 1], 1);
  const auto payload = dec.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(encode_msg(decode_msg(payload->data(), payload->size())), encode_msg(m));
}

TEST(WireTest, ConcatenatedFramesArriveInOrderUnderArbitraryChunking) {
  const schema s = two_attr_schema();
  const auto msgs = sample_messages(s);
  std::vector<std::uint8_t> stream;
  for (const auto& m : msgs) {
    const auto f = frame_msg(m);
    stream.insert(stream.end(), f.begin(), f.end());
  }

  rng r(41);
  for (int trial = 0; trial < 20; ++trial) {
    frame_decoder dec;
    std::size_t fed = 0;
    std::size_t decoded = 0;
    while (fed < stream.size()) {
      const auto chunk =
          std::min(stream.size() - fed, static_cast<std::size_t>(r.uniform(1, 40)));
      dec.feed(stream.data() + fed, chunk);
      fed += chunk;
      while (const auto payload = dec.next()) {
        ASSERT_LT(decoded, msgs.size());
        EXPECT_EQ(*payload, encode_msg(msgs[decoded]));
        ++decoded;
      }
    }
    EXPECT_EQ(decoded, msgs.size());
    EXPECT_EQ(dec.buffered(), 0u);
  }
}

// The contract the transport relies on: a corrupted frame is *detected* —
// the decoder may throw or may wait for more bytes, but it must never hand
// back a payload different from what was sent.
TEST(WireTest, SingleBitFlipsNeverYieldAWrongPayload) {
  const schema s = two_attr_schema();
  wire_msg m;
  m.type = msg_type::subscribe;
  m.op = (std::uint64_t{2} << 40) | 3;
  m.seq = 4;
  m.id = 77;
  m.body = parse_subscription(s, "attr0 <= 100, attr1 >= 3");
  const auto framed = frame_msg(m);
  const auto original = encode_msg(m);

  for (std::size_t bit = 0; bit < framed.size() * 8; ++bit) {
    auto corrupt = framed;
    corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    frame_decoder dec;
    dec.feed(corrupt.data(), corrupt.size());
    try {
      const auto payload = dec.next();
      if (payload.has_value()) {
        // Only acceptable if the flip somehow produced the original bytes
        // back — which a single flip cannot — so this must never happen.
        EXPECT_EQ(*payload, original) << "bit " << bit << " produced a wrong payload";
      }
      // nullopt is fine: the flip enlarged the length header and the
      // decoder is (correctly) waiting for bytes that will never come.
    } catch (const wire_error&) {
      // Detected: checksum mismatch or over-length header.
    }
  }
}

TEST(WireTest, OverLengthHeaderThrowsAndPoisons) {
  std::vector<std::uint8_t> bytes;
  codec::put_u32le(bytes, static_cast<std::uint32_t>(kMaxWirePayload + 1));
  codec::put_u64le(bytes, 0);
  frame_decoder dec;
  dec.feed(bytes.data(), bytes.size());
  EXPECT_THROW((void)dec.next(), wire_error);
  // Poisoned: the stream position is unrecoverable, every later call throws.
  EXPECT_THROW((void)dec.next(), wire_error);
  const std::uint8_t more = 0;
  dec.feed(&more, 1);
  EXPECT_THROW((void)dec.next(), wire_error);
}

TEST(WireTest, ResyncAfterCorruptionIsAFreshDecoder) {
  wire_msg hb;
  hb.type = msg_type::heartbeat;
  auto good = frame_msg(hb);

  auto corrupt = good;
  corrupt[corrupt.size() - 1] ^= 0x01;  // payload flip -> checksum mismatch

  frame_decoder dec;
  dec.feed(corrupt.data(), corrupt.size());
  dec.feed(good.data(), good.size());
  EXPECT_THROW((void)dec.next(), wire_error);
  EXPECT_THROW((void)dec.next(), wire_error);  // no partial state survives

  // Reconnect: the peer replays unacked frames into a fresh decoder.
  frame_decoder fresh;
  fresh.feed(good.data(), good.size());
  const auto payload = fresh.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(decode_msg(payload->data(), payload->size()).type, msg_type::heartbeat);
}

TEST(WireTest, DecodeRejectsUnknownTypeAndTrailingBytes) {
  const std::uint8_t zero = 0;
  EXPECT_THROW((void)decode_msg(&zero, 1), wire_error);
  const std::uint8_t beyond = 14;
  EXPECT_THROW((void)decode_msg(&beyond, 1), wire_error);
  EXPECT_THROW((void)decode_msg(nullptr, 0), wire_error);  // truncated type byte

  wire_msg hb;
  hb.type = msg_type::heartbeat;
  auto bytes = encode_msg(hb);
  bytes.push_back(0x00);
  EXPECT_THROW((void)decode_msg(bytes.data(), bytes.size()), wire_error);
}

// Seeded garbage: random byte streams fed in random chunks must never
// crash, hang, or return a payload that then corrupts decode_msg's state —
// only clean nullopt / wire_error outcomes (run under ASan/UBSan in CI).
TEST(WireTest, RandomGarbageNeverCrashes) {
  rng r(1234);
  for (int trial = 0; trial < 300; ++trial) {
    const auto len = static_cast<std::size_t>(r.uniform(0, 512));
    std::vector<std::uint8_t> garbage(len);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(r.uniform(0, 255));

    frame_decoder dec;
    std::size_t fed = 0;
    bool dead = false;
    while (fed < garbage.size() && !dead) {
      const auto chunk =
          std::min(garbage.size() - fed, static_cast<std::size_t>(r.uniform(1, 64)));
      dec.feed(garbage.data() + fed, chunk);
      fed += chunk;
      try {
        while (const auto payload = dec.next()) {
          // A checksum collision on random bytes is effectively impossible,
          // but if a payload does surface, decoding it must still be safe.
          try {
            (void)decode_msg(payload->data(), payload->size());
          } catch (const wire_error&) {
          }
        }
      } catch (const wire_error&) {
        dead = true;  // connection would be dropped here
      }
    }
  }
}

// Valid streams with random byte mutations: the decoder either delivers
// the untouched prefix frames verbatim or dies with wire_error — it never
// invents a frame that was not sent.
TEST(WireTest, MutatedValidStreamsDetectOrDeliverVerbatim) {
  const schema s = two_attr_schema();
  const auto msgs = sample_messages(s);
  std::vector<std::uint8_t> stream;
  std::vector<std::vector<std::uint8_t>> expected;
  for (const auto& m : msgs) {
    const auto f = frame_msg(m);
    stream.insert(stream.end(), f.begin(), f.end());
    expected.push_back(encode_msg(m));
  }

  rng r(99);
  for (int trial = 0; trial < 200; ++trial) {
    auto mutated = stream;
    const int flips = static_cast<int>(r.uniform(1, 4));
    for (int i = 0; i < flips; ++i) {
      const auto at = r.index(mutated.size());
      mutated[at] = static_cast<std::uint8_t>(r.uniform(0, 255));
    }

    frame_decoder dec;
    dec.feed(mutated.data(), mutated.size());
    std::size_t decoded = 0;
    try {
      while (const auto payload = dec.next()) {
        ASSERT_LT(decoded, expected.size());
        EXPECT_EQ(*payload, expected[decoded]) << "trial " << trial;
        ++decoded;
      }
    } catch (const wire_error&) {
      // Mutation detected mid-stream; everything delivered before it was
      // checked verbatim above.
    }
  }
}

}  // namespace
}  // namespace subcover
