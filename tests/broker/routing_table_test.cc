#include "broker/routing_table.h"

#include <gtest/gtest.h>

#include "pubsub/parser.h"
#include "workload/subscription_gen.h"

namespace subcover {
namespace {

class RoutingTableTest : public ::testing::Test {
 protected:
  schema s_ = workload::make_uniform_schema(1, 8);
  routing_table t_;

  [[nodiscard]] subscription sub(const std::string& text) const {
    return parse_subscription(s_, text);
  }
};

TEST_F(RoutingTableTest, AddRemoveContains) {
  t_.add(1, 100, sub("attr0 <= 10"));
  EXPECT_TRUE(t_.contains(1, 100));
  EXPECT_FALSE(t_.contains(2, 100));
  EXPECT_TRUE(t_.remove(1, 100));
  EXPECT_FALSE(t_.contains(1, 100));
  EXPECT_FALSE(t_.remove(1, 100));
}

TEST_F(RoutingTableTest, DuplicateAddThrows) {
  t_.add(1, 100, sub("attr0 <= 10"));
  EXPECT_THROW(t_.add(1, 100, sub("attr0 <= 20")), std::invalid_argument);
  // Same id on a different link is fine (arrives over multiple links).
  t_.add(2, 100, sub("attr0 <= 10"));
}

TEST_F(RoutingTableTest, EntryCounts) {
  EXPECT_EQ(t_.total_entries(), 0U);
  t_.add(kLocalLink, 1, sub("attr0 <= 10"));
  t_.add(1, 2, sub("attr0 >= 5"));
  t_.add(1, 3, sub("attr0 = 7"));
  EXPECT_EQ(t_.total_entries(), 3U);
  EXPECT_EQ(t_.entries_on(1), 2U);
  EXPECT_EQ(t_.entries_on(kLocalLink), 1U);
  EXPECT_EQ(t_.entries_on(9), 0U);
}

TEST_F(RoutingTableTest, MatchingLinks) {
  t_.add(1, 10, sub("attr0 <= 10"));
  t_.add(2, 20, sub("attr0 >= 200"));
  t_.add(3, 30, sub("attr0 in [5, 8]"));
  const event e(s_, {7});
  EXPECT_EQ(t_.matching_links(e, /*exclude_link=*/-99), (std::vector<int>{1, 3}));
  // Excluded link is skipped even if it matches.
  EXPECT_EQ(t_.matching_links(e, 1), (std::vector<int>{3}));
}

TEST_F(RoutingTableTest, MatchingSubs) {
  t_.add(kLocalLink, 10, sub("attr0 <= 10"));
  t_.add(kLocalLink, 11, sub("attr0 >= 5"));
  t_.add(1, 12, sub("attr0 = 7"));
  EXPECT_EQ(t_.matching_subs(kLocalLink, event(s_, {7})), (std::vector<sub_id>{10, 11}));
  EXPECT_EQ(t_.matching_subs(kLocalLink, event(s_, {3})), (std::vector<sub_id>{10}));
  EXPECT_TRUE(t_.matching_subs(5, event(s_, {3})).empty());
}

TEST_F(RoutingTableTest, SubsNotFrom) {
  t_.add(1, 10, sub("attr0 <= 10"));
  t_.add(2, 20, sub("attr0 >= 5"));
  t_.add(kLocalLink, 30, sub("attr0 = 7"));
  const auto not_from_1 = t_.subs_not_from(1);
  ASSERT_EQ(not_from_1.size(), 2U);
  EXPECT_EQ(not_from_1[0].first, 30U);  // local link (-1) sorts first
  EXPECT_EQ(not_from_1[1].first, 20U);
}

TEST_F(RoutingTableTest, RemoveCleansEmptyLink) {
  t_.add(1, 10, sub("attr0 <= 10"));
  EXPECT_TRUE(t_.remove(1, 10));
  EXPECT_EQ(t_.total_entries(), 0U);
  EXPECT_TRUE(t_.matching_links(event(s_, {5}), -99).empty());
}

}  // namespace
}  // namespace subcover
