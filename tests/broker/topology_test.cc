#include "broker/topology.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace subcover {
namespace {

TEST(Topology, Line) {
  const auto t = topology::line(4);
  EXPECT_EQ(t.size(), 4);
  EXPECT_EQ(t.neighbors(0), (std::vector<int>{1}));
  EXPECT_EQ(t.neighbors(1), (std::vector<int>{0, 2}));
  EXPECT_EQ(t.neighbors(3), (std::vector<int>{2}));
}

TEST(Topology, Star) {
  const auto t = topology::star(5);
  EXPECT_EQ(t.neighbors(0).size(), 4U);
  EXPECT_EQ(t.neighbors(3), (std::vector<int>{0}));
}

TEST(Topology, SingleBroker) {
  const auto t = topology::line(1);
  EXPECT_EQ(t.size(), 1);
  EXPECT_TRUE(t.neighbors(0).empty());
}

TEST(Topology, BalancedTree) {
  const auto t = topology::balanced_tree(2, 3);  // 1+2+4+8 = 15 nodes
  EXPECT_EQ(t.size(), 15);
  EXPECT_EQ(t.neighbors(0).size(), 2U);   // root: two children
  EXPECT_EQ(t.neighbors(14).size(), 1U);  // leaf: parent only
}

TEST(Topology, BalancedTreeDepthZero) {
  EXPECT_EQ(topology::balanced_tree(3, 0).size(), 1);
}

TEST(Topology, RejectsNonTree) {
  // Cycle: 3 nodes, 3 edges.
  EXPECT_THROW(topology(3, {{0, 1}, {1, 2}, {2, 0}}), std::invalid_argument);
  // Disconnected: 4 nodes, edges forming a triangle + isolated node.
  EXPECT_THROW(topology(4, {{0, 1}, {1, 2}, {2, 0}}), std::invalid_argument);
  // Self loop.
  EXPECT_THROW(topology(2, {{0, 0}}), std::invalid_argument);
  // Wrong edge count.
  EXPECT_THROW(topology(3, {{0, 1}}), std::invalid_argument);
}

TEST(Topology, RejectsBadIds) {
  EXPECT_THROW(topology(2, {{0, 2}}), std::invalid_argument);
  EXPECT_THROW(topology(0, {}), std::invalid_argument);
  const auto t = topology::line(3);
  EXPECT_THROW(t.neighbors(3), std::invalid_argument);
  EXPECT_THROW(t.neighbors(-1), std::invalid_argument);
}

TEST(Topology, Path) {
  const auto t = topology::balanced_tree(2, 2);  // 7 nodes: 0; 1,2; 3,4,5,6
  EXPECT_EQ(t.path(3, 3), (std::vector<int>{3}));
  EXPECT_EQ(t.path(3, 4), (std::vector<int>{3, 1, 4}));
  EXPECT_EQ(t.path(3, 6), (std::vector<int>{3, 1, 0, 2, 6}));
  EXPECT_EQ(t.path(0, 5), (std::vector<int>{0, 2, 5}));
}

TEST(Topology, PathEndpointsValidated) {
  const auto t = topology::line(3);
  EXPECT_THROW(t.path(0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace subcover
