#include "broker/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace subcover {
namespace {

TEST(WorkerPool, SubmitRunsEveryJob) {
  std::atomic<int> ran{0};
  std::mutex mu;
  std::condition_variable cv;
  {
    worker_pool pool(4);
    for (int i = 0; i < 100; ++i)
      ASSERT_TRUE(pool.submit([&] {
        if (ran.fetch_add(1) + 1 == 100) {
          const std::lock_guard<std::mutex> lock(mu);
          cv.notify_all();
        }
      }));
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return ran.load() == 100; });
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(WorkerPool, DestructorCompletesQueuedJobs) {
  std::atomic<int> ran{0};
  {
    worker_pool pool(2);
    for (int i = 0; i < 50; ++i) ASSERT_TRUE(pool.submit([&] { ran.fetch_add(1); }));
  }  // ~worker_pool drains the queue before joining
  EXPECT_EQ(ran.load(), 50);
}

TEST(WorkerPool, RunBatchRunsEachIndexExactlyOnce) {
  for (const int workers : {1, 2, 4, 8}) {
    worker_pool pool(workers);
    constexpr std::size_t kN = 500;
    std::vector<std::atomic<int>> counts(kN);
    pool.run_batch(kN, [&](std::size_t i) { counts[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(counts[i].load(), 1) << "workers=" << workers << " i=" << i;
  }
}

TEST(WorkerPool, RunBatchOfZeroAndOne) {
  worker_pool pool(3);
  pool.run_batch(0, [&](std::size_t) { FAIL() << "no indexes to run"; });
  int ran = 0;
  pool.run_batch(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0U);
    ++ran;
  });
  EXPECT_EQ(ran, 1);
}

TEST(WorkerPool, RunBatchInsideWorkerJobDoesNotDeadlock) {
  // The broker network's shape: a submitted job (a broker draining its
  // inbox) forks a batch (its per-link covering shards) and joins it. The
  // caller participates in its own batch, so this must complete even when
  // every pool thread is busy — including a pool of size 1.
  for (const int workers : {1, 2, 4}) {
    worker_pool pool(workers);
    std::atomic<int> items{0};
    std::atomic<int> jobs_done{0};
    std::mutex mu;
    std::condition_variable cv;
    constexpr int kJobs = 8;
    for (int j = 0; j < kJobs; ++j)
      ASSERT_TRUE(pool.submit([&] {
        pool.run_batch(16, [&](std::size_t) { items.fetch_add(1); });
        if (jobs_done.fetch_add(1) + 1 == kJobs) {
          const std::lock_guard<std::mutex> lock(mu);
          cv.notify_all();
        }
      }));
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return jobs_done.load() == kJobs; });
    EXPECT_EQ(items.load(), kJobs * 16);
  }
}

TEST(WorkerPool, RunBatchRethrowsFirstJobException) {
  // A throwing job must neither terminate a pool worker nor deadlock the
  // join: the batch runs every index and the caller gets the exception.
  for (const int workers : {1, 4}) {
    worker_pool pool(workers);
    std::atomic<int> attempted{0};
    EXPECT_THROW(
        pool.run_batch(32,
                       [&](std::size_t i) {
                         attempted.fetch_add(1);
                         if (i % 7 == 3) throw std::runtime_error("shard failed");
                       }),
        std::runtime_error)
        << "workers=" << workers;
    EXPECT_EQ(attempted.load(), 32) << "workers=" << workers;
    // The pool must still be usable afterwards.
    int ran = 0;
    pool.run_batch(4, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 4);
  }
}

TEST(WorkerPool, SubmitDuringDestructionIsRejected) {
  // Regression: a job racing the destructor must be rejected, not queued
  // behind the stop flag. The in-pool job spin-submits until the destructor
  // (running concurrently on the main thread) flips stop_ — with the old
  // always-enqueue submit this test never terminates.
  std::atomic<bool> rejected{false};
  std::atomic<bool> started{false};
  auto pool = std::make_unique<worker_pool>(1);
  // Raw pointer: unique_ptr::reset nulls its pointer before the destructor
  // runs, but the object itself stays valid until the destructor's join —
  // which is exactly the window this test exercises.
  worker_pool* raw = pool.get();
  ASSERT_TRUE(raw->submit([&, raw] {
    started.store(true);
    while (raw->submit([] {})) {
    }  // every accepted no-op still runs before teardown
    rejected.store(true);
  }));
  while (!started.load()) {
  }
  pool.reset();  // sets stop_, completes the spinning job, then joins
  EXPECT_TRUE(rejected.load());
}

TEST(WorkerPool, ClampsToAtLeastOneWorker) {
  worker_pool pool(0);
  EXPECT_EQ(pool.size(), 1);
  int ran = 0;
  pool.run_batch(3, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 3);
}

}  // namespace
}  // namespace subcover
