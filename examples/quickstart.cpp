// Quickstart: detect covering relationships among content-based
// subscriptions with the SFC index.
//
//   $ ./quickstart
//
// Walks through the core API: define a schema, parse subscriptions, insert
// them into the covering index, and run approximate covering checks.
#include <iostream>

#include "subcover.h"

using namespace subcover;

int main() {
  // 1. A message schema: two numeric attributes, 10-bit domains.
  const schema s({
      {"temperature", attribute_type::numeric, 10, {}},
      {"pressure", attribute_type::numeric, 10, {}},
  });

  // 2. The paper's covering index: EO82 transform + Z-order SFC + skip list.
  sfc_covering_index index(s);

  // 3. Register subscriptions (id, predicate).
  index.insert(1, parse_subscription(s, "temperature in [100, 900], pressure in [200, 800]"));
  index.insert(2, parse_subscription(s, "temperature in [400, 600]"));
  index.insert(3, parse_subscription(s, "pressure in [100, 300]"));

  // 4. A new subscription arrives. Is it covered by an existing one?
  const auto incoming =
      parse_subscription(s, "temperature in [300, 700], pressure in [350, 650]");
  covering_check_stats stats;
  const auto hit = index.find_covering(incoming, /*epsilon=*/0.05, &stats);

  std::cout << "incoming:  " << incoming.to_string(s) << "\n";
  if (hit.has_value()) {
    std::cout << "covered by subscription " << *hit << " — no need to propagate it.\n";
  } else {
    std::cout << "not covered — the subscription must be forwarded.\n";
  }
  std::cout << "search cost: " << stats.dominance.runs_probed << " run probes over "
            << stats.dominance.cubes_enumerated << " cubes, searched "
            << static_cast<double>(stats.dominance.volume_fraction_searched) * 100
            << "% of the covering space\n\n";

  // 5. Epsilon trades detection effort for certainty: epsilon = 0 searches
  //    exhaustively (within the cube budget), larger epsilon probes less.
  for (const double eps : {0.0, 0.05, 0.3}) {
    covering_check_stats st;
    const auto found = index.find_covering(incoming, eps, &st);
    std::cout << "epsilon=" << eps << ": " << (found ? "found" : "missed") << " after "
              << st.dominance.runs_probed << " probes\n";
  }

  // 6. Events match subscriptions directly.
  const event e = parse_event(s, "temperature = 500, pressure = 500");
  std::cout << "\nevent " << e.to_string(s) << " matches subscription 1: "
            << (matches(parse_subscription(s, "temperature in [100, 900]"), e) ? "yes" : "no")
            << "\n";
  return 0;
}
