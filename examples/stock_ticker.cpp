// The introduction's stock-quote scenario: subscribers register interest in
// stock events like [stock = IBM, volume > 500, current < 95]; the covering
// index keeps the router's forwarding table minimal.
//
//   $ ./stock_ticker [--subs=4000] [--events=20]
//
// Two parts:
//   1. The paper's literal example (categorical symbol equality) on a
//      coarse-bucketed quote schema, detected exhaustively. Equality
//      constraints produce high-aspect-ratio dominance regions (see
//      EXPERIMENTS.md E7), so exact detection needs compact domains.
//   2. A dealer-desk workload where subscriptions select *sector ranges*
//      (contiguous symbol-id ranges) plus volume/price ranges — the pure
//      range-conjunction model of the paper, where the epsilon-approximate
//      detector suppresses most covered subscriptions cheaply.
#include <iostream>

#include "subcover.h"

using namespace subcover;

int main(int argc, char** argv) {
  cli_flags flags(argc, argv);
  const auto n = static_cast<sub_id>(flags.get_int("subs", 4000));
  const int n_events = static_cast<int>(flags.get_int("events", 20));
  flags.finish();

  // Part 1: the paper's running example, exhaustive detection.
  {
    const schema s({
        {"stock", attribute_type::categorical, 4, {"IBM", "AAPL", "MSFT", "GOOG"}},
        {"volume", attribute_type::numeric, 6, {}},  // blocks of 1,000 shares
        {"price", attribute_type::numeric, 6, {}},   // $2.50 ticks
    });
    sfc_covering_options opts;
    opts.max_cubes = std::uint64_t{1} << 23;
    opts.settle_on_budget = false;
    sfc_covering_index index(s, opts);
    index.insert(1, parse_subscription(s, "stock = IBM, volume >= 10"));
    const auto narrower = parse_subscription(s, "stock = IBM, volume >= 50, price < 38");
    covering_check_stats st;
    const auto hit = index.find_covering(narrower, /*epsilon=*/0.0, &st);
    std::cout << "paper example (coarse quote schema, exhaustive search):\n  "
              << narrower.to_string(s) << "\n  covered by #1 [stock = IBM, volume >= 10]: "
              << (hit.has_value() ? "yes" : "no") << "  (" << st.dominance.runs_probed
              << " run probes)\n\n";
  }

  // Part 2: dealer-desk workload with sector ranges — the range-conjunction
  // model the analysis targets.
  // Two attributes (d = 4 after the transform) is the regime where the
  // epsilon-approximate search is both fast and near-complete; E8 quantifies
  // the fall-off at higher dimensionality.
  const schema s({
      {"sector", attribute_type::numeric, 5, {}},   // contiguous symbol-id ranges
      {"volume", attribute_type::numeric, 10, {}},  // blocks of 100 shares
  });
  std::cout << "dealer workload: sector/volume range subscriptions\n";

  workload::subscription_gen_options wo;
  wo.kind = workload::workload_kind::zipf;
  wo.zipf_s = 1.1;
  wo.mean_width = 0.4;
  wo.wildcard_prob = 0.02;
  workload::subscription_gen gen(s, wo, 42);
  sfc_covering_options opts;
  opts.max_cubes = 8192;  // bounded search: degenerate checks settle fast
  sfc_covering_index table(s, opts);
  sub_id next_id = 100;
  std::uint64_t suppressed = 0;
  accumulator check_us;
  std::vector<subscription> active;
  for (sub_id i = 0; i < n; ++i) {
    const auto sub = gen.next();
    covering_check_stats st;
    const auto coverer = table.find_covering(sub, 0.05, &st);
    check_us.add(static_cast<double>(st.elapsed_ns) / 1000.0);
    if (coverer.has_value()) {
      ++suppressed;  // no need to forward or index it for routing
    } else {
      table.insert(next_id++, sub);
      active.push_back(sub);
    }
  }
  std::cout << "received " << n << " subscriptions; forwarded " << table.size()
            << ", suppressed " << suppressed << " ("
            << fmt_percent(static_cast<double>(suppressed) / static_cast<double>(n))
            << ") as covered\n";
  std::cout << "mean covering-check latency: " << fmt_double(check_us.mean(), 1) << " us\n\n";

  // Matching still works against the reduced table: every event that matches
  // a suppressed subscription also matches some forwarded one.
  workload::event_gen egen(s, 43);
  std::cout << "sample events against the forwarded table:\n";
  for (int e = 0; e < n_events; ++e) {
    const auto ev = egen.next();
    const auto hits = match_all(active, ev);
    std::cout << "  " << ev.to_string(s) << " -> " << hits.size() << " forwarded matches\n";
  }
  return 0;
}
