// Socket-backed broker daemon and its workload driver — the TCP engine's
// runnable face (broker/transport.h).
//
// Daemon mode — one broker process in an overlay:
//
//   $ ./broker_daemon --id=1 --listen=127.0.0.1:7101
//       --peers=0@127.0.0.1:7100,2@127.0.0.1:7102
//       --wal-dir=/tmp/subcover-wal [--fsync] [--epsilon=0.05] [--seed=1]
//       [--checkpoint-every=64] [--heartbeat-ms=500] [--peer-timeout-ms=2500]
//
// Runs until client_shutdown (or SIGKILL, which is the point: restart with
// the same flags and the daemon recovers from its WAL directory and rejoins
// the overlay).
//
// Drive mode — a fig10-style workload over a live cluster, verified
// against the in-process deterministic engine:
//
//   $ ./broker_daemon --drive --brokers=127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102
//       [--subs=300] [--unsubs=60] [--events=60] [--epsilon=0.05]
//       [--skip-subs=0] [--skip-unsubs=0] [--skip-events=0] [--verify-counters=1]
//
// The driver replays the identical operation stream (same seeds) into a
// reference `network` and asserts: every publish's delivered set matches
// byte-for-byte, every broker's final snapshot matches encode_snapshot of
// the reference broker byte-for-byte, and (with --verify-counters) the
// summed logical counters satisfy same_counters. The --skip-* flags replay
// a prefix of each phase into the reference only — how the supervisor
// resumes verification against a cluster that already absorbed an earlier
// drive run (e.g. across a kill-and-recover).
//
// The brokers are assumed to form a line topology in --brokers order; the
// daemons' --peers flags must describe the same line.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "subcover.h"
#include "workload/event_gen.h"

using namespace subcover;

namespace {

std::pair<std::string, int> split_host_port(const std::string& s) {
  const auto colon = s.rfind(':');
  if (colon == std::string::npos)
    throw std::invalid_argument("expected HOST:PORT, got: " + s);
  return {s.substr(0, colon), std::stoi(s.substr(colon + 1))};
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto comma = s.find(',', start);
    if (comma == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

std::vector<std::uint64_t> event_values(const event& e) {
  std::vector<std::uint64_t> v;
  v.reserve(static_cast<std::size_t>(e.attribute_count()));
  for (int i = 0; i < e.attribute_count(); ++i) v.push_back(e.value(i));
  return v;
}

int run_daemon(cli_flags& flags) {
  transport_options o;
  o.broker_id = static_cast<int>(flags.get_int("id", 0));
  const auto [host, port] = split_host_port(flags.get_string("listen", "127.0.0.1:0"));
  o.listen_host = host;
  o.listen_port = port;
  for (const auto& p : split_commas(flags.get_string("peers", ""))) {
    const auto at = p.find('@');
    if (at == std::string::npos) throw std::invalid_argument("expected ID@HOST:PORT: " + p);
    peer_addr pa;
    pa.id = std::stoi(p.substr(0, at));
    std::tie(pa.host, pa.port) = split_host_port(p.substr(at + 1));
    o.peers.push_back(pa);
  }
  o.wal_dir = flags.get_string("wal-dir", "");
  o.wal.fsync_on_append = flags.get_bool("fsync", false);
  o.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  o.checkpoint_every = static_cast<std::uint64_t>(flags.get_int("checkpoint-every", 64));
  o.heartbeat_ms = static_cast<int>(flags.get_int("heartbeat-ms", 500));
  o.peer_timeout_ms = static_cast<int>(flags.get_int("peer-timeout-ms", 2500));
  o.broker.epsilon = flags.get_double("epsilon", 0.05);
  flags.finish();

  const schema s = workload::make_sensor_schema();
  broker_daemon d(s, [](const schema& sc) { return std::make_unique<sfc_covering_index>(sc); },
                  o);
  std::cout << "broker " << o.broker_id << " listening on " << o.listen_host << ":"
            << d.listen_port() << " (" << o.peers.size() << " peers, wal "
            << (o.wal_dir.empty() ? "in-memory" : o.wal_dir) << ")" << std::endl;
  d.run();
  std::cout << "broker " << o.broker_id << " shut down: " << d.metrics().to_string() << "\n";
  return 0;
}

int run_drive(cli_flags& flags) {
  const auto addrs = split_commas(flags.get_string("brokers", ""));
  const int subs = static_cast<int>(flags.get_int("subs", 300));
  const int unsubs = static_cast<int>(flags.get_int("unsubs", 60));
  const int events = static_cast<int>(flags.get_int("events", 60));
  const int skip_subs = static_cast<int>(flags.get_int("skip-subs", 0));
  const int skip_unsubs = static_cast<int>(flags.get_int("skip-unsubs", 0));
  const int skip_events = static_cast<int>(flags.get_int("skip-events", 0));
  const bool verify_counters = flags.get_bool("verify-counters", true);
  const double epsilon = flags.get_double("epsilon", 0.05);
  const int timeout_ms = static_cast<int>(flags.get_int("timeout-ms", 15000));
  flags.finish();
  if (addrs.empty()) {
    std::cerr << "--drive requires --brokers=HOST:PORT,...\n";
    return 2;
  }
  const int nb = static_cast<int>(addrs.size());

  // The reference trajectory: same schema, same line topology, same seeds.
  const schema s = workload::make_sensor_schema();
  network_options no;
  no.use_covering = true;
  no.epsilon = epsilon;
  network ref(topology::line(nb), s, no);
  workload::subscription_gen_options wo;
  wo.kind = workload::workload_kind::clustered;
  wo.clusters = 5;
  workload::subscription_gen sgen(s, wo, 7);
  workload::event_gen egen(s, 8);
  rng pick(9);

  std::vector<cluster_client> clients(static_cast<std::size_t>(nb));
  for (int b = 0; b < nb; ++b) {
    const auto [host, port] = split_host_port(addrs[static_cast<std::size_t>(b)]);
    auto& c = clients[static_cast<std::size_t>(b)];
    c.connect(host, port, timeout_ms);
    // Identify the connection as a client right away: a daemon reaps
    // connections that stay silent past its identify timeout, and the
    // reference replay below can take longer than that.
    wire_msg probe;
    probe.type = msg_type::client_dump;
    (void)c.request(probe, timeout_ms);
  }

  std::uint64_t mismatches = 0;
  for (int i = 0; i < subs; ++i) {
    const int b = static_cast<int>(pick.index(static_cast<std::size_t>(nb)));
    const subscription sub = sgen.next();
    const sub_id id = ref.subscribe(b, sub);
    if (i < skip_subs) continue;  // cluster absorbed this in an earlier run
    wire_msg m;
    m.type = msg_type::client_subscribe;
    m.id = id;
    m.body = sub;
    const auto done = clients[static_cast<std::size_t>(b)].request(m, timeout_ms);
    if (done.type != msg_type::client_done || done.status != 0) ++mismatches;
  }
  for (int i = 0; i < unsubs; ++i) {
    const auto id = pick.uniform(1, static_cast<std::uint64_t>(subs));
    const auto owner = ref.owner_broker(id);
    if (!owner) continue;  // already withdrawn (or never assigned)
    ref.unsubscribe(id);
    if (i < skip_unsubs) continue;
    wire_msg m;
    m.type = msg_type::client_unsubscribe;
    m.id = id;
    const auto done = clients[static_cast<std::size_t>(*owner)].request(m, timeout_ms);
    if (done.type != msg_type::client_done || done.status != 0) ++mismatches;
  }
  std::uint64_t delivery_mismatches = 0;
  std::uint64_t deliveries = 0;
  for (int i = 0; i < events; ++i) {
    const int b = static_cast<int>(pick.index(static_cast<std::size_t>(nb)));
    const event ev = egen.next();
    const auto expect = ref.publish(b, ev);
    if (i < skip_events) continue;
    wire_msg m;
    m.type = msg_type::client_publish;
    m.values = event_values(ev);
    const auto done = clients[static_cast<std::size_t>(b)].request(m, timeout_ms);
    deliveries += done.delivered.size();
    if (done.type != msg_type::client_done || done.status != 0 || done.delivered != expect)
      ++delivery_mismatches;
  }

  // Convergence: every daemon's routing state must be byte-identical to the
  // reference broker's, and the summed logical counters must agree.
  std::uint64_t snapshot_mismatches = 0;
  network_metrics summed;
  wire_msg dump;
  dump.type = msg_type::client_dump;
  for (int b = 0; b < nb; ++b) {
    const auto reply = clients[static_cast<std::size_t>(b)].request(dump, timeout_ms);
    summed += reply.metrics;
    if (reply.snapshot != encode_snapshot(ref.broker_at(b).snapshot())) ++snapshot_mismatches;
  }
  const bool counters_ok = !verify_counters || same_counters(summed, ref.metrics());

  ascii_table table({"ops verified", "deliveries", "delivery mismatches", "snapshot mismatches",
                     "counters"});
  table.add_row({fmt_u64(static_cast<std::uint64_t>(subs - skip_subs + events - skip_events)),
                 fmt_u64(deliveries), fmt_u64(delivery_mismatches),
                 fmt_u64(snapshot_mismatches), counters_ok ? "match" : "MISMATCH"});
  table.print(std::cout);

  const bool ok =
      mismatches == 0 && delivery_mismatches == 0 && snapshot_mismatches == 0 && counters_ok;
  std::cout << (ok ? "PASS" : "FAIL")
            << ": TCP cluster vs in-process deterministic engine\n";
  return ok ? 0 : 1;
}

int run_shutdown(cli_flags& flags) {
  const auto addrs = split_commas(flags.get_string("brokers", ""));
  const int timeout_ms = static_cast<int>(flags.get_int("timeout-ms", 5000));
  flags.finish();
  for (const auto& a : addrs) {
    const auto [host, port] = split_host_port(a);
    cluster_client c;
    c.connect(host, port, timeout_ms);
    wire_msg m;
    m.type = msg_type::client_shutdown;
    c.send(m);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cli_flags flags(argc, argv);
  try {
    if (flags.get_bool("drive", false)) return run_drive(flags);
    if (flags.get_bool("shutdown", false)) return run_shutdown(flags);
    return run_daemon(flags);
  } catch (const std::exception& e) {
    std::cerr << "broker_daemon: " << e.what() << "\n";
    return 2;
  }
}
