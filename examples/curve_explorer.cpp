// Visualize space filling curves and run decompositions in ASCII — a
// hands-on companion to Figures 1, 2 and 5 of the paper.
//
//   $ ./curve_explorer [--bits=3] [--curve=hilbert]
//
// Prints (a) the visit order of every cell in a 2-D universe, and (b) the
// greedy standard-cube decomposition and runs of a sample query rectangle.
#include <iomanip>
#include <iostream>

#include "subcover.h"

using namespace subcover;

namespace {

curve_kind parse_curve(const std::string& name) {
  if (name == "z" || name == "z-order") return curve_kind::z_order;
  if (name == "hilbert") return curve_kind::hilbert;
  if (name == "gray" || name == "gray-code") return curve_kind::gray_code;
  throw std::invalid_argument("unknown curve '" + name + "' (use z | hilbert | gray)");
}

}  // namespace

int main(int argc, char** argv) {
  cli_flags flags(argc, argv);
  const int bits = static_cast<int>(flags.get_int("bits", 3));
  const auto kind = parse_curve(flags.get_string("curve", "hilbert"));
  flags.finish();
  if (bits < 1 || bits > 5) throw std::invalid_argument("--bits must be in [1,5]");

  const universe u(2, bits);
  const auto c = make_curve(kind, u);
  const auto side = u.side();

  std::cout << "visit order of the " << side << "x" << side << " universe on the " << c->name()
            << " curve (row 0 at the bottom):\n\n";
  for (std::uint32_t row = static_cast<std::uint32_t>(side); row-- > 0;) {
    for (std::uint32_t col = 0; col < side; ++col) {
      // Dimension 0 is x (column), dimension 1 is y (row).
      const auto key = c->cell_key(point{col, row});
      std::cout << std::setw(5) << key.to_string();
    }
    std::cout << "\n";
  }

  // Decompose the paper's "shifted square" shape scaled to this universe:
  // side 2^(bits-1) + 1 anchored at the max corner.
  const std::uint64_t qside = (std::uint64_t{1} << (bits - 1)) + 1;
  std::array<std::uint64_t, kMaxDims> len{};
  len[0] = len[1] = qside;
  const extremal_rect region(u, len);
  const rect box = region.to_rect(u);
  std::cout << "\nquery region " << box.to_string() << " (the Figure 2 shape):\n";

  std::cout << "  greedy standard-cube decomposition (Lemma 3.3):\n";
  decompose_rect(u, box, [&](const standard_cube& cube) {
    const auto range = c->cube_range(cube);
    std::cout << "    " << cube.to_string() << " -> keys " << range.to_string() << "\n";
  });

  const auto runs = region_runs(*c, box);
  std::cout << "  runs on the " << c->name() << " curve: " << runs.size() << "\n";
  for (const auto& run : runs) std::cout << "    " << run.to_string() << "\n";

  std::cout << "\ncells in the region, in curve order, with run boundaries:\n  ";
  u512 prev = u512::max();
  for (const auto& run : runs) {
    if (prev != u512::max()) std::cout << " | ";
    for (u512 k = run.lo;; ++k) {
      if (k != run.lo) std::cout << " ";
      std::cout << c->cell_from_key(k).to_string();
      if (k == run.hi) break;
    }
    prev = run.hi;
  }
  std::cout << "\n";
  return 0;
}
