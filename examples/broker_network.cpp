// A multi-broker content-based pub/sub network with covering-optimized
// subscription propagation — the deployment the paper's optimization is for.
//
//   $ ./broker_network [--brokers-depth=3] [--subs=1000] [--events=100] [--epsilon=0.05]
//                      [--chaos=0]
//
// Builds a binary broker tree, subscribes clients with a clustered workload,
// publishes events, and reports the routing-table savings from covering
// along with proof that no delivery was lost.
//
// --chaos=<seed> (0 = off) reruns the covering configuration through the
// fault-injection engine: messages are dropped, duplicated, delayed and
// brokers crash and restart from their write-ahead logs — plus one explicit
// kill-and-recover of the root broker between phases. Deliveries must still
// be complete, demonstrating the durable-broker fault model end to end.
#include <iostream>

#include "subcover.h"

using namespace subcover;

int main(int argc, char** argv) {
  cli_flags flags(argc, argv);
  const int depth = static_cast<int>(flags.get_int("brokers-depth", 3));
  const int subs = static_cast<int>(flags.get_int("subs", 1000));
  const int events = static_cast<int>(flags.get_int("events", 100));
  const double epsilon = flags.get_double("epsilon", 0.05);
  const auto chaos_seed = static_cast<std::uint64_t>(flags.get_int("chaos", 0));
  flags.finish();

  const schema s = workload::make_sensor_schema();
  const topology topo = topology::balanced_tree(2, depth);
  std::cout << "broker tree: " << topo.size() << " brokers (binary, depth " << depth << ")\n";
  std::cout << "schema: region / temperature / humidity / battery\n\n";

  auto run = [&](bool use_covering, double eps) {
    network_options o;
    o.use_covering = use_covering;
    o.epsilon = eps;
    network net(topo, s, o);
    workload::subscription_gen_options wo;
    wo.kind = workload::workload_kind::clustered;
    wo.clusters = 5;
    workload::subscription_gen sgen(s, wo, 7);
    workload::event_gen egen(s, 8);
    rng pick(9);
    for (int i = 0; i < subs; ++i)
      (void)net.subscribe(static_cast<int>(pick.index(static_cast<std::size_t>(topo.size()))),
                          sgen.next());
    std::uint64_t lost = 0;
    for (int e = 0; e < events; ++e) {
      const auto ev = egen.next();
      const auto got =
          net.publish(static_cast<int>(pick.index(static_cast<std::size_t>(topo.size()))), ev);
      lost += net.expected_recipients(ev).size() - got.size();
    }
    return std::tuple{net.metrics().subscription_messages, net.total_routing_entries(),
                      net.metrics().event_messages, lost};
  };

  ascii_table table({"mode", "subscription msgs", "routing entries", "event msgs", "lost"});
  const auto [fm, fe, fev, fl] = run(false, 0.0);
  table.add_row({"flooding", fmt_u64(fm), fmt_u64(fe), fmt_u64(fev), fmt_u64(fl)});
  const auto [cm, ce, cev, cl] = run(true, epsilon);
  table.add_row({"covering eps=" + fmt_double(epsilon, 2), fmt_u64(cm), fmt_u64(ce),
                 fmt_u64(cev), fmt_u64(cl)});
  table.print(std::cout);

  std::cout << "\ncovering cut subscription traffic by "
            << fmt_percent(1.0 - static_cast<double>(cm) / static_cast<double>(fm))
            << " and routing state by "
            << fmt_percent(1.0 - static_cast<double>(ce) / static_cast<double>(fe))
            << ", with zero lost deliveries (one-sided approximation).\n";

  std::uint64_t chaos_lost = 0;
  if (chaos_seed != 0) {
    network_options o;
    o.use_covering = true;
    o.epsilon = epsilon;
    fault_options f;
    f.seed = chaos_seed;
    f.drop_prob = 0.05;
    f.duplicate_prob = 0.05;
    f.delay_prob = 0.3;
    f.crash_prob = 0.01;
    f.checkpoint_every = 32;
    o.faults = f;
    network net(topo, s, o);
    workload::subscription_gen_options wo;
    wo.kind = workload::workload_kind::clustered;
    wo.clusters = 5;
    workload::subscription_gen sgen(s, wo, 7);
    workload::event_gen egen(s, 8);
    rng pick(9);
    for (int i = 0; i < subs; ++i)
      (void)net.subscribe(static_cast<int>(pick.index(static_cast<std::size_t>(topo.size()))),
                          sgen.next());
    // Kill the root broker outright between phases: its routing state is
    // rebuilt from its WAL (snapshot + log replay), counted below.
    const auto replayed = net.recover_broker(0);
    for (int e = 0; e < events; ++e) {
      const auto ev = egen.next();
      const auto got =
          net.publish(static_cast<int>(pick.index(static_cast<std::size_t>(topo.size()))), ev);
      chaos_lost += net.expected_recipients(ev).size() - got.size();
    }
    const auto& m = net.metrics();
    std::cout << "\nchaos run (seed " << chaos_seed
              << "): drop 5%, duplicate 5%, delay 30%, crash 1%/delivery\n";
    ascii_table chaos({"retries", "dups suppressed", "recoveries", "wal bytes", "root replay",
                       "lost"});
    chaos.add_row({fmt_u64(m.retries), fmt_u64(m.duplicates_suppressed), fmt_u64(m.recoveries),
                   fmt_u64(m.wal_bytes), fmt_u64(replayed), fmt_u64(chaos_lost)});
    chaos.print(std::cout);
    std::cout << "every delivery survived the faults: the WAL-append-before-ack protocol "
              << "makes retransmission exactly-once.\n";
  }
  return cl == 0 && fl == 0 && chaos_lost == 0 ? 0 : 1;
}
