// Per-query cost accounting for point dominance queries.
//
// The paper's cost measure is the number of runs accessed in the SFC array
// (each run costs two binary searches regardless of extent, Section 2).
// Alongside that, the engine reports how many standard cubes were enumerated
// to build the probe plan, what fraction of the full query region the plan
// covers (must be >= 1 - epsilon, Lemma 3.2), and how far the search got
// before terminating.
#pragma once

#include <cstdint>
#include <string>

namespace subcover {

struct query_stats {
  // Standard cubes produced by the greedy decomposition of the (possibly
  // truncated) query region.
  std::uint64_t cubes_enumerated = 0;
  // Runs in the probe plan after coalescing adjacent cube ranges.
  std::uint64_t runs_in_plan = 0;
  // Runs actually probed before the query terminated (hit, coverage target
  // reached, or plan exhausted). This is the paper's cost measure and is
  // independent of how the probes are executed: the batched frontier sweep
  // reports the same value as the single-range reference path.
  std::uint64_t runs_probed = 0;
  // --- physical probe-work accounting (how the probes were executed) ------
  // probe_frontier sweeps issued (at most one per occupied level).
  std::uint64_t frontier_batches = 0;
  // Probes that began a fresh search: each level's head probe (rank 0,
  // probed alone before any batching), the first probe of every frontier
  // sweep, and every probe on the single-range (batched_probe == false)
  // path. Each costs a full O(log n) descent of the SFC array.
  std::uint64_t probes_restarted = 0;
  // Probes answered by resuming the previous probe's position inside a
  // frontier sweep (galloping cursor / skip-list fingers) — sublinear in
  // the resume distance instead of O(log n). On a batched query,
  // probes_restarted + probes_resumed is the physical probe count; it can
  // exceed runs_probed when a sweep answers ranges the replay then skips
  // (early hit), and is far below it in restart cost when frontiers are
  // large.
  std::uint64_t probes_resumed = 0;
  // --- cold-tier probe work (all zero unless tiering is enabled via
  // dominance_options::tier_hot_capacity; see sfcarray/tiered_sfc_array.h).
  // Physical counters like the frontier ones: results and every logical
  // field above are identical with tiering on or off. ------------------
  // Probes that consulted the compressed cold tier.
  std::uint64_t tier_cold_probes = 0;
  // Cold consults answered from the per-block envelope summaries alone
  // ("definitely nothing in range", or the block's first entry) — no
  // decode.
  std::uint64_t tier_summary_answers = 0;
  // Cold-tier blocks varint-decoded into scratch.
  std::uint64_t tier_blocks_decoded = 0;
  // Probes whose merged answer came from the cold tier (these entries are
  // marked for promotion to the hot tier).
  std::uint64_t tier_cold_hits = 0;
  // --- maintenance work the query triggered (tombstone/compaction ledger,
  // sfcarray/sfc_array.h maintenance_counters). Physical counters like the
  // tier ones — the end-of-query maintain() pass erases promoted entries
  // from the cold tier and compacts thresholds crossed by churn, none of
  // which changes any logical field above. Zero for backends that erase in
  // place. ------------------------------------------------------------
  std::uint64_t maint_tombstones_added = 0;
  std::uint64_t maint_tombstones_purged = 0;
  std::uint64_t maint_compactions = 0;
  // Truncation parameter m = ceil(log2(2d/epsilon)); 0 for exhaustive.
  int truncation_m = 0;
  // vol(R(t(l,m))) / vol(R(l)) — the fraction the plan covers.
  long double volume_fraction_planned = 0;
  // Fraction of vol(R(l)) actually searched when the query returned.
  long double volume_fraction_searched = 0;
  bool found = false;
  // True when the cube budget stopped enumeration early (settle mode); the
  // probed plan then covers less than the planned fraction and misses are
  // possible even below 1 - epsilon coverage.
  bool budget_exhausted = false;
  std::uint64_t elapsed_ns = 0;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace subcover
