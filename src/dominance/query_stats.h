// Per-query cost accounting for point dominance queries.
//
// The paper's cost measure is the number of runs accessed in the SFC array
// (each run costs two binary searches regardless of extent, Section 2).
// Alongside that, the engine reports how many standard cubes were enumerated
// to build the probe plan, what fraction of the full query region the plan
// covers (must be >= 1 - epsilon, Lemma 3.2), and how far the search got
// before terminating.
#pragma once

#include <cstdint>
#include <string>

namespace subcover {

struct query_stats {
  // Standard cubes produced by the greedy decomposition of the (possibly
  // truncated) query region.
  std::uint64_t cubes_enumerated = 0;
  // Runs in the probe plan after coalescing adjacent cube ranges.
  std::uint64_t runs_in_plan = 0;
  // Runs actually probed before the query terminated (hit, coverage target
  // reached, or plan exhausted).
  std::uint64_t runs_probed = 0;
  // Truncation parameter m = ceil(log2(2d/epsilon)); 0 for exhaustive.
  int truncation_m = 0;
  // vol(R(t(l,m))) / vol(R(l)) — the fraction the plan covers.
  long double volume_fraction_planned = 0;
  // Fraction of vol(R(l)) actually searched when the query returned.
  long double volume_fraction_searched = 0;
  bool found = false;
  // True when the cube budget stopped enumeration early (settle mode); the
  // probed plan then covers less than the planned fraction and misses are
  // possible even below 1 - epsilon coverage.
  bool budget_exhausted = false;
  std::uint64_t elapsed_ns = 0;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace subcover
