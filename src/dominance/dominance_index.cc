#include "dominance/dominance_index.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "sfc/extremal_decomposition.h"
#include "util/bitops.h"
#include "util/timer.h"

namespace subcover {

dominance_index::dominance_index(const universe& u, dominance_options options)
    : universe_(u),
      options_(options),
      curve_(make_curve(options.curve, u)),
      array_(make_sfc_array(options.array)) {}

void dominance_index::insert(const point& p, std::uint64_t id) {
  if (!p.inside(universe_))
    throw std::invalid_argument("dominance_index::insert: point outside universe");
  array_->insert(curve_->cell_key(p), id);
}

bool dominance_index::erase(const point& p, std::uint64_t id) {
  if (!p.inside(universe_))
    throw std::invalid_argument("dominance_index::erase: point outside universe");
  return array_->erase(curve_->cell_key(p), id);
}

int dominance_index::truncation_m(double epsilon) const {
  if (epsilon <= 0) return 0;
  const double d = universe_.dims();
  const int m = static_cast<int>(std::ceil(std::log2(2.0 * d / epsilon)));
  // Side lengths have at most k+1 bits (l = 2^k); truncating to more bits
  // than that is the identity, so clamp for a meaningful stat.
  return std::min(m, universe_.bits() + 1);
}

std::optional<std::uint64_t> dominance_index::query(const point& x, double epsilon,
                                                    query_stats* stats) const {
  if (epsilon < 0 || epsilon >= 1)
    throw std::invalid_argument("dominance_index::query: epsilon must be in [0, 1)");
  if (!x.inside(universe_))
    throw std::invalid_argument("dominance_index::query: point outside universe");
  const stopwatch timer;

  const extremal_rect full = extremal_rect::query_region(universe_, x);
  const long double vol_full = full.volume_ld();
  const int m = truncation_m(epsilon);
  const extremal_rect target = epsilon > 0 ? full.truncated(universe_, m) : full;

  query_stats local;
  query_stats& st = stats != nullptr ? *stats : local;
  st = query_stats{};
  st.truncation_m = m;
  st.volume_fraction_planned = target.volume_ld() / vol_full;

  // The Section 5 search: probe standard cubes of the (truncated) region in
  // descending volume order, tracking the searched-volume ratio, and stop on
  // a hit or once the ratio reaches 1 - epsilon.
  //
  // The exact per-level cube counts N_i (Lemma 3.5, closed form — no
  // enumeration) tell us in advance how many levels the search can possibly
  // need: levels are consumed largest-first, so the search never descends
  // past the first level at which the cumulative volume reaches the
  // coverage target. Cubes below that cutoff are never enumerated, which is
  // what makes typical queries cheap even when the full decomposition is
  // astronomical (regions with extreme aspect ratios, Theorem 4.1).
  const std::vector<u512> level_counts = extremal_level_counts(universe_, target);
  const long double coverage_target =
      epsilon > 0 ? (1.0L - static_cast<long double>(epsilon)) * vol_full
                  : target.volume_ld();

  std::uint64_t budget = options_.max_cubes;
  long double searched = 0;
  long double planned_cum = 0;  // volume of levels enumerated so far
  std::optional<std::uint64_t> result;
  std::vector<key_range> level_ranges;
  bool done = false;
  for (int i = universe_.bits(); i >= 0 && !done; --i) {
    const u512& count = level_counts[static_cast<std::size_t>(i)];
    if (count.is_zero()) continue;
    const long double cube_volume = std::pow(2.0L, i * universe_.dims());
    const long double level_volume = count.to_long_double() * cube_volume;
    // Cubes needed from this level: all of it, unless the coverage target
    // falls inside this level (only possible for epsilon > 0; exhaustive
    // queries always take whole levels so no floating-point boundary math
    // can drop cubes).
    std::uint64_t needed;
    if (epsilon > 0 && planned_cum + level_volume >= coverage_target) {
      needed = static_cast<std::uint64_t>(
                   std::ceil((coverage_target - planned_cum) / cube_volume)) +
               1;  // +1 absorbs long-double rounding at the boundary
      done = true;  // no level below this one can be required
    } else if (count.bit_width() > 63) {
      needed = ~std::uint64_t{0};
    } else {
      needed = count.low64();
    }
    if (needed > budget) {
      if (!options_.settle_on_budget)
        throw std::length_error("dominance_index::query: cube budget exceeded");
      st.budget_exhausted = true;
      needed = budget;
      done = true;
    }
    if (needed == 0) break;

    level_ranges.clear();
    try {
      enumerate_level_cubes(
          universe_, target, i,
          [&](const standard_cube& c) { level_ranges.push_back(curve_->cube_range(c)); },
          needed);
    } catch (const std::length_error&) {
      // Expected: the level holds more cubes than we need; we stop at
      // `needed` of them (all cubes of a level have equal volume, so any
      // subset of the right size reaches the same coverage).
    }
    st.cubes_enumerated += level_ranges.size();
    budget -= level_ranges.size();
    planned_cum += level_volume;

    if (options_.merge_runs) level_ranges = merge_ranges(level_ranges);
    st.runs_in_plan += level_ranges.size();
    // Within the level, probe larger (merged) runs first.
    std::stable_sort(level_ranges.begin(), level_ranges.end(),
                     [](const key_range& a, const key_range& b) {
                       return b.cell_count() < a.cell_count();
                     });
    for (const key_range& run : level_ranges) {
      ++st.runs_probed;
      const auto hit = array_->first_in(run);
      searched += run.cell_count_ld();
      if (hit.has_value()) {
        result = hit->id;
        st.found = true;
        done = true;
        break;
      }
      if (epsilon > 0 && searched >= coverage_target) {
        done = true;
        break;
      }
    }
  }
  st.volume_fraction_searched = searched / vol_full;
  st.elapsed_ns = timer.elapsed_ns();
  return result;
}

}  // namespace subcover
