#include "dominance/dominance_index.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dominance/query_plan.h"
#include "util/bitops.h"

namespace subcover {

dominance_index::dominance_index(const universe& u, dominance_options options)
    : universe_(u),
      options_(options),
      curve_(make_curve(options.curve, u)),
      array_(make_sfc_array(options.array)),
      plan_(std::make_unique<query_plan>(*this)) {}

dominance_index::~dominance_index() = default;

void dominance_index::insert(const point& p, std::uint64_t id) {
  if (!p.inside(universe_))
    throw std::invalid_argument("dominance_index::insert: point outside universe");
  array_->insert(curve_->cell_key(p), id);
}

void dominance_index::insert_batch(const std::vector<std::pair<point, std::uint64_t>>& items) {
  for (const auto& [p, id] : items) {
    (void)id;
    if (!p.inside(universe_))
      throw std::invalid_argument("dominance_index::insert_batch: point outside universe");
  }
  std::vector<sfc_array::entry> entries;
  entries.reserve(items.size());
  for (const auto& [p, id] : items) entries.push_back({curve_->cell_key(p), id});
  array_->bulk_load(std::move(entries));
}

bool dominance_index::erase(const point& p, std::uint64_t id) {
  if (!p.inside(universe_))
    throw std::invalid_argument("dominance_index::erase: point outside universe");
  return array_->erase(curve_->cell_key(p), id);
}

int dominance_index::truncation_m(double epsilon) const {
  if (epsilon <= 0) return 0;
  const double d = universe_.dims();
  const int m = static_cast<int>(std::ceil(std::log2(2.0 * d / epsilon)));
  // Side lengths have at most k+1 bits (l = 2^k); truncating to more bits
  // than that is the identity, so clamp for a meaningful stat.
  return std::min(m, universe_.bits() + 1);
}

std::optional<std::uint64_t> dominance_index::query(const point& x, double epsilon,
                                                    query_stats* stats) const {
  return plan_->run(x, epsilon, stats);
}

std::vector<std::optional<std::uint64_t>> dominance_index::query_batch(
    const std::vector<point>& xs, double epsilon, std::vector<query_stats>* stats) const {
  std::vector<std::optional<std::uint64_t>> results;
  results.reserve(xs.size());
  if (stats != nullptr) stats->resize(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    results.push_back(plan_->run(xs[i], epsilon, stats != nullptr ? &(*stats)[i] : nullptr));
  return results;
}

}  // namespace subcover
