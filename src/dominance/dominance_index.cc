#include "dominance/dominance_index.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <type_traits>

#include "dominance/query_plan.h"
#include "sfcarray/tiered_sfc_array.h"
#include "util/bitops.h"

namespace subcover {

namespace {

// Engine array factory honoring the tiering options: plain backend when
// tiering is off (the default), hot/cold tiered array when on.
template <class K>
std::unique_ptr<basic_sfc_array<K>> make_engine_array(const dominance_options& o) {
  if (o.tier_hot_capacity == 0) {
    auto a = make_basic_sfc_array<K>(o.array);
    a->set_compaction_policy(o.compact_live_fraction);
    return a;
  }
  tiered_array_options t;
  t.hot_backend = o.array;
  t.hot_capacity = o.tier_hot_capacity;
  t.block_entries = o.tier_block_entries;
  t.min_live_fraction = o.compact_live_fraction;
  return std::make_unique<basic_tiered_sfc_array<K>>(t);
}

// Read-only u512 adapter over a narrow array: keys are widened on the way
// out and truncated (with clamping for over-wide probe ranges) on the way
// in, so external callers of dominance_index::array() see the reference
// width whatever the engine runs on. Mutations forward too, keeping the
// view coherent — though the owning index only hands out const references.
template <class K>
class widening_array_view final : public sfc_array {
 public:
  explicit widening_array_view(basic_sfc_array<K>& inner) : inner_(&inner) {}

  void insert(const u512& key, std::uint64_t id) override {
    inner_->insert(narrow_key(key), id);
  }
  bool erase(const u512& key, std::uint64_t id) override {
    return inner_->erase(narrow_key(key), id);
  }
  std::size_t erase_batch(const std::vector<entry>& entries) override {
    std::vector<typename basic_sfc_array<K>::entry> narrow;
    narrow.reserve(entries.size());
    for (const entry& e : entries) narrow.push_back({narrow_key(e.key), e.id});
    return inner_->erase_batch(narrow);
  }
  void maintain() override { inner_->maintain(); }
  [[nodiscard]] maintenance_counters maintenance() const override {
    return inner_->maintenance();
  }
  void set_compaction_policy(double min_live_fraction) override {
    inner_->set_compaction_policy(min_live_fraction);
  }
  void reserve(std::size_t n) override { inner_->reserve(n); }
  void bulk_load(std::vector<entry> entries) override {
    std::vector<typename basic_sfc_array<K>::entry> narrow;
    narrow.reserve(entries.size());
    for (const entry& e : entries) narrow.push_back({narrow_key(e.key), e.id});
    inner_->bulk_load(std::move(narrow));
  }
  [[nodiscard]] std::optional<entry> first_in(const key_range& r) const override {
    return first_in(r, nullptr);
  }
  [[nodiscard]] std::optional<entry> first_in(const key_range& r,
                                              probe_hint* hint) const override {
    basic_key_range<K> nr;
    if (!narrow_range(r, &nr)) return std::nullopt;
    typename basic_sfc_array<K>::probe_hint nh;
    if (hint != nullptr) nh.pos = hint->pos;
    const auto hit = inner_->first_in(nr, hint != nullptr ? &nh : nullptr);
    if (hint != nullptr) hint->pos = nh.pos;
    if (!hit.has_value()) return std::nullopt;
    return entry{key_traits<K>::widen(hit->key), hit->id};
  }
  void probe_frontier(std::span<const key_range> frontier,
                      frontier_sink& sink) const override {
    // Narrow the frontier and forward to the inner batched sweep, widening
    // each answer on the way out. Frontier lows are non-decreasing, so the
    // ranges that fall entirely above the narrow key domain form a suffix:
    // the prefix maps 1:1 onto an inner sweep (clamping hi preserves the
    // answers, exactly as first_in does), the suffix is reported as misses
    // in order. Unlike the backends this adapter allocates (the narrowed
    // prefix); it is a convenience view, not the query hot path — the plan
    // binds to the inner array directly.
    std::vector<basic_key_range<K>> narrowed;
    narrowed.reserve(frontier.size());
    for (const key_range& r : frontier) {
      basic_key_range<K> nr;
      if (!narrow_range(r, &nr)) break;
      narrowed.push_back(nr);
    }
    struct widening_sink final : basic_sfc_array<K>::frontier_sink {
      sfc_array::frontier_sink* out;
      bool stopped = false;
      bool on_probe(std::size_t index,
                    const typename basic_sfc_array<K>::entry* hit) override {
        bool keep_going;
        if (hit != nullptr) {
          const sfc_array::entry widened{key_traits<K>::widen(hit->key), hit->id};
          keep_going = out->on_probe(index, &widened);
        } else {
          keep_going = out->on_probe(index, nullptr);
        }
        if (!keep_going) stopped = true;
        return keep_going;
      }
    };
    widening_sink ws;
    ws.out = &sink;
    inner_->probe_frontier(std::span<const basic_key_range<K>>(narrowed), ws);
    if (ws.stopped) return;
    for (std::size_t i = narrowed.size(); i < frontier.size(); ++i) {
      if (!sink.on_probe(i, nullptr)) return;
    }
  }
  [[nodiscard]] std::uint64_t count_in(const key_range& r) const override {
    basic_key_range<K> nr;
    if (!narrow_range(r, &nr)) return 0;
    return inner_->count_in(nr);
  }
  [[nodiscard]] std::size_t size() const override { return inner_->size(); }
  void for_each(const std::function<void(const entry&)>& fn) const override {
    inner_->for_each([&](const typename basic_sfc_array<K>::entry& e) {
      fn(entry{key_traits<K>::widen(e.key), e.id});
    });
  }
  [[nodiscard]] std::size_t memory_footprint() const override {
    // The view owns nothing; report the viewed array so callers holding the
    // facade see the real storage cost.
    return inner_->memory_footprint();
  }

 private:
  static K narrow_key(const u512& key) {
    const K k = key_traits<K>::truncate(key);
    if (key_traits<K>::widen(k) != key)
      throw std::invalid_argument("sfc_array: key wider than the index's key type");
    return k;
  }
  // Clamps [r.lo, r.hi] to the narrow key domain; false if empty there.
  static bool narrow_range(const key_range& r, basic_key_range<K>* out) {
    const u512 nmax = key_traits<K>::widen(key_traits<K>::max());
    if (r.lo > nmax) return false;
    out->lo = key_traits<K>::truncate(r.lo);
    out->hi = r.hi > nmax ? key_traits<K>::max() : key_traits<K>::truncate(r.hi);
    return true;
  }

  basic_sfc_array<K>* inner_;
};

}  // namespace

dominance_index::dominance_index(const universe& u, dominance_options options)
    : universe_(u),
      options_(options),
      width_(options.width == key_width::automatic ? select_key_width(u.key_bits())
                                                   : options.width) {
  if (options_.head_probe < 0)
    throw std::invalid_argument(
        "dominance_index: head_probe must be >= 0 (0 = adaptive)");
  switch (width_) {
    case key_width::w64:
      engine_.emplace<engine<std::uint64_t>>(
          engine<std::uint64_t>{make_basic_curve<std::uint64_t>(options.curve, u),
                                make_engine_array<std::uint64_t>(options_)});
      break;
    case key_width::w128:
      engine_.emplace<engine<u128>>(engine<u128>{make_basic_curve<u128>(options.curve, u),
                                                 make_engine_array<u128>(options_)});
      break;
    case key_width::w512:
    case key_width::automatic:
      width_ = key_width::w512;
      engine_.emplace<engine<u512>>(engine<u512>{make_basic_curve<u512>(options.curve, u),
                                                 make_engine_array<u512>(options_)});
      break;
  }
  // Narrow engines get u512 facades so sfc()/array() keep their reference-
  // width signatures.
  std::visit(
      [&](auto& e) {
        using K = typename std::decay_t<decltype(*e.curve)>::key_type;
        if constexpr (!std::is_same_v<K, u512>) {
          facade_curve_ = make_curve(options_.curve, universe_);
          facade_array_ = std::make_unique<widening_array_view<K>>(*e.array);
        }
      },
      engine_);
  plan_ = std::make_unique<query_plan>(*this);
}

dominance_index::~dominance_index() = default;

const curve& dominance_index::sfc() const {
  if (facade_curve_ != nullptr) return *facade_curve_;
  return *std::get<engine<u512>>(engine_).curve;
}

const sfc_array& dominance_index::array() const {
  if (facade_array_ != nullptr) return *facade_array_;
  return *std::get<engine<u512>>(engine_).array;
}

std::size_t dominance_index::size() const {
  return std::visit([](const auto& e) { return e.array->size(); }, engine_);
}

std::size_t dominance_index::memory_footprint() const {
  return std::visit([](const auto& e) { return e.array->memory_footprint(); }, engine_);
}

void dominance_index::insert(const point& p, std::uint64_t id) {
  if (!p.inside(universe_))
    throw std::invalid_argument("dominance_index::insert: point outside universe");
  std::visit([&](auto& e) { e.array->insert(e.curve->cell_key(p), id); }, engine_);
}

void dominance_index::insert_batch(const std::vector<std::pair<point, std::uint64_t>>& items) {
  for (const auto& [p, id] : items) {
    (void)id;
    if (!p.inside(universe_))
      throw std::invalid_argument("dominance_index::insert_batch: point outside universe");
  }
  std::visit(
      [&](auto& e) {
        using Array = std::decay_t<decltype(*e.array)>;
        std::vector<typename Array::entry> entries;
        entries.reserve(items.size());
        for (const auto& [p, id] : items) entries.push_back({e.curve->cell_key(p), id});
        e.array->bulk_load(std::move(entries));
      },
      engine_);
}

bool dominance_index::erase(const point& p, std::uint64_t id) {
  if (!p.inside(universe_))
    throw std::invalid_argument("dominance_index::erase: point outside universe");
  return std::visit([&](auto& e) { return e.array->erase(e.curve->cell_key(p), id); }, engine_);
}

std::size_t dominance_index::erase_batch(
    const std::vector<std::pair<point, std::uint64_t>>& items) {
  for (const auto& [p, id] : items) {
    (void)id;
    if (!p.inside(universe_))
      throw std::invalid_argument("dominance_index::erase_batch: point outside universe");
  }
  return std::visit(
      [&](auto& e) {
        using Array = std::decay_t<decltype(*e.array)>;
        std::vector<typename Array::entry> entries;
        entries.reserve(items.size());
        for (const auto& [p, id] : items) entries.push_back({e.curve->cell_key(p), id});
        return e.array->erase_batch(entries);
      },
      engine_);
}

void dominance_index::maintain() {
  std::visit([](auto& e) { e.array->maintain(); }, engine_);
}

maintenance_counters dominance_index::maintenance() const {
  return std::visit([](const auto& e) { return e.array->maintenance(); }, engine_);
}

int dominance_index::truncation_m(double epsilon) const {
  if (epsilon <= 0) return 0;
  const double d = universe_.dims();
  const int m = static_cast<int>(std::ceil(std::log2(2.0 * d / epsilon)));
  // Side lengths have at most k+1 bits (l = 2^k); truncating to more bits
  // than that is the identity, so clamp for a meaningful stat.
  return std::min(m, universe_.bits() + 1);
}

std::optional<std::uint64_t> dominance_index::query(const point& x, double epsilon,
                                                    query_stats* stats) const {
  return plan_->run(x, epsilon, stats);
}

std::vector<std::optional<std::uint64_t>> dominance_index::query_batch(
    const std::vector<point>& xs, double epsilon, std::vector<query_stats>* stats) const {
  std::vector<std::optional<std::uint64_t>> results;
  results.reserve(xs.size());
  if (stats != nullptr) stats->resize(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    results.push_back(plan_->run(xs[i], epsilon, stats != nullptr ? &(*stats)[i] : nullptr));
  return results;
}

}  // namespace subcover
