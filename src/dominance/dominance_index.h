// Point dominance index — the core engine of the paper.
//
// Problem 1 (exhaustive): given query point x, report any indexed point in
// the extremal region ([x_1, max], ..., [x_d, max]).
// Problem 2 (epsilon-approximate): search a sub-region of volume at least
// (1 - epsilon) * vol and report a point if one is found there.
//
// Algorithm (Section 5): points are kept in SFC order in an SFC array. A
// query streams the minimal standard-cube partition of its (possibly
// truncated, Lemma 3.2) extremal region directly as Equation-1 key
// intervals (the corner-free enumerator of extremal_decomposition.h — no
// cube coordinates are ever materialized), coalesces adjacent intervals
// into runs, and probes runs in descending volume order, tracking the
// searched fraction of the full region. It stops at the first hit, or once
// the searched fraction reaches 1 - epsilon, or when the plan is exhausted.
//
// The approximate search has one-sided error: a returned id always lies in
// the query region (true dominance); only misses are possible.
//
// Key-width selection: at construction the index picks the narrowest key
// type that holds the universe's d*k key bits — std::uint64_t (d*k <= 64),
// u128 (<= 128), or u512 — and instantiates the whole curve -> SFC array ->
// query pipeline at that width (util/key_traits.h). The paper's evaluation
// universes and most realistic schemas fit 128 bits, so probes, compares
// and shifts run on one or two machine words instead of eight. The choice
// is observable via width() and overridable with dominance_options::width
// (used by equivalence tests and benches); every width computes identical
// results. sfc() and array() expose reference-width (u512) views whatever
// the internal width, so existing callers keep working.
//
// Query execution is split into a reusable query_plan (query_plan.h): the
// plan owns all scratch the search needs, so a warm plan performs zero heap
// allocations per query. query() routes through an index-internal plan —
// convenient, but it makes concurrent query() calls on one index unsafe
// even though query() is const. Concurrent readers (e.g. brokers sharing an
// index across threads) must construct one query_plan per thread instead.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <variant>
#include <vector>

#include "dominance/query_stats.h"
#include "geometry/extremal.h"
#include "geometry/point.h"
#include "geometry/universe.h"
#include "sfc/curve.h"
#include "sfcarray/sfc_array.h"
#include "util/key_traits.h"
#include "util/simd.h"

namespace subcover {

struct dominance_options {
  curve_kind curve = curve_kind::z_order;
  sfc_array_kind array = sfc_array_kind::skiplist;
  // Key width of the internal pipeline. `automatic` (the default) selects
  // the narrowest type that fits the universe; forcing a wider type is
  // valid (tests force u512 to cross-check the narrow paths), forcing a
  // narrower one than the universe needs throws at construction.
  key_width width = key_width::automatic;
  // Coalesce adjacent cube ranges into runs before probing (Lemma 3.1 makes
  // runs <= cubes; disabling probes raw cubes, matching the paper's
  // cube-count analysis exactly).
  bool merge_runs = true;
  // Probe each level's run frontier with one batched probe_frontier sweep
  // over the SFC array (resumed searches, sfcarray/sfc_array.h) instead of
  // one independent first_in per run. Results and every pre-existing
  // query_stats field are byte-identical either way; only the physical
  // probe-work counters (frontier_batches / probes_restarted /
  // probes_resumed) differ. Effective only with merge_runs (the sweep needs
  // the key-sorted merged frontier); disable to force the single-range
  // reference path, the equivalence oracle in tests.
  bool batched_probe = true;
  // How many of a level's top-volume runs are probed individually (one
  // fresh first_in descent each) before the batched frontier sweep engages
  // for the remainder. 1 (the pinned default) reproduces the PR-4 behavior
  // exactly: probe rank 0 alone — found by one O(m) scan, no sort — and
  // only a miss engages the ordering + sweep machinery. 0 selects the depth
  // adaptively per plan: the plan keeps a running histogram of the rank at
  // which past queries hit and probes the smallest prefix that captured
  // >= 90% of them (clamped to 8). Values > 1 force a fixed deeper head.
  // Results and all logical query_stats are identical for every setting
  // (the probe order never changes); only the physical restart/resume split
  // varies. Applies to both batched paths (merged runs, and the cube-count
  // path when merge_runs is false); ignored on the single-range reference
  // path. Negative values throw std::invalid_argument at construction.
  int head_probe = 1;
  // How the query plan runs its level-frontier kernels (util/simd.h):
  // `automatic` (the default) uses the runtime-dispatched scalar/SSE4.2/AVX2
  // ladder of util/simd_kernels.h, `force_scalar` pins those call sites to
  // the kernel library's scalar backend, `off` bypasses the kernel library
  // and runs the plan's plain-loop reference implementations. Results, stop
  // decisions and every logical query_stats field are identical for all
  // three settings at every key width; only speed moves. The shared arrays
  // follow the process-wide dispatch (SUBCOVER_FORCE_SCALAR), not this
  // per-index policy.
  simd_mode simd = simd_mode::automatic;
  // Safety valve: queries whose decomposition exceeds this many cubes either
  // throw std::length_error (settle_on_budget == false) or stop enumerating
  // and probe the partial plan collected so far (settle_on_budget == true).
  // Exhaustive queries on large regions grow as l^(d-1) (Theorem 4.1), and
  // query regions with unit-thickness dimensions (wildcard or open-ended
  // subscription constraints after the EO82 transform — the paper's "M x 1"
  // degenerate case) decompose into per-cell runs, so an unbounded search is
  // not viable in production. Settling keeps the one-sided error guarantee:
  // the partial plan holds the largest cubes, so coverage degrades
  // gracefully and hits are still always true.
  std::uint64_t max_cubes = std::uint64_t{1} << 24;
  bool settle_on_budget = false;
  // Hot/cold tiering (sfcarray/tiered_sfc_array.h). 0 (the default) keeps
  // the classic single-tier backend — every existing path is untouched.
  // > 0 stores the index in a tiered array: `array` becomes the hot-tier
  // backend holding at most this many recently inserted / recently hit
  // entries, everything else lives delta/varint-compressed in a
  // compressed_run_store and is decoded on demand. Results and all logical
  // query_stats are byte-identical either way; the physical tier_* stats
  // report the extra cold-tier work.
  std::size_t tier_hot_capacity = 0;
  // Entries per compressed cold-tier block (only meaningful when tiering
  // is enabled).
  std::size_t tier_block_entries = 64;
  // Compaction threshold for deferred erase (tombstones): a region (the
  // sorted vector, or one cold-tier block) is compacted when its live
  // fraction drops below this. 1.0 = eager per-erase compaction (the naive
  // baseline BM_Churn measures against), 0.0 = never compact. Backends
  // without tombstones (skip list) ignore it. Results and all logical
  // query_stats are identical for every setting; only the physical maint_*
  // counters and the erase cost move.
  double compact_live_fraction = 0.5;
};

class query_plan;

class dominance_index {
 public:
  explicit dominance_index(const universe& u, dominance_options options = {});
  ~dominance_index();

  // Multiset semantics; (p, id) pairs should be unique for erase to be
  // meaningful. Throws std::invalid_argument if p is outside the universe.
  void insert(const point& p, std::uint64_t id);
  bool erase(const point& p, std::uint64_t id);

  // Bulk insertion, equivalent to insert() per element; lets the SFC array
  // amortize (one sort + merge for the sorted-vector backend). Throws
  // std::invalid_argument (without modifying the index) if any point is
  // outside the universe.
  void insert_batch(const std::vector<std::pair<point, std::uint64_t>>& items);

  // Bulk erase mirroring insert_batch: equivalent to erase() per element
  // (order-insensitive), returns how many were actually removed, and lets
  // the SFC array pay its tombstone/compaction machinery once per batch —
  // the broker's bulk-withdrawal path. Throws std::invalid_argument
  // (without modifying the index) if any point is outside the universe.
  std::size_t erase_batch(const std::vector<std::pair<point, std::uint64_t>>& items);

  // Applies the backend's deferred maintenance (tombstone compaction, tier
  // flushes/promotions); also run automatically at the end of each query on
  // tiered backends. Churn drivers call it between epochs.
  void maintain();
  // Cumulative tombstone/compaction ledger of the underlying array.
  [[nodiscard]] maintenance_counters maintenance() const;

  // epsilon == 0 requests an exhaustive search; 0 < epsilon < 1 requests an
  // epsilon-approximate search (Problem 2). Values outside [0, 1) throw.
  // Routes through an internal scratch plan: NOT safe to call concurrently
  // on one index (see header comment).
  [[nodiscard]] std::optional<std::uint64_t> query(const point& x, double epsilon,
                                                   query_stats* stats = nullptr) const;

  // Runs one query per point through a single warm plan; results[i] matches
  // query(xs[i], epsilon). When `stats` is non-null it is resized to match
  // and receives the per-query stats. Cheaper than repeated query() calls
  // only in that it shares the same scratch — provided as the natural entry
  // point for callers that already batch (broker bootstrap, benches).
  [[nodiscard]] std::vector<std::optional<std::uint64_t>> query_batch(
      const std::vector<point>& xs, double epsilon,
      std::vector<query_stats>* stats = nullptr) const;

  [[nodiscard]] std::size_t size() const;
  // Bytes owned by the underlying SFC array (hot + cold tiers when tiering
  // is enabled), structural overhead included — see
  // basic_sfc_array::memory_footprint.
  [[nodiscard]] std::size_t memory_footprint() const;
  [[nodiscard]] const universe& space() const { return universe_; }
  // The key width the pipeline was instantiated at.
  [[nodiscard]] key_width width() const { return width_; }
  // Reference-width (u512) view of the curve. When the internal width is
  // narrower this is a shadow instance of the same curve kind; its keys
  // equal the internal ones after widening.
  [[nodiscard]] const curve& sfc() const;
  // Reference-width (u512) view of the SFC array (read-only probes widen /
  // truncate at the boundary when the internal width is narrower).
  [[nodiscard]] const sfc_array& array() const;
  [[nodiscard]] const dominance_options& options() const { return options_; }

  // The truncation parameter the query will use for this epsilon:
  // m = ceil(log2(2d/epsilon)), clamped to the universe's side width
  // (Lemma 3.2 makes the truncated region cover >= 1 - epsilon of the
  // volume with this m).
  [[nodiscard]] int truncation_m(double epsilon) const;

 private:
  friend class query_plan;

  // The width-typed half of the index: the curve and the SFC array, both
  // instantiated at key type K.
  template <class K>
  struct engine {
    std::unique_ptr<basic_curve<K>> curve;
    std::unique_ptr<basic_sfc_array<K>> array;
  };

  universe universe_;
  dominance_options options_;
  key_width width_;
  std::variant<engine<std::uint64_t>, engine<u128>, engine<u512>> engine_;
  // u512 facade behind sfc()/array() when the engine is narrow.
  std::unique_ptr<curve> facade_curve_;
  std::unique_ptr<sfc_array> facade_array_;
  // Scratch plan behind query(); mutable because query() is logically const.
  // This is what makes query() non-reentrant (see header comment).
  mutable std::unique_ptr<query_plan> plan_;
};

}  // namespace subcover
