#include "dominance/query_stats.h"

#include <sstream>

namespace subcover {

std::string query_stats::to_string() const {
  std::ostringstream os;
  os << "query_stats{cubes=" << cubes_enumerated << ", runs_plan=" << runs_in_plan
     << ", runs_probed=" << runs_probed << ", batches=" << frontier_batches
     << ", restarted=" << probes_restarted << ", resumed=" << probes_resumed
     << ", tier_cold=" << tier_cold_probes << ", tier_summary=" << tier_summary_answers
     << ", tier_decoded=" << tier_blocks_decoded << ", tier_hits=" << tier_cold_hits
     << ", maint_tombs=" << maint_tombstones_added << ", maint_purged=" << maint_tombstones_purged
     << ", maint_compact=" << maint_compactions << ", m=" << truncation_m
     << ", planned=" << static_cast<double>(volume_fraction_planned)
     << ", searched=" << static_cast<double>(volume_fraction_searched)
     << ", found=" << (found ? "yes" : "no") << ", ns=" << elapsed_ns << "}";
  return os.str();
}

}  // namespace subcover
