// query_plan — the reusable, allocation-free engine behind
// dominance_index::query (paper Section 5).
//
// Architecture (plan -> probe, corner-free): a query is executed level by
// level, largest standard cubes first. For each occupied level of the
// (possibly truncated, Lemma 3.2) extremal query region, the plan streams
// exactly the cubes the coverage target can still need (the closed-form
// level counts of Lemma 3.5 bound the frontier in advance) straight out of
// the Equation-1 enumerator (extremal_decomposition.h) — the level
// enumeration constructs no standard_cube and touches no corner coordinate
// arrays; the curve's child_rank/descend_state API turns bit-plane toggles
// into prefix updates directly. The plan then coalesces the cubes into
// runs, orders the runs by volume, and probes them against the SFC array,
// tracking the searched-volume fraction and the max_cubes budget. The
// search stops at the first hit, at 1 - epsilon coverage, or when the plan
// is exhausted — identical semantics (results and stats) to the original
// monolithic query.
//
// Struct-of-arrays level frontier (the data-parallel layout): the frontier
// of the current level lives in plan-owned columns, not an array of range
// structs. Enumeration appends each cube's LOW key to `lo_col` (every cube
// of level i has the same extent — hi is lo | mask(d*i), never stored per
// cube); coalescing sorts that one key column and emits maximal runs into
// the `run_lo` / `run_hi` columns; `run_ext` (hi - lo lanes) feeds the
// volume ordering and the searched-volume accumulation. On u64-width
// universes (d*k <= 64, the common case) the per-level work on those
// columns — cube coalescing, extent subtraction, the head-probe argbest
// scan, the sweep's suffix-min-rank table — runs through the
// runtime-dispatched vector kernels of util/simd_kernels.h (scalar /
// SSE4.2 / AVX2, picked once per process via util/cpu_features.h).
// dominance_options::simd selects the policy per index: `automatic` uses
// the dispatched kernels, `force_scalar` pins the same call sites to the
// kernel library's scalar backend, and `off` runs the plan's own
// plain-loop implementations — the oracle the other two are pinned
// byte-identical against (tests/dominance/simd_equivalence_test.cc).
// Results, stop decisions and all logical query_stats are identical for
// every setting at every key width; only speed moves.
//
// Batched frontier probing (the default, dominance_options::batched_probe):
// instead of one independent first_in per run — each a fresh O(log n)
// descent of the SFC array — the plan hands the whole merged, key-ascending
// level frontier to basic_sfc_array::probe_frontier, which answers it in
// one resumed sweep (galloping cursor on the sorted vector, per-level
// fingers on the skip list). Volume-descending semantics are preserved
// exactly by separating the *sweep order* (key-ascending, what the array
// wants) from the *replay order* (volume-descending, what the search
// semantics demand): the plan records each range's probe answer during the
// sweep, then replays the answers in volume order, reproducing the
// single-range path's result, stop point and every pre-existing
// query_stats field byte for byte. Rank 0 — the run the single-range path
// probes first, which on hit-dense workloads usually decides the level —
// is found with one O(m) scan and probed alone before any ordering work;
// only a miss engages the sort + sweep machinery for the remaining ranks.
// dominance_options::head_probe generalizes that head: a fixed depth h
// probes the top-h volume ranks individually (fresh descents, in rank
// order) before the sweep answers the rest, and h == 0 picks the depth
// adaptively (see below). The pinned default h = 1 keeps the scan-only
// fast path; results and every logical query_stats field are identical at
// every depth (the probe order never changes — only the restart/resume
// split of the physical counters moves).
// Two prunings keep the sweep from touching runs the replay can never
// reach: (a) with epsilon > 0 the coverage stop point depends only on run
// volumes, so the sweep is cut to the exact volume-order prefix the replay
// can visit before probing anything; (b) once a sweep finds a hit, it
// stops as soon as every remaining range ranks below (smaller volume than)
// the best hit so far — a min-rank-of-suffix table makes that check O(1)
// per probe. The physical probe work is reported in the frontier_batches /
// probes_restarted / probes_resumed stats; runs_probed stays the paper's
// logical cost measure.
//
// Cube-count mode (merge_runs == false) batches too: the frontier is the
// raw cube list in enumeration order — the probe order of the reference
// path — so the plan probes the head cubes individually, sorts the
// remaining cube lows into key order for one probe_frontier sweep, and
// replays the answers in enumeration order. Same logical stats as the
// per-cube reference path; only the physical restart/resume split moves.
//
// Key width: the plan binds to the index's internal width at construction
// (util/key_traits.h) and keeps its level enumeration, run frontier, probe
// cursor and range arithmetic at that width end to end — on a d*k <= 64
// universe every endpoint the hot loop derives, sorts, merges and compares
// is one machine word. The Lemma 3.5 level counts stay u512 (they count
// cells, up to 2^(d*k), and are touched only once per level). Results are
// identical at every width.
//
// Scratch-buffer contract: a plan owns every buffer the search needs (the
// per-level cube counts, the frontier columns of the current level, the
// batched sweep's order/rank/answer buffers, and the array probe cursor).
// Buffers are reused across run() calls, so after the first query of a
// given shape the hot path performs zero heap allocations: no
// std::function dispatch (template visitors), no materialization of the
// full decomposition (per-level streaming with early stop), no
// exception-based control flow, and column-resident run coalescing. This
// is enforced by tests/dominance/query_plan_test.cc (WarmPlanPerformsZero-
// HeapAllocations), which counts operator new calls on a warm plan.
//
// Thread-safety contract: a query_plan is mutable scratch and is NOT
// thread-safe; use one plan per thread. dominance_index::query() routes
// through an index-internal plan, so concurrent query() calls on one index
// are not safe either — concurrent readers must each construct their own
// query_plan over the shared index.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "dominance/query_stats.h"
#include "geometry/point.h"
#include "sfc/curve.h"
#include "sfc/key_range.h"
#include "sfcarray/sfc_array.h"
#include "util/key_traits.h"
#include "util/wideint.h"

namespace subcover {

class dominance_index;
template <class K>
class basic_tiered_sfc_array;

class query_plan {
 public:
  // Binds to an index (and its key width); the plan must not outlive it.
  // Cheap: buffers are grown lazily by the first run().
  explicit query_plan(const dominance_index& index);

  // Executes one query; identical observable behavior (result and stats) to
  // dominance_index::query(x, epsilon, stats).
  std::optional<std::uint64_t> run(const point& x, double epsilon,
                                   query_stats* stats = nullptr);

  [[nodiscard]] const dominance_index& index() const { return *index_; }

 private:
  // The width-typed scratch: the bound curve/array and the struct-of-arrays
  // frontier of the current level, all at key type K.
  template <class K>
  struct typed_state {
    // No default member initializers: GCC rejects them in a nested class
    // template when std::variant's defaulted constructor is checked while
    // the enclosing class is still incomplete.
    typed_state() : curve(nullptr), array(nullptr), tiered(nullptr) {}

    const basic_curve<K>* curve;
    const basic_sfc_array<K>* array;
    // Non-null iff the index's array is hot/cold tiered
    // (dominance_options::tier_hot_capacity > 0). The plan snapshots its
    // tier counters around each query (diffed into query_stats) and runs
    // its maintenance step — promotion of cold hits, capacity flush — at
    // the end of run(). Non-const for exactly that maintenance call; the
    // probe path stays read-only.
    basic_tiered_sfc_array<K>* tiered;
    // Frontier columns of the current level. lo_col: cube lows in
    // enumeration order (the extent of every cube at level i is the
    // constant mask(d*i), so only lows are stored); run_lo/run_hi/run_ext:
    // the coalesced run frontier, key-ascending, one lane per run.
    std::vector<K> lo_col;
    std::vector<K> run_lo;
    std::vector<K> run_hi;
    std::vector<K> run_ext;
    // Materialized AoS sweep list handed to probe_frontier (the array API
    // speaks ranges, the kernels speak columns).
    std::vector<basic_key_range<K>> probe_ranges;
    typename basic_sfc_array<K>::probe_hint hint;  // probe-locality cursor
  };

  template <class K>
  std::optional<std::uint64_t> run_impl(typed_state<K>& ts, const point& x, double epsilon,
                                        query_stats* stats);

  // --- adaptive head-probe estimate (dominance_options::head_probe == 0) --
  // Hit-rank behavior differs sharply by frontier shape: top levels of a
  // big region hit at rank 0 almost always, deep levels and loose epsilons
  // spread hits across ranks. So the estimate keys its histograms by
  // (level, epsilon bucket) — epsilon quantized by magnitude into
  // kAdaptiveEpsBuckets power-of-two bands (bucket 0 = exhaustive) — and
  // decays each histogram by halving once kAdaptiveDecayCap observations
  // accumulate, so the depth tracks the current workload instead of the
  // whole history. The adaptive depth is the smallest rank prefix that
  // captured >= 90% of that cell's past hits (ranks >= kAdaptiveMaxHead - 1
  // pool in the last bucket); until a cell has seen kAdaptiveMinSamples
  // hits it stays at the pinned default of 1. Depth choices never affect
  // results — only the restart/resume split of the physical counters.
  // Plain plan state, not synchronized: a plan is single-threaded scratch
  // by contract.
  static constexpr std::size_t kAdaptiveMaxHead = 8;
  static constexpr std::uint64_t kAdaptiveMinSamples = 32;
  static constexpr std::uint64_t kAdaptiveDecayCap = 256;
  static constexpr std::size_t kAdaptiveEpsBuckets = 8;
  struct adaptive_hist {
    std::array<std::uint64_t, kAdaptiveMaxHead> counts{};
    std::uint64_t total = 0;
  };
  [[nodiscard]] static std::size_t eps_bucket(double epsilon);
  void note_hit_rank(int level, std::size_t eps_b, std::size_t rank);
  [[nodiscard]] std::size_t adaptive_head_depth(int level, std::size_t eps_b) const;

  const dominance_index* index_;
  std::vector<u512> level_counts_;  // Lemma 3.5 counts, reused per query
  // Batched-probe scratch (key-type independent, reused across queries):
  // replay_order_ maps volume-descending rank -> position in the run
  // columns (in cube-count mode it doubles as the sweep's sorted position
  // list); pos_rank_ is its inverse; probe_rank_ holds the rank of each
  // sweep-list element; suffix_min_rank_[i] = min rank among sweep elements
  // i..end (the sweep's early-stop oracle); hit_found_/hit_id_ record each
  // rank's probe answer for the replay.
  std::vector<std::uint32_t> replay_order_;
  std::vector<std::uint32_t> pos_rank_;
  std::vector<std::uint32_t> probe_rank_;
  std::vector<std::uint32_t> suffix_min_rank_;
  std::vector<std::uint8_t> hit_found_;
  std::vector<std::uint64_t> hit_id_;
  std::vector<adaptive_hist> adaptive_;  // (bits + 1) x kAdaptiveEpsBuckets
  std::variant<typed_state<std::uint64_t>, typed_state<u128>, typed_state<u512>> state_;
};

}  // namespace subcover
