// query_plan — the reusable, allocation-free engine behind
// dominance_index::query (paper Section 5).
//
// Architecture (plan -> probe): a query is executed level by level, largest
// standard cubes first. For each occupied level of the (possibly truncated,
// Lemma 3.2) extremal query region, the plan enumerates exactly the cubes
// the coverage target can still need (the closed-form level counts of
// Lemma 3.5 bound the frontier in advance), coalesces their key intervals
// into runs, orders the runs by volume, and probes them against the SFC
// array, tracking the searched-volume fraction and the max_cubes budget.
// The search stops at the first hit, at 1 - epsilon coverage, or when the
// plan is exhausted — identical semantics to the original monolithic query.
//
// Scratch-buffer contract: a plan owns every buffer the search needs (the
// per-level cube counts, the run frontier of the current level, and the
// array probe cursor). Buffers are reused across run() calls, so after the
// first query of a given shape the hot path performs zero heap allocations:
// no std::function dispatch (template visitors), no materialization of the
// full decomposition (per-level streaming with early stop), no
// exception-based control flow, and in-place run coalescing.
//
// Thread-safety contract: a query_plan is mutable scratch and is NOT
// thread-safe; use one plan per thread. dominance_index::query() routes
// through an index-internal plan, so concurrent query() calls on one index
// are not safe either — concurrent readers must each construct their own
// query_plan over the shared index.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dominance/query_stats.h"
#include "geometry/point.h"
#include "sfc/key_range.h"
#include "sfcarray/sfc_array.h"
#include "util/wideint.h"

namespace subcover {

class dominance_index;

class query_plan {
 public:
  // Binds to an index; the plan must not outlive it. Cheap: buffers are
  // grown lazily by the first run().
  explicit query_plan(const dominance_index& index) : index_(&index) {}

  // Executes one query; identical observable behavior (result and stats) to
  // dominance_index::query(x, epsilon, stats).
  std::optional<std::uint64_t> run(const point& x, double epsilon,
                                   query_stats* stats = nullptr);

  [[nodiscard]] const dominance_index& index() const { return *index_; }

 private:
  const dominance_index* index_;
  std::vector<u512> level_counts_;      // Lemma 3.5 counts, reused per query
  std::vector<key_range> level_ranges_; // run frontier of the current level
  sfc_array::probe_hint hint_;          // probe-locality cursor
};

}  // namespace subcover
