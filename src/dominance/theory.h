// Closed-form bounds from the paper, used by benches and tests to place the
// measured costs next to the analysis.
//
//   Lemma 3.2   m >= log2(2d/eps)  =>  vol(R(t(l,m))) / vol(R(l)) >= 1 - eps
//   Lemma 3.7   cubes(R^m(l)) < m * [2^alpha * (2^m - 1)]^(d-1)
//   Theorem 3.1 eps-approximate query cost = O(log(d/eps) * (2^(alpha+1) d/eps)^(d-1))
//   Theorem 4.1 exhaustive query cost on the adversarial R(l) is
//               Omega((2^(alpha-1) * l_d)^(d-1))
#pragma once

#include <cstdint>

namespace subcover::theory {

// Smallest integer m satisfying Lemma 3.2's premise: m = ceil(log2(2d/eps)).
int lemma32_min_m(double epsilon, int dims);

// Lemma 3.2's volume guarantee for a given m: 1 - 2d/2^m (can be negative
// for tiny m; callers clamp as needed).
long double lemma32_volume_guarantee(int m, int dims);

// Lemma 3.7 upper bound on cubes(R^m(l)) exactly as stated in the paper:
// m * (2^alpha * (2^m - 1))^(d-1). NOTE: the paper's Case 2.1 derivation
// assumes 2^alpha > d - 1; when that fails (small aspect ratios in three or
// more dimensions) the stated bound can be violated — e.g. d = 3, alpha = 0,
// m = 2 gives cubes = 20 > 18. See lemma37_cube_bound_general.
long double lemma37_cube_bound(int m, int alpha, int dims);

// Assumption-free variant of the same derivation: Case 2.1 without the
// 2^alpha > d - 1 shortcut yields the extra factor (1 + (d-1)/2^alpha):
//   cubes(R^m(l)) < m * (2^alpha * (2^m - 1))^(d-1) * (1 + (d-1)/2^alpha).
// This is what tests and benches validate against; it coincides with the
// paper's bound up to the constant hidden by Theorem 3.1's O(.).
long double lemma37_cube_bound_general(int m, int alpha, int dims);

// Theorem 3.1 upper bound with m chosen per Lemma 3.2.
long double thm31_query_bound(double epsilon, int alpha, int dims);

// Theorem 4.1 lower bound: (2^(alpha-1) * shortest_side)^(d-1) where
// shortest_side is the length of the shortest side of the query rectangle.
long double thm41_lower_bound(int alpha, std::uint64_t shortest_side, int dims);

}  // namespace subcover::theory
