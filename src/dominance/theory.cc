#include "dominance/theory.h"

#include <cmath>
#include <stdexcept>

namespace subcover::theory {

int lemma32_min_m(double epsilon, int dims) {
  if (epsilon <= 0 || epsilon >= 1)
    throw std::invalid_argument("lemma32_min_m: epsilon must be in (0, 1)");
  if (dims < 1) throw std::invalid_argument("lemma32_min_m: dims must be positive");
  return static_cast<int>(std::ceil(std::log2(2.0 * dims / epsilon)));
}

long double lemma32_volume_guarantee(int m, int dims) {
  return 1.0L - 2.0L * dims / std::pow(2.0L, m);
}

long double lemma37_cube_bound(int m, int alpha, int dims) {
  if (m < 1 || alpha < 0 || dims < 1)
    throw std::invalid_argument("lemma37_cube_bound: bad parameters");
  const long double base = std::pow(2.0L, alpha) * (std::pow(2.0L, m) - 1.0L);
  return static_cast<long double>(m) * std::pow(base, dims - 1);
}

long double lemma37_cube_bound_general(int m, int alpha, int dims) {
  const long double correction =
      1.0L + static_cast<long double>(dims - 1) / std::pow(2.0L, alpha);
  return lemma37_cube_bound(m, alpha, dims) * correction;
}

long double thm31_query_bound(double epsilon, int alpha, int dims) {
  return lemma37_cube_bound(lemma32_min_m(epsilon, dims), alpha, dims);
}

long double thm41_lower_bound(int alpha, std::uint64_t shortest_side, int dims) {
  if (dims < 1) throw std::invalid_argument("thm41_lower_bound: dims must be positive");
  // (2^alpha * l / 2)^(d-1), Theorem 4.1.
  const long double base =
      std::pow(2.0L, alpha) * static_cast<long double>(shortest_side) / 2.0L;
  return std::pow(base, dims - 1);
}

}  // namespace subcover::theory
