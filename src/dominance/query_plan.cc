#include "dominance/query_plan.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dominance/dominance_index.h"
#include "sfc/extremal_decomposition.h"
#include "util/timer.h"

namespace subcover {

query_plan::query_plan(const dominance_index& index) : index_(&index) {
  // Bind the width-typed scratch to the index's engine.
  std::visit(
      [this](const auto& e) {
        using K = typename std::decay_t<decltype(*e.curve)>::key_type;
        typed_state<K> ts;
        ts.curve = e.curve.get();
        ts.array = e.array.get();
        state_.emplace<typed_state<K>>(std::move(ts));
      },
      index.engine_);
}

std::optional<std::uint64_t> query_plan::run(const point& x, double epsilon,
                                             query_stats* stats) {
  return std::visit([&](auto& ts) { return run_impl(ts, x, epsilon, stats); }, state_);
}

template <class K>
std::optional<std::uint64_t> query_plan::run_impl(typed_state<K>& ts, const point& x,
                                                  double epsilon, query_stats* stats) {
  const dominance_index& idx = *index_;
  const universe& u = idx.space();
  const dominance_options& opts = idx.options();
  if (epsilon < 0 || epsilon >= 1)
    throw std::invalid_argument("dominance_index::query: epsilon must be in [0, 1)");
  if (!x.inside(u))
    throw std::invalid_argument("dominance_index::query: point outside universe");
  const stopwatch timer;

  const extremal_rect full = extremal_rect::query_region(u, x);
  const long double vol_full = full.volume_ld();
  const int m = idx.truncation_m(epsilon);
  const extremal_rect target = epsilon > 0 ? full.truncated(u, m) : full;

  query_stats local;
  query_stats& st = stats != nullptr ? *stats : local;
  st = query_stats{};
  st.truncation_m = m;
  st.volume_fraction_planned = target.volume_ld() / vol_full;

  // The Section 5 search: probe standard cubes of the (truncated) region in
  // descending volume order, tracking the searched-volume ratio, and stop on
  // a hit or once the ratio reaches 1 - epsilon.
  //
  // The exact per-level cube counts N_i (Lemma 3.5, closed form — no
  // enumeration) tell us in advance how many levels the search can possibly
  // need: levels are consumed largest-first, so the search never descends
  // past the first level at which the cumulative volume reaches the
  // coverage target. Cubes below that cutoff are never enumerated, which is
  // what makes typical queries cheap even when the full decomposition is
  // astronomical (regions with extreme aspect ratios, Theorem 4.1).
  extremal_level_counts_into(u, target, level_counts_);
  const long double coverage_target =
      epsilon > 0 ? (1.0L - static_cast<long double>(epsilon)) * vol_full
                  : target.volume_ld();

  std::uint64_t budget = opts.max_cubes;
  long double searched = 0;
  long double planned_cum = 0;  // volume of levels enumerated so far
  std::optional<std::uint64_t> result;
  bool done = false;
  // One range sink for the whole query: the emitter's per-level prefix /
  // state caches are reusable across levels (each fresh walk forces a full
  // recomputation via its watermark), so its construction cost is paid once
  // per query rather than once per occupied level.
  std::uint64_t needed = 0;
  std::uint64_t taken = 0;
  auto sink = [&](const basic_key_range<K>& run) {
    ts.level_ranges.push_back(run);
    return ++taken < needed;
  };
  detail::range_emitter<K, decltype(sink)> ranges(*ts.curve, 0, sink);
  for (int i = u.bits(); i >= 0 && !done; --i) {
    const u512& count = level_counts_[static_cast<std::size_t>(i)];
    if (count.is_zero()) continue;
    const long double cube_volume = std::ldexp(1.0L, i * u.dims());
    const long double level_volume = count.to_long_double() * cube_volume;
    // Cubes needed from this level: all of it, unless the coverage target
    // falls inside this level (only possible for epsilon > 0; exhaustive
    // queries always take whole levels so no floating-point boundary math
    // can drop cubes).
    if (epsilon > 0 && planned_cum + level_volume >= coverage_target) {
      needed = static_cast<std::uint64_t>(
                   std::ceil((coverage_target - planned_cum) / cube_volume)) +
               1;  // +1 absorbs long-double rounding at the boundary
      done = true;  // no level below this one can be required
    } else if (count.bit_width() > 63) {
      needed = ~std::uint64_t{0};
    } else {
      needed = count.low64();
    }
    if (needed > budget) {
      if (!opts.settle_on_budget)
        throw std::length_error("dominance_index::query: cube budget exceeded");
      st.budget_exhausted = true;
      needed = budget;
      done = true;
    }
    if (needed == 0) break;

    // Stream exactly `needed` key ranges of the level into the run frontier
    // (all cubes of a level have equal volume, so any subset of the right
    // size reaches the same coverage). The corner-free enumerator emits each
    // cube directly as its Equation-1 key interval at the plan's width — no
    // standard_cube, no coordinate arrays, no wide cube_prefix math. The
    // sink's bool return stops enumeration cleanly — no exception control
    // flow, no over-enumeration. count > 0 already implies the level is
    // occupied, so the walk runs unconditionally.
    ts.level_ranges.clear();
    taken = 0;
    ranges.set_level(i);
    detail::level_walk<decltype(ranges)>(u, target, i, ranges, needed).run();
    st.cubes_enumerated += ts.level_ranges.size();
    budget -= ts.level_ranges.size();
    planned_cum += level_volume;

    if (opts.merge_runs) {
      merge_ranges_inplace(ts.level_ranges);
      // Within the level, probe larger merged runs first; ties keep
      // ascending key order (the post-merge order), which makes the probe
      // sequence deterministic and friendly to the array's locality cursor.
      using range_type = basic_key_range<K>;
      std::sort(ts.level_ranges.begin(), ts.level_ranges.end(),
                [](const range_type& a, const range_type& b) {
                  // Compare extents via hi - lo: identical ordering to
                  // cell_count() without the +1's wrap at the full range.
                  const K ca = a.hi - a.lo;
                  const K cb = b.hi - b.lo;
                  if (ca != cb) return cb < ca;
                  return a.lo < b.lo;
                });
    }
    // Without merging, all runs of a level are equal-volume cubes already in
    // enumeration order — nothing to reorder.
    st.runs_in_plan += ts.level_ranges.size();
    for (const basic_key_range<K>& run : ts.level_ranges) {
      ++st.runs_probed;
      const auto hit = ts.array->first_in(run, &ts.hint);
      searched += run.cell_count_ld();
      if (hit.has_value()) {
        result = hit->id;
        st.found = true;
        done = true;
        break;
      }
      if (epsilon > 0 && searched >= coverage_target) {
        done = true;
        break;
      }
    }
  }
  st.volume_fraction_searched = searched / vol_full;
  st.elapsed_ns = timer.elapsed_ns();
  return result;
}

}  // namespace subcover
