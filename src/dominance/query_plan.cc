#include "dominance/query_plan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <span>
#include <stdexcept>

#include "dominance/dominance_index.h"
#include "sfc/extremal_decomposition.h"
#include "sfcarray/tiered_sfc_array.h"
#include "util/timer.h"

namespace subcover {

namespace {

// Stack-allocated receiver for one batched level sweep: records each probed
// range's answer under its volume-descending rank and stops the sweep as
// soon as no remaining range can outrank the best hit found so far.
template <class K>
struct sweep_sink final : basic_sfc_array<K>::frontier_sink {
  using entry = typename basic_sfc_array<K>::entry;

  const std::uint32_t* rank;        // sweep position -> volume rank
  const std::uint32_t* suffix_min;  // min rank among sweep positions i..end
  std::size_t n;                    // sweep length
  std::uint8_t* found;              // rank-indexed answers
  std::uint64_t* ids;
  std::uint32_t best_rank;          // smallest rank that hit; n as "none"
  std::uint64_t visited = 0;

  bool on_probe(std::size_t i, const entry* hit) override {
    ++visited;
    const std::uint32_t rk = rank[i];
    if (hit != nullptr) {
      found[rk] = 1;
      ids[rk] = hit->id;
      if (rk < best_rank) best_rank = rk;
    }
    // Continue while some unprobed range still ranks above (larger volume
    // than) the best hit; once none does, the volume-order replay can never
    // reach an unprobed range.
    return i + 1 < n && suffix_min[i + 1] < best_rank;
  }
};

// The probe order within a level: larger runs first, ties by ascending key.
// This single definition is what "byte-identical" means for the batched and
// single-range paths — both sorts (rank indices there, ranges here) and the
// head scan must agree on it. Extents are compared via hi - lo: identical
// ordering to cell_count() without the +1's wrap at the full range.
template <class K>
bool probes_before(const basic_key_range<K>& a, const basic_key_range<K>& b) {
  const K ca = a.hi - a.lo;
  const K cb = b.hi - b.lo;
  if (ca != cb) return cb < ca;
  return a.lo < b.lo;
}

}  // namespace

query_plan::query_plan(const dominance_index& index) : index_(&index) {
  // Bind the width-typed scratch to the index's engine.
  std::visit(
      [this](const auto& e) {
        using K = typename std::decay_t<decltype(*e.curve)>::key_type;
        typed_state<K> ts;
        ts.curve = e.curve.get();
        ts.array = e.array.get();
        // Tiered engines (tier_hot_capacity > 0) additionally expose the
        // tiering API; a plain backend leaves `tiered` null and the plan
        // skips all tier bookkeeping.
        ts.tiered = dynamic_cast<basic_tiered_sfc_array<K>*>(e.array.get());
        state_.emplace<typed_state<K>>(std::move(ts));
      },
      index.engine_);
}

std::optional<std::uint64_t> query_plan::run(const point& x, double epsilon,
                                             query_stats* stats) {
  return std::visit([&](auto& ts) { return run_impl(ts, x, epsilon, stats); }, state_);
}

void query_plan::note_hit_rank(std::size_t rank) {
  ++hit_total_;
  ++hit_rank_counts_[std::min(rank, kAdaptiveMaxHead - 1)];
}

std::size_t query_plan::adaptive_head_depth() const {
  // Behave like the pinned h = 1 until the estimate has seen enough hits.
  if (hit_total_ < kAdaptiveMinSamples) return 1;
  const std::uint64_t target = (hit_total_ * 9 + 9) / 10;  // ceil(0.9 * hits)
  std::uint64_t cum = 0;
  for (std::size_t r = 0; r < kAdaptiveMaxHead; ++r) {
    cum += hit_rank_counts_[r];
    if (cum >= target) return r + 1;
  }
  return kAdaptiveMaxHead;
}

template <class K>
std::optional<std::uint64_t> query_plan::run_impl(typed_state<K>& ts, const point& x,
                                                  double epsilon, query_stats* stats) {
  const dominance_index& idx = *index_;
  const universe& u = idx.space();
  const dominance_options& opts = idx.options();
  if (epsilon < 0 || epsilon >= 1)
    throw std::invalid_argument("dominance_index::query: epsilon must be in [0, 1)");
  if (!x.inside(u))
    throw std::invalid_argument("dominance_index::query: point outside universe");
  const stopwatch timer;

  const extremal_rect full = extremal_rect::query_region(u, x);
  const long double vol_full = full.volume_ld();
  const int m = idx.truncation_m(epsilon);
  const extremal_rect target = epsilon > 0 ? full.truncated(u, m) : full;

  query_stats local;
  query_stats& st = stats != nullptr ? *stats : local;
  st = query_stats{};
  st.truncation_m = m;
  st.volume_fraction_planned = target.volume_ld() / vol_full;

  // Tiered engine: the array's tier counters are cumulative; snapshot them
  // here and report this query's delta at the end.
  tier_counters tier_before;
  if (ts.tiered != nullptr) tier_before = ts.tiered->counters();

  // The Section 5 search: probe standard cubes of the (truncated) region in
  // descending volume order, tracking the searched-volume ratio, and stop on
  // a hit or once the ratio reaches 1 - epsilon.
  //
  // The exact per-level cube counts N_i (Lemma 3.5, closed form — no
  // enumeration) tell us in advance how many levels the search can possibly
  // need: levels are consumed largest-first, so the search never descends
  // past the first level at which the cumulative volume reaches the
  // coverage target. Cubes below that cutoff are never enumerated, which is
  // what makes typical queries cheap even when the full decomposition is
  // astronomical (regions with extreme aspect ratios, Theorem 4.1).
  extremal_level_counts_into(u, target, level_counts_);
  const long double coverage_target =
      epsilon > 0 ? (1.0L - static_cast<long double>(epsilon)) * vol_full
                  : target.volume_ld();

  std::uint64_t budget = opts.max_cubes;
  long double searched = 0;
  long double planned_cum = 0;  // volume of levels enumerated so far
  std::optional<std::uint64_t> result;
  bool done = false;
  // One range sink for the whole query: the emitter's per-level prefix /
  // state caches are reusable across levels (each fresh walk forces a full
  // recomputation via its watermark), so its construction cost is paid once
  // per query rather than once per occupied level.
  std::uint64_t needed = 0;
  std::uint64_t taken = 0;
  auto sink = [&](const basic_key_range<K>& run) {
    ts.level_ranges.push_back(run);
    return ++taken < needed;
  };
  detail::range_emitter<K, decltype(sink)> ranges(*ts.curve, 0, sink);
  for (int i = u.bits(); i >= 0 && !done; --i) {
    const u512& count = level_counts_[static_cast<std::size_t>(i)];
    if (count.is_zero()) continue;
    const long double cube_volume = std::ldexp(1.0L, i * u.dims());
    const long double level_volume = count.to_long_double() * cube_volume;
    // Cubes needed from this level: all of it, unless the coverage target
    // falls inside this level (only possible for epsilon > 0; exhaustive
    // queries always take whole levels so no floating-point boundary math
    // can drop cubes).
    if (epsilon > 0 && planned_cum + level_volume >= coverage_target) {
      needed = static_cast<std::uint64_t>(
                   std::ceil((coverage_target - planned_cum) / cube_volume)) +
               1;  // +1 absorbs long-double rounding at the boundary
      done = true;  // no level below this one can be required
    } else if (count.bit_width() > 63) {
      needed = ~std::uint64_t{0};
    } else {
      needed = count.low64();
    }
    if (needed > budget) {
      if (!opts.settle_on_budget)
        throw std::length_error("dominance_index::query: cube budget exceeded");
      st.budget_exhausted = true;
      needed = budget;
      done = true;
    }
    if (needed == 0) break;

    // Stream exactly `needed` key ranges of the level into the run frontier
    // (all cubes of a level have equal volume, so any subset of the right
    // size reaches the same coverage). The corner-free enumerator emits each
    // cube directly as its Equation-1 key interval at the plan's width — no
    // standard_cube, no coordinate arrays, no wide cube_prefix math. The
    // sink's bool return stops enumeration cleanly — no exception control
    // flow, no over-enumeration. count > 0 already implies the level is
    // occupied, so the walk runs unconditionally.
    ts.level_ranges.clear();
    taken = 0;
    ranges.set_level(i);
    detail::level_walk<decltype(ranges)>(u, target, i, ranges, needed).run();
    st.cubes_enumerated += ts.level_ranges.size();
    budget -= ts.level_ranges.size();
    planned_cum += level_volume;

    if (opts.merge_runs) merge_ranges_inplace(ts.level_ranges);
    // Without merging, all runs of a level are equal-volume cubes left in
    // enumeration order — nothing to coalesce or reorder.
    const std::size_t run_count = ts.level_ranges.size();
    st.runs_in_plan += run_count;

    if (opts.merge_runs && opts.batched_probe && run_count > 0 &&
        run_count <= std::numeric_limits<std::uint32_t>::max()) {
      // --- head probe + batched frontier sweep (see query_plan.h) ----------
      // The single-range path probes rank 0 — the first run in probe order
      // (probes_before) — before anything else, and on hit-dense workloads
      // that one probe usually decides the level. head_probe generalizes
      // the idea: probe the top `head_count` volume ranks individually
      // (fresh descents, in rank order) and only engage the sweep for the
      // ranks behind them. head_count == 1 — the pinned default —
      // reproduces PR-4 exactly: rank 0 is found with one O(run_count)
      // scan (cheaper than a full sort) and only a miss sorts at all;
      // deeper heads (fixed h > 1, or the adaptive estimate) sort up
      // front, betting that hits land past rank 0 often enough to repay
      // it.
      const std::size_t head_req =
          opts.head_probe >= 1 ? static_cast<std::size_t>(opts.head_probe)
                               : adaptive_head_depth();
      const std::size_t head_count = std::min(head_req, run_count);
      bool ordered = false;     // replay_order_ valid for this level
      // The probe order of the single-range path (probes_before) as a rank
      // -> position map over the merged frontier. One definition shared by
      // the head probes and the sweep replay, so they cannot diverge.
      // probes_before's lo tie-break is well-defined here: merged ranges
      // have distinct lows.
      const auto ensure_replay_order = [&] {
        if (ordered) return;
        replay_order_.resize(run_count);
        std::iota(replay_order_.begin(), replay_order_.end(), 0U);
        std::sort(replay_order_.begin(), replay_order_.end(),
                  [&ranges_buf = ts.level_ranges](std::uint32_t a, std::uint32_t b) {
                    return probes_before(ranges_buf[a], ranges_buf[b]);
                  });
        ordered = true;
      };
      // Probing of this level ended (hit or coverage reached). Distinct
      // from `done`, which the planning step above also sets when the
      // coverage target falls inside this level — such a level must still
      // be probed.
      bool level_stop = false;
      if (head_count == 1) {
        std::size_t head = 0;
        for (std::size_t pos = 1; pos < run_count; ++pos) {
          if (probes_before(ts.level_ranges[pos], ts.level_ranges[head])) head = pos;
        }
        ++st.runs_probed;
        ++st.probes_restarted;
        const auto head_hit = ts.array->first_in(ts.level_ranges[head], &ts.hint);
        searched += ts.level_ranges[head].cell_count_ld();
        if (head_hit.has_value()) {
          result = head_hit->id;
          st.found = true;
          done = true;
          level_stop = true;
          note_hit_rank(0);
        } else if (epsilon > 0 && searched >= coverage_target) {
          done = true;
          level_stop = true;
        }
      } else {
        // The merged frontier stays key-ascending; rank the runs once and
        // probe the head prefix in rank order, exactly the sequence the
        // single-range path would execute.
        ensure_replay_order();
        for (std::size_t j = 0; j < head_count && !level_stop; ++j) {
          ++st.runs_probed;
          ++st.probes_restarted;
          const auto hit = ts.array->first_in(ts.level_ranges[replay_order_[j]], &ts.hint);
          searched += ts.level_ranges[replay_order_[j]].cell_count_ld();
          if (hit.has_value()) {
            result = hit->id;
            st.found = true;
            done = true;
            level_stop = true;
            note_hit_rank(j);
          } else if (epsilon > 0 && searched >= coverage_target) {
            done = true;
            level_stop = true;
          }
        }
      }
      if (!level_stop && run_count > head_count) {
        ensure_replay_order();
        // With epsilon > 0 the coverage stop point depends only on run
        // volumes: rerun the accumulation (same long-double order the probe
        // loop would use, continuing after the head's contribution) to find
        // how many ranks the replay can possibly visit, and never probe
        // past them.
        std::size_t probe_count = run_count;
        if (epsilon > 0) {
          long double cum = searched;
          for (std::size_t j = head_count; j < run_count; ++j) {
            cum += ts.level_ranges[replay_order_[j]].cell_count_ld();
            if (cum >= coverage_target) {
              probe_count = j + 1;
              break;
            }
          }
        }
        // Sweep list: the rank < probe_count subset in key-ascending order,
        // each element carrying its rank. With no coverage cut (the common
        // case, and always for epsilon == 0) that is the whole frontier —
        // the sweep reads level_ranges and pos_rank_ in place (re-answering
        // the already-probed head ranks is harmless and cheaper than
        // compacting them away); only a genuine cut compacts into the
        // probe_ranges scratch, dropping the head with the rest.
        pos_rank_.resize(run_count);
        for (std::size_t j = 0; j < run_count; ++j)
          pos_rank_[replay_order_[j]] = static_cast<std::uint32_t>(j);
        const basic_key_range<K>* sweep_ranges = ts.level_ranges.data();
        const std::uint32_t* sweep_rank = pos_rank_.data();
        std::size_t pn = run_count;
        if (probe_count < run_count) {
          ts.probe_ranges.clear();
          probe_rank_.clear();
          for (std::size_t pos = 0; pos < run_count; ++pos) {
            if (pos_rank_[pos] >= head_count && pos_rank_[pos] < probe_count) {
              ts.probe_ranges.push_back(ts.level_ranges[pos]);
              probe_rank_.push_back(pos_rank_[pos]);
            }
          }
          sweep_ranges = ts.probe_ranges.data();
          sweep_rank = probe_rank_.data();
          pn = ts.probe_ranges.size();
        }
        // Suffix-min-rank table: the sink's oracle for stopping the sweep
        // once no unprobed range can outrank the best hit. Head ranks are
        // already answered (they all missed), so they must not hold the
        // sweep open; mask them to the weakest rank.
        suffix_min_rank_.resize(pn);
        std::uint32_t min_rank = std::numeric_limits<std::uint32_t>::max();
        for (std::size_t p = pn; p-- > 0;) {
          const std::uint32_t rk = sweep_rank[p];
          if (rk >= head_count) min_rank = std::min(min_rank, rk);
          suffix_min_rank_[p] = min_rank;
        }
        hit_found_.assign(probe_count, 0);
        hit_id_.resize(probe_count);

        sweep_sink<K> sink;
        sink.rank = sweep_rank;
        sink.suffix_min = suffix_min_rank_.data();
        sink.n = pn;
        sink.found = hit_found_.data();
        sink.ids = hit_id_.data();
        sink.best_rank = static_cast<std::uint32_t>(probe_count);
        ts.array->probe_frontier(std::span<const basic_key_range<K>>(sweep_ranges, pn), sink);
        ++st.frontier_batches;
        if (sink.visited > 0) {
          ++st.probes_restarted;
          st.probes_resumed += sink.visited - 1;
        }

        // Volume-order replay of the recorded answers, continuing after the
        // head: reproduces the single-range path's result, stop point and
        // stats byte for byte — every rank below the first hit was swept
        // (the early stop only fires once no unprobed range outranks the
        // best hit) and recorded as a miss.
        for (std::size_t j = head_count; j < probe_count; ++j) {
          ++st.runs_probed;
          searched += ts.level_ranges[replay_order_[j]].cell_count_ld();
          if (hit_found_[j] != 0) {
            result = hit_id_[j];
            st.found = true;
            done = true;
            note_hit_rank(j);
            break;
          }
          if (epsilon > 0 && searched >= coverage_target) {
            done = true;
            break;
          }
        }
      }
    } else {
      // --- single-range reference path -------------------------------------
      // One independent first_in per run (with the probe-locality cursor);
      // the ground truth the batched sweep is pinned against in tests.
      if (opts.merge_runs) {
        // Within the level, probe in probes_before order (larger merged
        // runs first, ties by ascending key), which makes the probe
        // sequence deterministic and friendly to the array's locality
        // cursor.
        std::sort(ts.level_ranges.begin(), ts.level_ranges.end(), probes_before<K>);
      }
      for (const basic_key_range<K>& run : ts.level_ranges) {
        ++st.runs_probed;
        ++st.probes_restarted;
        const auto hit = ts.array->first_in(run, &ts.hint);
        searched += run.cell_count_ld();
        if (hit.has_value()) {
          result = hit->id;
          st.found = true;
          done = true;
          break;
        }
        if (epsilon > 0 && searched >= coverage_target) {
          done = true;
          break;
        }
      }
    }
  }
  st.volume_fraction_searched = searched / vol_full;
  if (ts.tiered != nullptr) {
    const tier_counters& now = ts.tiered->counters();
    st.tier_cold_probes = now.cold_probes - tier_before.cold_probes;
    st.tier_summary_answers = now.summary_answers - tier_before.summary_answers;
    st.tier_blocks_decoded = now.blocks_decoded - tier_before.blocks_decoded;
    st.tier_cold_hits = now.cold_hits - tier_before.cold_hits;
    // End-of-query maintenance: promote the cold entries this query hit
    // (and flush the hot tier if an insert burst overfilled it), so the
    // recently-hit working set is resident for the next query.
    ts.tiered->maintain();
  }
  st.elapsed_ns = timer.elapsed_ns();
  return result;
}

}  // namespace subcover
