#include "dominance/query_plan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <span>
#include <stdexcept>

#include "dominance/dominance_index.h"
#include "sfc/extremal_decomposition.h"
#include "sfcarray/tiered_sfc_array.h"
#include "util/simd_kernels.h"
#include "util/timer.h"

namespace subcover {

namespace {

// Stack-allocated receiver for one batched level sweep: records each probed
// range's answer under its replay rank and stops the sweep as soon as no
// remaining range can outrank the best hit found so far.
template <class K>
struct sweep_sink final : basic_sfc_array<K>::frontier_sink {
  using entry = typename basic_sfc_array<K>::entry;

  const std::uint32_t* rank;        // sweep position -> replay rank
  const std::uint32_t* suffix_min;  // min rank among sweep positions i..end
  std::size_t n;                    // sweep length
  std::uint8_t* found;              // rank-indexed answers
  std::uint64_t* ids;
  std::uint32_t best_rank;          // smallest rank that hit; "none" = cap
  std::uint64_t visited = 0;

  bool on_probe(std::size_t i, const entry* hit) override {
    ++visited;
    const std::uint32_t rk = rank[i];
    if (hit != nullptr) {
      found[rk] = 1;
      ids[rk] = hit->id;
      if (rk < best_rank) best_rank = rk;
    }
    // Continue while some unprobed range still ranks above (earlier in the
    // replay than) the best hit; once none does, the replay can never reach
    // an unprobed range.
    return i + 1 < n && suffix_min[i + 1] < best_rank;
  }
};

// The probe order within a level: larger runs first, ties by ascending key.
// This single definition is what "byte-identical" means for the batched and
// single-range paths — the AoS sort (reference path), the rank sort over
// the extent/lo columns and the head scan must all agree on it. Extents are
// compared via hi - lo: identical ordering to cell_count() without the +1's
// wrap at the full range.
template <class K>
bool probes_before(const basic_key_range<K>& a, const basic_key_range<K>& b) {
  const K ca = a.hi - a.lo;
  const K cb = b.hi - b.lo;
  if (ca != cb) return cb < ca;
  return a.lo < b.lo;
}

// --- plain-loop frontier primitives -----------------------------------------
// The simd_mode::off oracle, and the only implementation at the wide key
// widths (the vector kernels are u64-lane). Each mirrors the semantics of
// the same-named kernel in util/simd_kernels.h exactly.

// Coalesces sorted, distinct, cube-aligned lows (cube span `cube_cells`)
// into maximal runs; equal-size aligned cubes chain exactly when
// lo[i] - lo[i-1] == cube_cells. Byte-identical to merge_ranges_inplace on
// the same cubes. Requires n > 0.
template <class K>
std::size_t coalesce_cubes_plain(const K* lo, std::size_t n, const K& cube_cells, K* run_lo,
                                 K* run_hi) {
  const K ext = cube_cells - key_traits<K>::one();
  std::size_t out = 0;
  run_lo[0] = lo[0];
  run_hi[0] = lo[0] | ext;
  for (std::size_t i = 1; i < n; ++i) {
    if (lo[i] - lo[i - 1] == cube_cells) {
      run_hi[out] = lo[i] | ext;
    } else {
      ++out;
      run_lo[out] = lo[i];
      run_hi[out] = lo[i] | ext;
    }
  }
  return out + 1;
}

// Argbest under probes_before over the extent/lo columns: largest extent,
// ties by smallest lo, further ties by first index. Requires n > 0.
template <class K>
std::size_t head_scan_plain(const K* ext, const K* lo, std::size_t n) {
  std::size_t best = 0;
  for (std::size_t p = 1; p < n; ++p) {
    const bool wins = ext[p] != ext[best] ? ext[best] < ext[p] : lo[p] < lo[best];
    if (wins) best = p;
  }
  return best;
}

// Right-to-left running minimum with the head-rank floor mask.
void suffix_min_plain(const std::uint32_t* rank, std::size_t n, std::uint32_t floor,
                      std::uint32_t* out) {
  std::uint32_t min_rank = std::numeric_limits<std::uint32_t>::max();
  for (std::size_t p = n; p-- > 0;) {
    const std::uint32_t rk = rank[p];
    if (rk >= floor) min_rank = std::min(min_rank, rk);
    out[p] = min_rank;
  }
}

// --- simd_mode three-way dispatch (u64 lanes) -------------------------------
// automatic -> the runtime-dispatched tier, force_scalar -> the kernel
// library's scalar backend through the same call sites, off -> the plain
// loops above (no kernel-library call at all).

std::size_t coalesce_cubes_mode(simd_mode mode, const std::uint64_t* lo, std::size_t n,
                                std::uint64_t cube_cells, std::uint64_t* run_lo,
                                std::uint64_t* run_hi) {
  switch (mode) {
    case simd_mode::automatic:
      return simd::coalesce_cubes_u64(lo, n, cube_cells, run_lo, run_hi);
    case simd_mode::force_scalar:
      return simd::scalar::coalesce_cubes_u64(lo, n, cube_cells, run_lo, run_hi);
    case simd_mode::off:
      break;
  }
  return coalesce_cubes_plain<std::uint64_t>(lo, n, cube_cells, run_lo, run_hi);
}

void sub_mode(simd_mode mode, const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
              std::size_t n) {
  switch (mode) {
    case simd_mode::automatic:
      simd::sub_u64(a, b, out, n);
      return;
    case simd_mode::force_scalar:
      simd::scalar::sub_u64(a, b, out, n);
      return;
    case simd_mode::off:
      break;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

std::size_t head_scan_mode(simd_mode mode, const std::uint64_t* ext, const std::uint64_t* lo,
                           std::size_t n) {
  switch (mode) {
    case simd_mode::automatic:
      return simd::head_rank_scan_u64(ext, lo, n);
    case simd_mode::force_scalar:
      return simd::scalar::head_rank_scan_u64(ext, lo, n);
    case simd_mode::off:
      break;
  }
  return head_scan_plain<std::uint64_t>(ext, lo, n);
}

// u32 ranks are width-independent, so this one serves every key width.
void suffix_min_mode(simd_mode mode, const std::uint32_t* rank, std::size_t n,
                     std::uint32_t floor, std::uint32_t* out) {
  switch (mode) {
    case simd_mode::automatic:
      simd::suffix_min_masked_u32(rank, n, floor, out);
      return;
    case simd_mode::force_scalar:
      simd::scalar::suffix_min_masked_u32(rank, n, floor, out);
      return;
    case simd_mode::off:
      break;
  }
  suffix_min_plain(rank, n, floor, out);
}

}  // namespace

query_plan::query_plan(const dominance_index& index) : index_(&index) {
  // Bind the width-typed scratch to the index's engine.
  std::visit(
      [this](const auto& e) {
        using K = typename std::decay_t<decltype(*e.curve)>::key_type;
        typed_state<K> ts;
        ts.curve = e.curve.get();
        ts.array = e.array.get();
        // Tiered engines (tier_hot_capacity > 0) additionally expose the
        // tiering API; a plain backend leaves `tiered` null and the plan
        // skips all tier bookkeeping.
        ts.tiered = dynamic_cast<basic_tiered_sfc_array<K>*>(e.array.get());
        state_.emplace<typed_state<K>>(std::move(ts));
      },
      index.engine_);
  // One histogram cell per (level, epsilon bucket); sized here so the hot
  // path never allocates.
  adaptive_.resize(static_cast<std::size_t>(index.space().bits() + 1) * kAdaptiveEpsBuckets);
}

std::optional<std::uint64_t> query_plan::run(const point& x, double epsilon,
                                             query_stats* stats) {
  return std::visit([&](auto& ts) { return run_impl(ts, x, epsilon, stats); }, state_);
}

std::size_t query_plan::eps_bucket(double epsilon) {
  if (epsilon <= 0) return 0;  // exhaustive queries get their own cell
  // Quantize by magnitude: epsilons within a factor of two share a cell.
  int e = 0;
  (void)std::frexp(epsilon, &e);  // epsilon = f * 2^e, f in [0.5, 1)
  const int mag = -e;             // 0 for [0.5, 1), 1 for [0.25, 0.5), ...
  const int cap = static_cast<int>(kAdaptiveEpsBuckets) - 2;
  return 1 + static_cast<std::size_t>(std::min(mag, cap));
}

void query_plan::note_hit_rank(int level, std::size_t eps_b, std::size_t rank) {
  adaptive_hist& h = adaptive_[static_cast<std::size_t>(level) * kAdaptiveEpsBuckets + eps_b];
  ++h.counts[std::min(rank, kAdaptiveMaxHead - 1)];
  if (++h.total < kAdaptiveDecayCap) return;
  // Decay: halve every bucket (rounding up, so an occupied bucket never
  // vanishes outright) and recount, so the estimate tracks the recent
  // workload instead of the whole history.
  for (auto& c : h.counts) c -= c >> 1;
  h.total = simd::sum_u64(h.counts.data(), kAdaptiveMaxHead);
}

std::size_t query_plan::adaptive_head_depth(int level, std::size_t eps_b) const {
  const adaptive_hist& h =
      adaptive_[static_cast<std::size_t>(level) * kAdaptiveEpsBuckets + eps_b];
  // Behave like the pinned h = 1 until this cell has seen enough hits.
  if (h.total < kAdaptiveMinSamples) return 1;
  const std::uint64_t target = (h.total * 9 + 9) / 10;  // ceil(0.9 * hits)
  std::uint64_t prefix[kAdaptiveMaxHead];
  simd::prefix_sum_u64(h.counts.data(), prefix, kAdaptiveMaxHead);
  const std::size_t r = simd::first_geq_u64(prefix, 0, kAdaptiveMaxHead, target);
  return r < kAdaptiveMaxHead ? r + 1 : kAdaptiveMaxHead;
}

template <class K>
std::optional<std::uint64_t> query_plan::run_impl(typed_state<K>& ts, const point& x,
                                                  double epsilon, query_stats* stats) {
  const dominance_index& idx = *index_;
  const universe& u = idx.space();
  const dominance_options& opts = idx.options();
  if (epsilon < 0 || epsilon >= 1)
    throw std::invalid_argument("dominance_index::query: epsilon must be in [0, 1)");
  if (!x.inside(u))
    throw std::invalid_argument("dominance_index::query: point outside universe");
  const stopwatch timer;
  const simd_mode mode = opts.simd;
  const std::size_t eps_b = eps_bucket(epsilon);

  const extremal_rect full = extremal_rect::query_region(u, x);
  const long double vol_full = full.volume_ld();
  const int m = idx.truncation_m(epsilon);
  const extremal_rect target = epsilon > 0 ? full.truncated(u, m) : full;

  query_stats local;
  query_stats& st = stats != nullptr ? *stats : local;
  st = query_stats{};
  st.truncation_m = m;
  st.volume_fraction_planned = target.volume_ld() / vol_full;

  // Tiered engine: the array's tier counters are cumulative; snapshot them
  // here and report this query's delta at the end. The maintenance ledger
  // (tombstones/compactions, any backend) is snapshotted the same way — the
  // end-of-query maintain() pass below is what moves it during a query.
  tier_counters tier_before;
  if (ts.tiered != nullptr) tier_before = ts.tiered->counters();
  const maintenance_counters maint_before = ts.array->maintenance();

  // The Section 5 search: probe standard cubes of the (truncated) region in
  // descending volume order, tracking the searched-volume ratio, and stop on
  // a hit or once the ratio reaches 1 - epsilon.
  //
  // The exact per-level cube counts N_i (Lemma 3.5, closed form — no
  // enumeration) tell us in advance how many levels the search can possibly
  // need: levels are consumed largest-first, so the search never descends
  // past the first level at which the cumulative volume reaches the
  // coverage target. Cubes below that cutoff are never enumerated, which is
  // what makes typical queries cheap even when the full decomposition is
  // astronomical (regions with extreme aspect ratios, Theorem 4.1).
  extremal_level_counts_into(u, target, level_counts_);
  const long double coverage_target =
      epsilon > 0 ? (1.0L - static_cast<long double>(epsilon)) * vol_full
                  : target.volume_ld();

  std::uint64_t budget = opts.max_cubes;
  long double searched = 0;
  long double planned_cum = 0;  // volume of levels enumerated so far
  std::optional<std::uint64_t> result;
  bool done = false;
  // One lo-column sink for the whole query: the emitter's per-level prefix /
  // state caches are reusable across levels (each fresh walk forces a full
  // recomputation via its watermark), so its construction cost is paid once
  // per query rather than once per occupied level. Only the cube's low key
  // is stored — every cube of level i spans the same extent, derived in
  // bulk after enumeration.
  std::uint64_t needed = 0;
  std::uint64_t taken = 0;
  auto sink = [&](const K& lo) {
    ts.lo_col.push_back(lo);
    return ++taken < needed;
  };
  detail::lo_emitter<K, decltype(sink)> ranges(*ts.curve, 0, sink);
  for (int i = u.bits(); i >= 0 && !done; --i) {
    const u512& count = level_counts_[static_cast<std::size_t>(i)];
    if (count.is_zero()) continue;
    const long double cube_volume = std::ldexp(1.0L, i * u.dims());
    const long double level_volume = count.to_long_double() * cube_volume;
    // Cubes needed from this level: all of it, unless the coverage target
    // falls inside this level (only possible for epsilon > 0; exhaustive
    // queries always take whole levels so no floating-point boundary math
    // can drop cubes).
    if (epsilon > 0 && planned_cum + level_volume >= coverage_target) {
      needed = static_cast<std::uint64_t>(
                   std::ceil((coverage_target - planned_cum) / cube_volume)) +
               1;  // +1 absorbs long-double rounding at the boundary
      done = true;  // no level below this one can be required
    } else if (count.bit_width() > 63) {
      needed = ~std::uint64_t{0};
    } else {
      needed = count.low64();
    }
    if (needed > budget) {
      if (!opts.settle_on_budget)
        throw std::length_error("dominance_index::query: cube budget exceeded");
      st.budget_exhausted = true;
      needed = budget;
      done = true;
    }
    if (needed == 0) break;

    // Stream exactly `needed` cube lows of the level into the frontier
    // column (all cubes of a level have equal volume, so any subset of the
    // right size reaches the same coverage). The corner-free enumerator
    // emits each cube directly as its Equation-1 low key at the plan's
    // width — no standard_cube, no coordinate arrays, no wide cube_prefix
    // math. The sink's bool return stops enumeration cleanly — no exception
    // control flow, no over-enumeration. count > 0 already implies the
    // level is occupied, so the walk runs unconditionally.
    ts.lo_col.clear();
    taken = 0;
    ranges.set_level(i);
    detail::level_walk<decltype(ranges)>(u, target, i, ranges, needed).run();
    const std::size_t cube_count = ts.lo_col.size();
    st.cubes_enumerated += cube_count;
    budget -= cube_count;
    planned_cum += level_volume;
    if (cube_count == 0) continue;
    const K level_mask = ranges.level_mask();  // hi == lo | level_mask at this level

    std::size_t run_count;
    if (opts.merge_runs) {
      // Coalesce on the key column: sort the lows, then chain cubes that
      // sit exactly one cube span apart — byte-identical to
      // merge_ranges_inplace on the materialized ranges (equal-size aligned
      // cubes can never overlap or be closer than one span).
      std::sort(ts.lo_col.begin(), ts.lo_col.end());
      ts.run_lo.resize(cube_count);
      ts.run_hi.resize(cube_count);
      if (cube_count == 1) {
        // Also the only case where the cube span could wrap the key width
        // (the whole-universe cube at d*k bits).
        ts.run_lo[0] = ts.lo_col[0];
        ts.run_hi[0] = ts.lo_col[0] | level_mask;
        run_count = 1;
      } else if constexpr (std::is_same_v<K, std::uint64_t>) {
        run_count = coalesce_cubes_mode(mode, ts.lo_col.data(), cube_count, level_mask + 1,
                                        ts.run_lo.data(), ts.run_hi.data());
      } else {
        run_count = coalesce_cubes_plain<K>(ts.lo_col.data(), cube_count,
                                            level_mask + key_traits<K>::one(),
                                            ts.run_lo.data(), ts.run_hi.data());
      }
    } else {
      // Without merging, all runs of a level are equal-volume cubes left in
      // enumeration order — nothing to coalesce or reorder.
      run_count = cube_count;
    }
    st.runs_in_plan += run_count;

    // Volume of one run / one cube, exactly range.cell_count_ld().
    const auto run_cells_ld = [&ts](std::size_t p) {
      return key_traits<K>::to_long_double(ts.run_ext[p]) + 1.0L;
    };
    const auto run_at = [&ts](std::size_t p) {
      basic_key_range<K> r;
      r.lo = ts.run_lo[p];
      r.hi = ts.run_hi[p];
      return r;
    };
    const auto cube_at = [&ts, level_mask](std::size_t p) {
      basic_key_range<K> r;
      r.lo = ts.lo_col[p];
      r.hi = r.lo | level_mask;
      return r;
    };

    if (opts.merge_runs && opts.batched_probe && run_count > 0 &&
        run_count <= std::numeric_limits<std::uint32_t>::max()) {
      // --- head probe + batched frontier sweep (see query_plan.h) ----------
      // The single-range path probes rank 0 — the first run in probe order
      // (probes_before) — before anything else, and on hit-dense workloads
      // that one probe usually decides the level. head_probe generalizes
      // the idea: probe the top `head_count` volume ranks individually
      // (fresh descents, in rank order) and only engage the sweep for the
      // ranks behind them. head_count == 1 — the pinned default —
      // reproduces PR-4 exactly: rank 0 is found with one O(run_count)
      // scan (cheaper than a full sort) and only a miss sorts at all;
      // deeper heads (fixed h > 1, or the adaptive estimate) sort up
      // front, betting that hits land past rank 0 often enough to repay
      // it.
      const std::size_t head_req =
          opts.head_probe >= 1 ? static_cast<std::size_t>(opts.head_probe)
                               : adaptive_head_depth(i, eps_b);
      const std::size_t head_count = std::min(head_req, run_count);
      // Extent lanes: the volume key of every ordering and accumulation
      // below.
      ts.run_ext.resize(run_count);
      if constexpr (std::is_same_v<K, std::uint64_t>) {
        sub_mode(mode, ts.run_hi.data(), ts.run_lo.data(), ts.run_ext.data(), run_count);
      } else {
        for (std::size_t p = 0; p < run_count; ++p) ts.run_ext[p] = ts.run_hi[p] - ts.run_lo[p];
      }
      bool ordered = false;  // replay_order_ valid for this level
      // The probe order of the single-range path (probes_before) as a rank
      // -> position map over the merged frontier, sorted on the extent/lo
      // columns. One definition shared by the head probes and the sweep
      // replay, so they cannot diverge. probes_before's lo tie-break is
      // well-defined here: merged ranges have distinct lows.
      const auto ensure_replay_order = [&] {
        if (ordered) return;
        replay_order_.resize(run_count);
        std::iota(replay_order_.begin(), replay_order_.end(), 0U);
        std::sort(replay_order_.begin(), replay_order_.end(),
                  [&ext = ts.run_ext, &lo = ts.run_lo](std::uint32_t a, std::uint32_t b) {
                    if (ext[a] != ext[b]) return ext[b] < ext[a];
                    return lo[a] < lo[b];
                  });
        ordered = true;
      };
      // Probing of this level ended (hit or coverage reached). Distinct
      // from `done`, which the planning step above also sets when the
      // coverage target falls inside this level — such a level must still
      // be probed.
      bool level_stop = false;
      if (head_count == 1) {
        std::size_t head;
        if constexpr (std::is_same_v<K, std::uint64_t>) {
          head = head_scan_mode(mode, ts.run_ext.data(), ts.run_lo.data(), run_count);
        } else {
          head = head_scan_plain<K>(ts.run_ext.data(), ts.run_lo.data(), run_count);
        }
        ++st.runs_probed;
        ++st.probes_restarted;
        const auto head_hit = ts.array->first_in(run_at(head), &ts.hint);
        searched += run_cells_ld(head);
        if (head_hit.has_value()) {
          result = head_hit->id;
          st.found = true;
          done = true;
          level_stop = true;
          note_hit_rank(i, eps_b, 0);
        } else if (epsilon > 0 && searched >= coverage_target) {
          done = true;
          level_stop = true;
        }
      } else {
        // The merged frontier stays key-ascending; rank the runs once and
        // probe the head prefix in rank order, exactly the sequence the
        // single-range path would execute.
        ensure_replay_order();
        for (std::size_t j = 0; j < head_count && !level_stop; ++j) {
          ++st.runs_probed;
          ++st.probes_restarted;
          const auto hit = ts.array->first_in(run_at(replay_order_[j]), &ts.hint);
          searched += run_cells_ld(replay_order_[j]);
          if (hit.has_value()) {
            result = hit->id;
            st.found = true;
            done = true;
            level_stop = true;
            note_hit_rank(i, eps_b, j);
          } else if (epsilon > 0 && searched >= coverage_target) {
            done = true;
            level_stop = true;
          }
        }
      }
      if (!level_stop && run_count > head_count) {
        ensure_replay_order();
        // With epsilon > 0 the coverage stop point depends only on run
        // volumes: rerun the accumulation (same long-double order the probe
        // loop would use, continuing after the head's contribution) to find
        // how many ranks the replay can possibly visit, and never probe
        // past them.
        std::size_t probe_count = run_count;
        if (epsilon > 0) {
          long double cum = searched;
          for (std::size_t j = head_count; j < run_count; ++j) {
            cum += run_cells_ld(replay_order_[j]);
            if (cum >= coverage_target) {
              probe_count = j + 1;
              break;
            }
          }
        }
        // Sweep list: the rank < probe_count subset in key-ascending order,
        // each element carrying its rank. With no coverage cut (the common
        // case, and always for epsilon == 0) that is the whole frontier —
        // materialized straight off the run columns (re-answering the
        // already-probed head ranks is harmless and cheaper than compacting
        // them away); only a genuine cut compacts, dropping the head with
        // the rest.
        pos_rank_.resize(run_count);
        for (std::size_t j = 0; j < run_count; ++j)
          pos_rank_[replay_order_[j]] = static_cast<std::uint32_t>(j);
        const std::uint32_t* sweep_rank = pos_rank_.data();
        std::size_t pn = run_count;
        if (probe_count < run_count) {
          ts.probe_ranges.clear();
          probe_rank_.clear();
          for (std::size_t pos = 0; pos < run_count; ++pos) {
            if (pos_rank_[pos] >= head_count && pos_rank_[pos] < probe_count) {
              ts.probe_ranges.push_back(run_at(pos));
              probe_rank_.push_back(pos_rank_[pos]);
            }
          }
          sweep_rank = probe_rank_.data();
          pn = ts.probe_ranges.size();
        } else {
          ts.probe_ranges.resize(run_count);
          for (std::size_t pos = 0; pos < run_count; ++pos) ts.probe_ranges[pos] = run_at(pos);
        }
        // Suffix-min-rank table: the sink's oracle for stopping the sweep
        // once no unprobed range can outrank the best hit. Head ranks are
        // already answered (they all missed), so they must not hold the
        // sweep open; the kernel's floor masks them to the weakest rank.
        suffix_min_rank_.resize(pn);
        suffix_min_mode(mode, sweep_rank, pn, static_cast<std::uint32_t>(head_count),
                        suffix_min_rank_.data());
        hit_found_.assign(probe_count, 0);
        hit_id_.resize(probe_count);

        sweep_sink<K> sink;
        sink.rank = sweep_rank;
        sink.suffix_min = suffix_min_rank_.data();
        sink.n = pn;
        sink.found = hit_found_.data();
        sink.ids = hit_id_.data();
        sink.best_rank = static_cast<std::uint32_t>(probe_count);
        ts.array->probe_frontier(
            std::span<const basic_key_range<K>>(ts.probe_ranges.data(), pn), sink);
        ++st.frontier_batches;
        if (sink.visited > 0) {
          ++st.probes_restarted;
          st.probes_resumed += sink.visited - 1;
        }

        // Volume-order replay of the recorded answers, continuing after the
        // head: reproduces the single-range path's result, stop point and
        // stats byte for byte — every rank below the first hit was swept
        // (the early stop only fires once no unprobed range outranks the
        // best hit) and recorded as a miss.
        for (std::size_t j = head_count; j < probe_count; ++j) {
          ++st.runs_probed;
          searched += run_cells_ld(replay_order_[j]);
          if (hit_found_[j] != 0) {
            result = hit_id_[j];
            st.found = true;
            done = true;
            note_hit_rank(i, eps_b, j);
            break;
          }
          if (epsilon > 0 && searched >= coverage_target) {
            done = true;
            break;
          }
        }
      }
    } else if (!opts.merge_runs && opts.batched_probe && run_count > 0 &&
               run_count <= std::numeric_limits<std::uint32_t>::max()) {
      // --- cube-count mode, batched ----------------------------------------
      // The reference probe order here is enumeration order (all cubes of a
      // level have equal volume, so the replay rank IS the enumeration
      // position — no volume sort exists to disagree with). Probe the first
      // head_count cubes individually, then answer the rest with one
      // key-sorted frontier sweep and replay in enumeration order. Logical
      // stats are byte-identical to the per-cube reference path; only the
      // physical restart/resume split moves.
      const std::size_t head_req =
          opts.head_probe >= 1 ? static_cast<std::size_t>(opts.head_probe)
                               : adaptive_head_depth(i, eps_b);
      const std::size_t head_count = std::min(head_req, run_count);
      const long double cube_ld = key_traits<K>::to_long_double(level_mask) + 1.0L;
      bool level_stop = false;
      for (std::size_t j = 0; j < head_count && !level_stop; ++j) {
        ++st.runs_probed;
        ++st.probes_restarted;
        const auto hit = ts.array->first_in(cube_at(j), &ts.hint);
        searched += cube_ld;
        if (hit.has_value()) {
          result = hit->id;
          st.found = true;
          done = true;
          level_stop = true;
          note_hit_rank(i, eps_b, j);
        } else if (epsilon > 0 && searched >= coverage_target) {
          done = true;
          level_stop = true;
        }
      }
      if (!level_stop && run_count > head_count) {
        // Equal volumes make the coverage cut a pure count, but the replay
        // must accumulate the same long-double sequence the reference path
        // does, so the cut reruns it term by term.
        std::size_t probe_count = run_count;
        if (epsilon > 0) {
          long double cum = searched;
          for (std::size_t j = head_count; j < run_count; ++j) {
            cum += cube_ld;
            if (cum >= coverage_target) {
              probe_count = j + 1;
              break;
            }
          }
        }
        // Sweep list: enumeration positions [head_count, probe_count)
        // sorted into key order (cubes are disjoint with distinct lows, so
        // the order is strict), each carrying its enumeration rank.
        const std::size_t pn = probe_count - head_count;
        replay_order_.resize(pn);
        std::iota(replay_order_.begin(), replay_order_.end(),
                  static_cast<std::uint32_t>(head_count));
        std::sort(replay_order_.begin(), replay_order_.end(),
                  [&lo = ts.lo_col](std::uint32_t a, std::uint32_t b) { return lo[a] < lo[b]; });
        ts.probe_ranges.resize(pn);
        probe_rank_.resize(pn);
        for (std::size_t s = 0; s < pn; ++s) {
          ts.probe_ranges[s] = cube_at(replay_order_[s]);
          probe_rank_[s] = replay_order_[s];
        }
        suffix_min_rank_.resize(pn);
        suffix_min_mode(mode, probe_rank_.data(), pn, static_cast<std::uint32_t>(head_count),
                        suffix_min_rank_.data());
        hit_found_.assign(probe_count, 0);
        hit_id_.resize(probe_count);

        sweep_sink<K> sink;
        sink.rank = probe_rank_.data();
        sink.suffix_min = suffix_min_rank_.data();
        sink.n = pn;
        sink.found = hit_found_.data();
        sink.ids = hit_id_.data();
        sink.best_rank = static_cast<std::uint32_t>(probe_count);
        ts.array->probe_frontier(
            std::span<const basic_key_range<K>>(ts.probe_ranges.data(), pn), sink);
        ++st.frontier_batches;
        if (sink.visited > 0) {
          ++st.probes_restarted;
          st.probes_resumed += sink.visited - 1;
        }

        for (std::size_t j = head_count; j < probe_count; ++j) {
          ++st.runs_probed;
          searched += cube_ld;
          if (hit_found_[j] != 0) {
            result = hit_id_[j];
            st.found = true;
            done = true;
            note_hit_rank(i, eps_b, j);
            break;
          }
          if (epsilon > 0 && searched >= coverage_target) {
            done = true;
            break;
          }
        }
      }
    } else {
      // --- single-range reference path -------------------------------------
      // One independent first_in per run (with the probe-locality cursor);
      // the ground truth the batched sweeps are pinned against in tests.
      if (opts.merge_runs) {
        // Within the level, probe in probes_before order (larger merged
        // runs first, ties by ascending key), which makes the probe
        // sequence deterministic and friendly to the array's locality
        // cursor.
        ts.probe_ranges.resize(run_count);
        for (std::size_t p = 0; p < run_count; ++p) ts.probe_ranges[p] = run_at(p);
        std::sort(ts.probe_ranges.begin(), ts.probe_ranges.end(), probes_before<K>);
        for (const basic_key_range<K>& run : ts.probe_ranges) {
          ++st.runs_probed;
          ++st.probes_restarted;
          const auto hit = ts.array->first_in(run, &ts.hint);
          searched += run.cell_count_ld();
          if (hit.has_value()) {
            result = hit->id;
            st.found = true;
            done = true;
            break;
          }
          if (epsilon > 0 && searched >= coverage_target) {
            done = true;
            break;
          }
        }
      } else {
        // Cube-count mode: probe the raw cubes in enumeration order.
        for (std::size_t p = 0; p < run_count; ++p) {
          const basic_key_range<K> run = cube_at(p);
          ++st.runs_probed;
          ++st.probes_restarted;
          const auto hit = ts.array->first_in(run, &ts.hint);
          searched += run.cell_count_ld();
          if (hit.has_value()) {
            result = hit->id;
            st.found = true;
            done = true;
            break;
          }
          if (epsilon > 0 && searched >= coverage_target) {
            done = true;
            break;
          }
        }
      }
    }
  }
  st.volume_fraction_searched = searched / vol_full;
  if (ts.tiered != nullptr) {
    const tier_counters& now = ts.tiered->counters();
    st.tier_cold_probes = now.cold_probes - tier_before.cold_probes;
    st.tier_summary_answers = now.summary_answers - tier_before.summary_answers;
    st.tier_blocks_decoded = now.blocks_decoded - tier_before.blocks_decoded;
    st.tier_cold_hits = now.cold_hits - tier_before.cold_hits;
    // End-of-query maintenance: promote the cold entries this query hit
    // (and flush the hot tier if an insert burst overfilled it), so the
    // recently-hit working set is resident for the next query.
    ts.tiered->maintain();
  }
  {
    const maintenance_counters maint_now = ts.array->maintenance();
    st.maint_tombstones_added = maint_now.tombstones_added - maint_before.tombstones_added;
    st.maint_tombstones_purged = maint_now.tombstones_purged - maint_before.tombstones_purged;
    st.maint_compactions = maint_now.compactions - maint_before.compactions;
  }
  st.elapsed_ns = timer.elapsed_ns();
  return result;
}

}  // namespace subcover
