#include "workload/rect_gen.h"

#include <algorithm>
#include <stdexcept>

#include "util/bitops.h"

namespace subcover::workload {

namespace {

// Random value with exactly `bits` significant bits.
std::uint64_t random_with_bit_length(rng& gen, int bits) {
  const std::uint64_t top = std::uint64_t{1} << (bits - 1);
  return top | (bits > 1 ? gen.uniform(0, top - 1) : 0);
}

void check_profile(const universe& u, int gamma, int alpha) {
  if (gamma < 1 || alpha < 0 || gamma + alpha > u.bits())
    throw std::invalid_argument("rect_gen: need 1 <= gamma and gamma + alpha <= k");
}

}  // namespace

extremal_rect random_extremal(rng& gen, const universe& u, int gamma, int alpha) {
  check_profile(u, gamma, alpha);
  std::array<std::uint64_t, kMaxDims> len{};
  for (int i = 0; i < u.dims(); ++i) {
    int b = gamma;
    if (u.dims() > 1) {
      if (i == u.dims() - 1)
        b = gamma + alpha;
      else if (i > 0)
        b = static_cast<int>(gen.uniform(static_cast<std::uint64_t>(gamma),
                                         static_cast<std::uint64_t>(gamma + alpha)));
    }
    len[static_cast<std::size_t>(i)] = random_with_bit_length(gen, b);
  }
  return {u, len};
}

extremal_rect worst_case_extremal(const universe& u, int gamma, int alpha, int m) {
  check_profile(u, gamma, alpha);
  if (m < 1) throw std::invalid_argument("worst_case_extremal: m must be >= 1");
  auto top_ones = [&](int b) {
    const int ones = std::min(m, b);
    // `ones` one-bits followed by b - ones zero bits.
    return ((std::uint64_t{1} << ones) - 1) << (b - ones);
  };
  std::array<std::uint64_t, kMaxDims> len{};
  len[0] = top_ones(gamma);
  for (int i = 1; i < u.dims(); ++i) len[static_cast<std::size_t>(i)] = top_ones(gamma + alpha);
  return {u, len};
}

extremal_rect adversarial_extremal(const universe& u, int gamma, int alpha) {
  check_profile(u, gamma, alpha);
  std::array<std::uint64_t, kMaxDims> len{};
  const std::uint64_t longest = (std::uint64_t{1} << (gamma + alpha)) - 1;
  for (int i = 0; i < u.dims(); ++i) len[static_cast<std::size_t>(i)] = longest;
  len[static_cast<std::size_t>(u.dims() - 1)] = (std::uint64_t{1} << gamma) - 1;
  return {u, len};
}

rect random_rect(rng& gen, const universe& u, std::uint64_t max_side) {
  const std::uint64_t cap = max_side == 0 ? u.side() : std::min(max_side, u.side());
  point lo(u.dims());
  point hi(u.dims());
  for (int i = 0; i < u.dims(); ++i) {
    const std::uint64_t side = gen.uniform(1, cap);
    const std::uint64_t start = gen.uniform(0, u.side() - side);
    lo[i] = static_cast<std::uint32_t>(start);
    hi[i] = static_cast<std::uint32_t>(start + side - 1);
  }
  return {lo, hi};
}

}  // namespace subcover::workload
