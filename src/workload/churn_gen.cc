#include "workload/churn_gen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace subcover::workload {

namespace {

// The burst workload: tightly clustered, narrow, fully-bounded interests —
// a crowd piling onto the same few hotspots.
subscription_gen_options flash_options(const subscription_gen_options& base) {
  subscription_gen_options o = base;
  o.kind = workload_kind::clustered;
  o.clusters = std::max(1, base.clusters);
  o.cluster_spread = base.cluster_spread / 4.0;
  o.mean_width = base.mean_width / 2.0;
  o.wildcard_prob = 0.0;
  return o;
}

}  // namespace

churn_gen::churn_gen(const schema& s, churn_gen_options options, std::uint64_t seed)
    : schema_(s),
      options_(options),
      rng_(seed),
      sub_gen_(s, options.subscriptions, seed ^ 0x9e3779b97f4a7c15ULL),
      flash_gen_(s, flash_options(options.subscriptions), seed ^ 0xc2b2ae3d27d4eb4fULL),
      event_gen_(s, seed ^ 0x165667b19e3779f9ULL) {
  if (options_.subscribe_weight < 0 || options_.unsubscribe_weight < 0 ||
      options_.publish_weight < 0)
    throw std::invalid_argument("churn_gen: op weights must be non-negative");
  if (options_.subscribe_weight + options_.unsubscribe_weight + options_.publish_weight <= 0)
    throw std::invalid_argument("churn_gen: at least one op weight must be positive");
  if (options_.victim_skew < 0)
    throw std::invalid_argument("churn_gen: victim_skew must be non-negative");
}

churn_op churn_gen::make_subscribe(subscription_gen& gen) {
  churn_op op;
  op.kind = churn_op::op_kind::subscribe;
  op.id = next_id_++;
  op.sub = gen.next();
  live_.push_back(op.id);
  return op;
}

churn_op churn_gen::make_unsubscribe() {
  // Victim distance from the newest live id ~ n * u^(1 + skew): skew 0 is
  // uniform, larger skews concentrate on recent arrivals. The swap-remove
  // keeps withdrawal O(1) at the cost of slightly perturbing recency order —
  // acceptable noise in a workload model, and fully deterministic.
  const std::size_t n = live_.size();
  const double u = rng_.uniform01();
  std::size_t dist =
      static_cast<std::size_t>(static_cast<double>(n) * std::pow(u, 1.0 + options_.victim_skew));
  dist = std::min(dist, n - 1);
  const std::size_t idx = n - 1 - dist;
  churn_op op;
  op.kind = churn_op::op_kind::unsubscribe;
  op.id = live_[idx];
  live_[idx] = live_.back();
  live_.pop_back();
  return op;
}

churn_op churn_gen::next() {
  ++ops_emitted_;
  if (!pending_.empty()) {
    churn_op op = std::move(pending_.front());
    pending_.pop_front();
    if (op.kind == churn_op::op_kind::subscribe) {
      live_.push_back(op.id);
    } else {
      // Burst unsubscribes target the burst's own (most recent) ids.
      const auto it = std::find(live_.rbegin(), live_.rend(), op.id);
      live_.erase(std::next(it).base());
    }
    return op;
  }
  if (ops_emitted_ <= options_.warmup_subscriptions) return make_subscribe(sub_gen_);
  if (options_.flash_prob > 0 && options_.flash_len > 0 &&
      rng_.bernoulli(options_.flash_prob)) {
    // Queue the whole burst: its subscribes, then their withdrawals. The
    // first op is emitted now; live-set bookkeeping happens per emission.
    for (std::size_t i = 0; i < options_.flash_len; ++i) {
      churn_op op;
      op.kind = churn_op::op_kind::subscribe;
      op.id = next_id_++;
      op.sub = flash_gen_.next();
      pending_.push_back(op);
    }
    for (std::size_t i = 0; i < options_.flash_len; ++i) {
      churn_op op;
      op.kind = churn_op::op_kind::unsubscribe;
      op.id = pending_[i].id;
      pending_.push_back(op);
    }
    churn_op op = std::move(pending_.front());
    pending_.pop_front();
    live_.push_back(op.id);
    return op;
  }
  // Weighted mixed draw. An empty live set zeroes the unsubscribe weight;
  // if that zeroes the whole mix (unsubscribe-only options), subscribe.
  const double unsub_w = live_.empty() ? 0.0 : options_.unsubscribe_weight;
  const double total = options_.subscribe_weight + unsub_w + options_.publish_weight;
  if (total <= 0) return make_subscribe(sub_gen_);
  const double r = rng_.uniform01() * total;
  if (r < options_.subscribe_weight) return make_subscribe(sub_gen_);
  if (r < options_.subscribe_weight + unsub_w) return make_unsubscribe();
  churn_op op;
  op.kind = churn_op::op_kind::publish;
  op.ev = event_gen_.next();
  return op;
}

churn_gen_options churn_gen::stock_ticker_at_scale() {
  churn_gen_options o;
  o.subscriptions.kind = workload_kind::zipf;
  o.subscriptions.zipf_s = 1.2;
  o.subscriptions.zipf_grid = 256;
  o.subscriptions.mean_width = 0.05;
  o.subscriptions.wildcard_prob = 0.0;
  o.subscribe_weight = 0.40;
  o.unsubscribe_weight = 0.40;
  o.publish_weight = 0.20;
  o.victim_skew = 2.0;
  o.flash_prob = 0.01;
  o.flash_len = 64;
  return o;
}

}  // namespace subcover::workload
