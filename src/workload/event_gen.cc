#include "workload/event_gen.h"

#include <stdexcept>

namespace subcover::workload {

event_gen::event_gen(const schema& s, std::uint64_t seed) : schema_(s), rng_(seed) {}

event event_gen::next() {
  std::vector<std::uint64_t> values;
  values.reserve(static_cast<std::size_t>(schema_.attribute_count()));
  for (int a = 0; a < schema_.attribute_count(); ++a) {
    const auto& def = schema_.attribute(a);
    const std::uint64_t max = def.type == attribute_type::categorical
                                  ? def.labels.size() - 1
                                  : schema_.max_value(a);
    values.push_back(rng_.uniform(0, max));
  }
  return {schema_, std::move(values)};
}

event event_gen::next_matching(const subscription& sub) {
  if (sub.attribute_count() != schema_.attribute_count())
    throw std::invalid_argument("event_gen: subscription schema mismatch");
  std::vector<std::uint64_t> values;
  values.reserve(static_cast<std::size_t>(schema_.attribute_count()));
  for (int a = 0; a < schema_.attribute_count(); ++a) {
    const auto& r = sub.range(a);
    values.push_back(rng_.uniform(r.lo, r.hi));
  }
  return {schema_, std::move(values)};
}

}  // namespace subcover::workload
