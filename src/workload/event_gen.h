// Event generators: uniform over the schema domain, or targeted inside a
// given subscription's rectangle (for delivery-completeness tests).
#pragma once

#include <cstdint>

#include "pubsub/event.h"
#include "pubsub/subscription.h"
#include "util/random.h"

namespace subcover::workload {

class event_gen {
 public:
  event_gen(const schema& s, std::uint64_t seed);

  // Uniform over the full attribute domain.
  event next();
  // Uniform over the subscription's rectangle (always matches it).
  event next_matching(const subscription& sub);

 private:
  schema schema_;
  rng rng_;
};

}  // namespace subcover::workload
