// Synthetic subscription workloads for the covering benchmarks.
//
// The paper argues approximate covering finds most covering relationships
// "if subscriptions are well distributed over the universe"; these
// generators produce workloads across that spectrum:
//   uniform    — ranges with uniform centers: covering pairs are incidental.
//   clustered  — ranges concentrated around a few hotspots with varying
//                widths: covering-rich (popular topics with broad and narrow
//                subscribers), the regime where covering pays off.
//   zipf       — range centers drawn from a Zipf-skewed grid: few hot values
//                attract most subscriptions (stock-ticker-like).
#pragma once

#include <cstdint>

#include "pubsub/schema.h"
#include "pubsub/subscription.h"
#include "util/random.h"

namespace subcover::workload {

enum class workload_kind { uniform, clustered, zipf };

struct subscription_gen_options {
  workload_kind kind = workload_kind::uniform;
  // Mean fraction of an attribute's domain a range spans (width is uniform
  // in (0, 2*mean_width]).
  double mean_width = 0.2;
  // Probability that an attribute is left unconstrained (full range).
  double wildcard_prob = 0.1;
  // Keep non-wildcard numeric ranges strictly inside (0, max): ranges that
  // touch a domain boundary transform to unit-thickness dominance regions
  // (the paper's degenerate M x 1 aspect-ratio case), which only the
  // budget-capped search handles gracefully. Default on for benchmarks.
  bool interior_ranges = true;
  // clustered: number of hotspot centers and their relative spread.
  int clusters = 16;
  double cluster_spread = 0.05;
  // zipf: skew exponent and grid resolution for range centers.
  double zipf_s = 1.0;
  int zipf_grid = 256;
};

class subscription_gen {
 public:
  subscription_gen(const schema& s, subscription_gen_options options, std::uint64_t seed);

  subscription next();

  [[nodiscard]] const schema& message_schema() const { return schema_; }

 private:
  std::uint64_t pick_center(int attr);

  schema schema_;
  subscription_gen_options options_;
  rng rng_;
  std::vector<std::vector<std::uint64_t>> cluster_centers_;  // per attribute
  std::vector<zipf_sampler> zipf_;                           // per attribute
};

// Common schemas used by examples, tests, and benches.
schema make_uniform_schema(int attributes, int bits);
// The introduction's stock-quote schema: categorical symbol + numeric
// volume and price.
schema make_stock_schema();
// A four-attribute environmental-sensor schema (region, temp, humidity,
// battery) exercising mixed bit widths.
schema make_sensor_schema();

}  // namespace subcover::workload
