#include "workload/subscription_gen.h"

#include <algorithm>
#include <stdexcept>

namespace subcover::workload {

subscription_gen::subscription_gen(const schema& s, subscription_gen_options options,
                                   std::uint64_t seed)
    : schema_(s), options_(options), rng_(seed) {
  if (options_.mean_width <= 0 || options_.mean_width > 0.5)
    throw std::invalid_argument("subscription_gen: mean_width must be in (0, 0.5]");
  if (options_.wildcard_prob < 0 || options_.wildcard_prob > 1)
    throw std::invalid_argument("subscription_gen: wildcard_prob must be in [0, 1]");
  if (options_.kind == workload_kind::clustered) {
    if (options_.clusters < 1)
      throw std::invalid_argument("subscription_gen: clusters must be >= 1");
    cluster_centers_.resize(static_cast<std::size_t>(schema_.attribute_count()));
    for (int a = 0; a < schema_.attribute_count(); ++a) {
      auto& centers = cluster_centers_[static_cast<std::size_t>(a)];
      centers.reserve(static_cast<std::size_t>(options_.clusters));
      for (int c = 0; c < options_.clusters; ++c)
        centers.push_back(rng_.uniform(0, schema_.max_value(a)));
    }
  }
  if (options_.kind == workload_kind::zipf) {
    if (options_.zipf_grid < 2)
      throw std::invalid_argument("subscription_gen: zipf_grid must be >= 2");
    for (int a = 0; a < schema_.attribute_count(); ++a) {
      (void)a;
      zipf_.emplace_back(static_cast<std::size_t>(options_.zipf_grid), options_.zipf_s);
    }
  }
}

std::uint64_t subscription_gen::pick_center(int attr) {
  const std::uint64_t max = schema_.max_value(attr);
  switch (options_.kind) {
    case workload_kind::uniform:
      return rng_.uniform(0, max);
    case workload_kind::clustered: {
      const auto& centers = cluster_centers_[static_cast<std::size_t>(attr)];
      const std::uint64_t base = centers[rng_.index(centers.size())];
      const auto spread =
          static_cast<std::uint64_t>(options_.cluster_spread * static_cast<double>(max));
      const std::uint64_t lo = base > spread ? base - spread : 0;
      const std::uint64_t hi = std::min(max, base + spread);
      return rng_.uniform(lo, hi);
    }
    case workload_kind::zipf: {
      // Zipf-ranked grid cell, uniform within the cell. A deterministic
      // shuffle-free mapping keeps hot cells spread over the domain.
      const auto cell = zipf_[static_cast<std::size_t>(attr)].sample(rng_);
      const std::uint64_t grid = static_cast<std::uint64_t>(options_.zipf_grid);
      // Golden-ratio hop scatters consecutive ranks across the domain.
      const std::uint64_t scattered = (cell * 11400714819323198485ULL) % grid;
      const std::uint64_t cell_width = (max + 1) / grid + 1;
      const std::uint64_t base = scattered * cell_width;
      return std::min(max, base + rng_.uniform(0, cell_width - 1));
    }
  }
  throw std::logic_error("subscription_gen: unknown workload kind");
}

subscription subscription_gen::next() {
  std::vector<attr_range> ranges;
  ranges.reserve(static_cast<std::size_t>(schema_.attribute_count()));
  for (int a = 0; a < schema_.attribute_count(); ++a) {
    const std::uint64_t max = schema_.max_value(a);
    if (rng_.bernoulli(options_.wildcard_prob)) {
      ranges.push_back({0, max});
      continue;
    }
    if (schema_.attribute(a).type == attribute_type::categorical) {
      // Categorical constraints are equalities on a valid label.
      const auto labels = schema_.attribute(a).labels.size();
      const std::uint64_t v = rng_.uniform(0, labels - 1);
      ranges.push_back({v, v});
      continue;
    }
    const std::uint64_t center = pick_center(a);
    const double width_frac = rng_.uniform01() * 2.0 * options_.mean_width;
    const auto half =
        static_cast<std::uint64_t>(width_frac * static_cast<double>(max) / 2.0);
    std::uint64_t lo = center > half ? center - half : 0;
    std::uint64_t hi = std::min(max, center + half);
    if (options_.interior_ranges && max >= 2) {
      lo = std::clamp<std::uint64_t>(lo, 1, max - 1);
      hi = std::clamp<std::uint64_t>(hi, lo, max - 1);
    }
    ranges.push_back({lo, hi});
  }
  return {schema_, std::move(ranges)};
}

schema make_uniform_schema(int attributes, int bits) {
  std::vector<attribute_def> attrs;
  attrs.reserve(static_cast<std::size_t>(attributes));
  for (int i = 0; i < attributes; ++i)
    attrs.push_back({"attr" + std::to_string(i), attribute_type::numeric, bits, {}});
  return schema(std::move(attrs));
}

schema make_stock_schema() {
  return schema({
      {"stock",
       attribute_type::categorical,
       8,
       {"IBM", "AAPL", "MSFT", "GOOG", "AMZN", "ORCL", "INTC", "CSCO", "NVDA", "AMD", "TSM",
        "QCOM", "TXN", "MU", "HPQ", "DELL"}},
      {"volume", attribute_type::numeric, 16, {}},
      {"price", attribute_type::numeric, 14, {}},
  });
}

schema make_sensor_schema() {
  return schema({
      {"region", attribute_type::categorical, 6, {"north", "south", "east", "west", "center"}},
      {"temperature", attribute_type::numeric, 10, {}},
      {"humidity", attribute_type::numeric, 8, {}},
      {"battery", attribute_type::numeric, 8, {}},
  });
}

}  // namespace subcover::workload
