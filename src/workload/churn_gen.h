// Seeded mixed-operation churn streams for the covering stack's deferred
// maintenance machinery: the BM_Churn benchmarks and the differential soak
// test drive the same generator, so any stream is reproducible from
// (schema, options, seed) alone — what the golden-stream determinism tests
// in tests/workload/workload_test.cc pin.
//
// A stream interleaves three operation kinds over a live set the generator
// tracks itself:
//   subscribe   — a fresh subscription (any subscription_gen workload) under
//                 a never-reused id.
//   unsubscribe — a currently-live victim, picked with a power-law skew
//                 toward recent subscriptions (victim_skew > 0: the newest
//                 subscribers churn fastest, the stock-ticker regime; 0
//                 picks uniformly). Never emitted while the live set is
//                 empty — the weight falls to subscribe instead.
//   publish     — an event uniform over the schema domain.
//
// Flash crowds: with probability flash_prob per drawn op the stream enqueues
// a burst — flash_len subscribes tightly clustered around one fresh hotspot
// followed by the matching flash_len unsubscribes — modeling the
// subscribe-storms a ticker symbol sees around news. Burst ops drain before
// the mixed draw resumes, so a burst is atomic in the stream.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "pubsub/event.h"
#include "pubsub/subscription.h"
#include "util/random.h"
#include "workload/event_gen.h"
#include "workload/subscription_gen.h"

namespace subcover::workload {

struct churn_op {
  enum class op_kind { subscribe, unsubscribe, publish };
  op_kind kind = op_kind::subscribe;
  std::uint64_t id = 0;  // subscribe / unsubscribe target
  subscription sub;      // valid when kind == subscribe
  event ev;              // valid when kind == publish
};

struct churn_gen_options {
  // How fresh subscriptions look (workload kind, widths, wildcards, ...).
  subscription_gen_options subscriptions;
  // Relative op-mix weights (any non-negative scale; normalized per draw).
  double subscribe_weight = 0.45;
  double unsubscribe_weight = 0.45;
  double publish_weight = 0.10;
  // Unsubscribe victim skew: the victim's distance from the newest live
  // subscription is distributed as n * u^(1 + victim_skew) for uniform u —
  // 0 is uniform over the live set, larger values concentrate churn on
  // recent arrivals. Negative values throw.
  double victim_skew = 1.0;
  // Flash-crowd bursts (0 disables). Burst subscriptions always come from a
  // single-hotspot clustered workload regardless of `subscriptions`.
  double flash_prob = 0.0;
  std::size_t flash_len = 32;
  // The first this-many ops are pure subscribes whatever the weights, so a
  // stream starts against a populated index.
  std::size_t warmup_subscriptions = 0;
};

class churn_gen {
 public:
  // Throws std::invalid_argument on negative weights or skew, or if all
  // three weights are zero.
  churn_gen(const schema& s, churn_gen_options options, std::uint64_t seed);

  churn_op next();

  // Live subscriptions the stream has created and not yet withdrawn.
  [[nodiscard]] std::size_t live() const { return live_.size(); }
  [[nodiscard]] std::uint64_t ops_emitted() const { return ops_emitted_; }
  [[nodiscard]] const schema& message_schema() const { return schema_; }

  // The "stock ticker at scale" preset: Zipf-skewed narrow subscriptions
  // (few hot symbols attract most interest), heavy churn on recent
  // subscribers, and frequent flash crowds. Pair with make_stock_schema().
  static churn_gen_options stock_ticker_at_scale();

 private:
  churn_op make_subscribe(subscription_gen& gen);
  churn_op make_unsubscribe();

  schema schema_;
  churn_gen_options options_;
  rng rng_;
  subscription_gen sub_gen_;
  subscription_gen flash_gen_;  // single-hotspot clustered burst workload
  event_gen event_gen_;
  std::vector<std::uint64_t> live_;  // live ids, oldest first (approximate
                                     // after swap-removes; see victim pick)
  std::deque<churn_op> pending_;     // queued burst ops
  std::uint64_t next_id_ = 0;
  std::uint64_t ops_emitted_ = 0;
};

}  // namespace subcover::workload
