// Generators for query rectangles with controlled bit-length profiles — the
// knobs of the paper's analysis: gamma = b(shortest side) and the aspect
// ratio alpha = b(longest) - b(shortest).
#pragma once

#include "geometry/extremal.h"
#include "geometry/rect.h"
#include "geometry/universe.h"
#include "util/random.h"

namespace subcover::workload {

// Random extremal rectangle with b(l_min) == gamma on dimension 0 and
// b(l_max) == gamma + alpha on the last dimension; intermediate dimensions
// get a uniform bit length in [gamma, gamma + alpha]. Bits below each
// leading bit are uniform random. Requires gamma >= 1 and
// gamma + alpha <= k. Throws std::invalid_argument otherwise.
extremal_rect random_extremal(rng& gen, const universe& u, int gamma, int alpha);

// The Lemma 3.6 worst-case shape for the truncated decomposition: the top
// min(m, b) bits of every side are ones; dimension 0 has b = gamma, all
// others b = gamma + alpha.
extremal_rect worst_case_extremal(const universe& u, int gamma, int alpha, int m);

// The Section 4 adversarial rectangle for the exhaustive lower bound:
// shortest side 2^gamma - 1 on the last dimension, all other sides
// 2^(gamma+alpha) - 1 (all-ones patterns). Requires gamma + alpha <= k.
extremal_rect adversarial_extremal(const universe& u, int gamma, int alpha);

// Uniform random axis-aligned rectangle inside the universe; if max_side is
// nonzero, each side length is drawn from [1, max_side].
rect random_rect(rng& gen, const universe& u, std::uint64_t max_side = 0);

}  // namespace subcover::workload
