#include "covering/covering_index.h"

#include <stdexcept>

#include "covering/linear_covering_index.h"
#include "covering/sampled_covering_index.h"
#include "covering/sfc_covering_index.h"

namespace subcover {

void covering_index::insert_batch(const std::vector<std::pair<sub_id, subscription>>& subs) {
  for (const auto& [id, s] : subs) insert(id, s);
}

std::size_t covering_index::erase_batch(const std::vector<sub_id>& ids) {
  std::size_t erased = 0;
  for (const sub_id id : ids) {
    if (erase(id)) ++erased;
  }
  return erased;
}

std::unique_ptr<covering_index> make_covering_index(covering_index_kind kind, const schema& s) {
  switch (kind) {
    case covering_index_kind::sfc:
      return std::make_unique<sfc_covering_index>(s);
    case covering_index_kind::linear:
      return std::make_unique<linear_covering_index>(s);
    case covering_index_kind::sampled:
      return std::make_unique<sampled_covering_index>(s);
  }
  throw std::invalid_argument("make_covering_index: unknown kind");
}

}  // namespace subcover
