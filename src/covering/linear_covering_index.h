// Exact covering detection by linear scan — the ground-truth baseline.
// find_covering examines stored subscriptions in ascending id order and
// returns the first one whose rectangle contains the query's (early-exit
// per-attribute rejection, O(n * beta) worst case).
#pragma once

#include <map>

#include "covering/covering_index.h"

namespace subcover {

class linear_covering_index final : public covering_index {
 public:
  explicit linear_covering_index(const schema& s) : covering_index(s) {}

  void insert(sub_id id, const subscription& s) override;
  bool erase(sub_id id) override;
  [[nodiscard]] std::optional<sub_id> find_covering(
      const subscription& s, double epsilon,
      covering_check_stats* stats = nullptr) const override;
  [[nodiscard]] std::size_t size() const override { return subs_.size(); }
  [[nodiscard]] std::string_view name() const override { return "linear-scan"; }
  [[nodiscard]] std::size_t memory_footprint() const override {
    return sizeof(*this) + subscription_map_footprint(subs_);
  }

  // All ids whose subscriptions cover `s` (used as the oracle in tests and
  // detection-rate benches).
  [[nodiscard]] std::vector<sub_id> all_covering(const subscription& s) const;

 private:
  std::map<sub_id, subscription> subs_;
};

}  // namespace subcover
