// The paper's covering detector: subscriptions are mapped to points in the
// 2*beta-dimensional dominance universe (EO82 transform) and indexed on a
// space filling curve; find_covering(s, eps) runs the eps-approximate point
// dominance query of Section 5 with p(s) as the query point.
//
// Every dominance hit is re-verified against the stored subscription before
// being returned (defense in depth; the geometric construction already
// guarantees it), so a returned id always truly covers `s` for any eps.
//
// find_covering routes through the dominance index's reusable query plan
// (dominance/query_plan.h): the covering hot path performs no per-check
// heap allocation once warm. The plan is per-index scratch, so concurrent
// find_covering calls on one sfc_covering_index are not safe; a broker
// keeps one index per link, which serializes naturally.
#pragma once

#include <map>

#include "covering/covering_index.h"
#include "dominance/dominance_index.h"

namespace subcover {

struct sfc_covering_options {
  curve_kind curve = curve_kind::z_order;
  sfc_array_kind array = sfc_array_kind::skiplist;
  // Key width of the dominance pipeline; `automatic` picks the narrowest
  // type that fits the 2*beta-dimensional dominance universe (most schemas
  // fit 128 bits — see util/key_traits.h).
  key_width width = key_width::automatic;
  bool merge_runs = true;
  // Batched frontier probing (see dominance_options::batched_probe): answer
  // each level's run frontier with one resumed probe_frontier sweep instead
  // of per-run descents. Identical detection results either way.
  bool batched_probe = true;
  // Head-probe depth before the frontier sweep engages (see
  // dominance_options::head_probe): 1 = the pinned PR-4 behavior, 0 =
  // adaptive from the plan's running hit-at-rank estimate, > 1 = fixed
  // deeper head. Identical detection results for every setting.
  int head_probe = 1;
  // SIMD policy for the dominance plan's level-frontier kernels (see
  // dominance_options::simd / util/simd.h). Identical detection results and
  // logical stats for every setting; only speed moves.
  simd_mode simd = simd_mode::automatic;
  // Covering queries for subscriptions with wildcard or open-ended
  // constraints produce degenerate (unit-thickness, huge-aspect-ratio)
  // dominance regions — the paper's "M x 1" worst case — whose full
  // decomposition is astronomically large. Production behaviour is
  // best-effort within a cube budget: the search probes the largest cubes it
  // could enumerate and reports budget_exhausted in the stats. Detection
  // stays one-sided (hits are always real coverings); only completeness
  // degrades on degenerate queries.
  std::uint64_t max_cubes = std::uint64_t{1} << 16;
  bool settle_on_budget = true;
  // Hot/cold tiering of the dominance array (see
  // dominance_options::tier_hot_capacity): 0 = classic resident array (the
  // default, byte-for-byte today's behavior); > 0 = keep at most this many
  // recently inserted / recently hit entries in the probe-ready hot
  // backend and the rest delta/varint-compressed. Detection results and
  // logical query_stats are identical either way.
  std::size_t tier_hot_capacity = 0;
  std::size_t tier_block_entries = 64;
  // Compaction threshold for deferred erase in the dominance array (see
  // dominance_options::compact_live_fraction): 1.0 = eager per-erase
  // compaction (the naive churn baseline), 0.0 = never. Detection results
  // and logical query_stats are identical for every setting.
  double compact_live_fraction = 0.5;
};

class sfc_covering_index final : public covering_index {
 public:
  explicit sfc_covering_index(const schema& s, sfc_covering_options options = {});

  void insert(sub_id id, const subscription& s) override;
  // Bulk path: one EO82 transform pass + one dominance-array bulk load
  // (sort + merge) instead of per-subscription index descents.
  void insert_batch(const std::vector<std::pair<sub_id, subscription>>& subs) override;
  bool erase(sub_id id) override;
  // Bulk withdrawal: one EO82 transform pass + one dominance-array batch
  // erase, paying tombstone/compaction machinery once instead of per id.
  // Unknown ids are skipped (covering_index contract).
  std::size_t erase_batch(const std::vector<sub_id>& ids) override;
  void maintain() override { index_.maintain(); }
  [[nodiscard]] std::optional<sub_id> find_covering(
      const subscription& s, double epsilon,
      covering_check_stats* stats = nullptr) const override;
  [[nodiscard]] std::size_t size() const override { return subs_.size(); }
  [[nodiscard]] std::string_view name() const override;
  [[nodiscard]] std::size_t memory_footprint() const override {
    return sizeof(*this) + index_.memory_footprint() + subscription_map_footprint(subs_);
  }

  [[nodiscard]] const dominance_index& index() const { return index_; }

 private:
  sfc_covering_options options_;
  dominance_index index_;
  std::map<sub_id, subscription> subs_;  // for verification and erase
};

}  // namespace subcover
