#include "covering/linear_covering_index.h"

#include <stdexcept>

#include "util/timer.h"

namespace subcover {

void linear_covering_index::insert(sub_id id, const subscription& s) {
  if (!subs_.emplace(id, s).second)
    throw std::invalid_argument("linear_covering_index: duplicate id " + std::to_string(id));
}

bool linear_covering_index::erase(sub_id id) { return subs_.erase(id) > 0; }

std::optional<sub_id> linear_covering_index::find_covering(const subscription& s,
                                                           double epsilon,
                                                           covering_check_stats* stats) const {
  if (epsilon < 0 || epsilon >= 1)
    throw std::invalid_argument("find_covering: epsilon must be in [0, 1)");
  const stopwatch timer;
  covering_check_stats local;
  covering_check_stats& st = stats != nullptr ? *stats : local;
  st = covering_check_stats{};
  // The linear index is exact regardless of epsilon.
  std::optional<sub_id> result;
  for (const auto& [id, stored] : subs_) {
    ++st.candidates_checked;
    if (stored.covers(s)) {
      result = id;
      st.found = true;
      break;
    }
  }
  st.elapsed_ns = timer.elapsed_ns();
  return result;
}

std::vector<sub_id> linear_covering_index::all_covering(const subscription& s) const {
  std::vector<sub_id> out;
  for (const auto& [id, stored] : subs_)
    if (stored.covers(s)) out.push_back(id);
  return out;
}

}  // namespace subcover
