#include "covering/sampled_covering_index.h"

#include <stdexcept>

#include "util/timer.h"

namespace subcover {

sampled_covering_index::sampled_covering_index(const schema& s, int samples, std::uint64_t seed)
    : covering_index(s), samples_(samples), rng_(seed) {
  if (samples < 1) throw std::invalid_argument("sampled_covering_index: samples must be >= 1");
}

void sampled_covering_index::insert(sub_id id, const subscription& s) {
  if (!subs_.emplace(id, s).second)
    throw std::invalid_argument("sampled_covering_index: duplicate id " + std::to_string(id));
}

bool sampled_covering_index::erase(sub_id id) { return subs_.erase(id) > 0; }

std::optional<sub_id> sampled_covering_index::find_covering(const subscription& s,
                                                            double epsilon,
                                                            covering_check_stats* stats) const {
  if (epsilon < 0 || epsilon >= 1)
    throw std::invalid_argument("find_covering: epsilon must be in [0, 1)");
  const stopwatch timer;
  covering_check_stats local;
  covering_check_stats& st = stats != nullptr ? *stats : local;
  st = covering_check_stats{};

  const int attrs = schema_.attribute_count();
  std::optional<sub_id> result;
  for (const auto& [id, stored] : subs_) {
    ++st.candidates_checked;
    bool subsumed = true;
    for (int t = 0; t < samples_ && subsumed; ++t) {
      // A uniform sample of the query rectangle must land inside `stored`.
      for (int i = 0; i < attrs; ++i) {
        const auto& qr = s.range(i);
        const std::uint64_t v = rng_.uniform(qr.lo, qr.hi);
        const auto& sr = stored.range(i);
        if (v < sr.lo || v > sr.hi) {
          subsumed = false;
          break;
        }
      }
    }
    if (subsumed) {
      result = id;
      st.found = true;
      break;
    }
  }
  st.elapsed_ns = timer.elapsed_ns();
  return result;
}

}  // namespace subcover
