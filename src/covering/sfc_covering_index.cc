#include "covering/sfc_covering_index.h"

#include <set>
#include <stdexcept>

#include "pubsub/transform.h"
#include "util/check.h"
#include "util/timer.h"

namespace subcover {

namespace {

dominance_options to_dominance_options(const sfc_covering_options& o) {
  dominance_options d;
  d.curve = o.curve;
  d.array = o.array;
  d.width = o.width;
  d.merge_runs = o.merge_runs;
  d.batched_probe = o.batched_probe;
  d.head_probe = o.head_probe;
  d.simd = o.simd;
  d.max_cubes = o.max_cubes;
  d.settle_on_budget = o.settle_on_budget;
  d.tier_hot_capacity = o.tier_hot_capacity;
  d.tier_block_entries = o.tier_block_entries;
  d.compact_live_fraction = o.compact_live_fraction;
  return d;
}

}  // namespace

sfc_covering_index::sfc_covering_index(const schema& s, sfc_covering_options options)
    : covering_index(s),
      options_(options),
      index_(s.dominance_universe(), to_dominance_options(options)) {}

std::string_view sfc_covering_index::name() const {
  switch (options_.curve) {
    case curve_kind::z_order:
      return "sfc-z";
    case curve_kind::hilbert:
      return "sfc-hilbert";
    case curve_kind::gray_code:
      return "sfc-gray";
  }
  return "sfc";
}

void sfc_covering_index::insert(sub_id id, const subscription& s) {
  const auto [it, inserted] = subs_.emplace(id, s);
  (void)it;
  if (!inserted)
    throw std::invalid_argument("sfc_covering_index: duplicate id " + std::to_string(id));
  index_.insert(to_dominance_point(schema_, s), id);
}

void sfc_covering_index::insert_batch(const std::vector<std::pair<sub_id, subscription>>& subs) {
  // Validate the whole batch before mutating anything: subs_ and the
  // dominance index must never desync (a half-inserted id would be visible
  // to erase but invisible to queries).
  std::set<sub_id> batch_ids;
  for (const auto& [id, s] : subs) {
    (void)s;
    if (subs_.count(id) > 0 || !batch_ids.insert(id).second)
      throw std::invalid_argument("sfc_covering_index: duplicate id " + std::to_string(id));
  }
  std::vector<std::pair<point, std::uint64_t>> points;
  points.reserve(subs.size());
  for (const auto& [id, s] : subs) {
    subs_.emplace(id, s);
    points.emplace_back(to_dominance_point(schema_, s), id);
  }
  index_.insert_batch(points);
}

bool sfc_covering_index::erase(sub_id id) {
  const auto it = subs_.find(id);
  if (it == subs_.end()) return false;
  const bool erased = index_.erase(to_dominance_point(schema_, it->second), id);
  SUBCOVER_CHECK(erased, "sfc_covering_index: dominance index out of sync");
  subs_.erase(it);
  return true;
}

std::size_t sfc_covering_index::erase_batch(const std::vector<sub_id>& ids) {
  // Collect the known ids' dominance points first (ids may repeat within
  // the batch; only the first occurrence of each resolves), then hand the
  // dominance index one batch so the SFC array sorts / tombstones / compacts
  // once instead of per id.
  std::vector<std::pair<point, std::uint64_t>> points;
  std::vector<std::map<sub_id, subscription>::iterator> victims;
  points.reserve(ids.size());
  victims.reserve(ids.size());
  std::set<sub_id> batch_ids;
  for (const sub_id id : ids) {
    const auto it = subs_.find(id);
    if (it == subs_.end() || !batch_ids.insert(id).second) continue;
    points.emplace_back(to_dominance_point(schema_, it->second), id);
    victims.push_back(it);
  }
  const std::size_t erased = index_.erase_batch(points);
  SUBCOVER_CHECK(erased == points.size(), "sfc_covering_index: dominance index out of sync");
  for (const auto it : victims) subs_.erase(it);
  return victims.size();
}

std::optional<sub_id> sfc_covering_index::find_covering(const subscription& s, double epsilon,
                                                        covering_check_stats* stats) const {
  const stopwatch timer;
  covering_check_stats local;
  covering_check_stats& st = stats != nullptr ? *stats : local;
  st = covering_check_stats{};

  const point query = to_dominance_point(schema_, s);
  const auto hit = index_.query(query, epsilon, &st.dominance);
  std::optional<sub_id> result;
  if (hit.has_value()) {
    // A dominance hit corresponds to a covering subscription by the EO82
    // equivalence; verify against the stored rectangle anyway so that a
    // corrupted index can never produce a false covering (which would lose
    // messages in a broker).
    const auto it = subs_.find(*hit);
    SUBCOVER_CHECK(it != subs_.end(), "sfc_covering_index: hit unknown id");
    SUBCOVER_CHECK(it->second.covers(s), "sfc_covering_index: dominance hit does not cover");
    result = *hit;
    st.found = true;
  }
  st.elapsed_ns = timer.elapsed_ns();
  return result;
}

}  // namespace subcover
