// Monte-Carlo subsumption baseline, in the spirit of Ouksel et al. [OJPA06]
// (probabilistic subsumption checking, O(n*m) per check).
//
// For each stored subscription s1, the checker draws `samples` random points
// from the query rectangle s2 and declares "s1 covers s2" if every sample
// falls inside s1. This has TWO-SIDED error: it can claim covering when a
// sliver of s2 escapes s1 (false positive). In a broker a false positive
// suppresses a subscription that was not actually covered and silently loses
// events — exactly the failure mode the paper's one-sided approximation
// avoids. The broker bench quantifies this.
#pragma once

#include <map>

#include "covering/covering_index.h"
#include "util/random.h"

namespace subcover {

class sampled_covering_index final : public covering_index {
 public:
  explicit sampled_covering_index(const schema& s, int samples = 64,
                                  std::uint64_t seed = 0xa11ce);

  void insert(sub_id id, const subscription& s) override;
  bool erase(sub_id id) override;
  [[nodiscard]] std::optional<sub_id> find_covering(
      const subscription& s, double epsilon,
      covering_check_stats* stats = nullptr) const override;
  [[nodiscard]] std::size_t size() const override { return subs_.size(); }
  [[nodiscard]] std::string_view name() const override { return "mc-sampled"; }
  [[nodiscard]] std::size_t memory_footprint() const override {
    return sizeof(*this) + subscription_map_footprint(subs_);
  }

 private:
  std::map<sub_id, subscription> subs_;
  int samples_;
  mutable rng rng_;
};

}  // namespace subcover
