// Covering-detection API — the paper's primary contribution, packaged the way
// a broker uses it: maintain a set of subscriptions, and for each arriving
// subscription ask "is there an existing subscription that covers it?".
//
// Implementations:
//   * sfc_covering_index     — the paper's algorithm: EO82 transform to point
//                              dominance + SFC-indexed (eps-approximate or
//                              exhaustive) search. Sublinear in n.
//   * linear_covering_index  — exact scan over all subscriptions; the ground
//                              truth baseline. O(n) per check.
//   * sampled_covering_index — Monte-Carlo subsumption in the spirit of
//                              Ouksel et al. [OJPA06]; O(n) per check with
//                              two-sided error (can claim false coverings —
//                              deliberately unsafe, for comparison).
//
// Error semantics: find_covering(s, eps) with eps > 0 may MISS a covering
// subscription (one-sided error), which in a broker merely causes a
// redundant forward. Exact modes (eps == 0 on the safe indexes) never miss.
// Only the sampled index can return a wrong (non-covering) id.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "dominance/query_stats.h"
#include "pubsub/subscription.h"

namespace subcover {

using sub_id = std::uint64_t;

struct covering_check_stats {
  // Stored subscriptions examined individually (scan baselines; 0 for SFC).
  std::uint64_t candidates_checked = 0;
  // SFC dominance query accounting (zeroed for scan baselines).
  query_stats dominance;
  std::uint64_t elapsed_ns = 0;
  bool found = false;
};

class covering_index {
 public:
  virtual ~covering_index() = default;
  covering_index(const covering_index&) = delete;
  covering_index& operator=(const covering_index&) = delete;

  // Registers a subscription under a caller-chosen unique id. Throws
  // std::invalid_argument if the id is already present.
  virtual void insert(sub_id id, const subscription& s) = 0;
  // Bulk registration, equivalent to insert() per element. The default
  // loops; the SFC index overrides it to bulk-load the dominance array
  // (sort once instead of one descent per subscription), which is the fast
  // path for broker bootstrap. Throws std::invalid_argument on a duplicate
  // id; the SFC index validates the batch up front (all-or-nothing), the
  // default loop may leave elements before the duplicate inserted.
  virtual void insert_batch(const std::vector<std::pair<sub_id, subscription>>& subs);
  // Removes a subscription; returns false if the id is unknown.
  virtual bool erase(sub_id id) = 0;
  // Bulk withdrawal mirroring insert_batch: equivalent to erase() per
  // element, returns how many ids were actually removed (unknown ids are
  // skipped, not an error — a withdrawal racing a crash may replay). The
  // default loops; the SFC index overrides it to erase the dominance array
  // in one batch, paying its tombstone/compaction machinery once.
  virtual std::size_t erase_batch(const std::vector<sub_id>& ids);
  // Applies deferred index maintenance (tombstone compaction, tier flushes).
  // A no-op for indexes without deferred machinery; churn drivers call it
  // between epochs. Never changes detection results — only physical state.
  virtual void maintain() {}
  // Any stored subscription covering `s`, searching at least a (1 - epsilon)
  // fraction of the covering space (epsilon == 0: exhaustive/exact).
  [[nodiscard]] virtual std::optional<sub_id> find_covering(
      const subscription& s, double epsilon, covering_check_stats* stats = nullptr) const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
  // Bytes the index owns: search structures (for the SFC index, the
  // dominance array — hot + compressed cold tier when tiering is enabled)
  // plus the stored subscription rectangles. Structural overhead is
  // counted; see basic_sfc_array::memory_footprint for the conventions.
  [[nodiscard]] virtual std::size_t memory_footprint() const = 0;

  [[nodiscard]] const schema& message_schema() const { return schema_; }

 protected:
  explicit covering_index(schema s) : schema_(std::move(s)) {}

  // Footprint estimate for the sub_id -> subscription maps every
  // implementation keeps: tree-node headers plus the per-subscription
  // rectangle payload (one attr_range per schema attribute).
  static std::size_t subscription_map_footprint(const std::map<sub_id, subscription>& subs) {
    // Four pointers-worth of red-black node header per element.
    constexpr std::size_t kNodeOverhead = 4 * sizeof(void*);
    std::size_t total = sizeof(subs);
    for (const auto& [id, s] : subs) {
      (void)id;
      total += kNodeOverhead + sizeof(std::pair<const sub_id, subscription>) +
               static_cast<std::size_t>(s.attribute_count()) * sizeof(attr_range);
    }
    return total;
  }

  schema schema_;
};

enum class covering_index_kind { sfc, linear, sampled };

// Factory with per-kind defaults (sfc: Z curve + skip list; sampled: 64
// samples). For finer control construct the concrete classes directly.
std::unique_ptr<covering_index> make_covering_index(covering_index_kind kind, const schema& s);

}  // namespace subcover
