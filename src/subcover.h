// subcover — approximate covering detection among content-based
// subscriptions using space filling curves.
//
// Umbrella header exposing the full public API. Typical use:
//
//   #include "subcover.h"
//   using namespace subcover;
//
//   schema s = workload::make_stock_schema();
//   sfc_covering_index index(s);                       // the paper's index
//   index.insert(1, parse_subscription(s, "stock = IBM, volume >= 500"));
//   auto hit = index.find_covering(
//       parse_subscription(s, "stock = IBM, volume >= 800"), /*epsilon=*/0.05);
//   // hit == 1: the broader subscription covers the narrower one.
//
// Key-type selection contract (util/key_traits.h): the SFC query pipeline
// (curve -> cube/run streams -> SFC array -> query plan) is templated on
// the key type K in {std::uint64_t, u128, u512}. Construction-time
// dispatch picks the narrowest width that holds the universe's d*k key
// bits — dominance_index / sfc_covering_index do this automatically
// (override with options.width), so universes up to 64 key bits run on one
// machine word and up to 128 on two, several-fold cheaper than the 8-word
// u512 reference width. Every width computes bit-identical results (the
// narrow keys equal the u512 keys after widening); u512 remains the
// universal fallback and the type of the un-suffixed public aliases
// (curve, key_range, sfc_array, cube_stream, run_stream).
#pragma once

#include "broker/broker.h"        // IWYU pragma: export
#include "broker/metrics.h"       // IWYU pragma: export
#include "broker/network.h"       // IWYU pragma: export
#include "broker/routing_table.h" // IWYU pragma: export
#include "broker/topology.h"      // IWYU pragma: export
#include "broker/transport.h"     // IWYU pragma: export
#include "broker/wire.h"          // IWYU pragma: export
#include "covering/covering_index.h"          // IWYU pragma: export
#include "covering/linear_covering_index.h"   // IWYU pragma: export
#include "covering/sampled_covering_index.h"  // IWYU pragma: export
#include "covering/sfc_covering_index.h"      // IWYU pragma: export
#include "dominance/dominance_index.h"  // IWYU pragma: export
#include "dominance/query_stats.h"      // IWYU pragma: export
#include "dominance/theory.h"           // IWYU pragma: export
#include "geometry/cube.h"      // IWYU pragma: export
#include "geometry/extremal.h"  // IWYU pragma: export
#include "geometry/point.h"     // IWYU pragma: export
#include "geometry/rect.h"      // IWYU pragma: export
#include "geometry/universe.h"  // IWYU pragma: export
#include "pubsub/event.h"         // IWYU pragma: export
#include "pubsub/matching.h"      // IWYU pragma: export
#include "pubsub/parser.h"        // IWYU pragma: export
#include "pubsub/schema.h"        // IWYU pragma: export
#include "pubsub/subscription.h"  // IWYU pragma: export
#include "pubsub/transform.h"     // IWYU pragma: export
#include "sfc/curve.h"                    // IWYU pragma: export
#include "sfc/decomposition.h"            // IWYU pragma: export
#include "sfc/extremal_decomposition.h"   // IWYU pragma: export
#include "sfc/gray_curve.h"               // IWYU pragma: export
#include "sfc/hilbert_curve.h"            // IWYU pragma: export
#include "sfc/key_range.h"                // IWYU pragma: export
#include "sfc/runs.h"                     // IWYU pragma: export
#include "sfc/z_curve.h"                  // IWYU pragma: export
#include "sfcarray/sfc_array.h"           // IWYU pragma: export
#include "sfcarray/skiplist_array.h"      // IWYU pragma: export
#include "sfcarray/sorted_vector_array.h" // IWYU pragma: export
#include "util/bitops.h"   // IWYU pragma: export
#include "util/cli.h"      // IWYU pragma: export
#include "util/key_traits.h"  // IWYU pragma: export
#include "util/random.h"   // IWYU pragma: export
#include "util/stats.h"    // IWYU pragma: export
#include "util/table.h"    // IWYU pragma: export
#include "util/timer.h"    // IWYU pragma: export
#include "util/wideint.h"  // IWYU pragma: export
#include "workload/event_gen.h"         // IWYU pragma: export
#include "workload/rect_gen.h"          // IWYU pragma: export
#include "workload/subscription_gen.h"  // IWYU pragma: export
