#include "geometry/point.h"

#include <stdexcept>

namespace subcover {

point::point(int dims) : dims_(dims) {
  if (dims < 0 || dims > kMaxDims) throw std::invalid_argument("point: bad dimension count");
}

point::point(std::initializer_list<std::uint32_t> coords) : dims_(static_cast<int>(coords.size())) {
  if (coords.size() > kMaxDims) throw std::invalid_argument("point: too many coordinates");
  int i = 0;
  for (const auto c : coords) x_[static_cast<std::size_t>(i++)] = c;
}

bool point::dominates(const point& other) const {
  if (dims_ != other.dims_) throw std::invalid_argument("point::dominates: dims mismatch");
  for (int i = 0; i < dims_; ++i)
    if ((*this)[i] < other[i]) return false;
  return true;
}

bool point::inside(const universe& u) const {
  if (dims_ != u.dims()) throw std::invalid_argument("point::inside: dims mismatch");
  for (int i = 0; i < dims_; ++i)
    if ((*this)[i] > u.coord_max()) return false;
  return true;
}

std::string point::to_string() const {
  std::string s = "(";
  for (int i = 0; i < dims_; ++i) {
    if (i != 0) s += ", ";
    s += std::to_string((*this)[i]);
  }
  return s + ")";
}

}  // namespace subcover
