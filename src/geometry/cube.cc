#include "geometry/cube.h"

#include <stdexcept>

namespace subcover {

standard_cube::standard_cube(const point& corner, int side_bits)
    : corner_(corner), side_bits_(side_bits) {
  if (side_bits < 0 || side_bits > kMaxBitsPerDim)
    throw std::invalid_argument("standard_cube: side_bits out of range");
  const std::uint32_t mask = static_cast<std::uint32_t>((std::uint64_t{1} << side_bits) - 1);
  for (int i = 0; i < corner.dims(); ++i)
    if ((corner[i] & mask) != 0)
      throw std::invalid_argument("standard_cube: corner not aligned to side 2^" +
                                  std::to_string(side_bits));
}

standard_cube standard_cube::containing(const point& p, int side_bits) {
  point corner(p.dims());
  const std::uint32_t mask = ~static_cast<std::uint32_t>((std::uint64_t{1} << side_bits) - 1);
  for (int i = 0; i < p.dims(); ++i) corner[i] = p[i] & mask;
  return {corner, side_bits};
}

u512 standard_cube::cell_count() const { return u512::pow2(dims() * side_bits_); }

rect standard_cube::as_rect() const {
  point hi(corner_.dims());
  const auto offset = static_cast<std::uint32_t>(side() - 1);
  for (int i = 0; i < corner_.dims(); ++i) hi[i] = corner_[i] + offset;
  return {corner_, hi};
}

bool standard_cube::contains(const point& p) const { return as_rect().contains(p); }

bool standard_cube::contains(const standard_cube& other) const {
  return side_bits_ >= other.side_bits_ && as_rect().contains(other.as_rect());
}

std::string standard_cube::to_string() const {
  return "cube(corner=" + corner_.to_string() + ", side=2^" + std::to_string(side_bits_) + ")";
}

}  // namespace subcover
