#include "geometry/extremal.h"

#include <algorithm>
#include <stdexcept>

#include "util/bitops.h"

namespace subcover {

extremal_rect::extremal_rect(const universe& u,
                             const std::array<std::uint64_t, kMaxDims>& lengths)
    : len_(lengths), dims_(u.dims()) {
  for (int i = 0; i < dims_; ++i) {
    const auto l = len_[static_cast<std::size_t>(i)];
    if (l < 1 || l > u.side())
      throw std::invalid_argument("extremal_rect: side length " + std::to_string(l) +
                                  " out of [1, 2^k] along dimension " + std::to_string(i));
  }
}

extremal_rect extremal_rect::query_region(const universe& u, const point& x) {
  if (x.dims() != u.dims())
    throw std::invalid_argument("extremal_rect::query_region: dims mismatch");
  std::array<std::uint64_t, kMaxDims> len{};
  for (int i = 0; i < u.dims(); ++i) {
    if (x[i] > u.coord_max())
      throw std::invalid_argument("extremal_rect::query_region: point outside universe");
    len[static_cast<std::size_t>(i)] = u.side() - x[i];
  }
  return {u, len};
}

rect extremal_rect::to_rect(const universe& u) const {
  if (dims_ != u.dims()) throw std::invalid_argument("extremal_rect::to_rect: dims mismatch");
  point lo(dims_);
  point hi(dims_);
  for (int i = 0; i < dims_; ++i) {
    lo[i] = static_cast<std::uint32_t>(u.side() - length(i));
    hi[i] = u.coord_max();
  }
  return {lo, hi};
}

extremal_rect extremal_rect::truncated(const universe& u, int m) const {
  if (m < 1) throw std::invalid_argument("extremal_rect::truncated: m must be >= 1");
  std::array<std::uint64_t, kMaxDims> len{};
  for (int i = 0; i < dims_; ++i)
    len[static_cast<std::size_t>(i)] = truncate_to_msb(length(i), m);
  return {u, len};
}

extremal_rect extremal_rect::masked_from_bit(const universe& u, int i) const {
  extremal_rect r;
  r.dims_ = dims_;
  for (int j = 0; j < dims_; ++j)
    r.len_[static_cast<std::size_t>(j)] = keep_bits_from(length(j), i);
  (void)u;
  return r;
}

bool extremal_rect::is_empty() const {
  for (int i = 0; i < dims_; ++i)
    if (length(i) == 0) return true;
  return dims_ == 0;
}

u512 extremal_rect::volume() const {
  if (is_empty()) return 0;
  u512 v = 1;
  for (int i = 0; i < dims_; ++i) v = v.mul_u64(length(i));
  return v;
}

long double extremal_rect::volume_ld() const {
  if (is_empty()) return 0;
  long double v = 1;
  for (int i = 0; i < dims_; ++i) v *= static_cast<long double>(length(i));
  return v;
}

int extremal_rect::min_side_bits() const {
  int b = 64;
  for (int i = 0; i < dims_; ++i) b = std::min(b, bit_length(length(i)));
  return b;
}

int extremal_rect::max_side_bits() const {
  int b = 0;
  for (int i = 0; i < dims_; ++i) b = std::max(b, bit_length(length(i)));
  return b;
}

int extremal_rect::aspect_ratio() const { return max_side_bits() - min_side_bits(); }

std::string extremal_rect::to_string() const {
  std::string s = "R(";
  for (int i = 0; i < dims_; ++i) {
    if (i != 0) s += ", ";
    s += std::to_string(length(i));
  }
  return s + ")";
}

}  // namespace subcover
