// Extremal rectangles R(l) (paper Section 3.1): rectangles with one vertex
// pinned at the maximum corner (2^k-1, ..., 2^k-1) of the universe, fully
// specified by their side-length vector l = (l_1, ..., l_d), 1 <= l_i <= 2^k.
//
// A point dominance query for point x searches exactly the extremal rectangle
// with l_i = 2^k - x_i. The approximate query of the paper replaces R(l) by
// the contained extremal rectangle R(t(l,m)) whose sides keep only the m most
// significant bits (Lemma 3.2 guarantees >= 1 - 2d/2^m volume coverage).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "geometry/point.h"
#include "geometry/rect.h"
#include "geometry/universe.h"
#include "util/wideint.h"

namespace subcover {

class extremal_rect {
 public:
  extremal_rect() = default;
  // Throws std::invalid_argument unless 1 <= lengths[i] <= 2^k for all i.
  extremal_rect(const universe& u, const std::array<std::uint64_t, kMaxDims>& lengths);

  // The dominance query region of point x: l_i = 2^k - x_i.
  static extremal_rect query_region(const universe& u, const point& x);

  [[nodiscard]] int dims() const { return dims_; }
  [[nodiscard]] std::uint64_t length(int i) const { return len_[static_cast<std::size_t>(i)]; }

  // The concrete rectangle [2^k - l_i, 2^k - 1] per dimension.
  [[nodiscard]] rect to_rect(const universe& u) const;

  // R(t(l,m)): truncate every side length to its m most significant bits.
  // Requires m >= 1. The result is contained in *this.
  [[nodiscard]] extremal_rect truncated(const universe& u, int m) const;

  // R(S_i(l)): keep only side-length bits at positions >= i (paper Lemma 3.4).
  // Sides that become 0 make the rectangle empty; `is_empty` reports that.
  [[nodiscard]] extremal_rect masked_from_bit(const universe& u, int i) const;
  [[nodiscard]] bool is_empty() const;

  [[nodiscard]] u512 volume() const;
  [[nodiscard]] long double volume_ld() const;

  // Paper's aspect ratio: alpha = b(l_max) - b(l_min).
  [[nodiscard]] int aspect_ratio() const;
  // b(l_min) and b(l_max).
  [[nodiscard]] int min_side_bits() const;
  [[nodiscard]] int max_side_bits() const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const extremal_rect& a, const extremal_rect& b) {
    if (a.dims_ != b.dims_) return false;
    for (int i = 0; i < a.dims_; ++i)
      if (a.length(i) != b.length(i)) return false;
    return true;
  }

 private:
  std::array<std::uint64_t, kMaxDims> len_{};
  int dims_ = 0;
};

}  // namespace subcover
