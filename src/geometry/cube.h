// Standard cubes (paper Section 2): the cubes produced by recursively
// bisecting the universe along every dimension. A standard cube with side
// 2^s has every corner coordinate divisible by 2^s. Standard cubes at
// "level l" in the paper have side 2^(k-l); here we parameterize directly by
// side_bits = k - l because the decomposition lemmas (3.4-3.7) index cube
// classes D_i by side length 2^i.
//
// Key property (Lemma 2.1): two distinct standard cubes are either nested or
// disjoint. Fact 2.1: each standard cube is a single run on any
// recursive-partitioning SFC.
#pragma once

#include <cstdint>
#include <string>

#include "geometry/point.h"
#include "geometry/rect.h"
#include "geometry/universe.h"

namespace subcover {

class standard_cube {
 public:
  standard_cube() = default;
  // Cube with corner (minimum vertex) `corner` and side 2^side_bits.
  // Throws std::invalid_argument if the corner is not aligned to the side.
  standard_cube(const point& corner, int side_bits);

  // The cube at the given level containing cell p (level counted as
  // side_bits; side_bits == 0 is the cell itself).
  static standard_cube containing(const point& p, int side_bits);

  [[nodiscard]] int dims() const { return corner_.dims(); }
  [[nodiscard]] const point& corner() const { return corner_; }
  [[nodiscard]] int side_bits() const { return side_bits_; }
  [[nodiscard]] std::uint64_t side() const { return std::uint64_t{1} << side_bits_; }
  // Paper's level: number of recursive bisections from the universe.
  [[nodiscard]] int level(const universe& u) const { return u.bits() - side_bits_; }
  // Number of cells, 2^(d * side_bits).
  [[nodiscard]] u512 cell_count() const;

  [[nodiscard]] rect as_rect() const;
  [[nodiscard]] bool contains(const point& p) const;
  [[nodiscard]] bool contains(const standard_cube& other) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const standard_cube& a, const standard_cube& b) {
    return a.side_bits_ == b.side_bits_ && a.corner_ == b.corner_;
  }

 private:
  point corner_;
  int side_bits_ = 0;
};

}  // namespace subcover
