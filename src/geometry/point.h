// A cell of the universe: d coordinates, each in [0, 2^k - 1].
//
// Points are small fixed-capacity value types (no heap allocation) because
// they sit on the hot path of key generation and decomposition.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "geometry/universe.h"

namespace subcover {

class point {
 public:
  point() = default;
  // Zero point with the given number of dimensions.
  explicit point(int dims);
  point(std::initializer_list<std::uint32_t> coords);

  [[nodiscard]] int dims() const { return dims_; }
  [[nodiscard]] std::uint32_t operator[](int i) const { return x_[static_cast<std::size_t>(i)]; }
  std::uint32_t& operator[](int i) { return x_[static_cast<std::size_t>(i)]; }

  // Coordinate-wise >=; this is the dominance relation of Problem 1.
  // Throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] bool dominates(const point& other) const;

  // True if every coordinate is within the universe. Throws on dims mismatch.
  [[nodiscard]] bool inside(const universe& u) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const point& a, const point& b) {
    if (a.dims_ != b.dims_) return false;
    for (int i = 0; i < a.dims_; ++i)
      if (a[i] != b[i]) return false;
    return true;
  }

 private:
  std::array<std::uint32_t, kMaxDims> x_{};
  int dims_ = 0;
};

}  // namespace subcover
