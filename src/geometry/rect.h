// Axis-aligned d-dimensional rectangle with closed integer bounds
// [lo_i, hi_i] per dimension. A subscription is a rectangle in attribute
// space; a point dominance query region is an extremal rectangle (see
// geometry/extremal.h).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "geometry/point.h"
#include "geometry/universe.h"
#include "util/wideint.h"

namespace subcover {

class rect {
 public:
  rect() = default;
  // Rectangle with the given closed corner points. Throws
  // std::invalid_argument if dims mismatch or lo[i] > hi[i] for some i.
  rect(const point& lo, const point& hi);

  // The full universe rectangle [0, 2^k-1]^d.
  static rect whole(const universe& u);

  [[nodiscard]] int dims() const { return lo_.dims(); }
  [[nodiscard]] const point& lo() const { return lo_; }
  [[nodiscard]] const point& hi() const { return hi_; }
  // Side length along dimension i (number of cells, >= 1).
  [[nodiscard]] std::uint64_t side(int i) const {
    return static_cast<std::uint64_t>(hi_[i]) - lo_[i] + 1;
  }

  [[nodiscard]] bool contains(const point& p) const;
  [[nodiscard]] bool contains(const rect& other) const;
  [[nodiscard]] bool intersects(const rect& other) const;
  // Intersection, or nullopt if disjoint. Throws on dims mismatch.
  [[nodiscard]] std::optional<rect> intersection(const rect& other) const;

  // Exact cell count (product of side lengths).
  [[nodiscard]] u512 volume() const;
  // Floating-point cell count for ratio arithmetic.
  [[nodiscard]] long double volume_ld() const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const rect& a, const rect& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

 private:
  point lo_;
  point hi_;
};

}  // namespace subcover
