#include "geometry/rect.h"

#include <algorithm>
#include <stdexcept>

namespace subcover {

rect::rect(const point& lo, const point& hi) : lo_(lo), hi_(hi) {
  if (lo.dims() != hi.dims()) throw std::invalid_argument("rect: corner dims mismatch");
  for (int i = 0; i < lo.dims(); ++i)
    if (lo[i] > hi[i])
      throw std::invalid_argument("rect: lo > hi along dimension " + std::to_string(i));
}

rect rect::whole(const universe& u) {
  point lo(u.dims());
  point hi(u.dims());
  for (int i = 0; i < u.dims(); ++i) hi[i] = u.coord_max();
  return {lo, hi};
}

bool rect::contains(const point& p) const {
  if (p.dims() != dims()) throw std::invalid_argument("rect::contains: dims mismatch");
  for (int i = 0; i < dims(); ++i)
    if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
  return true;
}

bool rect::contains(const rect& other) const {
  if (other.dims() != dims()) throw std::invalid_argument("rect::contains: dims mismatch");
  for (int i = 0; i < dims(); ++i)
    if (other.lo_[i] < lo_[i] || other.hi_[i] > hi_[i]) return false;
  return true;
}

bool rect::intersects(const rect& other) const {
  if (other.dims() != dims()) throw std::invalid_argument("rect::intersects: dims mismatch");
  for (int i = 0; i < dims(); ++i)
    if (other.hi_[i] < lo_[i] || other.lo_[i] > hi_[i]) return false;
  return true;
}

std::optional<rect> rect::intersection(const rect& other) const {
  if (!intersects(other)) return std::nullopt;
  point lo(dims());
  point hi(dims());
  for (int i = 0; i < dims(); ++i) {
    lo[i] = std::max(lo_[i], other.lo_[i]);
    hi[i] = std::min(hi_[i], other.hi_[i]);
  }
  return rect(lo, hi);
}

u512 rect::volume() const {
  u512 v = 1;
  for (int i = 0; i < dims(); ++i) v = v.mul_u64(side(i));
  return v;
}

long double rect::volume_ld() const {
  long double v = 1;
  for (int i = 0; i < dims(); ++i) v *= static_cast<long double>(side(i));
  return v;
}

std::string rect::to_string() const {
  std::string s;
  for (int i = 0; i < dims(); ++i) {
    if (i != 0) s += " x ";
    s += "[" + std::to_string(lo_[i]) + "," + std::to_string(hi_[i]) + "]";
  }
  return s;
}

}  // namespace subcover
