// The discrete universe of the paper (Section 2): a d-dimensional grid
// 2^k x 2^k x ... x 2^k of unit cells. For subscription covering, d is twice
// the number of message attributes (Edelsbrunner-Overmars transform) and k is
// the per-attribute value width in bits.
//
// Constraints enforced here and relied upon everywhere else:
//   1 <= dims <= 32, 1 <= bits <= 30, dims * bits <= 512 (keys fit in u512).
#pragma once

#include <cstdint>

#include "util/wideint.h"

namespace subcover {

// Upper bound on dimensions; fixed-size coordinate arrays use this capacity.
inline constexpr int kMaxDims = 32;
// Upper bound on bits per coordinate (side lengths up to 2^30 fit in 32 bits).
inline constexpr int kMaxBitsPerDim = 30;

class universe {
 public:
  // Throws std::invalid_argument if the constraints above are violated.
  universe(int dims, int bits);

  [[nodiscard]] int dims() const { return dims_; }
  [[nodiscard]] int bits() const { return bits_; }
  // Side length 2^k of the universe along every dimension.
  [[nodiscard]] std::uint64_t side() const { return std::uint64_t{1} << bits_; }
  // Largest coordinate value, 2^k - 1.
  [[nodiscard]] std::uint32_t coord_max() const {
    return static_cast<std::uint32_t>(side() - 1);
  }
  // Total key width d*k in bits.
  [[nodiscard]] int key_bits() const { return dims_ * bits_; }
  // Number of cells, 2^(d*k).
  [[nodiscard]] u512 cell_count() const { return u512::pow2(key_bits()); }

  friend bool operator==(const universe&, const universe&) = default;

 private:
  int dims_;
  int bits_;
};

}  // namespace subcover
