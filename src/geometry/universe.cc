#include "geometry/universe.h"

#include <stdexcept>
#include <string>

namespace subcover {

universe::universe(int dims, int bits) : dims_(dims), bits_(bits) {
  if (dims < 1 || dims > kMaxDims)
    throw std::invalid_argument("universe: dims must be in [1," + std::to_string(kMaxDims) +
                                "], got " + std::to_string(dims));
  if (bits < 1 || bits > kMaxBitsPerDim)
    throw std::invalid_argument("universe: bits must be in [1," +
                                std::to_string(kMaxBitsPerDim) + "], got " +
                                std::to_string(bits));
  if (dims * bits > u512::kBits)
    throw std::invalid_argument("universe: dims*bits exceeds key width (" +
                                std::to_string(dims * bits) + " > 512)");
}

}  // namespace subcover
