#include "sfc/hilbert_curve.h"

#include <array>

#include "sfc/interleave.h"

namespace subcover {

namespace {

// Skilling's AxesToTranspose: converts `n` coordinates of `b` bits each into
// the transposed Hilbert index, in place. After the call, interleaving the
// bits of x[0..n-1] (msb level first, x[0] most significant within a level)
// yields the Hilbert key.
void axes_to_transpose(std::uint32_t* x, int b, int n) {
  if (b == 0) return;
  const std::uint32_t m = std::uint32_t{1} << (b - 1);
  // Inverse undo of the excess work below (walk levels msb -> lsb).
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < n; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert low bits of dimension 0
      } else {
        const std::uint32_t t = (x[0] ^ x[i]) & p;  // exchange low bits
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode across dimensions.
  for (int i = 1; i < n; ++i) x[i] ^= x[i - 1];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1)
    if (x[n - 1] & q) t ^= q - 1;
  for (int i = 0; i < n; ++i) x[i] ^= t;
}

// Skilling's TransposeToAxes: exact inverse of axes_to_transpose.
void transpose_to_axes(std::uint32_t* x, int b, int n) {
  if (b == 0) return;
  const std::uint32_t top = std::uint32_t{2} << (b - 1);
  // Gray decode by halving.
  std::uint32_t t = x[n - 1] >> 1;
  for (int i = n - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work (walk levels lsb -> msb).
  for (std::uint32_t q = 2; q != top; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (int i = n - 1; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        const std::uint32_t swap = (x[0] ^ x[i]) & p;
        x[0] ^= swap;
        x[i] ^= swap;
      }
    }
  }
}

}  // namespace

u512 hilbert_curve::cube_prefix(const standard_cube& c) const {
  check_cube(c);
  const int d = space().dims();
  const int prefix_bits = space().bits() - c.side_bits();
  std::array<std::uint32_t, kMaxDims> top{};
  for (int i = 0; i < d; ++i)
    top[static_cast<std::size_t>(i)] = c.corner()[i] >> c.side_bits();
  axes_to_transpose(top.data(), prefix_bits, d);
  return detail::interleave_bits(top.data(), d, prefix_bits);
}

point hilbert_curve::cell_from_key(const u512& key) const {
  check_key(key);
  const int d = space().dims();
  std::array<std::uint32_t, kMaxDims> coords{};
  detail::deinterleave_bits(key, coords.data(), d, space().bits());
  transpose_to_axes(coords.data(), space().bits(), d);
  point p(d);
  for (int i = 0; i < d; ++i) p[i] = coords[static_cast<std::size_t>(i)];
  return p;
}

}  // namespace subcover
