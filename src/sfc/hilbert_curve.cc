#include "sfc/hilbert_curve.h"

#include <array>
#include <utility>

#include "sfc/interleave.h"

namespace subcover {

namespace {

// Skilling's AxesToTranspose: converts `n` coordinates of `b` bits each into
// the transposed Hilbert index, in place. After the call, interleaving the
// bits of x[0..n-1] (msb level first, x[0] most significant within a level)
// yields the Hilbert key.
void axes_to_transpose(std::uint32_t* x, int b, int n) {
  if (b == 0) return;
  const std::uint32_t m = std::uint32_t{1} << (b - 1);
  // Inverse undo of the excess work below (walk levels msb -> lsb).
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < n; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert low bits of dimension 0
      } else {
        const std::uint32_t t = (x[0] ^ x[i]) & p;  // exchange low bits
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode across dimensions.
  for (int i = 1; i < n; ++i) x[i] ^= x[i - 1];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1)
    if (x[n - 1] & q) t ^= q - 1;
  for (int i = 0; i < n; ++i) x[i] ^= t;
}

// Skilling's TransposeToAxes: exact inverse of axes_to_transpose.
void transpose_to_axes(std::uint32_t* x, int b, int n) {
  if (b == 0) return;
  const std::uint32_t top = std::uint32_t{2} << (b - 1);
  // Gray decode by halving.
  std::uint32_t t = x[n - 1] >> 1;
  for (int i = n - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work (walk levels lsb -> msb).
  for (std::uint32_t q = 2; q != top; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (int i = n - 1; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        const std::uint32_t swap = (x[0] ^ x[i]) & p;
        x[0] ^= swap;
        x[i] ^= swap;
      }
    }
  }
}

}  // namespace

template <class K>
K basic_hilbert_curve<K>::cube_prefix(const standard_cube& c) const {
  this->check_cube(c);
  const int d = this->space().dims();
  const int prefix_bits = this->space().bits() - c.side_bits();
  std::array<std::uint32_t, kMaxDims> top{};
  for (int i = 0; i < d; ++i)
    top[static_cast<std::size_t>(i)] = c.corner()[i] >> c.side_bits();
  axes_to_transpose(top.data(), prefix_bits, d);
  return detail::interleave_bits<K>(top.data(), d, prefix_bits);
}

template <class K>
point basic_hilbert_curve<K>::cell_from_key(const K& key) const {
  this->check_key(key);
  const int d = this->space().dims();
  std::array<std::uint32_t, kMaxDims> coords{};
  detail::deinterleave_bits(key, coords.data(), d, this->space().bits());
  transpose_to_axes(coords.data(), this->space().bits(), d);
  point p(d);
  for (int i = 0; i < d; ++i) p[i] = coords[static_cast<std::size_t>(i)];
  return p;
}

namespace {

// Skilling's cross-axis "Gray encode" (x[i] ^= x[i-1] for increasing i,
// where x[i-1] was already updated) is a running prefix XOR: output bit i
// is the XOR of the transposed bits 0..i. Doubling computes it in O(log d).
inline std::uint32_t prefix_xor(std::uint32_t b) {
  b ^= b << 1;
  b ^= b << 2;
  b ^= b << 4;
  b ^= b << 8;
  b ^= b << 16;
  return b;
}

}  // namespace

// At one level of axes_to_transpose, axis i's bit is read from the
// geometric selection mask through the accumulated signed permutation:
// x[i] = M[perm[i]] ^ flip[i]. The ops the level then appends to the
// transform (for the *next* levels) depend only on these transposed bits.
template <class K>
std::uint32_t basic_hilbert_curve<K>::transposed_digits(const curve_state& state,
                                                        std::uint32_t child_mask) const {
  const int d = this->space().dims();
  std::uint32_t b = 0;
  for (int i = 0; i < d; ++i) {
    const std::uint32_t bit =
        ((child_mask >> state.perm[static_cast<std::size_t>(i)]) ^ (state.flip >> i)) & 1U;
    b |= bit << i;
  }
  return b;
}

template <class K>
std::uint64_t basic_hilbert_curve<K>::child_rank(const K& parent_prefix,
                                                 const curve_state& state,
                                                 std::uint32_t child_mask) const {
  (void)parent_prefix;
  const int d = this->space().dims();
  const std::uint32_t m = (d < 32 ? (std::uint32_t{1} << d) : 0) - 1;
  const std::uint32_t b = transposed_digits(state, child_mask);
  // Cross-axis Gray encode of this level's digits (running prefix XOR).
  std::uint32_t z = prefix_xor(b) & m;
  // Trailing parity correction: levels above this one flip the whole digit
  // when their gray-encoded last axis bit was set.
  if (state.parity) z = ~z & m;
  // Interleave convention: axis 0 is the most significant bit of the rank.
  std::uint64_t rank = 0;
  for (int i = 0; i < d; ++i) rank |= static_cast<std::uint64_t>((z >> i) & 1U) << (d - 1 - i);
  return rank;
}

template <class K>
void basic_hilbert_curve<K>::descend_state(const curve_state& parent, std::uint32_t child_mask,
                                           curve_state& child) const {
  const int d = this->space().dims();
  const std::uint32_t m = (d < 32 ? (std::uint32_t{1} << d) : 0) - 1;
  const std::uint32_t b = transposed_digits(parent, child_mask);
  child = parent;
  // The gray-encoded last axis of this level feeds the trailing parity of
  // every deeper level (Skilling's t accumulator, one bit per level); it is
  // the XOR of all transposed digits of the level.
  const std::uint32_t z = prefix_xor(b) & m;
  child.parity = parent.parity ^ (((z >> (d - 1)) & 1U) != 0);
  // Compose this level's ops onto the signed permutation, in axis order:
  // digit set -> invert axis 0 below; digit clear -> swap axis 0 and axis i
  // below (i == 0 is the identity, matching the algorithm).
  for (int i = 0; i < d; ++i) {
    if ((b >> i) & 1U) {
      child.flip ^= 1U;
    } else if (i != 0) {
      std::swap(child.perm[0], child.perm[static_cast<std::size_t>(i)]);
      const std::uint32_t f0 = child.flip & 1U;
      const std::uint32_t fi = (child.flip >> i) & 1U;
      if (f0 != fi) child.flip ^= 1U | (std::uint32_t{1} << i);
    }
  }
}

template class basic_hilbert_curve<std::uint64_t>;
template class basic_hilbert_curve<u128>;
template class basic_hilbert_curve<u512>;

}  // namespace subcover
