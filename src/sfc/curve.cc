#include "sfc/curve.h"

#include <stdexcept>

#include "sfc/gray_curve.h"
#include "sfc/hilbert_curve.h"
#include "sfc/z_curve.h"

namespace subcover {

std::string_view curve_kind_name(curve_kind kind) {
  switch (kind) {
    case curve_kind::z_order:
      return "z-order";
    case curve_kind::hilbert:
      return "hilbert";
    case curve_kind::gray_code:
      return "gray-code";
  }
  return "unknown";
}

u512 curve::cell_key(const point& p) const {
  return cube_prefix(standard_cube(p, 0));
}

std::uint64_t curve::child_rank(const standard_cube& parent, const u512& parent_prefix,
                                std::uint32_t child_mask) const {
  (void)parent_prefix;
  const int child_bits = parent.side_bits() - 1;
  const auto half = static_cast<std::uint32_t>(std::uint64_t{1} << child_bits);
  point corner = parent.corner();
  for (int j = 0; j < corner.dims(); ++j)
    if ((child_mask >> j) & 1U) corner[j] += half;
  const int d = space().dims();
  const std::uint64_t rank_mask = (d < 64 ? (std::uint64_t{1} << d) : 0) - 1;
  return cube_prefix(standard_cube(corner, child_bits)).low64() & rank_mask;
}

key_range curve::cube_range(const standard_cube& c) const {
  const int shift = space().dims() * c.side_bits();
  const u512 lo = cube_prefix(c) << shift;
  return {lo, lo | u512::mask(shift)};
}

void curve::check_cube(const standard_cube& c) const {
  if (c.dims() != space().dims())
    throw std::invalid_argument("curve: cube dimension mismatch");
  if (c.side_bits() > space().bits())
    throw std::invalid_argument("curve: cube larger than the universe");
  for (int i = 0; i < c.dims(); ++i)
    if (c.corner()[i] > space().coord_max())
      throw std::invalid_argument("curve: cube outside the universe");
}

void curve::check_key(const u512& key) const {
  if (key.bit_width() > space().key_bits())
    throw std::invalid_argument("curve: key out of range");
}

std::unique_ptr<curve> make_curve(curve_kind kind, const universe& u) {
  switch (kind) {
    case curve_kind::z_order:
      return std::make_unique<z_curve>(u);
    case curve_kind::hilbert:
      return std::make_unique<hilbert_curve>(u);
    case curve_kind::gray_code:
      return std::make_unique<gray_curve>(u);
  }
  throw std::invalid_argument("make_curve: unknown curve kind");
}

}  // namespace subcover
