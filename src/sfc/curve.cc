#include "sfc/curve.h"

#include <numeric>
#include <stdexcept>

#include "sfc/gray_curve.h"
#include "sfc/hilbert_curve.h"
#include "sfc/z_curve.h"

namespace subcover {

std::string_view curve_kind_name(curve_kind kind) {
  switch (kind) {
    case curve_kind::z_order:
      return "z-order";
    case curve_kind::hilbert:
      return "hilbert";
    case curve_kind::gray_code:
      return "gray-code";
  }
  return "unknown";
}

template <class K>
basic_curve<K>::basic_curve(const universe& u) : universe_(u) {
  if (u.key_bits() > traits::kBits)
    throw std::invalid_argument("basic_curve: universe keys wider than the key type");
}

template <class K>
void basic_curve<K>::init_state(curve_state& s) const {
  std::iota(s.perm.begin(), s.perm.begin() + space().dims(), std::uint8_t{0});
  s.flip = 0;
  s.parity = false;
}

template <class K>
K basic_curve<K>::cell_key(const point& p) const {
  return cube_prefix(standard_cube(p, 0));
}

template <class K>
void basic_curve<K>::descend_state(const curve_state& parent, std::uint32_t child_mask,
                                   curve_state& child) const {
  (void)child_mask;
  child = parent;
}

template <class K>
typename basic_curve<K>::range_type basic_curve<K>::cube_range(const standard_cube& c) const {
  const int shift = space().dims() * c.side_bits();
  // shift == kBits only for the whole-universe cube (prefix 0, range all
  // keys); the explicit branch keeps the builtin-key shift in range.
  if (shift >= traits::kBits) {
    check_cube(c);
    return {traits::zero(), traits::mask(space().key_bits())};
  }
  const K lo = cube_prefix(c) << shift;
  return {lo, lo | traits::mask(shift)};
}

template <class K>
void basic_curve<K>::check_cube(const standard_cube& c) const {
  if (c.dims() != space().dims())
    throw std::invalid_argument("curve: cube dimension mismatch");
  if (c.side_bits() > space().bits())
    throw std::invalid_argument("curve: cube larger than the universe");
  for (int i = 0; i < c.dims(); ++i)
    if (c.corner()[i] > space().coord_max())
      throw std::invalid_argument("curve: cube outside the universe");
}

template <class K>
void basic_curve<K>::check_key(const K& key) const {
  if (traits::bit_width(key) > space().key_bits())
    throw std::invalid_argument("curve: key out of range");
}

template class basic_curve<std::uint64_t>;
template class basic_curve<u128>;
template class basic_curve<u512>;

template <class K>
std::unique_ptr<basic_curve<K>> make_basic_curve(curve_kind kind, const universe& u) {
  switch (kind) {
    case curve_kind::z_order:
      return std::make_unique<basic_z_curve<K>>(u);
    case curve_kind::hilbert:
      return std::make_unique<basic_hilbert_curve<K>>(u);
    case curve_kind::gray_code:
      return std::make_unique<basic_gray_curve<K>>(u);
  }
  throw std::invalid_argument("make_curve: unknown curve kind");
}

template std::unique_ptr<basic_curve<std::uint64_t>> make_basic_curve(curve_kind,
                                                                      const universe&);
template std::unique_ptr<basic_curve<u128>> make_basic_curve(curve_kind, const universe&);
template std::unique_ptr<basic_curve<u512>> make_basic_curve(curve_kind, const universe&);

std::unique_ptr<curve> make_curve(curve_kind kind, const universe& u) {
  return make_basic_curve<u512>(kind, u);
}

}  // namespace subcover
