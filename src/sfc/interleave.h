// Bit interleaving between d k-bit coordinates and a d*k-bit key.
//
// Convention (matches the paper's Section 5 example: cell (3,5) = (011,101)
// has Z key (011011)_2 = 27): bit levels are emitted most-significant first,
// and within each level dimension 0 contributes the more significant bit.
//
// Templated on the key type: with a builtin key (u64 / u128) the kernels are
// plain shift-or loops over machine words; u512 keeps the word-addressed
// set_bit path.
#pragma once

#include <cstdint>

#include "util/key_traits.h"
#include "util/wideint.h"

namespace subcover::detail {

// Interleaves the low `bits` bits of each of `dims` coordinates into a
// (dims*bits)-bit key.
template <class K>
inline K interleave_bits(const std::uint32_t* coords, int dims, int bits) {
  K key = key_traits<K>::zero();
  int pos = dims * bits;  // next bit position to fill is pos-1
  for (int level = bits - 1; level >= 0; --level) {
    for (int dim = 0; dim < dims; ++dim) {
      --pos;
      if ((coords[dim] >> level) & 1U) key_traits<K>::set_bit(key, pos);
    }
  }
  return key;
}

// Inverse of interleave_bits.
template <class K>
inline void deinterleave_bits(const K& key, std::uint32_t* coords, int dims, int bits) {
  for (int dim = 0; dim < dims; ++dim) coords[dim] = 0;
  int pos = dims * bits;
  for (int level = bits - 1; level >= 0; --level) {
    for (int dim = 0; dim < dims; ++dim) {
      --pos;
      if (key_traits<K>::test_bit(key, pos)) coords[dim] |= std::uint32_t{1} << level;
    }
  }
}

}  // namespace subcover::detail
