// Bit interleaving between d k-bit coordinates and a d*k-bit key.
//
// Convention (matches the paper's Section 5 example: cell (3,5) = (011,101)
// has Z key (011011)_2 = 27): bit levels are emitted most-significant first,
// and within each level dimension 0 contributes the more significant bit.
//
// Templated on the key type. With a builtin key the kernels are plain
// shift-or loops over machine words; u512 keeps the word-addressed set_bit
// path. For std::uint64_t keys on x86-64 the loops are replaced by one
// pdep/pext per dimension (BMI2): dimension x owns the stride-d bit mask
// offset by d-1-x, so depositing the coordinate's low `bits` bits into that
// mask is exactly the interleave and extracting is the deinterleave. The
// intrinsic path is selected by a cached runtime CPUID check with the
// portable loop as fallback; interleave_bits_loop/deinterleave_bits_loop
// are the reference kernels the equivalence tests pin both paths against
// (tests/sfc/interleave_test.cc).
#pragma once

#include <cstdint>
#include <type_traits>

#include "util/key_traits.h"
#include "util/wideint.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SUBCOVER_BMI2_DISPATCH 1
#include <immintrin.h>
#else
#define SUBCOVER_BMI2_DISPATCH 0
#endif

namespace subcover::detail {

// Portable reference kernel: interleaves the low `bits` bits of each of
// `dims` coordinates into a (dims*bits)-bit key, one bit at a time.
template <class K>
inline K interleave_bits_loop(const std::uint32_t* coords, int dims, int bits) {
  K key = key_traits<K>::zero();
  int pos = dims * bits;  // next bit position to fill is pos-1
  for (int level = bits - 1; level >= 0; --level) {
    for (int dim = 0; dim < dims; ++dim) {
      --pos;
      if ((coords[dim] >> level) & 1U) key_traits<K>::set_bit(key, pos);
    }
  }
  return key;
}

// Inverse of interleave_bits_loop.
template <class K>
inline void deinterleave_bits_loop(const K& key, std::uint32_t* coords, int dims, int bits) {
  for (int dim = 0; dim < dims; ++dim) coords[dim] = 0;
  int pos = dims * bits;
  for (int level = bits - 1; level >= 0; --level) {
    for (int dim = 0; dim < dims; ++dim) {
      --pos;
      if (key_traits<K>::test_bit(key, pos)) coords[dim] |= std::uint32_t{1} << level;
    }
  }
}

#if SUBCOVER_BMI2_DISPATCH

// Cached CPUID probe; the dispatch branch is perfectly predicted after the
// first call.
inline bool cpu_has_bmi2() {
  static const bool ok = __builtin_cpu_supports("bmi2") != 0;
  return ok;
}

// Mask of dimension 0's key bits: positions {0, d, 2d, ..., (bits-1)*d},
// built by doubling in O(log bits). Dimension x's mask is this shifted left
// by d-1-x (dimension 0 owns the most significant bit of each level).
inline std::uint64_t stride_mask(int dims, int bits) {
  std::uint64_t m = 1;
  int levels = 1;
  while (levels < bits) {
    m |= m << (dims * levels);
    levels *= 2;
  }
  const int key_bits = dims * bits;
  return key_bits < 64 ? m & ((std::uint64_t{1} << key_bits) - 1) : m;
}

__attribute__((target("bmi2"))) inline std::uint64_t interleave_bits_bmi2(
    const std::uint32_t* coords, int dims, int bits) {
  if (bits == 0) return 0;
  const std::uint64_t mask0 = stride_mask(dims, bits);
  std::uint64_t key = 0;
  for (int dim = 0; dim < dims; ++dim)
    key |= _pdep_u64(coords[dim], mask0 << (dims - 1 - dim));
  return key;
}

__attribute__((target("bmi2"))) inline void deinterleave_bits_bmi2(std::uint64_t key,
                                                                   std::uint32_t* coords,
                                                                   int dims, int bits) {
  if (bits == 0) {
    for (int dim = 0; dim < dims; ++dim) coords[dim] = 0;
    return;
  }
  const std::uint64_t mask0 = stride_mask(dims, bits);
  for (int dim = 0; dim < dims; ++dim)
    coords[dim] = static_cast<std::uint32_t>(_pext_u64(key, mask0 << (dims - 1 - dim)));
}

#endif  // SUBCOVER_BMI2_DISPATCH

// Interleaves the low `bits` bits of each of `dims` coordinates into a
// (dims*bits)-bit key. The loop body is written out here (not delegated to
// interleave_bits_loop) so the wide-key instantiations compile to exactly
// the pre-dispatch code: an extra call layer measurably hurts inlining of
// the u512 path into cube_prefix.
template <class K>
inline K interleave_bits(const std::uint32_t* coords, int dims, int bits) {
#if SUBCOVER_BMI2_DISPATCH
  if constexpr (std::is_same_v<K, std::uint64_t>) {
    if (cpu_has_bmi2()) return interleave_bits_bmi2(coords, dims, bits);
  }
#endif
  K key = key_traits<K>::zero();
  int pos = dims * bits;  // next bit position to fill is pos-1
  for (int level = bits - 1; level >= 0; --level) {
    for (int dim = 0; dim < dims; ++dim) {
      --pos;
      if ((coords[dim] >> level) & 1U) key_traits<K>::set_bit(key, pos);
    }
  }
  return key;
}

// Inverse of interleave_bits.
template <class K>
inline void deinterleave_bits(const K& key, std::uint32_t* coords, int dims, int bits) {
#if SUBCOVER_BMI2_DISPATCH
  if constexpr (std::is_same_v<K, std::uint64_t>) {
    if (cpu_has_bmi2()) {
      deinterleave_bits_bmi2(key, coords, dims, bits);
      return;
    }
  }
#endif
  for (int dim = 0; dim < dims; ++dim) coords[dim] = 0;
  int pos = dims * bits;
  for (int level = bits - 1; level >= 0; --level) {
    for (int dim = 0; dim < dims; ++dim) {
      --pos;
      if (key_traits<K>::test_bit(key, pos)) coords[dim] |= std::uint32_t{1} << level;
    }
  }
}

}  // namespace subcover::detail
