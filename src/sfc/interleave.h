// Bit interleaving between d k-bit coordinates and a d*k-bit key.
//
// Convention (matches the paper's Section 5 example: cell (3,5) = (011,101)
// has Z key (011011)_2 = 27): bit levels are emitted most-significant first,
// and within each level dimension 0 contributes the more significant bit.
//
// Templated on the key type. With a builtin key the kernels are plain
// shift-or loops over machine words; u512 keeps the word-addressed set_bit
// path. For std::uint64_t keys on x86-64 the loops are replaced by one
// pdep/pext per dimension (BMI2): dimension x owns the stride-d bit mask
// offset by d-1-x, so depositing the coordinate's low `bits` bits into that
// mask is exactly the interleave and extracting is the deinterleave. Wide
// keys (u128, u512) use the word-sliced ladder of the same idea: each
// 64-bit word of the key holds a contiguous level range of every
// dimension's stride pattern, so word w of the key is d deposits —
// pdep(coord >> first_level(w), in-word stride mask) — one _pdep_u64 per
// word per dimension instead of one set_bit per key bit. The intrinsic
// paths are selected by a cached runtime CPUID check with the portable
// loop as fallback; interleave_bits_loop/deinterleave_bits_loop are the
// reference kernels the equivalence tests pin every path against
// (tests/sfc/interleave_test.cc).
#pragma once

#include <cstdint>
#include <type_traits>

#include "util/cpu_features.h"
#include "util/key_traits.h"
#include "util/wideint.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SUBCOVER_BMI2_DISPATCH 1
#include <immintrin.h>
#else
#define SUBCOVER_BMI2_DISPATCH 0
#endif

namespace subcover::detail {

// Portable reference kernel: interleaves the low `bits` bits of each of
// `dims` coordinates into a (dims*bits)-bit key, one bit at a time.
template <class K>
inline K interleave_bits_loop(const std::uint32_t* coords, int dims, int bits) {
  K key = key_traits<K>::zero();
  int pos = dims * bits;  // next bit position to fill is pos-1
  for (int level = bits - 1; level >= 0; --level) {
    for (int dim = 0; dim < dims; ++dim) {
      --pos;
      if ((coords[dim] >> level) & 1U) key_traits<K>::set_bit(key, pos);
    }
  }
  return key;
}

// Inverse of interleave_bits_loop.
template <class K>
inline void deinterleave_bits_loop(const K& key, std::uint32_t* coords, int dims, int bits) {
  for (int dim = 0; dim < dims; ++dim) coords[dim] = 0;
  int pos = dims * bits;
  for (int level = bits - 1; level >= 0; --level) {
    for (int dim = 0; dim < dims; ++dim) {
      --pos;
      if (key_traits<K>::test_bit(key, pos)) coords[dim] |= std::uint32_t{1} << level;
    }
  }
}

#if SUBCOVER_BMI2_DISPATCH

// The shared cached probe (util/cpu_features.h): one CPUID query per
// process, one SUBCOVER_FORCE_SCALAR escape hatch covering this dispatch
// and the SIMD kernel ladder alike. The branch is perfectly predicted after
// the first call.
inline bool cpu_has_bmi2() { return cpu_features().bmi2; }

// Mask of dimension 0's key bits: positions {0, d, 2d, ..., (bits-1)*d},
// built by doubling in O(log bits). Dimension x's mask is this shifted left
// by d-1-x (dimension 0 owns the most significant bit of each level).
inline std::uint64_t stride_mask(int dims, int bits) {
  std::uint64_t m = 1;
  int levels = 1;
  while (levels < bits) {
    m |= m << (dims * levels);
    levels *= 2;
  }
  const int key_bits = dims * bits;
  return key_bits < 64 ? m & ((std::uint64_t{1} << key_bits) - 1) : m;
}

__attribute__((target("bmi2"))) inline std::uint64_t interleave_bits_bmi2(
    const std::uint32_t* coords, int dims, int bits) {
  if (bits == 0) return 0;
  const std::uint64_t mask0 = stride_mask(dims, bits);
  std::uint64_t key = 0;
  for (int dim = 0; dim < dims; ++dim)
    key |= _pdep_u64(coords[dim], mask0 << (dims - 1 - dim));
  return key;
}

__attribute__((target("bmi2"))) inline void deinterleave_bits_bmi2(std::uint64_t key,
                                                                   std::uint32_t* coords,
                                                                   int dims, int bits) {
  if (bits == 0) {
    for (int dim = 0; dim < dims; ++dim) coords[dim] = 0;
    return;
  }
  const std::uint64_t mask0 = stride_mask(dims, bits);
  for (int dim = 0; dim < dims; ++dim)
    coords[dim] = static_cast<std::uint32_t>(_pext_u64(key, mask0 << (dims - 1 - dim)));
}

// --- word-sliced ladder for wide keys (u128 / u512) -------------------------
//
// A wide key is 64-bit words; within word w, dimension `dim`'s bits are the
// positions p with 64w + p ≡ dims-1-dim (mod dims) — a stride-d mask shifted
// to the word's phase — and the coordinate bits that land there are the
// contiguous level range starting at l0 = ceil((64w - (dims-1-dim)) / dims).
// So each (word, dimension) pair is ONE deposit: pdep(coord >> l0, mask).
// That is the whole ladder: ceil(d*k/64) words x d dimensions deposits,
// instead of the d*k single-bit set_bit calls of the portable loop.

// Mask of bits {phase, phase + dims, phase + 2*dims, ...} below `limit`
// (the in-word slice of one dimension's stride pattern). Built by doubling,
// like stride_mask.
inline std::uint64_t stride_mask_window(int dims, int phase, int limit) {
  if (phase >= limit) return 0;
  std::uint64_t m = 1;
  int levels = 1;
  while (levels * dims < 64) {
    m |= m << (dims * levels);
    levels *= 2;
  }
  m <<= phase;
  return limit < 64 ? m & ((std::uint64_t{1} << limit) - 1) : m;
}

// Word `w` (64-bit little-endian slice) of the interleaved key.
__attribute__((target("bmi2"))) inline std::uint64_t interleave_word_bmi2(
    const std::uint32_t* coords, int dims, int bits, int w) {
  const int base = w * 64;
  const int limit = dims * bits - base < 64 ? dims * bits - base : 64;
  std::uint64_t word = 0;
  for (int dim = 0; dim < dims; ++dim) {
    const int r = dims - 1 - dim;  // this dimension's phase mod dims
    const int l0 = base > r ? (base - r + dims - 1) / dims : 0;
    const int phase = l0 * dims + r - base;
    if (phase >= limit) continue;
    const std::uint64_t mask = stride_mask_window(dims, phase, limit);
    word |= _pdep_u64(static_cast<std::uint64_t>(coords[dim]) >> l0, mask);
  }
  return word;
}

// Scatters word `w` of a key back into the coordinates (additive: callers
// zero the coordinates first and OR every word's contribution in).
__attribute__((target("bmi2"))) inline void deinterleave_word_bmi2(std::uint64_t word,
                                                                   std::uint32_t* coords,
                                                                   int dims, int bits, int w) {
  const int base = w * 64;
  const int limit = dims * bits - base < 64 ? dims * bits - base : 64;
  for (int dim = 0; dim < dims; ++dim) {
    const int r = dims - 1 - dim;
    const int l0 = base > r ? (base - r + dims - 1) / dims : 0;
    const int phase = l0 * dims + r - base;
    if (phase >= limit) continue;
    const std::uint64_t mask = stride_mask_window(dims, phase, limit);
    coords[dim] |= static_cast<std::uint32_t>(_pext_u64(word, mask) << l0);
  }
}

__attribute__((target("bmi2"))) inline u128 interleave_bits_bmi2_u128(
    const std::uint32_t* coords, int dims, int bits) {
  if (bits == 0) return 0;
  u128 key = interleave_word_bmi2(coords, dims, bits, 0);
  if (dims * bits > 64)
    key |= u128(interleave_word_bmi2(coords, dims, bits, 1)) << 64;
  return key;
}

__attribute__((target("bmi2"))) inline void deinterleave_bits_bmi2_u128(
    const u128& key, std::uint32_t* coords, int dims, int bits) {
  for (int dim = 0; dim < dims; ++dim) coords[dim] = 0;
  if (bits == 0) return;
  deinterleave_word_bmi2(static_cast<std::uint64_t>(key), coords, dims, bits, 0);
  if (dims * bits > 64)
    deinterleave_word_bmi2(static_cast<std::uint64_t>(key >> 64), coords, dims, bits, 1);
}

__attribute__((target("bmi2"))) inline u512 interleave_bits_bmi2_u512(
    const std::uint32_t* coords, int dims, int bits) {
  u512 key;
  if (bits == 0) return key;
  const int words = (dims * bits + 63) / 64;
  for (int w = words - 1; w > 0; --w) {
    key |= interleave_word_bmi2(coords, dims, bits, w);
    key <<= 64;
  }
  key |= interleave_word_bmi2(coords, dims, bits, 0);
  return key;
}

__attribute__((target("bmi2"))) inline void deinterleave_bits_bmi2_u512(
    const u512& key, std::uint32_t* coords, int dims, int bits) {
  for (int dim = 0; dim < dims; ++dim) coords[dim] = 0;
  if (bits == 0) return;
  const int words = (dims * bits + 63) / 64;
  for (int w = 0; w < words; ++w)
    deinterleave_word_bmi2(key.word(w), coords, dims, bits, w);
}

#endif  // SUBCOVER_BMI2_DISPATCH

// Interleaves the low `bits` bits of each of `dims` coordinates into a
// (dims*bits)-bit key. The loop body is written out here (not delegated to
// interleave_bits_loop) so the wide-key instantiations compile to exactly
// the pre-dispatch code: an extra call layer measurably hurts inlining of
// the u512 path into cube_prefix.
template <class K>
inline K interleave_bits(const std::uint32_t* coords, int dims, int bits) {
#if SUBCOVER_BMI2_DISPATCH
  if constexpr (std::is_same_v<K, std::uint64_t>) {
    if (cpu_has_bmi2()) return interleave_bits_bmi2(coords, dims, bits);
  }
  if constexpr (std::is_same_v<K, u128>) {
    if (cpu_has_bmi2()) return interleave_bits_bmi2_u128(coords, dims, bits);
  }
  if constexpr (std::is_same_v<K, u512>) {
    if (cpu_has_bmi2()) return interleave_bits_bmi2_u512(coords, dims, bits);
  }
#endif
  K key = key_traits<K>::zero();
  int pos = dims * bits;  // next bit position to fill is pos-1
  for (int level = bits - 1; level >= 0; --level) {
    for (int dim = 0; dim < dims; ++dim) {
      --pos;
      if ((coords[dim] >> level) & 1U) key_traits<K>::set_bit(key, pos);
    }
  }
  return key;
}

// Inverse of interleave_bits.
template <class K>
inline void deinterleave_bits(const K& key, std::uint32_t* coords, int dims, int bits) {
#if SUBCOVER_BMI2_DISPATCH
  if constexpr (std::is_same_v<K, std::uint64_t>) {
    if (cpu_has_bmi2()) {
      deinterleave_bits_bmi2(key, coords, dims, bits);
      return;
    }
  }
  if constexpr (std::is_same_v<K, u128>) {
    if (cpu_has_bmi2()) {
      deinterleave_bits_bmi2_u128(key, coords, dims, bits);
      return;
    }
  }
  if constexpr (std::is_same_v<K, u512>) {
    if (cpu_has_bmi2()) {
      deinterleave_bits_bmi2_u512(key, coords, dims, bits);
      return;
    }
  }
#endif
  for (int dim = 0; dim < dims; ++dim) coords[dim] = 0;
  int pos = dims * bits;
  for (int level = bits - 1; level >= 0; --level) {
    for (int dim = 0; dim < dims; ++dim) {
      --pos;
      if (key_traits<K>::test_bit(key, pos)) coords[dim] |= std::uint32_t{1} << level;
    }
  }
}

}  // namespace subcover::detail
