#include "sfc/decomposition.h"

#include <array>
#include <stdexcept>

namespace subcover {

namespace detail {

void check_decompose_region(const universe& u, const rect& r) {
  if (r.dims() != u.dims())
    throw std::invalid_argument("decompose_rect: region dimension mismatch");
  if (!rect::whole(u).contains(r))
    throw std::invalid_argument("decompose_rect: region outside the universe");
}

}  // namespace detail

std::vector<std::uint64_t> decompose_rect_level_counts(const universe& u, const rect& r) {
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(u.bits()) + 1, 0);
  decompose_rect(u, r, [&](const standard_cube& c) {
    ++counts[static_cast<std::size_t>(c.side_bits())];
  });
  return counts;
}

std::uint64_t count_cubes(const universe& u, const rect& r) {
  std::uint64_t n = 0;
  decompose_rect(u, r, [&](const standard_cube&) { ++n; });
  return n;
}

template <class K>
void basic_cube_stream<K>::reset(const rect& r) {
  detail::check_decompose_region(curve_->space(), r);
  region_ = r;
  pending_root_ = false;
  depth_ = -1;
  const universe& u = curve_->space();
  const point origin(u.dims());
  const standard_cube root(origin, u.bits());
  if (region_.contains(root.as_rect())) {
    // The region is the whole universe: the partition is the root cube.
    pending_root_ = true;
    return;
  }
  if (stack_.empty()) stack_.resize(1);
  frame& f = stack_[0];
  f.corner = origin;
  f.prefix = key_traits<K>::zero();  // the root's prefix is the empty bit string
  curve_->init_state(f.state);
  f.side_bits = u.bits();
  expand(f);
  depth_ = 0;
}

template <class K>
bool basic_cube_stream<K>::next(standard_cube* out, range_type* range) {
  const int d = curve_->space().dims();
  if (pending_root_) {
    pending_root_ = false;
    const int k = curve_->space().bits();
    *out = standard_cube(point(d), k);
    if (range != nullptr) *range = {key_traits<K>::zero(), key_traits<K>::mask(d * k)};
    return true;
  }
  while (depth_ >= 0) {
    frame& f = stack_[static_cast<std::size_t>(depth_)];
    if (f.next_child == f.children.size()) {
      --depth_;
      continue;
    }
    const child ch = f.children[f.next_child++];
    const standard_cube c = child_cube(f, ch.mask);
    const K prefix = (f.prefix << d) | K(ch.rank);
    if (ch.contained) {
      *out = c;
      if (range != nullptr) {
        const int shift = d * c.side_bits();
        const K lo = prefix << shift;
        *range = {lo, lo | key_traits<K>::mask(shift)};
      }
      return true;
    }
    // Not contained but intersecting: descend. `f` may dangle after the
    // resize; everything needed from it was copied out above.
    ++depth_;
    if (static_cast<std::size_t>(depth_) >= stack_.size())
      stack_.resize(static_cast<std::size_t>(depth_) + 1);
    frame& g = stack_[static_cast<std::size_t>(depth_)];
    frame& parent = stack_[static_cast<std::size_t>(depth_ - 1)];
    g.corner = c.corner();
    g.prefix = prefix;
    curve_->descend_state(parent.state, ch.mask, g.state);
    g.side_bits = c.side_bits();
    expand(g);
  }
  return false;
}

template <class K>
bool basic_cube_stream<K>::next_range(range_type* range) {
  const int d = curve_->space().dims();
  if (pending_root_) {
    pending_root_ = false;
    *range = {key_traits<K>::zero(), key_traits<K>::mask(d * curve_->space().bits())};
    return true;
  }
  while (depth_ >= 0) {
    frame& f = stack_[static_cast<std::size_t>(depth_)];
    if (f.next_child == f.children.size()) {
      --depth_;
      continue;
    }
    const child ch = f.children[f.next_child++];
    const K prefix = (f.prefix << d) | K(ch.rank);
    if (ch.contained) {
      // Emit straight from the prefix: no coordinates are touched.
      const int shift = d * (f.side_bits - 1);
      const K lo = prefix << shift;
      *range = {lo, lo | key_traits<K>::mask(shift)};
      return true;
    }
    const standard_cube c = child_cube(f, ch.mask);
    ++depth_;
    if (static_cast<std::size_t>(depth_) >= stack_.size())
      stack_.resize(static_cast<std::size_t>(depth_) + 1);
    frame& g = stack_[static_cast<std::size_t>(depth_)];
    frame& parent = stack_[static_cast<std::size_t>(depth_ - 1)];
    g.corner = c.corner();
    g.prefix = prefix;
    curve_->descend_state(parent.state, ch.mask, g.state);
    g.side_bits = c.side_bits();
    expand(g);
  }
  return false;
}

template <class K>
standard_cube basic_cube_stream<K>::child_cube(const frame& f, std::uint32_t mask) const {
  const int child_bits = f.side_bits - 1;
  const auto half = static_cast<std::uint32_t>(std::uint64_t{1} << child_bits);
  point corner = f.corner;
  for (int j = 0; j < corner.dims(); ++j)
    if ((mask >> j) & 1U) corner[j] += half;
  return standard_cube(corner, child_bits);
}

template <class K>
void basic_cube_stream<K>::expand(frame& f) {
  const universe& u = curve_->space();
  const int d = u.dims();
  const int child_bits = f.side_bits - 1;
  const auto half = static_cast<std::uint32_t>(std::uint64_t{1} << child_bits);
  f.children.clear();
  f.next_child = 0;

  // Per dimension, which halves of the node intersect the region (the node
  // itself intersects, so at least one half does in every dimension) and
  // which halves are fully inside the region's slab. The latter classify
  // each child as contained (emit) or merely intersecting (descend) with
  // one bitmask test per child — no coordinate arrays on the emit path.
  std::uint32_t forced = 0;  // dimensions where only the upper half intersects
  std::uint32_t lo_in = 0;   // dimensions whose lower half is inside the slab
  std::uint32_t hi_in = 0;   // dimensions whose upper half is inside the slab
  std::array<int, kMaxDims> both{};
  int nboth = 0;
  for (int j = 0; j < d; ++j) {
    const std::uint32_t base = f.corner[j];
    const bool lo_ok = region_.lo()[j] <= base + half - 1 && region_.hi()[j] >= base;
    const bool hi_ok = region_.hi()[j] >= base + half && region_.lo()[j] <= base + 2 * half - 1;
    if (region_.lo()[j] <= base && base + half - 1 <= region_.hi()[j])
      lo_in |= std::uint32_t{1} << j;
    if (region_.lo()[j] <= base + half && base + 2 * half - 1 <= region_.hi()[j])
      hi_in |= std::uint32_t{1} << j;
    if (lo_ok && hi_ok) {
      both[static_cast<std::size_t>(nboth++)] = j;
    } else if (hi_ok) {
      forced |= std::uint32_t{1} << j;
    }
  }
  const std::uint32_t dmask = (d < 32 ? (std::uint32_t{1} << d) : 0) - 1;

  // Key rank among siblings: all children share the parent's prefix, so the
  // low d bits of cube_prefix order them on the curve. child_rank derives
  // them in O(d) from the parent's prefix and descent state on every
  // built-in curve (Hilbert reads the frame's orientation state).
  const std::uint64_t combos = std::uint64_t{1} << nboth;
  for (std::uint64_t m = 0; m < combos; ++m) {
    std::uint32_t mask = forced;
    for (int b = 0; b < nboth; ++b)
      if ((m >> b) & 1U) mask |= std::uint32_t{1} << both[static_cast<std::size_t>(b)];
    const bool contained = ((lo_in & ~mask) | (hi_in & mask) | ~dmask) == ~std::uint32_t{0};
    f.children.push_back({curve_->child_rank(f.prefix, f.state, mask), mask, contained});
  }
  if (f.children.size() > 1)
    std::sort(f.children.begin(), f.children.end(),
              [](const child& a, const child& b) { return a.rank < b.rank; });
}

template class basic_cube_stream<std::uint64_t>;
template class basic_cube_stream<u128>;
template class basic_cube_stream<u512>;

}  // namespace subcover
