#include "sfc/decomposition.h"

#include <stdexcept>

namespace subcover {

namespace {

class decomposer {
 public:
  decomposer(const universe& u, const rect& r, const cube_visitor& visit)
      : u_(u), r_(r), visit_(visit) {}

  void run() {
    point origin(u_.dims());
    descend(standard_cube(origin, u_.bits()));
  }

 private:
  // Precondition: `c` intersects r_.
  void descend(const standard_cube& c) {
    const rect cr = c.as_rect();
    if (r_.contains(cr)) {
      visit_(c);
      return;
    }
    // A unit cube that intersects the region is contained in it, so side_bits
    // is strictly positive here.
    const int child_bits = c.side_bits() - 1;
    const auto half = static_cast<std::uint32_t>(std::uint64_t{1} << child_bits);
    point child_corner(u_.dims());
    recurse_children(c, child_bits, half, 0, child_corner);
  }

  // Enumerates, dimension by dimension, the child cubes of `c` that intersect
  // the region; only intersecting halves are explored, so work stays
  // proportional to the output.
  void recurse_children(const standard_cube& c, int child_bits, std::uint32_t half, int dim,
                        point& corner) {
    if (dim == u_.dims()) {
      descend(standard_cube(corner, child_bits));
      return;
    }
    const std::uint32_t base = c.corner()[dim];
    // Lower half: [base, base + half - 1].
    if (r_.lo()[dim] <= base + half - 1 && r_.hi()[dim] >= base) {
      corner[dim] = base;
      recurse_children(c, child_bits, half, dim + 1, corner);
    }
    // Upper half: [base + half, base + 2*half - 1].
    if (r_.hi()[dim] >= base + half && r_.lo()[dim] <= base + 2 * half - 1) {
      corner[dim] = base + half;
      recurse_children(c, child_bits, half, dim + 1, corner);
    }
  }

  const universe& u_;
  const rect& r_;
  const cube_visitor& visit_;
};

void check_region(const universe& u, const rect& r) {
  if (r.dims() != u.dims())
    throw std::invalid_argument("decompose_rect: region dimension mismatch");
  if (!rect::whole(u).contains(r))
    throw std::invalid_argument("decompose_rect: region outside the universe");
}

}  // namespace

void decompose_rect(const universe& u, const rect& r, const cube_visitor& visit) {
  check_region(u, r);
  decomposer(u, r, visit).run();
}

std::vector<std::uint64_t> decompose_rect_level_counts(const universe& u, const rect& r) {
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(u.bits()) + 1, 0);
  decompose_rect(u, r, [&](const standard_cube& c) {
    ++counts[static_cast<std::size_t>(c.side_bits())];
  });
  return counts;
}

std::uint64_t count_cubes(const universe& u, const rect& r) {
  std::uint64_t n = 0;
  decompose_rect(u, r, [&](const standard_cube&) { ++n; });
  return n;
}

}  // namespace subcover
