// Z-order (Morton) space filling curve [Mor66].
//
// The key of a cell is the bit interleaving of its coordinates (paper
// Section 5): bit levels most-significant first, dimension 0 first within a
// level. The prefix of a standard cube is the interleaving of the top
// (k - side_bits) bits of its corner coordinates.
#pragma once

#include "sfc/curve.h"

namespace subcover {

template <class K>
class basic_z_curve final : public basic_curve<K> {
 public:
  explicit basic_z_curve(const universe& u) : basic_curve<K>(u) {}

  [[nodiscard]] curve_kind kind() const override { return curve_kind::z_order; }
  [[nodiscard]] K cube_prefix(const standard_cube& c) const override;
  [[nodiscard]] point cell_from_key(const K& key) const override;
  // O(d), stateless: the rank is the child-selection mask with dimension 0
  // moved to the most significant bit (the interleaving convention above).
  [[nodiscard]] std::uint64_t child_rank(const K& parent_prefix, const curve_state& state,
                                         std::uint32_t child_mask) const override;
};

using z_curve = basic_z_curve<u512>;

extern template class basic_z_curve<std::uint64_t>;
extern template class basic_z_curve<u128>;
extern template class basic_z_curve<u512>;

}  // namespace subcover
