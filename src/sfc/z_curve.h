// Z-order (Morton) space filling curve [Mor66].
//
// The key of a cell is the bit interleaving of its coordinates (paper
// Section 5): bit levels most-significant first, dimension 0 first within a
// level. The prefix of a standard cube is the interleaving of the top
// (k - side_bits) bits of its corner coordinates.
#pragma once

#include "sfc/curve.h"

namespace subcover {

class z_curve final : public curve {
 public:
  explicit z_curve(const universe& u) : curve(u) {}

  [[nodiscard]] curve_kind kind() const override { return curve_kind::z_order; }
  [[nodiscard]] u512 cube_prefix(const standard_cube& c) const override;
  [[nodiscard]] point cell_from_key(const u512& key) const override;
  // O(d): the rank is the child-selection mask with dimension 0 moved to the
  // most significant bit (the interleaving convention above).
  [[nodiscard]] std::uint64_t child_rank(const standard_cube& parent, const u512& parent_prefix,
                                         std::uint32_t child_mask) const override;
};

}  // namespace subcover
