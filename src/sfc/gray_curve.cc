#include "sfc/gray_curve.h"

#include <array>

#include "sfc/interleave.h"

namespace subcover {

u512 gray_decode(u512 g) {
  // XOR prefix scan via doubling: after the loop, bit i of g equals the XOR
  // of all original bits >= i.
  for (int shift = 1; shift < u512::kBits; shift <<= 1) g ^= g >> shift;
  return g;
}

u512 gray_encode(const u512& b) { return b ^ (b >> 1); }

u512 gray_curve::cube_prefix(const standard_cube& c) const {
  check_cube(c);
  const int d = space().dims();
  const int prefix_bits = space().bits() - c.side_bits();
  std::array<std::uint32_t, kMaxDims> top{};
  for (int i = 0; i < d; ++i)
    top[static_cast<std::size_t>(i)] = c.corner()[i] >> c.side_bits();
  return gray_decode(detail::interleave_bits(top.data(), d, prefix_bits));
}

std::uint64_t gray_curve::child_rank(const standard_cube& parent, const u512& parent_prefix,
                                     std::uint32_t child_mask) const {
  const int d = space().dims();
  const std::uint64_t rank_mask = (d < 64 ? (std::uint64_t{1} << d) : 0) - 1;
  // Interleaved selection bits of the child (the Z rank of the mask).
  std::uint64_t z = 0;
  for (int j = 0; j < d; ++j)
    if ((child_mask >> j) & 1U) z |= std::uint64_t{1} << (d - 1 - j);
  // 64-bit XOR prefix scan == gray decode of the d-bit word.
  for (int shift = 1; shift < 64; shift <<= 1) z ^= z >> shift;
  const bool parent_odd = (parent_prefix.low64() & 1U) != 0;
  return (parent_odd ? ~z : z) & rank_mask;
}

point gray_curve::cell_from_key(const u512& key) const {
  check_key(key);
  const int d = space().dims();
  std::array<std::uint32_t, kMaxDims> coords{};
  detail::deinterleave_bits(gray_encode(key), coords.data(), d, space().bits());
  point p(d);
  for (int i = 0; i < d; ++i) p[i] = coords[static_cast<std::size_t>(i)];
  return p;
}

}  // namespace subcover
