#include "sfc/gray_curve.h"

#include <array>

#include "sfc/interleave.h"

namespace subcover {

template <class K>
K basic_gray_curve<K>::cube_prefix(const standard_cube& c) const {
  this->check_cube(c);
  const int d = this->space().dims();
  const int prefix_bits = this->space().bits() - c.side_bits();
  std::array<std::uint32_t, kMaxDims> top{};
  for (int i = 0; i < d; ++i)
    top[static_cast<std::size_t>(i)] = c.corner()[i] >> c.side_bits();
  return gray_decode(detail::interleave_bits<K>(top.data(), d, prefix_bits));
}

template <class K>
std::uint64_t basic_gray_curve<K>::child_rank(const K& parent_prefix, const curve_state& state,
                                              std::uint32_t child_mask) const {
  (void)state;
  const int d = this->space().dims();
  const std::uint64_t rank_mask = (d < 64 ? (std::uint64_t{1} << d) : 0) - 1;
  // Interleaved selection bits of the child (the Z rank of the mask).
  std::uint64_t z = 0;
  for (int j = 0; j < d; ++j)
    if ((child_mask >> j) & 1U) z |= std::uint64_t{1} << (d - 1 - j);
  // 64-bit XOR prefix scan == gray decode of the d-bit word.
  for (int shift = 1; shift < 64; shift <<= 1) z ^= z >> shift;
  const bool parent_odd = (key_traits<K>::low64(parent_prefix) & 1U) != 0;
  return (parent_odd ? ~z : z) & rank_mask;
}

template <class K>
point basic_gray_curve<K>::cell_from_key(const K& key) const {
  this->check_key(key);
  const int d = this->space().dims();
  std::array<std::uint32_t, kMaxDims> coords{};
  detail::deinterleave_bits(gray_encode(key), coords.data(), d, this->space().bits());
  point p(d);
  for (int i = 0; i < d; ++i) p[i] = coords[static_cast<std::size_t>(i)];
  return p;
}

template class basic_gray_curve<std::uint64_t>;
template class basic_gray_curve<u128>;
template class basic_gray_curve<u512>;

}  // namespace subcover
