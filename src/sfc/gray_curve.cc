#include "sfc/gray_curve.h"

#include <array>

#include "sfc/interleave.h"

namespace subcover {

u512 gray_decode(u512 g) {
  // XOR prefix scan via doubling: after the loop, bit i of g equals the XOR
  // of all original bits >= i.
  for (int shift = 1; shift < u512::kBits; shift <<= 1) g ^= g >> shift;
  return g;
}

u512 gray_encode(const u512& b) { return b ^ (b >> 1); }

u512 gray_curve::cube_prefix(const standard_cube& c) const {
  check_cube(c);
  const int d = space().dims();
  const int prefix_bits = space().bits() - c.side_bits();
  std::array<std::uint32_t, kMaxDims> top{};
  for (int i = 0; i < d; ++i)
    top[static_cast<std::size_t>(i)] = c.corner()[i] >> c.side_bits();
  return gray_decode(detail::interleave_bits(top.data(), d, prefix_bits));
}

point gray_curve::cell_from_key(const u512& key) const {
  check_key(key);
  const int d = space().dims();
  std::array<std::uint32_t, kMaxDims> coords{};
  detail::deinterleave_bits(gray_encode(key), coords.data(), d, space().bits());
  point p(d);
  for (int i = 0; i < d; ++i) p[i] = coords[static_cast<std::size_t>(i)];
  return p;
}

}  // namespace subcover
