// Space filling curve interface (paper Section 2).
//
// All supported curves (Z, Hilbert, Gray-code) are *recursive-partitioning*
// curves: the universe is bisected along every dimension k times, and the
// first d*l bits of a cell's key identify the level-l standard cube that
// contains it. Two consequences the rest of the library relies on:
//
//   * Fact 2.1 - a standard cube is a single run: its cells occupy exactly
//     the contiguous key interval [prefix << (d*s), (prefix+1) << (d*s) - 1]
//     where s = side_bits and prefix = cube_prefix(cube).
//   * The key order of cubes at a level equals the order of their prefixes.
//
// Implementations must be bijections between cells and [0, 2^(d*k)) and must
// satisfy the prefix property above; tests verify both exhaustively on small
// universes.
//
// Key-type contract: basic_curve is templated on the key type K (one of
// std::uint64_t, u128, u512 — see util/key_traits.h). An instantiation is
// only valid for universes with d*k <= key_traits<K>::kBits; the
// constructor enforces this. All instantiations of one curve kind compute
// the *same* curve — a narrow key equals the u512 key after widening
// (tests/sfc/key_width_equivalence_test.cc pins this down) — so narrowing
// is purely a constant-factor optimization selected at construction time
// (dominance_index picks the narrowest width that fits). `curve` remains
// the u512 alias the public API speaks.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string_view>

#include "geometry/cube.h"
#include "geometry/point.h"
#include "geometry/universe.h"
#include "sfc/key_range.h"
#include "util/key_traits.h"
#include "util/wideint.h"

namespace subcover {

enum class curve_kind { z_order, hilbert, gray_code };

std::string_view curve_kind_name(curve_kind kind);

// Per-node descent state for the decomposition walk (cube_stream): the
// orientation of the curve inside a standard cube. Z derives child ranks
// from the selection mask alone and Gray from the parent prefix's parity,
// but Hilbert needs the accumulated rotation/reflection of the descent
// path; threading it through the stream frames is what lets Hilbert emit
// child key ranks in O(d) instead of recomputing a full cube_prefix per
// child. The fields are a signed permutation of the axes plus the
// Gray/Hilbert parity bit; curves that don't need them leave the state
// untouched.
struct curve_state {
  std::array<std::uint8_t, kMaxDims> perm{};  // axis i of the key reads coordinate perm[i]
  std::uint32_t flip = 0;                     // bit i: axis i of the key is inverted
  bool parity = false;                        // accumulated Gray parity of the path
};

template <class K>
class basic_curve {
 public:
  using key_type = K;
  using range_type = basic_key_range<K>;
  using traits = key_traits<K>;

  // Throws std::invalid_argument if the universe's keys (d*k bits) do not
  // fit the key type.
  explicit basic_curve(const universe& u);
  virtual ~basic_curve() = default;
  basic_curve(const basic_curve&) = delete;
  basic_curve& operator=(const basic_curve&) = delete;

  [[nodiscard]] const universe& space() const { return universe_; }
  [[nodiscard]] virtual curve_kind kind() const = 0;
  [[nodiscard]] std::string_view name() const { return curve_kind_name(kind()); }

  // The (d * (k - side_bits))-bit key prefix identifying the standard cube.
  // Throws std::invalid_argument if the cube lies outside the universe or has
  // mismatched dimensions.
  [[nodiscard]] virtual K cube_prefix(const standard_cube& c) const = 0;

  // --- descent-state API (drives cube_stream and the level-range
  // enumerator of extremal_decomposition.h) --------------------------------
  //
  // Both walks descend the partition tree top-down keeping, per frame, the
  // node's key prefix and its curve_state. For each child (identified by
  // `child_mask`: bit j set = upper half in dimension j) the curve reports
  // the child's key rank among its 2^d siblings — the low d bits of
  // cube_prefix(child), so child prefix == parent_prefix * 2^d + rank — and,
  // when the walk descends, the child's state. The rank is a pure function
  // of (parent_prefix, state, child_mask): no coordinates are involved,
  // which is what lets the query planner stay corner-free.

  // State of the root cube (the whole universe). Default: identity.
  virtual void init_state(curve_state& s) const;

  // The key rank of the child selected by `child_mask`. `parent_prefix`
  // must equal cube_prefix(parent) and `state` must be the parent's descent
  // state (Z and Gray ignore it: Z ranks from the mask alone, Gray from the
  // prefix's parity). All built-in curves implement this with O(d) bit
  // logic.
  [[nodiscard]] virtual std::uint64_t child_rank(const K& parent_prefix,
                                                 const curve_state& state,
                                                 std::uint32_t child_mask) const = 0;

  // Descent state of the child selected by `child_mask`. Default: copy the
  // parent's state (correct for curves that ignore it).
  virtual void descend_state(const curve_state& parent, std::uint32_t child_mask,
                             curve_state& child) const;

  // Inverse of cell_key. The key must be < 2^(d*k).
  [[nodiscard]] virtual point cell_from_key(const K& key) const = 0;

  // Key of a unit cell (standard cube of side 1).
  [[nodiscard]] K cell_key(const point& p) const;

  // The contiguous key interval occupied by a standard cube (Fact 2.1).
  [[nodiscard]] range_type cube_range(const standard_cube& c) const;

 protected:
  // Shared precondition checking for cube_prefix implementations.
  void check_cube(const standard_cube& c) const;
  void check_key(const K& key) const;

 private:
  universe universe_;
};

using curve = basic_curve<u512>;

extern template class basic_curve<std::uint64_t>;
extern template class basic_curve<u128>;
extern template class basic_curve<u512>;

// Factory covering all built-in curves at the reference (u512) width.
std::unique_ptr<curve> make_curve(curve_kind kind, const universe& u);

// Same, at an explicit key width. The universe must fit K.
template <class K>
std::unique_ptr<basic_curve<K>> make_basic_curve(curve_kind kind, const universe& u);

extern template std::unique_ptr<basic_curve<std::uint64_t>> make_basic_curve(curve_kind,
                                                                             const universe&);
extern template std::unique_ptr<basic_curve<u128>> make_basic_curve(curve_kind, const universe&);
extern template std::unique_ptr<basic_curve<u512>> make_basic_curve(curve_kind, const universe&);

}  // namespace subcover
