// Space filling curve interface (paper Section 2).
//
// All supported curves (Z, Hilbert, Gray-code) are *recursive-partitioning*
// curves: the universe is bisected along every dimension k times, and the
// first d*l bits of a cell's key identify the level-l standard cube that
// contains it. Two consequences the rest of the library relies on:
//
//   * Fact 2.1 - a standard cube is a single run: its cells occupy exactly
//     the contiguous key interval [prefix << (d*s), (prefix+1) << (d*s) - 1]
//     where s = side_bits and prefix = cube_prefix(cube).
//   * The key order of cubes at a level equals the order of their prefixes.
//
// Implementations must be bijections between cells and [0, 2^(d*k)) and must
// satisfy the prefix property above; tests verify both exhaustively on small
// universes.
#pragma once

#include <memory>
#include <string_view>

#include "geometry/cube.h"
#include "geometry/point.h"
#include "geometry/universe.h"
#include "sfc/key_range.h"
#include "util/wideint.h"

namespace subcover {

enum class curve_kind { z_order, hilbert, gray_code };

std::string_view curve_kind_name(curve_kind kind);

class curve {
 public:
  explicit curve(const universe& u) : universe_(u) {}
  virtual ~curve() = default;
  curve(const curve&) = delete;
  curve& operator=(const curve&) = delete;

  [[nodiscard]] const universe& space() const { return universe_; }
  [[nodiscard]] virtual curve_kind kind() const = 0;
  [[nodiscard]] std::string_view name() const { return curve_kind_name(kind()); }

  // The (d * (k - side_bits))-bit key prefix identifying the standard cube.
  // Throws std::invalid_argument if the cube lies outside the universe or has
  // mismatched dimensions.
  [[nodiscard]] virtual u512 cube_prefix(const standard_cube& c) const = 0;

  // The key rank of a child cube among its 2^d siblings: the low d bits of
  // cube_prefix(child), where the child of `parent` takes the upper half in
  // dimension j iff bit j of `child_mask` is set. `parent_prefix` must equal
  // cube_prefix(parent); prefix-derivable curves use it to avoid recomputing
  // the full prefix (child prefix == parent_prefix * 2^d + rank), which is
  // what lets cube_stream enumerate without any per-cube key computation.
  // `parent` must have side_bits >= 1. The default builds the child cube and
  // takes cube_prefix; Z and Gray override with O(d) bit logic.
  [[nodiscard]] virtual std::uint64_t child_rank(const standard_cube& parent,
                                                 const u512& parent_prefix,
                                                 std::uint32_t child_mask) const;

  // Inverse of cell_key. The key must be < 2^(d*k).
  [[nodiscard]] virtual point cell_from_key(const u512& key) const = 0;

  // Key of a unit cell (standard cube of side 1).
  [[nodiscard]] u512 cell_key(const point& p) const;

  // The contiguous key interval occupied by a standard cube (Fact 2.1).
  [[nodiscard]] key_range cube_range(const standard_cube& c) const;

 protected:
  // Shared precondition checking for cube_prefix implementations.
  void check_cube(const standard_cube& c) const;
  void check_key(const u512& key) const;

 private:
  universe universe_;
};

// Factory covering all built-in curves.
std::unique_ptr<curve> make_curve(curve_kind kind, const universe& u);

}  // namespace subcover
