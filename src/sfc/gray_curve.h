// Gray-code space filling curve [Fal86, Fal88].
//
// The cell whose interleaved coordinate bits form the word g is visited at
// position gray_decode(g) (the rank of g in the reflected Gray code).
// gray_decode is the XOR prefix scan, which is computed most-significant bit
// first, so the recursive-partitioning prefix property holds.
#pragma once

#include "sfc/curve.h"

namespace subcover {

// Reflected-Gray-code rank: the b such that b ^ (b >> 1) == g. The XOR
// prefix scan via doubling: after the loop, bit i equals the XOR of all
// original bits >= i.
template <class K>
K gray_decode(K g) {
  for (int shift = 1; shift < key_traits<K>::kBits; shift <<= 1) g ^= g >> shift;
  return g;
}

// Inverse: g = b ^ (b >> 1).
template <class K>
K gray_encode(const K& b) {
  return b ^ (b >> 1);
}

template <class K>
class basic_gray_curve final : public basic_curve<K> {
 public:
  explicit basic_gray_curve(const universe& u) : basic_curve<K>(u) {}

  [[nodiscard]] curve_kind kind() const override { return curve_kind::gray_code; }
  [[nodiscard]] K cube_prefix(const standard_cube& c) const override;
  [[nodiscard]] point cell_from_key(const K& key) const override;
  // O(d): with I the interleaved word of a prefix, decode(I)_i is the XOR of
  // I's bits >= i, so the low d decoded bits of a child are the d-bit gray
  // decode of its interleaved selection bits, flipped when the parent's
  // interleaved word has odd parity — and that parity is exactly the low bit
  // of the parent's (decoded) prefix.
  [[nodiscard]] std::uint64_t child_rank(const K& parent_prefix, const curve_state& state,
                                         std::uint32_t child_mask) const override;
};

using gray_curve = basic_gray_curve<u512>;

extern template class basic_gray_curve<std::uint64_t>;
extern template class basic_gray_curve<u128>;
extern template class basic_gray_curve<u512>;

}  // namespace subcover
