// Gray-code space filling curve [Fal86, Fal88].
//
// The cell whose interleaved coordinate bits form the word g is visited at
// position gray_decode(g) (the rank of g in the reflected Gray code).
// gray_decode is the XOR prefix scan, which is computed most-significant bit
// first, so the recursive-partitioning prefix property holds.
#pragma once

#include "sfc/curve.h"

namespace subcover {

// Reflected-Gray-code rank: the b such that b ^ (b >> 1) == g.
u512 gray_decode(u512 g);
// Inverse: g = b ^ (b >> 1).
u512 gray_encode(const u512& b);

class gray_curve final : public curve {
 public:
  explicit gray_curve(const universe& u) : curve(u) {}

  [[nodiscard]] curve_kind kind() const override { return curve_kind::gray_code; }
  [[nodiscard]] u512 cube_prefix(const standard_cube& c) const override;
  [[nodiscard]] point cell_from_key(const u512& key) const override;
  // O(d): with I the interleaved word of a prefix, decode(I)_i is the XOR of
  // I's bits >= i, so the low d decoded bits of a child are the d-bit gray
  // decode of its interleaved selection bits, flipped when the parent's
  // interleaved word has odd parity — and that parity is exactly the low bit
  // of the parent's (decoded) prefix.
  [[nodiscard]] std::uint64_t child_rank(const standard_cube& parent, const u512& parent_prefix,
                                         std::uint32_t child_mask) const override;
};

}  // namespace subcover
