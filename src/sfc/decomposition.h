// Greedy (minimal) decomposition of a rectangle into standard cubes.
//
// Lemma 3.3 of the paper: repeatedly extracting the largest standard cube
// that fits yields a partition into the *minimum* number of standard cubes.
// Because standard cubes are nested-or-disjoint (Lemma 2.1), that minimal
// partition is exactly the set of maximal standard cubes contained in the
// region, which this module enumerates top-down: starting from the universe
// cube, a cube fully inside the region is emitted; otherwise recursion
// descends only into the children that intersect the region.
//
// Two enumeration styles are provided:
//
//   * decompose_rect(u, r, visitor) — push style. The visitor is a template
//     parameter (any callable taking `const standard_cube&`), so the hot
//     path is fully inlinable and performs no type-erased (std::function)
//     dispatch and no heap allocation. A visitor returning bool can stop
//     the enumeration early by returning false.
//
//   * basic_cube_stream<K> — pull style. An iterative, resumable enumerator
//     that emits the cubes of the partition one at a time in *curve key
//     order* (the order of their key intervals on a given SFC). The explicit
//     stack replaces the recursion; a stream object is reusable via reset()
//     and retains its per-depth buffers, so a warmed stream allocates
//     nothing. Key order is what makes streaming run coalescing possible
//     (runs.h). The stream is templated on the SFC key type (key_traits.h);
//     prefix/range arithmetic runs at the bound curve's width, and each
//     frame carries the curve's descent state so child key ranks are O(d)
//     for every built-in curve, Hilbert included. `cube_stream` is the u512
//     alias.
//
// Complexity: O(output * d * k) — no dependence on the region's volume.
// cube_stream additionally pays O(c log c) per internal node to order the
// c <= 2^d intersecting children by key prefix.
#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "geometry/cube.h"
#include "geometry/rect.h"
#include "geometry/universe.h"
#include "sfc/curve.h"

namespace subcover {

namespace detail {

// Throws std::invalid_argument if r is not a region of u.
void check_decompose_region(const universe& u, const rect& r);

// Invokes the visitor; adapts void- and bool-returning callables to a
// uniform "continue?" result.
template <class Visitor>
bool visit_cube(Visitor& visit, const standard_cube& c) {
  if constexpr (std::is_convertible_v<decltype(visit(c)), bool>) {
    return static_cast<bool>(visit(c));
  } else {
    visit(c);
    return true;
  }
}

template <class Visitor>
class decomposer {
 public:
  decomposer(const universe& u, const rect& r, Visitor& visit)
      : u_(u), r_(r), visit_(visit) {}

  void run() {
    point origin(u_.dims());
    descend(standard_cube(origin, u_.bits()));
  }

 private:
  // Precondition: `c` intersects r_. Returns false to abort the traversal.
  bool descend(const standard_cube& c) {
    const rect cr = c.as_rect();
    if (r_.contains(cr)) return visit_cube(visit_, c);
    // A unit cube that intersects the region is contained in it, so side_bits
    // is strictly positive here.
    const int child_bits = c.side_bits() - 1;
    const auto half = static_cast<std::uint32_t>(std::uint64_t{1} << child_bits);
    point child_corner(u_.dims());
    return recurse_children(c, child_bits, half, 0, child_corner);
  }

  // Enumerates, dimension by dimension, the child cubes of `c` that intersect
  // the region; only intersecting halves are explored, so work stays
  // proportional to the output.
  bool recurse_children(const standard_cube& c, int child_bits, std::uint32_t half, int dim,
                        point& corner) {
    if (dim == u_.dims()) return descend(standard_cube(corner, child_bits));
    const std::uint32_t base = c.corner()[dim];
    // Lower half: [base, base + half - 1].
    if (r_.lo()[dim] <= base + half - 1 && r_.hi()[dim] >= base) {
      corner[dim] = base;
      if (!recurse_children(c, child_bits, half, dim + 1, corner)) return false;
    }
    // Upper half: [base + half, base + 2*half - 1].
    if (r_.hi()[dim] >= base + half && r_.lo()[dim] <= base + 2 * half - 1) {
      corner[dim] = base + half;
      if (!recurse_children(c, child_bits, half, dim + 1, corner)) return false;
    }
    return true;
  }

  const universe& u_;
  const rect& r_;
  Visitor& visit_;
};

}  // namespace detail

// Visits every cube of the minimal standard-cube partition of `r`.
// `r` must lie inside the universe (throws std::invalid_argument otherwise).
// `visit` is any callable taking `const standard_cube&`; if it returns a
// value convertible to bool, returning false stops the enumeration.
template <class Visitor>
void decompose_rect(const universe& u, const rect& r, Visitor&& visit) {
  detail::check_decompose_region(u, r);
  auto& v = visit;
  detail::decomposer<std::remove_reference_t<Visitor>>(u, r, v).run();
}

// Number of cubes in the minimal partition, grouped by side_bits:
// result[s] = number of cubes of side 2^s, for s in [0, k].
std::vector<std::uint64_t> decompose_rect_level_counts(const universe& u, const rect& r);

// Total cubes(r): size of the minimal partition (paper Definition 3.1).
std::uint64_t count_cubes(const universe& u, const rect& r);

// Pull-style enumerator of the minimal standard-cube partition, in curve key
// order: cubes come out ordered by their key interval on `c` (sibling cubes
// are visited in key-prefix order, and a cube's interval nests inside its
// parent's, so the global emission order is the key order). Used by
// run_stream to coalesce adjacent intervals into maximal runs on the fly.
//
// Reuse contract: reset() rebinds the stream to a new region; the internal
// stack and per-depth child buffers are retained across resets, so a warmed
// stream performs no heap allocation. Not thread-safe; use one stream per
// thread.
template <class K>
class basic_cube_stream {
 public:
  using key_type = K;
  using curve_type = basic_curve<K>;
  using range_type = basic_key_range<K>;

  explicit basic_cube_stream(const curve_type& c) : curve_(&c) {}
  basic_cube_stream(const curve_type& c, const rect& r) : curve_(&c) { reset(r); }

  // Rebinds to a new region of the same curve's universe. Throws
  // std::invalid_argument if the region lies outside the universe.
  void reset(const rect& r);

  // Emits the next cube of the partition, in key order; false when the
  // partition is exhausted. When `range` is non-null it receives the cube's
  // key interval (Fact 2.1) — derived from the prefixes the descent already
  // tracks, with no curve key computation (child_rank gives each child's
  // prefix from its parent's via the frame's descent state).
  bool next(standard_cube* out, range_type* range = nullptr);

  // Key-interval-only variant: emits the next cube's key range without
  // materializing the standard_cube. Emitted (contained) children are
  // classified during expand() with O(1) bitmask work, so the hot
  // count_runs/run_stream path touches no per-cube coordinate arrays at
  // all — only prefix arithmetic at the key width.
  bool next_range(range_type* range);

  [[nodiscard]] const curve_type& sfc() const { return *curve_; }

 private:
  // A child of an internal node: which half it takes per dimension (bit j of
  // `mask` set = upper half in dimension j), whether it is fully contained
  // in the region (emit vs descend), and its key rank among siblings (the
  // low d bits of its cube_prefix).
  struct child {
    std::uint64_t rank;
    std::uint32_t mask;
    bool contained;
  };
  // One internal node of the descent with its resume position.
  struct frame {
    point corner;            // the node's corner
    K prefix{};              // the node's cube_prefix
    curve_state state;       // the node's curve descent state
    int side_bits = 0;       // the node's side bits
    std::size_t next_child = 0;
    std::vector<child> children;  // intersecting children, sorted by rank
  };

  // Fills f.children for the node (f.corner, f.side_bits); the node is known
  // to intersect the region and not be contained in it.
  void expand(frame& f);
  [[nodiscard]] standard_cube child_cube(const frame& f, std::uint32_t mask) const;

  const curve_type* curve_;
  rect region_;
  std::vector<frame> stack_;  // grown once to depth k, then reused
  int depth_ = -1;            // index of the active frame; -1 = exhausted
  bool pending_root_ = false; // region == whole universe: emit the root cube
};

using cube_stream = basic_cube_stream<u512>;

extern template class basic_cube_stream<std::uint64_t>;
extern template class basic_cube_stream<u128>;
extern template class basic_cube_stream<u512>;

}  // namespace subcover
