// Greedy (minimal) decomposition of a rectangle into standard cubes.
//
// Lemma 3.3 of the paper: repeatedly extracting the largest standard cube
// that fits yields a partition into the *minimum* number of standard cubes.
// Because standard cubes are nested-or-disjoint (Lemma 2.1), that minimal
// partition is exactly the set of maximal standard cubes contained in the
// region, which this module enumerates top-down: starting from the universe
// cube, a cube fully inside the region is emitted; otherwise recursion
// descends only into the children that intersect the region.
//
// Complexity: O(output * d * k) — no dependence on the region's volume.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "geometry/cube.h"
#include "geometry/rect.h"
#include "geometry/universe.h"

namespace subcover {

using cube_visitor = std::function<void(const standard_cube&)>;

// Visits every cube of the minimal standard-cube partition of `r`.
// `r` must lie inside the universe (throws std::invalid_argument otherwise).
void decompose_rect(const universe& u, const rect& r, const cube_visitor& visit);

// Number of cubes in the minimal partition, grouped by side_bits:
// result[s] = number of cubes of side 2^s, for s in [0, k].
std::vector<std::uint64_t> decompose_rect_level_counts(const universe& u, const rect& r);

// Total cubes(r): size of the minimal partition (paper Definition 3.1).
std::uint64_t count_cubes(const universe& u, const rect& r);

}  // namespace subcover
