// Decomposition machinery specialized to extremal rectangles R(l):
// the paper's level sets D_i, the exact per-level cube counts of Lemma 3.5,
// and the enumeration Algorithms 1-3 of Section 5 / Appendix A.
//
// The greedy partition of R(l) is structured (Lemma 3.4): cubes of side 2^i
// exist only for levels i where some side length has bit i set (indicator
// O_i), and the cubes of side >= 2^i tile exactly the extremal rectangle
// R(S_i(l)). This lets the query engine enumerate cubes strictly in
// descending volume order (the search order of the Section 5 algorithm) and
// lets benches compute cube counts in closed form without enumeration.
//
// Corner-free architecture: the enumerator keeps the Equation-1 corner as a
// set of *bit planes* — one d-bit child-selection mask per tree level — and
// walks Algorithms 1-3 by toggling individual plane bits (a chosen-bit move
// or a free-bit flip is one XOR). Two emitters consume the planes:
//
//   * enumerate_level_ranges(curve, r, i, visit) — the query hot path. A
//     per-level (prefix, curve_state) stack is maintained through the
//     curve's child_rank/descend_state API, and only the levels below the
//     highest toggled bit are recomputed between cubes (a dirty watermark),
//     so successive cubes cost O(d) amortized at the curve's key width.
//     Each cube is emitted directly as its Fact 2.1 key interval
//     basic_key_range<K>: no standard_cube, no corner coordinate arrays, no
//     wide-integer cube_prefix recomputation. This is what keeps
//     query_plan's per-query instruction count proportional to runs probed.
//
//   * enumerate_level_cubes(u, r, i, visit) — the curve-independent
//     standard_cube view over the same walk (tests, benches, closed-form
//     cross-checks). Both emitters visit cubes in the identical Algorithm
//     1-3 order: pinned dimension ascending, chosen-bit vectors P in
//     lexicographic order (dimension-major, bits descending), then free-bit
//     combinations in counting order (dimension-major, positions ascending,
//     least significant fastest).
//
// Enumeration is push-style with a template visitor (no std::function, no
// heap allocation: the enumerator's scratch is fixed-size). A visitor
// returning bool can stop a level cleanly by returning false — that is how
// the query planner takes exactly the number of cubes it needs from a level
// without exception-based control flow.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "geometry/extremal.h"
#include "geometry/universe.h"
#include "sfc/curve.h"
#include "sfc/decomposition.h"
#include "sfc/key_range.h"
#include "util/bitops.h"
#include "util/check.h"
#include "util/key_traits.h"
#include "util/wideint.h"

namespace subcover {

// O_i of Lemma 3.4: true iff some side length of r has bit i set.
bool level_occupied(const extremal_rect& r, int i);

// Exact |D_i| for every i in [0, k] via the Lemma 3.5 closed form
//   N_i = (prod_j S_i(l_j) - prod_j S_{i+1}(l_j)) / 2^(i*d).
// result[i] = number of cubes of side 2^i in the minimal partition of R(l).
std::vector<u512> extremal_level_counts(const universe& u, const extremal_rect& r);

// Same, writing into a caller-owned buffer (resized to k + 1) so repeated
// queries reuse its capacity instead of reallocating.
void extremal_level_counts_into(const universe& u, const extremal_rect& r,
                                std::vector<u512>& out);

// cubes(R(l)): total size of the minimal partition, exact.
u512 extremal_cube_count(const universe& u, const extremal_rect& r);

namespace detail {

// Implements Algorithms 1-3 (Appendix A) for one level i over the bit-plane
// representation of Equation 1. The Emitter is any callable taking a
// `const level_walk&` and returning bool ("continue?"); it reads the walk's
// planes (child masks per tree level), per-dimension corner bits, and the
// dirty watermark — the highest tree level whose plane changed since the
// previous emission.
template <class Emitter>
class level_walk {
 public:
  level_walk(const universe& u, const extremal_rect& r, int i, Emitter& emit,
             std::uint64_t max_cubes)
      : u_(u),
        r_(r),
        i_(i),
        emit_(emit),
        max_cubes_(max_cubes),
        window_((u.bits() < 64 ? (std::uint64_t{1} << u.bits()) : 0) -
                (std::uint64_t{1} << i)),
        dirty_(u.bits() - 1) {}

  void run() {
    // Algorithm 1: each rectangle of D_i has exactly one lowest-index
    // dimension s whose chosen bit P_s equals i.
    for (int s = 0; s < u_.dims() && !stopped_; ++s) {
      if (bit_at(r_.length(s), i_)) {
        pin_ = s;
        enum_rectangles(0);
      }
    }
  }

  // --- state read by emitters ----------------------------------------------
  // planes()[y] for y in [i, k): bit x = corner bit y of dimension x — the
  // child-selection mask of the descent step producing side-2^y nodes.
  [[nodiscard]] const std::uint32_t* planes() const { return planes_.data(); }
  // Corner coordinate of dimension x (bits below i are zero by alignment).
  [[nodiscard]] std::uint64_t corner_bits(int x) const {
    return corner_[static_cast<std::size_t>(x)];
  }
  // Highest tree level whose plane changed since the last emission (k - 1 on
  // the first emission: everything must be computed).
  [[nodiscard]] int dirty() const { return dirty_; }
  [[nodiscard]] int level() const { return i_; }

 private:
  // Upper bound on free bit positions across all dimensions: at most k + 1
  // chosen-bit positions per side length, kMaxDims side lengths.
  static constexpr std::size_t kMaxFreeBits =
      static_cast<std::size_t>(kMaxDims) * (kMaxBitsPerDim + 1);

  void toggle(int x, int y) {
    planes_[static_cast<std::size_t>(y)] ^= std::uint32_t{1} << x;
    corner_[static_cast<std::size_t>(x)] ^= std::uint64_t{1} << y;
    if (y > dirty_) dirty_ = y;
  }

  // Rewrites dimension x's corner bits to `target` (bits within the [i, k)
  // window), toggling exactly the planes that differ.
  void set_dim(int x, std::uint64_t target) {
    std::uint64_t diff = corner_[static_cast<std::size_t>(x)] ^ target;
    if (diff == 0) return;
    const int top = bit_length(diff) - 1;
    if (top > dirty_) dirty_ = top;
    corner_[static_cast<std::size_t>(x)] = target;
    const std::uint32_t bit = std::uint32_t{1} << x;
    do {
      planes_[static_cast<std::size_t>(trailing_zeros(diff))] ^= bit;
      diff &= diff - 1;
    } while (diff != 0);
  }

  // Equation 1 base corner of dimension x with chosen bit P_x == j: bits
  // above j are the complement of the side length, bit j is 1, free bits
  // [i, j) start at 0. When l_x == 2^k the chosen bit j == k lies outside
  // the k-bit coordinate; the window mask drops it.
  [[nodiscard]] std::uint64_t base_for(std::uint64_t len, int j) const {
    return (keep_bits_from(~len, j + 1) | (std::uint64_t{1} << j)) & window_;
  }

  void choose(int t, int j) {
    p_[static_cast<std::size_t>(t)] = j;
    set_dim(t, base_for(r_.length(t), j));
  }

  // Algorithm 3 (EnumRectangles): choose a set bit P_t of l_t per dimension.
  // Dimensions before the pinned one must choose bits > i (uniqueness);
  // dimensions after it may choose bits >= i; the pinned one takes exactly i.
  void enum_rectangles(int t) {
    if (stopped_) return;
    if (t == u_.dims()) {
      comp_keys();
      return;
    }
    if (t == pin_) {
      choose(t, i_);
      enum_rectangles(t + 1);
      return;
    }
    const std::uint64_t len = r_.length(t);
    const int lowest = t < pin_ ? i_ + 1 : i_;
    for (int j = bit_length(len) - 1; j >= lowest && !stopped_; --j) {
      if (bit_at(len, j)) {
        choose(t, j);
        enum_rectangles(t + 1);
      }
    }
  }

  // Algorithm 2 (CompKeys) via Equation 1: enumerate the free-bit
  // combinations of the rectangle indexed by P in counting order, toggling
  // only the planes of the bits that changed between consecutive masks.
  void comp_keys() {
    std::size_t nfree = 0;
    for (int x = 0; x < u_.dims(); ++x) {
      const int px = p_[static_cast<std::size_t>(x)];
      for (int y = i_; y < px; ++y) free_bits_[nfree++] = {x, y};
    }
    // A rectangle holds 2^nfree cubes; saturate the counter for nfree >= 64 —
    // the per-call cube budget stops enumeration long before overflow.
    const std::uint64_t combos =
        nfree >= 64 ? ~std::uint64_t{0} : std::uint64_t{1} << nfree;
    for (std::uint64_t mask = 0;;) {
      if (++emitted_ > max_cubes_)
        throw std::length_error("enumerate_level_cubes: cube budget exceeded");
      const bool go = emit_(*this);
      dirty_ = i_ - 1;  // nothing changed since this emission (yet)
      if (!go) {
        stopped_ = true;
        return;
      }
      if (++mask == combos) break;
      // Counting step mask-1 -> mask flips a trailing block of free bits.
      std::uint64_t changed = mask ^ (mask - 1);
      do {
        const auto [x, y] = free_bits_[static_cast<std::size_t>(trailing_zeros(changed))];
        toggle(x, y);
        changed &= changed - 1;
      } while (changed != 0);
    }
    // The loop ends with every free bit set; clear them so the next
    // rectangle's chosen-bit moves diff against the Equation-1 base.
    for (std::size_t b = 0; b < nfree; ++b) toggle(free_bits_[b].first, free_bits_[b].second);
  }

  const universe& u_;
  const extremal_rect& r_;
  const int i_;
  Emitter& emit_;
  const std::uint64_t max_cubes_;
  const std::uint64_t window_;  // coordinate bits in [i, k)
  int pin_ = 0;
  int dirty_;
  bool stopped_ = false;
  std::uint64_t emitted_ = 0;
  std::array<std::uint32_t, kMaxBitsPerDim> planes_{};
  std::array<std::uint64_t, kMaxDims> corner_{};
  std::array<int, kMaxDims> p_{};
  // Free bits of the current rectangle, dimension-major, positions
  // ascending. Deliberately not value-initialized: only the first `nfree`
  // slots of a comp_keys pass are ever read, and zeroing ~8 KiB per level
  // would dominate small levels.
  std::array<std::pair<int, int>, kMaxFreeBits> free_bits_;
};

// Turns the bit planes into Equation-1 cube keys at the curve's width.
// Keeps one (prefix, state) pair per tree level and recomputes only levels
// at or below the walk's dirty watermark, so a free-bit flip near the
// bottom of the tree costs O(d) — no corner arrays, no cube_prefix.
//
// A tracker is reusable across walks (set_level rebinds it): every fresh
// level_walk starts with its watermark at k-1, which forces a full prefix
// recomputation on the first emission, so stale per-level caches are never
// read. query_plan exploits this to construct one emitter per query rather
// than one per level (the state stack's initialization is not free).
//
// The tracker is the shared ladder under both emitters below: range_emitter
// materializes full [lo, hi] intervals, lo_emitter hands the visitor just
// the cube's low key. At a fixed level every cube's extent is the constant
// level_mask(), so a consumer that keeps column scratch (query_plan's
// struct-of-arrays frontier) needs only the lows — the his are lo | mask,
// derived in bulk after enumeration.
template <class K>
class prefix_tracker {
 public:
  prefix_tracker(const basic_curve<K>& c, int i)
      : curve_(&c),
        i_(i),
        k_(c.space().bits()),
        d_(c.space().dims()),
        // Z derives child ranks from the selection mask alone and Gray from
        // the parent prefix's parity, so only those two skip the per-level
        // state stack. curve_kind is a closed enum every basic_curve must
        // report, so an unlisted (future) curve defaults to the safe side:
        // state is threaded (correct for any curve, merely slower).
        track_state_(c.kind() != curve_kind::z_order && c.kind() != curve_kind::gray_code) {
    c.init_state(root_state_);
    if (track_state_ && k_ > 0) state_[static_cast<std::size_t>(k_ - 1)] = root_state_;
  }

  // Retargets the tracker at another level of the same region family.
  void set_level(int i) { i_ = i; }

  // Extent of every cube at the current level: hi == lo | level_mask().
  [[nodiscard]] K level_mask() const { return key_traits<K>::mask(d_ * std::min(i_, k_)); }

  // The current cube's low key (Equation 1 prefix shifted to the level).
  template <class Walk>
  K lo(const Walk& w) {
    const std::uint32_t* planes = w.planes();
    for (int y = std::min(w.dirty(), k_ - 1); y >= i_; --y) {
      const std::size_t yi = static_cast<std::size_t>(y);
      const curve_state& st = track_state_ ? state_[yi] : root_state_;
      const K above = y == k_ - 1 ? key_traits<K>::zero() : prefix_[yi + 1];
      const std::uint64_t rank = curve_->child_rank(above, st, planes[yi]);
      prefix_[yi] = (above << d_) | K(rank);
      if (track_state_ && y > i_) curve_->descend_state(st, planes[yi], state_[yi - 1]);
    }
    if (i_ >= k_) return key_traits<K>::zero();  // the whole-universe cube
    return prefix_[static_cast<std::size_t>(i_)] << (d_ * i_);
  }

 private:
  const basic_curve<K>* curve_;
  int i_;
  const int k_;
  const int d_;
  const bool track_state_;
  curve_state root_state_;
  // state_[y]: descent state entering tree level y (valid above the dirty
  // watermark); prefix_[y]: cube prefix including level y's digits.
  std::array<curve_state, kMaxBitsPerDim> state_;
  std::array<K, kMaxBitsPerDim> prefix_;
};

// Interval view: the visitor receives each cube as its full Equation-1 key
// interval [lo, lo | level_mask].
template <class K, class Visitor>
class range_emitter {
 public:
  range_emitter(const basic_curve<K>& c, int i, Visitor& visit) : tracker_(c, i), visit_(visit) {}

  void set_level(int i) { tracker_.set_level(i); }

  template <class Walk>
  bool operator()(const Walk& w) {
    basic_key_range<K> out;
    out.lo = tracker_.lo(w);
    out.hi = out.lo | tracker_.level_mask();
    if constexpr (std::is_convertible_v<decltype(visit_(out)), bool>) {
      return static_cast<bool>(visit_(out));
    } else {
      visit_(out);
      return true;
    }
  }

 private:
  prefix_tracker<K> tracker_;
  Visitor& visit_;
};

// Column view: the visitor receives only the cube's low key (a `const K&`),
// the form query_plan's struct-of-arrays level frontier stores — the hi
// column is never materialized during enumeration.
template <class K, class Visitor>
class lo_emitter {
 public:
  lo_emitter(const basic_curve<K>& c, int i, Visitor& visit) : tracker_(c, i), visit_(visit) {}

  void set_level(int i) { tracker_.set_level(i); }

  [[nodiscard]] K level_mask() const { return tracker_.level_mask(); }

  template <class Walk>
  bool operator()(const Walk& w) {
    const K lo = tracker_.lo(w);
    if constexpr (std::is_convertible_v<decltype(visit_(lo)), bool>) {
      return static_cast<bool>(visit_(lo));
    } else {
      visit_(lo);
      return true;
    }
  }

 private:
  prefix_tracker<K> tracker_;
  Visitor& visit_;
};

// The curve-independent standard_cube view over the walk, for callers that
// want coordinates (tests, benches, cross-checks against the closed forms).
template <class Visitor>
class cube_emitter {
 public:
  cube_emitter(int dims, int i, Visitor& visit) : d_(dims), i_(i), visit_(visit) {}

  template <class Walk>
  bool operator()(const Walk& w) {
    point corner(d_);
    for (int x = 0; x < d_; ++x) corner[x] = static_cast<std::uint32_t>(w.corner_bits(x));
    return visit_cube(visit_, standard_cube(corner, i_));
  }

 private:
  const int d_;
  const int i_;
  Visitor& visit_;
};

}  // namespace detail

// Enumerates the standard cubes of D_i (side 2^i) of the minimal partition of
// R(l), using the paper's Algorithms 1-3: rectangles of D_i are indexed by a
// bit-position vector P (one chosen set bit of each side length), and cube
// corners inside a rectangle follow Equation 1 of Section 5.
// `visit` is any callable taking `const standard_cube&`; returning false
// (for bool-returning visitors) stops the enumeration early.
// Throws std::length_error if the level holds more than `max_cubes` cubes.
template <class Visitor>
void enumerate_level_cubes(const universe& u, const extremal_rect& r, int i, Visitor&& visit,
                           std::uint64_t max_cubes = std::uint64_t{1} << 32) {
  SUBCOVER_CHECK(r.dims() == u.dims(), "enumerate_level_cubes: dims mismatch");
  SUBCOVER_CHECK(i >= 0 && i <= u.bits(), "enumerate_level_cubes: level out of range");
  if (!level_occupied(r, i)) return;
  auto& v = visit;
  detail::cube_emitter<std::remove_reference_t<Visitor>> emit(u.dims(), i, v);
  detail::level_walk<decltype(emit)>(u, r, i, emit, max_cubes).run();
}

// Corner-free enumeration of the same cubes, in the same order, as their
// Fact 2.1 key intervals on `curve` — the query planner's hot path. `visit`
// is any callable taking `const basic_key_range<K>&`; returning false (for
// bool-returning visitors) stops the enumeration early.
// Throws std::length_error if the level holds more than `max_cubes` cubes.
template <class K, class Visitor>
void enumerate_level_ranges(const basic_curve<K>& curve, const extremal_rect& r, int i,
                            Visitor&& visit,
                            std::uint64_t max_cubes = std::uint64_t{1} << 32) {
  SUBCOVER_CHECK(r.dims() == curve.space().dims(), "enumerate_level_ranges: dims mismatch");
  SUBCOVER_CHECK(i >= 0 && i <= curve.space().bits(),
                 "enumerate_level_ranges: level out of range");
  if (!level_occupied(r, i)) return;
  auto& v = visit;
  detail::range_emitter<K, std::remove_reference_t<Visitor>> emit(curve, i, v);
  detail::level_walk<decltype(emit)>(curve.space(), r, i, emit, max_cubes).run();
}

// Enumerates all cubes of the minimal partition in descending cube size
// (levels i = k down to 0), the probe order of the Section 5 query algorithm.
// Throws std::length_error if the partition exceeds `max_cubes` cubes.
template <class Visitor>
void enumerate_cubes_descending(const universe& u, const extremal_rect& r, Visitor&& visit,
                                std::uint64_t max_cubes = std::uint64_t{1} << 32) {
  std::uint64_t budget = max_cubes;
  bool stopped = false;
  for (int i = u.bits(); i >= 0 && !stopped; --i) {
    std::uint64_t level_count = 0;
    enumerate_level_cubes(
        u, r, i,
        [&](const standard_cube& c) {
          ++level_count;
          if (!detail::visit_cube(visit, c)) {
            stopped = true;
            return false;
          }
          return true;
        },
        budget);
    budget -= level_count;
  }
}

}  // namespace subcover
