// Decomposition machinery specialized to extremal rectangles R(l):
// the paper's level sets D_i, the exact per-level cube counts of Lemma 3.5,
// and the enumeration Algorithms 1-3 of Section 5 / Appendix A.
//
// The greedy partition of R(l) is structured (Lemma 3.4): cubes of side 2^i
// exist only for levels i where some side length has bit i set (indicator
// O_i), and the cubes of side >= 2^i tile exactly the extremal rectangle
// R(S_i(l)). This lets the query engine enumerate cubes strictly in
// descending volume order (the search order of the Section 5 algorithm) and
// lets benches compute cube counts in closed form without enumeration.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/extremal.h"
#include "geometry/universe.h"
#include "sfc/decomposition.h"
#include "util/wideint.h"

namespace subcover {

// O_i of Lemma 3.4: true iff some side length of r has bit i set.
bool level_occupied(const extremal_rect& r, int i);

// Exact |D_i| for every i in [0, k] via the Lemma 3.5 closed form
//   N_i = (prod_j S_i(l_j) - prod_j S_{i+1}(l_j)) / 2^(i*d).
// result[i] = number of cubes of side 2^i in the minimal partition of R(l).
std::vector<u512> extremal_level_counts(const universe& u, const extremal_rect& r);

// cubes(R(l)): total size of the minimal partition, exact.
u512 extremal_cube_count(const universe& u, const extremal_rect& r);

// Enumerates the standard cubes of D_i (side 2^i) of the minimal partition of
// R(l), using the paper's Algorithms 1-3: rectangles of D_i are indexed by a
// bit-position vector P (one chosen set bit of each side length), and cube
// corners inside a rectangle follow Equation 1 of Section 5.
// Throws std::length_error if the level holds more than `max_cubes` cubes.
void enumerate_level_cubes(const universe& u, const extremal_rect& r, int i,
                           const cube_visitor& visit,
                           std::uint64_t max_cubes = std::uint64_t{1} << 32);

// Enumerates all cubes of the minimal partition in descending cube size
// (levels i = k down to 0), the probe order of the Section 5 query algorithm.
// Throws std::length_error if the partition exceeds `max_cubes` cubes.
void enumerate_cubes_descending(const universe& u, const extremal_rect& r,
                                const cube_visitor& visit,
                                std::uint64_t max_cubes = std::uint64_t{1} << 32);

}  // namespace subcover
