// Decomposition machinery specialized to extremal rectangles R(l):
// the paper's level sets D_i, the exact per-level cube counts of Lemma 3.5,
// and the enumeration Algorithms 1-3 of Section 5 / Appendix A.
//
// The greedy partition of R(l) is structured (Lemma 3.4): cubes of side 2^i
// exist only for levels i where some side length has bit i set (indicator
// O_i), and the cubes of side >= 2^i tile exactly the extremal rectangle
// R(S_i(l)). This lets the query engine enumerate cubes strictly in
// descending volume order (the search order of the Section 5 algorithm) and
// lets benches compute cube counts in closed form without enumeration.
//
// Enumeration is push-style with a template visitor (no std::function, no
// heap allocation: the enumerator's scratch is fixed-size). A visitor
// returning bool can stop a level cleanly by returning false — that is how
// the query planner takes exactly the number of cubes it needs from a level
// without exception-based control flow.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "geometry/extremal.h"
#include "geometry/universe.h"
#include "sfc/decomposition.h"
#include "util/bitops.h"
#include "util/check.h"
#include "util/wideint.h"

namespace subcover {

// O_i of Lemma 3.4: true iff some side length of r has bit i set.
bool level_occupied(const extremal_rect& r, int i);

// Exact |D_i| for every i in [0, k] via the Lemma 3.5 closed form
//   N_i = (prod_j S_i(l_j) - prod_j S_{i+1}(l_j)) / 2^(i*d).
// result[i] = number of cubes of side 2^i in the minimal partition of R(l).
std::vector<u512> extremal_level_counts(const universe& u, const extremal_rect& r);

// Same, writing into a caller-owned buffer (resized to k + 1) so repeated
// queries reuse its capacity instead of reallocating.
void extremal_level_counts_into(const universe& u, const extremal_rect& r,
                                std::vector<u512>& out);

// cubes(R(l)): total size of the minimal partition, exact.
u512 extremal_cube_count(const universe& u, const extremal_rect& r);

namespace detail {

// Implements Algorithms 1-3 (Appendix A) for one level i.
template <class Visitor>
class level_enumerator {
 public:
  level_enumerator(const universe& u, const extremal_rect& r, int i, Visitor& visit,
                   std::uint64_t max_cubes)
      : u_(u), r_(r), i_(i), visit_(visit), max_cubes_(max_cubes) {}

  void run() {
    // Algorithm 1: each rectangle of D_i has exactly one lowest-index
    // dimension s whose chosen bit P_s equals i.
    for (int s = 0; s < u_.dims() && !stopped_; ++s) {
      if (bit_at(r_.length(s), i_)) {
        pin_ = s;
        enum_rectangles(0);
      }
    }
  }

 private:
  // Upper bound on free bit positions across all dimensions: at most k + 1
  // chosen-bit positions per side length, kMaxDims side lengths.
  static constexpr std::size_t kMaxFreeBits =
      static_cast<std::size_t>(kMaxDims) * (kMaxBitsPerDim + 1);

  // Algorithm 3 (EnumRectangles): choose a set bit P_t of l_t per dimension.
  // Dimensions before the pinned one must choose bits > i (uniqueness);
  // dimensions after it may choose bits >= i; the pinned one takes exactly i.
  void enum_rectangles(int t) {
    if (stopped_) return;
    if (t == u_.dims()) {
      comp_keys();
      return;
    }
    if (t == pin_) {
      p_[static_cast<std::size_t>(t)] = i_;
      enum_rectangles(t + 1);
      return;
    }
    const std::uint64_t len = r_.length(t);
    const int lowest = t < pin_ ? i_ + 1 : i_;
    for (int j = bit_length(len) - 1; j >= lowest && !stopped_; --j) {
      if (bit_at(len, j)) {
        p_[static_cast<std::size_t>(t)] = j;
        enum_rectangles(t + 1);
      }
    }
  }

  // Algorithm 2 (CompKeys) via Equation 1: inside the rectangle indexed by P,
  // cube corner coordinates have, per dimension x (writing l = l_x, P = P_x):
  //   bits y in (P, k-1]  : complement of l's bit y
  //   bit  y == P         : 1
  //   bits y in [i, P)    : free (enumerate both values)
  //   bits y in [0, i)    : 0 (corner alignment of a side-2^i cube)
  // When l_x == 2^k the chosen bit is P == k, which lies outside the k-bit
  // coordinate; building in 64 bits and masking to k bits handles it.
  void comp_keys() {
    const int d = u_.dims();
    const std::uint64_t coord_mask = u_.side() - 1;
    std::array<std::uint64_t, kMaxDims> base{};
    std::size_t nfree = 0;
    for (int x = 0; x < d; ++x) {
      const std::uint64_t len = r_.length(x);
      const int px = p_[static_cast<std::size_t>(x)];
      std::uint64_t c = ~len;  // bits above px will be kept from here
      c = keep_bits_from(c, px + 1);
      c |= std::uint64_t{1} << px;
      base[static_cast<std::size_t>(x)] = c & coord_mask;
      for (int y = i_; y < px; ++y) free_bits_[nfree++] = {x, y};
    }
    // A rectangle holds 2^nfree cubes; saturate the counter for nfree >= 64 —
    // the per-call cube budget below stops enumeration long before overflow.
    const std::uint64_t combos =
        nfree >= 64 ? ~std::uint64_t{0} : std::uint64_t{1} << nfree;
    for (std::uint64_t mask = 0; mask < combos; ++mask) {
      std::array<std::uint64_t, kMaxDims> c = base;
      for (std::size_t b = 0; b < nfree; ++b) {
        if ((mask >> b) & 1U) {
          const auto [dim, pos] = free_bits_[b];
          c[static_cast<std::size_t>(dim)] |= std::uint64_t{1} << pos;
        }
      }
      point corner(d);
      for (int x = 0; x < d; ++x)
        corner[x] = static_cast<std::uint32_t>(c[static_cast<std::size_t>(x)]);
      if (++emitted_ > max_cubes_)
        throw std::length_error("enumerate_level_cubes: cube budget exceeded");
      if (!visit_cube(visit_, standard_cube(corner, i_))) {
        stopped_ = true;
        return;
      }
    }
  }

  const universe& u_;
  const extremal_rect& r_;
  const int i_;
  Visitor& visit_;
  const std::uint64_t max_cubes_;
  int pin_ = 0;
  bool stopped_ = false;
  std::array<int, kMaxDims> p_{};
  std::array<std::pair<int, int>, kMaxFreeBits> free_bits_{};
  std::uint64_t emitted_ = 0;
};

}  // namespace detail

// Enumerates the standard cubes of D_i (side 2^i) of the minimal partition of
// R(l), using the paper's Algorithms 1-3: rectangles of D_i are indexed by a
// bit-position vector P (one chosen set bit of each side length), and cube
// corners inside a rectangle follow Equation 1 of Section 5.
// `visit` is any callable taking `const standard_cube&`; returning false
// (for bool-returning visitors) stops the enumeration early.
// Throws std::length_error if the level holds more than `max_cubes` cubes.
template <class Visitor>
void enumerate_level_cubes(const universe& u, const extremal_rect& r, int i, Visitor&& visit,
                           std::uint64_t max_cubes = std::uint64_t{1} << 32) {
  SUBCOVER_CHECK(r.dims() == u.dims(), "enumerate_level_cubes: dims mismatch");
  SUBCOVER_CHECK(i >= 0 && i <= u.bits(), "enumerate_level_cubes: level out of range");
  if (!level_occupied(r, i)) return;
  auto& v = visit;
  detail::level_enumerator<std::remove_reference_t<Visitor>>(u, r, i, v, max_cubes).run();
}

// Enumerates all cubes of the minimal partition in descending cube size
// (levels i = k down to 0), the probe order of the Section 5 query algorithm.
// Throws std::length_error if the partition exceeds `max_cubes` cubes.
template <class Visitor>
void enumerate_cubes_descending(const universe& u, const extremal_rect& r, Visitor&& visit,
                                std::uint64_t max_cubes = std::uint64_t{1} << 32) {
  std::uint64_t budget = max_cubes;
  bool stopped = false;
  for (int i = u.bits(); i >= 0 && !stopped; --i) {
    std::uint64_t level_count = 0;
    enumerate_level_cubes(
        u, r, i,
        [&](const standard_cube& c) {
          ++level_count;
          if (!detail::visit_cube(visit, c)) {
            stopped = true;
            return false;
          }
          return true;
        },
        budget);
    budget -= level_count;
  }
}

}  // namespace subcover
