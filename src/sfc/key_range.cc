#include "sfc/key_range.h"

#include <algorithm>
#include <stdexcept>

namespace subcover {

key_range::key_range(u512 lo_in, u512 hi_in) : lo(lo_in), hi(hi_in) {
  if (lo > hi) throw std::invalid_argument("key_range: lo > hi");
}

std::string key_range::to_string() const {
  return "[" + lo.to_string() + ", " + hi.to_string() + "]";
}

void merge_ranges_inplace(std::vector<key_range>& ranges) {
  if (ranges.empty()) return;
  std::sort(ranges.begin(), ranges.end(),
            [](const key_range& a, const key_range& b) { return a.lo < b.lo; });
  std::size_t out = 0;  // ranges[0..out] is the merged prefix
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    key_range& last = ranges[out];
    const key_range cur = ranges[i];
    // Adjacent (last.hi + 1 == cur.lo) or overlapping ranges coalesce.
    // Guard the +1 against wrap-around at the maximum key.
    const bool adjacent = last.hi != u512::max() && last.hi + u512::one() >= cur.lo;
    if (adjacent || cur.lo <= last.hi) {
      last.hi = std::max(last.hi, cur.hi, [](const u512& a, const u512& b) { return a < b; });
    } else {
      ranges[++out] = cur;
    }
  }
  ranges.resize(out + 1);
}

std::vector<key_range> merge_ranges(std::vector<key_range> ranges) {
  merge_ranges_inplace(ranges);
  return ranges;
}

u512 total_cells(const std::vector<key_range>& ranges) {
  u512 total = 0;
  for (const auto& r : ranges) total += r.cell_count();
  return total;
}

}  // namespace subcover
