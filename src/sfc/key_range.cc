#include "sfc/key_range.h"

namespace subcover {

// Pre-instantiate the three key widths the pipeline uses so every TU links
// against one copy instead of re-instantiating the merge kernels.
template struct basic_key_range<std::uint64_t>;
template struct basic_key_range<u128>;
template struct basic_key_range<u512>;

template void merge_ranges_inplace(std::vector<basic_key_range<std::uint64_t>>&);
template void merge_ranges_inplace(std::vector<basic_key_range<u128>>&);
template void merge_ranges_inplace(std::vector<basic_key_range<u512>>&);

template std::vector<basic_key_range<std::uint64_t>> merge_ranges(
    std::vector<basic_key_range<std::uint64_t>>);
template std::vector<basic_key_range<u128>> merge_ranges(std::vector<basic_key_range<u128>>);
template std::vector<basic_key_range<u512>> merge_ranges(std::vector<basic_key_range<u512>>);

template std::uint64_t total_cells(const std::vector<basic_key_range<std::uint64_t>>&);
template u128 total_cells(const std::vector<basic_key_range<u128>>&);
template u512 total_cells(const std::vector<basic_key_range<u512>>&);

}  // namespace subcover
