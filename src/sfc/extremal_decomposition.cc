#include "sfc/extremal_decomposition.h"

#include <stdexcept>
#include <utility>

#include "util/bitops.h"
#include "util/check.h"

namespace subcover {

bool level_occupied(const extremal_rect& r, int i) {
  for (int j = 0; j < r.dims(); ++j)
    if (bit_at(r.length(j), i)) return true;
  return false;
}

std::vector<u512> extremal_level_counts(const universe& u, const extremal_rect& r) {
  SUBCOVER_CHECK(r.dims() == u.dims(), "extremal_level_counts: dims mismatch");
  const int d = u.dims();
  std::vector<u512> counts(static_cast<std::size_t>(u.bits()) + 1);
  // prod_at(i) = prod_j S_i(l_j); zero as soon as any masked side vanishes.
  auto prod_at = [&](int i) {
    u512 p = 1;
    for (int j = 0; j < d; ++j) {
      const std::uint64_t s = keep_bits_from(r.length(j), i);
      if (s == 0) return u512::zero();
      p = p.mul_u64(s);
    }
    return p;
  };
  u512 upper = prod_at(0);  // == volume of R(l)
  for (int i = 0; i <= u.bits(); ++i) {
    const u512 lower = prod_at(i + 1);
    // Lemma 3.5; the difference is always divisible by 2^(i*d).
    counts[static_cast<std::size_t>(i)] = (upper - lower) >> (i * d);
    upper = lower;
  }
  return counts;
}

u512 extremal_cube_count(const universe& u, const extremal_rect& r) {
  u512 total = 0;
  for (const auto& n : extremal_level_counts(u, r)) total += n;
  return total;
}

namespace {

// Implements Algorithms 1-3 (Appendix A) for one level i.
class level_enumerator {
 public:
  level_enumerator(const universe& u, const extremal_rect& r, int i, const cube_visitor& visit,
                   std::uint64_t max_cubes)
      : u_(u), r_(r), i_(i), visit_(visit), max_cubes_(max_cubes) {}

  void run() {
    // Algorithm 1: each rectangle of D_i has exactly one lowest-index
    // dimension s whose chosen bit P_s equals i.
    for (int s = 0; s < u_.dims(); ++s) {
      if (bit_at(r_.length(s), i_)) {
        pin_ = s;
        enum_rectangles(0);
      }
    }
  }

 private:
  // Algorithm 3 (EnumRectangles): choose a set bit P_t of l_t per dimension.
  // Dimensions before the pinned one must choose bits > i (uniqueness);
  // dimensions after it may choose bits >= i; the pinned one takes exactly i.
  void enum_rectangles(int t) {
    if (t == u_.dims()) {
      comp_keys();
      return;
    }
    if (t == pin_) {
      p_[static_cast<std::size_t>(t)] = i_;
      enum_rectangles(t + 1);
      return;
    }
    const std::uint64_t len = r_.length(t);
    const int lowest = t < pin_ ? i_ + 1 : i_;
    for (int j = bit_length(len) - 1; j >= lowest; --j) {
      if (bit_at(len, j)) {
        p_[static_cast<std::size_t>(t)] = j;
        enum_rectangles(t + 1);
      }
    }
  }

  // Algorithm 2 (CompKeys) via Equation 1: inside the rectangle indexed by P,
  // cube corner coordinates have, per dimension x (writing l = l_x, P = P_x):
  //   bits y in (P, k-1]  : complement of l's bit y
  //   bit  y == P         : 1
  //   bits y in [i, P)    : free (enumerate both values)
  //   bits y in [0, i)    : 0 (corner alignment of a side-2^i cube)
  // When l_x == 2^k the chosen bit is P == k, which lies outside the k-bit
  // coordinate; building in 64 bits and masking to k bits handles it.
  void comp_keys() {
    const int d = u_.dims();
    const std::uint64_t coord_mask = u_.side() - 1;
    std::array<std::uint64_t, kMaxDims> base{};
    free_bits_.clear();
    for (int x = 0; x < d; ++x) {
      const std::uint64_t len = r_.length(x);
      const int px = p_[static_cast<std::size_t>(x)];
      std::uint64_t c = ~len;  // bits above px will be kept from here
      c = keep_bits_from(c, px + 1);
      c |= std::uint64_t{1} << px;
      base[static_cast<std::size_t>(x)] = c & coord_mask;
      for (int y = i_; y < px; ++y) free_bits_.emplace_back(x, y);
    }
    const std::size_t f = free_bits_.size();
    // A rectangle holds 2^f cubes; saturate the counter for f >= 64 — the
    // per-call cube budget below stops enumeration long before overflow.
    const std::uint64_t combos =
        f >= 64 ? ~std::uint64_t{0} : std::uint64_t{1} << f;
    for (std::uint64_t mask = 0; mask < combos; ++mask) {
      std::array<std::uint64_t, kMaxDims> c = base;
      for (std::size_t b = 0; b < f; ++b) {
        if ((mask >> b) & 1U) {
          const auto [dim, pos] = free_bits_[b];
          c[static_cast<std::size_t>(dim)] |= std::uint64_t{1} << pos;
        }
      }
      point corner(d);
      for (int x = 0; x < d; ++x)
        corner[x] = static_cast<std::uint32_t>(c[static_cast<std::size_t>(x)]);
      if (++emitted_ > max_cubes_)
        throw std::length_error("enumerate_level_cubes: cube budget exceeded");
      visit_(standard_cube(corner, i_));
    }
  }

  const universe& u_;
  const extremal_rect& r_;
  const int i_;
  const cube_visitor& visit_;
  const std::uint64_t max_cubes_;
  int pin_ = 0;
  std::array<int, kMaxDims> p_{};
  std::vector<std::pair<int, int>> free_bits_;
  std::uint64_t emitted_ = 0;
};

}  // namespace

void enumerate_level_cubes(const universe& u, const extremal_rect& r, int i,
                           const cube_visitor& visit, std::uint64_t max_cubes) {
  SUBCOVER_CHECK(r.dims() == u.dims(), "enumerate_level_cubes: dims mismatch");
  SUBCOVER_CHECK(i >= 0 && i <= u.bits(), "enumerate_level_cubes: level out of range");
  if (!level_occupied(r, i)) return;
  level_enumerator(u, r, i, visit, max_cubes).run();
}

void enumerate_cubes_descending(const universe& u, const extremal_rect& r,
                                const cube_visitor& visit, std::uint64_t max_cubes) {
  std::uint64_t budget = max_cubes;
  for (int i = u.bits(); i >= 0; --i) {
    std::uint64_t level_count = 0;
    enumerate_level_cubes(
        u, r, i,
        [&](const standard_cube& c) {
          ++level_count;
          visit(c);
        },
        budget);
    budget -= level_count;
  }
}

}  // namespace subcover
