#include "sfc/extremal_decomposition.h"

namespace subcover {

bool level_occupied(const extremal_rect& r, int i) {
  for (int j = 0; j < r.dims(); ++j)
    if (bit_at(r.length(j), i)) return true;
  return false;
}

void extremal_level_counts_into(const universe& u, const extremal_rect& r,
                                std::vector<u512>& out) {
  SUBCOVER_CHECK(r.dims() == u.dims(), "extremal_level_counts: dims mismatch");
  const int d = u.dims();
  out.assign(static_cast<std::size_t>(u.bits()) + 1, u512::zero());
  // prod_at(i) = prod_j S_i(l_j); zero as soon as any masked side vanishes.
  auto prod_at = [&](int i) {
    u512 p = 1;
    for (int j = 0; j < d; ++j) {
      const std::uint64_t s = keep_bits_from(r.length(j), i);
      if (s == 0) return u512::zero();
      p = p.mul_u64(s);
    }
    return p;
  };
  u512 upper = prod_at(0);  // == volume of R(l)
  for (int i = 0; i <= u.bits(); ++i) {
    const u512 lower = prod_at(i + 1);
    // Lemma 3.5; the difference is always divisible by 2^(i*d).
    out[static_cast<std::size_t>(i)] = (upper - lower) >> (i * d);
    upper = lower;
    // Once a masked side vanishes every higher level is empty too; the
    // buffer is already zero there.
    if (lower.is_zero()) break;
  }
}

std::vector<u512> extremal_level_counts(const universe& u, const extremal_rect& r) {
  std::vector<u512> counts;
  extremal_level_counts_into(u, r, counts);
  return counts;
}

u512 extremal_cube_count(const universe& u, const extremal_rect& r) {
  u512 total = 0;
  for (const auto& n : extremal_level_counts(u, r)) total += n;
  return total;
}

}  // namespace subcover
