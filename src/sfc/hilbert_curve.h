// Hilbert space filling curve in d dimensions [Hil91].
//
// Implementation uses John Skilling's transpose algorithm ("Programming the
// Hilbert curve", AIP Conf. Proc. 707, 2004): coordinates are transformed in
// place into the "transposed" representation of the Hilbert index, which is
// then bit-interleaved into a single key. The transform processes bit levels
// most-significant first, so the prefix property required by `curve` holds:
// the first d*l key bits of any cell equal the level-l cube prefix (verified
// exhaustively in tests).
#pragma once

#include "sfc/curve.h"

namespace subcover {

class hilbert_curve final : public curve {
 public:
  explicit hilbert_curve(const universe& u) : curve(u) {}

  [[nodiscard]] curve_kind kind() const override { return curve_kind::hilbert; }
  [[nodiscard]] u512 cube_prefix(const standard_cube& c) const override;
  [[nodiscard]] point cell_from_key(const u512& key) const override;
};

}  // namespace subcover
