// Hilbert space filling curve in d dimensions [Hil91].
//
// Implementation uses John Skilling's transpose algorithm ("Programming the
// Hilbert curve", AIP Conf. Proc. 707, 2004): coordinates are transformed in
// place into the "transposed" representation of the Hilbert index, which is
// then bit-interleaved into a single key. The transform processes bit levels
// most-significant first, so the prefix property required by `curve` holds:
// the first d*l key bits of any cell equal the level-l cube prefix (verified
// exhaustively in tests).
//
// child_rank closed form: every per-level step of Skilling's transform
// either inverts axis 0 below the current level or swaps the low bits of
// axis 0 and axis i — both elements of the signed permutation group acting
// on the remaining (lower) levels. The accumulated transform along a
// descent path is therefore a signed axis permutation (curve_state.perm /
// .flip), and the final cross-axis Gray encode plus the trailing parity
// correction act level-locally given the accumulated parity of the
// transposed digits (curve_state.parity). Threading that state through
// cube_stream's frames makes a child's key rank an O(d) bit computation —
// matching the Z/Gray fast path instead of recomputing a full cube_prefix
// per child (exhaustively verified against cube_prefix in the tests).
#pragma once

#include "sfc/curve.h"

namespace subcover {

template <class K>
class basic_hilbert_curve final : public basic_curve<K> {
 public:
  explicit basic_hilbert_curve(const universe& u) : basic_curve<K>(u) {}

  [[nodiscard]] curve_kind kind() const override { return curve_kind::hilbert; }
  [[nodiscard]] K cube_prefix(const standard_cube& c) const override;
  [[nodiscard]] point cell_from_key(const K& key) const override;
  // O(d) via the descent state (see file comment).
  [[nodiscard]] std::uint64_t child_rank(const K& parent_prefix, const curve_state& state,
                                         std::uint32_t child_mask) const override;
  void descend_state(const curve_state& parent, std::uint32_t child_mask,
                     curve_state& child) const override;

 private:
  // The transposed digits of the child selected by `child_mask` under the
  // accumulated signed permutation: bit i is Skilling's x[i] at this level.
  [[nodiscard]] std::uint32_t transposed_digits(const curve_state& state,
                                                std::uint32_t child_mask) const;
};

using hilbert_curve = basic_hilbert_curve<u512>;

extern template class basic_hilbert_curve<std::uint64_t>;
extern template class basic_hilbert_curve<u128>;
extern template class basic_hilbert_curve<u512>;

}  // namespace subcover
