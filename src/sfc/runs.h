// Runs of a region on a space filling curve (paper Section 2).
//
// runs(T) is the minimum number of maximal contiguous key intervals whose
// union is exactly the cells of T. It is computed by mapping the minimal
// standard-cube partition to key intervals (Fact 2.1) and coalescing
// adjacent intervals; because the cubes tile T exactly, the coalesced set is
// the unique set of maximal runs. Lemma 3.1: runs(T) <= cubes(T).
//
// run_stream computes the runs *incrementally*: it pulls cubes from a
// key-ordered cube_stream and merges back-to-back key intervals on the fly,
// emitting each maximal run as soon as it is complete. Nothing is
// materialized — memory is O(universe depth) regardless of how many runs the
// region has, and a warmed (reused) stream performs no heap allocation.
// region_runs()/count_runs() are thin wrappers over run_stream.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/extremal.h"
#include "geometry/rect.h"
#include "sfc/curve.h"
#include "sfc/decomposition.h"
#include "sfc/key_range.h"

namespace subcover {

// Streams the maximal runs of a region in ascending key order without
// materializing the cube decomposition. Reusable via reset() with the same
// allocation-free contract as cube_stream; not thread-safe.
class run_stream {
 public:
  explicit run_stream(const curve& c) : cubes_(c) {}
  run_stream(const curve& c, const rect& r) : cubes_(c) { reset(r); }

  // Rebinds to a new region. Throws std::invalid_argument if the region
  // lies outside the universe.
  void reset(const rect& r) {
    cubes_.reset(r);
    has_pending_ = false;
  }

  // Emits the next maximal run, in ascending key order; false when done.
  bool next(key_range* out);

  [[nodiscard]] const curve& sfc() const { return cubes_.sfc(); }

 private:
  cube_stream cubes_;
  key_range pending_;        // run being grown; valid iff has_pending_
  bool has_pending_ = false;
};

// One key interval per cube of the minimal partition of `r` (unmerged, in
// decomposition order).
std::vector<key_range> region_cube_ranges(const curve& c, const rect& r);

// The maximal runs of `r` on the curve: merged, sorted by lo, disjoint.
std::vector<key_range> region_runs(const curve& c, const rect& r);

// runs(r) — the paper's cost measure for an exhaustive search of r.
std::uint64_t count_runs(const curve& c, const rect& r);

// Convenience overloads for extremal rectangles.
std::vector<key_range> region_runs(const curve& c, const extremal_rect& r);
std::uint64_t count_runs(const curve& c, const extremal_rect& r);

}  // namespace subcover
