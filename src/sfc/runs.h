// Runs of a region on a space filling curve (paper Section 2).
//
// runs(T) is the minimum number of maximal contiguous key intervals whose
// union is exactly the cells of T. It is computed by mapping the minimal
// standard-cube partition to key intervals (Fact 2.1) and coalescing
// adjacent intervals; because the cubes tile T exactly, the coalesced set is
// the unique set of maximal runs. Lemma 3.1: runs(T) <= cubes(T).
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/extremal.h"
#include "geometry/rect.h"
#include "sfc/curve.h"
#include "sfc/key_range.h"

namespace subcover {

// One key interval per cube of the minimal partition of `r` (unmerged).
std::vector<key_range> region_cube_ranges(const curve& c, const rect& r);

// The maximal runs of `r` on the curve: merged, sorted by lo, disjoint.
std::vector<key_range> region_runs(const curve& c, const rect& r);

// runs(r) — the paper's cost measure for an exhaustive search of r.
std::uint64_t count_runs(const curve& c, const rect& r);

// Convenience overloads for extremal rectangles.
std::vector<key_range> region_runs(const curve& c, const extremal_rect& r);
std::uint64_t count_runs(const curve& c, const extremal_rect& r);

}  // namespace subcover
