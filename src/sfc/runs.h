// Runs of a region on a space filling curve (paper Section 2).
//
// runs(T) is the minimum number of maximal contiguous key intervals whose
// union is exactly the cells of T. It is computed by mapping the minimal
// standard-cube partition to key intervals (Fact 2.1) and coalescing
// adjacent intervals; because the cubes tile T exactly, the coalesced set is
// the unique set of maximal runs. Lemma 3.1: runs(T) <= cubes(T).
//
// basic_run_stream<K> computes the runs *incrementally*: it pulls cubes from
// a key-ordered basic_cube_stream<K> and merges back-to-back key intervals
// on the fly, emitting each maximal run as soon as it is complete. Nothing
// is materialized — memory is O(universe depth) regardless of how many runs
// the region has, and a warmed (reused) stream performs no heap allocation.
// The stream runs at the key width of the curve it is bound to
// (key_traits.h), so on narrow universes every coalescing compare and
// endpoint increment is one or two machine words. region_runs()/
// count_runs() are thin wrappers over run_stream at any width.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/extremal.h"
#include "geometry/rect.h"
#include "sfc/curve.h"
#include "sfc/decomposition.h"
#include "sfc/key_range.h"

namespace subcover {

// Streams the maximal runs of a region in ascending key order without
// materializing the cube decomposition. Reusable via reset() with the same
// allocation-free contract as cube_stream; not thread-safe.
template <class K>
class basic_run_stream {
 public:
  using key_type = K;
  using curve_type = basic_curve<K>;
  using range_type = basic_key_range<K>;

  explicit basic_run_stream(const curve_type& c) : cubes_(c) {}
  basic_run_stream(const curve_type& c, const rect& r) : cubes_(c) { reset(r); }

  // Rebinds to a new region. Throws std::invalid_argument if the region
  // lies outside the universe.
  void reset(const rect& r) {
    cubes_.reset(r);
    has_pending_ = false;
  }

  // Emits the next maximal run, in ascending key order; false when done.
  bool next(range_type* out);

  [[nodiscard]] const curve_type& sfc() const { return cubes_.sfc(); }

 private:
  basic_cube_stream<K> cubes_;
  range_type pending_;       // run being grown; valid iff has_pending_
  bool has_pending_ = false;
};

using run_stream = basic_run_stream<u512>;

extern template class basic_run_stream<std::uint64_t>;
extern template class basic_run_stream<u128>;
extern template class basic_run_stream<u512>;

// One key interval per cube of the minimal partition of `r` (unmerged, in
// decomposition order).
template <class K>
std::vector<basic_key_range<K>> region_cube_ranges(const basic_curve<K>& c, const rect& r);

// The maximal runs of `r` on the curve: merged, sorted by lo, disjoint.
template <class K>
std::vector<basic_key_range<K>> region_runs(const basic_curve<K>& c, const rect& r);

// runs(r) — the paper's cost measure for an exhaustive search of r.
template <class K>
std::uint64_t count_runs(const basic_curve<K>& c, const rect& r);

// Convenience overloads for extremal rectangles.
template <class K>
std::vector<basic_key_range<K>> region_runs(const basic_curve<K>& c, const extremal_rect& r);
template <class K>
std::uint64_t count_runs(const basic_curve<K>& c, const extremal_rect& r);

#define SUBCOVER_RUNS_EXTERN(K)                                                          \
  extern template std::vector<basic_key_range<K>> region_cube_ranges(const basic_curve<K>&, \
                                                                     const rect&);       \
  extern template std::vector<basic_key_range<K>> region_runs(const basic_curve<K>&,     \
                                                              const rect&);              \
  extern template std::uint64_t count_runs(const basic_curve<K>&, const rect&);          \
  extern template std::vector<basic_key_range<K>> region_runs(const basic_curve<K>&,     \
                                                              const extremal_rect&);     \
  extern template std::uint64_t count_runs(const basic_curve<K>&, const extremal_rect&);
SUBCOVER_RUNS_EXTERN(std::uint64_t)
SUBCOVER_RUNS_EXTERN(u128)
SUBCOVER_RUNS_EXTERN(u512)
#undef SUBCOVER_RUNS_EXTERN

}  // namespace subcover
