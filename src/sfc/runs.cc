#include "sfc/runs.h"

namespace subcover {

template <class K>
bool basic_run_stream<K>::next(range_type* out) {
  range_type kr;
  while (cubes_.next_range(&kr)) {
    if (!has_pending_) {
      pending_ = kr;
      has_pending_ = true;
      continue;
    }
    // Cubes arrive in key order and tile the region, so kr.lo > pending_.hi;
    // back-to-back intervals coalesce. (pending_.hi cannot be the maximum
    // key here — a later cube's interval lies strictly above it.)
    if (pending_.hi + key_traits<K>::one() == kr.lo) {
      pending_.hi = kr.hi;
      continue;
    }
    *out = pending_;
    pending_ = kr;
    return true;
  }
  if (has_pending_) {
    *out = pending_;
    has_pending_ = false;
    return true;
  }
  return false;
}

template <class K>
std::vector<basic_key_range<K>> region_cube_ranges(const basic_curve<K>& c, const rect& r) {
  std::vector<basic_key_range<K>> ranges;
  decompose_rect(c.space(), r, [&](const standard_cube& cube) {
    ranges.push_back(c.cube_range(cube));
  });
  return ranges;
}

template <class K>
std::vector<basic_key_range<K>> region_runs(const basic_curve<K>& c, const rect& r) {
  std::vector<basic_key_range<K>> runs;
  basic_run_stream<K> stream(c, r);
  basic_key_range<K> run;
  while (stream.next(&run)) runs.push_back(run);
  return runs;
}

template <class K>
std::uint64_t count_runs(const basic_curve<K>& c, const rect& r) {
  basic_run_stream<K> stream(c, r);
  std::uint64_t n = 0;
  basic_key_range<K> run;
  while (stream.next(&run)) ++n;
  return n;
}

template <class K>
std::vector<basic_key_range<K>> region_runs(const basic_curve<K>& c, const extremal_rect& r) {
  return region_runs(c, r.to_rect(c.space()));
}

template <class K>
std::uint64_t count_runs(const basic_curve<K>& c, const extremal_rect& r) {
  return count_runs(c, r.to_rect(c.space()));
}

template class basic_run_stream<std::uint64_t>;
template class basic_run_stream<u128>;
template class basic_run_stream<u512>;

#define SUBCOVER_RUNS_INST(K)                                                          \
  template std::vector<basic_key_range<K>> region_cube_ranges(const basic_curve<K>&,   \
                                                              const rect&);            \
  template std::vector<basic_key_range<K>> region_runs(const basic_curve<K>&, const rect&); \
  template std::uint64_t count_runs(const basic_curve<K>&, const rect&);               \
  template std::vector<basic_key_range<K>> region_runs(const basic_curve<K>&,          \
                                                       const extremal_rect&);          \
  template std::uint64_t count_runs(const basic_curve<K>&, const extremal_rect&);
SUBCOVER_RUNS_INST(std::uint64_t)
SUBCOVER_RUNS_INST(u128)
SUBCOVER_RUNS_INST(u512)
#undef SUBCOVER_RUNS_INST

}  // namespace subcover
