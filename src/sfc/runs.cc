#include "sfc/runs.h"

namespace subcover {

bool run_stream::next(key_range* out) {
  standard_cube c;
  key_range kr;
  while (cubes_.next(&c, &kr)) {
    if (!has_pending_) {
      pending_ = kr;
      has_pending_ = true;
      continue;
    }
    // Cubes arrive in key order and tile the region, so kr.lo > pending_.hi;
    // back-to-back intervals coalesce. (pending_.hi cannot be the maximum
    // key here — a later cube's interval lies strictly above it.)
    if (pending_.hi + u512::one() == kr.lo) {
      pending_.hi = kr.hi;
      continue;
    }
    *out = pending_;
    pending_ = kr;
    return true;
  }
  if (has_pending_) {
    *out = pending_;
    has_pending_ = false;
    return true;
  }
  return false;
}

std::vector<key_range> region_cube_ranges(const curve& c, const rect& r) {
  std::vector<key_range> ranges;
  decompose_rect(c.space(), r, [&](const standard_cube& cube) {
    ranges.push_back(c.cube_range(cube));
  });
  return ranges;
}

std::vector<key_range> region_runs(const curve& c, const rect& r) {
  std::vector<key_range> runs;
  run_stream stream(c, r);
  key_range run;
  while (stream.next(&run)) runs.push_back(run);
  return runs;
}

std::uint64_t count_runs(const curve& c, const rect& r) {
  run_stream stream(c, r);
  std::uint64_t n = 0;
  key_range run;
  while (stream.next(&run)) ++n;
  return n;
}

std::vector<key_range> region_runs(const curve& c, const extremal_rect& r) {
  return region_runs(c, r.to_rect(c.space()));
}

std::uint64_t count_runs(const curve& c, const extremal_rect& r) {
  return count_runs(c, r.to_rect(c.space()));
}

}  // namespace subcover
