#include "sfc/runs.h"

#include "sfc/decomposition.h"

namespace subcover {

std::vector<key_range> region_cube_ranges(const curve& c, const rect& r) {
  std::vector<key_range> ranges;
  decompose_rect(c.space(), r, [&](const standard_cube& cube) {
    ranges.push_back(c.cube_range(cube));
  });
  return ranges;
}

std::vector<key_range> region_runs(const curve& c, const rect& r) {
  return merge_ranges(region_cube_ranges(c, r));
}

std::uint64_t count_runs(const curve& c, const rect& r) {
  return static_cast<std::uint64_t>(region_runs(c, r).size());
}

std::vector<key_range> region_runs(const curve& c, const extremal_rect& r) {
  return region_runs(c, r.to_rect(c.space()));
}

std::uint64_t count_runs(const curve& c, const extremal_rect& r) {
  return count_runs(c, r.to_rect(c.space()));
}

}  // namespace subcover
