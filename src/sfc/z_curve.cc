#include "sfc/z_curve.h"

#include <array>

#include "sfc/interleave.h"

namespace subcover {

u512 z_curve::cube_prefix(const standard_cube& c) const {
  check_cube(c);
  const int d = space().dims();
  const int prefix_bits = space().bits() - c.side_bits();
  std::array<std::uint32_t, kMaxDims> top{};
  for (int i = 0; i < d; ++i)
    top[static_cast<std::size_t>(i)] = c.corner()[i] >> c.side_bits();
  return detail::interleave_bits(top.data(), d, prefix_bits);
}

std::uint64_t z_curve::child_rank(const standard_cube& parent, const u512& parent_prefix,
                                  std::uint32_t child_mask) const {
  (void)parent_prefix;
  const int d = space().dims();
  std::uint64_t rank = 0;
  for (int j = 0; j < d; ++j)
    if ((child_mask >> j) & 1U) rank |= std::uint64_t{1} << (d - 1 - j);
  return rank;
}

point z_curve::cell_from_key(const u512& key) const {
  check_key(key);
  const int d = space().dims();
  std::array<std::uint32_t, kMaxDims> coords{};
  detail::deinterleave_bits(key, coords.data(), d, space().bits());
  point p(d);
  for (int i = 0; i < d; ++i) p[i] = coords[static_cast<std::size_t>(i)];
  return p;
}

}  // namespace subcover
