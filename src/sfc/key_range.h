// A run on a space filling curve: a closed interval [lo, hi] of SFC keys.
//
// The cost model of the paper counts runs: probing whether any indexed point
// falls inside a run takes two comparisons in the SFC array regardless of the
// run's extent (Section 2), so query cost == number of runs probed.
//
// The interval is templated on the key type (key_traits.h): basic_key_range
// over std::uint64_t or u128 is what the narrow-key query pipeline sorts,
// coalesces and probes, at one or two machine words per endpoint instead of
// u512's eight. `key_range` remains the u512 alias the public API speaks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/key_traits.h"
#include "util/wideint.h"

namespace subcover {

template <class K>
struct basic_key_range {
  using key_type = K;

  K lo{};
  K hi{};  // inclusive

  basic_key_range() = default;
  // Throws std::invalid_argument if lo > hi.
  basic_key_range(K lo_in, K hi_in) : lo(lo_in), hi(hi_in) {
    if (lo > hi) throw std::invalid_argument("key_range: lo > hi");
  }

  [[nodiscard]] K cell_count() const { return hi - lo + key_traits<K>::one(); }
  [[nodiscard]] long double cell_count_ld() const {
    // hi - lo never wraps, so compute from the difference: the +1 would
    // overflow to 0 for the full-universe range at the narrow widths.
    return key_traits<K>::to_long_double(hi - lo) + 1.0L;
  }
  [[nodiscard]] bool contains(const K& key) const { return lo <= key && key <= hi; }
  [[nodiscard]] std::string to_string() const {
    return "[" + key_traits<K>::to_string(lo) + ", " + key_traits<K>::to_string(hi) + "]";
  }

  friend bool operator==(const basic_key_range&, const basic_key_range&) = default;
};

using key_range = basic_key_range<u512>;

// Coalesces overlapping or back-to-back adjacent ranges (hi + 1 == next.lo)
// within the given buffer: sort by lo + in-place compaction, no allocation
// beyond the buffer's existing capacity. The hot query path uses this on its
// reusable scratch. The result is the minimal set of disjoint maximal runs
// covering exactly the union of the inputs.
template <class K>
void merge_ranges_inplace(std::vector<basic_key_range<K>>& ranges) {
  if (ranges.empty()) return;
  using range = basic_key_range<K>;
  std::sort(ranges.begin(), ranges.end(),
            [](const range& a, const range& b) { return a.lo < b.lo; });
  std::size_t out = 0;  // ranges[0..out] is the merged prefix
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    range& last = ranges[out];
    const range cur = ranges[i];
    // Adjacent (last.hi + 1 == cur.lo) or overlapping ranges coalesce.
    // Guard the +1 against wrap-around at the maximum key.
    const bool adjacent =
        last.hi != key_traits<K>::max() && last.hi + key_traits<K>::one() >= cur.lo;
    if (adjacent || cur.lo <= last.hi) {
      if (last.hi < cur.hi) last.hi = cur.hi;
    } else {
      ranges[++out] = cur;
    }
  }
  ranges.resize(out + 1);
}

// Same, returning the merged buffer (sorted by lo, disjoint, maximal).
template <class K>
std::vector<basic_key_range<K>> merge_ranges(std::vector<basic_key_range<K>> ranges) {
  merge_ranges_inplace(ranges);
  return ranges;
}

// Concrete u512 overload so braced-initializer calls keep deducing.
inline std::vector<key_range> merge_ranges(std::vector<key_range> ranges) {
  merge_ranges_inplace(ranges);
  return ranges;
}

// Total cells covered by a set of disjoint ranges.
template <class K>
K total_cells(const std::vector<basic_key_range<K>>& ranges) {
  K total = key_traits<K>::zero();
  for (const auto& r : ranges) total += r.cell_count();
  return total;
}

// The three key widths are pre-instantiated in key_range.cc; every other TU
// links against those copies instead of re-instantiating the merge kernels.
#define SUBCOVER_KEY_RANGE_EXTERN(K)                                              \
  extern template struct basic_key_range<K>;                                      \
  extern template void merge_ranges_inplace(std::vector<basic_key_range<K>>&);    \
  extern template std::vector<basic_key_range<K>> merge_ranges(                   \
      std::vector<basic_key_range<K>>);                                           \
  extern template K total_cells(const std::vector<basic_key_range<K>>&);
SUBCOVER_KEY_RANGE_EXTERN(std::uint64_t)
SUBCOVER_KEY_RANGE_EXTERN(u128)
SUBCOVER_KEY_RANGE_EXTERN(u512)
#undef SUBCOVER_KEY_RANGE_EXTERN

}  // namespace subcover
