// A run on a space filling curve: a closed interval [lo, hi] of SFC keys.
//
// The cost model of the paper counts runs: probing whether any indexed point
// falls inside a run takes two comparisons in the SFC array regardless of the
// run's extent (Section 2), so query cost == number of runs probed.
#pragma once

#include <string>
#include <vector>

#include "util/wideint.h"

namespace subcover {

struct key_range {
  u512 lo;
  u512 hi;  // inclusive

  key_range() = default;
  // Throws std::invalid_argument if lo > hi.
  key_range(u512 lo, u512 hi);

  [[nodiscard]] u512 cell_count() const { return hi - lo + u512::one(); }
  [[nodiscard]] long double cell_count_ld() const { return cell_count().to_long_double(); }
  [[nodiscard]] bool contains(const u512& key) const { return lo <= key && key <= hi; }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const key_range&, const key_range&) = default;
};

// Sorts ranges by lo and merges overlapping or back-to-back adjacent ranges
// (hi + 1 == next.lo). The result is the minimal set of disjoint maximal
// runs covering exactly the union of the inputs.
std::vector<key_range> merge_ranges(std::vector<key_range> ranges);

// Same, coalescing within the given buffer (sort + in-place compaction, no
// allocation beyond the buffer's existing capacity). The hot query path
// uses this on its reusable scratch.
void merge_ranges_inplace(std::vector<key_range>& ranges);

// Total cells covered by a set of disjoint ranges.
u512 total_cells(const std::vector<key_range>& ranges);

}  // namespace subcover
