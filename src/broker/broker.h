// A single content-based pub/sub broker with covering-optimized subscription
// propagation (paper Section 1).
//
// Subscription handling: a subscription arriving over link L is recorded in
// the routing table under L, then considered for forwarding to every other
// link M. If covering is enabled and a subscription already forwarded to M
// covers the new one, the forward is suppressed — the covered subscription
// needs no entry downstream because every event it matches is already being
// pulled by the coverer. The covering check is delegated to a pluggable
// covering_index (exact linear, SFC exhaustive, SFC eps-approximate, ...).
//
// Event handling: an event arriving over link L is delivered to matching
// local subscriptions and forwarded to every other link that has at least
// one matching subscription in its routing table (reverse-path routing).
//
// Unsubscription: removing a subscription that was forwarded to link M may
// uncover subscriptions whose forward to M was suppressed; those are
// re-forwarded so that completeness is preserved.
//
// Link shards and parallelism: all forwarding state of one outgoing link —
// its covering index, the bodies of the subscriptions forwarded over it,
// and the covering-check scratch — lives in one `link_shard`. The per-link
// work of subscription handling (covering check + shard mutation) touches
// exactly one shard and never another, so the *_parallel handler variants
// can fan the per-link loop out over a worker_pool: each shard job runs on
// whatever worker claims it, writes only its own shard and its own slot of
// the result scratch, and the merge back into the action (and into the
// caller's network_metrics) happens on the calling thread in link order —
// producing the identical action and identical metric totals as the serial
// handlers, independent of worker count and scheduling. The serial handlers
// remain the reference semantics (and the deterministic-mode code path).
// One broker instance must still be driven by one thread at a time; the
// network's per-broker inbox serialization provides that.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "broker/metrics.h"
#include "broker/routing_table.h"
#include "broker/wal.h"
#include "covering/covering_index.h"

namespace subcover {

class worker_pool;

using covering_index_factory = std::function<std::unique_ptr<covering_index>(const schema&)>;

struct broker_options {
  // false = flood every subscription (the paper's "ignore covering" extreme).
  bool use_covering = true;
  // Epsilon for find_covering: 0 = exact/exhaustive detection.
  double epsilon = 0.0;
};

class broker {
 public:
  broker(int id, const schema& s, const std::vector<int>& neighbor_links,
         const covering_index_factory& factory, broker_options options);
  // Rebuilds a broker from persisted routing state: `initial_forwarded` maps
  // a neighbor link to the (id, subscription) pairs already forwarded over
  // it. Each link's covering index is populated through the bulk
  // insert_batch path (one sort instead of one index descent per
  // subscription on the sorted-vector backend). Links absent from the map
  // start empty; throws std::invalid_argument for links not in
  // `neighbor_links`.
  broker(int id, const schema& s, const std::vector<int>& neighbor_links,
         const covering_index_factory& factory, broker_options options,
         const std::map<int, std::vector<std::pair<sub_id, subscription>>>& initial_forwarded);

  // Bulk-populates the forwarded set of one link (the bootstrap primitive
  // behind the constructor above). Ids must not already be forwarded on the
  // link.
  void bootstrap_forwarded(int link,
                           const std::vector<std::pair<sub_id, subscription>>& subs);

  struct subscribe_action {
    std::vector<int> forward_links;  // links the subscription must be sent to
  };
  struct unsubscribe_action {
    std::vector<int> forward_links;  // links the unsubscription must be sent to
    // Suppressed subscriptions that became uncovered and must now be sent.
    std::vector<std::pair<int, std::pair<sub_id, subscription>>> reforwards;
  };
  struct event_action {
    std::vector<int> forward_links;
    std::vector<sub_id> local_deliveries;
  };
  struct unsubscribe_batch_action {
    // Per link: the ids whose withdrawal must be sent over it (ascending in
    // batch order). Links with no forwarded id from the batch are absent.
    std::vector<std::pair<int, std::vector<sub_id>>> forward_links;
    // Suppressed subscriptions that became uncovered and must now be sent.
    std::vector<std::pair<int, std::pair<sub_id, subscription>>> reforwards;
  };

  // `from_link` is kLocalLink for client operations, else the neighbor id.
  subscribe_action handle_subscribe(int from_link, sub_id id, const subscription& s,
                                    network_metrics& metrics);
  unsubscribe_action handle_unsubscribe(int from_link, sub_id id, network_metrics& metrics);
  // Bulk withdrawal: every id must be registered under `from_link` and ids
  // must be distinct (same per-id contract as handle_unsubscribe). Each
  // shard pays ONE covering-index erase_batch (tombstone/compaction
  // machinery once) and ONE re-forward sweep for the whole batch instead of
  // one per id. Completeness-preserving but NOT byte-equivalent to
  // sequential per-id unsubscribes: the single sweep re-checks each
  // suppressed subscription once against the post-batch state, so it may
  // re-forward fewer subscriptions than an id-at-a-time replay whose
  // intermediate states momentarily uncover them. A batch of one id is
  // exactly handle_unsubscribe. Pinned by tests/broker/network_test.cc.
  unsubscribe_batch_action handle_unsubscribe_batch(int from_link,
                                                    const std::vector<sub_id>& ids,
                                                    network_metrics& metrics);
  [[nodiscard]] event_action handle_event(int from_link, const event& e) const;

  // Parallel variants: semantically identical to the serial handlers above
  // (same action, same metric totals), with the per-link shard work fanned
  // out over `pool` via run_batch. `metrics` must not be shared with any
  // concurrently-running handler; the network gives each broker its own
  // accumulator. The broker itself must not be re-entered while a parallel
  // handler is in flight.
  subscribe_action handle_subscribe_parallel(int from_link, sub_id id, const subscription& s,
                                             network_metrics& metrics, worker_pool& pool);
  unsubscribe_action handle_unsubscribe_parallel(int from_link, sub_id id,
                                                 network_metrics& metrics, worker_pool& pool);

  // --- durability (broker/wal.h) ---------------------------------------
  // Full routing state at this instant: routing-table entries plus per-link
  // forwarded sets, ids ascending within each link.
  [[nodiscard]] broker_snapshot snapshot() const;
  // Writes snapshot() through `wal` (replacing its snapshot and compacting
  // its log). Call only at operation boundaries — a snapshot taken between
  // an operation's messages would capture state no record sequence ends at.
  void checkpoint(broker_wal& wal) const;
  // Applies one logged disposition as a pure state mutation: table add or
  // remove plus the recorded shard inserts/withdrawals. No covering check
  // re-runs and no metrics move — the record already carries the decision's
  // outcome. event_receipt records are a no-op here (their channel
  // positions are the fault engine's concern, not the broker's).
  void apply_replay(const wal_record& r);
  // Rebuilds a broker from recovered durable state: the snapshot first
  // (forwarded sets through the bootstrap constructor, routing entries into
  // the table), then every log record in append order. The result is
  // state-identical to the broker that wrote them — pinned by
  // routing_table::operator== and forwarded_ids equality in
  // tests/broker/broker_recovery_test.cc.
  [[nodiscard]] static broker recover(int id, const schema& s,
                                      const std::vector<int>& neighbor_links,
                                      const covering_index_factory& factory,
                                      broker_options options, const broker_wal::recovery& rec);

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] std::size_t routing_entries() const { return table_.total_entries(); }
  [[nodiscard]] std::size_t forwarded_to(int link) const;
  // Ids forwarded over `link`, ascending — the per-shard state the
  // deterministic-vs-parallel equivalence tests compare.
  [[nodiscard]] std::vector<sub_id> forwarded_ids(int link) const;
  [[nodiscard]] const routing_table& table() const { return table_; }
  // Estimated bytes this broker holds: the routing table plus every link
  // shard (covering index — dominance array, tiered or not, included — and
  // the forwarded subscription bodies).
  [[nodiscard]] std::size_t memory_footprint() const;

 private:
  // All forwarding state of one outgoing link. A shard is only ever touched
  // by one thread at a time (the serial handlers by the broker's thread; the
  // parallel handlers by whichever worker claimed the shard's batch index),
  // so nothing in it is synchronized.
  struct link_shard {
    std::unique_ptr<covering_index> index;   // covering over forwarded subs
    std::map<sub_id, subscription> forwarded;  // bodies for re-forwarding
    // Scratch for covering checks on this shard: reused instead of
    // constructing stats per call (the covering index reuses its own
    // query-plan scratch underneath). Mutable so the logically-const check
    // path can reuse it; shard-local so parallel checks on different links
    // never share it.
    mutable covering_check_stats scratch;
  };

  // True if a subscription already forwarded to the shard's link covers `s`;
  // folds the check's accounting into `metrics`.
  bool covered_on_shard(const link_shard& shard, const subscription& s,
                        network_metrics& metrics) const;
  // The subscribe-side work of one shard: check + insert-if-uncovered.
  // Returns true if the subscription must be forwarded over the link.
  // Touches only `shard` and `metrics`.
  bool subscribe_on_shard(link_shard& shard, sub_id id, const subscription& s,
                          network_metrics& metrics);
  // The unsubscribe-side work of one shard: withdraw + re-forward newly
  // uncovered subscriptions. `link` is the shard's link id (needed to skip
  // subscriptions received over it). Touches only `shard`, `metrics` and
  // the (read-only) routing table.
  struct shard_unsubscribe_result {
    bool forward = false;  // the unsubscription travels over this link
    std::vector<std::pair<sub_id, subscription>> reforwards;
  };
  shard_unsubscribe_result unsubscribe_on_shard(link_shard& shard, int link, sub_id id,
                                                network_metrics& metrics);
  // Fills the fan-out scratch (targets_/target_links_) with every shard
  // except `from_link`'s and sizes the per-shard delta slots.
  void collect_targets(int from_link);

  int id_;
  schema schema_;
  std::vector<int> links_;  // neighbor links (excludes kLocalLink)
  broker_options options_;
  covering_index_factory factory_;
  routing_table table_;
  // Per outgoing link: the link's shard (see link_shard).
  std::map<int, link_shard> shards_;
  // Fan-out scratch for the parallel handlers, reused across messages (the
  // broker is driven by one thread at a time, so one set suffices; batch
  // job i writes only slot i). Kept warm like the per-shard check scratch.
  std::vector<link_shard*> targets_;
  std::vector<int> target_links_;
  std::vector<std::uint8_t> forward_scratch_;
  std::vector<network_metrics> delta_scratch_;
  std::vector<shard_unsubscribe_result> unsub_scratch_;
};

}  // namespace subcover
