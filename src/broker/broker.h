// A single content-based pub/sub broker with covering-optimized subscription
// propagation (paper Section 1).
//
// Subscription handling: a subscription arriving over link L is recorded in
// the routing table under L, then considered for forwarding to every other
// link M. If covering is enabled and a subscription already forwarded to M
// covers the new one, the forward is suppressed — the covered subscription
// needs no entry downstream because every event it matches is already being
// pulled by the coverer. The covering check is delegated to a pluggable
// covering_index (exact linear, SFC exhaustive, SFC eps-approximate, ...).
//
// Event handling: an event arriving over link L is delivered to matching
// local subscriptions and forwarded to every other link that has at least
// one matching subscription in its routing table (reverse-path routing).
//
// Unsubscription: removing a subscription that was forwarded to link M may
// uncover subscriptions whose forward to M was suppressed; those are
// re-forwarded so that completeness is preserved.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "broker/metrics.h"
#include "broker/routing_table.h"
#include "covering/covering_index.h"

namespace subcover {

using covering_index_factory = std::function<std::unique_ptr<covering_index>(const schema&)>;

struct broker_options {
  // false = flood every subscription (the paper's "ignore covering" extreme).
  bool use_covering = true;
  // Epsilon for find_covering: 0 = exact/exhaustive detection.
  double epsilon = 0.0;
};

class broker {
 public:
  broker(int id, const schema& s, const std::vector<int>& neighbor_links,
         const covering_index_factory& factory, broker_options options);
  // Rebuilds a broker from persisted routing state: `initial_forwarded` maps
  // a neighbor link to the (id, subscription) pairs already forwarded over
  // it. Each link's covering index is populated through the bulk
  // insert_batch path (one sort instead of one index descent per
  // subscription on the sorted-vector backend). Links absent from the map
  // start empty; throws std::invalid_argument for links not in
  // `neighbor_links`.
  broker(int id, const schema& s, const std::vector<int>& neighbor_links,
         const covering_index_factory& factory, broker_options options,
         const std::map<int, std::vector<std::pair<sub_id, subscription>>>& initial_forwarded);

  // Bulk-populates the forwarded set of one link (the bootstrap primitive
  // behind the constructor above). Ids must not already be forwarded on the
  // link.
  void bootstrap_forwarded(int link,
                           const std::vector<std::pair<sub_id, subscription>>& subs);

  struct subscribe_action {
    std::vector<int> forward_links;  // links the subscription must be sent to
  };
  struct unsubscribe_action {
    std::vector<int> forward_links;  // links the unsubscription must be sent to
    // Suppressed subscriptions that became uncovered and must now be sent.
    std::vector<std::pair<int, std::pair<sub_id, subscription>>> reforwards;
  };
  struct event_action {
    std::vector<int> forward_links;
    std::vector<sub_id> local_deliveries;
  };

  // `from_link` is kLocalLink for client operations, else the neighbor id.
  subscribe_action handle_subscribe(int from_link, sub_id id, const subscription& s,
                                    network_metrics& metrics);
  unsubscribe_action handle_unsubscribe(int from_link, sub_id id, network_metrics& metrics);
  [[nodiscard]] event_action handle_event(int from_link, const event& e) const;

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] std::size_t routing_entries() const { return table_.total_entries(); }
  [[nodiscard]] std::size_t forwarded_to(int link) const;
  [[nodiscard]] const routing_table& table() const { return table_; }

 private:
  // True if a subscription already forwarded to `link` covers `s`.
  bool covered_on_link(int link, const subscription& s, network_metrics& metrics) const;

  int id_;
  schema schema_;
  std::vector<int> links_;  // neighbor links (excludes kLocalLink)
  broker_options options_;
  covering_index_factory factory_;
  routing_table table_;
  // Per outgoing link: covering index over subscriptions forwarded there,
  // plus the subscription bodies for re-forwarding after unsubscriptions.
  std::map<int, std::unique_ptr<covering_index>> forwarded_;
  std::map<int, std::map<sub_id, subscription>> forwarded_subs_;
  // Per-broker scratch for covering checks: covered_on_link reuses it
  // instead of constructing stats per call, and the per-link covering
  // indexes reuse their own query-plan scratch underneath. Mutable because
  // covered_on_link is logically const; this makes covered_on_link
  // non-reentrant, matching the single-threaded broker contract.
  mutable covering_check_stats check_scratch_;
};

}  // namespace subcover
