#include "broker/fault_engine.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "util/check.h"

namespace subcover {

namespace {

void check_prob(double p, const char* name) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument(std::string("fault_engine: ") + name + " must be in [0, 1]");
}

}  // namespace

fault_engine::fault_engine(const topology& t, const schema& s,
                           const covering_index_factory& factory, broker_options broker_opts,
                           fault_options opts, std::vector<broker>& brokers,
                           network_metrics& metrics)
    : topology_(t),
      schema_(s),
      factory_(factory),
      broker_opts_(broker_opts),
      opts_(opts),
      brokers_(brokers),
      metrics_(metrics),
      rng_(opts.seed) {
  check_prob(opts_.drop_prob, "drop_prob");
  check_prob(opts_.duplicate_prob, "duplicate_prob");
  check_prob(opts_.delay_prob, "delay_prob");
  check_prob(opts_.crash_prob, "crash_prob");
  if (opts_.max_retries < 0)
    throw std::invalid_argument("fault_engine: max_retries must be >= 0");
  if (opts_.ack_timeout == 0)
    throw std::invalid_argument("fault_engine: ack_timeout must be >= 1");
  if (opts_.max_delay == 0) throw std::invalid_argument("fault_engine: max_delay must be >= 1");
  const auto n = brokers_.size();
  wals_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) wals_.emplace_back();
  down_.assign(n, 0);
  next_expected_.resize(n);
  next_send_.resize(n);
  buffers_.resize(n);
}

broker_wal& fault_engine::wal_of(int b) {
  return wals_.at(static_cast<std::size_t>(b));
}

std::size_t fault_engine::recover_broker(int b) {
  SUBCOVER_CHECK(b >= 0 && static_cast<std::size_t>(b) < brokers_.size(),
                 "fault_engine: bad broker id");
  return rebuild_from_wal(b);
}

std::size_t fault_engine::rebuild_from_wal(int b) {
  const auto rec = wals_[static_cast<std::size_t>(b)].recover();
  brokers_[static_cast<std::size_t>(b)] =
      broker::recover(b, schema_, topology_.neighbors(b), factory_, broker_opts_, rec);
  ++metrics_.recoveries;
  // Re-derive the receive-side dedup positions for the operation in flight
  // from the records' idempotency keys: anything the WAL holds was applied,
  // so its retransmission must be suppressed, not re-applied.
  auto& ne = next_expected_[static_cast<std::size_t>(b)];
  for (const auto& r : rec.records) {
    if (r.op != op_) continue;
    auto& pos = ne[r.from];
    if (r.seq + 1 > pos) pos = r.seq + 1;
  }
  return rec.records.size();
}

void fault_engine::run_subscribe(int origin, sub_id id, const subscription& s) {
  msg m;
  m.k = msg::kind::subscribe;
  m.id = id;
  m.body = s;
  run_op(origin, std::move(m));
}

void fault_engine::run_unsubscribe(int origin, sub_id id) {
  msg m;
  m.k = msg::kind::unsubscribe;
  m.id = id;
  run_op(origin, std::move(m));
}

std::vector<sub_id> fault_engine::run_publish(int origin, const event& e) {
  msg m;
  m.k = msg::kind::publish;
  m.ev = &e;
  run_op(origin, std::move(m));
  return std::move(delivered_);
}

void fault_engine::run_op(int origin, msg m) {
  ++op_;
  now_ = 0;
  order_ = 0;
  next_uid_ = 0;
  heap_ = {};
  pending_.clear();
  delivered_.clear();
  for (auto& ne : next_expected_) ne.clear();
  for (auto& ns : next_send_) ns.clear();
  for (auto& buf : buffers_) buf.clear();
  // A previous operation that threw (retry exhaustion) may have abandoned a
  // broker mid-recovery; restart it before injecting new work.
  for (std::size_t b = 0; b < down_.size(); ++b) {
    if (down_[b] == 0) continue;
    rebuild_from_wal(static_cast<int>(b));
    down_[b] = 0;
  }

  // The client -> broker hop is reliable and immediate: faults are a
  // property of the inter-broker overlay links.
  m.from = kLocalLink;
  m.to = origin;
  m.seq = 0;
  m.uid = 0;
  sim_event inject;
  inject.k = sim_event::kind::deliver;
  inject.m = std::move(m);
  push_event(std::move(inject));

  while (!heap_.empty()) {
    sim_event e = heap_.top();
    heap_.pop();
    now_ = e.time;
    dispatch(e);
  }
  SUBCOVER_CHECK(pending_.empty(), "fault_engine: quiescent with unacked messages");

  if (opts_.checkpoint_every > 0) {
    for (std::size_t b = 0; b < brokers_.size(); ++b) {
      if (wals_[b].records_since_snapshot() >= opts_.checkpoint_every)
        brokers_[b].checkpoint(wals_[b]);
    }
  }
  std::uint64_t total = 0;
  for (const auto& w : wals_) total += w.bytes_appended();
  metrics_.wal_bytes = total;
}

void fault_engine::push_event(sim_event e) {
  e.order = order_++;
  heap_.push(std::move(e));
}

std::uint64_t fault_engine::latency() {
  std::uint64_t ticks = 1;
  if (rng_.bernoulli(opts_.delay_prob)) ticks += rng_.uniform(1, opts_.max_delay);
  return ticks;
}

void fault_engine::dispatch(const sim_event& e) {
  switch (e.k) {
    case sim_event::kind::deliver:
      deliver(e.m);
      break;
    case sim_event::kind::ack:
      pending_.erase(e.uid);  // absent = a duplicate's redundant ack
      break;
    case sim_event::kind::timeout: {
      const auto it = pending_.find(e.uid);
      if (it == pending_.end()) break;  // acked in the meantime
      if (it->second.retries >= opts_.max_retries)
        throw std::runtime_error(
            "fault_engine: retries exhausted for message to broker " +
            std::to_string(it->second.m.to));
      ++it->second.retries;
      ++metrics_.retries;
      transmit(it->second.m);
      sim_event next;
      next.k = sim_event::kind::timeout;
      next.uid = e.uid;
      next.time = now_ + (opts_.ack_timeout << it->second.retries);
      push_event(std::move(next));
      break;
    }
    case sim_event::kind::recover:
      rebuild_from_wal(e.broker);
      down_[static_cast<std::size_t>(e.broker)] = 0;
      break;
  }
}

void fault_engine::send_data(msg m) {
  m.seq = next_send_[static_cast<std::size_t>(m.from)][m.to]++;
  m.uid = ++next_uid_;
  pending_.emplace(m.uid, pending_msg{m, 0});
  sim_event timeout;
  timeout.k = sim_event::kind::timeout;
  timeout.uid = m.uid;
  timeout.time = now_ + opts_.ack_timeout;
  push_event(std::move(timeout));
  transmit(m);
}

void fault_engine::transmit(const msg& m) {
  if (!rng_.bernoulli(opts_.drop_prob)) {
    sim_event e;
    e.k = sim_event::kind::deliver;
    e.time = now_ + latency();
    e.m = m;
    push_event(std::move(e));
  }
  if (rng_.bernoulli(opts_.duplicate_prob)) {
    sim_event e;
    e.k = sim_event::kind::deliver;
    e.time = now_ + latency();
    e.m = m;
    push_event(std::move(e));
  }
}

void fault_engine::send_ack(const msg& m) {
  if (m.from == kLocalLink) return;  // client hop: nothing pending
  if (rng_.bernoulli(opts_.drop_prob)) return;  // lost ack: sender retries
  sim_event e;
  e.k = sim_event::kind::ack;
  e.uid = m.uid;
  e.time = now_ + latency();
  push_event(std::move(e));
}

void fault_engine::crash(int b) {
  down_[static_cast<std::size_t>(b)] = 1;
  // Fail-stop: receive-side dedup positions and the out-of-order buffer die
  // with the broker. Buffered messages were never acked, so their senders
  // are still retransmitting them; the dedup positions come back from the
  // WAL's idempotency keys at restart.
  next_expected_[static_cast<std::size_t>(b)].clear();
  buffers_[static_cast<std::size_t>(b)].clear();
  sim_event e;
  e.k = sim_event::kind::recover;
  e.broker = b;
  e.time = now_ + opts_.recovery_delay;
  push_event(std::move(e));
}

void fault_engine::deliver(const msg& m) {
  if (down_[static_cast<std::size_t>(m.to)] != 0) return;  // lost; sender retries

  bool crash_before = false;
  bool crash_after = false;
  if (m.from != kLocalLink && rng_.bernoulli(opts_.crash_prob)) {
    if (rng_.bernoulli(0.5))
      crash_before = true;  // the message goes down with the broker
    else
      crash_after = true;  // records durable, ack lost: the dedup path
  }
  if (crash_before) {
    crash(m.to);
    return;
  }

  auto& ne = next_expected_[static_cast<std::size_t>(m.to)][m.from];
  if (m.seq < ne) {
    // Already applied (a duplicate, or a retransmission whose ack was
    // lost): suppress, but re-ack so the sender stops.
    ++metrics_.duplicates_suppressed;
    send_ack(m);
    return;
  }
  auto& buf = buffers_[static_cast<std::size_t>(m.to)][m.from];
  if (m.seq > ne) {
    buf.emplace(m.seq, m);  // no ack: the sender keeps it retransmittable
    return;
  }

  process(m);
  ++ne;
  if (crash_after) {
    crash(m.to);
    return;
  }
  send_ack(m);
  for (auto it = buf.find(ne); it != buf.end(); it = buf.find(ne)) {
    const msg next = std::move(it->second);
    buf.erase(it);
    process(next);
    ++ne;
    send_ack(next);
  }
}

void fault_engine::process(const msg& m) {
  broker& br = brokers_[static_cast<std::size_t>(m.to)];
  broker_wal& wal = wals_[static_cast<std::size_t>(m.to)];
  switch (m.k) {
    case msg::kind::subscribe: {
      const auto action = br.handle_subscribe(m.from, m.id, m.body, metrics_);
      wal_record r;
      r.k = wal_record::kind::subscribe;
      r.op = op_;
      r.from = m.from;
      r.seq = m.seq;
      r.id = m.id;
      r.body = m.body;
      r.forwarded_links = action.forward_links;
      wal.append(r);
      for (const int link : action.forward_links) {
        ++metrics_.subscription_messages;
        msg out;
        out.k = msg::kind::subscribe;
        out.from = m.to;
        out.to = link;
        out.id = m.id;
        out.body = m.body;
        send_data(std::move(out));
      }
      break;
    }
    case msg::kind::unsubscribe: {
      const auto action = br.handle_unsubscribe(m.from, m.id, metrics_);
      wal_record r;
      r.k = wal_record::kind::unsubscribe;
      r.op = op_;
      r.from = m.from;
      r.seq = m.seq;
      r.id = m.id;
      r.withdrawn_links = action.forward_links;
      r.reforwards = action.reforwards;
      wal.append(r);
      for (const int link : action.forward_links) {
        ++metrics_.unsubscription_messages;
        msg out;
        out.k = msg::kind::unsubscribe;
        out.from = m.to;
        out.to = link;
        out.id = m.id;
        send_data(std::move(out));
      }
      for (const auto& [link, sub_pair] : action.reforwards) {
        ++metrics_.subscription_messages;
        ++metrics_.reforwards;
        msg out;
        out.k = msg::kind::subscribe;
        out.from = m.to;
        out.to = link;
        out.id = sub_pair.first;
        out.body = sub_pair.second;
        send_data(std::move(out));
      }
      break;
    }
    case msg::kind::publish: {
      const auto action = br.handle_event(m.from, *m.ev);
      // Events mutate no routing state, but their channel position must
      // survive a crash: without the receipt, a retransmission of an
      // already-delivered event would deliver (and count) it twice.
      wal_record r;
      r.k = wal_record::kind::event_receipt;
      r.op = op_;
      r.from = m.from;
      r.seq = m.seq;
      wal.append(r);
      for (const sub_id id : action.local_deliveries) {
        delivered_.push_back(id);
        ++metrics_.deliveries;
      }
      for (const int link : action.forward_links) {
        ++metrics_.event_messages;
        msg out;
        out.k = msg::kind::publish;
        out.from = m.to;
        out.to = link;
        out.ev = m.ev;
        send_data(std::move(out));
      }
      break;
    }
  }
}

}  // namespace subcover
