// Deterministic fault-injection engine: the network's third execution mode
// (network_options::faults). Inter-broker messages travel through a
// simulated unreliable fabric — a discrete-event loop in virtual time with
// a seeded RNG — that can drop, duplicate, and delay/reorder them, and can
// crash the receiving broker, which later restarts from its write-ahead log
// (broker/wal.h).
//
// Reliability is rebuilt on top with the standard trio:
//
//   * Acks + bounded retry: every inter-broker message is held by its
//     sender until acked; an unacked message retransmits with exponential
//     backoff (ack_timeout doubling per attempt) up to max_retries, after
//     which the operation throws std::runtime_error.
//   * Per-channel sequencing: each (operation, sender -> receiver) channel
//     numbers its messages. A receiver processes a channel strictly in
//     order: dupes (seq already processed) are re-acked and counted
//     duplicates_suppressed; early messages are buffered UNACKED — so a
//     crash can only lose messages whose senders are still retransmitting.
//   * WAL-append-before-ack: a message's state records are durable before
//     its ack is sent, and each record carries its channel position
//     (op, from, seq) as an idempotency key. A restarted broker rebuilds
//     its dedup positions from those keys, turning the fabric's
//     at-least-once delivery into exactly-once state application.
//
// Determinism contract: the overlay is a tree, so within one operation each
// broker receives every message from the single neighbor toward the origin.
// Per-channel in-order processing therefore hands each broker exactly the
// message sequence it would consume in deterministic mode, regardless of
// the fault schedule — so the final routing tables, forwarded sets,
// delivered ids, and every logical metric counter are identical to
// deterministic mode for every seed and fault mix (pinned by
// tests/broker/fault_injection_test.cc). Only the fault-transport counters
// (retries, duplicates_suppressed, recoveries, wal_bytes) vary.
//
// Scope cut, deliberate: crashes are fail-stop for the broker's state —
// routing tables, forwarded sets, and receive-side dedup positions are lost
// and rebuilt from the WAL — but sender-side transport state (pending
// retransmissions and channel send counters) lives in the fabric below the
// crash line, like kernel socket buffers surviving an application restart.
// Persisting sender-side output buffers is the transport PR's problem, not
// this engine's (docs/ARCHITECTURE.md, "Fault model & recovery").
#pragma once

#include <cstdint>
#include <map>
#include <queue>
#include <vector>

#include "broker/broker.h"
#include "broker/topology.h"
#include "util/random.h"

namespace subcover {

struct fault_options {
  std::uint64_t seed = 1;
  // Per-transmission probabilities, each drawn independently (an unlucky
  // message can be both delayed and duplicated; a dropped one simply never
  // arrives and its retransmission rolls fresh dice).
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  double delay_prob = 0.0;
  // Extra virtual-time ticks (uniform in [1, max_delay]) when delayed; base
  // latency is 1 tick. Delay is what produces reordering across channels.
  std::uint64_t max_delay = 8;
  // Probability, per delivered inter-broker message, that the receiving
  // broker crashes — half before processing (the message is lost with it),
  // half after its WAL records are durable but before the ack leaves (the
  // retransmission then exercises the idempotency path).
  double crash_prob = 0.0;
  // Virtual ticks a crashed broker stays down before restarting from WAL.
  std::uint64_t recovery_delay = 16;
  // Retransmission policy: first retry after ack_timeout ticks, doubling
  // per attempt; exceeding max_retries throws std::runtime_error.
  int max_retries = 10;
  std::uint64_t ack_timeout = 4;
  // Snapshot-compact a broker's WAL at the end of any operation that leaves
  // it with at least this many records since its last snapshot. 0 disables
  // automatic checkpoints (recovery then replays from an empty snapshot).
  std::uint64_t checkpoint_every = 64;
};

// One network's fault-injection executor. Owns the per-broker WALs and the
// virtual-time fabric; borrows the brokers, topology, and metrics from the
// network that built it. Runs one operation at a time to quiescence on the
// calling thread.
class fault_engine {
 public:
  fault_engine(const topology& t, const schema& s, const covering_index_factory& factory,
               broker_options broker_opts, fault_options opts, std::vector<broker>& brokers,
               network_metrics& metrics);

  void run_subscribe(int origin, sub_id id, const subscription& s);
  void run_unsubscribe(int origin, sub_id id);
  // Delivered subscription ids in processing order (the caller sorts).
  std::vector<sub_id> run_publish(int origin, const event& e);

  // The broker's durable log (tests inspect it; the example prints it).
  [[nodiscard]] broker_wal& wal_of(int b);
  // Crash-between-operations: discards broker b's in-memory state and
  // rebuilds it from its WAL. Returns the number of log records replayed.
  std::size_t recover_broker(int b);

 private:
  struct msg {
    enum class kind : std::uint8_t { subscribe, unsubscribe, publish };
    kind k = kind::subscribe;
    int from = kLocalLink;  // sender broker id, or kLocalLink for a client
    int to = 0;
    std::uint64_t seq = 0;  // position on the (op, from -> to) channel
    std::uint64_t uid = 0;  // ack identity; 0 = client injection (unacked)
    sub_id id = 0;
    subscription body;
    const event* ev = nullptr;  // borrowed from run_publish's caller
  };
  struct sim_event {
    std::uint64_t time = 0;
    std::uint64_t order = 0;  // insertion tie-break: keeps the heap a total order
    enum class kind : std::uint8_t { deliver, ack, timeout, recover };
    kind k = kind::deliver;
    msg m;                  // deliver
    std::uint64_t uid = 0;  // ack / timeout
    int broker = 0;         // recover
  };
  struct event_after {
    bool operator()(const sim_event& a, const sim_event& b) const {
      return a.time != b.time ? a.time > b.time : a.order > b.order;
    }
  };
  struct pending_msg {
    msg m;
    int retries = 0;
  };

  void run_op(int origin, msg m);
  void dispatch(const sim_event& e);
  void deliver(const msg& m);
  // Runs the broker handler, makes the records durable, and emits outputs.
  void process(const msg& m);
  // Registers the message as pending and transmits it (first attempt).
  void send_data(msg m);
  // One attempt: drop/delay/duplicate dice, then deliver event(s).
  void transmit(const msg& m);
  void send_ack(const msg& m);
  void crash(int b);
  std::size_t rebuild_from_wal(int b);
  void push_event(sim_event e);
  std::uint64_t latency();

  const topology& topology_;
  const schema& schema_;
  const covering_index_factory& factory_;
  broker_options broker_opts_;
  fault_options opts_;
  std::vector<broker>& brokers_;
  network_metrics& metrics_;

  std::vector<broker_wal> wals_;
  rng rng_;
  std::uint64_t op_ = 0;  // current operation id (the records' `op` key)

  // Per-operation fabric state, reset by run_op.
  std::priority_queue<sim_event, std::vector<sim_event>, event_after> heap_;
  std::uint64_t now_ = 0;
  std::uint64_t order_ = 0;
  std::uint64_t next_uid_ = 0;
  std::map<std::uint64_t, pending_msg> pending_;
  std::vector<char> down_;
  std::vector<std::map<int, std::uint64_t>> next_expected_;  // receiver: from -> seq
  std::vector<std::map<int, std::uint64_t>> next_send_;      // sender: link -> seq
  std::vector<std::map<int, std::map<std::uint64_t, msg>>> buffers_;
  std::vector<sub_id> delivered_;
};

}  // namespace subcover
