#include "broker/topology.h"

#include <algorithm>
#include <stdexcept>

namespace subcover {

topology::topology(int n, std::vector<std::pair<int, int>> edges) {
  if (n < 1) throw std::invalid_argument("topology: need at least one broker");
  if (static_cast<int>(edges.size()) != n - 1)
    throw std::invalid_argument("topology: a tree on " + std::to_string(n) + " nodes needs " +
                                std::to_string(n - 1) + " edges");
  adj_.resize(static_cast<std::size_t>(n));
  for (const auto& [a, b] : edges) {
    if (a < 0 || a >= n || b < 0 || b >= n || a == b)
      throw std::invalid_argument("topology: bad edge (" + std::to_string(a) + ", " +
                                  std::to_string(b) + ")");
    adj_[static_cast<std::size_t>(a)].push_back(b);
    adj_[static_cast<std::size_t>(b)].push_back(a);
  }
  for (auto& nbrs : adj_) std::sort(nbrs.begin(), nbrs.end());
  // n-1 edges + connected => tree. Check connectivity by DFS from 0.
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::vector<int> stack{0};
  seen[0] = true;
  int visited = 0;
  while (!stack.empty()) {
    const int cur = stack.back();
    stack.pop_back();
    ++visited;
    for (const int nb : adj_[static_cast<std::size_t>(cur)]) {
      if (!seen[static_cast<std::size_t>(nb)]) {
        seen[static_cast<std::size_t>(nb)] = true;
        stack.push_back(nb);
      }
    }
  }
  if (visited != n) throw std::invalid_argument("topology: graph is not connected");
}

topology topology::line(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return {n, std::move(edges)};
}

topology topology::star(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 1; i < n; ++i) edges.emplace_back(0, i);
  return {n, std::move(edges)};
}

topology topology::balanced_tree(int fanout, int depth) {
  if (fanout < 1 || depth < 0)
    throw std::invalid_argument("topology::balanced_tree: bad parameters");
  std::vector<std::pair<int, int>> edges;
  int n = 1;
  int level_start = 0;
  int level_size = 1;
  for (int d = 0; d < depth; ++d) {
    const int next_start = level_start + level_size;
    for (int p = 0; p < level_size; ++p) {
      for (int c = 0; c < fanout; ++c) {
        edges.emplace_back(level_start + p, n);
        ++n;
      }
    }
    level_start = next_start;
    level_size *= fanout;
  }
  return {n, std::move(edges)};
}

const std::vector<int>& topology::neighbors(int node) const {
  if (node < 0 || node >= size()) throw std::invalid_argument("topology: bad broker id");
  return adj_[static_cast<std::size_t>(node)];
}

std::vector<int> topology::path(int from, int to) const {
  if (from < 0 || from >= size() || to < 0 || to >= size())
    throw std::invalid_argument("topology::path: bad broker id");
  // DFS with parent tracking (trees are small; simplicity over speed).
  std::vector<int> parent(static_cast<std::size_t>(size()), -1);
  std::vector<int> stack{from};
  std::vector<bool> seen(static_cast<std::size_t>(size()), false);
  seen[static_cast<std::size_t>(from)] = true;
  while (!stack.empty()) {
    const int cur = stack.back();
    stack.pop_back();
    if (cur == to) break;
    for (const int nb : adj_[static_cast<std::size_t>(cur)]) {
      if (!seen[static_cast<std::size_t>(nb)]) {
        seen[static_cast<std::size_t>(nb)] = true;
        parent[static_cast<std::size_t>(nb)] = cur;
        stack.push_back(nb);
      }
    }
  }
  std::vector<int> path;
  for (int cur = to; cur != -1; cur = parent[static_cast<std::size_t>(cur)]) {
    path.push_back(cur);
    if (cur == from) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::string topology::to_string() const {
  std::string s = "topology(" + std::to_string(size()) + " brokers:";
  for (int i = 0; i < size(); ++i) {
    for (const int nb : neighbors(i)) {
      if (i < nb) s += " " + std::to_string(i) + "-" + std::to_string(nb);
    }
  }
  return s + ")";
}

}  // namespace subcover
