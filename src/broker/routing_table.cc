#include "broker/routing_table.h"

#include <stdexcept>

#include "pubsub/matching.h"

namespace subcover {

void routing_table::add(int link, sub_id id, const subscription& s) {
  if (!received_[link].emplace(id, s).second)
    throw std::invalid_argument("routing_table: subscription " + std::to_string(id) +
                                " already present on link " + std::to_string(link));
}

bool routing_table::remove(int link, sub_id id) {
  const auto it = received_.find(link);
  if (it == received_.end()) return false;
  const bool erased = it->second.erase(id) > 0;
  if (it->second.empty()) received_.erase(it);
  return erased;
}

bool routing_table::contains(int link, sub_id id) const {
  const auto it = received_.find(link);
  return it != received_.end() && it->second.count(id) > 0;
}

std::size_t routing_table::total_entries() const {
  std::size_t n = 0;
  for (const auto& [link, subs] : received_) {
    (void)link;
    n += subs.size();
  }
  return n;
}

std::size_t routing_table::entries_on(int link) const {
  const auto it = received_.find(link);
  return it == received_.end() ? 0 : it->second.size();
}

std::vector<int> routing_table::matching_links(const event& e, int exclude_link) const {
  std::vector<int> links;
  for (const auto& [link, subs] : received_) {
    if (link == exclude_link) continue;
    for (const auto& [id, s] : subs) {
      (void)id;
      if (matches(s, e)) {
        links.push_back(link);
        break;
      }
    }
  }
  return links;
}

std::vector<sub_id> routing_table::matching_subs(int link, const event& e) const {
  std::vector<sub_id> out;
  const auto it = received_.find(link);
  if (it == received_.end()) return out;
  for (const auto& [id, s] : it->second)
    if (matches(s, e)) out.push_back(id);
  return out;
}

std::size_t routing_table::memory_footprint() const {
  // Four pointers-worth of red-black node header per map element, plus the
  // subscription payload (one attr_range per attribute).
  constexpr std::size_t kNodeOverhead = 4 * sizeof(void*);
  std::size_t total = sizeof(*this);
  for (const auto& [link, subs] : received_) {
    (void)link;
    total += kNodeOverhead + sizeof(std::pair<const int, std::map<sub_id, subscription>>);
    for (const auto& [id, s] : subs) {
      (void)id;
      total += kNodeOverhead + sizeof(std::pair<const sub_id, subscription>) +
               static_cast<std::size_t>(s.attribute_count()) * sizeof(attr_range);
    }
  }
  return total;
}

std::vector<std::pair<sub_id, subscription>> routing_table::subs_not_from(int exclude) const {
  std::vector<std::pair<sub_id, subscription>> out;
  for (const auto& [link, subs] : received_) {
    if (link == exclude) continue;
    for (const auto& [id, s] : subs) out.emplace_back(id, s);
  }
  return out;
}

std::map<int, std::vector<std::pair<sub_id, subscription>>> routing_table::snapshot() const {
  std::map<int, std::vector<std::pair<sub_id, subscription>>> out;
  for (const auto& [link, subs] : received_) {
    auto& entries = out[link];
    entries.reserve(subs.size());
    for (const auto& [id, s] : subs) entries.emplace_back(id, s);
  }
  return out;
}

}  // namespace subcover
