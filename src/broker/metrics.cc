#include "broker/metrics.h"

#include <sstream>

namespace subcover {

network_metrics& network_metrics::operator+=(const network_metrics& o) {
  subscription_messages += o.subscription_messages;
  unsubscription_messages += o.unsubscription_messages;
  reforwards += o.reforwards;
  event_messages += o.event_messages;
  deliveries += o.deliveries;
  covering_checks += o.covering_checks;
  covering_hits += o.covering_hits;
  covering_check_ns += o.covering_check_ns;
  covering_runs_probed += o.covering_runs_probed;
  covering_probes_restarted += o.covering_probes_restarted;
  covering_probes_resumed += o.covering_probes_resumed;
  covering_tier_cold_probes += o.covering_tier_cold_probes;
  covering_tier_summary_answers += o.covering_tier_summary_answers;
  covering_tier_blocks_decoded += o.covering_tier_blocks_decoded;
  covering_tier_cold_hits += o.covering_tier_cold_hits;
  covering_maint_tombstones += o.covering_maint_tombstones;
  covering_maint_purged += o.covering_maint_purged;
  covering_maint_compactions += o.covering_maint_compactions;
  retries += o.retries;
  duplicates_suppressed += o.duplicates_suppressed;
  recoveries += o.recoveries;
  wal_bytes += o.wal_bytes;
  reconnects += o.reconnects;
  heartbeats_missed += o.heartbeats_missed;
  bytes_on_wire += o.bytes_on_wire;
  partial_writes += o.partial_writes;
  return *this;
}

bool same_counters(const network_metrics& a, const network_metrics& b) {
  return a.subscription_messages == b.subscription_messages &&
         a.unsubscription_messages == b.unsubscription_messages &&
         a.reforwards == b.reforwards && a.event_messages == b.event_messages &&
         a.deliveries == b.deliveries && a.covering_checks == b.covering_checks &&
         a.covering_hits == b.covering_hits &&
         a.covering_runs_probed == b.covering_runs_probed &&
         a.covering_probes_restarted == b.covering_probes_restarted &&
         a.covering_probes_resumed == b.covering_probes_resumed &&
         a.covering_tier_cold_probes == b.covering_tier_cold_probes &&
         a.covering_tier_summary_answers == b.covering_tier_summary_answers &&
         a.covering_tier_blocks_decoded == b.covering_tier_blocks_decoded &&
         a.covering_tier_cold_hits == b.covering_tier_cold_hits;
}

std::string network_metrics::to_string() const {
  std::ostringstream os;
  os << "metrics{sub_msgs=" << subscription_messages << ", unsub_msgs=" << unsubscription_messages
     << ", reforwards=" << reforwards << ", event_msgs=" << event_messages
     << ", deliveries=" << deliveries << ", cov_checks=" << covering_checks
     << ", cov_hits=" << covering_hits << ", cov_ns=" << covering_check_ns
     << ", cov_runs_probed=" << covering_runs_probed
     << ", cov_restarted=" << covering_probes_restarted
     << ", cov_resumed=" << covering_probes_resumed
     << ", cov_tier_cold=" << covering_tier_cold_probes
     << ", cov_tier_summary=" << covering_tier_summary_answers
     << ", cov_tier_decoded=" << covering_tier_blocks_decoded
     << ", cov_tier_hits=" << covering_tier_cold_hits
     << ", cov_maint_tombs=" << covering_maint_tombstones
     << ", cov_maint_purged=" << covering_maint_purged
     << ", cov_maint_compact=" << covering_maint_compactions << ", retries=" << retries
     << ", dups_suppressed=" << duplicates_suppressed << ", recoveries=" << recoveries
     << ", wal_bytes=" << wal_bytes << ", reconnects=" << reconnects
     << ", hb_missed=" << heartbeats_missed << ", wire_bytes=" << bytes_on_wire
     << ", partial_writes=" << partial_writes << "}";
  return os.str();
}

}  // namespace subcover
