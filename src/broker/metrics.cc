#include "broker/metrics.h"

#include <sstream>

namespace subcover {

std::string network_metrics::to_string() const {
  std::ostringstream os;
  os << "metrics{sub_msgs=" << subscription_messages << ", unsub_msgs=" << unsubscription_messages
     << ", reforwards=" << reforwards << ", event_msgs=" << event_messages
     << ", deliveries=" << deliveries << ", cov_checks=" << covering_checks
     << ", cov_hits=" << covering_hits << ", cov_ns=" << covering_check_ns
     << ", cov_runs_probed=" << covering_runs_probed
     << ", cov_restarted=" << covering_probes_restarted
     << ", cov_resumed=" << covering_probes_resumed << "}";
  return os.str();
}

}  // namespace subcover
