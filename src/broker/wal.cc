#include "broker/wal.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "broker/codec.h"
#include "util/check.h"

namespace subcover {

namespace {

using wal_reader = codec::basic_byte_reader<wal_error>;
using codec::kFrameHeader;

constexpr std::uint8_t kSnapshotVersion = 1;

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw wal_error("wal: " + what + " " + path + ": " + std::strerror(errno));
}

// Writes the whole buffer through one descriptor, resuming partial writes
// (EINTR, short writes on full pipes are not expected for regular files but
// cost nothing to handle).
void write_fully(int fd, const std::uint8_t* p, std::size_t n, const std::string& path) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("write to", path);
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void fsync_or_throw(int fd, const std::string& path) {
  if (::fsync(fd) != 0) throw_errno("fsync", path);
}

// An fd closed on every path out of scope.
struct fd_guard {
  int fd = -1;
  ~fd_guard() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

// --- record / snapshot payloads ---------------------------------------------

std::vector<std::uint8_t> encode_record(const wal_record& r) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(r.k));
  codec::put_varint(out, r.op);
  codec::put_signed(out, r.from);
  codec::put_varint(out, r.seq);
  switch (r.k) {
    case wal_record::kind::subscribe:
      codec::put_varint(out, r.id);
      codec::put_subscription(out, r.body);
      codec::put_varint(out, r.forwarded_links.size());
      for (const int link : r.forwarded_links) codec::put_signed(out, link);
      break;
    case wal_record::kind::unsubscribe:
      codec::put_varint(out, r.id);
      codec::put_varint(out, r.withdrawn_links.size());
      for (const int link : r.withdrawn_links) codec::put_signed(out, link);
      codec::put_varint(out, r.reforwards.size());
      for (const auto& [link, sub_pair] : r.reforwards) {
        codec::put_signed(out, link);
        codec::put_varint(out, sub_pair.first);
        codec::put_subscription(out, sub_pair.second);
      }
      break;
    case wal_record::kind::event_receipt:
      break;
  }
  return out;
}

namespace {

wal_record decode_record(const std::uint8_t* p, std::size_t n) {
  wal_reader in{p, p + n};
  wal_record r;
  const auto k = in.byte();
  if (k < 1 || k > 3) throw wal_error("wal: unknown record kind");
  r.k = static_cast<wal_record::kind>(k);
  r.op = in.varint();
  r.from = static_cast<int>(in.signed_varint());
  r.seq = in.varint();
  switch (r.k) {
    case wal_record::kind::subscribe: {
      r.id = in.varint();
      r.body = codec::read_subscription(in);
      const auto nlinks = in.varint();
      r.forwarded_links.reserve(nlinks);
      for (std::uint64_t i = 0; i < nlinks; ++i)
        r.forwarded_links.push_back(static_cast<int>(in.signed_varint()));
      break;
    }
    case wal_record::kind::unsubscribe: {
      r.id = in.varint();
      const auto nw = in.varint();
      r.withdrawn_links.reserve(nw);
      for (std::uint64_t i = 0; i < nw; ++i)
        r.withdrawn_links.push_back(static_cast<int>(in.signed_varint()));
      const auto nrf = in.varint();
      r.reforwards.reserve(nrf);
      for (std::uint64_t i = 0; i < nrf; ++i) {
        const int link = static_cast<int>(in.signed_varint());
        const sub_id id = in.varint();
        r.reforwards.push_back({link, {id, codec::read_subscription(in)}});
      }
      break;
    }
    case wal_record::kind::event_receipt:
      break;
  }
  if (!in.done()) throw wal_error("wal: trailing bytes in record payload");
  return r;
}

}  // namespace

std::vector<std::uint8_t> encode_snapshot(const broker_snapshot& s) {
  std::vector<std::uint8_t> out;
  out.push_back(kSnapshotVersion);
  codec::put_varint(out, s.routing.size());
  for (const auto& [link, subs] : s.routing) {
    codec::put_signed(out, link);
    codec::put_id_sub_list(out, subs);
  }
  codec::put_varint(out, s.forwarded.size());
  for (const auto& [link, subs] : s.forwarded) {
    codec::put_signed(out, link);
    codec::put_id_sub_list(out, subs);
  }
  return out;
}

namespace {

broker_snapshot decode_snapshot(const std::uint8_t* p, std::size_t n) {
  wal_reader in{p, p + n};
  if (in.byte() != kSnapshotVersion) throw wal_error("wal: unknown snapshot version");
  broker_snapshot s;
  const auto nrouting = in.varint();
  for (std::uint64_t i = 0; i < nrouting; ++i) {
    const int link = static_cast<int>(in.signed_varint());
    s.routing.emplace(link, codec::read_id_sub_list(in));
  }
  const auto nforwarded = in.varint();
  for (std::uint64_t i = 0; i < nforwarded; ++i) {
    const int link = static_cast<int>(in.signed_varint());
    s.forwarded.emplace(link, codec::read_id_sub_list(in));
  }
  if (!in.done()) throw wal_error("wal: trailing bytes in snapshot payload");
  return s;
}

// Verifies one frame at `bytes + pos` (throwing `what`-specific wal_errors)
// and returns its payload span. Used for the snapshot store only — the
// snapshot is replaced atomically, so a torn frame there means store
// corruption, not a crash window.
std::pair<const std::uint8_t*, std::size_t> checked_frame(const std::vector<std::uint8_t>& bytes,
                                                          std::size_t pos, const char* what) {
  if (bytes.size() - pos < kFrameHeader)
    throw wal_error(std::string("wal: ") + what + " too short");
  const auto len = codec::read_u32le(bytes.data() + pos);
  if (bytes.size() - pos - kFrameHeader < len)
    throw wal_error(std::string("wal: ") + what + " length mismatch");
  const auto sum = codec::read_u64le(bytes.data() + pos + 4);
  const std::uint8_t* payload = bytes.data() + pos + kFrameHeader;
  if (codec::fnv1a64(payload, len) != sum)
    throw wal_error(std::string("wal: ") + what + " checksum mismatch");
  return {payload, len};
}

}  // namespace

// --- stores ------------------------------------------------------------------

void memory_wal_store::append(const std::vector<std::uint8_t>& bytes) {
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
}

void memory_wal_store::replace(const std::vector<std::uint8_t>& bytes) { bytes_ = bytes; }

std::vector<std::uint8_t> memory_wal_store::read_all() const { return bytes_; }

file_wal_store::file_wal_store(std::string path, wal_options options)
    : path_(std::move(path)), options_(options) {}

void file_wal_store::append(const std::vector<std::uint8_t>& bytes) {
  fd_guard f{::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644)};
  if (f.fd < 0) throw_errno("cannot open for append", path_);
  write_fully(f.fd, bytes.data(), bytes.size(), path_);
  if (options_.fsync_on_append) fsync_or_throw(f.fd, path_);
}

void file_wal_store::replace(const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path_ + ".tmp";
  {
    fd_guard f{::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644)};
    if (f.fd < 0) throw_errno("cannot open", tmp);
    write_fully(f.fd, bytes.data(), bytes.size(), tmp);
    // The temp file's bytes must be on stable storage BEFORE the rename
    // publishes them, or a power cut could expose a named-but-empty file.
    if (options_.fsync_on_append) fsync_or_throw(f.fd, tmp);
  }
  // rename(2) is atomic within a filesystem: readers see old or new bytes,
  // never a prefix of the new over a suffix of the old.
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) throw_errno("rename failed for", path_);
  if (options_.fsync_on_append) {
    // Persist the directory entry too — the rename itself is metadata.
    const auto dir = std::filesystem::path(path_).parent_path();
    const std::string dpath = dir.empty() ? "." : dir.string();
    fd_guard d{::open(dpath.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC)};
    if (d.fd < 0) throw_errno("cannot open directory", dpath);
    fsync_or_throw(d.fd, dpath);
  }
}

std::vector<std::uint8_t> file_wal_store::read_all() const {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return {};  // never written: an empty store
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

std::uint64_t file_wal_store::size() const {
  std::error_code ec;
  const auto n = std::filesystem::file_size(path_, ec);
  return ec ? 0 : static_cast<std::uint64_t>(n);
}

// --- file_lock ---------------------------------------------------------------

file_lock& file_lock::operator=(file_lock&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

file_lock::~file_lock() {
  if (fd_ >= 0) ::close(fd_);  // closing releases the flock
}

// --- broker_wal --------------------------------------------------------------

broker_wal::broker_wal()
    : broker_wal(std::make_unique<memory_wal_store>(), std::make_unique<memory_wal_store>()) {}

broker_wal::broker_wal(std::unique_ptr<wal_store> snapshot_store,
                       std::unique_ptr<wal_store> log_store)
    : snapshot_(std::move(snapshot_store)), log_(std::move(log_store)) {
  SUBCOVER_CHECK(snapshot_ != nullptr && log_ != nullptr, "broker_wal: stores required");
}

broker_wal broker_wal::in_directory(const std::string& dir, int broker_id,
                                    wal_options options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) throw wal_error("wal: cannot create directory " + dir + ": " + ec.message());
  const std::string stem = dir + "/broker-" + std::to_string(broker_id);
  const std::string lock_path = stem + ".lock";
  const int fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("cannot open lockfile", lock_path);
  // LOCK_NB: a held lock means a live owner (flock dies with its holder's
  // descriptors, so a SIGKILLed daemon never wedges its own restart) —
  // reject instead of blocking behind it.
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    throw wal_error("wal: directory WAL locked (in use by a live process): " + lock_path);
  }
  broker_wal w{std::make_unique<file_wal_store>(stem + ".snap", options),
               std::make_unique<file_wal_store>(stem + ".log", options)};
  w.lock_ = file_lock(fd);
  return w;
}

void broker_wal::append(const wal_record& r) {
  const auto framed = codec::frame(encode_record(r));
  log_->append(framed);
  bytes_appended_ += framed.size();
  ++records_since_snapshot_;
}

void broker_wal::write_snapshot(const broker_snapshot& snap,
                                const std::vector<std::uint8_t>& aux) {
  auto framed = codec::frame(encode_snapshot(snap));
  if (!aux.empty()) {
    const auto aux_framed = codec::frame(aux);
    framed.insert(framed.end(), aux_framed.begin(), aux_framed.end());
  }
  snapshot_->replace(framed);
  log_->replace({});
  bytes_appended_ += framed.size();
  records_since_snapshot_ = 0;
}

broker_wal::recovery broker_wal::recover() const {
  recovery out;
  const auto snap_bytes = snapshot_->read_all();
  if (!snap_bytes.empty()) {
    const auto [payload, len] = checked_frame(snap_bytes, 0, "snapshot");
    out.snapshot = decode_snapshot(payload, len);
    const std::size_t after = kFrameHeader + len;
    if (after < snap_bytes.size()) {
      // A second frame: the consumer aux blob. Replaced atomically with the
      // snapshot, so anything malformed here is corruption, not a tear.
      const auto [aux_payload, aux_len] = checked_frame(snap_bytes, after, "snapshot aux");
      out.aux.assign(aux_payload, aux_payload + aux_len);
      if (after + kFrameHeader + aux_len != snap_bytes.size())
        throw wal_error("wal: trailing bytes after snapshot aux frame");
    }
  }

  const auto log_bytes = log_->read_all();
  std::size_t pos = 0;
  while (pos < log_bytes.size()) {
    // Any incomplete or checksum-failing suffix is a torn final append:
    // report and stop. (A corrupt record in the *middle* also lands here —
    // everything after it is dropped — which is the safe direction: the
    // replayed prefix is exactly a valid earlier state.)
    if (log_bytes.size() - pos < kFrameHeader) break;
    const auto len = codec::read_u32le(log_bytes.data() + pos);
    if (log_bytes.size() - pos - kFrameHeader < len) break;
    const auto sum = codec::read_u64le(log_bytes.data() + pos + 4);
    const std::uint8_t* payload = log_bytes.data() + pos + kFrameHeader;
    if (codec::fnv1a64(payload, len) != sum) break;
    out.records.push_back(decode_record(payload, len));
    pos += kFrameHeader + len;
  }
  out.torn_bytes = log_bytes.size() - pos;
  return out;
}

}  // namespace subcover
