#include "broker/wal.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/check.h"

namespace subcover {

namespace {

// --- varint / zigzag codec ---------------------------------------------------

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

void put_signed(std::vector<std::uint8_t>& out, std::int64_t v) { put_varint(out, zigzag(v)); }

// Bounded reader over a decoded payload. Every decode failure throws
// wal_error; frame checksums make payload-level corruption unreachable in
// practice, but a wrong-version writer must fail loudly, not read garbage.
struct byte_reader {
  const std::uint8_t* p;
  const std::uint8_t* end;

  [[nodiscard]] bool done() const { return p == end; }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (p == end || shift > 63) throw wal_error("wal: truncated varint");
      const std::uint8_t b = *p++;
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }
  std::int64_t signed_varint() { return unzigzag(varint()); }
  std::uint8_t byte() {
    if (p == end) throw wal_error("wal: truncated payload");
    return *p++;
  }
};

// --- subscription encoding ---------------------------------------------------

void put_subscription(std::vector<std::uint8_t>& out, const subscription& s) {
  put_varint(out, static_cast<std::uint64_t>(s.attribute_count()));
  for (int i = 0; i < s.attribute_count(); ++i) {
    put_varint(out, s.range(i).lo);
    // Gap-code the closed range: hi >= lo always, and narrow constraints
    // (the common case) shrink to one-byte deltas.
    put_varint(out, s.range(i).hi - s.range(i).lo);
  }
}

subscription read_subscription(byte_reader& in) {
  const auto n = in.varint();
  if (n > 1024) throw wal_error("wal: absurd attribute count");
  std::vector<attr_range> ranges;
  ranges.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    attr_range r;
    r.lo = in.varint();
    r.hi = r.lo + in.varint();
    ranges.push_back(r);
  }
  // Bypass schema validation: the ranges were validated when first accepted,
  // and the WAL does not store the owner's schema.
  return subscription::from_raw_ranges(std::move(ranges));
}

void put_id_sub_list(std::vector<std::uint8_t>& out,
                     const std::vector<std::pair<sub_id, subscription>>& subs) {
  put_varint(out, subs.size());
  for (const auto& [id, s] : subs) {
    put_varint(out, id);
    put_subscription(out, s);
  }
}

std::vector<std::pair<sub_id, subscription>> read_id_sub_list(byte_reader& in) {
  const auto n = in.varint();
  std::vector<std::pair<sub_id, subscription>> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const sub_id id = in.varint();
    out.emplace_back(id, read_subscription(in));
  }
  return out;
}

// --- frame checksum ----------------------------------------------------------

std::uint64_t fnv1a64(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t read_u32le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t read_u64le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

constexpr std::size_t kFrameHeader = 4 + 8;  // len + checksum
constexpr std::uint8_t kSnapshotVersion = 1;

std::vector<std::uint8_t> frame(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeader + payload.size());
  put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  put_u64le(out, fnv1a64(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

}  // namespace

// --- record / snapshot payloads ---------------------------------------------

std::vector<std::uint8_t> encode_record(const wal_record& r) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(r.k));
  put_varint(out, r.op);
  put_signed(out, r.from);
  put_varint(out, r.seq);
  switch (r.k) {
    case wal_record::kind::subscribe:
      put_varint(out, r.id);
      put_subscription(out, r.body);
      put_varint(out, r.forwarded_links.size());
      for (const int link : r.forwarded_links) put_signed(out, link);
      break;
    case wal_record::kind::unsubscribe:
      put_varint(out, r.id);
      put_varint(out, r.withdrawn_links.size());
      for (const int link : r.withdrawn_links) put_signed(out, link);
      put_varint(out, r.reforwards.size());
      for (const auto& [link, sub_pair] : r.reforwards) {
        put_signed(out, link);
        put_varint(out, sub_pair.first);
        put_subscription(out, sub_pair.second);
      }
      break;
    case wal_record::kind::event_receipt:
      break;
  }
  return out;
}

namespace {

wal_record decode_record(const std::uint8_t* p, std::size_t n) {
  byte_reader in{p, p + n};
  wal_record r;
  const auto k = in.byte();
  if (k < 1 || k > 3) throw wal_error("wal: unknown record kind");
  r.k = static_cast<wal_record::kind>(k);
  r.op = in.varint();
  r.from = static_cast<int>(in.signed_varint());
  r.seq = in.varint();
  switch (r.k) {
    case wal_record::kind::subscribe: {
      r.id = in.varint();
      r.body = read_subscription(in);
      const auto nlinks = in.varint();
      r.forwarded_links.reserve(nlinks);
      for (std::uint64_t i = 0; i < nlinks; ++i)
        r.forwarded_links.push_back(static_cast<int>(in.signed_varint()));
      break;
    }
    case wal_record::kind::unsubscribe: {
      r.id = in.varint();
      const auto nw = in.varint();
      r.withdrawn_links.reserve(nw);
      for (std::uint64_t i = 0; i < nw; ++i)
        r.withdrawn_links.push_back(static_cast<int>(in.signed_varint()));
      const auto nrf = in.varint();
      r.reforwards.reserve(nrf);
      for (std::uint64_t i = 0; i < nrf; ++i) {
        const int link = static_cast<int>(in.signed_varint());
        const sub_id id = in.varint();
        r.reforwards.push_back({link, {id, read_subscription(in)}});
      }
      break;
    }
    case wal_record::kind::event_receipt:
      break;
  }
  if (!in.done()) throw wal_error("wal: trailing bytes in record payload");
  return r;
}

}  // namespace

std::vector<std::uint8_t> encode_snapshot(const broker_snapshot& s) {
  std::vector<std::uint8_t> out;
  out.push_back(kSnapshotVersion);
  put_varint(out, s.routing.size());
  for (const auto& [link, subs] : s.routing) {
    put_signed(out, link);
    put_id_sub_list(out, subs);
  }
  put_varint(out, s.forwarded.size());
  for (const auto& [link, subs] : s.forwarded) {
    put_signed(out, link);
    put_id_sub_list(out, subs);
  }
  return out;
}

namespace {

broker_snapshot decode_snapshot(const std::uint8_t* p, std::size_t n) {
  byte_reader in{p, p + n};
  if (in.byte() != kSnapshotVersion) throw wal_error("wal: unknown snapshot version");
  broker_snapshot s;
  const auto nrouting = in.varint();
  for (std::uint64_t i = 0; i < nrouting; ++i) {
    const int link = static_cast<int>(in.signed_varint());
    s.routing.emplace(link, read_id_sub_list(in));
  }
  const auto nforwarded = in.varint();
  for (std::uint64_t i = 0; i < nforwarded; ++i) {
    const int link = static_cast<int>(in.signed_varint());
    s.forwarded.emplace(link, read_id_sub_list(in));
  }
  if (!in.done()) throw wal_error("wal: trailing bytes in snapshot payload");
  return s;
}

}  // namespace

// --- stores ------------------------------------------------------------------

void memory_wal_store::append(const std::vector<std::uint8_t>& bytes) {
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
}

void memory_wal_store::replace(const std::vector<std::uint8_t>& bytes) { bytes_ = bytes; }

std::vector<std::uint8_t> memory_wal_store::read_all() const { return bytes_; }

file_wal_store::file_wal_store(std::string path) : path_(std::move(path)) {}

void file_wal_store::append(const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out) throw wal_error("wal: cannot open " + path_ + " for append");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) throw wal_error("wal: append to " + path_ + " failed");
}

void file_wal_store::replace(const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw wal_error("wal: cannot open " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) throw wal_error("wal: write to " + tmp + " failed");
  }
  // rename(2) is atomic within a filesystem: readers see old or new bytes,
  // never a prefix of the new over a suffix of the old.
  if (std::rename(tmp.c_str(), path_.c_str()) != 0)
    throw wal_error("wal: rename " + tmp + " -> " + path_ + " failed");
}

std::vector<std::uint8_t> file_wal_store::read_all() const {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return {};  // never written: an empty store
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

std::uint64_t file_wal_store::size() const {
  std::error_code ec;
  const auto n = std::filesystem::file_size(path_, ec);
  return ec ? 0 : static_cast<std::uint64_t>(n);
}

// --- broker_wal --------------------------------------------------------------

broker_wal::broker_wal()
    : broker_wal(std::make_unique<memory_wal_store>(), std::make_unique<memory_wal_store>()) {}

broker_wal::broker_wal(std::unique_ptr<wal_store> snapshot_store,
                       std::unique_ptr<wal_store> log_store)
    : snapshot_(std::move(snapshot_store)), log_(std::move(log_store)) {
  SUBCOVER_CHECK(snapshot_ != nullptr && log_ != nullptr, "broker_wal: stores required");
}

broker_wal broker_wal::in_directory(const std::string& dir, int broker_id) {
  const std::string stem = dir + "/broker-" + std::to_string(broker_id);
  return {std::make_unique<file_wal_store>(stem + ".snap"),
          std::make_unique<file_wal_store>(stem + ".log")};
}

void broker_wal::append(const wal_record& r) {
  const auto framed = frame(encode_record(r));
  log_->append(framed);
  bytes_appended_ += framed.size();
  ++records_since_snapshot_;
}

void broker_wal::write_snapshot(const broker_snapshot& snap) {
  const auto framed = frame(encode_snapshot(snap));
  snapshot_->replace(framed);
  log_->replace({});
  bytes_appended_ += framed.size();
  records_since_snapshot_ = 0;
}

broker_wal::recovery broker_wal::recover() const {
  recovery out;
  const auto snap_bytes = snapshot_->read_all();
  if (!snap_bytes.empty()) {
    // The snapshot is replaced atomically, so a torn snapshot means store
    // corruption, not a crash window: fail loudly.
    if (snap_bytes.size() < kFrameHeader) throw wal_error("wal: snapshot too short");
    const auto len = read_u32le(snap_bytes.data());
    const auto sum = read_u64le(snap_bytes.data() + 4);
    if (snap_bytes.size() != kFrameHeader + len)
      throw wal_error("wal: snapshot length mismatch");
    if (fnv1a64(snap_bytes.data() + kFrameHeader, len) != sum)
      throw wal_error("wal: snapshot checksum mismatch");
    out.snapshot = decode_snapshot(snap_bytes.data() + kFrameHeader, len);
  }

  const auto log_bytes = log_->read_all();
  std::size_t pos = 0;
  while (pos < log_bytes.size()) {
    // Any incomplete or checksum-failing suffix is a torn final append:
    // report and stop. (A corrupt record in the *middle* also lands here —
    // everything after it is dropped — which is the safe direction: the
    // replayed prefix is exactly a valid earlier state.)
    if (log_bytes.size() - pos < kFrameHeader) break;
    const auto len = read_u32le(log_bytes.data() + pos);
    if (log_bytes.size() - pos - kFrameHeader < len) break;
    const auto sum = read_u64le(log_bytes.data() + pos + 4);
    const std::uint8_t* payload = log_bytes.data() + pos + kFrameHeader;
    if (fnv1a64(payload, len) != sum) break;
    out.records.push_back(decode_record(payload, len));
    pos += kFrameHeader + len;
  }
  out.torn_bytes = log_bytes.size() - pos;
  return out;
}

}  // namespace subcover
