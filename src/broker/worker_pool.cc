#include "broker/worker_pool.h"

#include <atomic>
#include <exception>
#include <memory>

namespace subcover {

namespace {

// Shared state of one run_batch call. Heap-allocated and owned jointly by
// the caller and the helper jobs (shared_ptr), so a helper that is dequeued
// after the batch has already completed finds `next >= n`, does nothing, and
// releases its reference — no lifetime race with the caller's stack.
struct batch_state {
  explicit batch_state(std::size_t count, const std::function<void(std::size_t)>& fn)
      : n(count), job(fn) {}

  const std::size_t n;
  const std::function<void(std::size_t)>& job;  // outlives the batch: caller blocks
  std::atomic<std::size_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t done = 0;                  // guarded by mu
  std::exception_ptr first_error;        // guarded by mu

  // Claims and runs indexes until none are left. A throwing job must not
  // escape here — on a pool worker it would std::terminate the process, and
  // an unfinished index would deadlock the caller's join — so the first
  // exception is captured (and the index still counted done) for run_batch
  // to rethrow after the join, matching the serial engine's propagation.
  void help() {
    std::size_t ran = 0;
    std::exception_ptr error;
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      try {
        job(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
      ++ran;
    }
    if (ran > 0) {
      const std::lock_guard<std::mutex> lock(mu);
      done += ran;
      if (error && !first_error) first_error = error;
      if (done == n) done_cv.notify_all();
    }
  }
};

}  // namespace

worker_pool::worker_pool(int workers) {
  const int n = workers < 1 ? 1 : workers;
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) threads_.emplace_back([this] { worker_main(); });
}

worker_pool::~worker_pool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

bool worker_pool::submit(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return false;
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return true;
}

void worker_pool::run_batch(std::size_t n, const std::function<void(std::size_t)>& job) {
  if (n == 0) return;
  if (n == 1 || size() == 1) {
    // Nothing to steal: run inline (the caller would claim every index
    // anyway, and skipping the shared state keeps the 1-worker
    // configuration at exact parity with a plain loop) — with the same
    // exception contract as the stealing path: every index is attempted,
    // the first exception is rethrown after.
    std::exception_ptr error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        job(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
  auto state = std::make_shared<batch_state>(n, job);
  const std::size_t helpers =
      std::min(static_cast<std::size_t>(size() - 1), n - 1);
  // A rejected helper (pool already stopping) is harmless: the caller
  // claims every remaining index itself below.
  for (std::size_t h = 0; h < helpers; ++h)
    (void)submit([state] { state->help(); });
  state->help();
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->done == state->n; });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

void worker_pool::worker_main() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and no work left
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace subcover
