#include "broker/broker.h"

#include <exception>
#include <stdexcept>

#include "broker/worker_pool.h"
#include "util/check.h"

namespace subcover {

broker::broker(int id, const schema& s, const std::vector<int>& neighbor_links,
               const covering_index_factory& factory, broker_options options)
    : id_(id), schema_(s), links_(neighbor_links), options_(options), factory_(factory) {
  SUBCOVER_CHECK(static_cast<bool>(factory_), "broker: covering index factory required");
  for (const int link : links_) {
    link_shard shard;
    shard.index = factory_(schema_);
    shards_.emplace(link, std::move(shard));
  }
}

broker::broker(int id, const schema& s, const std::vector<int>& neighbor_links,
               const covering_index_factory& factory, broker_options options,
               const std::map<int, std::vector<std::pair<sub_id, subscription>>>&
                   initial_forwarded)
    : broker(id, s, neighbor_links, factory, options) {
  for (const auto& [link, subs] : initial_forwarded) bootstrap_forwarded(link, subs);
}

void broker::bootstrap_forwarded(int link,
                                 const std::vector<std::pair<sub_id, subscription>>& subs) {
  const auto it = shards_.find(link);
  if (it == shards_.end())
    throw std::invalid_argument("broker: bootstrap for unknown link");
  link_shard& shard = it->second;
  // All-or-nothing: a duplicate id must not leave the covering index
  // disagreeing with the forwarded set (that would silently swallow later
  // forwards), so validate before mutating either structure.
  std::set<sub_id> batch_ids;
  for (const auto& [id, s] : subs) {
    (void)s;
    if (shard.forwarded.count(id) > 0 || !batch_ids.insert(id).second)
      throw std::invalid_argument("broker: bootstrap duplicates a forwarded id");
  }
  shard.index->insert_batch(subs);
  for (const auto& [id, s] : subs) shard.forwarded.emplace(id, s);
}

bool broker::covered_on_shard(const link_shard& shard, const subscription& s,
                              network_metrics& metrics) const {
  const auto hit = shard.index->find_covering(s, options_.epsilon, &shard.scratch);
  ++metrics.covering_checks;
  metrics.covering_check_ns += shard.scratch.elapsed_ns;
  metrics.covering_runs_probed += shard.scratch.dominance.runs_probed;
  metrics.covering_probes_restarted += shard.scratch.dominance.probes_restarted;
  metrics.covering_probes_resumed += shard.scratch.dominance.probes_resumed;
  metrics.covering_tier_cold_probes += shard.scratch.dominance.tier_cold_probes;
  metrics.covering_tier_summary_answers += shard.scratch.dominance.tier_summary_answers;
  metrics.covering_tier_blocks_decoded += shard.scratch.dominance.tier_blocks_decoded;
  metrics.covering_tier_cold_hits += shard.scratch.dominance.tier_cold_hits;
  metrics.covering_maint_tombstones += shard.scratch.dominance.maint_tombstones_added;
  metrics.covering_maint_purged += shard.scratch.dominance.maint_tombstones_purged;
  metrics.covering_maint_compactions += shard.scratch.dominance.maint_compactions;
  if (hit.has_value()) ++metrics.covering_hits;
  return hit.has_value();
}

bool broker::subscribe_on_shard(link_shard& shard, sub_id id, const subscription& s,
                                network_metrics& metrics) {
  if (options_.use_covering && covered_on_shard(shard, s, metrics)) return false;
  shard.index->insert(id, s);
  shard.forwarded.emplace(id, s);
  return true;
}

broker::shard_unsubscribe_result broker::unsubscribe_on_shard(link_shard& shard, int link,
                                                              sub_id id,
                                                              network_metrics& metrics) {
  shard_unsubscribe_result result;
  const auto it = shard.forwarded.find(id);
  if (it == shard.forwarded.end()) return result;  // was suppressed on this link
  // Withdraw the subscription downstream.
  shard.index->erase(id);
  shard.forwarded.erase(it);
  result.forward = true;
  // Subscriptions whose forward was suppressed because of (possibly) this
  // one may now be uncovered; re-check every active, unforwarded
  // subscription and re-forward the ones no longer covered. Reads only the
  // routing table (shared, unmodified during the per-shard fan-out) and
  // this shard.
  for (const auto& [other_id, other_sub] : table_.subs_not_from(link)) {
    if (other_id == id) continue;
    if (shard.forwarded.count(other_id) > 0) continue;  // already forwarded
    if (options_.use_covering && covered_on_shard(shard, other_sub, metrics)) continue;
    shard.index->insert(other_id, other_sub);
    shard.forwarded.emplace(other_id, other_sub);
    result.reforwards.push_back({other_id, other_sub});
  }
  return result;
}

broker::subscribe_action broker::handle_subscribe(int from_link, sub_id id,
                                                  const subscription& s,
                                                  network_metrics& metrics) {
  table_.add(from_link, id, s);
  subscribe_action action;
  // Attempt every shard even if one throws — the same attempt-every-index
  // contract as worker_pool::run_batch, so the serial and parallel handlers
  // leave identical shard state on failure. First error rethrown after.
  std::exception_ptr first_error;
  for (const int link : links_) {
    if (link == from_link) continue;
    try {
      if (subscribe_on_shard(shards_.at(link), id, s, metrics))
        action.forward_links.push_back(link);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return action;
}

void broker::collect_targets(int from_link) {
  targets_.clear();
  target_links_.clear();
  for (const int link : links_) {
    if (link == from_link) continue;
    targets_.push_back(&shards_.at(link));
    target_links_.push_back(link);
  }
  delta_scratch_.assign(targets_.size(), network_metrics{});
}

broker::subscribe_action broker::handle_subscribe_parallel(int from_link, sub_id id,
                                                           const subscription& s,
                                                           network_metrics& metrics,
                                                           worker_pool& pool) {
  table_.add(from_link, id, s);
  // Shard fan-out: job i owns exactly targets_[i]'s shard plus slot i of
  // the result scratch; the merge below runs on this thread in link order,
  // so the action and the metric totals match the serial handler exactly.
  collect_targets(from_link);
  forward_scratch_.assign(targets_.size(), 0);
  // run_batch attempts every index even when one throws; fold the per-shard
  // metric deltas BEFORE rethrowing so the totals match the serial handler's
  // accumulate-as-you-go exactly on the failure path too.
  std::exception_ptr error;
  try {
    pool.run_batch(targets_.size(), [&](std::size_t i) {
      forward_scratch_[i] = subscribe_on_shard(*targets_[i], id, s, delta_scratch_[i]) ? 1 : 0;
    });
  } catch (...) {
    error = std::current_exception();
  }
  subscribe_action action;
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    metrics += delta_scratch_[i];
    if (forward_scratch_[i] != 0) action.forward_links.push_back(target_links_[i]);
  }
  if (error) std::rethrow_exception(error);
  return action;
}

broker::unsubscribe_action broker::handle_unsubscribe(int from_link, sub_id id,
                                                      network_metrics& metrics) {
  const bool removed = table_.remove(from_link, id);
  SUBCOVER_CHECK(removed, "broker: unsubscribe for unknown subscription");
  unsubscribe_action action;
  std::exception_ptr first_error;
  for (const int link : links_) {
    if (link == from_link) continue;
    try {
      auto result = unsubscribe_on_shard(shards_.at(link), link, id, metrics);
      if (!result.forward) continue;
      action.forward_links.push_back(link);
      for (auto& rf : result.reforwards) action.reforwards.push_back({link, std::move(rf)});
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return action;
}

broker::unsubscribe_batch_action broker::handle_unsubscribe_batch(
    int from_link, const std::vector<sub_id>& ids, network_metrics& metrics) {
  for (const sub_id id : ids) {
    const bool removed = table_.remove(from_link, id);
    SUBCOVER_CHECK(removed, "broker: unsubscribe for unknown subscription");
  }
  unsubscribe_batch_action action;
  std::exception_ptr first_error;
  for (const int link : links_) {
    if (link == from_link) continue;
    try {
      link_shard& shard = shards_.at(link);
      // Withdraw every forwarded id of the batch in one covering-index
      // erase_batch — the bulk path that pays the dominance array's
      // tombstone/compaction machinery once.
      std::vector<sub_id> withdrawn;
      for (const sub_id id : ids)
        if (shard.forwarded.count(id) > 0) withdrawn.push_back(id);
      if (withdrawn.empty()) continue;  // all suppressed on this link
      const std::size_t erased = shard.index->erase_batch(withdrawn);
      SUBCOVER_CHECK(erased == withdrawn.size(), "broker: covering index out of sync");
      for (const sub_id id : withdrawn) shard.forwarded.erase(id);
      // One re-forward sweep against the post-batch state (the table no
      // longer holds any batch id, so no per-id skip is needed).
      for (const auto& [other_id, other_sub] : table_.subs_not_from(link)) {
        if (shard.forwarded.count(other_id) > 0) continue;  // already forwarded
        if (options_.use_covering && covered_on_shard(shard, other_sub, metrics)) continue;
        shard.index->insert(other_id, other_sub);
        shard.forwarded.emplace(other_id, other_sub);
        action.reforwards.push_back({link, {other_id, other_sub}});
      }
      action.forward_links.push_back({link, std::move(withdrawn)});
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return action;
}

broker::unsubscribe_action broker::handle_unsubscribe_parallel(int from_link, sub_id id,
                                                               network_metrics& metrics,
                                                               worker_pool& pool) {
  const bool removed = table_.remove(from_link, id);
  SUBCOVER_CHECK(removed, "broker: unsubscribe for unknown subscription");
  collect_targets(from_link);
  unsub_scratch_.assign(targets_.size(), shard_unsubscribe_result{});
  std::exception_ptr error;
  try {
    pool.run_batch(targets_.size(), [&](std::size_t i) {
      unsub_scratch_[i] =
          unsubscribe_on_shard(*targets_[i], target_links_[i], id, delta_scratch_[i]);
    });
  } catch (...) {
    error = std::current_exception();
  }
  unsubscribe_action action;
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    metrics += delta_scratch_[i];
    if (!unsub_scratch_[i].forward) continue;
    action.forward_links.push_back(target_links_[i]);
    for (auto& rf : unsub_scratch_[i].reforwards)
      action.reforwards.push_back({target_links_[i], std::move(rf)});
  }
  if (error) std::rethrow_exception(error);
  return action;
}

broker::event_action broker::handle_event(int from_link, const event& e) const {
  event_action action;
  action.forward_links = table_.matching_links(e, from_link);
  // Local clients always receive matching events, even when the event came
  // from the local link itself (a publisher can also be a subscriber);
  // matching_links above excludes the local link from forwards.
  action.local_deliveries = table_.matching_subs(kLocalLink, e);
  // Do not forward back over the local pseudo-link.
  std::erase(action.forward_links, kLocalLink);
  return action;
}

broker_snapshot broker::snapshot() const {
  broker_snapshot snap;
  snap.routing = table_.snapshot();
  for (const auto& [link, shard] : shards_) {
    auto& subs = snap.forwarded[link];
    subs.reserve(shard.forwarded.size());
    for (const auto& [id, s] : shard.forwarded) subs.emplace_back(id, s);
  }
  return snap;
}

void broker::checkpoint(broker_wal& wal) const { wal.write_snapshot(snapshot()); }

void broker::apply_replay(const wal_record& r) {
  switch (r.k) {
    case wal_record::kind::subscribe:
      table_.add(r.from, r.id, r.body);
      for (const int link : r.forwarded_links) {
        link_shard& shard = shards_.at(link);
        shard.index->insert(r.id, r.body);
        shard.forwarded.emplace(r.id, r.body);
      }
      break;
    case wal_record::kind::unsubscribe: {
      const bool removed = table_.remove(r.from, r.id);
      SUBCOVER_CHECK(removed, "broker: replayed unsubscribe for unknown subscription");
      for (const int link : r.withdrawn_links) {
        link_shard& shard = shards_.at(link);
        shard.index->erase(r.id);
        shard.forwarded.erase(r.id);
      }
      for (const auto& [link, sub_pair] : r.reforwards) {
        link_shard& shard = shards_.at(link);
        shard.index->insert(sub_pair.first, sub_pair.second);
        shard.forwarded.emplace(sub_pair.first, sub_pair.second);
      }
      break;
    }
    case wal_record::kind::event_receipt:
      break;  // channel-position bookkeeping only; no routing state moves
  }
}

broker broker::recover(int id, const schema& s, const std::vector<int>& neighbor_links,
                       const covering_index_factory& factory, broker_options options,
                       const broker_wal::recovery& rec) {
  broker b(id, s, neighbor_links, factory, options, rec.snapshot.forwarded);
  for (const auto& [link, subs] : rec.snapshot.routing)
    for (const auto& [sid, body] : subs) b.table_.add(link, sid, body);
  for (const auto& r : rec.records) b.apply_replay(r);
  return b;
}

std::size_t broker::forwarded_to(int link) const {
  const auto it = shards_.find(link);
  return it == shards_.end() ? 0 : it->second.forwarded.size();
}

std::vector<sub_id> broker::forwarded_ids(int link) const {
  std::vector<sub_id> out;
  const auto it = shards_.find(link);
  if (it == shards_.end()) return out;
  out.reserve(it->second.forwarded.size());
  for (const auto& [id, s] : it->second.forwarded) {
    (void)s;
    out.push_back(id);
  }
  return out;
}

std::size_t broker::memory_footprint() const {
  constexpr std::size_t kNodeOverhead = 4 * sizeof(void*);
  std::size_t total = sizeof(*this) + table_.memory_footprint();
  for (const auto& [link, shard] : shards_) {
    (void)link;
    total += kNodeOverhead + sizeof(std::pair<const int, link_shard>);
    total += shard.index->memory_footprint();
    for (const auto& [id, s] : shard.forwarded) {
      (void)id;
      total += kNodeOverhead + sizeof(std::pair<const sub_id, subscription>) +
               static_cast<std::size_t>(s.attribute_count()) * sizeof(attr_range);
    }
  }
  return total;
}

}  // namespace subcover
