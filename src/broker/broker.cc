#include "broker/broker.h"

#include <stdexcept>

#include "util/check.h"

namespace subcover {

broker::broker(int id, const schema& s, const std::vector<int>& neighbor_links,
               const covering_index_factory& factory, broker_options options)
    : id_(id), schema_(s), links_(neighbor_links), options_(options), factory_(factory) {
  SUBCOVER_CHECK(static_cast<bool>(factory_), "broker: covering index factory required");
  for (const int link : links_) {
    forwarded_.emplace(link, factory_(schema_));
    forwarded_subs_.emplace(link, std::map<sub_id, subscription>{});
  }
}

broker::broker(int id, const schema& s, const std::vector<int>& neighbor_links,
               const covering_index_factory& factory, broker_options options,
               const std::map<int, std::vector<std::pair<sub_id, subscription>>>&
                   initial_forwarded)
    : broker(id, s, neighbor_links, factory, options) {
  for (const auto& [link, subs] : initial_forwarded) bootstrap_forwarded(link, subs);
}

void broker::bootstrap_forwarded(int link,
                                 const std::vector<std::pair<sub_id, subscription>>& subs) {
  const auto it = forwarded_.find(link);
  if (it == forwarded_.end())
    throw std::invalid_argument("broker: bootstrap for unknown link");
  auto& fwd_subs = forwarded_subs_.at(link);
  // All-or-nothing: a duplicate id must not leave the covering index
  // disagreeing with forwarded_subs_ (that would silently swallow later
  // forwards), so validate before mutating either structure.
  std::set<sub_id> batch_ids;
  for (const auto& [id, s] : subs) {
    (void)s;
    if (fwd_subs.count(id) > 0 || !batch_ids.insert(id).second)
      throw std::invalid_argument("broker: bootstrap duplicates a forwarded id");
  }
  it->second->insert_batch(subs);
  for (const auto& [id, s] : subs) fwd_subs.emplace(id, s);
}

bool broker::covered_on_link(int link, const subscription& s, network_metrics& metrics) const {
  const auto it = forwarded_.find(link);
  SUBCOVER_CHECK(it != forwarded_.end(), "broker: unknown link");
  const auto hit = it->second->find_covering(s, options_.epsilon, &check_scratch_);
  ++metrics.covering_checks;
  metrics.covering_check_ns += check_scratch_.elapsed_ns;
  metrics.covering_runs_probed += check_scratch_.dominance.runs_probed;
  metrics.covering_probes_restarted += check_scratch_.dominance.probes_restarted;
  metrics.covering_probes_resumed += check_scratch_.dominance.probes_resumed;
  if (hit.has_value()) ++metrics.covering_hits;
  return hit.has_value();
}

broker::subscribe_action broker::handle_subscribe(int from_link, sub_id id,
                                                  const subscription& s,
                                                  network_metrics& metrics) {
  table_.add(from_link, id, s);
  subscribe_action action;
  for (const int link : links_) {
    if (link == from_link) continue;
    if (options_.use_covering && covered_on_link(link, s, metrics)) continue;
    forwarded_.at(link)->insert(id, s);
    forwarded_subs_.at(link).emplace(id, s);
    action.forward_links.push_back(link);
  }
  return action;
}

broker::unsubscribe_action broker::handle_unsubscribe(int from_link, sub_id id,
                                                      network_metrics& metrics) {
  const bool removed = table_.remove(from_link, id);
  SUBCOVER_CHECK(removed, "broker: unsubscribe for unknown subscription");
  unsubscribe_action action;
  for (const int link : links_) {
    if (link == from_link) continue;
    auto& fwd_subs = forwarded_subs_.at(link);
    const auto it = fwd_subs.find(id);
    if (it == fwd_subs.end()) continue;  // was suppressed on this link
    // Withdraw the subscription downstream.
    forwarded_.at(link)->erase(id);
    fwd_subs.erase(it);
    action.forward_links.push_back(link);
    // Subscriptions whose forward was suppressed because of (possibly) this
    // one may now be uncovered; re-check every active, unforwarded
    // subscription and re-forward the ones no longer covered.
    for (const auto& [other_id, other_sub] : table_.subs_not_from(link)) {
      if (other_id == id) continue;
      if (fwd_subs.count(other_id) > 0) continue;  // already forwarded
      if (options_.use_covering && covered_on_link(link, other_sub, metrics)) continue;
      forwarded_.at(link)->insert(other_id, other_sub);
      fwd_subs.emplace(other_id, other_sub);
      action.reforwards.push_back({link, {other_id, other_sub}});
    }
  }
  return action;
}

broker::event_action broker::handle_event(int from_link, const event& e) const {
  event_action action;
  action.forward_links = table_.matching_links(e, from_link);
  // Local clients always receive matching events, even when the event came
  // from the local link itself (a publisher can also be a subscriber);
  // matching_links above excludes the local link from forwards.
  action.local_deliveries = table_.matching_subs(kLocalLink, e);
  // Do not forward back over the local pseudo-link.
  std::erase(action.forward_links, kLocalLink);
  return action;
}

std::size_t broker::forwarded_to(int link) const {
  const auto it = forwarded_subs_.find(link);
  return it == forwarded_subs_.end() ? 0 : it->second.size();
}

}  // namespace subcover
