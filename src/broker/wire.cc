#include "broker/wire.h"

#include <cstring>

#include "broker/codec.h"

namespace subcover {

namespace {

using wire_reader = codec::basic_byte_reader<wire_error>;
using codec::kFrameHeader;

// Metrics travel as a counted list of varints in declaration order, so a
// field added to network_metrics shows up here (and in the count check)
// exactly once.
constexpr std::size_t kMetricsFields = 26;

void put_metrics(std::vector<std::uint8_t>& out, const network_metrics& m) {
  const std::uint64_t fields[kMetricsFields] = {
      m.subscription_messages, m.unsubscription_messages, m.reforwards, m.event_messages,
      m.deliveries, m.covering_checks, m.covering_hits, m.covering_check_ns,
      m.covering_runs_probed, m.covering_probes_restarted, m.covering_probes_resumed,
      m.covering_tier_cold_probes, m.covering_tier_summary_answers,
      m.covering_tier_blocks_decoded, m.covering_tier_cold_hits, m.covering_maint_tombstones,
      m.covering_maint_purged, m.covering_maint_compactions, m.retries,
      m.duplicates_suppressed, m.recoveries, m.wal_bytes, m.reconnects, m.heartbeats_missed,
      m.bytes_on_wire, m.partial_writes};
  codec::put_varint(out, kMetricsFields);
  for (const auto f : fields) codec::put_varint(out, f);
}

network_metrics read_metrics(wire_reader& in) {
  if (in.varint() != kMetricsFields) throw wire_error("wire: metrics field-count mismatch");
  std::uint64_t f[kMetricsFields];
  for (auto& v : f) v = in.varint();
  network_metrics m;
  m.subscription_messages = f[0];
  m.unsubscription_messages = f[1];
  m.reforwards = f[2];
  m.event_messages = f[3];
  m.deliveries = f[4];
  m.covering_checks = f[5];
  m.covering_hits = f[6];
  m.covering_check_ns = f[7];
  m.covering_runs_probed = f[8];
  m.covering_probes_restarted = f[9];
  m.covering_probes_resumed = f[10];
  m.covering_tier_cold_probes = f[11];
  m.covering_tier_summary_answers = f[12];
  m.covering_tier_blocks_decoded = f[13];
  m.covering_tier_cold_hits = f[14];
  m.covering_maint_tombstones = f[15];
  m.covering_maint_purged = f[16];
  m.covering_maint_compactions = f[17];
  m.retries = f[18];
  m.duplicates_suppressed = f[19];
  m.recoveries = f[20];
  m.wal_bytes = f[21];
  m.reconnects = f[22];
  m.heartbeats_missed = f[23];
  m.bytes_on_wire = f[24];
  m.partial_writes = f[25];
  return m;
}

void put_id_list(std::vector<std::uint8_t>& out, const std::vector<sub_id>& ids) {
  codec::put_varint(out, ids.size());
  // Delta-coded: delivered/acked id lists are ascending by contract.
  std::uint64_t prev = 0;
  for (const auto id : ids) {
    codec::put_varint(out, id - prev);
    prev = id;
  }
}

std::vector<sub_id> read_id_list(wire_reader& in) {
  const auto n = in.varint();
  std::vector<sub_id> ids;
  ids.reserve(n);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    prev += in.varint();
    ids.push_back(prev);
  }
  return ids;
}

}  // namespace

std::vector<std::uint8_t> encode_msg(const wire_msg& m) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(m.type));
  switch (m.type) {
    case msg_type::hello:
      codec::put_signed(out, m.sender);
      break;
    case msg_type::heartbeat:
    case msg_type::client_dump:
    case msg_type::client_shutdown:
      break;
    case msg_type::subscribe:
      codec::put_varint(out, m.op);
      codec::put_varint(out, m.seq);
      codec::put_varint(out, m.id);
      codec::put_subscription(out, m.body);
      break;
    case msg_type::unsubscribe:
      codec::put_varint(out, m.op);
      codec::put_varint(out, m.seq);
      codec::put_varint(out, m.id);
      break;
    case msg_type::publish:
      codec::put_varint(out, m.op);
      codec::put_varint(out, m.seq);
      codec::put_varint(out, m.values.size());
      for (const auto v : m.values) codec::put_varint(out, v);
      break;
    case msg_type::ack:
      codec::put_varint(out, m.op);
      codec::put_varint(out, m.seq);
      put_id_list(out, m.delivered);
      break;
    case msg_type::client_subscribe:
      codec::put_varint(out, m.id);
      codec::put_subscription(out, m.body);
      break;
    case msg_type::client_unsubscribe:
      codec::put_varint(out, m.id);
      break;
    case msg_type::client_publish:
      codec::put_varint(out, m.values.size());
      for (const auto v : m.values) codec::put_varint(out, v);
      break;
    case msg_type::client_done:
      codec::put_varint(out, m.op);
      out.push_back(m.status);
      put_id_list(out, m.delivered);
      break;
    case msg_type::dump_reply:
      codec::put_varint(out, m.snapshot.size());
      out.insert(out.end(), m.snapshot.begin(), m.snapshot.end());
      put_metrics(out, m.metrics);
      break;
  }
  return out;
}

wire_msg decode_msg(const std::uint8_t* p, std::size_t n) {
  wire_reader in{p, p + n};
  wire_msg m;
  const auto t = in.byte();
  if (t < 1 || t > 13) throw wire_error("wire: unknown message type");
  m.type = static_cast<msg_type>(t);
  switch (m.type) {
    case msg_type::hello:
      m.sender = static_cast<int>(in.signed_varint());
      break;
    case msg_type::heartbeat:
    case msg_type::client_dump:
    case msg_type::client_shutdown:
      break;
    case msg_type::subscribe:
      m.op = in.varint();
      m.seq = in.varint();
      m.id = in.varint();
      m.body = codec::read_subscription(in);
      break;
    case msg_type::unsubscribe:
      m.op = in.varint();
      m.seq = in.varint();
      m.id = in.varint();
      break;
    case msg_type::publish: {
      m.op = in.varint();
      m.seq = in.varint();
      const auto nv = in.varint();
      if (nv > 1024) throw wire_error("wire: absurd event width");
      m.values.reserve(nv);
      for (std::uint64_t i = 0; i < nv; ++i) m.values.push_back(in.varint());
      break;
    }
    case msg_type::ack:
      m.op = in.varint();
      m.seq = in.varint();
      m.delivered = read_id_list(in);
      break;
    case msg_type::client_subscribe:
      m.id = in.varint();
      m.body = codec::read_subscription(in);
      break;
    case msg_type::client_unsubscribe:
      m.id = in.varint();
      break;
    case msg_type::client_publish: {
      const auto nv = in.varint();
      if (nv > 1024) throw wire_error("wire: absurd event width");
      m.values.reserve(nv);
      for (std::uint64_t i = 0; i < nv; ++i) m.values.push_back(in.varint());
      break;
    }
    case msg_type::client_done:
      m.op = in.varint();
      m.status = in.byte();
      m.delivered = read_id_list(in);
      break;
    case msg_type::dump_reply: {
      const auto ns = in.varint();
      if (static_cast<std::size_t>(in.end - in.p) < ns)
        throw wire_error("codec: truncated payload");
      m.snapshot.assign(in.p, in.p + ns);
      in.p += ns;
      m.metrics = read_metrics(in);
      break;
    }
  }
  if (!in.done()) throw wire_error("wire: trailing bytes in message payload");
  return m;
}

std::vector<std::uint8_t> frame_msg(const wire_msg& m) { return codec::frame(encode_msg(m)); }

void frame_decoder::feed(const std::uint8_t* data, std::size_t n) {
  // Reclaim the consumed prefix before growing: steady-state the buffer
  // holds at most one partial frame, so this stays O(frame), not O(stream).
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 4096)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<std::vector<std::uint8_t>> frame_decoder::next() {
  if (poisoned_) throw wire_error("wire: decoder poisoned by earlier corruption");
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeader) return std::nullopt;
  const std::uint8_t* base = buf_.data() + pos_;
  const auto len = codec::read_u32le(base);
  if (len > kMaxWirePayload) {
    poisoned_ = true;
    throw wire_error("wire: frame length exceeds maximum (corrupt length header?)");
  }
  if (avail - kFrameHeader < len) return std::nullopt;
  const auto sum = codec::read_u64le(base + 4);
  const std::uint8_t* payload = base + kFrameHeader;
  if (codec::fnv1a64(payload, len) != sum) {
    poisoned_ = true;
    throw wire_error("wire: frame checksum mismatch");
  }
  std::vector<std::uint8_t> out(payload, payload + len);
  pos_ += kFrameHeader + len;
  return out;
}

}  // namespace subcover
