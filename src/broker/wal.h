// Durable per-broker routing state: a write-ahead log of subscription
// dispositions plus periodic compacted snapshots, the persistence layer the
// fault-tolerant broker network recovers from.
//
// What is logged: not the covering *decisions* but their *dispositions* —
// for a subscribe, the routing-table entry plus the exact set of links the
// subscription was forwarded (i.e. inserted into the link shard) on; for an
// unsubscribe, the links it was withdrawn from plus every (link, id, body)
// re-forward the withdrawal uncovered. Replaying a record is therefore a
// pure state mutation (broker::apply_replay): no covering check re-runs, no
// metrics move, and the rebuilt broker is state-identical to one that never
// crashed (pinned by routing_table::operator== and forwarded_ids equality
// in tests/broker/broker_recovery_test.cc).
//
// Idempotency keys: every record carries the op-scoped channel position
// (op, from, seq) it was applied at. The fault engine rebuilds its
// duplicate-suppression state from these keys after a crash, which is what
// makes "WAL-append before ack" turn at-least-once message delivery into
// exactly-once state application (docs/ARCHITECTURE.md, fault model).
// event_receipt records exist only for this: events mutate no routing
// state, but their channel position must survive a crash so retransmitted
// (already-processed) events are suppressed instead of re-delivered.
//
// On-disk format (wal_store holds opaque bytes; both stores are durable on
// return from append/replace):
//
//   log    := record*                     (append-only; compacted by snapshot)
//   record := len:u32le  fnv1a64(payload):u64le  payload[len]
//
// A torn tail — a final record whose length header, checksum, or payload was
// cut by a crash mid-append — is tolerated: recovery applies every intact
// prefix record and reports the dropped bytes (recovery::torn_bytes).
// Payloads are varint/zigzag coded (LEB128); see wal.cc.
//
// The snapshot store holds one checksummed broker_snapshot (routing table +
// per-link forwarded sets); write_snapshot replaces it atomically and
// truncates the log, bounding both replay time and WAL size.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "broker/routing_table.h"
#include "pubsub/subscription.h"

namespace subcover {

// Recovery found a corrupt snapshot or an internally inconsistent store
// (torn *tails* are tolerated and reported, not thrown).
struct wal_error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// One logged disposition. `op`/`from`/`seq` form the idempotency key: the
// fault engine's per-operation channel position at which this record was
// applied (from == kLocalLink for client-originated messages).
struct wal_record {
  enum class kind : std::uint8_t { subscribe = 1, unsubscribe = 2, event_receipt = 3 };
  kind k = kind::subscribe;
  std::uint64_t op = 0;
  int from = kLocalLink;
  std::uint64_t seq = 0;
  sub_id id = 0;                    // subscribe / unsubscribe
  subscription body;                // subscribe
  std::vector<int> forwarded_links;  // subscribe: links the body was inserted on
  std::vector<int> withdrawn_links;  // unsubscribe: links the id was withdrawn from
  // unsubscribe: re-forwards the withdrawal uncovered, as (link, (id, body)).
  std::vector<std::pair<int, std::pair<sub_id, subscription>>> reforwards;

  friend bool operator==(const wal_record&, const wal_record&) = default;
};

// Full routing state of one broker at a checkpoint: per-link routing-table
// entries and per-link forwarded sets, ids ascending within each link.
struct broker_snapshot {
  std::map<int, std::vector<std::pair<sub_id, subscription>>> routing;
  std::map<int, std::vector<std::pair<sub_id, subscription>>> forwarded;

  friend bool operator==(const broker_snapshot&, const broker_snapshot&) = default;
};

// Durable byte storage for one log or snapshot. Implementations must make
// append/replace durable before returning (the fault model's crashes never
// lose acknowledged writes; a crash *during* the final append is the torn
// tail recovery tolerates).
class wal_store {
 public:
  virtual ~wal_store() = default;
  virtual void append(const std::vector<std::uint8_t>& bytes) = 0;
  virtual void replace(const std::vector<std::uint8_t>& bytes) = 0;
  [[nodiscard]] virtual std::vector<std::uint8_t> read_all() const = 0;
  [[nodiscard]] virtual std::uint64_t size() const = 0;
};

// In-memory store: the fault-injection engine's default (durability is
// simulated — the store lives in the network, outside the crashing broker).
class memory_wal_store final : public wal_store {
 public:
  void append(const std::vector<std::uint8_t>& bytes) override;
  void replace(const std::vector<std::uint8_t>& bytes) override;
  [[nodiscard]] std::vector<std::uint8_t> read_all() const override;
  [[nodiscard]] std::uint64_t size() const override { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

// File-backed store: append opens O_APPEND-style and flushes per record;
// replace writes a sibling temp file and renames over the target, so a
// crash mid-replace leaves either the old or the new content, never a mix.
class file_wal_store final : public wal_store {
 public:
  explicit file_wal_store(std::string path);
  void append(const std::vector<std::uint8_t>& bytes) override;
  void replace(const std::vector<std::uint8_t>& bytes) override;
  [[nodiscard]] std::vector<std::uint8_t> read_all() const override;
  [[nodiscard]] std::uint64_t size() const override;

 private:
  std::string path_;
};

// One broker's durable state: a snapshot store plus an append-only record
// log. Not thread-safe; driven by the single-threaded fault engine (or a
// test) one call at a time.
class broker_wal {
 public:
  // In-memory stores (the fault engine's configuration).
  broker_wal();
  // Caller-chosen stores; both required.
  broker_wal(std::unique_ptr<wal_store> snapshot_store, std::unique_ptr<wal_store> log_store);
  // File-backed stores <dir>/broker-<id>.snap and <dir>/broker-<id>.log.
  static broker_wal in_directory(const std::string& dir, int broker_id);

  // Appends one framed record to the log, durably.
  void append(const wal_record& r);
  // Replaces the snapshot and truncates the log (compaction). Everything the
  // log's records built is assumed folded into `snap`.
  void write_snapshot(const broker_snapshot& snap);

  struct recovery {
    broker_snapshot snapshot;
    std::vector<wal_record> records;  // intact log records, append order
    std::uint64_t torn_bytes = 0;     // trailing log bytes dropped as torn
  };
  // Reads snapshot + log back. Tolerates a torn final record (reported in
  // torn_bytes); throws wal_error on a corrupt snapshot or a corrupt
  // non-tail region that cannot be attributed to a torn append.
  [[nodiscard]] recovery recover() const;

  // Total bytes made durable through this object (records + snapshots) —
  // the network_metrics::wal_bytes feed.
  [[nodiscard]] std::uint64_t bytes_appended() const { return bytes_appended_; }
  // Records appended since the last snapshot (checkpoint-policy input).
  [[nodiscard]] std::uint64_t records_since_snapshot() const { return records_since_snapshot_; }

  [[nodiscard]] wal_store& log_store() { return *log_; }
  [[nodiscard]] wal_store& snapshot_store() { return *snapshot_; }

 private:
  std::unique_ptr<wal_store> snapshot_;
  std::unique_ptr<wal_store> log_;
  std::uint64_t bytes_appended_ = 0;
  std::uint64_t records_since_snapshot_ = 0;
};

// Codec internals, exposed for tests (round-trip and torn-frame property
// tests) and for the fault engine's size accounting.
std::vector<std::uint8_t> encode_record(const wal_record& r);
std::vector<std::uint8_t> encode_snapshot(const broker_snapshot& s);

}  // namespace subcover
